// Package snapdb's root benchmark harness: one benchmark per paper
// table/figure (regenerating the experiment and reporting its headline
// metric via b.ReportMetric) plus the design-choice ablations listed in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks use the experiments' quick configurations so the full
// harness completes in about a minute; cmd/experiments (without -quick)
// runs the paper-scale parameters.
package snapdb

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"snapdb/internal/attacks/bitleak"
	"snapdb/internal/crypto/prim"
	"snapdb/internal/edb/seabedx"
	"snapdb/internal/engine"
	"snapdb/internal/experiments"
	"snapdb/internal/server"
	"snapdb/internal/snapshot"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
	"snapdb/internal/vfs"
	"snapdb/internal/wal"
	"snapdb/internal/workload"
)

func BenchmarkE1Figure1Matrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E1Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.Rows)), "attacks")
		}
	}
}

func BenchmarkE2LogRetention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E2LogRetention(true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.UpdateRedoDays, "days-retained")
		}
	}
}

func BenchmarkE3BinlogCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E3BinlogCorrelation(true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MeanAbsErrSec, "mean-dating-err-s")
		}
	}
}

func BenchmarkE4HeapResidue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E4HeapResidue(true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.FullTextHits), "fulltext-hits")
		}
	}
}

func BenchmarkE5LewiWuLeakage(b *testing.B) {
	for _, queries := range []int{5, 25, 50} {
		b.Run(fmt.Sprintf("queries=%d", queries), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bitleak.Simulate(bitleak.Config{
					DBSize: 10000, NumQueries: queries, Trials: 10, BlockBits: 1, Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(100*res.FractionLeaked, "%bits-leaked")
				}
			}
		})
	}
}

func BenchmarkE6CountAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E6CountAttack(true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*res.RecoveryRate, "%keywords-recovered")
			b.ReportMetric(100*res.UniqueCountFrac, "%unique-counts")
		}
	}
}

func BenchmarkE7SeabedFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E7Seabed(true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*res.WeightedRecovery, "%weighted-recovery")
		}
	}
}

func BenchmarkE8ArxTranscript(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E8Arx(true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*res.ValueRecovery, "%values-recovered")
		}
	}
}

func BenchmarkE9AtRest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E9AtRest()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.DecryptedWrites), "writes-decrypted")
		}
	}
}

func BenchmarkE10DiagnosticTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E10Diagnostics(true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.HistoryRecovered), "stmts-recovered")
		}
	}
}

func BenchmarkE11Mitigations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E11Mitigations(true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.ClosedBy), "channels-closed")
			b.ReportMetric(float64(res.Inherent), "channels-inherent")
		}
	}
}

// --- Ablations (DESIGN.md) ---

// BenchmarkAblationLewiWuBlockSize sweeps the ORE block size: only
// 1-bit blocks let token comparisons determine plaintext bits outright.
func BenchmarkAblationLewiWuBlockSize(b *testing.B) {
	for _, bits := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("block=%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bitleak.Simulate(bitleak.Config{
					DBSize: 2000, NumQueries: 25, Trials: 10, BlockBits: bits, Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(100*res.FractionLeaked, "%bits-determined")
					b.ReportMetric(100*res.FractionTouched, "%bits-constrained")
				}
			}
		})
	}
}

// BenchmarkAblationHistorySize sweeps events_statements_history depth:
// how many of a victim's recent statements a SQLi attacker recovers.
func BenchmarkAblationHistorySize(b *testing.B) {
	for _, size := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("history=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := engine.Defaults()
				cfg.HistoryPerThread = size
				e, err := engine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				s := e.Connect("victim")
				if _, err := s.Execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
					b.Fatal(err)
				}
				const issued = 50
				for q := 0; q < issued; q++ {
					if _, err := s.Execute(fmt.Sprintf("SELECT v FROM t WHERE id = %d", q)); err != nil {
						b.Fatal(err)
					}
				}
				snap := snapshot.Capture(e, snapshot.SQLInjection)
				if i == 0 {
					b.ReportMetric(float64(len(snap.Diagnostics.History)), "stmts-recovered")
				}
			}
		})
	}
}

// BenchmarkAblationBufferPoolSize sweeps pool capacity: the dump file
// covers a larger fraction of recent access paths as the pool grows.
func BenchmarkAblationBufferPoolSize(b *testing.B) {
	for _, pages := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("pages=%d", pages), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := engine.Defaults()
				cfg.BufferPoolPages = pages
				e, err := engine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				s := e.Connect("app")
				if _, err := s.Execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
					b.Fatal(err)
				}
				for r := 0; r < 2000; r++ {
					if _, err := s.Execute(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'row-payload-%04d')", r, r)); err != nil {
						b.Fatal(err)
					}
				}
				for q := 0; q < 200; q++ {
					if _, err := s.Execute(fmt.Sprintf("SELECT v FROM t WHERE id = %d", (q*37)%2000)); err != nil {
						b.Fatal(err)
					}
				}
				dump := e.Shutdown()
				if i == 0 {
					b.ReportMetric(float64(len(dump)/4), "pages-in-dump")
				}
			}
		})
	}
}

// BenchmarkAblationSPLASHEVariant contrasts basic vs enhanced SPLASHE:
// basic needs one ASHE column per domain value; enhanced trades the
// long tail for a DET column — smaller schema, but the tail becomes
// frequency-analyzable (E7 measures the recovery).
func BenchmarkAblationSPLASHEVariant(b *testing.B) {
	domain := workload.States // 20 values
	frequent := workload.States[:5]
	for _, enhanced := range []bool{false, true} {
		name := "basic"
		vals := domain
		if enhanced {
			name = "enhanced"
			vals = frequent
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := engine.New(engine.Defaults())
				if err != nil {
					b.Fatal(err)
				}
				tbl, err := seabedx.NewTable(e, prim.TestKey("ablation"), "facts", "state", vals, enhanced)
				if err != nil {
					b.Fatal(err)
				}
				rows, err := workload.ZipfQueryStream(domain, 200, 1.3, 3)
				if err != nil {
					b.Fatal(err)
				}
				for _, v := range rows {
					if err := tbl.Insert(v); err != nil {
						b.Fatal(err)
					}
				}
				if i == 0 {
					b.ReportMetric(float64(tbl.Plan().NumColumns()), "ciphertext-columns")
				}
			}
		})
	}
}

// BenchmarkAblationWALGranularity contrasts column-level change records
// (what the engine logs, and what InnoDB-style engines log) against
// whole-row logging: coarser records burn log capacity faster, so the
// forensic retention window shrinks — but every retained record then
// carries the full row.
func BenchmarkAblationWALGranularity(b *testing.B) {
	wideRow := storage.Record{
		sqlparse.IntValue(1),
		sqlparse.StrValue(strings.Repeat("a", 20)),
		sqlparse.StrValue(strings.Repeat("b", 40)),
		sqlparse.StrValue(strings.Repeat("c", 80)),
	}
	for _, mode := range []string{"column-diff", "whole-row"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := wal.NewManager(1<<20, 1<<20)
				if err != nil {
					b.Fatal(err)
				}
				for m.Redo.Evicted() < 500 {
					if mode == "column-diff" {
						// One changed 20-byte column.
						m.LogUpdate(1, storage.Record{wideRow[0]}, 1,
							storage.Record{wideRow[1]}, storage.Record{wideRow[1]})
					} else {
						// Whole-row image per update.
						m.LogUpdate(1, storage.Record{wideRow[0]}, wal.WholeRow,
							wideRow, wideRow)
					}
				}
				if i == 0 {
					b.ReportMetric(float64(m.Redo.Len()), "writes-retained-per-MB")
				}
			}
		})
	}
}

// BenchmarkEncryptAtRest prices the CryptFS layer on the durable
// write path: the same insert stream against a plaintext filesystem,
// deterministic page encryption (positional keystream XOR, the
// deployable default), and fresh-IV mode (per-write re-randomization,
// the E17 mitigation, which turns every page write into a
// read-modify-write plus a sidecar update). The spread between the
// last two is the price of closing the snapshot page-diff channel.
func BenchmarkEncryptAtRest(b *testing.B) {
	for _, mode := range []struct {
		name    string
		encrypt bool
		det     bool
	}{
		{"off", false, false},
		{"det", true, true},
		{"fresh-iv", true, false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := engine.Defaults()
			cfg.FS = vfs.NewMemFS()
			cfg.EncryptAtRest = mode.encrypt
			cfg.EncryptionKey = prim.TestKey("bench-crypt")
			cfg.DeterministicPages = mode.det
			e, err := engine.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			s := e.Connect("bench-crypt")
			defer s.Close()
			if _, err := s.Execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Execute(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'payload-%06d')", i, i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "stmts/s")
		})
	}
}

// BenchmarkWorkloadThroughput is the substrate sanity benchmark: raw
// engine statement throughput with all artifacts enabled.
func BenchmarkWorkloadThroughput(b *testing.B) {
	e, err := engine.New(engine.Defaults())
	if err != nil {
		b.Fatal(err)
	}
	s := e.Connect("bench")
	if _, err := s.Execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Execute(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'payload')", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentThroughput measures statement throughput as
// session concurrency rises: the striped lock manager lets SELECTs on
// one table share a lock and statements on different tables proceed
// independently, while group commit coalesces the writers' log appends.
// Config.SimulatedIOWait models per-statement device latency (the cost
// a durable DBMS hides behind concurrency) so that overlap — not CPU
// parallelism — is what the benchmark rewards; on a single-core runner
// the scaling comes entirely from readers overlapping those waits.
// E12 (cmd/experiments -run E12) prints the same sweep as a table.
func BenchmarkConcurrentThroughput(b *testing.B) {
	const tables, rows = 4, 100
	for _, g := range []int{1, 4, 16} {
		cfg := engine.Defaults()
		cfg.SimulatedIOWait = 100 * time.Microsecond
		e, err := engine.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := workload.SetupTables(e, tables, rows); err != nil {
			b.Fatal(err)
		}
		// RunParallel spawns SetParallelism(g) × GOMAXPROCS goroutines.
		goroutines := g * runtime.GOMAXPROCS(0)
		b.Run(fmt.Sprintf("goroutines=%d", goroutines), func(b *testing.B) {
			var nextID atomic.Int64
			b.SetParallelism(g)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				id := nextID.Add(1)
				s := e.Connect(fmt.Sprintf("bench-conc-%d", id))
				defer s.Close()
				rng := rand.New(rand.NewSource(id * 7919))
				i := 0
				for pb.Next() {
					i++
					table := workload.DriverTableName(rng.Intn(tables))
					var q string
					if i%10 == 0 {
						q = fmt.Sprintf("UPDATE %s SET v = 'upd-%d-%d' WHERE id = %d", table, id, i, rng.Intn(rows))
					} else {
						q = fmt.Sprintf("SELECT v FROM %s WHERE id = %d", table, rng.Intn(rows))
					}
					if _, err := s.Execute(q); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "stmts/s")
		})
	}
}

// BenchmarkSortedRead measures ORDER BY execution through the whole
// statement pipeline over a 2000-row table (query cache off so every
// iteration really executes). The three cases are the planner's three
// ORDER BY shapes: Top-N folding (ORDER BY non-key LIMIT 10), the full
// Sort (no LIMIT to fold), and index-order absorption (ORDER BY pk
// DESC, no sort operator at all). All three fetch the same pages in
// the same order — the differential tests pin that — so the spread
// here is pure post-fetch CPU and allocation.
func BenchmarkSortedRead(b *testing.B) {
	const rows = 2000
	cfg := engine.Defaults()
	cfg.EnableQueryCache = false
	e, err := engine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s := e.Connect("bench-sorted")
	if _, err := s.Execute("CREATE TABLE t (id INT PRIMARY KEY, score INT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := s.Execute(fmt.Sprintf("INSERT INTO t (id, score) VALUES (%d, %d)", i, (i*7919)%rows)); err != nil {
			b.Fatal(err)
		}
	}
	for _, tc := range []struct{ name, query string }{
		{"topn", "SELECT id FROM t ORDER BY score LIMIT 10"},
		{"full-sort", "SELECT id FROM t ORDER BY score"},
		{"index-order", "SELECT score FROM t ORDER BY id DESC LIMIT 10"},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Execute(tc.query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlanCache measures the statement pipeline with the plan
// cache on vs off over a repeating statement mix: a hit skips the
// lexer, parser, digest computation, and name resolution, while still
// producing every forensic artifact (general log, binlog, perfschema,
// heap arena) — the leakage-equivalence tests in internal/engine pin
// that property.
func BenchmarkPlanCache(b *testing.B) {
	const distinct = 64
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"on", false},
		{"off", true},
	} {
		b.Run("cache="+mode.name, func(b *testing.B) {
			cfg := engine.Defaults()
			cfg.DisablePlanCache = mode.disable
			e, err := engine.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			s := e.Connect("bench-plan")
			if _, err := s.Execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
				b.Fatal(err)
			}
			queries := make([]string, distinct)
			for i := range queries {
				if _, err := s.Execute(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'row-%04d')", i, i)); err != nil {
					b.Fatal(err)
				}
				queries[i] = fmt.Sprintf("SELECT v FROM t WHERE id = %d", i)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Execute(queries[i%distinct]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			hits, misses, _ := e.PlanCacheStats()
			if total := hits + misses; total > 0 {
				b.ReportMetric(100*float64(hits)/float64(total), "%hit")
			}
		})
	}
}

// BenchmarkBatchedThroughput measures client-observed statement
// throughput through the TCP server at 16 concurrent connections:
// per-statement Execute (one round trip and one server flush per
// statement) vs ExecuteBatch pipelining 32 statements per write. The
// gap is pure protocol overhead; the executed statements, replies, and
// forensic artifacts are identical.
func BenchmarkBatchedThroughput(b *testing.B) {
	const tables, rows, conns = 4, 100, 16
	for _, mode := range []struct {
		name  string
		batch int
	}{
		{"per-stmt", 1},
		{"batched", 32},
	} {
		b.Run(mode.name, func(b *testing.B) {
			e, err := engine.New(engine.Defaults())
			if err != nil {
				b.Fatal(err)
			}
			if err := workload.SetupTables(e, tables, rows); err != nil {
				b.Fatal(err)
			}
			srv := server.New(e)
			ready := make(chan net.Addr, 1)
			done := make(chan error, 1)
			go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
			addr := (<-ready).String()
			b.ResetTimer()
			res, err := workload.RunDriverRemote(workload.RemoteDriverConfig{
				DriverConfig: workload.DriverConfig{
					Goroutines:   conns,
					Tables:       tables,
					RowsPerTable: rows,
					Statements:   b.N,
					WriteEvery:   10,
					Seed:         42,
				},
				Addr:      addr,
				BatchSize: mode.batch,
			})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Statements)/b.Elapsed().Seconds(), "stmts/s")
			if cerr := srv.Close(); cerr != nil {
				b.Fatal(cerr)
			}
			if serr := <-done; serr != nil {
				b.Fatal(serr)
			}
		})
	}
}

// BenchmarkParallelScan measures partitioned clustered scans against
// the serial executor on a 100k-row table with simulated per-batch IO
// waits (the regime where partitioning pays: on a real device the
// waits are the head-of-line fetch latencies the workers overlap).
// workers=1 is the serial baseline; the acceptance bar is >=2x rows/s
// at workers=4 on the full-range scan.
func BenchmarkParallelScan(b *testing.B) {
	const tableRows = 100_000
	ranges := []struct {
		name string
		rows int
	}{
		{"range=50k", 50_000},
		{"range=100k", tableRows},
	}
	for _, workers := range []int{1, 2, 4} {
		cfg := engine.Defaults()
		cfg.EnableQueryCache = false // every iteration must really scan
		cfg.SimulatedScanIOWait = 2 * time.Millisecond
		cfg.ParallelScanMinRows = 1
		if workers > 1 {
			cfg.MaxScanWorkers = workers
		} else {
			cfg.DisableParallelScan = true
		}
		e, err := engine.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s := e.Connect("bench")
		if _, err := s.Execute("CREATE TABLE pscan (id INT PRIMARY KEY, grp INT, score INT)"); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < tableRows; i++ {
			stmt := fmt.Sprintf("INSERT INTO pscan (id, grp, score) VALUES (%d, %d, %d)", i, i%7, (i*37)%100)
			if _, err := s.Execute(stmt); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.Execute("ANALYZE TABLE pscan"); err != nil {
			b.Fatal(err)
		}
		for _, rng := range ranges {
			q := fmt.Sprintf("SELECT COUNT(*) FROM pscan WHERE id >= 0 AND id <= %d", rng.rows-1)
			b.Run(fmt.Sprintf("workers=%d/%s", workers, rng.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := s.Execute(q)
					if err != nil {
						b.Fatal(err)
					}
					if got := res.Rows[0][0].SQL(); got != fmt.Sprint(rng.rows) {
						b.Fatalf("count = %s, want %d", got, rng.rows)
					}
				}
				b.ReportMetric(float64(rng.rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
			})
		}
		s.Close()
	}
}

// BenchmarkCostedPlanning times uncached statements end to end under
// the cost-based access-path selector vs the legacy first-matching-
// index rule. The plan cache is disabled so every Execute pays the
// full lower-and-cost path; the table carries several secondary
// indexes (a low-selectivity one alphabetically first) so the pricing
// overhead and the better path's execution savings both show up.
func BenchmarkCostedPlanning(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"cost-based", false},
		{"first-match", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := engine.Defaults()
			cfg.DisablePlanCache = true // time planning, not cache hits
			cfg.EnableQueryCache = false
			cfg.DisableCostBasedPlanner = mode.disable
			e, err := engine.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			s := e.Connect("bench")
			defer s.Close()
			setup := []string{
				"CREATE TABLE costed (id INT PRIMARY KEY, grp INT, ref INT, flag INT, score INT)",
				"CREATE INDEX idx_a_grp ON costed (grp)",
				"CREATE INDEX idx_b_flag ON costed (flag)",
				"CREATE INDEX idx_c_ref ON costed (ref)",
				"CREATE INDEX idx_d_score ON costed (score)",
			}
			for _, stmt := range setup {
				if _, err := s.Execute(stmt); err != nil {
					b.Fatal(err)
				}
			}
			for i := 0; i < 512; i++ {
				stmt := fmt.Sprintf(
					"INSERT INTO costed (id, grp, ref, flag, score) VALUES (%d, %d, %d, %d, %d)",
					i, i%2, i, i%4, (i*13)%100)
				if _, err := s.Execute(stmt); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := s.Execute("ANALYZE TABLE costed"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := s.Execute(fmt.Sprintf("SELECT id FROM costed WHERE grp = %d AND ref = %d", i%2, i%512))
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 1 {
					b.Fatalf("rows = %d, want 1", len(res.Rows))
				}
			}
		})
	}
}

// BenchmarkMVCCReadersVsWriter measures point-SELECT throughput while
// transactional writers stream BEGIN/UPDATE…/COMMIT batches against
// the same table. Under MVCC the readers take no table stripe — they
// resolve against their read view and sail past the writers'
// exclusive locks; with DisableMVCC they queue behind every UPDATE's
// stripe hold (which includes the simulated device wait), and each
// pending writer extends the queue readers sit in. The metric is the
// reader-side clock (reads until the last reader drains, writers
// still streaming); the acceptance bar is >=2x reads/s for the MVCC
// arm.
func BenchmarkMVCCReadersVsWriter(b *testing.B) {
	const (
		readers    = 8
		writers    = 3
		statements = 1100
		tableRows  = 4096 // two scan-IO batches per full-scan UPDATE
	)
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"mvcc", false},
		{"locking", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := engine.Defaults()
			cfg.DisableMVCC = mode.disable
			cfg.EnableQueryCache = false // every read must really execute
			cfg.SimulatedIOWait = 500 * time.Microsecond
			cfg.SimulatedScanIOWait = 500 * time.Microsecond
			e, err := engine.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := workload.SetupTables(e, 1, tableRows); err != nil {
				b.Fatal(err)
			}
			dcfg := workload.DriverConfig{
				Goroutines:       readers + writers,
				Tables:           1,
				RowsPerTable:     tableRows,
				Statements:       statements,
				Seed:             42,
				WriterSessions:   writers,
				TxnSize:          4,
				TxnRollbackEvery: 2,
				WriterScanEvery:  2,
			}
			b.ResetTimer()
			reads := 0
			var readerSecs float64
			for i := 0; i < b.N; i++ {
				res, err := workload.RunDriver(e, dcfg)
				if err != nil {
					b.Fatal(err)
				}
				reads += res.Reads
				readerSecs += res.ReaderDuration.Seconds()
			}
			b.ReportMetric(float64(reads)/readerSecs, "reads/s")
		})
	}
}
