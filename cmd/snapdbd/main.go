// Command snapdbd runs the snapdb engine as a TCP server.
//
// Usage:
//
//	snapdbd [-addr 127.0.0.1:7001] [-harden] [-idle-timeout 5m] [-datadir DIR]
//
// Clients speak the line protocol of internal/server; the simplest
// client is:
//
//	printf "CREATE TABLE t (id INT PRIMARY KEY)\n" | nc 127.0.0.1 7001
//
// -harden applies the mitigate package's hardened configuration
// (secure heap deletion, no performance_schema, scrubbed processlist,
// no query cache or query logs).
//
// -datadir makes the engine durable: logs, checkpoints, and the
// buffer-pool dump persist under DIR, and boot runs crash recovery
// over whatever a previous process left there. Without it the engine
// is memory-only, as before.
//
// SNAPDB_FAILPOINTS injects deterministic faults into the durable
// file layer, for crash testing a live server. The format is
// "point=kind[@hit],..." — for example
//
//	SNAPDB_FAILPOINTS='write:ib_logfile_redo=crash@120' snapdbd -datadir /tmp/d
//
// kills the process's storage at the 120th redo write; kinds are err,
// torn, dropsync, bitflip, crash. SNAPDB_FAILPOINT_SEED seeds the
// injector's randomness (torn lengths, flipped bits).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"

	"snapdb/internal/engine"
	"snapdb/internal/failpoint"
	"snapdb/internal/mitigate"
	"snapdb/internal/server"
	"snapdb/internal/vfs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7001", "listen address")
	harden := flag.Bool("harden", false, "apply the hardened configuration")
	datadir := flag.String("datadir", "", "persist to this directory and recover from it at boot (empty = memory-only)")
	idle := flag.Duration("idle-timeout", server.DefaultIdleTimeout,
		"close connections idle longer than this (0 or negative disables)")
	flag.Parse()

	cfg := engine.Defaults()
	if *harden {
		cfg = mitigate.Harden(cfg, true)
	}
	e, err := openEngine(cfg, *datadir)
	if err != nil {
		log.Fatalf("snapdbd: %v", err)
	}
	srv := server.New(e)
	if *idle <= 0 {
		srv.IdleTimeout = -1
	} else {
		srv.IdleTimeout = *idle
	}
	ready := make(chan net.Addr, 1)
	go func() {
		a := <-ready
		fmt.Printf("snapdbd listening on %s (harden=%v)\n", a, *harden)
	}()
	if err := srv.ListenAndServe(*addr, ready); err != nil {
		log.Fatalf("snapdbd: %v", err)
	}
}

// openEngine builds the engine: memory-only without a datadir, or
// recovered from (and persisting to) the datadir, optionally wrapped
// in the SNAPDB_FAILPOINTS fault injector.
func openEngine(cfg engine.Config, datadir string) (*engine.Engine, error) {
	if datadir == "" {
		return engine.New(cfg)
	}
	if err := os.MkdirAll(datadir, 0o755); err != nil {
		return nil, err
	}
	var fs vfs.FS
	osfs, err := vfs.NewOSFS(datadir)
	if err != nil {
		return nil, err
	}
	fs = osfs
	if spec := os.Getenv("SNAPDB_FAILPOINTS"); spec != "" {
		var seed int64 = 1
		if s := os.Getenv("SNAPDB_FAILPOINT_SEED"); s != "" {
			seed, err = strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("SNAPDB_FAILPOINT_SEED: %w", err)
			}
		}
		reg := failpoint.New(seed)
		if err := reg.ArmSpec(spec); err != nil {
			return nil, fmt.Errorf("SNAPDB_FAILPOINTS: %w", err)
		}
		fs = vfs.NewFaultFS(fs, reg)
		fmt.Printf("snapdbd: fault injection armed: %s (seed %d)\n", spec, seed)
	}
	e, rep, err := engine.Recover(fs, cfg)
	if err != nil {
		return nil, fmt.Errorf("recovering %s: %w", datadir, err)
	}
	fmt.Printf("snapdbd: recovered %s: checkpoint=%v tables=%d redo=%d applied=%d rolled_back=%d",
		datadir, rep.CheckpointFound, rep.Tables, rep.RedoRecords, rep.RecordsApplied, rep.TxnsRolledBack)
	if rep.RedoTruncated != nil {
		fmt.Printf(" redo_truncated_at=%d (%s)", rep.RedoTruncated.Offset, rep.RedoTruncated.Reason)
	}
	if rep.BinlogTruncated != nil {
		fmt.Printf(" binlog_truncated_at=%d (%s)", rep.BinlogTruncated.Offset, rep.BinlogTruncated.Reason)
	}
	fmt.Println()
	return e, nil
}
