// Command snapdbd runs the snapdb engine as a TCP server.
//
// Usage:
//
//	snapdbd [-addr 127.0.0.1:7001] [-harden] [-idle-timeout 5m] [-datadir DIR]
//	        [-stmt-timeout 0] [-max-concurrent 0] [-drain-timeout 10s] [-scan-workers 0]
//	        [-encrypt [-fresh-iv]]
//
// Clients speak the line protocol of internal/server; the simplest
// client is:
//
//	printf "CREATE TABLE t (id INT PRIMARY KEY)\n" | nc 127.0.0.1 7001
//
// -stmt-timeout bounds each statement's execution (snapdb's
// max_execution_time; 0 disables). -max-concurrent caps concurrently
// executing statements; excess statements draw a retryable
// "overloaded" ERR instead of queueing (0 = unlimited). On SIGINT or
// SIGTERM the server drains gracefully — in-flight and pipelined
// statements finish and flush — for at most -drain-timeout before
// remaining connections are closed hard.
//
// -harden applies the mitigate package's hardened configuration
// (secure heap deletion, no performance_schema, scrubbed processlist,
// no query cache or query logs).
//
// -datadir makes the engine durable: logs, checkpoints, and the
// buffer-pool dump persist under DIR, and boot runs crash recovery
// over whatever a previous process left there. Without it the engine
// is memory-only, as before.
//
// -encrypt encrypts the datadir at rest with the 32-byte key in
// SNAPDB_ENCRYPTION_KEY (64 hex chars), deterministic per-page tweaks
// by default; -fresh-iv re-randomizes every page write instead, which
// closes the snapshot page-diff channel E17 demonstrates at the cost
// of write amplification and an IV sidecar per file.
//
// SNAPDB_FAILPOINTS injects deterministic faults into the durable
// file layer, for crash testing a live server. The format is
// "point=kind[@hit],..." — for example
//
//	SNAPDB_FAILPOINTS='write:ib_logfile_redo=crash@120' snapdbd -datadir /tmp/d
//
// kills the process's storage at the 120th redo write; kinds are err,
// torn, dropsync, bitflip, crash. SNAPDB_FAILPOINT_SEED seeds the
// injector's randomness (torn lengths, flipped bits).
//
// SNAPDB_NETFAULTS does the same for the network layer: the same
// "point=kind[@hit]" specs armed against the listener's connections
// (points netread:srv, netwrite:srv, accept:srv; kinds reset,
// partial, latency, blackhole), sharing SNAPDB_FAILPOINT_SEED.
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"snapdb/internal/crypto/prim"
	"snapdb/internal/engine"
	"snapdb/internal/failpoint"
	"snapdb/internal/mitigate"
	"snapdb/internal/netfault"
	"snapdb/internal/server"
	"snapdb/internal/vfs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7001", "listen address")
	harden := flag.Bool("harden", false, "apply the hardened configuration")
	datadir := flag.String("datadir", "", "persist to this directory and recover from it at boot (empty = memory-only)")
	idle := flag.Duration("idle-timeout", server.DefaultIdleTimeout,
		"close connections idle longer than this (0 or negative disables)")
	stmtTimeout := flag.Duration("stmt-timeout", 0,
		"abort statements running longer than this (0 disables; snapdb's max_execution_time)")
	maxConcurrent := flag.Int("max-concurrent", 0,
		"cap concurrently executing statements; excess get a retryable overloaded ERR (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"how long a SIGTERM/SIGINT drain waits for in-flight work before closing hard")
	scanWorkers := flag.Int("scan-workers", 0,
		"split large clustered scans across this many worker goroutines with an ordered merge (0 or 1 = serial)")
	encrypt := flag.Bool("encrypt", false,
		"encrypt the datadir at rest (key from SNAPDB_ENCRYPTION_KEY, 64 hex chars; requires -datadir)")
	freshIV := flag.Bool("fresh-iv", false,
		"with -encrypt, re-randomize every page write instead of deterministic per-page tweaks (mitigates snapshot page-diffing; see E17)")
	flag.Parse()

	cfg := engine.Defaults()
	if *harden {
		cfg = mitigate.Harden(cfg, true)
	}
	cfg.StatementTimeout = *stmtTimeout
	cfg.MaxScanWorkers = *scanWorkers
	if *encrypt {
		if *datadir == "" {
			log.Fatal("snapdbd: -encrypt requires -datadir")
		}
		key, err := encryptionKeyFromEnv()
		if err != nil {
			log.Fatalf("snapdbd: %v", err)
		}
		cfg.EncryptAtRest = true
		cfg.EncryptionKey = key
		cfg.DeterministicPages = !*freshIV
	} else if *freshIV {
		log.Fatal("snapdbd: -fresh-iv requires -encrypt")
	}
	e, err := openEngine(cfg, *datadir)
	if err != nil {
		log.Fatalf("snapdbd: %v", err)
	}
	srv := server.New(e)
	if *idle <= 0 {
		srv.IdleTimeout = -1
	} else {
		srv.IdleTimeout = *idle
	}
	srv.MaxConcurrent = *maxConcurrent

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("snapdbd: listen: %v", err)
	}
	if wrapped, err := wrapNetFaults(ln); err != nil {
		log.Fatalf("snapdbd: %v", err)
	} else {
		ln = wrapped
	}
	fmt.Printf("snapdbd listening on %s (harden=%v)\n", ln.Addr(), *harden)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	shuttingDown := make(chan struct{})
	drained := make(chan error, 1)
	go func() {
		s := <-sig
		// Serve returns the moment the listener closes, while Shutdown
		// is still draining handlers — main must wait on drained, not
		// exit with Serve.
		close(shuttingDown)
		fmt.Printf("snapdbd: %v: draining (timeout %v)\n", s, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		drained <- srv.Shutdown(ctx)
	}()
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("snapdbd: %v", err)
	}
	select {
	case <-shuttingDown:
		if err := <-drained; err != nil {
			log.Fatalf("snapdbd: drain: %v", err)
		}
		fmt.Println("snapdbd: drained cleanly")
	default: // Serve ended without a signal (Close elsewhere)
	}
}

// encryptionKeyFromEnv parses SNAPDB_ENCRYPTION_KEY (64 hex chars =
// 32 bytes). An env var keeps the key out of the process argv, which
// any co-tenant can read — though as DESIGN.md notes, at-rest
// encryption never defends against a live co-resident attacker anyway.
func encryptionKeyFromEnv() (prim.Key, error) {
	var key prim.Key
	s := os.Getenv("SNAPDB_ENCRYPTION_KEY")
	if s == "" {
		return key, fmt.Errorf("-encrypt set but SNAPDB_ENCRYPTION_KEY is empty")
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return key, fmt.Errorf("SNAPDB_ENCRYPTION_KEY: %w", err)
	}
	if len(raw) != len(key) {
		return key, fmt.Errorf("SNAPDB_ENCRYPTION_KEY: got %d bytes, want %d", len(raw), len(key))
	}
	copy(key[:], raw)
	return key, nil
}

// wrapNetFaults arms SNAPDB_NETFAULTS against ln, if set.
func wrapNetFaults(ln net.Listener) (net.Listener, error) {
	spec := os.Getenv("SNAPDB_NETFAULTS")
	if spec == "" {
		return ln, nil
	}
	var seed int64 = 1
	if s := os.Getenv("SNAPDB_FAILPOINT_SEED"); s != "" {
		var err error
		seed, err = strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("SNAPDB_FAILPOINT_SEED: %w", err)
		}
	}
	reg := failpoint.New(seed)
	if err := reg.ArmSpec(spec); err != nil {
		return nil, fmt.Errorf("SNAPDB_NETFAULTS: %w", err)
	}
	fmt.Printf("snapdbd: network fault injection armed: %s (seed %d)\n", spec, seed)
	return netfault.WrapListener(ln, netfault.Config{Reg: reg, Label: "srv"}), nil
}

// openEngine builds the engine: memory-only without a datadir, or
// recovered from (and persisting to) the datadir, optionally wrapped
// in the SNAPDB_FAILPOINTS fault injector.
func openEngine(cfg engine.Config, datadir string) (*engine.Engine, error) {
	if datadir == "" {
		return engine.New(cfg)
	}
	if err := os.MkdirAll(datadir, 0o755); err != nil {
		return nil, err
	}
	var fs vfs.FS
	osfs, err := vfs.NewOSFS(datadir)
	if err != nil {
		return nil, err
	}
	fs = osfs
	if spec := os.Getenv("SNAPDB_FAILPOINTS"); spec != "" {
		var seed int64 = 1
		if s := os.Getenv("SNAPDB_FAILPOINT_SEED"); s != "" {
			seed, err = strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("SNAPDB_FAILPOINT_SEED: %w", err)
			}
		}
		reg := failpoint.New(seed)
		if err := reg.ArmSpec(spec); err != nil {
			return nil, fmt.Errorf("SNAPDB_FAILPOINTS: %w", err)
		}
		fs = vfs.NewFaultFS(fs, reg)
		fmt.Printf("snapdbd: fault injection armed: %s (seed %d)\n", spec, seed)
	}
	e, rep, err := engine.Recover(fs, cfg)
	if err != nil {
		return nil, fmt.Errorf("recovering %s: %w", datadir, err)
	}
	fmt.Printf("snapdbd: recovered %s: checkpoint=%v tables=%d redo=%d applied=%d rolled_back=%d",
		datadir, rep.CheckpointFound, rep.Tables, rep.RedoRecords, rep.RecordsApplied, rep.TxnsRolledBack)
	if rep.RedoTruncated != nil {
		fmt.Printf(" redo_truncated_at=%d (%s)", rep.RedoTruncated.Offset, rep.RedoTruncated.Reason)
	}
	if rep.BinlogTruncated != nil {
		fmt.Printf(" binlog_truncated_at=%d (%s)", rep.BinlogTruncated.Offset, rep.BinlogTruncated.Reason)
	}
	fmt.Println()
	return e, nil
}
