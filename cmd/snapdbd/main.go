// Command snapdbd runs the snapdb engine as a TCP server.
//
// Usage:
//
//	snapdbd [-addr 127.0.0.1:7001] [-harden] [-idle-timeout 5m]
//
// Clients speak the line protocol of internal/server; the simplest
// client is:
//
//	printf "CREATE TABLE t (id INT PRIMARY KEY)\n" | nc 127.0.0.1 7001
//
// -harden applies the mitigate package's hardened configuration
// (secure heap deletion, no performance_schema, scrubbed processlist,
// no query cache or query logs).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"snapdb/internal/engine"
	"snapdb/internal/mitigate"
	"snapdb/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7001", "listen address")
	harden := flag.Bool("harden", false, "apply the hardened configuration")
	idle := flag.Duration("idle-timeout", server.DefaultIdleTimeout,
		"close connections idle longer than this (0 or negative disables)")
	flag.Parse()

	cfg := engine.Defaults()
	if *harden {
		cfg = mitigate.Harden(cfg, true)
	}
	e, err := engine.New(cfg)
	if err != nil {
		log.Fatalf("snapdbd: %v", err)
	}
	srv := server.New(e)
	if *idle <= 0 {
		srv.IdleTimeout = -1
	} else {
		srv.IdleTimeout = *idle
	}
	ready := make(chan net.Addr, 1)
	go func() {
		a := <-ready
		fmt.Printf("snapdbd listening on %s (harden=%v)\n", a, *harden)
	}()
	if err := srv.ListenAndServe(*addr, ready); err != nil {
		log.Fatalf("snapdbd: %v", err)
	}
}
