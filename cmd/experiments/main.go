// Command experiments regenerates every table and figure from the
// paper's demonstrations.
//
// Usage:
//
//	experiments [-quick] [-run E5]
//
// Without -run it executes the full suite E1..E17 plus the ablations.
// -quick shrinks workloads (fewer trials, smaller corpora) so the whole
// suite finishes in well under a minute.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"snapdb/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced workloads (fewer trials, smaller corpora)")
	run := flag.String("run", "", "run a single experiment by id (E1..E17, E5-ablation)")
	flag.Parse()

	if err := realMain(*quick, *run); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func realMain(quick bool, run string) error {
	type runner struct {
		id string
		fn func(bool) (experiments.Result, error)
	}
	runners := []runner{
		{"E1", func(bool) (experiments.Result, error) { return experiments.E1Figure1() }},
		{"E2", func(q bool) (experiments.Result, error) { return experiments.E2LogRetention(q) }},
		{"E3", func(q bool) (experiments.Result, error) { return experiments.E3BinlogCorrelation(q) }},
		{"E4", func(q bool) (experiments.Result, error) { return experiments.E4HeapResidue(q) }},
		{"E5", func(q bool) (experiments.Result, error) { return experiments.E5LewiWu(q) }},
		{"E5-ablation", func(q bool) (experiments.Result, error) { return experiments.E5BlockSizeAblation(q) }},
		{"E6", func(q bool) (experiments.Result, error) { return experiments.E6CountAttack(q) }},
		{"E7", func(q bool) (experiments.Result, error) { return experiments.E7Seabed(q) }},
		{"E8", func(q bool) (experiments.Result, error) { return experiments.E8Arx(q) }},
		{"E9", func(bool) (experiments.Result, error) { return experiments.E9AtRest() }},
		{"E10", func(q bool) (experiments.Result, error) { return experiments.E10Diagnostics(q) }},
		{"E11", func(q bool) (experiments.Result, error) { return experiments.E11Mitigations(q) }},
		{"E12", func(q bool) (experiments.Result, error) { return experiments.E12Scaling(q) }},
		{"E13", func(q bool) (experiments.Result, error) { return experiments.E13CrashResidue(q) }},
		{"E14", func(q bool) (experiments.Result, error) { return experiments.E14RetryResidue(q) }},
		{"E15", func(q bool) (experiments.Result, error) { return experiments.E15ParallelTrace(q) }},
		{"E16", func(q bool) (experiments.Result, error) { return experiments.E16VersionResidue(q) }},
		{"E17", func(q bool) (experiments.Result, error) { return experiments.E17SnapshotDiff(q) }},
	}
	matched := false
	for _, r := range runners {
		if run != "" && !strings.EqualFold(run, r.id) {
			continue
		}
		matched = true
		res, err := r.fn(quick)
		if err != nil {
			return fmt.Errorf("%s: %w", r.id, err)
		}
		fmt.Println(res.Render())
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q (want E1..E17 or E5-ablation)", run)
	}
	return nil
}
