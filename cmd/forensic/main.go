// Command forensic analyzes a stolen data directory — the files a
// disk-theft attacker actually holds (written by `snapdb -dump <dir>`
// or assembled from a real snapshot) — and prints everything §3 of the
// paper says such a directory reveals: reconstructed write statements,
// binlog text and timing, the LSN↔timestamp correlation, query-log
// contents, and the buffer-pool access trace.
//
// Usage:
//
//	forensic -dir /path/to/stolen/datadir [-limit 20]
package main

import (
	"flag"
	"fmt"
	"os"

	"snapdb/internal/bufpool"
	"snapdb/internal/core"
	"snapdb/internal/forensics"
	"snapdb/internal/snapshot"
)

func main() {
	dir := flag.String("dir", "", "stolen data directory (required)")
	limit := flag.Int("limit", 20, "max artifacts to print per channel")
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := realMain(*dir, *limit); err != nil {
		fmt.Fprintln(os.Stderr, "forensic:", err)
		os.Exit(1)
	}
}

func realMain(dir string, limit int) error {
	snap, err := snapshot.ReadDir(dir)
	if err != nil {
		return err
	}
	rep, err := core.Analyze(snap, nil)
	if err != nil {
		return err
	}
	fmt.Printf("forensic analysis of %s (disk-theft model)\n", dir)
	fmt.Printf("tables in schema files: %d\n", len(snap.Disk.Catalog))
	fmt.Printf("write statements reconstructed: %d (timestamped: %d)\n\n", rep.PastWrites, rep.TimedWrites)

	// Reconstructed writes with timestamps, the §3 headline.
	writes, err := forensics.ReconstructWrites(snap.Disk.RedoLog, snap.Disk.UndoLog, snap.Disk.Catalog)
	if err != nil {
		return err
	}
	if events, err := forensics.CorrelatableEvents(snap.Disk.Binlog); err == nil && len(events) >= 2 {
		if corr, err := forensics.CorrelateBinlog(events); err == nil {
			forensics.DateWrites(writes, corr)
			fmt.Printf("binlog: %d events; correlation fitted over %d samples\n", len(events), corr.Samples())
		}
	}
	fmt.Println("reconstructed write history (oldest first):")
	for i, w := range writes {
		if i >= limit {
			fmt.Printf("  ... %d more\n", len(writes)-limit)
			break
		}
		fmt.Printf("  lsn=%-8d t≈%-12d %s\n", w.LSN, w.Timestamp, w.SQL)
	}

	// Query logs.
	for _, log := range []struct{ name, text string }{
		{"slow log", snap.Disk.SlowLog},
		{"general log", snap.Disk.GeneralLog},
	} {
		entries, err := forensics.ParseQueryLog(log.text)
		if err != nil || len(entries) == 0 {
			continue
		}
		fmt.Printf("\n%s: %d statements\n", log.name, len(entries))
		for i, e := range entries {
			if i >= limit {
				fmt.Printf("  ... %d more\n", len(entries)-limit)
				break
			}
			fmt.Printf("  t=%d session=%d %s\n", e.Timestamp, e.Session, e.Statement)
		}
	}

	// Buffer pool trace.
	if len(snap.Disk.BufferPoolDump) > 0 {
		if ids, err := bufpool.ParseDump(snap.Disk.BufferPoolDump); err == nil && len(ids) > 0 {
			fmt.Printf("\nbuffer-pool dump: %d pages in LRU order (most recent first):", len(ids))
			for i, id := range ids {
				if i >= limit {
					fmt.Printf(" ...")
					break
				}
				fmt.Printf(" %d", id)
			}
			fmt.Println()
		}
	}
	return nil
}
