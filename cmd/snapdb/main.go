// Command snapdb is the interactive demonstration of the paper's
// thesis: it stands up the DBMS, runs an encrypted-database workload
// on top, takes a snapshot under a chosen attack model, and prints the
// leakage report.
//
// Usage:
//
//	snapdb [-attack disk|sqli|vm|full] [-edb cryptdb|seabed|arx|none]
//
// The -edb flag picks which encrypted database runs the workload; the
// -attack flag picks the snapshot the "attacker" takes afterwards.
package main

import (
	"flag"
	"fmt"
	"os"

	"snapdb/internal/core"
	"snapdb/internal/crypto/prim"
	"snapdb/internal/edb/arxx"
	"snapdb/internal/edb/cryptdbx"
	"snapdb/internal/edb/seabedx"
	"snapdb/internal/engine"
	"snapdb/internal/mitigate"
	"snapdb/internal/snapshot"
	"snapdb/internal/sqlparse"
)

func main() {
	attack := flag.String("attack", "full", "snapshot attack: disk, sqli, vm, or full")
	edb := flag.String("edb", "cryptdb", "encrypted database layer: cryptdb, seabed, arx, or none")
	harden := flag.Bool("harden", false, "apply the mitigate package's hardened configuration")
	dump := flag.String("dump", "", "also write the stolen-disk files to this directory (analyze with cmd/forensic)")
	flag.Parse()
	if err := realMain(*attack, *edb, *harden, *dump); err != nil {
		fmt.Fprintln(os.Stderr, "snapdb:", err)
		os.Exit(1)
	}
}

func parseAttack(s string) (snapshot.AttackType, error) {
	switch s {
	case "disk":
		return snapshot.DiskTheft, nil
	case "sqli":
		return snapshot.SQLInjection, nil
	case "vm":
		return snapshot.VMSnapshotLeak, nil
	case "full":
		return snapshot.FullCompromise, nil
	default:
		return 0, fmt.Errorf("unknown attack %q (want disk, sqli, vm, full)", s)
	}
}

func realMain(attackName, edbName string, harden bool, dumpDir string) error {
	attack, err := parseAttack(attackName)
	if err != nil {
		return err
	}
	cfg := engine.Defaults()
	if harden {
		cfg = mitigate.Harden(cfg, true)
	}
	e, err := engine.New(cfg)
	if err != nil {
		return err
	}
	root := prim.TestKey("snapdb-demo")

	switch edbName {
	case "cryptdb":
		if err := cryptdbWorkload(e, root); err != nil {
			return err
		}
	case "seabed":
		if err := seabedWorkload(e, root); err != nil {
			return err
		}
	case "arx":
		if err := arxWorkload(e, root); err != nil {
			return err
		}
	case "none":
		if err := plainWorkload(e); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown edb %q (want cryptdb, seabed, arx, none)", edbName)
	}

	fmt.Printf("workload: %s encrypted database; attack: %s\n\n", edbName, attack)
	snap := snapshot.Capture(e, attack)
	if dumpDir != "" {
		if err := snap.WriteDir(dumpDir); err != nil {
			return err
		}
		fmt.Printf("stolen-disk files written to %s (analyze with: go run ./cmd/forensic -dir %s)\n\n", dumpDir, dumpDir)
	}
	rep, err := core.Analyze(snap, core.CatalogOf(e))
	if err != nil {
		return err
	}
	printReport(rep)
	return nil
}

func printReport(rep *core.Report) {
	fmt.Printf("=== leakage report: %s ===\n", rep.Attack)
	fmt.Printf("past writes reconstructed: %d (timed: %d)\n", rep.PastWrites, rep.TimedWrites)
	fmt.Printf("past reads recovered:      %d\n", rep.PastReads)
	fmt.Printf("query-type histogram rows: %d\n", rep.DigestRows)
	fmt.Printf("search tokens recovered:   %d\n", rep.TokensFound)
	fmt.Printf("cached results exposed:    %d\n\n", rep.CachedResults)
	for _, f := range rep.Findings {
		fmt.Printf("[%s] %s (%s, %d artifacts)\n", f.Severity, f.Channel, f.PaperRef, f.Count)
		fmt.Printf("    %s\n", f.Description)
		for _, s := range f.Samples {
			fmt.Printf("    | %s\n", s)
		}
	}
}

func cryptdbWorkload(e *engine.Engine, root prim.Key) error {
	proxy := cryptdbx.New(e, root)
	specs := []cryptdbx.ColumnSpec{
		{Name: "id", Type: sqlparse.TypeInt, Mode: cryptdbx.OPE},
		{Name: "name", Type: sqlparse.TypeText, Mode: cryptdbx.DET},
		{Name: "age", Type: sqlparse.TypeInt, Mode: cryptdbx.OPE},
		{Name: "notes", Type: sqlparse.TypeText, Mode: cryptdbx.SEARCH},
	}
	if err := proxy.CreateTable("patients", specs); err != nil {
		return err
	}
	rows := [][]sqlparse.Value{
		{sqlparse.IntValue(1), sqlparse.StrValue("alice"), sqlparse.IntValue(34), sqlparse.StrValue("fever cough")},
		{sqlparse.IntValue(2), sqlparse.StrValue("bob"), sqlparse.IntValue(52), sqlparse.StrValue("insulin daily")},
		{sqlparse.IntValue(3), sqlparse.StrValue("carol"), sqlparse.IntValue(41), sqlparse.StrValue("antiretroviral daily")},
	}
	for _, r := range rows {
		if err := proxy.Insert("patients", r); err != nil {
			return err
		}
	}
	if _, err := proxy.Select("patients", []cryptdbx.Pred{{Column: "age", Op: sqlparse.OpGe, Arg: sqlparse.IntValue(40)}}); err != nil {
		return err
	}
	if _, err := proxy.Search("patients", "notes", "daily"); err != nil {
		return err
	}
	return nil
}

func seabedWorkload(e *engine.Engine, root prim.Key) error {
	tbl, err := seabedx.NewTable(e, root, "facts", "state", []string{"CA", "TX", "NY"}, false)
	if err != nil {
		return err
	}
	for _, v := range []string{"CA", "CA", "TX", "NY", "CA", "TX"} {
		if err := tbl.Insert(v); err != nil {
			return err
		}
	}
	for _, v := range []string{"CA", "CA", "CA", "TX", "NY"} {
		if _, err := tbl.CountWhere(v); err != nil {
			return err
		}
	}
	return nil
}

func arxWorkload(e *engine.Engine, root prim.Key) error {
	ix, err := arxx.New(e, root, "arx_idx")
	if err != nil {
		return err
	}
	for _, v := range []uint32{50, 10, 90, 30, 70, 20, 60} {
		if err := ix.Insert(v); err != nil {
			return err
		}
	}
	for _, q := range [][2]uint32{{20, 65}, {0, 30}, {55, 95}} {
		if _, err := ix.RangeQuery(q[0], q[1]); err != nil {
			return err
		}
	}
	return nil
}

func plainWorkload(e *engine.Engine) error {
	s := e.Connect("app")
	stmts := []string{
		"CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance INT)",
		"INSERT INTO accounts (id, owner, balance) VALUES (1, 'alice', 100)",
		"INSERT INTO accounts (id, owner, balance) VALUES (2, 'bob', 250)",
		"UPDATE accounts SET balance = 175 WHERE id = 2",
		"SELECT owner FROM accounts WHERE balance >= 150",
	}
	for _, q := range stmts {
		if _, err := s.Execute(q); err != nil {
			return err
		}
	}
	return nil
}
