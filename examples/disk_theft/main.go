// Disk theft against a CryptDB-style encrypted database: the data
// files hold only ciphertext, yet the stolen disk's transaction logs
// replay every write — with timestamps — and the WAL retains weeks of
// history (§3 of the paper).
//
//	go run ./examples/disk_theft
package main

import (
	"fmt"
	"log"

	"snapdb/internal/core"
	"snapdb/internal/crypto/prim"
	"snapdb/internal/edb/cryptdbx"
	"snapdb/internal/engine"
	"snapdb/internal/forensics"
	"snapdb/internal/snapshot"
	"snapdb/internal/sqlparse"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	e, err := engine.New(engine.Defaults())
	if err != nil {
		return err
	}
	now := int64(1_700_000_000)
	e.Clock = func() int64 { return now }

	// The victim deploys an encrypted database: the engine only ever
	// sees DET/OPE/RND ciphertexts.
	proxy := cryptdbx.New(e, prim.TestKey("disk-theft-demo"))
	specs := []cryptdbx.ColumnSpec{
		{Name: "id", Type: sqlparse.TypeInt, Mode: cryptdbx.OPE},
		{Name: "patient", Type: sqlparse.TypeText, Mode: cryptdbx.DET},
		{Name: "diagnosis", Type: sqlparse.TypeText, Mode: cryptdbx.RND},
	}
	if err := proxy.CreateTable("records", specs); err != nil {
		return err
	}
	admissions := []struct {
		id        int64
		patient   string
		diagnosis string
	}{
		{1, "alice", "influenza"},
		{2, "bob", "diabetes"},
		{3, "carol", "hypertension"},
	}
	for _, a := range admissions {
		now += 3600 // one admission per hour
		row := []sqlparse.Value{
			sqlparse.IntValue(a.id), sqlparse.StrValue(a.patient), sqlparse.StrValue(a.diagnosis),
		}
		if err := proxy.Insert("records", row); err != nil {
			return err
		}
	}

	// --- The attack: steal the disk. Nothing volatile survives. ---
	snap := snapshot.Capture(e, snapshot.DiskTheft)
	fmt.Println("attacker holds: tablespace, redo/undo logs, binlog, query logs")

	// 1. The binlog gives full write statements with timestamps.
	events, err := forensics.CorrelatableEvents(snap.Disk.Binlog)
	if err != nil {
		return err
	}
	fmt.Printf("\nbinlog: %d timestamped write transactions\n", len(events))
	for _, ev := range events {
		fmt.Printf("  t=%d  %.90s\n", ev.Timestamp, ev.Statement)
	}

	// 2. The WAL independently reconstructs the same writes byte by
	// byte — and keeps doing so long after the binlog is purged.
	writes, err := forensics.ReconstructWrites(snap.Disk.RedoLog, snap.Disk.UndoLog, core.CatalogOf(e))
	if err != nil {
		return err
	}
	corr, err := forensics.CorrelateBinlog(events)
	if err != nil {
		return err
	}
	forensics.DateWrites(writes, corr)
	fmt.Printf("\nWAL: %d writes reconstructed and dated via LSN correlation\n", len(writes))
	for _, w := range writes {
		fmt.Printf("  t≈%d  %.90s\n", w.Timestamp, w.SQL)
	}

	fmt.Println("\nconclusion: ciphertext-only storage did not hide the write history —")
	fmt.Println("the insertion times and per-row update patterns are in the clear, and")
	fmt.Println("the DET/OPE ciphertexts in the reconstructed statements feed directly")
	fmt.Println("into frequency and ordering attacks (see examples/sql_injection).")
	return nil
}
