// VM snapshot leak against a CryptDB-style searchable-encryption
// deployment: the leaked memory image contains past search statements —
// including the search tokens — and replaying a single stolen token
// against the index breaks semantic security; the count attack then
// names the keyword (§5 and §6 of the paper).
//
//	go run ./examples/vm_snapshot
package main

import (
	"encoding/hex"
	"fmt"
	"log"
	"regexp"

	"snapdb/internal/attacks/leakabuse"
	"snapdb/internal/crypto/prim"
	"snapdb/internal/crypto/sse"
	"snapdb/internal/edb/cryptdbx"
	"snapdb/internal/engine"
	"snapdb/internal/forensics"
	"snapdb/internal/snapshot"
	"snapdb/internal/sqlparse"
	"snapdb/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	e, err := engine.New(engine.Defaults())
	if err != nil {
		return err
	}
	proxy := cryptdbx.New(e, prim.TestKey("vm-demo"))
	specs := []cryptdbx.ColumnSpec{
		{Name: "id", Type: sqlparse.TypeInt, Mode: cryptdbx.OPE},
		{Name: "body", Type: sqlparse.TypeText, Mode: cryptdbx.SEARCH},
	}
	if err := proxy.CreateTable("mail", specs); err != nil {
		return err
	}
	// A small mail corpus with Zipf keyword frequencies.
	corpus, err := workload.NewCorpus(workload.CorpusConfig{
		NumDocs: 400, VocabSize: 150, WordsPerDoc: 10, ZipfS: 1.2, Seed: 7,
	})
	if err != nil {
		return err
	}
	for id, doc := range corpus.Docs {
		body := ""
		for i, w := range doc {
			if i > 0 {
				body += " "
			}
			body += w
		}
		row := []sqlparse.Value{sqlparse.IntValue(int64(id)), sqlparse.StrValue(body)}
		if err := proxy.Insert("mail", row); err != nil {
			return err
		}
	}
	// The user searches for a few frequent keywords.
	searched := []string{}
	for _, wc := range corpus.TopWords(5) {
		searched = append(searched, wc.Word)
		if _, err := proxy.Search("mail", "body", wc.Word); err != nil {
			return err
		}
	}
	fmt.Printf("user searched for %d keywords through the encrypted proxy\n", len(searched))

	// --- The attack: the hypervisor leaks a full-state VM image. ---
	snap := snapshot.Capture(e, snapshot.VMSnapshotLeak)

	// 1. Scrape the heap for search statements and their tokens.
	tokenRe := regexp.MustCompile(`search_match\(body, '([0-9a-f]{64})'\)`)
	seen := map[string]bool{}
	var stolen []sse.Token
	for _, s := range forensics.ExtractStrings(snap.Memory.HeapImage, 16) {
		for _, m := range tokenRe.FindAllStringSubmatch(s, -1) {
			if seen[m[1]] {
				continue
			}
			seen[m[1]] = true
			raw, err := hex.DecodeString(m[1])
			if err != nil || len(raw) != len(sse.Token{}) {
				continue
			}
			var tok sse.Token
			copy(tok[:], raw)
			stolen = append(stolen, tok)
		}
	}
	fmt.Printf("heap scrape recovered %d distinct search tokens\n", len(stolen))

	// 2. Replay tokens against the index (which the attacker also has)
	// and run the count attack with public corpus statistics.
	ix, err := proxy.SSEIndex("mail", "body")
	if err != nil {
		return err
	}
	aux := make(map[string]int)
	for _, w := range corpus.Vocabulary {
		if c := corpus.Count(w); c > 0 {
			aux[w] = c
		}
	}
	obs := leakabuse.Observe(ix, stolen)
	recs := leakabuse.CountAttack(obs, aux)
	fmt.Printf("count attack identified %d of %d tokens:\n", len(recs), len(obs))
	for _, r := range recs {
		fmt.Printf("  token #%d = keyword %q, exposing %d documents\n", r.TokenID, r.Keyword, len(r.Docs))
	}
	fmt.Println("\nsemantic security of the searchable encryption is gone: the snapshot")
	fmt.Println("attacker knows which encrypted mails contain which searched keyword.")
	return nil
}
