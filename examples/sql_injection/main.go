// SQL injection against a Seabed-style encrypted analytics store: the
// injected queries never touch the encrypted data, only the diagnostic
// tables — and the digest table hands the attacker the exact histogram
// of queries per plaintext value, which frequency analysis converts
// into the SPLASHE column mapping (§4 and §6 of the paper).
//
//	go run ./examples/sql_injection
package main

import (
	"fmt"
	"log"
	"strings"

	"snapdb/internal/attacks/freq"
	"snapdb/internal/crypto/prim"
	"snapdb/internal/edb/seabedx"
	"snapdb/internal/engine"
	"snapdb/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	e, err := engine.New(engine.Defaults())
	if err != nil {
		return err
	}
	domain := workload.States[:8]
	tbl, err := seabedx.NewTable(e, prim.TestKey("sqli-demo"), "facts", "state", domain, false)
	if err != nil {
		return err
	}
	rows, err := workload.ZipfQueryStream(domain, 300, 1.3, 5)
	if err != nil {
		return err
	}
	for _, v := range rows {
		if err := tbl.Insert(v); err != nil {
			return err
		}
	}
	// The analysts' workload: count queries whose popularity follows
	// the states' Zipf popularity.
	stream, err := workload.ZipfQueryStream(domain, 5000, 1.4, 6)
	if err != nil {
		return err
	}
	for _, v := range stream {
		if _, err := tbl.CountWhere(v); err != nil {
			return err
		}
	}

	// --- The attack: one injected SELECT on the digest table. ---
	attacker := e.Connect("injected")
	res, err := attacker.Execute("SELECT * FROM performance_schema.events_statements_summary_by_digest")
	if err != nil {
		return err
	}
	fmt.Printf("injected SELECT returned %d digest rows; per-column query counts:\n", len(res.Rows))
	observed := make(map[string]int)
	truth := make(map[string]string)
	for i := range domain {
		idx, _ := tbl.Plan().ColumnFor(domain[i])
		truth[tbl.Plan().ColumnName(idx)] = domain[i]
	}
	for _, row := range res.Rows {
		digestText, count := row[1].Str, int(row[2].Int)
		for col := range truth {
			if strings.Contains(digestText, "SUM("+col+")") {
				observed[col] += count
				fmt.Printf("  %-12s queried %4d times\n", col, count)
			}
		}
	}

	// Frequency analysis: rank-match the histogram against the public
	// popularity model.
	model := make(map[string]float64, len(domain))
	for i, v := range domain {
		model[v] = 1.0 / float64(i+1)
	}
	assign := freq.RankMatch(observed, model)
	correct := 0
	fmt.Println("\nfrequency analysis (rank matching, the Lacharité-Paterson MLE):")
	for col, plaintext := range assign {
		ok := truth[col] == plaintext
		if ok {
			correct++
		}
		fmt.Printf("  %-12s -> %-4s (%v)\n", col, plaintext, ok)
	}
	fmt.Printf("\nrecovered %d/%d SPLASHE column identities without touching a ciphertext\n",
		correct, len(assign))
	return nil
}
