// Quickstart: stand up the snapdb engine, run a few statements, take a
// full-compromise snapshot, and print the leakage report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"snapdb/internal/core"
	"snapdb/internal/engine"
	"snapdb/internal/snapshot"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	e, err := engine.New(engine.Defaults())
	if err != nil {
		return err
	}
	sess := e.Connect("quickstart")
	defer sess.Close()

	for _, q := range []string{
		"CREATE TABLE users (id INT PRIMARY KEY, email TEXT, plan TEXT)",
		"INSERT INTO users (id, email, plan) VALUES (1, 'alice@example.com', 'pro')",
		"INSERT INTO users (id, email, plan) VALUES (2, 'bob@example.com', 'free')",
		"UPDATE users SET plan = 'pro' WHERE id = 2",
		"SELECT email FROM users WHERE plan = 'pro'",
	} {
		res, err := sess.Execute(q)
		if err != nil {
			return fmt.Errorf("%s: %w", q, err)
		}
		fmt.Printf("executed: %-70s rows=%d affected=%d\n", q, len(res.Rows), res.RowsAffected)
	}

	// The paper's point, in three lines: a single static snapshot...
	snap := snapshot.Capture(e, snapshot.FullCompromise)
	report, err := core.Analyze(snap, core.CatalogOf(e))
	if err != nil {
		return err
	}
	// ...contains the history of everything we just did.
	fmt.Printf("\nsnapshot (%s) reveals:\n", snap.Attack)
	fmt.Printf("  %d past writes (all reconstructable as SQL, all timestamped)\n", report.PastWrites)
	fmt.Printf("  %d past reads\n", report.PastReads)
	fmt.Printf("  %d query-type histogram rows\n", report.DigestRows)
	for _, f := range report.Findings {
		fmt.Printf("  channel %-18s %3d artifacts (%s)\n", f.Channel, f.Count, f.PaperRef)
	}
	return nil
}
