// Remote deployment, same conclusion: the application talks to snapdb
// over TCP like any production service, an encrypted workload runs
// through it — and a smash-and-grab compromise of the *server* machine
// still yields the full query history, because every artifact the
// paper describes lives server-side.
//
//	go run ./examples/remote_attack
package main

import (
	"fmt"
	"log"
	"net"

	"snapdb/internal/client"
	"snapdb/internal/core"
	"snapdb/internal/engine"
	"snapdb/internal/server"
	"snapdb/internal/snapshot"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The server side: a snapdb instance listening on localhost.
	e, err := engine.New(engine.Defaults())
	if err != nil {
		return err
	}
	srv := server.New(e)
	ready := make(chan net.Addr, 1)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	addr := (<-ready).String()
	fmt.Printf("snapdbd listening on %s\n", addr)

	// The application side: a remote client doing its day job.
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	app := []string{
		"CREATE TABLE sessions (id INT PRIMARY KEY, user_email TEXT, token TEXT)",
		"INSERT INTO sessions (id, user_email, token) VALUES (1, 'ceo@corp.example', 'sess-8f2a91c4')",
		"INSERT INTO sessions (id, user_email, token) VALUES (2, 'cfo@corp.example', 'sess-1b7d03aa')",
		"BEGIN",
		"UPDATE sessions SET token = 'sess-rotated-1' WHERE id = 1",
		"COMMIT",
		"SELECT token FROM sessions WHERE user_email = 'ceo@corp.example'",
	}
	for _, q := range app {
		if _, err := c.Execute(q); err != nil {
			return fmt.Errorf("%s: %w", q, err)
		}
	}
	if err := c.Close(); err != nil {
		return err
	}
	fmt.Printf("application executed %d statements over TCP\n\n", len(app))

	// The attack: smash-and-grab on the server host.
	rep, err := core.Analyze(snapshot.Capture(e, snapshot.FullCompromise), core.CatalogOf(e))
	if err != nil {
		return err
	}
	fmt.Println("smash-and-grab compromise of the server host recovers:")
	fmt.Printf("  %d write statements (WAL), %d timestamped (binlog)\n", rep.PastWrites, rep.TimedWrites)
	fmt.Printf("  %d read statements across channels\n", rep.PastReads)
	if f, ok := rep.Finding("heap"); ok {
		fmt.Println("  heap residue samples:")
		for _, s := range f.Samples {
			fmt.Printf("    | %.88s\n", s)
		}
	}
	fmt.Println("\nnothing about the network hop changed the outcome: the statement")
	fmt.Println("text, tokens, and history live on the DBMS host the attacker took.")

	if err := srv.Close(); err != nil {
		return err
	}
	return <-serveDone
}
