// Package binlog implements the engine's binary log: a statement-based
// replication log holding the full text of every transaction that
// modifies any row, together with its UNIX timestamp and the commit
// LSN. It mirrors MySQL's binlog, which §3 of the paper highlights:
// it is present on any production (replicated) server, its contents are
// never purged without an explicit administrative command, and it gives
// a disk-snapshot attacker both query text and timing.
//
// On disk (Serialize) every event travels inside a CRC32-C frame, so a
// reader can stop cleanly at a torn or corrupt tail. Reader implements
// the pre-installed mysqlbinlog-style utility view.
package binlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"snapdb/internal/storage"
)

// Event is one logged write transaction.
type Event struct {
	Timestamp int64  // UNIX seconds
	LSN       uint64 // engine LSN at commit time
	Statement string // full statement text, literals included
}

// eventHeaderSize is the encoded event header: timestamp(8) lsn(8)
// statementLen(4).
const eventHeaderSize = 20

// EncodedSize returns the encoded size of the event without encoding it.
func (ev Event) EncodedSize() int { return eventHeaderSize + len(ev.Statement) }

// Encode serializes one event (the frame payload).
func (ev Event) Encode() []byte {
	return ev.AppendEncode(make([]byte, 0, ev.EncodedSize()))
}

// AppendEncode appends the event's encoding to dst and returns the
// extended slice, so batch serializers can reuse one buffer.
func (ev Event) AppendEncode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(ev.Timestamp))
	dst = binary.BigEndian.AppendUint64(dst, ev.LSN)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ev.Statement)))
	return append(dst, ev.Statement...)
}

// DecodeEvent parses one encoded event, returning it and the bytes
// consumed. It never panics on malformed input.
func DecodeEvent(b []byte) (Event, int, error) {
	if len(b) < eventHeaderSize {
		return Event{}, 0, fmt.Errorf("binlog: event header truncated (%d bytes)", len(b))
	}
	ev := Event{
		Timestamp: int64(binary.BigEndian.Uint64(b)),
		LSN:       binary.BigEndian.Uint64(b[8:]),
	}
	n := int(binary.BigEndian.Uint32(b[16:]))
	if len(b) < eventHeaderSize+n {
		return Event{}, 0, fmt.Errorf("binlog: statement truncated (want %d bytes)", n)
	}
	ev.Statement = string(b[eventHeaderSize : eventHeaderSize+n])
	return ev, eventHeaderSize + n, nil
}

// pendBatch is one caller's events in the group-commit queue.
type pendBatch struct {
	evs    []Event
	ticket uint64
}

// Log is the binary log. It grows without bound until Purge is called,
// matching MySQL's default retention.
//
// Concurrent sessions commit through a group-commit pipeline (Commit /
// CommitBatch): each event is stamped — commit-time LSN from LSNSource,
// timestamp clamped to be non-decreasing — and queued under one short
// critical section, and a single leader drains the queue into the event
// log while followers wait. Queue order therefore equals stamp order,
// which keeps the on-disk binlog monotone in both timestamp and LSN —
// the invariant the paper's LSN↔timestamp correlation (E3) regresses
// over. A transaction's buffered events commit as one contiguous batch,
// like MySQL's binlog cache.
//
// If a Sink is attached, the leader hands each flushed batch to it
// before the events become visible in the log; a sink failure is
// reported to every caller whose events rode in that batch.
type Log struct {
	mu     sync.Mutex // guards events
	events []Event

	// LSNSource, when set (the engine wires it to wal.Manager.CurrentLSN),
	// stamps each committed event with the engine LSN at commit time.
	// Events passed to the raw Append keep their caller-supplied LSN.
	LSNSource func() uint64

	// Sink, if set, receives each flushed batch before it is appended
	// to the in-memory log — the persistence layer's durability hook.
	// Set it before concurrent use.
	Sink func([]Event) error

	gmu      sync.Mutex // guards the group-commit queue and stamps
	flushed  *sync.Cond
	pending  []pendBatch
	errs     map[uint64]error // per-ticket flush errors, read once by the waiter
	flushing bool
	enqTotal uint64
	flTotal  uint64
	flushes  uint64
	lastTs   int64
	lastLSN  uint64
}

// New creates an empty binlog.
func New() *Log {
	l := &Log{errs: make(map[uint64]error)}
	l.flushed = sync.NewCond(&l.gmu)
	return l
}

// Append records a write transaction exactly as given, bypassing the
// group-commit stamping. Forensic tooling, recovery, and tests use it
// to rebuild binlog images; the engine commits through Commit/CommitBatch.
func (l *Log) Append(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, ev)
}

// Commit stamps and records one event through the group-commit
// pipeline, returning once it is durable (if a Sink is attached) and
// visible in the log.
func (l *Log) Commit(ev Event) error { return l.CommitBatch([]Event{ev}) }

// CommitBatch commits a transaction's events as one contiguous,
// stamped batch. Within the enqueue critical section every event gets
// its commit-time LSN (from LSNSource) and a timestamp clamped to the
// previous commit's, so binlog order is non-decreasing in both fields.
func (l *Log) CommitBatch(evs []Event) error {
	if len(evs) == 0 {
		return nil
	}
	l.gmu.Lock()
	for i := range evs {
		if l.LSNSource != nil {
			evs[i].LSN = l.LSNSource()
		}
		if evs[i].LSN < l.lastLSN {
			evs[i].LSN = l.lastLSN
		}
		l.lastLSN = evs[i].LSN
		if evs[i].Timestamp < l.lastTs {
			evs[i].Timestamp = l.lastTs
		}
		l.lastTs = evs[i].Timestamp
	}
	l.enqTotal += uint64(len(evs))
	ticket := l.enqTotal
	l.pending = append(l.pending, pendBatch{evs: evs, ticket: ticket})
	if l.flushing {
		for l.flTotal < ticket {
			l.flushed.Wait()
		}
		err := l.errs[ticket]
		delete(l.errs, ticket)
		l.gmu.Unlock()
		return err
	}
	l.flushing = true
	sink := l.Sink
	for len(l.pending) > 0 {
		batch := l.pending
		l.pending = nil
		l.gmu.Unlock()
		flat := make([]Event, 0, len(batch))
		for _, b := range batch {
			flat = append(flat, b.evs...)
		}
		var serr error
		if sink != nil {
			serr = sink(flat)
		}
		if serr == nil {
			l.mu.Lock()
			l.events = append(l.events, flat...)
			l.mu.Unlock()
		}
		l.gmu.Lock()
		for _, b := range batch {
			l.flTotal += uint64(len(b.evs))
			if serr != nil {
				l.errs[b.ticket] = serr
			}
		}
		l.flushes++
		l.flushed.Broadcast()
	}
	l.flushing = false
	err := l.errs[ticket]
	delete(l.errs, ticket)
	l.gmu.Unlock()
	return err
}

// Prime raises the monotone stamping floor. Recovery calls it after
// repopulating the log from disk, so post-recovery commits continue
// non-decreasing in timestamp and LSN.
func (l *Log) Prime(ts int64, lsn uint64) {
	l.gmu.Lock()
	defer l.gmu.Unlock()
	if ts > l.lastTs {
		l.lastTs = ts
	}
	if lsn > l.lastLSN {
		l.lastLSN = lsn
	}
}

// GroupCommitStats reports committed event and batch-flush counts;
// committed/flushes is the mean group size.
func (l *Log) GroupCommitStats() (committed, flushes uint64) {
	l.gmu.Lock()
	defer l.gmu.Unlock()
	return l.flTotal, l.flushes
}

// Events returns all retained events, oldest first.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the retained event count.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Purge discards all events up to (excluding) the first one with
// timestamp >= before — the explicit administrative command the paper
// notes is the only way binlog content disappears.
func (l *Log) Purge(before int64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	cut := 0
	for cut < len(l.events) && l.events[cut].Timestamp < before {
		cut++
	}
	l.events = append([]Event(nil), l.events[cut:]...)
	return cut
}

// Serialize renders the log as a byte image (the on-disk binlog file):
// one CRC32-C frame per event.
func (l *Log) Serialize() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	size := 0
	for _, ev := range l.events {
		size += storage.FrameHeaderSize + ev.EncodedSize()
	}
	out := make([]byte, 0, size)
	var scratch []byte
	for _, ev := range l.events {
		scratch = ev.AppendEncode(scratch[:0])
		out = storage.AppendFrame(out, scratch)
	}
	return out
}

// ParseReport describes how a binlog image parse ended.
type ParseReport struct {
	// Events is the number of valid events parsed.
	Events int
	// TruncatedAt is the byte offset of the first bad frame, or -1 if
	// the image parsed cleanly to the end.
	TruncatedAt int
	// Reason says why the scan stopped.
	Reason string
}

// Truncated reports whether the parse stopped before the end of the
// image.
func (p ParseReport) Truncated() bool { return p.TruncatedAt >= 0 }

// ParseWithReport decodes a Serialize image, stopping at the first torn
// or corrupt frame and reporting where and why. It never panics on
// malformed input.
func ParseWithReport(img []byte) ([]Event, ParseReport) {
	var out []Event
	rep := ParseReport{TruncatedAt: -1}
	pos := 0
	for pos < len(img) {
		payload, n, err := storage.ReadFrame(img[pos:])
		if err != nil {
			rep.TruncatedAt = pos
			if errors.Is(err, storage.ErrFrameTruncated) {
				rep.Reason = "torn frame"
			} else {
				rep.Reason = err.Error()
			}
			return out, rep
		}
		ev, en, derr := DecodeEvent(payload)
		if derr != nil || en != len(payload) {
			rep.TruncatedAt = pos
			if derr == nil {
				derr = fmt.Errorf("%d trailing bytes in frame", len(payload)-en)
			}
			rep.Reason = "bad event: " + derr.Error()
			return out, rep
		}
		out = append(out, ev)
		rep.Events++
		pos += n
	}
	return out, rep
}

// Parse decodes a Serialize image — the mysqlbinlog-equivalent reader a
// forensic analyst runs over a stolen disk. Unlike ParseWithReport it
// treats any truncation or corruption as an error.
func Parse(img []byte) ([]Event, error) {
	evs, rep := ParseWithReport(img)
	if rep.Truncated() {
		return nil, fmt.Errorf("binlog: bad image at offset %d: %s", rep.TruncatedAt, rep.Reason)
	}
	return evs, nil
}
