// Package binlog implements the engine's binary log: a statement-based
// replication log holding the full text of every transaction that
// modifies any row, together with its UNIX timestamp and the commit
// LSN. It mirrors MySQL's binlog, which §3 of the paper highlights:
// it is present on any production (replicated) server, its contents are
// never purged without an explicit administrative command, and it gives
// a disk-snapshot attacker both query text and timing.
//
// Reader implements the pre-installed mysqlbinlog-style utility view.
package binlog

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Event is one logged write transaction.
type Event struct {
	Timestamp int64  // UNIX seconds
	LSN       uint64 // engine LSN at commit time
	Statement string // full statement text, literals included
}

// Log is the binary log. It grows without bound until Purge is called,
// matching MySQL's default retention.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// New creates an empty binlog.
func New() *Log { return &Log{} }

// Append records a write transaction.
func (l *Log) Append(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, ev)
}

// Events returns all retained events, oldest first.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the retained event count.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Purge discards all events up to (excluding) the first one with
// timestamp >= before — the explicit administrative command the paper
// notes is the only way binlog content disappears.
func (l *Log) Purge(before int64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	cut := 0
	for cut < len(l.events) && l.events[cut].Timestamp < before {
		cut++
	}
	l.events = append([]Event(nil), l.events[cut:]...)
	return cut
}

// Serialize renders the log as a byte image (the on-disk binlog file):
// per event u64 timestamp, u64 LSN, u32 length, statement bytes.
func (l *Log) Serialize() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []byte
	for _, ev := range l.events {
		out = binary.BigEndian.AppendUint64(out, uint64(ev.Timestamp))
		out = binary.BigEndian.AppendUint64(out, ev.LSN)
		out = binary.BigEndian.AppendUint32(out, uint32(len(ev.Statement)))
		out = append(out, ev.Statement...)
	}
	return out
}

// Parse decodes a Serialize image — the mysqlbinlog-equivalent reader a
// forensic analyst runs over a stolen disk.
func Parse(img []byte) ([]Event, error) {
	var out []Event
	pos := 0
	for pos < len(img) {
		if pos+20 > len(img) {
			return nil, fmt.Errorf("binlog: event header truncated at offset %d", pos)
		}
		ev := Event{
			Timestamp: int64(binary.BigEndian.Uint64(img[pos:])),
			LSN:       binary.BigEndian.Uint64(img[pos+8:]),
		}
		n := int(binary.BigEndian.Uint32(img[pos+16:]))
		pos += 20
		if pos+n > len(img) {
			return nil, fmt.Errorf("binlog: statement truncated at offset %d (want %d bytes)", pos, n)
		}
		ev.Statement = string(img[pos : pos+n])
		pos += n
		out = append(out, ev)
	}
	return out, nil
}
