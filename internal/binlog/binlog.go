// Package binlog implements the engine's binary log: a statement-based
// replication log holding the full text of every transaction that
// modifies any row, together with its UNIX timestamp and the commit
// LSN. It mirrors MySQL's binlog, which §3 of the paper highlights:
// it is present on any production (replicated) server, its contents are
// never purged without an explicit administrative command, and it gives
// a disk-snapshot attacker both query text and timing.
//
// Reader implements the pre-installed mysqlbinlog-style utility view.
package binlog

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Event is one logged write transaction.
type Event struct {
	Timestamp int64  // UNIX seconds
	LSN       uint64 // engine LSN at commit time
	Statement string // full statement text, literals included
}

// Log is the binary log. It grows without bound until Purge is called,
// matching MySQL's default retention.
//
// Concurrent sessions commit through a group-commit pipeline (Commit /
// CommitBatch): each event is stamped — commit-time LSN from LSNSource,
// timestamp clamped to be non-decreasing — and queued under one short
// critical section, and a single leader drains the queue into the event
// log while followers wait. Queue order therefore equals stamp order,
// which keeps the on-disk binlog monotone in both timestamp and LSN —
// the invariant the paper's LSN↔timestamp correlation (E3) regresses
// over. A transaction's buffered events commit as one contiguous batch,
// like MySQL's binlog cache.
type Log struct {
	mu     sync.Mutex // guards events
	events []Event

	// LSNSource, when set (the engine wires it to wal.Manager.CurrentLSN),
	// stamps each committed event with the engine LSN at commit time.
	// Events passed to the raw Append keep their caller-supplied LSN.
	LSNSource func() uint64

	gmu      sync.Mutex // guards the group-commit queue and stamps
	flushed  *sync.Cond
	pending  []Event
	flushing bool
	enqTotal uint64
	flTotal  uint64
	flushes  uint64
	lastTs   int64
	lastLSN  uint64
}

// New creates an empty binlog.
func New() *Log {
	l := &Log{}
	l.flushed = sync.NewCond(&l.gmu)
	return l
}

// Append records a write transaction exactly as given, bypassing the
// group-commit stamping. Forensic tooling and tests use it to build
// binlog images; the engine commits through Commit/CommitBatch.
func (l *Log) Append(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, ev)
}

// Commit stamps and records one event through the group-commit
// pipeline, returning once it is visible in the log.
func (l *Log) Commit(ev Event) { l.CommitBatch([]Event{ev}) }

// CommitBatch commits a transaction's events as one contiguous,
// stamped batch. Within the enqueue critical section every event gets
// its commit-time LSN (from LSNSource) and a timestamp clamped to the
// previous commit's, so binlog order is non-decreasing in both fields.
func (l *Log) CommitBatch(evs []Event) {
	if len(evs) == 0 {
		return
	}
	l.gmu.Lock()
	for i := range evs {
		if l.LSNSource != nil {
			evs[i].LSN = l.LSNSource()
		}
		if evs[i].LSN < l.lastLSN {
			evs[i].LSN = l.lastLSN
		}
		l.lastLSN = evs[i].LSN
		if evs[i].Timestamp < l.lastTs {
			evs[i].Timestamp = l.lastTs
		}
		l.lastTs = evs[i].Timestamp
	}
	l.pending = append(l.pending, evs...)
	l.enqTotal += uint64(len(evs))
	ticket := l.enqTotal
	if l.flushing {
		for l.flTotal < ticket {
			l.flushed.Wait()
		}
		l.gmu.Unlock()
		return
	}
	l.flushing = true
	for len(l.pending) > 0 {
		batch := l.pending
		l.pending = nil
		l.gmu.Unlock()
		l.mu.Lock()
		l.events = append(l.events, batch...)
		l.mu.Unlock()
		l.gmu.Lock()
		l.flTotal += uint64(len(batch))
		l.flushes++
		l.flushed.Broadcast()
	}
	l.flushing = false
	l.gmu.Unlock()
}

// GroupCommitStats reports committed event and batch-flush counts;
// committed/flushes is the mean group size.
func (l *Log) GroupCommitStats() (committed, flushes uint64) {
	l.gmu.Lock()
	defer l.gmu.Unlock()
	return l.flTotal, l.flushes
}

// Events returns all retained events, oldest first.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the retained event count.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Purge discards all events up to (excluding) the first one with
// timestamp >= before — the explicit administrative command the paper
// notes is the only way binlog content disappears.
func (l *Log) Purge(before int64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	cut := 0
	for cut < len(l.events) && l.events[cut].Timestamp < before {
		cut++
	}
	l.events = append([]Event(nil), l.events[cut:]...)
	return cut
}

// Serialize renders the log as a byte image (the on-disk binlog file):
// per event u64 timestamp, u64 LSN, u32 length, statement bytes.
func (l *Log) Serialize() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []byte
	for _, ev := range l.events {
		out = binary.BigEndian.AppendUint64(out, uint64(ev.Timestamp))
		out = binary.BigEndian.AppendUint64(out, ev.LSN)
		out = binary.BigEndian.AppendUint32(out, uint32(len(ev.Statement)))
		out = append(out, ev.Statement...)
	}
	return out
}

// Parse decodes a Serialize image — the mysqlbinlog-equivalent reader a
// forensic analyst runs over a stolen disk.
func Parse(img []byte) ([]Event, error) {
	var out []Event
	pos := 0
	for pos < len(img) {
		if pos+20 > len(img) {
			return nil, fmt.Errorf("binlog: event header truncated at offset %d", pos)
		}
		ev := Event{
			Timestamp: int64(binary.BigEndian.Uint64(img[pos:])),
			LSN:       binary.BigEndian.Uint64(img[pos+8:]),
		}
		n := int(binary.BigEndian.Uint32(img[pos+16:]))
		pos += 20
		if pos+n > len(img) {
			return nil, fmt.Errorf("binlog: statement truncated at offset %d (want %d bytes)", pos, n)
		}
		ev.Statement = string(img[pos : pos+n])
		pos += n
		out = append(out, ev)
	}
	return out, nil
}
