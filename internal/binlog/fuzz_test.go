package binlog

import (
	"errors"
	"strings"
	"testing"
)

// FuzzDecodeEvent asserts event decoding never panics and consumed
// bytes round-trip.
func FuzzDecodeEvent(f *testing.F) {
	f.Add(Event{Timestamp: 100, LSN: 7, Statement: "INSERT INTO t VALUES (1)"}.Encode())
	f.Add([]byte{})
	f.Add(make([]byte, eventHeaderSize-1))
	f.Fuzz(func(t *testing.T, data []byte) {
		ev, n, err := DecodeEvent(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if got := ev.Encode(); len(got) != n {
			t.Fatalf("re-encode length %d != consumed %d", len(got), n)
		}
	})
}

// FuzzParse asserts the image parser never panics and its report stays
// consistent with the parsed events.
func FuzzParse(f *testing.F) {
	l := New()
	l.Append(Event{Timestamp: 1, LSN: 10, Statement: "UPDATE t SET v = 1"})
	l.Append(Event{Timestamp: 2, LSN: 20, Statement: "DELETE FROM t"})
	img := l.Serialize()
	f.Add(img)
	f.Add(img[:len(img)-3])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, rep := ParseWithReport(data)
		if len(evs) != rep.Events {
			t.Fatalf("events %d != report %d", len(evs), rep.Events)
		}
		if rep.Truncated() && (rep.TruncatedAt > len(data) || rep.Reason == "") {
			t.Fatalf("bad report: %+v for %d bytes", rep, len(data))
		}
	})
}

func TestParseWithReportTornAndCorrupt(t *testing.T) {
	l := New()
	l.Append(Event{Timestamp: 1, LSN: 10, Statement: "INSERT INTO t VALUES (1)"})
	l.Append(Event{Timestamp: 2, LSN: 20, Statement: "INSERT INTO t VALUES (2)"})
	img := l.Serialize()

	evs, rep := ParseWithReport(img)
	if rep.Truncated() || len(evs) != 2 {
		t.Fatalf("clean image: %d events, report %+v", len(evs), rep)
	}

	evs, rep = ParseWithReport(img[:len(img)-5])
	if len(evs) != 1 || rep.Reason != "torn frame" {
		t.Errorf("torn tail: %d events, reason %q", len(evs), rep.Reason)
	}

	bad := append([]byte(nil), img...)
	bad[len(img)/2+8] ^= 0x40
	evs, rep = ParseWithReport(bad)
	if !rep.Truncated() {
		t.Error("corruption went undetected")
	}
	if len(evs) > 1 {
		t.Errorf("corrupt image yielded %d events", len(evs))
	}
}

func TestBinlogSinkErrorPropagates(t *testing.T) {
	l := New()
	boom := errors.New("binlog device gone")
	l.Sink = func([]Event) error { return boom }
	err := l.Commit(Event{Timestamp: 1, Statement: "INSERT INTO t VALUES (1)"})
	if !errors.Is(err, boom) {
		t.Fatalf("Commit error = %v, want sink error", err)
	}
	if l.Len() != 0 {
		t.Errorf("failed sink left %d events visible", l.Len())
	}
	l.Sink = nil
	if err := l.Commit(Event{Timestamp: 2, Statement: "INSERT INTO t VALUES (2)"}); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Errorf("events after sink cleared = %d, want 1", l.Len())
	}
}

func TestPrimeRaisesStampFloor(t *testing.T) {
	l := New()
	l.Prime(1000, 500)
	if err := l.Commit(Event{Timestamp: 5, LSN: 3, Statement: "INSERT INTO t VALUES (1)"}); err != nil {
		t.Fatal(err)
	}
	evs := l.Events()
	if evs[0].Timestamp != 1000 || evs[0].LSN != 500 {
		t.Errorf("stamps not clamped to primed floor: %+v", evs[0])
	}
	// Prime never lowers the floor.
	l.Prime(1, 1)
	if err := l.Commit(Event{Timestamp: 2000, LSN: 600, Statement: "INSERT INTO t VALUES (2)"}); err != nil {
		t.Fatal(err)
	}
	evs = l.Events()
	if evs[1].Timestamp != 2000 || evs[1].LSN != 600 {
		t.Errorf("floor wrongly lowered: %+v", evs[1])
	}
}

func TestParseErrorMentionsOffset(t *testing.T) {
	l := New()
	l.Append(Event{Timestamp: 1, LSN: 1, Statement: "SELECT 1"})
	img := l.Serialize()
	_, err := Parse(img[:len(img)-1])
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Errorf("Parse error = %v, want offset mention", err)
	}
}
