package binlog

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestAppendAndEvents(t *testing.T) {
	l := New()
	l.Append(Event{Timestamp: 100, LSN: 1, Statement: "INSERT INTO t (id) VALUES (1)"})
	l.Append(Event{Timestamp: 101, LSN: 2, Statement: "UPDATE t SET v = 2 WHERE id = 1"})
	evs := l.Events()
	if len(evs) != 2 || l.Len() != 2 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Timestamp != 100 || evs[1].LSN != 2 {
		t.Errorf("events = %+v", evs)
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	l := New()
	stmts := []string{
		"INSERT INTO accounts (id, ssn) VALUES (1, '078-05-1120')",
		"UPDATE accounts SET balance = 99 WHERE id = 1",
		"DELETE FROM accounts WHERE id = 1",
	}
	for i, s := range stmts {
		l.Append(Event{Timestamp: int64(1000 + i), LSN: uint64(i * 50), Statement: s})
	}
	parsed, err := Parse(l.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(stmts) {
		t.Fatalf("parsed %d events", len(parsed))
	}
	for i, ev := range parsed {
		if ev.Statement != stmts[i] || ev.Timestamp != int64(1000+i) || ev.LSN != uint64(i*50) {
			t.Errorf("event %d = %+v", i, ev)
		}
	}
}

func TestParseRejectsTruncation(t *testing.T) {
	l := New()
	l.Append(Event{Timestamp: 1, LSN: 1, Statement: "INSERT INTO t (id) VALUES (1)"})
	img := l.Serialize()
	if _, err := Parse(img[:len(img)-3]); err == nil {
		t.Error("truncated statement accepted")
	}
	if _, err := Parse(img[:10]); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestParseEmpty(t *testing.T) {
	evs, err := Parse(nil)
	if err != nil || len(evs) != 0 {
		t.Errorf("empty: evs=%d err=%v", len(evs), err)
	}
}

func TestPurge(t *testing.T) {
	l := New()
	for i := int64(0); i < 10; i++ {
		l.Append(Event{Timestamp: i, LSN: uint64(i), Statement: "x"})
	}
	purged := l.Purge(5)
	if purged != 5 {
		t.Errorf("purged %d, want 5", purged)
	}
	evs := l.Events()
	if len(evs) != 5 || evs[0].Timestamp != 5 {
		t.Errorf("remaining = %+v", evs)
	}
	if l.Purge(0) != 0 {
		t.Error("purge before oldest removed events")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(ts int64, lsn uint64, stmt string) bool {
		l := New()
		l.Append(Event{Timestamp: ts, LSN: lsn, Statement: stmt})
		evs, err := Parse(l.Serialize())
		return err == nil && len(evs) == 1 && evs[0] == (Event{Timestamp: ts, LSN: lsn, Statement: stmt})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	l := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Append(Event{Timestamp: int64(i), LSN: uint64(i), Statement: "INSERT INTO t (id, v) VALUES (1, 'x')"})
	}
}

func TestCommitStampsMonotoneOrder(t *testing.T) {
	l := New()
	var lsn uint64
	l.LSNSource = func() uint64 { return lsn }

	lsn = 10
	l.Commit(Event{Timestamp: 100, Statement: "a"})
	lsn = 30
	l.Commit(Event{Timestamp: 200, Statement: "b"})
	// A clock that runs backwards (or a slow writer stamped earlier)
	// must not produce a regressing binlog: both fields clamp.
	lsn = 20
	l.Commit(Event{Timestamp: 150, Statement: "c"})

	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].LSN != 10 || evs[1].LSN != 30 {
		t.Errorf("LSNs = %d, %d", evs[0].LSN, evs[1].LSN)
	}
	if evs[2].LSN != 30 || evs[2].Timestamp != 200 {
		t.Errorf("regressing event not clamped: LSN=%d ts=%d", evs[2].LSN, evs[2].Timestamp)
	}
}

func TestCommitConcurrentMonotone(t *testing.T) {
	l := New()
	var lsn atomic.Uint64
	l.LSNSource = func() uint64 { return lsn.Add(1) }

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				l.Commit(Event{Timestamp: int64(100 + i), Statement: "s"})
			}
		}(w)
	}
	wg.Wait()

	evs := l.Events()
	if len(evs) != workers*perWorker {
		t.Fatalf("events = %d, want %d", len(evs), workers*perWorker)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Timestamp < evs[i-1].Timestamp {
			t.Fatalf("timestamp regressed at %d", i)
		}
		if evs[i].LSN < evs[i-1].LSN {
			t.Fatalf("LSN regressed at %d", i)
		}
	}
	committed, flushes := l.GroupCommitStats()
	if committed != workers*perWorker {
		t.Errorf("committed = %d", committed)
	}
	if flushes == 0 || flushes > committed {
		t.Errorf("flushes = %d, committed = %d", flushes, committed)
	}
}
