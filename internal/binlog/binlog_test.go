package binlog

import (
	"testing"
	"testing/quick"
)

func TestAppendAndEvents(t *testing.T) {
	l := New()
	l.Append(Event{Timestamp: 100, LSN: 1, Statement: "INSERT INTO t (id) VALUES (1)"})
	l.Append(Event{Timestamp: 101, LSN: 2, Statement: "UPDATE t SET v = 2 WHERE id = 1"})
	evs := l.Events()
	if len(evs) != 2 || l.Len() != 2 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Timestamp != 100 || evs[1].LSN != 2 {
		t.Errorf("events = %+v", evs)
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	l := New()
	stmts := []string{
		"INSERT INTO accounts (id, ssn) VALUES (1, '078-05-1120')",
		"UPDATE accounts SET balance = 99 WHERE id = 1",
		"DELETE FROM accounts WHERE id = 1",
	}
	for i, s := range stmts {
		l.Append(Event{Timestamp: int64(1000 + i), LSN: uint64(i * 50), Statement: s})
	}
	parsed, err := Parse(l.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(stmts) {
		t.Fatalf("parsed %d events", len(parsed))
	}
	for i, ev := range parsed {
		if ev.Statement != stmts[i] || ev.Timestamp != int64(1000+i) || ev.LSN != uint64(i*50) {
			t.Errorf("event %d = %+v", i, ev)
		}
	}
}

func TestParseRejectsTruncation(t *testing.T) {
	l := New()
	l.Append(Event{Timestamp: 1, LSN: 1, Statement: "INSERT INTO t (id) VALUES (1)"})
	img := l.Serialize()
	if _, err := Parse(img[:len(img)-3]); err == nil {
		t.Error("truncated statement accepted")
	}
	if _, err := Parse(img[:10]); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestParseEmpty(t *testing.T) {
	evs, err := Parse(nil)
	if err != nil || len(evs) != 0 {
		t.Errorf("empty: evs=%d err=%v", len(evs), err)
	}
}

func TestPurge(t *testing.T) {
	l := New()
	for i := int64(0); i < 10; i++ {
		l.Append(Event{Timestamp: i, LSN: uint64(i), Statement: "x"})
	}
	purged := l.Purge(5)
	if purged != 5 {
		t.Errorf("purged %d, want 5", purged)
	}
	evs := l.Events()
	if len(evs) != 5 || evs[0].Timestamp != 5 {
		t.Errorf("remaining = %+v", evs)
	}
	if l.Purge(0) != 0 {
		t.Error("purge before oldest removed events")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(ts int64, lsn uint64, stmt string) bool {
		l := New()
		l.Append(Event{Timestamp: ts, LSN: lsn, Statement: stmt})
		evs, err := Parse(l.Serialize())
		return err == nil && len(evs) == 1 && evs[0] == (Event{Timestamp: ts, LSN: lsn, Statement: stmt})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	l := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Append(Event{Timestamp: int64(i), LSN: uint64(i), Statement: "INSERT INTO t (id, v) VALUES (1, 'x')"})
	}
}
