package mitigate

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"snapdb/internal/core"
	"snapdb/internal/engine"
	"snapdb/internal/snapshot"
)

// demoWorkload mixes writes and reads, including a "sensitive" SELECT.
func demoWorkload(e *engine.Engine) error {
	s := e.Connect("app")
	for _, q := range []string{
		"CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance INT)",
		"INSERT INTO accounts (id, owner, balance) VALUES (1, 'alice', 100)",
		"INSERT INTO accounts (id, owner, balance) VALUES (2, 'bob', 250)",
		"UPDATE accounts SET balance = 175 WHERE id = 2",
		"SELECT owner FROM accounts WHERE balance >= 150",
	} {
		if _, err := s.Execute(q); err != nil {
			return fmt.Errorf("%s: %w", q, err)
		}
	}
	return nil
}

func TestHardenFlags(t *testing.T) {
	cfg := Harden(engine.Defaults(), true)
	if !cfg.SecureHeapDelete || !cfg.DisablePerfSchema || !cfg.ScrubProcesslist {
		t.Errorf("hardening flags not set: %+v", cfg)
	}
	if cfg.EnableQueryCache || cfg.EnableGeneralLog || !cfg.DisableSlowLog {
		t.Errorf("optional channels not disabled: %+v", cfg)
	}
	if !cfg.EnableBinlog {
		t.Error("keepBinlog=true did not keep the binlog")
	}
	if Harden(engine.Defaults(), false).EnableBinlog {
		t.Error("keepBinlog=false kept the binlog")
	}
}

func TestSecureHeapDeleteRemovesResidue(t *testing.T) {
	cfg := Harden(engine.Defaults(), true)
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := e.Connect("app")
	if _, err := s.Execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	marker := "SELECT v FROM t WHERE id = 314159265"
	if _, err := s.Execute(marker); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(e.Arena().Dump(), []byte(marker)) {
		t.Error("hardened heap still holds freed query text")
	}
}

func TestHardenedDiagnosticsEmpty(t *testing.T) {
	e, err := engine.New(Harden(engine.Defaults(), true))
	if err != nil {
		t.Fatal(err)
	}
	if err := demoWorkload(e); err != nil {
		t.Fatal(err)
	}
	snap := snapshot.Capture(e, snapshot.SQLInjection)
	if len(snap.Diagnostics.History) != 0 || len(snap.Diagnostics.DigestSummary) != 0 {
		t.Error("hardened engine still populates performance_schema")
	}
	for _, p := range snap.Diagnostics.Processlist {
		if p.State == "idle" && p.Statement != "" {
			t.Errorf("processlist not scrubbed: %+v", p)
		}
	}
}

func TestCompareClosesVolatileChannelsOnly(t *testing.T) {
	cmp, err := Compare(engine.Defaults(), true, snapshot.FullCompromise, demoWorkload)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ChannelDiff{}
	for _, ch := range cmp.Channels {
		byName[ch.Channel] = ch
	}
	for _, closable := range []string{"heap", "query-cache", "digest-table", "statement-history", "processlist"} {
		ch, ok := byName[closable]
		if !ok {
			t.Errorf("channel %q absent from the default run", closable)
			continue
		}
		if !ch.Closed {
			t.Errorf("hardening did not close %q (default=%d hardened=%d)", closable, ch.Default, ch.Hardened)
		}
	}
	// The paper's point: the write-history channels are inherent.
	for _, inherent := range []string{"wal", "binlog"} {
		ch := byName[inherent]
		if ch.Hardened == 0 {
			t.Errorf("channel %q unexpectedly closed — ACID/replication leakage should remain", inherent)
		}
	}
	if len(cmp.Inherent) == 0 {
		t.Error("no inherent channels reported")
	}
	if !strings.Contains(cmp.Render(), "inherent channels remaining") {
		t.Error("render missing summary line")
	}
}

func TestCompareWithoutBinlog(t *testing.T) {
	cmp, err := Compare(engine.Defaults(), false, snapshot.DiskTheft, demoWorkload)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range cmp.Channels {
		if ch.Channel == "binlog" && ch.Hardened != 0 {
			t.Error("binlog channel survived keepBinlog=false")
		}
		if ch.Channel == "wal" && ch.Hardened == 0 {
			t.Error("WAL closed; it must be inherent")
		}
	}
}

func TestCompareWorkloadError(t *testing.T) {
	bad := func(e *engine.Engine) error { return fmt.Errorf("boom") }
	if _, err := Compare(engine.Defaults(), true, snapshot.DiskTheft, bad); err == nil {
		t.Error("workload error swallowed")
	}
}

func TestHardenedEngineStillAnswersQueries(t *testing.T) {
	// Hardening must not break functionality.
	e, err := engine.New(Harden(engine.Defaults(), true))
	if err != nil {
		t.Fatal(err)
	}
	if err := demoWorkload(e); err != nil {
		t.Fatal(err)
	}
	s := e.Connect("check")
	res, err := s.Execute("SELECT COUNT(*) FROM accounts")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 2 {
		t.Errorf("count = %d", res.Rows[0][0].Int)
	}
	// And the report machinery still works against it.
	rep, err := core.Analyze(snapshot.Capture(e, snapshot.FullCompromise), core.CatalogOf(e))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PastWrites == 0 {
		t.Error("WAL reconstruction broken on hardened engine")
	}
}
