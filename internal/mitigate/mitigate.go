// Package mitigate makes §7 of the paper concrete: which snapshot
// leakage channels *can* a deployment close with configuration, and
// which are inherent to running an ACID, replicated DBMS?
//
// Harden produces the most conservative configuration the engine
// supports: secure heap deletion, no performance_schema, a scrubbed
// processlist, no query cache, no query logs. Compare then diffs the
// leakage reports of a default and a hardened engine under the same
// workload and attack. The result is the paper's closing argument in
// table form: the volatile channels close, but the WAL and binlog —
// which exist because of transactional guarantees and high
// availability — keep the write history an attacker needs.
package mitigate

import (
	"fmt"
	"sort"
	"strings"

	"snapdb/internal/core"
	"snapdb/internal/engine"
	"snapdb/internal/snapshot"
)

// Harden returns cfg with every optional leakage channel disabled.
// The WAL cannot be disabled (ACID requires it); the binlog is left on
// by default because replicated production systems cannot run without
// it — pass keepBinlog = false to model a single-node deployment that
// can afford to lose point-in-time recovery.
func Harden(cfg engine.Config, keepBinlog bool) engine.Config {
	cfg.EnableBinlog = keepBinlog
	cfg.EnableGeneralLog = false
	cfg.EnableQueryCache = false
	cfg.DisableSlowLog = true
	cfg.SecureHeapDelete = true
	cfg.DisablePerfSchema = true
	cfg.ScrubProcesslist = true
	return cfg
}

// ChannelDiff compares one channel across the two configurations.
type ChannelDiff struct {
	Channel  string
	Default  int // artifacts recovered from the default engine
	Hardened int // artifacts recovered from the hardened engine
	Closed   bool
}

// Comparison is the outcome of running the same workload on a default
// and a hardened engine and attacking both.
type Comparison struct {
	Attack   snapshot.AttackType
	Channels []ChannelDiff
	// Inherent lists channels the hardened engine still leaks on.
	Inherent []string
}

// Render formats the comparison table.
func (c *Comparison) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "hardening comparison under %s\n", c.Attack)
	fmt.Fprintf(&sb, "%-20s  %-8s  %-8s  %s\n", "channel", "default", "hardened", "closed")
	fmt.Fprintf(&sb, "%-20s  %-8s  %-8s  %s\n", strings.Repeat("-", 20), "-------", "--------", "------")
	for _, ch := range c.Channels {
		fmt.Fprintf(&sb, "%-20s  %-8d  %-8d  %v\n", ch.Channel, ch.Default, ch.Hardened, ch.Closed)
	}
	fmt.Fprintf(&sb, "inherent channels remaining: %s\n", strings.Join(c.Inherent, ", "))
	return sb.String()
}

// Workload is a function that drives identical traffic into an engine.
type Workload func(e *engine.Engine) error

// Compare runs workload on a default-configured and a hardened engine,
// captures the same attack snapshot from both, and diffs the leakage
// reports channel by channel.
func Compare(base engine.Config, keepBinlog bool, attack snapshot.AttackType, workload Workload) (*Comparison, error) {
	run := func(cfg engine.Config) (*core.Report, error) {
		e, err := engine.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := workload(e); err != nil {
			return nil, err
		}
		return core.Analyze(snapshot.Capture(e, attack), core.CatalogOf(e))
	}
	defRep, err := run(base)
	if err != nil {
		return nil, fmt.Errorf("mitigate: default run: %w", err)
	}
	hardRep, err := run(Harden(base, keepBinlog))
	if err != nil {
		return nil, fmt.Errorf("mitigate: hardened run: %w", err)
	}

	channels := map[string]*ChannelDiff{}
	get := func(name string) *ChannelDiff {
		if d, ok := channels[name]; ok {
			return d
		}
		d := &ChannelDiff{Channel: name}
		channels[name] = d
		return d
	}
	for _, f := range defRep.Findings {
		get(f.Channel).Default += f.Count
	}
	for _, f := range hardRep.Findings {
		get(f.Channel).Hardened += f.Count
	}
	out := &Comparison{Attack: attack}
	names := make([]string, 0, len(channels))
	for name := range channels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := channels[name]
		d.Closed = d.Default > 0 && d.Hardened == 0
		out.Channels = append(out.Channels, *d)
		if d.Hardened > 0 {
			out.Inherent = append(out.Inherent, name)
		}
	}
	return out, nil
}
