// driver.go: the concurrent workload driver. Where the rest of this
// package generates data for the leakage experiments, the driver
// exercises the engine's concurrent execution path: N goroutines, each
// with its own session, issuing a seeded, read-heavy statement mix over
// several tables. E12 and BenchmarkConcurrentThroughput use it to
// measure how statement throughput scales with session concurrency.

package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"snapdb/internal/client"
	"snapdb/internal/engine"
)

// DriverConfig configures one driver run.
type DriverConfig struct {
	Goroutines   int   // concurrent sessions (default 1)
	Tables       int   // tables to spread statements over (default 4)
	RowsPerTable int   // rows preloaded per table by SetupTables
	Statements   int   // total statements across all goroutines
	WriteEvery   int   // every Nth statement is an UPDATE; 0 disables writes
	Seed         int64 // per-goroutine streams derive from this

	// Mixed explicit-transaction mode: the first WriterSessions
	// goroutines become transactional writers running
	// BEGIN / TxnSize UPDATEs / COMMIT batches (every
	// TxnRollbackEvery-th batch ends in ROLLBACK instead), while the
	// remaining goroutines run pure point SELECTs regardless of
	// WriteEvery. This is the readers-vs-writer shape E16 and
	// BenchmarkMVCCReadersVsWriter measure: under MVCC the readers
	// sail past the writers' open transactions; under stripe locking
	// they queue behind them.
	WriterSessions   int // goroutines running explicit-txn write batches
	TxnSize          int // DML statements per transaction (default 4)
	TxnRollbackEvery int // every Nth batch rolls back; 0 = always commit

	// WriterScanEvery, when positive, makes every Nth writer DML a
	// maintenance-style UPDATE whose predicate filters on the
	// unindexed value column, forcing a full table scan under the
	// exclusive stripe. Point readers never pay the scan, so this
	// widens the writer's lock hold relative to a read — the
	// contention shape where snapshot reads matter most.
	WriterScanEvery int
}

func (c DriverConfig) normalized() DriverConfig {
	if c.Goroutines <= 0 {
		c.Goroutines = 1
	}
	if c.Tables <= 0 {
		c.Tables = 4
	}
	if c.RowsPerTable <= 0 {
		c.RowsPerTable = 100
	}
	if c.WriterSessions > c.Goroutines {
		c.WriterSessions = c.Goroutines
	}
	if c.TxnSize <= 0 {
		c.TxnSize = 4
	}
	return c
}

// DriverResult is one run's outcome. RowsExamined and RowsReturned
// aggregate the engine's per-statement scan counters across the whole
// run — E12 reports them so the scaling table also shows the work each
// access path did, not just the statement rate.
type DriverResult struct {
	Statements   int
	Reads        int
	Writes       int
	RowsExamined int64
	RowsReturned int64
	Duration     time.Duration
	PerSecond    float64

	// Mixed-mode reader-side clock: how long until the LAST pure-reader
	// goroutine drained its quota, while the transactional writers were
	// still streaming. This is the number the MVCC benchmark compares —
	// reader progress under write pressure — which the all-goroutines
	// Duration understates (it includes the writers' own tail).
	ReaderDuration  time.Duration
	ReaderPerSecond float64
}

// DriverTableName names the driver's i-th table.
func DriverTableName(i int) string { return fmt.Sprintf("bench%d", i) }

// SetupTables creates and preloads the driver's tables
// (bench0..bench{tables-1}), each with rows rows keyed 0..rows-1.
func SetupTables(e *engine.Engine, tables, rows int) error {
	s := e.Connect("driver-setup")
	defer s.Close()
	for t := 0; t < tables; t++ {
		name := DriverTableName(t)
		if _, err := s.Execute(fmt.Sprintf("CREATE TABLE %s (id INT PRIMARY KEY, v TEXT)", name)); err != nil {
			return err
		}
		for r := 0; r < rows; r++ {
			q := fmt.Sprintf("INSERT INTO %s (id, v) VALUES (%d, 'row-%05d')", name, r, r)
			if _, err := s.Execute(q); err != nil {
				return err
			}
		}
	}
	return nil
}

// stmtGen produces one goroutine's deterministic statement stream. It
// runs on the measurement path of every throughput benchmark, so it
// pre-resolves table names and builds statements with strconv appends
// into a reused buffer instead of per-statement fmt formatting. The
// generated text is byte-identical to the former Sprintf forms.
type stmtGen struct {
	rng    *rand.Rand
	tables []string
	cfg    DriverConfig
	g      int
	buf    []byte
}

func newStmtGen(cfg DriverConfig, g int) *stmtGen {
	tables := make([]string, cfg.Tables)
	for i := range tables {
		tables[i] = DriverTableName(i)
	}
	return &stmtGen{
		rng:    rand.New(rand.NewSource(cfg.Seed + int64(g)*7919)),
		tables: tables,
		cfg:    cfg,
		g:      g,
	}
}

// appendPad5 appends n zero-padded to at least 5 digits (the %05d of
// the original format).
func appendPad5(b []byte, n int64) []byte {
	var tmp [20]byte
	s := strconv.AppendInt(tmp[:0], n, 10)
	for pad := 5 - len(s); pad > 0; pad-- {
		b = append(b, '0')
	}
	return append(b, s...)
}

// next returns the i-th statement and whether it is a write. The
// string is freshly allocated — batch mode retains statements past the
// call — but the build scratch is reused.
func (sg *stmtGen) next(i int) (string, bool) {
	table := sg.tables[sg.rng.Intn(sg.cfg.Tables)]
	id := int64(sg.rng.Intn(sg.cfg.RowsPerTable))
	b := sg.buf[:0]
	write := sg.cfg.WriteEvery > 0 && (i+1)%sg.cfg.WriteEvery == 0
	if write {
		b = append(b, "UPDATE "...)
		b = append(b, table...)
		b = append(b, " SET v = 'upd-"...)
		b = strconv.AppendInt(b, int64(sg.g), 10)
		b = append(b, '-')
		b = appendPad5(b, int64(i))
		b = append(b, "' WHERE id = "...)
		b = strconv.AppendInt(b, id, 10)
	} else {
		b = append(b, "SELECT v FROM "...)
		b = append(b, table...)
		b = append(b, " WHERE id = "...)
		b = strconv.AppendInt(b, id, 10)
	}
	sg.buf = b
	return string(b), write
}

// RunDriver drives e with cfg.Goroutines concurrent sessions until
// cfg.Statements statements have executed, and reports throughput.
// SetupTables must have been run first with matching Tables and
// RowsPerTable. The statement stream is deterministic per goroutine.
func RunDriver(e *engine.Engine, cfg DriverConfig) (*DriverResult, error) {
	cfg = cfg.normalized()
	if cfg.Statements <= 0 {
		return nil, fmt.Errorf("workload: driver needs a positive statement count")
	}
	perG := cfg.Statements / cfg.Goroutines
	if perG == 0 {
		perG = 1
	}

	var wg sync.WaitGroup
	errs := make(chan error, cfg.Goroutines)
	reads := make([]int, cfg.Goroutines)
	writes := make([]int, cfg.Goroutines)
	examined := make([]int64, cfg.Goroutines)
	returned := make([]int64, cfg.Goroutines)
	readerDone := make([]time.Duration, cfg.Goroutines)
	start := time.Now()
	for g := 0; g < cfg.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := e.Connect(fmt.Sprintf("driver%d", g))
			defer s.Close()
			if g < cfg.WriterSessions {
				if err := runTxnWriter(s, cfg, g, perG, &writes[g], &examined[g]); err != nil {
					errs <- fmt.Errorf("workload: driver goroutine %d: %w", g, err)
				}
				return
			}
			defer func() { readerDone[g] = time.Since(start) }()
			gcfg := cfg
			if cfg.WriterSessions > 0 {
				// In mixed mode the non-writer goroutines read only;
				// all write pressure comes from the txn writers.
				gcfg.WriteEvery = 0
			}
			gen := newStmtGen(gcfg, g)
			for i := 0; i < perG; i++ {
				q, write := gen.next(i)
				if write {
					writes[g]++
				} else {
					reads[g]++
				}
				res, err := s.Execute(q)
				if err != nil {
					errs <- fmt.Errorf("workload: driver goroutine %d: %s: %w", g, q, err)
					return
				}
				examined[g] += int64(res.RowsExamined)
				returned[g] += int64(len(res.Rows))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}

	res := &DriverResult{Duration: time.Since(start)}
	for g := 0; g < cfg.Goroutines; g++ {
		res.Reads += reads[g]
		res.Writes += writes[g]
		res.RowsExamined += examined[g]
		res.RowsReturned += returned[g]
	}
	res.Statements = res.Reads + res.Writes
	if secs := res.Duration.Seconds(); secs > 0 {
		res.PerSecond = float64(res.Statements) / secs
	}
	for _, d := range readerDone {
		if d > res.ReaderDuration {
			res.ReaderDuration = d
		}
	}
	if secs := res.ReaderDuration.Seconds(); secs > 0 {
		res.ReaderPerSecond = float64(res.Reads) / secs
	}
	return res, nil
}

// runTxnWriter is one transactional writer session: quota DML
// statements grouped into BEGIN / TxnSize UPDATEs / COMMIT batches
// (every TxnRollbackEvery-th batch rolls back). The statement stream
// forces WriteEvery=1 so every generated statement is an UPDATE; the
// control statements (BEGIN/COMMIT/ROLLBACK) don't count toward the
// quota.
func runTxnWriter(s *engine.Session, cfg DriverConfig, g, quota int, writes *int, examined *int64) error {
	wcfg := cfg
	wcfg.WriteEvery = 1
	gen := newStmtGen(wcfg, g)
	batch := 0
	for i := 0; i < quota; {
		if _, err := s.Execute("BEGIN"); err != nil {
			return fmt.Errorf("BEGIN: %w", err)
		}
		for j := 0; j < cfg.TxnSize && i < quota; j++ {
			var q string
			if cfg.WriterScanEvery > 0 && (i+1)%cfg.WriterScanEvery == 0 {
				// Full-scan UPDATE: the predicate is on the unindexed
				// value column (and never matches the seeded or
				// updated value shapes), so the statement examines
				// the whole table while holding the write lock.
				q = fmt.Sprintf("UPDATE %s SET v = 'swept' WHERE v = 'needle-%d-%d'",
					DriverTableName(i%cfg.Tables), g, i)
			} else {
				q, _ = gen.next(i)
			}
			i++
			*writes++
			res, err := s.Execute(q)
			if err != nil {
				return fmt.Errorf("%s: %w", q, err)
			}
			*examined += int64(res.RowsExamined)
		}
		batch++
		end := "COMMIT"
		if cfg.TxnRollbackEvery > 0 && batch%cfg.TxnRollbackEvery == 0 {
			end = "ROLLBACK"
		}
		if _, err := s.Execute(end); err != nil {
			return fmt.Errorf("%s: %w", end, err)
		}
	}
	return nil
}

// RemoteDriverConfig configures a driver run against a snapdb server
// over TCP instead of in-process sessions.
type RemoteDriverConfig struct {
	DriverConfig
	Addr      string // server address
	BatchSize int    // statements per ExecuteBatch; <=1 drives per-statement Execute
}

// RunDriverRemote drives a running server with cfg.Goroutines client
// connections issuing the same deterministic statement mix as
// RunDriver. With BatchSize > 1 each connection pipelines its
// statements through client.Conn.ExecuteBatch, which is the
// batched-throughput configuration E12 and BenchmarkBatchedThroughput
// measure against the per-statement baseline.
func RunDriverRemote(cfg RemoteDriverConfig) (*DriverResult, error) {
	dcfg := cfg.DriverConfig.normalized()
	if dcfg.Statements <= 0 {
		return nil, fmt.Errorf("workload: driver needs a positive statement count")
	}
	perG := dcfg.Statements / dcfg.Goroutines
	if perG == 0 {
		perG = 1
	}

	var wg sync.WaitGroup
	errs := make(chan error, dcfg.Goroutines)
	reads := make([]int, dcfg.Goroutines)
	writes := make([]int, dcfg.Goroutines)
	examined := make([]int64, dcfg.Goroutines)
	returned := make([]int64, dcfg.Goroutines)
	start := time.Now()
	for g := 0; g < dcfg.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := client.Dial(cfg.Addr)
			if err != nil {
				errs <- fmt.Errorf("workload: driver goroutine %d: %w", g, err)
				return
			}
			defer conn.Close()
			gen := newStmtGen(dcfg, g)
			batch := make([]string, 0, cfg.BatchSize)
			flush := func() error {
				if len(batch) == 0 {
					return nil
				}
				results, err := conn.ExecuteBatch(batch)
				if err != nil {
					return err
				}
				for i, br := range results {
					if br.Err != nil {
						return fmt.Errorf("%s: %w", batch[i], br.Err)
					}
					examined[g] += int64(br.Result.RowsExamined)
					returned[g] += int64(len(br.Result.Rows))
				}
				batch = batch[:0]
				return nil
			}
			for i := 0; i < perG; i++ {
				q, write := gen.next(i)
				if write {
					writes[g]++
				} else {
					reads[g]++
				}
				if cfg.BatchSize > 1 {
					batch = append(batch, q)
					if len(batch) >= cfg.BatchSize {
						if err := flush(); err != nil {
							errs <- fmt.Errorf("workload: driver goroutine %d: %w", g, err)
							return
						}
					}
					continue
				}
				res, err := conn.Execute(q)
				if err != nil {
					errs <- fmt.Errorf("workload: driver goroutine %d: %s: %w", g, q, err)
					return
				}
				examined[g] += int64(res.RowsExamined)
				returned[g] += int64(len(res.Rows))
			}
			if err := flush(); err != nil {
				errs <- fmt.Errorf("workload: driver goroutine %d: %w", g, err)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}

	res := &DriverResult{Duration: time.Since(start)}
	for g := 0; g < dcfg.Goroutines; g++ {
		res.Reads += reads[g]
		res.Writes += writes[g]
		res.RowsExamined += examined[g]
		res.RowsReturned += returned[g]
	}
	res.Statements = res.Reads + res.Writes
	if secs := res.Duration.Seconds(); secs > 0 {
		res.PerSecond = float64(res.Statements) / secs
	}
	return res, nil
}
