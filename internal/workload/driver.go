// driver.go: the concurrent workload driver. Where the rest of this
// package generates data for the leakage experiments, the driver
// exercises the engine's concurrent execution path: N goroutines, each
// with its own session, issuing a seeded, read-heavy statement mix over
// several tables. E12 and BenchmarkConcurrentThroughput use it to
// measure how statement throughput scales with session concurrency.

package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"snapdb/internal/engine"
)

// DriverConfig configures one driver run.
type DriverConfig struct {
	Goroutines   int   // concurrent sessions (default 1)
	Tables       int   // tables to spread statements over (default 4)
	RowsPerTable int   // rows preloaded per table by SetupTables
	Statements   int   // total statements across all goroutines
	WriteEvery   int   // every Nth statement is an UPDATE; 0 disables writes
	Seed         int64 // per-goroutine streams derive from this
}

func (c DriverConfig) normalized() DriverConfig {
	if c.Goroutines <= 0 {
		c.Goroutines = 1
	}
	if c.Tables <= 0 {
		c.Tables = 4
	}
	if c.RowsPerTable <= 0 {
		c.RowsPerTable = 100
	}
	return c
}

// DriverResult is one run's outcome.
type DriverResult struct {
	Statements int
	Reads      int
	Writes     int
	Duration   time.Duration
	PerSecond  float64
}

// DriverTableName names the driver's i-th table.
func DriverTableName(i int) string { return fmt.Sprintf("bench%d", i) }

// SetupTables creates and preloads the driver's tables
// (bench0..bench{tables-1}), each with rows rows keyed 0..rows-1.
func SetupTables(e *engine.Engine, tables, rows int) error {
	s := e.Connect("driver-setup")
	defer s.Close()
	for t := 0; t < tables; t++ {
		name := DriverTableName(t)
		if _, err := s.Execute(fmt.Sprintf("CREATE TABLE %s (id INT PRIMARY KEY, v TEXT)", name)); err != nil {
			return err
		}
		for r := 0; r < rows; r++ {
			q := fmt.Sprintf("INSERT INTO %s (id, v) VALUES (%d, 'row-%05d')", name, r, r)
			if _, err := s.Execute(q); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunDriver drives e with cfg.Goroutines concurrent sessions until
// cfg.Statements statements have executed, and reports throughput.
// SetupTables must have been run first with matching Tables and
// RowsPerTable. The statement stream is deterministic per goroutine.
func RunDriver(e *engine.Engine, cfg DriverConfig) (*DriverResult, error) {
	cfg = cfg.normalized()
	if cfg.Statements <= 0 {
		return nil, fmt.Errorf("workload: driver needs a positive statement count")
	}
	perG := cfg.Statements / cfg.Goroutines
	if perG == 0 {
		perG = 1
	}

	var wg sync.WaitGroup
	errs := make(chan error, cfg.Goroutines)
	reads := make([]int, cfg.Goroutines)
	writes := make([]int, cfg.Goroutines)
	start := time.Now()
	for g := 0; g < cfg.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := e.Connect(fmt.Sprintf("driver%d", g))
			defer s.Close()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(g)*7919))
			for i := 0; i < perG; i++ {
				table := DriverTableName(rng.Intn(cfg.Tables))
				id := rng.Intn(cfg.RowsPerTable)
				var q string
				if cfg.WriteEvery > 0 && (i+1)%cfg.WriteEvery == 0 {
					q = fmt.Sprintf("UPDATE %s SET v = 'upd-%d-%05d' WHERE id = %d", table, g, i, id)
					writes[g]++
				} else {
					q = fmt.Sprintf("SELECT v FROM %s WHERE id = %d", table, id)
					reads[g]++
				}
				if _, err := s.Execute(q); err != nil {
					errs <- fmt.Errorf("workload: driver goroutine %d: %s: %w", g, q, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}

	res := &DriverResult{Duration: time.Since(start)}
	for g := 0; g < cfg.Goroutines; g++ {
		res.Reads += reads[g]
		res.Writes += writes[g]
	}
	res.Statements = res.Reads + res.Writes
	if secs := res.Duration.Seconds(); secs > 0 {
		res.PerSecond = float64(res.Statements) / secs
	}
	return res, nil
}
