// Package workload generates the synthetic datasets and query streams
// the experiments run on: a Zipf-distributed keyword corpus standing in
// for the Enron email corpus (the paper's count-attack substrate),
// uniform 32-bit integer databases with uniform range queries (the
// Lewi-Wu simulation), and Zipf query-distribution models (the
// frequency-analysis attacks).
//
// Everything is seeded and deterministic so experiment tables are
// reproducible.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// Corpus is a set of documents over a keyword vocabulary.
type Corpus struct {
	Vocabulary []string // index = word id
	Docs       [][]string
	counts     map[string]int
}

// CorpusConfig controls corpus generation.
type CorpusConfig struct {
	NumDocs     int
	VocabSize   int
	WordsPerDoc int
	ZipfS       float64 // Zipf exponent (> 1)
	Seed        int64
}

// EnronLike returns a configuration calibrated so that, like the Enron
// email corpus the paper cites, roughly 63% of the 500 most frequent
// keywords have a unique result count.
func EnronLike() CorpusConfig {
	return CorpusConfig{
		NumDocs:     45000,
		VocabSize:   5000,
		WordsPerDoc: 25,
		ZipfS:       1.2,
		Seed:        1,
	}
}

// NewCorpus generates a corpus. Each document holds WordsPerDoc
// *distinct* keywords sampled from a Zipf distribution over the
// vocabulary.
func NewCorpus(cfg CorpusConfig) (*Corpus, error) {
	if cfg.NumDocs <= 0 || cfg.VocabSize <= 0 || cfg.WordsPerDoc <= 0 {
		return nil, fmt.Errorf("workload: corpus dimensions must be positive: %+v", cfg)
	}
	if cfg.WordsPerDoc > cfg.VocabSize {
		return nil, fmt.Errorf("workload: WordsPerDoc %d exceeds vocabulary %d", cfg.WordsPerDoc, cfg.VocabSize)
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("workload: Zipf exponent must exceed 1, got %g", cfg.ZipfS)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.VocabSize-1))
	c := &Corpus{
		Vocabulary: make([]string, cfg.VocabSize),
		Docs:       make([][]string, cfg.NumDocs),
		counts:     make(map[string]int),
	}
	for i := range c.Vocabulary {
		c.Vocabulary[i] = fmt.Sprintf("kw%05d", i)
	}
	for d := range c.Docs {
		seen := make(map[uint64]bool, cfg.WordsPerDoc)
		words := make([]string, 0, cfg.WordsPerDoc)
		for len(words) < cfg.WordsPerDoc {
			w := zipf.Uint64()
			if seen[w] {
				continue
			}
			seen[w] = true
			words = append(words, c.Vocabulary[w])
		}
		c.Docs[d] = words
		for _, w := range words {
			c.counts[w]++
		}
	}
	return c, nil
}

// Count returns the number of documents containing word.
func (c *Corpus) Count(word string) int { return c.counts[word] }

// WordCount pairs a keyword with its document frequency.
type WordCount struct {
	Word  string
	Count int
}

// TopWords returns the n most frequent keywords, descending by count
// (ties broken by word for determinism).
func (c *Corpus) TopWords(n int) []WordCount {
	all := make([]WordCount, 0, len(c.counts))
	for w, n := range c.counts {
		all = append(all, WordCount{w, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Word < all[j].Word
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// UniqueCountFraction returns the fraction of the top-n keywords whose
// document count is unique across the whole corpus — the property that
// makes the count attack identify them.
func (c *Corpus) UniqueCountFraction(n int) float64 {
	countFreq := make(map[int]int)
	for _, cnt := range c.counts {
		countFreq[cnt]++
	}
	top := c.TopWords(n)
	if len(top) == 0 {
		return 0
	}
	unique := 0
	for _, wc := range top {
		if countFreq[wc.Count] == 1 {
			unique++
		}
	}
	return float64(unique) / float64(len(top))
}

// UniformInts samples n uniform 32-bit integers (the paper's Lewi-Wu
// database).
func UniformInts(n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint32, n)
	for i := range out {
		out[i] = rng.Uint32()
	}
	return out
}

// RangeQuery is a range with inclusive endpoints, as in the paper's
// simulation ("both an upper and lower bound").
type RangeQuery struct {
	Lo, Hi uint32
}

// UniformRangeQueries samples n uniform range queries.
func UniformRangeQueries(n int, seed int64) []RangeQuery {
	rng := rand.New(rand.NewSource(seed))
	out := make([]RangeQuery, n)
	for i := range out {
		a, b := rng.Uint32(), rng.Uint32()
		if a > b {
			a, b = b, a
		}
		out[i] = RangeQuery{Lo: a, Hi: b}
	}
	return out
}

// ZipfQueryStream samples a stream of query values over a value domain
// with Zipf-distributed popularity: value index 0 is queried most. The
// frequency-analysis experiments use it as both the real query stream
// and the attacker's auxiliary model.
func ZipfQueryStream(domain []string, n int, s float64, seed int64) ([]string, error) {
	if len(domain) == 0 {
		return nil, fmt.Errorf("workload: empty domain")
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: Zipf exponent must exceed 1, got %g", s)
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, s, 1, uint64(len(domain)-1))
	out := make([]string, n)
	for i := range out {
		out[i] = domain[zipf.Uint64()]
	}
	return out, nil
}

// States is a small categorical domain used by examples and the Seabed
// experiments (US state codes in rough population order, so Zipf rank
// matches intuition).
var States = []string{
	"CA", "TX", "FL", "NY", "PA", "IL", "OH", "GA", "NC", "MI",
	"NJ", "VA", "WA", "AZ", "MA", "TN", "IN", "MO", "MD", "WI",
}

// CustomerRow is one row of the demo customers table.
type CustomerRow struct {
	ID    int
	Name  string
	State string
	Age   int
}

// Customers generates n demo rows with Zipf-distributed states.
func Customers(n int, seed int64) []CustomerRow {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(States)-1))
	out := make([]CustomerRow, n)
	for i := range out {
		out[i] = CustomerRow{
			ID:    i + 1,
			Name:  fmt.Sprintf("cust%06d", i+1),
			State: States[zipf.Uint64()],
			Age:   18 + rng.Intn(70),
		}
	}
	return out
}
