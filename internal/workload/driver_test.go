package workload

import (
	"testing"

	"snapdb/internal/engine"
)

func TestDriverRunsMixedWorkload(t *testing.T) {
	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DriverConfig{
		Goroutines:   4,
		Tables:       3,
		RowsPerTable: 50,
		Statements:   400,
		WriteEvery:   10,
		Seed:         1,
	}
	if err := SetupTables(e, cfg.Tables, cfg.RowsPerTable); err != nil {
		t.Fatal(err)
	}
	res, err := RunDriver(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statements != 400 {
		t.Errorf("statements = %d, want 400", res.Statements)
	}
	if res.Writes == 0 || res.Reads <= res.Writes {
		t.Errorf("mix not read-heavy: %d reads, %d writes", res.Reads, res.Writes)
	}
	if res.PerSecond <= 0 {
		t.Errorf("throughput = %v", res.PerSecond)
	}
	// Every UPDATE must have landed in the binlog, none of the SELECTs.
	// 3 CREATEs + 150 setup INSERTs + the driver's writes.
	wantEvents := cfg.Tables + cfg.Tables*cfg.RowsPerTable + res.Writes
	if got := e.Binlog().Len(); got != wantEvents {
		t.Errorf("binlog events = %d, want %d", got, wantEvents)
	}
}

func TestDriverRejectsZeroStatements(t *testing.T) {
	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDriver(e, DriverConfig{}); err == nil {
		t.Error("want error for zero statement count")
	}
}
