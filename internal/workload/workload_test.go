package workload

import (
	"testing"
)

func TestNewCorpusValidation(t *testing.T) {
	bad := []CorpusConfig{
		{},
		{NumDocs: 10, VocabSize: 10, WordsPerDoc: 0, ZipfS: 1.2},
		{NumDocs: 10, VocabSize: 5, WordsPerDoc: 6, ZipfS: 1.2},
		{NumDocs: 10, VocabSize: 10, WordsPerDoc: 2, ZipfS: 1.0},
	}
	for _, cfg := range bad {
		if _, err := NewCorpus(cfg); err == nil {
			t.Errorf("NewCorpus(%+v) accepted", cfg)
		}
	}
}

func TestCorpusShape(t *testing.T) {
	cfg := CorpusConfig{NumDocs: 200, VocabSize: 100, WordsPerDoc: 10, ZipfS: 1.2, Seed: 7}
	c, err := NewCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Docs) != 200 || len(c.Vocabulary) != 100 {
		t.Fatalf("dims: %d docs, %d vocab", len(c.Docs), len(c.Vocabulary))
	}
	for d, words := range c.Docs {
		if len(words) != 10 {
			t.Fatalf("doc %d has %d words", d, len(words))
		}
		seen := map[string]bool{}
		for _, w := range words {
			if seen[w] {
				t.Fatalf("doc %d repeats word %s", d, w)
			}
			seen[w] = true
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	cfg := CorpusConfig{NumDocs: 50, VocabSize: 40, WordsPerDoc: 5, ZipfS: 1.3, Seed: 9}
	a, _ := NewCorpus(cfg)
	b, _ := NewCorpus(cfg)
	for i := range a.Docs {
		for j := range a.Docs[i] {
			if a.Docs[i][j] != b.Docs[i][j] {
				t.Fatal("corpus not deterministic under fixed seed")
			}
		}
	}
}

func TestCountsConsistent(t *testing.T) {
	cfg := CorpusConfig{NumDocs: 100, VocabSize: 50, WordsPerDoc: 8, ZipfS: 1.2, Seed: 3}
	c, _ := NewCorpus(cfg)
	manual := make(map[string]int)
	for _, doc := range c.Docs {
		for _, w := range doc {
			manual[w]++
		}
	}
	for w, n := range manual {
		if c.Count(w) != n {
			t.Errorf("Count(%s) = %d, manual = %d", w, c.Count(w), n)
		}
	}
}

func TestTopWordsOrdering(t *testing.T) {
	cfg := CorpusConfig{NumDocs: 300, VocabSize: 80, WordsPerDoc: 10, ZipfS: 1.2, Seed: 5}
	c, _ := NewCorpus(cfg)
	top := c.TopWords(20)
	if len(top) != 20 {
		t.Fatalf("top = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatal("TopWords not descending")
		}
	}
	// Zipf: the most frequent word should dominate.
	if top[0].Count < top[19].Count*2 {
		t.Errorf("distribution too flat for Zipf: top=%d 20th=%d", top[0].Count, top[19].Count)
	}
}

func TestUniqueCountFractionBounds(t *testing.T) {
	cfg := CorpusConfig{NumDocs: 500, VocabSize: 200, WordsPerDoc: 10, ZipfS: 1.2, Seed: 11}
	c, _ := NewCorpus(cfg)
	f := c.UniqueCountFraction(50)
	if f < 0 || f > 1 {
		t.Fatalf("fraction = %g", f)
	}
	if c.UniqueCountFraction(0) != 0 {
		t.Error("n=0 fraction nonzero")
	}
}

func TestEnronLikeCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation is slow in -short mode")
	}
	c, err := NewCorpus(EnronLike())
	if err != nil {
		t.Fatal(err)
	}
	f := c.UniqueCountFraction(500)
	// Paper: 63% of the 500 most frequent Enron words have unique
	// counts. The synthetic stand-in must land in the same regime.
	if f < 0.45 || f > 0.85 {
		t.Errorf("unique-count fraction = %.2f, want within [0.45, 0.85] (paper: 0.63)", f)
	}
}

func TestUniformInts(t *testing.T) {
	a := UniformInts(1000, 1)
	b := UniformInts(1000, 1)
	c := UniformInts(1000, 2)
	if len(a) != 1000 {
		t.Fatal("length")
	}
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different data")
	}
	if !diff {
		t.Error("different seeds produced identical data")
	}
}

func TestUniformRangeQueries(t *testing.T) {
	qs := UniformRangeQueries(500, 4)
	for _, q := range qs {
		if q.Lo > q.Hi {
			t.Fatalf("inverted range %+v", q)
		}
	}
}

func TestZipfQueryStream(t *testing.T) {
	domain := []string{"a", "b", "c", "d", "e"}
	qs, err := ZipfQueryStream(domain, 10000, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, q := range qs {
		counts[q]++
	}
	if counts["a"] <= counts["e"] {
		t.Errorf("Zipf head not dominant: a=%d e=%d", counts["a"], counts["e"])
	}
	if _, err := ZipfQueryStream(nil, 5, 1.5, 1); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := ZipfQueryStream(domain, 5, 0.5, 1); err == nil {
		t.Error("bad exponent accepted")
	}
}

func TestCustomers(t *testing.T) {
	rows := Customers(100, 1)
	if len(rows) != 100 {
		t.Fatal("length")
	}
	for i, r := range rows {
		if r.ID != i+1 {
			t.Fatalf("row %d id = %d", i, r.ID)
		}
		if r.Age < 18 || r.Age >= 88 {
			t.Fatalf("age out of range: %d", r.Age)
		}
		found := false
		for _, s := range States {
			if r.State == s {
				found = true
			}
		}
		if !found {
			t.Fatalf("unknown state %q", r.State)
		}
	}
}

func BenchmarkCorpusGeneration(b *testing.B) {
	cfg := CorpusConfig{NumDocs: 1000, VocabSize: 500, WordsPerDoc: 10, ZipfS: 1.2, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewCorpus(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
