package client

import (
	"testing"

	"snapdb/internal/server"
)

// FuzzDecodeValue cross-validates the client's byte-slice value parser
// against the server's string one on arbitrary input — the two must
// accept and reject identically, or a value the server renders could
// be unreadable (or worse, misread) by the client. Accepted values
// must survive a re-encode round trip.
func FuzzDecodeValue(f *testing.F) {
	for _, seed := range []string{
		"i:42", "i:-7", "i:9223372036854775807", "i:", "i:12x",
		"s:hello", `s:a\tb`, `s:trailing\`, `s:\x`, "s:",
		"", "x:nope", "i", "s", "si:1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		cv, cerr := decodeValue([]byte(in))
		sv, serr := server.DecodeValue(in)
		if (cerr == nil) != (serr == nil) {
			t.Fatalf("decoders disagree on %q: client err %v, server err %v", in, cerr, serr)
		}
		if cerr != nil {
			return
		}
		if cv != sv {
			t.Fatalf("decoders diverge on %q: client %+v, server %+v", in, cv, sv)
		}
		re := server.EncodeValue(cv)
		rv, err := decodeValue([]byte(re))
		if err != nil {
			t.Fatalf("re-encoded %q -> %q no longer decodes: %v", in, re, err)
		}
		if rv != cv {
			t.Fatalf("round trip of %q changed the value: %+v -> %+v", in, cv, rv)
		}
	})
}
