package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"snapdb/internal/server"
)

// Exactly-once retry: the client half (see internal/server/resume.go
// for the server half and the wire protocol).
//
// A plain Conn gives at-most-once delivery with an honest failure
// mode: a transport error poisons the connection and the caller does
// not know whether the in-flight statement executed. ReliableConn
// upgrades that to exactly-once: it stamps every statement with a
// session-scoped sequence number, keeps the unacknowledged tail, and
// on any transport failure reconnects (with full-jitter backoff),
// resumes its server-side session by token, and resends the tail. The
// server deduplicates by sequence number, so a statement whose reply
// was lost is answered from the server's cache instead of executing
// twice — at-least-once delivery plus dedup equals exactly-once
// application.

// ErrSessionExpired reports that the server no longer holds the
// resumable session (reaped after the TTL, or the server restarted).
// The outcome of any unacknowledged statement is unknown — retrying it
// blindly on a fresh session could double-execute, so ReliableConn
// surfaces this instead of guessing.
var ErrSessionExpired = errors.New("client: resumable session expired on server; unacked statement outcomes unknown")

// IsRetryable reports whether err is a server rejection that a client
// should back off and retry — today, admission-control overload. A
// rejected statement did not execute, so retrying cannot double-apply.
func IsRetryable(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && strings.HasPrefix(se.Msg, "overloaded:")
}

// RetryConfig bounds ReliableConn's recovery behavior.
type RetryConfig struct {
	// BackoffFloor and BackoffCap bound the full-jitter reconnect and
	// overload backoff envelope. Defaults 5ms and 500ms.
	BackoffFloor time.Duration
	BackoffCap   time.Duration
	// MaxAttempts is how many delivery attempts (reconnect cycles, or
	// overload retry rounds) one batch gets before giving up. Default 8.
	MaxAttempts int
}

func (c RetryConfig) normalized() RetryConfig {
	if c.BackoffFloor <= 0 {
		c.BackoffFloor = 5 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 500 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	return c
}

// reliableBatchChunk caps how many statements ride in one stamped
// batch. It must stay below the server's dedup window so a full
// chunk's replies always fit in replay range after a reconnect.
const reliableBatchChunk = 64

// pendingStmt is one stamped, sent, not-yet-acknowledged statement.
type pendingStmt struct {
	seq  uint64
	text string
}

// ReliableConn is a self-healing client connection with exactly-once
// statement delivery. Not safe for concurrent use, like Conn.
type ReliableConn struct {
	addr    string
	cfg     RetryConfig
	conn    *Conn
	token   string
	nextSeq uint64
	pending []pendingStmt
}

// DialReliable opens a reliable connection and establishes its
// resumable server session. Transient handshake failures are retried
// under the same backoff policy as delivery: no statement is
// outstanding yet, so a retry can never double-execute anything (a
// half-created server session from a lost handshake ack is reaped by
// the server's resume TTL).
func DialReliable(ctx context.Context, addr string, cfg RetryConfig) (*ReliableConn, error) {
	rc := &ReliableConn{addr: addr, cfg: cfg.normalized()}
	backoff := rc.cfg.BackoffFloor
	var lastErr error
	for attempt := 0; attempt < rc.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("client: dial interrupted: %w (last error: %v)", ctx.Err(), lastErr)
			case <-time.After(jitteredBackoff(backoff)):
			}
			if backoff *= 2; backoff > rc.cfg.BackoffCap {
				backoff = rc.cfg.BackoffCap
			}
		}
		err := rc.connect(ctx)
		if err == nil {
			return rc, nil
		}
		if errors.Is(err, ErrSessionExpired) || ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("client: gave up dialing after %d attempts: %w", rc.cfg.MaxAttempts, lastErr)
}

// Close releases the server-side session (best effort) and closes the
// connection.
func (rc *ReliableConn) Close() error {
	if rc.conn == nil {
		return nil
	}
	_, _ = io.WriteString(rc.conn.c, "!bye\n")
	err := rc.conn.Close()
	rc.conn = nil
	return err
}

// Execute runs one statement with exactly-once delivery. A returned
// *ServerError is the statement's own outcome (it executed and
// failed, exactly once); other errors mean delivery itself failed.
func (rc *ReliableConn) Execute(ctx context.Context, stmt string) (*Result, error) {
	out, err := rc.run(ctx, []string{stmt})
	if err != nil {
		return nil, err
	}
	return out[0].Result, out[0].Err
}

// ExecuteBatch pipelines stmts with exactly-once delivery, chunking to
// stay inside the server's replay window. Statement-level errors land
// in their BatchResult; a non-nil error means a chunk could not be
// delivered (the slice holds the chunks that were).
func (rc *ReliableConn) ExecuteBatch(ctx context.Context, stmts []string) ([]BatchResult, error) {
	out := make([]BatchResult, 0, len(stmts))
	for start := 0; start < len(stmts); start += reliableBatchChunk {
		end := min(start+reliableBatchChunk, len(stmts))
		chunk, err := rc.run(ctx, stmts[start:end])
		if err != nil {
			return out, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// run stamps one chunk, delivers it (reconnecting as needed), and
// retries overload rejections with fresh sequence numbers.
func (rc *ReliableConn) run(ctx context.Context, stmts []string) ([]BatchResult, error) {
	for i, stmt := range stmts {
		if strings.ContainsAny(stmt, "\r\n") {
			return nil, fmt.Errorf("client: statement %d contains a newline", i)
		}
		if strings.TrimSpace(stmt) == "" {
			return nil, fmt.Errorf("client: statement %d is empty", i)
		}
	}
	out := make([]BatchResult, len(stmts))
	idx := make([]int, 0, len(stmts)) // out position of each pending stmt
	for i, stmt := range stmts {
		rc.nextSeq++
		rc.pending = append(rc.pending, pendingStmt{seq: rc.nextSeq, text: stmt})
		idx = append(idx, i)
	}
	backoff := rc.cfg.BackoffFloor
	for round := 0; ; round++ {
		res, err := rc.deliver(ctx)
		if err != nil {
			return nil, err
		}
		// An overloaded rejection never executed, so it is the one
		// statement error that is safe — and expected — to retry. A
		// retry is a new submission (fresh sequence number): the old
		// number is burned on the cached rejection.
		var retryIdx []int
		for i, r := range res {
			if r.Err != nil && IsRetryable(r.Err) && round+1 < rc.cfg.MaxAttempts {
				retryIdx = append(retryIdx, idx[i])
				continue
			}
			out[idx[i]] = r
		}
		if len(retryIdx) == 0 {
			return out, nil
		}
		for _, oi := range retryIdx {
			rc.nextSeq++
			rc.pending = append(rc.pending, pendingStmt{seq: rc.nextSeq, text: stmts[oi]})
		}
		idx = retryIdx
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("client: overload retry: %w", ctx.Err())
		case <-time.After(jitteredBackoff(backoff)):
		}
		if backoff *= 2; backoff > rc.cfg.BackoffCap {
			backoff = rc.cfg.BackoffCap
		}
	}
}

// deliver sends the pending tail and reads its replies, riding across
// transport failures: drop the broken connection, back off with full
// jitter, reconnect, resume the session, resend the whole tail. The
// server's dedup window answers the already-executed prefix from
// cache, so resending everything is safe.
func (rc *ReliableConn) deliver(ctx context.Context) ([]BatchResult, error) {
	backoff := rc.cfg.BackoffFloor
	var lastErr error
	for attempt := 0; attempt < rc.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("client: delivery interrupted: %w (last error: %v)", ctx.Err(), lastErr)
			case <-time.After(jitteredBackoff(backoff)):
			}
			if backoff *= 2; backoff > rc.cfg.BackoffCap {
				backoff = rc.cfg.BackoffCap
			}
		}
		if rc.conn == nil {
			if err := rc.connect(ctx); err != nil {
				if errors.Is(err, ErrSessionExpired) || ctx.Err() != nil {
					return nil, err
				}
				lastErr = err
				continue
			}
		}
		res, err := rc.exchange()
		if err == nil {
			rc.pending = rc.pending[:0]
			return res, nil
		}
		lastErr = err
		rc.dropConn()
	}
	return nil, fmt.Errorf("client: gave up after %d delivery attempts: %w (acked statements applied exactly once; the unacked tail's outcome is unknown)", rc.cfg.MaxAttempts, lastErr)
}

// exchange performs one wire round: all pending statements in one
// write, then one reply each. Any transport-level failure aborts the
// round (and poisons the Conn); statement-level ERRs are results.
func (rc *ReliableConn) exchange() ([]BatchResult, error) {
	c := rc.conn
	var sb strings.Builder
	for _, p := range rc.pending {
		sb.WriteString("!q ")
		sb.WriteString(strconv.FormatUint(p.seq, 10))
		sb.WriteByte(' ')
		sb.WriteString(p.text)
		sb.WriteByte('\n')
	}
	if _, err := io.WriteString(c.c, sb.String()); err != nil {
		return nil, c.poison(fmt.Errorf("client: send stamped batch: %w", err))
	}
	out := make([]BatchResult, 0, len(rc.pending))
	for range rc.pending {
		res, err := c.readResult()
		if err != nil {
			var se *ServerError
			if !errors.As(err, &se) {
				return nil, err
			}
			out = append(out, BatchResult{Err: err})
			continue
		}
		out = append(out, BatchResult{Result: res})
	}
	return out, nil
}

// dropConn discards the (presumed broken) connection.
func (rc *ReliableConn) dropConn() {
	if rc.conn != nil {
		_ = rc.conn.Close()
		rc.conn = nil
	}
}

// connect dials and establishes (or resumes) the server session.
func (rc *ReliableConn) connect(ctx context.Context) error {
	c, err := DialContext(ctx, rc.addr)
	if err != nil {
		return err
	}
	if rc.token == "" {
		tok, err := c.hello()
		if err != nil {
			_ = c.Close()
			return err
		}
		rc.token = tok
	} else if err := c.resume(rc.token); err != nil {
		_ = c.Close()
		return err
	}
	rc.conn = c
	return nil
}

// controlLine reads one raw reply line for the control exchange.
func (c *Conn) controlLine() (string, error) {
	line, err := c.readLine()
	if err != nil {
		return "", c.poison(err)
	}
	return string(line), nil
}

// hello establishes a fresh resumable session, returning its token.
func (c *Conn) hello() (string, error) {
	if c.broken {
		return "", ErrConnBroken
	}
	if _, err := io.WriteString(c.c, "!hello\n"); err != nil {
		return "", c.poison(fmt.Errorf("client: send hello: %w", err))
	}
	line, err := c.controlLine()
	if err != nil {
		return "", err
	}
	if tok, ok := strings.CutPrefix(line, "!session "); ok && tok != "" {
		return tok, nil
	}
	return "", c.poison(fmt.Errorf("client: unexpected hello reply %q", line))
}

// resume reattaches to the session named by token.
func (c *Conn) resume(token string) error {
	if c.broken {
		return ErrConnBroken
	}
	if _, err := io.WriteString(c.c, "!resume "+token+"\n"); err != nil {
		return c.poison(fmt.Errorf("client: send resume: %w", err))
	}
	line, err := c.controlLine()
	if err != nil {
		return err
	}
	switch {
	case strings.HasPrefix(line, "!ok "):
		return nil
	case strings.HasPrefix(line, "!err "):
		msg := line[len("!err "):]
		if m, uerr := server.Unescape(msg); uerr == nil {
			msg = m
		}
		return fmt.Errorf("%w: %s", ErrSessionExpired, msg)
	default:
		return c.poison(fmt.Errorf("client: unexpected resume reply %q", line))
	}
}
