// Package client is the TCP client for the snapdb server's line
// protocol (see internal/server for the wire format).
package client

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"time"

	"snapdb/internal/server"
	"snapdb/internal/sqlparse"
)

// Result is one statement's outcome.
type Result struct {
	Columns      []string
	Rows         [][]sqlparse.Value
	RowsAffected int
	FromCache    bool
}

// Conn is one client connection (one server-side session).
type Conn struct {
	c net.Conn
	r *bufio.Reader
}

// Dial connects to a snapdb server.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return &Conn{c: c, r: bufio.NewReader(c)}, nil
}

// Backoff schedule for DialContext: exponential from 10ms, capped.
const (
	dialBackoffFloor = 10 * time.Millisecond
	dialBackoffCap   = 640 * time.Millisecond
)

// DialContext connects to a snapdb server, retrying transient dial
// failures (server still booting or recovering, connection refused)
// with capped exponential backoff until the context's deadline or
// cancellation. A server that just crashed takes a moment to replay
// its logs; clients that redial with DialContext ride across the
// recovery window instead of failing their first statement.
func DialContext(ctx context.Context, addr string) (*Conn, error) {
	var (
		d       net.Dialer
		lastErr error
	)
	backoff := dialBackoffFloor
	for {
		c, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return &Conn{c: c, r: bufio.NewReader(c)}, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
		select {
		case <-ctx.Done():
		case <-time.After(backoff):
		}
		if ctx.Err() != nil {
			break
		}
		backoff *= 2
		if backoff > dialBackoffCap {
			backoff = dialBackoffCap
		}
	}
	return nil, fmt.Errorf("client: dial %s: %w (last attempt: %v)", addr, ctx.Err(), lastErr)
}

// Close closes the connection.
func (c *Conn) Close() error { return c.c.Close() }

// Execute sends one statement and reads the response. Statements must
// not contain newlines (the protocol is line-oriented).
func (c *Conn) Execute(stmt string) (*Result, error) {
	if strings.ContainsAny(stmt, "\r\n") {
		return nil, fmt.Errorf("client: statement contains a newline")
	}
	if _, err := fmt.Fprintf(c.c, "%s\n", stmt); err != nil {
		return nil, fmt.Errorf("client: send: %w", err)
	}
	line, err := c.readLine()
	if err != nil {
		return nil, err
	}
	switch {
	case strings.HasPrefix(line, "ERR "):
		return nil, fmt.Errorf("client: server: %s", line[4:])
	case strings.HasPrefix(line, "OK "):
		var nrows, affected, fromCache int
		if _, err := fmt.Sscanf(line, "OK %d %d %d", &nrows, &affected, &fromCache); err != nil {
			return nil, fmt.Errorf("client: malformed OK line %q: %w", line, err)
		}
		res := &Result{RowsAffected: affected, FromCache: fromCache == 1}
		if nrows == 0 {
			return res, nil
		}
		cols, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if !strings.HasPrefix(cols, "COLS ") {
			return nil, fmt.Errorf("client: expected COLS line, got %q", cols)
		}
		res.Columns = strings.Split(cols[5:], "\t")
		for i := 0; i < nrows; i++ {
			rowLine, err := c.readLine()
			if err != nil {
				return nil, err
			}
			parts := strings.Split(rowLine, "\t")
			row := make([]sqlparse.Value, len(parts))
			for j, p := range parts {
				v, err := server.DecodeValue(p)
				if err != nil {
					return nil, fmt.Errorf("client: row %d: %w", i, err)
				}
				row[j] = v
			}
			res.Rows = append(res.Rows, row)
		}
		return res, nil
	default:
		return nil, fmt.Errorf("client: unexpected response %q", line)
	}
}

func (c *Conn) readLine() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("client: read: %w", err)
	}
	return strings.TrimRight(line, "\r\n"), nil
}
