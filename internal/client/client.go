// Package client is the TCP client for the snapdb server's line
// protocol (see internal/server for the wire format).
package client

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"time"

	"snapdb/internal/server"
	"snapdb/internal/sqlparse"
)

// Result is one statement's outcome.
type Result struct {
	Columns      []string
	Rows         [][]sqlparse.Value
	RowsAffected int
	RowsExamined int
	FromCache    bool
}

// ServerError is a statement-level error reported by the server (an
// ERR reply). The connection remains usable after one; transport
// failures are returned as ordinary errors instead.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "client: server: " + e.Msg }

// ErrConnBroken reports a Conn poisoned by an earlier transport
// failure. Once a write fails, a read fails, or a reply is malformed,
// the request/reply framing may be desynchronized — a later reply
// could be attributed to the wrong statement — so every subsequent
// call fails fast with this error instead of risking a misattributed
// result. Recovery is a new connection (or a ReliableConn, which
// reconnects and replays automatically).
var ErrConnBroken = errors.New("client: connection poisoned by earlier transport error")

// BatchResult is one statement's outcome within ExecuteBatch: exactly
// one of Result and Err is set.
type BatchResult struct {
	Result *Result
	Err    error
}

// Conn is one client connection (one server-side session). A Conn is
// not safe for concurrent use; sendBuf is the reused statement-framing
// scratch behind that contract.
type Conn struct {
	c       net.Conn
	r       *bufio.Reader
	sendBuf []byte
	lineBuf []byte

	// broken latches the first transport-level failure (see
	// ErrConnBroken); statement-level ERR replies never set it.
	broken bool

	// Column-header interning: the raw COLS payload of the previous
	// reply and the []string it parsed to (see readResult).
	lastColsRaw []byte
	lastCols    []string
}

// parseOKHeader parses the four space-separated counters of an OK
// reply without the fmt scanner or any intermediate strings.
func parseOKHeader(b []byte) (nrows, affected, fromCache, examined int, ok bool) {
	var vals [4]int
	i := 0
	for f := 0; f < 4; f++ {
		if f > 0 {
			if i >= len(b) || b[i] != ' ' {
				return 0, 0, 0, 0, false
			}
			i++
		}
		n, digits := 0, 0
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			n = n*10 + int(b[i]-'0')
			i++
			digits++
		}
		if digits == 0 {
			return 0, 0, 0, 0, false
		}
		vals[f] = n
	}
	if i != len(b) {
		return 0, 0, 0, 0, false
	}
	return vals[0], vals[1], vals[2], vals[3], true
}

// Dial connects to a snapdb server.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return &Conn{c: c, r: bufio.NewReader(c)}, nil
}

// Backoff schedule for DialContext: exponential from 10ms, capped.
const (
	dialBackoffFloor = 10 * time.Millisecond
	dialBackoffCap   = 640 * time.Millisecond
)

// jitteredBackoff draws one full-jitter sleep: uniform in (0, envelope].
// Full jitter (sleep = random(0, envelope), envelope doubling per
// attempt) decorrelates the retry times of clients that failed
// together — after a server restart or a network partition heals, a
// deterministic schedule would march every waiting client back in
// lockstep, re-creating the overload that made them back off. The +1
// keeps the sleep nonzero so a tight dial loop cannot spin.
func jitteredBackoff(envelope time.Duration) time.Duration {
	return time.Duration(rand.Int63n(int64(envelope))) + 1
}

// DialContext connects to a snapdb server, retrying transient dial
// failures (server still booting or recovering, connection refused)
// with capped exponential backoff and full jitter until the context's
// deadline or cancellation. A server that just crashed takes a moment
// to replay its logs; clients that redial with DialContext ride across
// the recovery window instead of failing their first statement.
func DialContext(ctx context.Context, addr string) (*Conn, error) {
	var (
		d       net.Dialer
		lastErr error
	)
	backoff := dialBackoffFloor
	for {
		c, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return &Conn{c: c, r: bufio.NewReader(c)}, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
		select {
		case <-ctx.Done():
		case <-time.After(jitteredBackoff(backoff)):
		}
		if ctx.Err() != nil {
			break
		}
		backoff *= 2
		if backoff > dialBackoffCap {
			backoff = dialBackoffCap
		}
	}
	return nil, fmt.Errorf("client: dial %s: %w (last attempt: %v)", addr, ctx.Err(), lastErr)
}

// Close closes the connection.
func (c *Conn) Close() error { return c.c.Close() }

// poison latches the broken flag and returns err unchanged; every
// transport-level failure funnels through here.
func (c *Conn) poison(err error) error {
	c.broken = true
	return err
}

// Execute sends one statement and reads the response. Statements must
// not contain newlines (the protocol is line-oriented).
func (c *Conn) Execute(stmt string) (*Result, error) {
	if c.broken {
		return nil, ErrConnBroken
	}
	if strings.ContainsAny(stmt, "\r\n") {
		return nil, fmt.Errorf("client: statement contains a newline")
	}
	c.sendBuf = append(append(c.sendBuf[:0], stmt...), '\n')
	if _, err := c.c.Write(c.sendBuf); err != nil {
		return nil, c.poison(fmt.Errorf("client: send: %w", err))
	}
	return c.readResult()
}

// Explain runs EXPLAIN on the statement and returns the rendered plan,
// one operator per line, root first. The statement is planned but not
// executed.
func (c *Conn) Explain(stmt string) ([]string, error) {
	return c.explainLines("EXPLAIN " + stmt)
}

// ExplainAnalyze runs EXPLAIN ANALYZE on the statement: the statement
// really executes server-side (mutations apply, pages are fetched) and
// the returned plan lines carry the per-operator runtime counters.
func (c *Conn) ExplainAnalyze(stmt string) ([]string, error) {
	return c.explainLines("EXPLAIN ANALYZE " + stmt)
}

func (c *Conn) explainLines(query string) ([]string, error) {
	res, err := c.Execute(query)
	if err != nil {
		return nil, err
	}
	lines := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		if len(row) != 1 {
			return nil, fmt.Errorf("client: malformed EXPLAIN row %v", row)
		}
		lines = append(lines, row[0].Str)
	}
	return lines, nil
}

// ExecuteBatch pipelines stmts over the connection: every statement is
// sent in one write, then the replies are read back in order. This
// collapses N network round trips into one, which is where the
// per-statement latency of a remote snapdb server actually goes.
//
// Statement errors are isolated exactly as in sequential Execute
// calls: a failed statement yields a BatchResult with Err set (a
// *ServerError) and the remaining statements still run. The returned
// error is transport-level only; when it is non-nil the slice holds
// the replies received before the failure.
//
// Statements must be non-empty and newline-free: the server skips
// blank lines without replying, so an empty statement would desync
// the reply stream.
func (c *Conn) ExecuteBatch(stmts []string) ([]BatchResult, error) {
	if c.broken {
		return nil, ErrConnBroken
	}
	if len(stmts) == 0 {
		return nil, nil
	}
	total := 0
	for i, stmt := range stmts {
		if strings.ContainsAny(stmt, "\r\n") {
			return nil, fmt.Errorf("client: statement %d contains a newline", i)
		}
		if strings.TrimSpace(stmt) == "" {
			return nil, fmt.Errorf("client: statement %d is empty", i)
		}
		total += len(stmt) + 1
	}
	var batch strings.Builder
	batch.Grow(total)
	for _, stmt := range stmts {
		batch.WriteString(stmt)
		batch.WriteByte('\n')
	}
	if _, err := io.WriteString(c.c, batch.String()); err != nil {
		return nil, c.poison(fmt.Errorf("client: send batch: %w", err))
	}
	out := make([]BatchResult, 0, len(stmts))
	for range stmts {
		res, err := c.readResult()
		var se *ServerError
		if err != nil && !errors.As(err, &se) {
			return out, err
		}
		out = append(out, BatchResult{Result: res, Err: err})
	}
	return out, nil
}

// readResult parses one statement reply. An ERR reply comes back as a
// *ServerError; any other error means the connection is broken, so the
// Conn is poisoned (ErrConnBroken from then on).
func (c *Conn) readResult() (*Result, error) {
	res, err := c.readReply()
	if err != nil {
		var se *ServerError
		if !errors.As(err, &se) {
			_ = c.poison(err)
		}
	}
	return res, err
}

// readReply parses one reply off the wire.
//
// Parsing works on the reader's byte slices directly: the only strings
// materialized are the ones the caller keeps (column names, values,
// error text). The reply path runs once per statement on every remote
// workload, so reply framing must not allocate.
func (c *Conn) readReply() (*Result, error) {
	line, err := c.readLine()
	if err != nil {
		return nil, err
	}
	switch {
	case bytes.HasPrefix(line, []byte("ERR ")):
		raw := string(line[4:])
		msg, uerr := server.Unescape(raw)
		if uerr != nil {
			msg = raw
		}
		return nil, &ServerError{Msg: msg}
	case bytes.HasPrefix(line, []byte("OK ")):
		nrows, affected, fromCache, examined, ok := parseOKHeader(line[3:])
		if !ok {
			return nil, fmt.Errorf("client: malformed OK line %q", line)
		}
		res := &Result{RowsAffected: affected, RowsExamined: examined, FromCache: fromCache == 1}
		if nrows == 0 {
			return res, nil
		}
		cols, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if !bytes.HasPrefix(cols, []byte("COLS ")) {
			return nil, fmt.Errorf("client: expected COLS line, got %q", cols)
		}
		// Workloads repeat the same projections, so the previous
		// reply's column slice usually matches byte for byte — reuse it
		// instead of re-splitting. Results share the slice; they never
		// mutate it.
		if bytes.Equal(cols[5:], c.lastColsRaw) && c.lastCols != nil {
			res.Columns = c.lastCols
		} else {
			res.Columns = strings.Split(string(cols[5:]), "\t")
			c.lastColsRaw = append(c.lastColsRaw[:0], cols[5:]...)
			c.lastCols = res.Columns
		}
		res.Rows = make([][]sqlparse.Value, 0, nrows)
		for i := 0; i < nrows; i++ {
			rowLine, err := c.readLine()
			if err != nil {
				return nil, err
			}
			row := make([]sqlparse.Value, 0, len(res.Columns))
			rest := rowLine
			for {
				var field []byte
				if j := bytes.IndexByte(rest, '\t'); j >= 0 {
					field, rest = rest[:j], rest[j+1:]
				} else {
					field, rest = rest, nil
				}
				v, err := decodeValue(field)
				if err != nil {
					return nil, fmt.Errorf("client: row %d: %w", i, err)
				}
				row = append(row, v)
				if rest == nil {
					break
				}
			}
			res.Rows = append(res.Rows, row)
		}
		return res, nil
	default:
		return nil, fmt.Errorf("client: unexpected response %q", line)
	}
}

// decodeValue parses one wire-format value (the byte-slice counterpart
// of server.DecodeValue).
func decodeValue(b []byte) (sqlparse.Value, error) {
	if len(b) >= 2 && b[0] == 'i' && b[1] == ':' {
		n, err := strconv.ParseInt(string(b[2:]), 10, 64)
		if err != nil {
			return sqlparse.Value{}, fmt.Errorf("client: bad int %q: %w", b, err)
		}
		return sqlparse.IntValue(n), nil
	}
	if len(b) >= 2 && b[0] == 's' && b[1] == ':' {
		str, err := server.Unescape(string(b[2:]))
		if err != nil {
			return sqlparse.Value{}, err
		}
		return sqlparse.StrValue(str), nil
	}
	return sqlparse.Value{}, fmt.Errorf("client: bad value tag in %q", b)
}

// readLine returns the next reply line without its terminator. The
// returned slice aliases the reader's buffer (or c.lineBuf for lines
// longer than it) and is valid only until the next readLine call.
func (c *Conn) readLine() ([]byte, error) {
	c.lineBuf = c.lineBuf[:0]
	for {
		frag, err := c.r.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			c.lineBuf = append(c.lineBuf, frag...)
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("client: read: %w", err)
		}
		line := frag
		if len(c.lineBuf) > 0 {
			c.lineBuf = append(c.lineBuf, frag...)
			line = c.lineBuf
		}
		for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
			line = line[:len(line)-1]
		}
		return line, nil
	}
}
