package experiments

import (
	"fmt"

	"snapdb/internal/core"
	"snapdb/internal/engine"
	"snapdb/internal/snapshot"
)

// E1Result reproduces Figure 1: the attack-type × artifact-class
// matrix, verified against live captures rather than asserted.
type E1Result struct {
	Rows []E1Row
}

// E1Row is one attack's verified reveal set.
type E1Row struct {
	Attack      snapshot.AttackType
	Logs        bool
	Diagnostics bool
	Memory      bool
	// Channel counts observed in the live capture, proving the flags.
	FindingChannels []string
}

// Name implements Result.
func (*E1Result) Name() string { return "E1" }

// Render implements Result.
func (r *E1Result) Render() string {
	t := &table{header: []string{"attack", "logs", "diagnostic tables", "data structures", "channels observed"}}
	mark := func(b bool) string {
		if b {
			return "X"
		}
		return ""
	}
	for _, row := range r.Rows {
		t.add(row.Attack.String(), mark(row.Logs), mark(row.Diagnostics), mark(row.Memory),
			fmt.Sprintf("%d", len(row.FindingChannels)))
	}
	return "Figure 1: DBMS-specific data yielded by each snapshot attack\n" + t.String()
}

// E1Figure1 runs a mixed workload and captures each attack's snapshot,
// checking that the revealed components match the paper's matrix.
func E1Figure1() (*E1Result, error) {
	e, err := engine.New(engine.Defaults())
	if err != nil {
		return nil, err
	}
	e.Clock = func() int64 { return 1_700_000_000 }
	s := e.Connect("app")
	stmts := []string{
		"CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance INT)",
		"INSERT INTO accounts (id, owner, balance) VALUES (1, 'alice', 100)",
		"INSERT INTO accounts (id, owner, balance) VALUES (2, 'bob', 250)",
		"UPDATE accounts SET balance = 175 WHERE id = 2",
		"SELECT owner FROM accounts WHERE balance >= 150",
	}
	for _, q := range stmts {
		if _, err := s.Execute(q); err != nil {
			return nil, fmt.Errorf("E1: %w", err)
		}
	}
	cat := core.CatalogOf(e)
	res := &E1Result{}
	for _, attack := range snapshot.AllAttacks {
		snap := snapshot.Capture(e, attack)
		rep, err := core.Analyze(snap, cat)
		if err != nil {
			return nil, fmt.Errorf("E1 %v: %w", attack, err)
		}
		row := E1Row{
			Attack:      attack,
			Logs:        snap.Disk != nil,
			Diagnostics: snap.Diagnostics != nil,
			Memory:      snap.Memory != nil,
		}
		for _, f := range rep.Findings {
			row.FindingChannels = append(row.FindingChannels, f.Channel)
		}
		want := attack.Reveals()
		if row.Logs != want.Logs || row.Diagnostics != want.Diagnostics || row.Memory != want.Memory {
			return nil, fmt.Errorf("E1: %v revealed %+v, want %+v", attack, row, want)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
