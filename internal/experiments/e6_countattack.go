package experiments

import (
	"fmt"

	"snapdb/internal/attacks/leakabuse"
	"snapdb/internal/crypto/prim"
	"snapdb/internal/crypto/sse"
	"snapdb/internal/workload"
)

// E6Result reproduces §6's token-based attack: tokens recovered from a
// snapshot are replayed against the SSE index; result counts identify
// keywords via the count attack. The paper cites the Enron statistic
// that 63% of the 500 most frequent words have a unique result count.
type E6Result struct {
	Quick           bool
	Docs            int
	TokensStolen    int
	UniqueCountFrac float64 // fraction of top keywords with unique counts
	PaperUniqueFrac float64
	Recovered       int
	RecoveryRate    float64
	Accuracy        float64
	DocsExposed     int // distinct documents with recovered content
}

// Name implements Result.
func (*E6Result) Name() string { return "E6" }

// Render implements Result.
func (r *E6Result) Render() string {
	t := &table{header: []string{"metric", "value", "paper"}}
	t.add("documents indexed", fmt.Sprintf("%d", r.Docs), "~30k (Enron)")
	t.add("unique-count fraction (top keywords)", fmt.Sprintf("%.1f%%", 100*r.UniqueCountFrac), fmt.Sprintf("%.0f%%", 100*r.PaperUniqueFrac))
	t.add("tokens stolen", fmt.Sprintf("%d", r.TokensStolen), "500")
	t.add("keywords recovered", fmt.Sprintf("%d (%.1f%%)", r.Recovered, 100*r.RecoveryRate), "-")
	t.add("recovery accuracy", fmt.Sprintf("%.1f%%", 100*r.Accuracy), "100% (count-unique)")
	t.add("documents with exposed content", fmt.Sprintf("%d", r.DocsExposed), "-")
	return "E6 (§6): count attack on searchable encryption with stolen tokens\n" + t.String()
}

// E6CountAttack builds the Enron-like corpus, indexes it under SSE,
// steals the tokens of the most frequent keywords (the ones an
// application would actually have queried, and which therefore sit in
// logs and heap), and runs the count attack.
func E6CountAttack(quick bool) (*E6Result, error) {
	cfg := workload.EnronLike()
	topN := 500
	if quick {
		cfg.NumDocs = 4000
		topN = 100
	}
	corpus, err := workload.NewCorpus(cfg)
	if err != nil {
		return nil, fmt.Errorf("E6: %w", err)
	}
	scheme := sse.New(prim.TestKey("e6"))
	ix := sse.NewIndex()
	for id, doc := range corpus.Docs {
		if err := ix.AddDocument(scheme, id, doc); err != nil {
			return nil, fmt.Errorf("E6: %w", err)
		}
	}
	top := corpus.TopWords(topN)
	tokens := make([]sse.Token, len(top))
	truth := make(map[int]string, len(top))
	for i, wc := range top {
		tokens[i] = scheme.TokenFor(wc.Word)
		truth[i] = wc.Word
	}
	// Attacker auxiliary knowledge: the corpus keyword counts (the
	// paper's "partial knowledge of the encrypted documents").
	aux := make(map[string]int, len(corpus.Vocabulary))
	for _, w := range corpus.Vocabulary {
		if c := corpus.Count(w); c > 0 {
			aux[w] = c
		}
	}
	obs := leakabuse.Observe(ix, tokens)
	recs := leakabuse.CountAttack(obs, aux)
	score, err := leakabuse.Evaluate(obs, recs, truth)
	if err != nil {
		return nil, fmt.Errorf("E6: %w", err)
	}
	exposed := make(map[int]bool)
	for _, r := range recs {
		for _, d := range r.Docs {
			exposed[d] = true
		}
	}
	return &E6Result{
		Quick:           quick,
		Docs:            cfg.NumDocs,
		TokensStolen:    len(tokens),
		UniqueCountFrac: corpus.UniqueCountFraction(topN),
		PaperUniqueFrac: 0.63,
		Recovered:       score.Recovered,
		RecoveryRate:    score.RecoveryRate(),
		Accuracy:        score.Accuracy(),
		DocsExposed:     len(exposed),
	}, nil
}
