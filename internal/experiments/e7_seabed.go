package experiments

import (
	"fmt"
	"strings"

	"snapdb/internal/attacks/freq"
	"snapdb/internal/crypto/prim"
	"snapdb/internal/edb/seabedx"
	"snapdb/internal/engine"
	"snapdb/internal/snapshot"
	"snapdb/internal/workload"
)

// E7Result reproduces §6's Seabed attack: SPLASHE rewrites each count
// query onto a per-plaintext column, so the digest table accumulates
// the exact query histogram per plaintext value; frequency analysis
// (rank matching, the Lacharité-Paterson MLE) then maps columns to
// values. Against enhanced SPLASHE the DET tail column additionally
// yields per-row values.
type E7Result struct {
	Quick            bool
	QueryCount       int
	DigestRows       int
	HistogramExact   bool    // digest counts == true per-value query counts
	ColumnRecovery   float64 // fraction of dedicated columns mapped correctly
	WeightedRecovery float64 // weighted by query frequency
	TailRowRecovery  float64 // enhanced: fraction of tail rows recovered via DET frequency analysis
}

// Name implements Result.
func (*E7Result) Name() string { return "E7" }

// Render implements Result.
func (r *E7Result) Render() string {
	t := &table{header: []string{"metric", "value"}}
	t.add("count queries issued", fmt.Sprintf("%d", r.QueryCount))
	t.add("digest rows (query types)", fmt.Sprintf("%d", r.DigestRows))
	t.add("digest histogram exact", fmt.Sprintf("%v", r.HistogramExact))
	t.add("columns mapped to plaintexts", fmt.Sprintf("%.1f%%", 100*r.ColumnRecovery))
	t.add("query-weighted recovery", fmt.Sprintf("%.1f%%", 100*r.WeightedRecovery))
	t.add("tail rows recovered (enhanced SPLASHE)", fmt.Sprintf("%.1f%%", 100*r.TailRowRecovery))
	return "E7 (§6): frequency analysis of the SPLASHE query histogram\n" + t.String()
}

// E7Seabed drives a Seabed table with a Zipf query stream, captures a
// SQL-injection snapshot, and recovers the column→value mapping from
// the digest table alone.
func E7Seabed(quick bool) (*E7Result, error) {
	queries := 20000
	rows := 600
	if quick {
		queries = 4000
		rows = 200
	}
	domain := workload.States[:12]
	tailDomain := []string{"WY", "VT", "AK", "ND"} // infrequent values
	e, err := engine.New(engine.Defaults())
	if err != nil {
		return nil, err
	}
	tbl, err := seabedx.NewTable(e, prim.TestKey("e7"), "facts", "state", domain, true)
	if err != nil {
		return nil, err
	}
	// Load rows: Zipf over the dedicated domain, sprinkling tail values.
	rowVals, err := workload.ZipfQueryStream(domain, rows, 1.3, 11)
	if err != nil {
		return nil, err
	}
	// Every tenth row holds a tail value, with a skewed split (WY most
	// frequent, ND least) so the tail histogram has distinct ranks for
	// the frequency analysis to latch onto.
	tailSplit := []int{0, 0, 0, 0, 1, 1, 1, 2, 2, 3}
	for i, v := range rowVals {
		if i%10 == 9 {
			v = tailDomain[tailSplit[(i/10)%len(tailSplit)]]
			rowVals[i] = v
		}
		if err := tbl.Insert(v); err != nil {
			return nil, err
		}
	}
	// The application's query workload: Zipf over the dedicated domain.
	stream, err := workload.ZipfQueryStream(domain, queries, 1.4, 12)
	if err != nil {
		return nil, err
	}
	trueQueryCount := make(map[string]int)
	for _, v := range stream {
		if _, err := tbl.CountWhere(v); err != nil {
			return nil, err
		}
		trueQueryCount[v]++
	}

	// --- The attack: SQL injection view of the digest table. ---
	snap := snapshot.Capture(e, snapshot.SQLInjection)
	observed := make(map[string]int)    // column name -> query count
	colTruth := make(map[string]string) // column name -> plaintext (scoring only)
	for i := range domain {
		idx, _ := tbl.Plan().ColumnFor(domain[i])
		colTruth[tbl.Plan().ColumnName(idx)] = domain[i]
	}
	for _, row := range snap.Diagnostics.DigestSummary {
		for col := range colTruth {
			if strings.Contains(row.DigestText, "SUM("+col+")") {
				observed[col] += int(row.Count)
			}
		}
	}
	histogramExact := len(observed) > 0
	for col, pt := range colTruth {
		if trueQueryCount[pt] != observed[col] {
			histogramExact = false
		}
	}
	// Attacker model: Zipf popularity by state rank (the aux data).
	model := make(map[string]float64, len(domain))
	for i, v := range domain {
		model[v] = 1.0 / float64(i+1)
	}
	assign := freq.RankMatch(observed, model)
	acc, err := freq.Accuracy(assign, colTruth)
	if err != nil {
		return nil, err
	}
	wacc, err := freq.WeightedAccuracy(assign, colTruth, observed)
	if err != nil {
		return nil, err
	}

	// --- Enhanced-SPLASHE tail: DET ciphertext frequency analysis over
	// the stored rows recovers per-row plaintexts for tail values. ---
	res, err := tbl.Session().Execute("SELECT rid, " + tbl.Plan().TailColumnName() + " FROM facts")
	if err != nil {
		return nil, err
	}
	tailObserved := make(map[string]int)
	for _, r := range res.Rows {
		tailObserved[r[1].Str]++
	}
	// The dummy pad is the single most frequent tail ciphertext (every
	// dedicated-value row shares it); the attacker discards it and
	// matches the rest against the tail-value model.
	maxCT, maxN := "", -1
	for ct, n := range tailObserved {
		if n > maxN {
			maxCT, maxN = ct, n
		}
	}
	delete(tailObserved, maxCT)
	// Attacker auxiliary model: the plaintext distribution of the tail
	// values (the standard known-distribution assumption); ground truth
	// ct→value for scoring comes from re-deriving the DET tokens.
	tailTruthCount := make(map[string]int)
	for _, v := range rowVals {
		for _, tv := range tailDomain {
			if v == tv {
				tailTruthCount[v]++
			}
		}
	}
	tailModel := make(map[string]float64, len(tailDomain))
	for i, v := range tailDomain {
		tailModel[v] = float64(tailTruthCount[v]) + 1.0/float64(i+2) // tiny prior breaks ties
	}
	tailCTTruth := make(map[string]string)
	for _, tv := range tailDomain {
		tok, err := tbl.TailToken(tv)
		if err != nil {
			return nil, err
		}
		if _, seen := tailObserved[tok]; seen {
			tailCTTruth[tok] = tv
		}
	}
	tailAssign := freq.RankMatch(tailObserved, tailModel)
	var tailRecovered, tailTotal float64
	for ct, n := range tailObserved {
		tailTotal += float64(n)
		if tailCTTruth[ct] != "" && tailAssign[ct] == tailCTTruth[ct] {
			tailRecovered += float64(n)
		}
	}
	tailRate := 0.0
	if tailTotal > 0 {
		tailRate = tailRecovered / tailTotal
	}

	return &E7Result{
		Quick:            quick,
		QueryCount:       queries,
		DigestRows:       len(snap.Diagnostics.DigestSummary),
		HistogramExact:   histogramExact,
		ColumnRecovery:   acc,
		WeightedRecovery: wacc,
		TailRowRecovery:  tailRate,
	}, nil
}
