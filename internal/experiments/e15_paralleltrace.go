package experiments

import (
	"fmt"
	"strings"
	"time"

	"snapdb/internal/engine"
	"snapdb/internal/storage"
)

// E15Result extends the paper's access-pattern leakage story to
// intra-query parallelism. Splitting one clustered scan across worker
// goroutines leaves every durable, *semantic* artifact untouched — the
// merged result rows, the binlog, the general log are byte-identical
// to the serial execution — but the buffer-pool fetch sequence, the
// paper's §4 side channel, is scrambled by the concurrent partition
// traversals. An analyst fingerprinting queries by their fetch traces
// (the Lewi-Wu style attacks of E5) loses the stable per-query page
// signature the serial executor leaks; what remains is a multiset
// signature plus partition-shaped bursts. Parallelism is therefore a
// (weak, accidental) trace-obfuscation mitigation — and, symmetrically,
// a complication for defenders replaying traces to detect injected
// queries.
type E15Result struct {
	Rows    int // table rows scanned per query
	Workers int // partition workers in the parallel runs
	Queries int // scan statements compared

	ResultsIdentical bool // merged rows byte-identical to serial (must hold)
	BinlogIdentical  bool // binlog byte-identical (must hold)
	GeneralIdentical bool // general log byte-identical (must hold)

	SerialFetches   int  // buffer-pool fetches across the serial scan queries
	ParallelFetches int  // same, parallel: extra per-partition tree descents
	FirstDivergence int  // fetch index where the traces first differ (-1: never)
	RerunIdentical  bool // did two parallel runs produce the same trace?
}

// Name implements Result.
func (*E15Result) Name() string { return "E15" }

// Render implements Result.
func (r *E15Result) Render() string {
	t := &table{header: []string{"metric", "value"}}
	t.add("table rows / workers / queries", fmt.Sprintf("%d / %d / %d", r.Rows, r.Workers, r.Queries))
	t.add("result rows identical (must hold)", fmt.Sprintf("%v", r.ResultsIdentical))
	t.add("binlog identical (must hold)", fmt.Sprintf("%v", r.BinlogIdentical))
	t.add("general log identical (must hold)", fmt.Sprintf("%v", r.GeneralIdentical))
	t.add("fetch trace length serial -> parallel", fmt.Sprintf("%d -> %d", r.SerialFetches, r.ParallelFetches))
	t.add("first fetch-trace divergence at index", fmt.Sprintf("%d", r.FirstDivergence))
	t.add("parallel rerun trace identical", fmt.Sprintf("%v", r.RerunIdentical))
	return "E15 (§4 extension): parallel scans scramble the fetch trace, not the artifacts\n" + t.String()
}

// e15Queries are the scan statements whose traces are compared. All are
// read-only so the two engines' durable artifacts depend only on the
// identical setup prefix.
func e15Queries() []string {
	return []string{
		"SELECT * FROM ledger WHERE amount > 40",
		"SELECT acct FROM ledger WHERE id >= 300 AND id <= 30000",
		"SELECT COUNT(*) FROM ledger WHERE bucket = 3",
		"SELECT SUM(amount) FROM ledger",
	}
}

// e15Run executes the setup and scan workload on one engine and
// captures the per-query artifacts. The fetch trace covers only the
// scan queries (tracing starts after setup), so serial and parallel
// traces align from index zero.
func e15Run(workers, rows int) (results string, binlog, general []string, trace []storage.PageID, err error) {
	cfg := engine.Defaults()
	cfg.EnableGeneralLog = true
	cfg.EnableQueryCache = false // every run must really scan
	// 1ms, not less: sleeps below the host timer granularity round up
	// unpredictably, and the wait is the yield point that forces the
	// partition workers to interleave.
	cfg.SimulatedScanIOWait = time.Millisecond
	cfg.ParallelScanMinRows = 1
	if workers > 0 {
		cfg.MaxScanWorkers = workers
	} else {
		cfg.DisableParallelScan = true
	}
	e, err := engine.New(cfg)
	if err != nil {
		return "", nil, nil, nil, err
	}
	now := int64(1_700_000_000)
	e.Clock = func() int64 { now++; return now }
	s := e.Connect("e15")
	defer s.Close()

	setup := []string{"CREATE TABLE ledger (id INT PRIMARY KEY, acct INT, bucket INT, amount INT)"}
	for i := 0; i < rows; i++ {
		setup = append(setup, fmt.Sprintf(
			"INSERT INTO ledger (id, acct, bucket, amount) VALUES (%d, %d, %d, %d)",
			i*3, i%97, i%7, (i*41)%100))
	}
	setup = append(setup, "ANALYZE TABLE ledger")
	for i, q := range setup {
		if _, err := s.Execute(q); err != nil {
			return "", nil, nil, nil, fmt.Errorf("setup %d: %w", i, err)
		}
	}

	e.BufferPool().SetTraceFunc(func(id storage.PageID) { trace = append(trace, id) })
	var sb strings.Builder
	for i, q := range e15Queries() {
		res, err := s.Execute(q)
		if err != nil {
			return "", nil, nil, nil, fmt.Errorf("query %d (%q): %w", i, q, err)
		}
		fmt.Fprintf(&sb, "q%d cols=%v examined=%d\n", i, res.Columns, res.RowsExamined)
		for _, r := range res.Rows {
			for j, v := range r {
				if j > 0 {
					sb.WriteByte('|')
				}
				sb.WriteString(v.SQL())
			}
			sb.WriteByte('\n')
		}
	}
	e.BufferPool().SetTraceFunc(nil)

	for _, ev := range e.Binlog().Events() {
		binlog = append(binlog, fmt.Sprintf("%d|%d|%s", ev.Timestamp, ev.LSN, ev.Statement))
	}
	for _, en := range e.GeneralLog().Entries() {
		general = append(general, fmt.Sprintf("%d|%d|%s", en.Timestamp, en.Session, en.Statement))
	}
	return sb.String(), binlog, general, trace, nil
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// E15ParallelTrace runs the same scan workload serially and with
// partitioned parallel scans, then diffs every surface. The semantic
// artifacts must match exactly — that is the correctness contract the
// differential tests enforce — while the fetch trace must diverge: the
// partition workers' simulated IO waits guarantee their page fetches
// interleave even on a single CPU. A second parallel run shows whether
// the scrambled trace is even self-reproducible.
func E15ParallelTrace(quick bool) (*E15Result, error) {
	rows, workers := 12000, 4
	if quick {
		// Each partition must still cross at least one simulated-IO
		// boundary (2048 examined rows) or the workers never yield and
		// the trace stays serial-shaped.
		rows, workers = 6000, 2
	}

	serRes, serBlog, serGen, serTrace, err := e15Run(0, rows)
	if err != nil {
		return nil, fmt.Errorf("E15: serial run: %w", err)
	}
	parRes, parBlog, parGen, parTrace, err := e15Run(workers, rows)
	if err != nil {
		return nil, fmt.Errorf("E15: parallel run: %w", err)
	}
	_, _, _, parTrace2, err := e15Run(workers, rows)
	if err != nil {
		return nil, fmt.Errorf("E15: parallel rerun: %w", err)
	}

	res := &E15Result{
		Rows:             rows,
		Workers:          workers,
		Queries:          len(e15Queries()),
		ResultsIdentical: serRes == parRes,
		BinlogIdentical:  sameStrings(serBlog, parBlog),
		GeneralIdentical: sameStrings(serGen, parGen),
		SerialFetches:    len(serTrace),
		ParallelFetches:  len(parTrace),
		FirstDivergence:  -1,
	}
	n := len(serTrace)
	if len(parTrace) < n {
		n = len(parTrace)
	}
	for i := 0; i < n; i++ {
		if serTrace[i] != parTrace[i] {
			res.FirstDivergence = i
			break
		}
	}
	if res.FirstDivergence < 0 && len(serTrace) != len(parTrace) {
		res.FirstDivergence = n
	}
	res.RerunIdentical = len(parTrace) == len(parTrace2)
	if res.RerunIdentical {
		for i := range parTrace {
			if parTrace[i] != parTrace2[i] {
				res.RerunIdentical = false
				break
			}
		}
	}

	if !res.ResultsIdentical {
		return nil, fmt.Errorf("E15: parallel results diverged from serial")
	}
	if !res.BinlogIdentical {
		return nil, fmt.Errorf("E15: binlog diverged between serial and parallel runs")
	}
	if !res.GeneralIdentical {
		return nil, fmt.Errorf("E15: general log diverged between serial and parallel runs")
	}
	if res.FirstDivergence < 0 {
		return nil, fmt.Errorf("E15: fetch traces never diverged — parallel workers did not interleave")
	}
	return res, nil
}
