package experiments

import (
	"fmt"
	"strings"

	"snapdb/internal/engine"
	"snapdb/internal/failpoint"
	"snapdb/internal/forensics"
	"snapdb/internal/vfs"
	"snapdb/internal/wal"
)

// E13Result is the systems extension of §3 for crashed servers: a data
// directory captured after a crash — before or even after recovery —
// still carries the byte-level transcript of transactions that never
// committed. The torn redo tail that recovery truncates for
// consistency is still sitting in the stolen file for an attacker who
// parses the valid prefix.
type E13Result struct {
	Crashes           int // kill-points exercised
	RecoveredClean    int // crashes after which recovery reported no divergence
	ResidueCrashes    int // crashes whose directory leaked uncommitted writes
	UncommittedWrites int // uncommitted statements reconstructed across all crashes
	SecretHits        int // crashes where the never-committed secret literal was readable
	TruncationsSeen   int // crashes where recovery reported a torn/corrupt tail
	PostRecoveryLeaks int // crashes where the secret was STILL on disk after recovery ran
}

// Name implements Result.
func (*E13Result) Name() string { return "E13" }

// Render implements Result.
func (r *E13Result) Render() string {
	t := &table{header: []string{"metric", "value"}}
	t.add("crash kill-points exercised", fmt.Sprintf("%d", r.Crashes))
	t.add("recoveries without divergence", fmt.Sprintf("%d", r.RecoveredClean))
	t.add("crashes leaking uncommitted writes", fmt.Sprintf("%d", r.ResidueCrashes))
	t.add("uncommitted statements reconstructed", fmt.Sprintf("%d", r.UncommittedWrites))
	t.add("crashes exposing the aborted secret", fmt.Sprintf("%d", r.SecretHits))
	t.add("torn/corrupt tails reported by recovery", fmt.Sprintf("%d", r.TruncationsSeen))
	t.add("secret still on disk after recovery", fmt.Sprintf("%d", r.PostRecoveryLeaks))
	return "E13 (§3 extension): forensic residue in crashed data directories\n" + t.String()
}

// e13Secret is the literal that only ever travels inside transactions
// that do not commit before the crash.
const e13Secret = "uncommitted-wire-0091"

func e13Workload() []string {
	stmts := []string{
		"CREATE TABLE transfers (id INT PRIMARY KEY, memo TEXT, cents INT)",
	}
	for i := 0; i < 8; i++ {
		stmts = append(stmts, fmt.Sprintf(
			"INSERT INTO transfers (id, memo, cents) VALUES (%d, 'routine-%02d', %d)", i, i, 100*i))
	}
	// The in-flight transaction a crash interrupts: its rows carry the
	// secret memo and it never reaches COMMIT.
	stmts = append(stmts,
		"BEGIN",
		fmt.Sprintf("INSERT INTO transfers (id, memo, cents) VALUES (90, '%s', 999999)", e13Secret),
		fmt.Sprintf("UPDATE transfers SET memo = '%s' WHERE id = 3", e13Secret),
		"COMMIT",
	)
	return stmts
}

// E13CrashResidue crashes a durable engine at every k-th disk operation
// inside the final transaction's window, then plays the forensic
// analyst over the crashed directory: parse the redo file's valid
// prefix, reconstruct statements, and look for the transaction that was
// never acknowledged. It then runs recovery and checks whether the
// rolled-back data is still recoverable from the post-recovery files
// (compensation records preserve the pre-image transcript).
func E13CrashResidue(quick bool) (*E13Result, error) {
	stmts := e13Workload()

	// Dry run enumerates the disk operations the workload performs.
	dryReg := failpoint.New(1)
	dryAcked, err := e13Run(vfs.NewFaultFS(vfs.NewMemFS(), dryReg), stmts)
	if err != nil {
		return nil, err
	}
	if dryAcked != len(stmts) {
		return nil, fmt.Errorf("E13: dry run stopped at statement %d", dryAcked)
	}
	total := int(dryReg.TotalHits())

	stride := 1
	if quick {
		stride = 4
	}
	res := &E13Result{}
	for k := 1; k <= total; k += stride {
		mem := vfs.NewMemFS()
		reg := failpoint.New(1)
		reg.Arm("*", failpoint.KindCrash, uint64(k))
		_, _ = e13Run(vfs.NewFaultFS(mem, reg), stmts)
		if !reg.Crashed() {
			continue // workload completed before the kill-point
		}
		mem.Crash()
		res.Crashes++

		// The attacker images the crashed directory first.
		leaked, secret := e13Analyze(mem)
		if leaked > 0 {
			res.ResidueCrashes++
			res.UncommittedWrites += leaked
		}
		if secret {
			res.SecretHits++
		}

		// Then the operator recovers — and the attacker images the
		// directory again.
		_, rep, rerr := engine.Recover(mem, engine.Defaults())
		if rerr != nil {
			return nil, fmt.Errorf("E13: kill-point %d: recovery failed: %w", k, rerr)
		}
		if rep.RedoTruncated != nil || rep.UndoTruncated != nil || rep.BinlogTruncated != nil {
			res.TruncationsSeen++
		}
		res.RecoveredClean++
		_, postSecret := e13Analyze(mem)
		if postSecret {
			res.PostRecoveryLeaks++
		}
	}
	if res.Crashes == 0 {
		return nil, fmt.Errorf("E13: no kill-points fired")
	}
	if res.SecretHits == 0 {
		return nil, fmt.Errorf("E13: no crash exposed the uncommitted secret — residue channel not reproduced")
	}
	return res, nil
}

// e13Run executes the workload on a fresh durable engine over fs.
func e13Run(fs vfs.FS, stmts []string) (acked int, err error) {
	cfg := engine.Defaults()
	cfg.FS = fs
	e, err := engine.New(cfg)
	if err != nil {
		return 0, nil // crash during boot: nothing acknowledged
	}
	now := int64(1_700_000_000)
	e.Clock = func() int64 { now++; return now }
	s := e.Connect("app")
	for _, q := range stmts {
		if _, err := s.Execute(q); err != nil {
			return acked, nil
		}
		acked++
	}
	return acked, nil
}

// e13Analyze plays the forensic analyst over a (possibly crashed,
// possibly recovered) data directory in fs: parse the redo/undo valid
// prefixes, reconstruct write statements, and count the ones belonging
// to transactions with no commit marker. Returns that count and
// whether the secret literal was among the reconstructed bytes.
func e13Analyze(fs vfs.FS) (uncommitted int, secretSeen bool) {
	read := func(name string) []byte {
		b, err := fs.ReadFile(name)
		if err != nil {
			return nil
		}
		return b
	}
	redoImg := read(engine.FileRedo)
	undoImg := read(engine.FileUndo)
	// The analyst tolerates torn tails: ReconstructWrites parses the
	// valid prefix (wal.ParseLog semantics).
	writes, err := forensics.ReconstructWrites(redoImg, undoImg, forensics.Catalog{
		1: {Name: "transfers", Columns: []string{"id", "memo", "cents"}},
	})
	if err != nil {
		return 0, false
	}
	committed := e13CommittedTxns(redoImg)
	for _, w := range writes {
		if w.Txn != 0 && !committed[w.Txn] {
			uncommitted++
		}
		if strings.Contains(w.SQL, e13Secret) {
			secretSeen = true
		}
	}
	return uncommitted, secretSeen
}

// e13CommittedTxns returns the set of txn ids with a commit marker in
// the parseable prefix of a redo image.
func e13CommittedTxns(redoImg []byte) map[uint64]bool {
	recs, _ := wal.ParseLogReport(redoImg)
	out := make(map[uint64]bool)
	for _, r := range recs {
		if r.Op == wal.OpCommit {
			out[r.Txn] = true
		}
	}
	return out
}
