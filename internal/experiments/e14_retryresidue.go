package experiments

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"time"

	"snapdb/internal/client"
	"snapdb/internal/engine"
	"snapdb/internal/failpoint"
	"snapdb/internal/netfault"
	"snapdb/internal/server"
)

// E14Result extends §3 to the reliability layer itself: the machinery
// that makes retries safe — server-side reply caching and sequence
// deduplication — is a recording surface. A reply lost on the wire is
// re-requested, and the replayed arrival (a) leaves a duplicate
// general-log record whose timestamp gap measures the client's retry
// latency, and (b) proves the server was holding the full rendered
// reply, result rows included, long after the statement finished. An
// analyst with the general log reconstructs the fault timeline; an
// attacker imaging server memory reads query results out of the dedup
// cache; and a client that vanishes without a goodbye leaves its
// session — cache included — resumable by anyone holding the token.
type E14Result struct {
	Runs             int   // faulted runs executed
	Faults           int   // runs whose armed reply-write fault fired
	ReplayRuns       int   // runs leaving >=1 duplicate general-log record
	DuplicateRecords int   // duplicate general-log records across all runs
	MaxReplayGap     int64 // widest clock gap original->replayed arrival (ticks)
	SecretRuns       int   // runs retaining the secret result in the dedup cache
	DigestMatches    int   // runs whose final state matched the fault-free run
	OrphanRetained   bool  // abandoned session still held after raw disconnect
}

// Name implements Result.
func (*E14Result) Name() string { return "E14" }

// Render implements Result.
func (r *E14Result) Render() string {
	t := &table{header: []string{"metric", "value"}}
	t.add("reply-write fault points exercised", fmt.Sprintf("%d/%d", r.Faults, r.Runs))
	t.add("exactly-once digests (must be all)", fmt.Sprintf("%d/%d", r.DigestMatches, r.Runs))
	t.add("runs with duplicate general-log records", fmt.Sprintf("%d", r.ReplayRuns))
	t.add("duplicate records (replayed arrivals)", fmt.Sprintf("%d", r.DuplicateRecords))
	t.add("widest original->replay clock gap", fmt.Sprintf("%d ticks", r.MaxReplayGap))
	t.add("runs with secret result in dedup cache", fmt.Sprintf("%d", r.SecretRuns))
	t.add("abandoned session retained server-side", fmt.Sprintf("%v", r.OrphanRetained))
	return "E14 (§3 extension): retry machinery as a forensic surface\n" + t.String()
}

// e14Secret is a result value that only ever travels inside one SELECT
// reply — finding it in the server's dedup cache means the retry layer
// retains query results beyond their delivery.
const e14Secret = "retry-cache-secret-7733"

func e14Workload() []string {
	stmts := []string{"CREATE TABLE vault (id INT PRIMARY KEY, label TEXT, amount INT)"}
	for i := 0; i < 8; i++ {
		stmts = append(stmts, fmt.Sprintf(
			"INSERT INTO vault (id, label, amount) VALUES (%d, 'routine-%02d', %d)", i, i, 100*i))
	}
	stmts = append(stmts,
		fmt.Sprintf("INSERT INTO vault (id, label, amount) VALUES (90, '%s', 999999)", e14Secret),
		"SELECT label, amount FROM vault WHERE id = 90",
		"UPDATE vault SET amount = 1 WHERE id = 3",
		"SELECT COUNT(*) FROM vault",
	)
	return stmts
}

// E14RetryResidue arms a one-shot fault at every k-th server write —
// the write that carries a statement's reply — and drives the workload
// through a ReliableConn. Losing a reply after execution forces the
// client's resend down the dedup path: the state digest must stay
// identical to the fault-free run (exactly-once), while the general
// log accumulates duplicate arrivals and the dedup cache retains the
// secret-bearing SELECT reply. Finally it abandons a raw session
// without !bye to show the orphaned session (cache included) stays
// resumable server-side.
func E14RetryResidue(quick bool) (*E14Result, error) {
	// Dry run: wrapped but unarmed, to enumerate the reply writes and
	// capture the fault-free reference artifacts.
	dryReg := failpoint.New(1)
	refDigest, refLog, _, err := e14Run(dryReg)
	if err != nil {
		return nil, fmt.Errorf("E14: dry run: %w", err)
	}
	total := int(dryReg.PointHits("netwrite:srv"))
	if total < 4 {
		return nil, fmt.Errorf("E14: dry run saw only %d reply writes", total)
	}

	stride := 1
	if quick {
		stride = 3
	}
	res := &E14Result{}
	for k := 1; k <= total; k += stride {
		reg := failpoint.New(1)
		// Alternate the failure flavor: a clean reset and a torn
		// partial write exercise different client-side detection paths,
		// but both lose a reply that the server already rendered.
		kind := failpoint.KindReset
		if k%2 == 0 {
			kind = failpoint.KindPartial
		}
		reg.Arm("netwrite:srv", kind, uint64(k))

		digest, glog, secret, err := e14Run(reg)
		if err != nil {
			return nil, fmt.Errorf("E14: kill-point %d: %w", k, err)
		}
		res.Runs++
		if secret {
			res.SecretRuns++
		}
		if reg.PointHits("netwrite:srv") >= uint64(k) {
			res.Faults++
		}
		if digest == refDigest {
			res.DigestMatches++
		}
		dups := 0
		for stmt, ts := range glog {
			extra := len(ts) - len(refLog[stmt])
			if extra <= 0 {
				continue
			}
			dups += extra
			// The gap between the original arrival and its replay is the
			// client's detect-reconnect-resend latency, readable by
			// anyone holding the general log.
			for i := 1; i < len(ts); i++ {
				if gap := ts[i] - ts[i-1]; gap > res.MaxReplayGap {
					res.MaxReplayGap = gap
				}
			}
		}
		if dups > 0 {
			res.ReplayRuns++
			res.DuplicateRecords += dups
		}
	}
	if res.Faults == 0 {
		return nil, fmt.Errorf("E14: no reply-write fault fired")
	}
	if res.DigestMatches != res.Runs {
		return nil, fmt.Errorf("E14: exactly-once violated: %d/%d digests matched", res.DigestMatches, res.Runs)
	}
	if res.SecretRuns == 0 {
		return nil, fmt.Errorf("E14: secret never found in the dedup cache — retention channel not reproduced")
	}
	if res.ReplayRuns == 0 {
		return nil, fmt.Errorf("E14: no run left duplicate general-log records — replay channel not reproduced")
	}

	orphan, err := e14Abandon()
	if err != nil {
		return nil, fmt.Errorf("E14: abandonment probe: %w", err)
	}
	res.OrphanRetained = orphan
	return res, nil
}

// e14Serve starts a server on a netfault-wrapped loopback listener
// (reg nil = unwrapped) with a deterministic engine clock.
func e14Serve(reg *failpoint.Registry) (addr string, e *engine.Engine, srv *server.Server, stop func() error, err error) {
	cfg := engine.Defaults()
	cfg.EnableGeneralLog = true
	e, err = engine.New(cfg)
	if err != nil {
		return "", nil, nil, nil, err
	}
	now := int64(1_700_000_000)
	e.Clock = func() int64 { now++; return now }
	srv = server.New(e)
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, nil, err
	}
	var ln net.Listener = raw
	if reg != nil {
		ln = netfault.WrapListener(raw, netfault.Config{Reg: reg, Label: "srv", Hold: time.Millisecond})
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return raw.Addr().String(), e, srv, func() error {
		_ = srv.Close()
		return <-done
	}, nil
}

// e14Run drives the workload through one faulted (or fault-free)
// server and collects the run's forensic artifacts: the state digest,
// the general log as statement -> arrival timestamps, and whether the
// secret SELECT reply sat in the dedup cache. The cache scan must
// happen while the session is alive, which is exactly the point: the
// replies are retained until the client says goodbye or a TTL fires.
func e14Run(reg *failpoint.Registry) (digest string, glog map[string][]int64, secret bool, err error) {
	addr, e, srv, stop, err := e14Serve(reg)
	if err != nil {
		return "", nil, false, err
	}
	defer stop() //nolint:errcheck // hard-stop after inspection

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rc, err := client.DialReliable(ctx, addr, client.RetryConfig{
		BackoffFloor: time.Millisecond,
		BackoffCap:   20 * time.Millisecond,
		MaxAttempts:  50,
	})
	if err != nil {
		return "", nil, false, err
	}
	for i, q := range e14Workload() {
		if _, err := rc.Execute(ctx, q); err != nil {
			_ = rc.Close()
			return "", nil, false, fmt.Errorf("stmt %d (%q): %w", i, q, err)
		}
	}

	// Image the dedup cache while the session is still attached.
	for _, reply := range srv.RetainedReplies() {
		if strings.Contains(string(reply), e14Secret) {
			secret = true
			break
		}
	}
	_ = rc.Close()

	digest, err = e.StateDigest()
	if err != nil {
		return "", nil, false, err
	}
	glog = make(map[string][]int64)
	for _, en := range e.GeneralLog().Entries() {
		glog[en.Statement] = append(glog[en.Statement], en.Timestamp)
	}
	return digest, glog, secret, nil
}

// e14Abandon opens a raw control session, executes one statement, and
// disconnects without !bye. Returns whether the server still retains
// the session afterwards — the orphan-retention channel.
func e14Abandon() (bool, error) {
	addr, _, srv, stop, err := e14Serve(nil)
	if err != nil {
		return false, err
	}
	defer stop() //nolint:errcheck

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return false, err
	}
	r := bufio.NewReader(conn)
	exchange := func(line string) (string, error) {
		if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
			return "", err
		}
		reply, err := r.ReadString('\n')
		return strings.TrimRight(reply, "\n"), err
	}
	if reply, err := exchange("!hello"); err != nil || !strings.HasPrefix(reply, "!session ") {
		_ = conn.Close()
		return false, fmt.Errorf("hello reply %q: %v", reply, err)
	}
	if reply, err := exchange("!q 1 CREATE TABLE orphan (id INT PRIMARY KEY)"); err != nil || !strings.HasPrefix(reply, "OK ") {
		_ = conn.Close()
		return false, fmt.Errorf("stamped statement reply %q: %v", reply, err)
	}
	_ = conn.Close() // vanish: no !bye

	// Give the handler a moment to notice the disconnect and detach;
	// the session must survive the detach (that is the retention bug
	// being measured — only the TTL reaps it).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if srv.ResumeSessionCount() > 0 {
			time.Sleep(10 * time.Millisecond) // let the detach land too
			return srv.ResumeSessionCount() > 0, nil
		}
		time.Sleep(time.Millisecond)
	}
	return false, nil
}
