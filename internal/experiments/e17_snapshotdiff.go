package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"snapdb/internal/crypto/prim"
	"snapdb/internal/engine"
	"snapdb/internal/vfs"
)

// E17Result is the multi-snapshot attack on encryption at rest: an
// analyst who never holds the key, only periodic images of the
// encrypted disk (a cloud provider's scheduled VM snapshots, a backup
// service, a co-tenant reading a SAN), diffs ciphertext pages across
// snapshots and joins the diff with file-size growth and snapshot
// timestamps. Under the industry-default deterministic (XTS-style)
// page encryption this re-derives past-query inference — which table
// grew in which interval, that a secret was overwritten and then put
// back, that an interval was idle — the paper's §5 claim made concrete
// on our own CryptFS. The fresh-IV ablation re-randomizes every page
// write: the page-diff channel dies, while the size/timing channel —
// a function of lengths, which any length-preserving encryption keeps
// — survives untouched.
type E17Result struct {
	Snapshots int // encrypted disk images taken
	GrowRows  int // rows inserted per growth interval
	Arms      []E17Arm
}

// E17Arm is one encryption mode's run over the identical workload and
// snapshot schedule.
type E17Arm struct {
	Arm string

	// Page-diff channel (ciphertext checkpoint pages across snapshots).
	CkptPages        int     // checkpoint pages in the final snapshot
	OverwriteChanged int     // pages changed in the secret-overwrite interval
	RevertSimilarity float64 // best equal-byte fraction, revert snapshot vs pre-overwrite
	RevertDetected   bool    // analyst concludes the overwritten page reverted
	IdleIdentical    bool    // idle-interval checkpoint is byte-identical
	// Size/timing channel (binlog growth per snapshot interval).
	OrdersDelta   int   // binlog byte growth in the orders-growth interval
	AuditDelta    int   // binlog byte growth in the audit-growth interval
	GrowthRanked  bool  // analyst correctly ranks which interval grew which table
	OverwriteTime int64 // snapshot clock at which the overwrite interval closed
	TmpResidue    bool  // any *.tmp plaintext residue visible at a snapshot
}

// Name implements Result.
func (*E17Result) Name() string { return "E17" }

// Render implements Result.
func (r *E17Result) Render() string {
	t := &table{header: []string{"mode", "ckpt pages", "overwrite Δpages", "revert similarity", "revert seen", "idle identical", "orders Δbinlog", "audit Δbinlog", "growth ranked", "tmp residue"}}
	for _, a := range r.Arms {
		t.add(a.Arm,
			fmt.Sprintf("%d", a.CkptPages),
			fmt.Sprintf("%d", a.OverwriteChanged),
			fmt.Sprintf("%.4f", a.RevertSimilarity),
			fmt.Sprintf("%v", a.RevertDetected),
			fmt.Sprintf("%v", a.IdleIdentical),
			fmt.Sprintf("%d", a.OrdersDelta),
			fmt.Sprintf("%d", a.AuditDelta),
			fmt.Sprintf("%v", a.GrowthRanked),
			fmt.Sprintf("%v", a.TmpResidue))
	}
	return fmt.Sprintf("E17 (§5): multi-snapshot diffing of encrypted disks (%d snapshots, %d rows per growth interval)\n",
		r.Snapshots, r.GrowRows) + t.String()
}

// e17Snap is one encrypted disk image: every file's raw (at-rest)
// bytes, plus the analyst-observable capture time.
type e17Snap struct {
	files map[string][]byte
	when  int64
}

func e17Capture(mem *vfs.MemFS, when int64) e17Snap {
	s := e17Snap{files: map[string][]byte{}, when: when}
	for _, name := range mem.Names() {
		if b, err := mem.ReadFile(name); err == nil {
			s.files[name] = append([]byte(nil), b...)
		}
	}
	return s
}

// e17Pages splits a file image into CryptPageSize pages (the last may
// be short).
func e17Pages(b []byte) [][]byte {
	var out [][]byte
	for off := 0; off < len(b); off += vfs.CryptPageSize {
		end := off + vfs.CryptPageSize
		if end > len(b) {
			end = len(b)
		}
		out = append(out, b[off:end])
	}
	return out
}

// e17EqualFrac returns the fraction of positions where a and b hold
// the same byte — the analyst's page-similarity metric. A positional
// cipher preserves plaintext similarity exactly; a fresh-IV rewrite
// drives it to the ~1/256 noise floor of independent random bytes.
func e17EqualFrac(a, b []byte) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	eq := 0
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			eq++
		}
	}
	return float64(eq) / float64(n)
}

// e17Arm runs the workload and snapshot schedule under one mode and
// plays the analyst against the captured ciphertext images.
func e17Arm(det bool, growRows int) (E17Arm, error) {
	name := "deterministic"
	if !det {
		name = "fresh-IV"
	}
	arm := E17Arm{Arm: name}

	mem := vfs.NewMemFS()
	cfg := engine.Defaults()
	cfg.FS = mem
	cfg.EncryptAtRest = true
	cfg.EncryptionKey = prim.TestKey("e17")
	cfg.DeterministicPages = det
	// Catalog-only checkpoints: the MVCC version store would add
	// churn-dependent bytes to the checkpoint meta, which is residue
	// E16 already measures — here it would only blur the page diff.
	cfg.DisableMVCC = true
	e, err := engine.New(cfg)
	if err != nil {
		return arm, err
	}
	defer e.Close()
	now := int64(1_700_000_000)
	e.Clock = func() int64 { return now }

	s := e.Connect("app")
	defer s.Close()
	exec := func(q string) error {
		now++
		_, err := s.Execute(q)
		return err
	}
	snap := func() (e17Snap, error) {
		if err := e.Checkpoint(); err != nil {
			return e17Snap{}, err
		}
		return e17Capture(mem, now), nil
	}

	// S0: seed. The vault holds the secret the application will later
	// overwrite and restore; two content tables exist for the growth
	// intervals, with per-row statement texts of different lengths —
	// the fingerprint the size channel reads.
	for _, q := range []string{
		"CREATE TABLE vault (id INT PRIMARY KEY, secret TEXT)",
		"CREATE TABLE orders (id INT PRIMARY KEY, item TEXT)",
		"CREATE TABLE audit_log_entries (id INT PRIMARY KEY, detail TEXT)",
		"INSERT INTO vault (id, secret) VALUES (1, 'the-original-secret-value')",
		"INSERT INTO vault (id, secret) VALUES (2, 'some-other-vault-entry-xx')",
	} {
		if err := exec(q); err != nil {
			return arm, err
		}
	}
	snaps := make([]e17Snap, 0, 6)
	s0, err := snap()
	if err != nil {
		return arm, err
	}
	snaps = append(snaps, s0)

	// S1: the orders table grows. S2: the audit table grows. Fixed-width
	// ids and values keep every per-row binlog event the same size
	// within an interval.
	for i := 0; i < growRows; i++ {
		if err := exec(fmt.Sprintf("INSERT INTO orders (id, item) VALUES (%04d, 'item-%04d')", 1000+i, i)); err != nil {
			return arm, err
		}
	}
	s1, err := snap()
	if err != nil {
		return arm, err
	}
	snaps = append(snaps, s1)
	for i := 0; i < growRows; i++ {
		if err := exec(fmt.Sprintf("INSERT INTO audit_log_entries (id, detail) VALUES (%04d, 'a-much-longer-audit-trail-detail-record-%04d')", 1000+i, i)); err != nil {
			return arm, err
		}
	}
	s2, err := snap()
	if err != nil {
		return arm, err
	}
	snaps = append(snaps, s2)

	// S3: the secret is overwritten. S4: it is put back (an operator
	// "undoing" a mistake — the revert the page diff exposes). S5: idle.
	if err := exec("UPDATE vault SET secret = 'overwritten-by-app-XXXXX' WHERE id = 1"); err != nil {
		return arm, err
	}
	s3, err := snap()
	if err != nil {
		return arm, err
	}
	snaps = append(snaps, s3)
	arm.OverwriteTime = s3.when
	if err := exec("UPDATE vault SET secret = 'the-original-secret-value' WHERE id = 1"); err != nil {
		return arm, err
	}
	s4, err := snap()
	if err != nil {
		return arm, err
	}
	snaps = append(snaps, s4)
	now += 1000 // an idle stretch of wall clock
	s5, err := snap()
	if err != nil {
		return arm, err
	}
	snaps = append(snaps, s5)

	// ---- The analyst. Everything below reads only snaps (ciphertext
	// images + capture times); the key and the engine are gone.

	for _, sn := range snaps {
		for fname := range sn.files {
			if strings.HasSuffix(fname, ".tmp") {
				arm.TmpResidue = true
			}
		}
	}

	ckpt := func(i int) [][]byte { return e17Pages(snaps[i].files[engine.FileCheckpoint]) }
	p2, p3, p4, p5 := ckpt(2), ckpt(3), ckpt(4), ckpt(5)
	arm.CkptPages = len(p5)

	// Page-diff channel 1: which pages changed when the secret was
	// overwritten (interval S2->S3)?
	changed := map[int]bool{}
	for i := range p3 {
		if i >= len(p2) || !bytes.Equal(p2[i], p3[i]) {
			changed[i] = true
			arm.OverwriteChanged++
		}
	}
	// Page-diff channel 2: did any of those pages revert (S4 back to
	// its S2 bytes)? Positional encryption preserves similarity, so the
	// vault page — identical plaintext again except its 8-byte page
	// LSN — diffs in a handful of bytes; under fresh IVs the same page
	// sits at the random-noise floor.
	for i := range changed {
		if i < len(p4) && i < len(p2) {
			if f := e17EqualFrac(p4[i], p2[i]); f > arm.RevertSimilarity {
				arm.RevertSimilarity = f
			}
		}
	}
	arm.RevertDetected = arm.RevertSimilarity > 0.95
	// Page-diff channel 3: the idle interval. Deterministic encryption
	// re-encrypts the unchanged checkpoint to identical bytes — the
	// analyst learns nothing happened, which is itself information.
	arm.IdleIdentical = len(p4) == len(p5) && func() bool {
		for i := range p4 {
			if !bytes.Equal(p4[i], p5[i]) {
				return false
			}
		}
		return true
	}()

	// Size/timing channel: binlog growth per snapshot interval. The
	// binlog is append-only ciphertext, but its length is plaintext
	// metadata. Joined with the snapshot timestamps, the analyst knows
	// WHEN each batch landed; the per-row byte cost separates WHICH
	// table grew (statement templates differ in length — auxiliary
	// knowledge, as in any inference attack).
	blen := func(i int) int { return len(snaps[i].files[engine.FileBinlog]) }
	arm.OrdersDelta = blen(1) - blen(0)
	arm.AuditDelta = blen(2) - blen(1)
	arm.GrowthRanked = arm.AuditDelta > arm.OrdersDelta && arm.OrdersDelta > 0
	return arm, nil
}

// E17SnapshotDiff runs the multi-snapshot attack under both encryption
// modes and checks the paper's claims: deterministic encryption leaks
// page-level history (growth, overwrite, revert, idleness) to a
// snapshot-only adversary; fresh IVs close the page-diff channel but
// leave the size/timing channel fully intact.
func E17SnapshotDiff(quick bool) (*E17Result, error) {
	growRows := 48
	if quick {
		growRows = 24
	}
	res := &E17Result{Snapshots: 6, GrowRows: growRows}
	for _, det := range []bool{true, false} {
		arm, err := e17Arm(det, growRows)
		if err != nil {
			return nil, fmt.Errorf("E17: %s: %w", arm.Arm, err)
		}
		res.Arms = append(res.Arms, arm)
	}
	det, fresh := res.Arms[0], res.Arms[1]

	// Deterministic mode: every page-diff inference lands.
	if det.OverwriteChanged == 0 || det.OverwriteChanged*2 > det.CkptPages {
		return nil, fmt.Errorf("E17: overwrite changed %d of %d pages — page diff not localized", det.OverwriteChanged, det.CkptPages)
	}
	if !det.RevertDetected {
		return nil, fmt.Errorf("E17: revert not detected under deterministic encryption (similarity %.4f)", det.RevertSimilarity)
	}
	if !det.IdleIdentical {
		return nil, fmt.Errorf("E17: idle interval not byte-identical under deterministic encryption")
	}
	// Fresh-IV mode: the page-diff channel is dead...
	if fresh.RevertDetected {
		return nil, fmt.Errorf("E17: revert still visible under fresh IVs (similarity %.4f)", fresh.RevertSimilarity)
	}
	if fresh.RevertSimilarity > 0.1 {
		return nil, fmt.Errorf("E17: fresh-IV page similarity %.4f above noise floor", fresh.RevertSimilarity)
	}
	if fresh.IdleIdentical {
		return nil, fmt.Errorf("E17: idle interval identical under fresh IVs — pages not re-randomized")
	}
	// ...but the size/timing channel survives, byte-for-byte equal to
	// the deterministic arm: length preservation is mode-independent.
	if !det.GrowthRanked || !fresh.GrowthRanked {
		return nil, fmt.Errorf("E17: growth inference failed (det %v fresh %v)", det.GrowthRanked, fresh.GrowthRanked)
	}
	if det.OrdersDelta != fresh.OrdersDelta || det.AuditDelta != fresh.AuditDelta {
		return nil, fmt.Errorf("E17: size channel differs across modes (%d/%d vs %d/%d)",
			det.OrdersDelta, det.AuditDelta, fresh.OrdersDelta, fresh.AuditDelta)
	}
	if det.TmpResidue || fresh.TmpResidue {
		return nil, fmt.Errorf("E17: *.tmp residue visible in a snapshot")
	}
	return res, nil
}
