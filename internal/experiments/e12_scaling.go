package experiments

import (
	"fmt"
	"net"
	"time"

	"snapdb/internal/engine"
	"snapdb/internal/server"
	"snapdb/internal/workload"
)

// E12Row is one concurrency level of the scaling table. Examined and
// Returned aggregate the executor's per-statement scan counters (the
// same figures events_stages_history records per operator), tying the
// throughput numbers to the rows each level actually touched.
type E12Row struct {
	Goroutines int
	PerSecond  float64
	Speedup    float64 // vs the 1-goroutine row
	WALFlushes uint64  // group-commit flushes absorbed at this level
	Writes     int
	Examined   int64
	Returned   int64
}

// E12ClientRow is one client-protocol configuration: the same workload
// driven through the TCP server, per-statement vs pipelined batches.
type E12ClientRow struct {
	Mode      string // "per-stmt" or "batched"
	BatchSize int    // statements per pipelined batch (1 = per-statement)
	PerSecond float64
	Speedup   float64 // vs the per-stmt client row
}

// E12Result measures how statement throughput scales with concurrent
// sessions under the striped lock manager and group commit. Unlike
// E1–E11 this is a systems experiment, not a leakage experiment: it
// justifies that the concurrency machinery the forensic experiments
// run on actually buys parallelism, and its ordering invariants are
// covered by E3 and the engine's concurrency tests.
type E12Result struct {
	Rows       []E12Row
	Client     []E12ClientRow // TCP-client rows at the top concurrency level
	ClientGs   int            // client connections used for the Client rows
	IOWait     time.Duration
	Tables     int
	Statements int
}

// Name implements Result.
func (*E12Result) Name() string { return "E12" }

// Render implements Result.
func (r *E12Result) Render() string {
	t := &table{header: []string{"goroutines", "stmts/sec", "speedup", "wal flushes", "writes", "rows examined", "rows returned"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%d", row.Goroutines),
			fmt.Sprintf("%.0f", row.PerSecond),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%d", row.WALFlushes),
			fmt.Sprintf("%d", row.Writes),
			fmt.Sprintf("%d", row.Examined),
			fmt.Sprintf("%d", row.Returned),
		)
	}
	out := fmt.Sprintf(
		"E12: statement throughput vs session concurrency\n"+
			"(read-heavy mix over %d tables, %d statements/level, %v simulated I/O per statement)\n%s",
		r.Tables, r.Statements, r.IOWait, t)
	if len(r.Client) > 0 {
		ct := &table{header: []string{"client mode", "batch", "stmts/sec", "speedup"}}
		for _, row := range r.Client {
			ct.add(
				row.Mode,
				fmt.Sprintf("%d", row.BatchSize),
				fmt.Sprintf("%.0f", row.PerSecond),
				fmt.Sprintf("%.2fx", row.Speedup),
			)
		}
		out += fmt.Sprintf(
			"\nsame statement mix through the TCP server (%d client connections,\nno simulated I/O: protocol overhead only):\n%s",
			r.ClientGs, ct)
	}
	return out
}

// E12Scaling runs the concurrent workload driver at increasing session
// counts against identically-prepared engines. Per-statement simulated
// I/O wait (engine.Config.SimulatedIOWait) models the device latency a
// durable DBMS hides behind concurrency; shared-locked readers overlap
// those waits, so throughput scales with sessions even on one core.
func E12Scaling(quick bool) (*E12Result, error) {
	cfg := workload.DriverConfig{
		Tables:       4,
		RowsPerTable: 100,
		Statements:   800,
		WriteEvery:   10,
		Seed:         42,
	}
	ioWait := 200 * time.Microsecond
	if quick {
		cfg.Statements = 200
		cfg.RowsPerTable = 40
	}
	out := &E12Result{IOWait: ioWait, Tables: cfg.Tables, Statements: cfg.Statements}
	var base float64
	for _, g := range []int{1, 4, 16} {
		ecfg := engine.Defaults()
		ecfg.SimulatedIOWait = ioWait
		e, err := engine.New(ecfg)
		if err != nil {
			return nil, err
		}
		if err := workload.SetupTables(e, cfg.Tables, cfg.RowsPerTable); err != nil {
			return nil, err
		}
		run := cfg
		run.Goroutines = g
		res, err := workload.RunDriver(e, run)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = res.PerSecond
		}
		_, flushes := e.WAL().GroupCommitStats()
		out.Rows = append(out.Rows, E12Row{
			Goroutines: g,
			PerSecond:  res.PerSecond,
			Speedup:    res.PerSecond / base,
			WALFlushes: flushes,
			Writes:     res.Writes,
			Examined:   res.RowsExamined,
			Returned:   res.RowsReturned,
		})
	}

	// Same workload once more, through the TCP server: per-statement
	// Execute pays one network round trip per statement, ExecuteBatch
	// pipelines them. The gap is the protocol overhead the batched mode
	// removes — so these rows run WITHOUT the simulated device wait,
	// which is a floor both modes share and would drown exactly the
	// per-statement cost being compared. More statements per connection
	// than the scaling rows, so each connection issues many full
	// batches.
	out.ClientGs = 16
	clientStatements := cfg.Statements * 8
	var clientBase float64
	for _, mode := range []struct {
		name  string
		batch int
	}{
		{"per-stmt", 1},
		{"batched", 32},
	} {
		ecfg := engine.Defaults()
		e, err := engine.New(ecfg)
		if err != nil {
			return nil, err
		}
		if err := workload.SetupTables(e, cfg.Tables, cfg.RowsPerTable); err != nil {
			return nil, err
		}
		srv := server.New(e)
		ready := make(chan net.Addr, 1)
		done := make(chan error, 1)
		go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
		addr := (<-ready).String()
		run := workload.RemoteDriverConfig{DriverConfig: cfg, Addr: addr, BatchSize: mode.batch}
		run.Goroutines = out.ClientGs
		run.Statements = clientStatements
		res, err := workload.RunDriverRemote(run)
		cerr := srv.Close()
		if err != nil {
			return nil, err
		}
		if cerr != nil {
			return nil, cerr
		}
		if serr := <-done; serr != nil {
			return nil, serr
		}
		if clientBase == 0 {
			clientBase = res.PerSecond
		}
		out.Client = append(out.Client, E12ClientRow{
			Mode:      mode.name,
			BatchSize: mode.batch,
			PerSecond: res.PerSecond,
			Speedup:   res.PerSecond / clientBase,
		})
	}
	return out, nil
}
