package experiments

import (
	"fmt"
	"time"

	"snapdb/internal/engine"
	"snapdb/internal/workload"
)

// E12Row is one concurrency level of the scaling table.
type E12Row struct {
	Goroutines int
	PerSecond  float64
	Speedup    float64 // vs the 1-goroutine row
	WALFlushes uint64  // group-commit flushes absorbed at this level
	Writes     int
}

// E12Result measures how statement throughput scales with concurrent
// sessions under the striped lock manager and group commit. Unlike
// E1–E11 this is a systems experiment, not a leakage experiment: it
// justifies that the concurrency machinery the forensic experiments
// run on actually buys parallelism, and its ordering invariants are
// covered by E3 and the engine's concurrency tests.
type E12Result struct {
	Rows       []E12Row
	IOWait     time.Duration
	Tables     int
	Statements int
}

// Name implements Result.
func (*E12Result) Name() string { return "E12" }

// Render implements Result.
func (r *E12Result) Render() string {
	t := &table{header: []string{"goroutines", "stmts/sec", "speedup", "wal flushes", "writes"}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%d", row.Goroutines),
			fmt.Sprintf("%.0f", row.PerSecond),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%d", row.WALFlushes),
			fmt.Sprintf("%d", row.Writes),
		)
	}
	return fmt.Sprintf(
		"E12: statement throughput vs session concurrency\n"+
			"(read-heavy mix over %d tables, %d statements/level, %v simulated I/O per statement)\n%s",
		r.Tables, r.Statements, r.IOWait, t)
}

// E12Scaling runs the concurrent workload driver at increasing session
// counts against identically-prepared engines. Per-statement simulated
// I/O wait (engine.Config.SimulatedIOWait) models the device latency a
// durable DBMS hides behind concurrency; shared-locked readers overlap
// those waits, so throughput scales with sessions even on one core.
func E12Scaling(quick bool) (*E12Result, error) {
	cfg := workload.DriverConfig{
		Tables:       4,
		RowsPerTable: 100,
		Statements:   800,
		WriteEvery:   10,
		Seed:         42,
	}
	ioWait := 200 * time.Microsecond
	if quick {
		cfg.Statements = 200
		cfg.RowsPerTable = 40
	}
	out := &E12Result{IOWait: ioWait, Tables: cfg.Tables, Statements: cfg.Statements}
	var base float64
	for _, g := range []int{1, 4, 16} {
		ecfg := engine.Defaults()
		ecfg.SimulatedIOWait = ioWait
		e, err := engine.New(ecfg)
		if err != nil {
			return nil, err
		}
		if err := workload.SetupTables(e, cfg.Tables, cfg.RowsPerTable); err != nil {
			return nil, err
		}
		run := cfg
		run.Goroutines = g
		res, err := workload.RunDriver(e, run)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = res.PerSecond
		}
		_, flushes := e.WAL().GroupCommitStats()
		out.Rows = append(out.Rows, E12Row{
			Goroutines: g,
			PerSecond:  res.PerSecond,
			Speedup:    res.PerSecond / base,
			WALFlushes: flushes,
			Writes:     res.Writes,
		})
	}
	return out, nil
}
