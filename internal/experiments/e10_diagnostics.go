package experiments

import (
	"fmt"
	"strings"

	"snapdb/internal/engine"
	"snapdb/internal/snapshot"
)

// E10Result reproduces §4: a SQL-injection attacker reads the
// diagnostic tables and obtains other users' current statements
// (processlist), each thread's recent statements (history, default 10
// per thread), and the per-type histogram of every query since restart
// (digest table).
type E10Result struct {
	Quick              bool
	Threads            int
	QueriesPerThread   int
	HistoryPerThread   int
	CurrentVisible     int // victims' last statements visible in processlist
	HistoryRecovered   int // victim statements in events_statements_history
	HistoryExpected    int // threads × min(queries, historySize)
	DigestTypes        int
	DigestTotalQueries uint64 // sum of digest counts == total statements executed
}

// Name implements Result.
func (*E10Result) Name() string { return "E10" }

// Render implements Result.
func (r *E10Result) Render() string {
	t := &table{header: []string{"diagnostic table", "attacker obtains"}}
	t.add("processlist", fmt.Sprintf("last statement of %d/%d victim threads", r.CurrentVisible, r.Threads))
	t.add("events_statements_history", fmt.Sprintf("%d/%d recent victim statements (%d per thread)", r.HistoryRecovered, r.HistoryExpected, r.HistoryPerThread))
	t.add("events_statements_summary_by_digest", fmt.Sprintf("%d query types, %d total queries histogrammed", r.DigestTypes, r.DigestTotalQueries))
	return "E10 (§4): diagnostic tables through a single injected SELECT\n" + t.String()
}

// E10Diagnostics runs several victim sessions, then reads everything
// back through injected SELECTs on a separate attacker session.
func E10Diagnostics(quick bool) (*E10Result, error) {
	threads, perThread := 5, 40
	if quick {
		threads, perThread = 3, 15
	}
	e, err := engine.New(engine.Defaults())
	if err != nil {
		return nil, err
	}
	setup := e.Connect("dba")
	if _, err := setup.Execute("CREATE TABLE salaries (id INT PRIMARY KEY, name TEXT, amount INT)"); err != nil {
		return nil, err
	}
	for i := 0; i < 50; i++ {
		q := fmt.Sprintf("INSERT INTO salaries (id, name, amount) VALUES (%d, 'emp%02d', %d)", i, i, 50000+i*1000)
		if _, err := setup.Execute(q); err != nil {
			return nil, err
		}
	}
	for th := 0; th < threads; th++ {
		v := e.Connect(fmt.Sprintf("victim%d", th))
		for i := 0; i < perThread; i++ {
			q := fmt.Sprintf("SELECT name FROM salaries WHERE amount >= %d AND amount <= %d", 50000+i*500, 60000+i*500)
			if _, err := v.Execute(q); err != nil {
				return nil, err
			}
		}
	}

	// --- The attack: injected SELECTs on the diagnostic tables. ---
	attacker := e.Connect("attacker")
	proc, err := attacker.Execute("SELECT * FROM information_schema.processlist")
	if err != nil {
		return nil, err
	}
	res := &E10Result{
		Quick:            quick,
		Threads:          threads,
		QueriesPerThread: perThread,
		HistoryPerThread: e.PerfSchema().HistorySize(),
	}
	for _, row := range proc.Rows {
		if strings.HasPrefix(row[1].Str, "victim") && strings.Contains(row[4].Str, "SELECT name FROM salaries") {
			res.CurrentVisible++
		}
	}
	hist, err := attacker.Execute("SELECT * FROM performance_schema.events_statements_history")
	if err != nil {
		return nil, err
	}
	for _, row := range hist.Rows {
		if strings.Contains(row[2].Str, "SELECT name FROM salaries") {
			res.HistoryRecovered++
		}
	}
	expectPer := perThread
	if expectPer > res.HistoryPerThread {
		expectPer = res.HistoryPerThread
	}
	res.HistoryExpected = threads * expectPer

	digest, err := attacker.Execute("SELECT * FROM performance_schema.events_statements_summary_by_digest")
	if err != nil {
		return nil, err
	}
	res.DigestTypes = len(digest.Rows)
	for _, row := range digest.Rows {
		res.DigestTotalQueries += uint64(row[2].Int)
	}
	// The snapshot package must agree with the injected view (the
	// attacker's own diagnostic queries add rows of their own, so the
	// snapshot can only be a superset).
	snap := snapshot.Capture(e, snapshot.SQLInjection)
	if len(snap.Diagnostics.DigestSummary) < res.DigestTypes {
		return nil, fmt.Errorf("E10: snapshot digest rows %d < injected view %d",
			len(snap.Diagnostics.DigestSummary), res.DigestTypes)
	}
	if res.HistoryRecovered != res.HistoryExpected {
		return nil, fmt.Errorf("E10: history recovered %d, expected %d", res.HistoryRecovered, res.HistoryExpected)
	}
	return res, nil
}
