package experiments

import (
	"fmt"
	"strings"
	"sync/atomic"

	"snapdb/internal/engine"
	"snapdb/internal/vfs"
	"snapdb/internal/workload"
)

// E16Result extends §4's "deleted data persists" channel to the MVCC
// version store: every UPDATE files the overwritten row image and
// every DELETE files the full deleted row into version chains so
// snapshot readers can see the past — and so can an analyst. The
// chains survive checkpointing (which persists them alongside the
// tablespace) and therefore crash recovery, even though the checkpoint
// truncates the WAL files an E13-style analyst would have parsed: the
// version store is a second, longer-lived copy of the history the
// application believes is gone. The purge ablation quantifies the
// knob: retention forever (DisablePurge), the default inline cadence,
// and an aggressive full sweep before the crash.
type E16Result struct {
	Secrets int // secret rows planted in the vault table
	Deleted int // vault rows the application deleted
	Churn   int // mixed-mode driver statements run for background churn
	Arms    []E16Arm
}

// E16Arm is one purge-policy arm of the ablation.
type E16Arm struct {
	Arm              string
	PreCrashVersions int   // retained row versions before the crash
	SurvivedVersions int   // row versions recoverable after crash+recovery
	SecretsSurvived  int   // surviving versions carrying a secret literal
	DeletedSurvived  int   // deleted vault rows fully recoverable post-recovery
	PurgeRuns        int64 // purge sweeps the engine ran before the crash
	PurgedVersions   int64 // versions those sweeps reclaimed
	WALHadSecret     bool  // secret present in redo/undo bytes before checkpoint
	WALHasSecret     bool  // secret present in redo/undo bytes after checkpoint (must be false)
}

// Name implements Result.
func (*E16Result) Name() string { return "E16" }

// Render implements Result.
func (r *E16Result) Render() string {
	t := &table{header: []string{"purge policy", "versions pre-crash", "survive recovery", "secrets", "deleted rows", "purge runs/reclaimed", "WAL secret pre/post ckpt"}}
	for _, a := range r.Arms {
		t.add(a.Arm,
			fmt.Sprintf("%d", a.PreCrashVersions),
			fmt.Sprintf("%d", a.SurvivedVersions),
			fmt.Sprintf("%d", a.SecretsSurvived),
			fmt.Sprintf("%d", a.DeletedSurvived),
			fmt.Sprintf("%d / %d", a.PurgeRuns, a.PurgedVersions),
			fmt.Sprintf("%v / %v", a.WALHadSecret, a.WALHasSecret))
	}
	return fmt.Sprintf("E16 (§4 extension): MVCC version chains outlive the WAL (%d secrets, %d deletes, %d churn statements)\n",
		r.Secrets, r.Deleted, r.Churn) + t.String()
}

// e16Secret marks row values that only ever exist in rows the
// application overwrites or deletes before the crash.
const e16Secret = "cc-4111-0000-7393"

// e16Arm runs one purge-policy arm end to end: plant secrets, churn
// the bench tables through the mixed-transaction driver, redact and
// delete the secrets, apply the arm's purge policy, checkpoint, crash,
// recover, and read the version residue back out of the recovered
// engine.
func e16Arm(name string, churn, secrets int, cfg engine.Config, aggressive bool) (E16Arm, error) {
	arm := E16Arm{Arm: name}
	mem := vfs.NewMemFS()
	cfg.FS = mem
	cfg.EnableQueryCache = false
	e, err := engine.New(cfg)
	if err != nil {
		return arm, err
	}
	defer e.Close()
	// Atomic: the workload driver calls the clock from its goroutines.
	var now atomic.Int64
	now.Store(1_700_000_000)
	e.Clock = func() int64 { return now.Add(1) }

	s := e.Connect("e16")
	defer s.Close()
	if _, err := s.Execute("CREATE TABLE vault (id INT PRIMARY KEY, card TEXT)"); err != nil {
		return arm, err
	}
	for i := 0; i < secrets; i++ {
		if _, err := s.Execute(fmt.Sprintf(
			"INSERT INTO vault (id, card) VALUES (%d, '%s-%04d')", i, e16Secret, i)); err != nil {
			return arm, err
		}
	}

	// Background churn: concurrent readers with explicit-transaction
	// writers (commits and rollbacks), the shape the MVCC benchmark
	// drives — version chains grow on the bench tables while the
	// inline purge cadence (or its absence) works against them.
	if err := workload.SetupTables(e, 2, 64); err != nil {
		return arm, err
	}
	if _, err := workload.RunDriver(e, workload.DriverConfig{
		Goroutines:       4,
		Tables:           2,
		RowsPerTable:     64,
		Statements:       churn,
		Seed:             16,
		WriterSessions:   2,
		TxnSize:          4,
		TxnRollbackEvery: 3,
	}); err != nil {
		return arm, err
	}

	// The application "destroys" the secrets: half are overwritten
	// (the pre-image goes into the chain), half deleted outright (the
	// full row goes into the chain as a tombstone version).
	for i := 0; i < secrets/2; i++ {
		if _, err := s.Execute(fmt.Sprintf(
			"UPDATE vault SET card = 'redacted-%04d' WHERE id = %d", i, i)); err != nil {
			return arm, err
		}
	}
	for i := secrets / 2; i < secrets; i++ {
		if _, err := s.Execute(fmt.Sprintf("DELETE FROM vault WHERE id = %d", i)); err != nil {
			return arm, err
		}
	}

	if aggressive {
		// Full sweep with no view pinned: everything reclaimable goes.
		e.PurgeVersions(0)
	}
	// Counter read first: the SELECT is itself a statement and may
	// cross an inline-purge boundary; the residue count must be taken
	// after the last statement so it matches what the checkpoint
	// persists.
	arm.PurgeRuns, arm.PurgedVersions, err = e16PurgeCounters(s)
	if err != nil {
		return arm, err
	}
	arm.PreCrashVersions = len(e.VersionResidue())

	// The E13 analyst's surface: the secret pre-images sit in the WAL
	// (the deleted rows' undo records) until the checkpoint truncates
	// both logs — after which the version chains are the only copy.
	arm.WALHadSecret = e16WALSecret(mem)
	if err := e.Checkpoint(); err != nil {
		return arm, err
	}
	arm.WALHasSecret = e16WALSecret(mem)

	mem.Crash()
	r, _, err := engine.Recover(mem, cfg)
	if err != nil {
		return arm, fmt.Errorf("recovery: %w", err)
	}
	defer r.Close()
	for _, v := range r.VersionResidue() {
		arm.SurvivedVersions++
		hit := false
		for _, val := range v.Row {
			if strings.Contains(val.SQL(), e16Secret) {
				hit = true
			}
		}
		if hit {
			arm.SecretsSurvived++
			if v.Deleted {
				arm.DeletedSurvived++
			}
		}
	}
	return arm, nil
}

// e16WALSecret reports whether the secret literal is readable anywhere
// in the on-disk redo or undo log images.
func e16WALSecret(fs vfs.FS) bool {
	for _, name := range []string{engine.FileRedo, engine.FileUndo} {
		if b, err := fs.ReadFile(name); err == nil && strings.Contains(string(b), e16Secret) {
			return true
		}
	}
	return false
}

// e16PurgeCounters reads the purge statistics off the mvcc_status
// system view, the same surface an operator would watch.
func e16PurgeCounters(s *engine.Session) (runs, purged int64, err error) {
	res, err := s.Execute("SELECT * FROM information_schema.mvcc_status")
	if err != nil || len(res.Rows) == 0 {
		return 0, 0, err
	}
	for i, col := range res.Columns {
		switch col {
		case "purge_runs":
			runs = res.Rows[0][i].Int
		case "purged_versions":
			purged = res.Rows[0][i].Int
		}
	}
	return runs, purged, nil
}

// E16VersionResidue runs the purge ablation: identical workloads under
// three purge policies, each ending in a checkpoint (which truncates
// the WAL — the E13 residue channel is closed at that point) and a
// crash. What recovery resurrects from the persisted version chains is
// the experiment's finding: with purge disabled, the overwritten and
// deleted secrets come back wholesale; the default inline cadence
// leaves whatever the last sweep had not reached; an aggressive
// pre-crash sweep clears the channel entirely.
func E16VersionResidue(quick bool) (*E16Result, error) {
	churn, secrets := 960, 16
	if quick {
		churn, secrets = 240, 8
	}
	res := &E16Result{Secrets: secrets, Deleted: secrets - secrets/2, Churn: churn}

	type policy struct {
		name       string
		cfg        func() engine.Config
		aggressive bool
	}
	policies := []policy{
		{"retain (purge off)", func() engine.Config {
			cfg := engine.Defaults()
			cfg.DisablePurge = true
			return cfg
		}, false},
		{"inline (default cadence)", func() engine.Config {
			cfg := engine.Defaults()
			cfg.PurgeEvery = 90
			return cfg
		}, false},
		{"aggressive (full sweep)", func() engine.Config {
			cfg := engine.Defaults()
			cfg.PurgeEvery = 90
			return cfg
		}, true},
	}
	for _, p := range policies {
		arm, err := e16Arm(p.name, churn, secrets, p.cfg(), p.aggressive)
		if err != nil {
			return nil, fmt.Errorf("E16: %s: %w", p.name, err)
		}
		res.Arms = append(res.Arms, arm)
	}

	retain, inline, aggr := res.Arms[0], res.Arms[1], res.Arms[2]
	if retain.SecretsSurvived == 0 {
		return nil, fmt.Errorf("E16: no secret survived recovery with purge disabled — residue channel not reproduced")
	}
	if retain.DeletedSurvived == 0 {
		return nil, fmt.Errorf("E16: no deleted row recoverable with purge disabled")
	}
	if retain.WALHasSecret {
		return nil, fmt.Errorf("E16: checkpoint left the secret in the WAL — the contrast with E13 is void")
	}
	if !retain.WALHadSecret {
		return nil, fmt.Errorf("E16: secret never reached the WAL — workload broken")
	}
	if aggr.SecretsSurvived != 0 {
		return nil, fmt.Errorf("E16: %d secrets survived the aggressive sweep", aggr.SecretsSurvived)
	}
	if inline.PurgeRuns == 0 {
		return nil, fmt.Errorf("E16: inline purge never ran")
	}
	if retain.SurvivedVersions < inline.SurvivedVersions || inline.SurvivedVersions < aggr.SurvivedVersions {
		return nil, fmt.Errorf("E16: residue not monotone in purge aggressiveness: %d / %d / %d",
			retain.SurvivedVersions, inline.SurvivedVersions, aggr.SurvivedVersions)
	}
	return res, nil
}
