package experiments

import (
	"fmt"
	"strings"

	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
	"snapdb/internal/wal"
)

// E2Result reproduces §3's retention estimate: "with 1 write modifying
// a 20-byte field per second, the undo and redo logs of default size
// (50 Mb) store 16 days' worth" of history.
type E2Result struct {
	Quick          bool
	WritesPerSec   int
	FieldBytes     int
	CapacityBytes  int
	UpdateRedoDays float64 // update stream: retention of redo log
	UpdateUndoDays float64
	InsertRedoDays float64 // insert stream: full rows in redo, keys in undo
	InsertUndoDays float64
	PaperDays      float64
}

// Name implements Result.
func (*E2Result) Name() string { return "E2" }

// Render implements Result.
func (r *E2Result) Render() string {
	t := &table{header: []string{"workload", "log", "days retained", "paper"}}
	t.add("1 update/s of 20-byte field", "redo", fmt.Sprintf("%.1f", r.UpdateRedoDays), fmt.Sprintf("%.0f", r.PaperDays))
	t.add("1 update/s of 20-byte field", "undo", fmt.Sprintf("%.1f", r.UpdateUndoDays), fmt.Sprintf("%.0f", r.PaperDays))
	t.add("1 insert/s of 20-byte row", "redo", fmt.Sprintf("%.1f", r.InsertRedoDays), "-")
	t.add("1 insert/s of 20-byte row", "undo", fmt.Sprintf("%.1f", r.InsertUndoDays), "-")
	return fmt.Sprintf("E2 (§3): write history retained by %d MB circular logs\n", r.CapacityBytes>>20) + t.String()
}

// E2LogRetention replays the paper's workload against real circular
// logs and measures how many seconds of history stay reconstructable.
// Quick mode shrinks the log so the simulation stays fast while the
// retained-days figure is scaled back to the 50 MB default (retention
// is linear in capacity, which the full run verifies).
func E2LogRetention(quick bool) (*E2Result, error) {
	capacity := wal.DefaultCapacity
	scale := 1.0
	if quick {
		capacity = 2 << 20
		scale = float64(wal.DefaultCapacity) / float64(capacity)
	}
	res := &E2Result{
		Quick:         quick,
		WritesPerSec:  1,
		FieldBytes:    20,
		CapacityBytes: wal.DefaultCapacity,
		PaperDays:     16,
	}

	// Workload A: one UPDATE per second modifying a 20-byte field.
	m, err := wal.NewManager(capacity, capacity)
	if err != nil {
		return nil, err
	}
	field := strings.Repeat("x", 20)
	key := storage.Record{sqlparse.IntValue(1)}
	oldVal := storage.Record{sqlparse.StrValue(field)}
	newVal := storage.Record{sqlparse.StrValue(field)}
	// Append until both logs have wrapped, then a little more to reach
	// steady state.
	for m.Redo.Evicted() < 1000 || m.Undo.Evicted() < 1000 {
		m.LogUpdate(1, key, 1, oldVal, newVal)
	}
	// At 1 write/s, retained seconds == retained records.
	const daySecs = 86400.0
	res.UpdateRedoDays = float64(m.Redo.Len()) * scale / daySecs
	res.UpdateUndoDays = float64(m.Undo.Len()) * scale / daySecs

	// Workload B: one INSERT per second of a row with a 20-byte field.
	m2, err := wal.NewManager(capacity, capacity)
	if err != nil {
		return nil, err
	}
	rowID := int64(0)
	for m2.Redo.Evicted() < 1000 || m2.Undo.Evicted() < 1000 {
		rowID++
		m2.LogInsert(1, storage.Record{sqlparse.IntValue(rowID), sqlparse.StrValue(field)})
	}
	res.InsertRedoDays = float64(m2.Redo.Len()) * scale / daySecs
	res.InsertUndoDays = float64(m2.Undo.Len()) * scale / daySecs
	return res, nil
}
