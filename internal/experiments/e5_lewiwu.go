package experiments

import (
	"fmt"

	"snapdb/internal/attacks/bitleak"
)

// E5Result reproduces the paper's headline quantitative result (§6):
// the fraction of database plaintext bits a snapshot attacker recovers
// from Lewi-Wu query tokens found in memory. Paper numbers for a
// 10,000-value uniform 32-bit database, 1-bit blocks, 1,000 trials:
//
//	 5 range queries → ~12% of bits (~4 bits/value)
//	25 range queries → ~19% (~6 bits/value)
//	50 range queries → ~25% (~8 bits/value)
type E5Result struct {
	Quick  bool
	Trials int
	Rows   []E5Row
}

// E5Row is one query-count configuration.
type E5Row struct {
	Queries        int
	FractionLeaked float64
	BitsPerValue   float64
	PaperFraction  float64
}

// Name implements Result.
func (*E5Result) Name() string { return "E5" }

// Render implements Result.
func (r *E5Result) Render() string {
	t := &table{header: []string{"range queries", "bits leaked", "bits/value", "paper"}}
	for _, row := range r.Rows {
		t.add(fmt.Sprintf("%d", row.Queries),
			fmt.Sprintf("%.1f%%", 100*row.FractionLeaked),
			fmt.Sprintf("%.1f", row.BitsPerValue),
			fmt.Sprintf("%.0f%%", 100*row.PaperFraction))
	}
	return fmt.Sprintf("E5 (§6): Lewi-Wu token leakage, 10,000 uniform 32-bit values, %d trials\n", r.Trials) + t.String()
}

// E5LewiWu runs the simulation. Quick mode uses 50 trials instead of
// the paper's 1,000; the statistic is tightly concentrated, so the
// means agree to well under a percentage point.
func E5LewiWu(quick bool) (*E5Result, error) {
	trials := 1000
	if quick {
		trials = 50
	}
	res := &E5Result{Quick: quick, Trials: trials}
	paper := map[int]float64{5: 0.12, 25: 0.19, 50: 0.25}
	for _, q := range []int{5, 25, 50} {
		sim, err := bitleak.Simulate(bitleak.Config{
			DBSize:     10000,
			NumQueries: q,
			Trials:     trials,
			BlockBits:  1,
			Seed:       1,
		})
		if err != nil {
			return nil, fmt.Errorf("E5: %w", err)
		}
		res.Rows = append(res.Rows, E5Row{
			Queries:        q,
			FractionLeaked: sim.FractionLeaked,
			BitsPerValue:   sim.BitsPerValue,
			PaperFraction:  paper[q],
		})
	}
	return res, nil
}

// E5Ablation sweeps the ORE block size, the design choice the paper's
// simulation fixes at 1 bit: larger blocks stop individual bits from
// being determined while still leaking block-level constraints.
type E5Ablation struct {
	Rows []E5AblationRow
}

// E5AblationRow is one block-size configuration.
type E5AblationRow struct {
	BlockBits       int
	FractionLeaked  float64
	FractionTouched float64
}

// Name implements Result.
func (*E5Ablation) Name() string { return "E5-ablation" }

// Render implements Result.
func (r *E5Ablation) Render() string {
	t := &table{header: []string{"block bits", "bits determined", "bits constrained"}}
	for _, row := range r.Rows {
		t.add(fmt.Sprintf("%d", row.BlockBits),
			fmt.Sprintf("%.1f%%", 100*row.FractionLeaked),
			fmt.Sprintf("%.1f%%", 100*row.FractionTouched))
	}
	return "E5 ablation: Lewi-Wu block size vs token leakage (25 queries)\n" + t.String()
}

// E5BlockSizeAblation runs the ablation at a fixed 25-query workload.
func E5BlockSizeAblation(quick bool) (*E5Ablation, error) {
	trials := 200
	dbSize := 10000
	if quick {
		trials = 20
		dbSize = 2000
	}
	res := &E5Ablation{}
	for _, d := range []int{1, 2, 4, 8} {
		sim, err := bitleak.Simulate(bitleak.Config{
			DBSize:     dbSize,
			NumQueries: 25,
			Trials:     trials,
			BlockBits:  d,
			Seed:       2,
		})
		if err != nil {
			return nil, fmt.Errorf("E5 ablation: %w", err)
		}
		res.Rows = append(res.Rows, E5AblationRow{
			BlockBits:       d,
			FractionLeaked:  sim.FractionLeaked,
			FractionTouched: sim.FractionTouched,
		})
	}
	return res, nil
}
