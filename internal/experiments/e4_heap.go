package experiments

import (
	"fmt"
	"math/rand"

	"snapdb/internal/engine"
	"snapdb/internal/forensics"
	"snapdb/internal/snapshot"
)

// E4Result reproduces the §5 memory experiment: issue one marked query
// containing a random string, drown it in ordinary traffic (the paper
// uses 102,000 statements), then dump the process memory. The paper
// found the full query text in 3 distinct locations and the random
// string in 3 more.
type E4Result struct {
	Quick             bool
	FollowupQueries   int
	MarkedQuery       string
	FullTextHits      int // occurrences of the complete marked query
	RandomStringHits  int // occurrences of the random string itself
	PaperFullText     int
	PaperRandomString int
}

// Name implements Result.
func (*E4Result) Name() string { return "E4" }

// Render implements Result.
func (r *E4Result) Render() string {
	t := &table{header: []string{"needle", "locations in heap dump", "paper"}}
	t.add("full marked query text", fmt.Sprintf("%d", r.FullTextHits), fmt.Sprintf("%d", r.PaperFullText))
	t.add("random string", fmt.Sprintf("%d", r.RandomStringHits), fmt.Sprintf(">=%d", r.PaperRandomString))
	return fmt.Sprintf("E4 (§5): query residue in process memory after %d follow-up statements\n", r.FollowupQueries) + t.String()
}

// randomIdent returns a deterministic pseudo-random identifier of n
// letters (the paper used a random string as a column name).
func randomIdent(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

// E4HeapResidue runs the paper's exact protocol:
//
//  1. a SELECT naming a random string that appears nowhere in the
//     database (it fails — no such column — like in MySQL, where it
//     matched no rows);
//  2. 100 SELECTs that match rows and 900 that do not;
//  3. 500 random-row INSERTs;
//  4. 1,000 more SELECTs;
//  5. 100,000 more SELECTs (10,000 in quick mode);
//  6. dump the process memory and search it.
func E4HeapResidue(quick bool) (*E4Result, error) {
	finalSelects := 100_000
	if quick {
		finalSelects = 10_000
	}
	e, err := engine.New(engine.Defaults())
	if err != nil {
		return nil, err
	}
	s := e.Connect("app")
	if _, err := s.Execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		return nil, err
	}
	for i := 0; i < 100; i++ {
		if _, err := s.Execute(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'seed-row-%03d')", i, i)); err != nil {
			return nil, err
		}
	}

	// An 80-letter random identifier, so the marked query occupies a
	// heap size class none of the follow-up traffic allocates in — the
	// property that let the paper's marked query survive 102k
	// statements in MySQL's heap.
	marker := randomIdent(80, 42)
	marked := fmt.Sprintf("SELECT %s FROM t", marker)
	if _, err := s.Execute(marked); err == nil {
		return nil, fmt.Errorf("E4: marked query unexpectedly succeeded")
	}

	sel := func(i, span int) error {
		_, err := s.Execute(fmt.Sprintf("SELECT v FROM t WHERE id = %d", i%span))
		return err
	}
	for i := 0; i < 100; i++ { // matching
		if err := sel(i, 100); err != nil {
			return nil, err
		}
	}
	for i := 0; i < 900; i++ { // non-matching (ids past the data)
		if _, err := s.Execute(fmt.Sprintf("SELECT v FROM t WHERE id = %d", 1_000_000+i)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < 500; i++ { // 500 random rows
		if _, err := s.Execute(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'random-%06d')", 1000+i, i)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < 1000; i++ {
		if err := sel(i, 1500); err != nil {
			return nil, err
		}
	}
	for i := 0; i < finalSelects; i++ {
		if err := sel(i, 1500); err != nil {
			return nil, err
		}
	}

	snap := snapshot.Capture(e, snapshot.VMSnapshotLeak)
	res := &E4Result{
		Quick:             quick,
		FollowupQueries:   100 + 900 + 500 + 1000 + finalSelects,
		MarkedQuery:       marked,
		FullTextHits:      forensics.CountOccurrences(snap.Memory.HeapImage, marked),
		RandomStringHits:  forensics.CountOccurrences(snap.Memory.HeapImage, marker),
		PaperFullText:     3,
		PaperRandomString: 3,
	}
	if res.FullTextHits == 0 {
		return nil, fmt.Errorf("E4: marked query not found in heap dump")
	}
	return res, nil
}
