package experiments

import (
	"fmt"

	"snapdb/internal/crypto/prim"
	"snapdb/internal/engine"
	"snapdb/internal/forensics"
	"snapdb/internal/snapshot"
)

// E9Result reproduces §6's at-rest encryption observation: full-disk /
// tablespace encryption with the key held only in memory defeats a
// disk-only attacker (modulo object sizes), but any attacker with
// memory access recovers the key and with it everything.
type E9Result struct {
	DiskOnlyLearnsBytes int  // all a disk thief gets: ciphertext size
	DiskPlaintextHits   int  // plaintext fragments found on the encrypted disk (must be 0)
	MemoryGetsKey       bool // VM-snapshot attacker finds the key
	DecryptedWrites     int  // writes reconstructed after decrypting with the stolen key
}

// Name implements Result.
func (*E9Result) Name() string { return "E9" }

// Render implements Result.
func (r *E9Result) Render() string {
	t := &table{header: []string{"attacker", "outcome"}}
	t.add("disk thief (FDE on)", fmt.Sprintf("ciphertext only: %d bytes, %d plaintext hits", r.DiskOnlyLearnsBytes, r.DiskPlaintextHits))
	t.add("VM-snapshot attacker", fmt.Sprintf("key recovered: %v; %d write statements decrypted", r.MemoryGetsKey, r.DecryptedWrites))
	return "E9 (§6): at-rest encryption vs snapshot attackers\n" + t.String()
}

// E9AtRest wraps the engine's persistent state in at-rest encryption
// whose key lives in the (dumpable) process heap, then contrasts the
// two attacker positions.
func E9AtRest() (*E9Result, error) {
	e, err := engine.New(engine.Defaults())
	if err != nil {
		return nil, err
	}
	s := e.Connect("app")
	stmts := []string{
		"CREATE TABLE vault (id INT PRIMARY KEY, secret TEXT)",
		"INSERT INTO vault (id, secret) VALUES (1, 'the-crown-jewels')",
		"INSERT INTO vault (id, secret) VALUES (2, 'atomic-codes')",
	}
	for _, q := range stmts {
		if _, err := s.Execute(q); err != nil {
			return nil, err
		}
	}
	// The FDE key lives in process memory, as in every real deployment.
	fdeKey, err := prim.NewRandomKey()
	if err != nil {
		return nil, err
	}
	keyMarker := "fde-key:"
	e.Arena().Alloc(append([]byte(keyMarker), fdeKey[:]...))

	snap := snapshot.Capture(e, snapshot.FullCompromise)
	// At-rest encryption of the persistent artifacts.
	encRedo, err := prim.Encrypt(fdeKey, snap.Disk.RedoLog)
	if err != nil {
		return nil, err
	}
	encUndo, err := prim.Encrypt(fdeKey, snap.Disk.UndoLog)
	if err != nil {
		return nil, err
	}
	encTablespace, err := prim.Encrypt(fdeKey, snap.Disk.Tablespace)
	if err != nil {
		return nil, err
	}

	res := &E9Result{
		DiskOnlyLearnsBytes: len(encRedo) + len(encUndo) + len(encTablespace),
	}
	// Disk thief: scans the ciphertexts for the plaintext secrets.
	for _, img := range [][]byte{encRedo, encUndo, encTablespace} {
		for _, secret := range []string{"the-crown-jewels", "atomic-codes", "vault"} {
			res.DiskPlaintextHits += forensics.CountOccurrences(img, secret)
		}
	}

	// VM-snapshot attacker: finds the key in the heap image, decrypts.
	heapImg := snap.Memory.HeapImage
	var stolen prim.Key
	for i := 0; i+len(keyMarker)+prim.KeySize <= len(heapImg); i++ {
		if string(heapImg[i:i+len(keyMarker)]) == keyMarker {
			k, err := prim.KeyFromBytes(heapImg[i+len(keyMarker) : i+len(keyMarker)+prim.KeySize])
			if err != nil {
				return nil, err
			}
			stolen = k
			res.MemoryGetsKey = true
			break
		}
	}
	if res.MemoryGetsKey {
		redo, err := prim.Decrypt(stolen, encRedo)
		if err != nil {
			return nil, fmt.Errorf("E9: decrypting with stolen key: %w", err)
		}
		undo, err := prim.Decrypt(stolen, encUndo)
		if err != nil {
			return nil, err
		}
		writes, err := forensics.ReconstructWrites(redo, undo, nil)
		if err != nil {
			return nil, err
		}
		res.DecryptedWrites = len(writes)
	}
	if res.DiskPlaintextHits != 0 {
		return nil, fmt.Errorf("E9: at-rest encryption leaked plaintext to disk")
	}
	if !res.MemoryGetsKey || res.DecryptedWrites == 0 {
		return nil, fmt.Errorf("E9: memory attacker failed to recover data")
	}
	return res, nil
}
