// Package experiments regenerates every table and figure in the
// paper's demonstrations. Each experiment Exx returns a structured
// result with a Render method; cmd/experiments prints them and the
// repository-root benchmarks time them. Quick variants shrink
// workloads so the suite runs in CI time; the full variants match the
// paper's parameters.
package experiments

import (
	"fmt"
	"strings"
)

// Result is a rendered experiment outcome.
type Result interface {
	// Name returns the experiment id (e.g. "E5").
	Name() string
	// Render formats the experiment's table.
	Render() string
}

// table is a minimal fixed-width table renderer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return sb.String()
}

// All runs every experiment with the given scale.
func All(quick bool) ([]Result, error) {
	runs := []func(bool) (Result, error){
		func(bool) (Result, error) { return E1Figure1() },
		func(q bool) (Result, error) { return E2LogRetention(q) },
		func(q bool) (Result, error) { return E3BinlogCorrelation(q) },
		func(q bool) (Result, error) { return E4HeapResidue(q) },
		func(q bool) (Result, error) { return E5LewiWu(q) },
		func(q bool) (Result, error) { return E6CountAttack(q) },
		func(q bool) (Result, error) { return E7Seabed(q) },
		func(q bool) (Result, error) { return E8Arx(q) },
		func(bool) (Result, error) { return E9AtRest() },
		func(q bool) (Result, error) { return E10Diagnostics(q) },
		func(q bool) (Result, error) { return E11Mitigations(q) },
		func(q bool) (Result, error) { return E12Scaling(q) },
		func(q bool) (Result, error) { return E13CrashResidue(q) },
		func(q bool) (Result, error) { return E14RetryResidue(q) },
		func(q bool) (Result, error) { return E15ParallelTrace(q) },
		func(q bool) (Result, error) { return E16VersionResidue(q) },
		func(q bool) (Result, error) { return E17SnapshotDiff(q) },
	}
	out := make([]Result, 0, len(runs))
	for _, run := range runs {
		res, err := run(quick)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
