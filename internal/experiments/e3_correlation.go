package experiments

import (
	"fmt"

	"snapdb/internal/core"
	"snapdb/internal/engine"
	"snapdb/internal/forensics"
	"snapdb/internal/snapshot"
)

// E3Result reproduces §3's timing attack: the binlog holds (timestamp,
// LSN) pairs; regressing them dates WAL records that precede the
// binlog's retention horizon.
type E3Result struct {
	Writes            int
	BinlogEvents      int     // events left after the purge (the horizon)
	DatedBeyondBinlog int     // WAL writes older than the binlog horizon that were dated
	MeanAbsErrSec     float64 // dating error vs ground truth
	MaxAbsErrSec      float64
}

// Name implements Result.
func (*E3Result) Name() string { return "E3" }

// Render implements Result.
func (r *E3Result) Render() string {
	t := &table{header: []string{"metric", "value"}}
	t.add("writes executed", fmt.Sprintf("%d", r.Writes))
	t.add("binlog events after purge", fmt.Sprintf("%d", r.BinlogEvents))
	t.add("WAL writes dated beyond binlog horizon", fmt.Sprintf("%d", r.DatedBeyondBinlog))
	t.add("mean |timestamp error| (s)", fmt.Sprintf("%.1f", r.MeanAbsErrSec))
	t.add("max |timestamp error| (s)", fmt.Sprintf("%.1f", r.MaxAbsErrSec))
	return "E3 (§3): dating WAL records via binlog LSN↔timestamp correlation\n" + t.String()
}

// E3BinlogCorrelation runs a steady write workload under a synthetic
// clock, purges the older half of the binlog (modelling its horizon),
// and checks that the regression still dates the purged-era WAL
// records accurately.
func E3BinlogCorrelation(quick bool) (*E3Result, error) {
	writes := 2000
	if quick {
		writes = 400
	}
	e, err := engine.New(engine.Defaults())
	if err != nil {
		return nil, err
	}
	now := int64(1_700_000_000)
	e.Clock = func() int64 { return now }
	s := e.Connect("app")
	if _, err := s.Execute("CREATE TABLE metrics (id INT PRIMARY KEY, v TEXT)"); err != nil {
		return nil, err
	}
	trueTime := make(map[uint64]int64) // commit LSN -> true timestamp
	for i := 0; i < writes; i++ {
		now += 1 // one write per second
		q := fmt.Sprintf("INSERT INTO metrics (id, v) VALUES (%d, 'sample-%06d')", i, i)
		if _, err := s.Execute(q); err != nil {
			return nil, err
		}
		// The statement's row change is the last data record in the log
		// (an autocommit commit marker follows it, and marker records are
		// invisible to write reconstruction).
		recs := e.WAL().Redo.Records()
		for j := len(recs) - 1; j >= 0; j-- {
			if !recs[j].Op.IsMarker() {
				trueTime[recs[j].LSN] = now
				break
			}
		}
	}
	// The binlog horizon: purge everything before the halfway point.
	horizon := int64(1_700_000_000) + int64(writes)/2
	e.Binlog().Purge(horizon)

	snap := snapshot.Capture(e, snapshot.DiskTheft)
	events, err := forensics.CorrelatableEvents(snap.Disk.Binlog)
	if err != nil {
		return nil, err
	}
	corr, err := forensics.CorrelateBinlog(events)
	if err != nil {
		return nil, err
	}
	recon, err := forensics.ReconstructWrites(snap.Disk.RedoLog, snap.Disk.UndoLog, core.CatalogOf(e))
	if err != nil {
		return nil, err
	}
	forensics.DateWrites(recon, corr)

	res := &E3Result{Writes: writes, BinlogEvents: len(events)}
	var sumErr float64
	for _, w := range recon {
		truth, ok := trueTime[w.LSN]
		if !ok || truth >= horizon {
			continue // only score the records the binlog no longer covers
		}
		res.DatedBeyondBinlog++
		errSec := float64(w.Timestamp - truth)
		if errSec < 0 {
			errSec = -errSec
		}
		sumErr += errSec
		if errSec > res.MaxAbsErrSec {
			res.MaxAbsErrSec = errSec
		}
	}
	if res.DatedBeyondBinlog > 0 {
		res.MeanAbsErrSec = sumErr / float64(res.DatedBeyondBinlog)
	}
	if res.DatedBeyondBinlog == 0 {
		return nil, fmt.Errorf("E3: no WAL records beyond the binlog horizon were dated")
	}
	return res, nil
}
