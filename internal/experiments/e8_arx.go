package experiments

import (
	"fmt"
	"math/rand"

	"snapdb/internal/attacks/rank"
	"snapdb/internal/crypto/prim"
	"snapdb/internal/edb/arxx"
	"snapdb/internal/engine"
	"snapdb/internal/snapshot"
	"snapdb/internal/wal"
)

// E8Result reproduces §6's Arx analysis: although the index is
// semantically secure at rest, every range query's repair writes land
// in the transaction logs, so a disk snapshot yields the full query
// transcript; ordering inference then recovers the index values.
type E8Result struct {
	Quick              bool
	IndexSize          int
	QueriesIssued      int
	QueriesRecovered   int // from the WAL transcript
	RepairWrites       uint64
	TranscriptComplete bool    // every repair accounted for in the transcript
	OrderAttackError   float64 // normalized mean |rank error| (random ≈ 0.33)
	FreqBaselineError  float64 // frequency-matching baseline for comparison
	ValueRecovery      float64 // fraction of node values recovered exactly
}

// Name implements Result.
func (*E8Result) Name() string { return "E8" }

// Render implements Result.
func (r *E8Result) Render() string {
	t := &table{header: []string{"metric", "value"}}
	t.add("index size (nodes)", fmt.Sprintf("%d", r.IndexSize))
	t.add("range queries issued", fmt.Sprintf("%d", r.QueriesIssued))
	t.add("queries recovered from WAL", fmt.Sprintf("%d", r.QueriesRecovered))
	t.add("repair writes in WAL", fmt.Sprintf("%d", r.RepairWrites))
	t.add("transcript complete", fmt.Sprintf("%v", r.TranscriptComplete))
	t.add("order-attack rank error (random ~0.33)", fmt.Sprintf("%.3f", r.OrderAttackError))
	t.add("frequency-baseline rank error", fmt.Sprintf("%.3f", r.FreqBaselineError))
	t.add("node values recovered exactly", fmt.Sprintf("%.1f%%", 100*r.ValueRecovery))
	return "E8 (§6): Arx range-query transcript and value recovery from the WAL\n" + t.String()
}

// E8Arx builds an Arx index, runs uniform range queries, captures a
// disk-theft snapshot, reconstructs the transcript, and runs both the
// order attack and the frequency baseline. The attacker's auxiliary
// knowledge is the value multiset (known plaintext distribution), per
// the paper's bipartite-matching setup.
func E8Arx(quick bool) (*E8Result, error) {
	n, q := 100, 800
	if quick {
		n, q = 40, 250
	}
	e, err := engine.New(engine.Defaults())
	if err != nil {
		return nil, err
	}
	ix, err := arxx.New(e, prim.TestKey("e8"), "arx_idx")
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(21))
	// Distinct values: rank == value/10 so exact-value recovery equals
	// rank recovery against the known multiset.
	perm := rng.Perm(n)
	truthRank := make(map[int]int, n)
	for _, v := range perm {
		if err := ix.Insert(uint32(v * 10)); err != nil {
			return nil, err
		}
	}
	for id := 1; id <= n; id++ {
		v, ok := ix.NodeValue(id)
		if !ok {
			return nil, fmt.Errorf("E8: node %d missing", id)
		}
		truthRank[id] = int(v) / 10
	}
	for i := 0; i < q; i++ {
		lo, hi := rank.UniformRanges(rng, n)
		if _, err := ix.RangeQuery(uint32(lo*10), uint32(hi*10)); err != nil {
			return nil, err
		}
	}

	// --- The attack: disk snapshot only. ---
	snap := snapshot.Capture(e, snapshot.DiskTheft)
	records, err := wal.ParseLog(snap.Disk.RedoLog)
	if err != nil {
		return nil, err
	}
	tbl, ok := e.Table("arx_idx")
	if !ok {
		return nil, fmt.Errorf("E8: arx table missing")
	}
	tr, err := rank.FromWAL(records, tbl.ID)
	if err != nil {
		return nil, err
	}
	var visitTotal int
	for _, v := range tr.Visits {
		visitTotal += v
	}

	order, err := rank.RecoverOrder(tr)
	if err != nil {
		return nil, err
	}
	recovered := rank.RanksFromOrder(order)
	orderErr, err := rank.ScoreRankRecovery(recovered, truthRank, n)
	if err != nil {
		return nil, err
	}
	exact := 0
	for id, r := range recovered {
		if truthRank[id] == r {
			exact++
		}
	}

	expected, err := rank.ExpectedVisits(n, q, 40, rank.UniformRanges, 22)
	if err != nil {
		return nil, err
	}
	freqRec, err := rank.RecoverRanks(tr.Visits, expected)
	if err != nil {
		return nil, err
	}
	freqErr, err := rank.ScoreRankRecovery(freqRec, truthRank, n)
	if err != nil {
		return nil, err
	}

	return &E8Result{
		Quick:              quick,
		IndexSize:          n,
		QueriesIssued:      q,
		QueriesRecovered:   len(tr.Queries),
		RepairWrites:       ix.Repairs(),
		TranscriptComplete: uint64(visitTotal) == ix.Repairs(),
		OrderAttackError:   orderErr,
		FreqBaselineError:  freqErr,
		ValueRecovery:      float64(exact) / float64(n),
	}, nil
}
