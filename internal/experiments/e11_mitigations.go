package experiments

import (
	"fmt"

	"snapdb/internal/engine"
	"snapdb/internal/mitigate"
	"snapdb/internal/snapshot"
)

// E11Result makes the paper's §7 discussion quantitative: hardening the
// DBMS configuration closes the volatile/diagnostic channels, but the
// channels that exist because of ACID and replication — the WAL and the
// binlog — remain. "There is no such thing as a snapshot attacker who
// cannot observe past queries."
type E11Result struct {
	Comparison *mitigate.Comparison
	ClosedBy   int // channels hardening closed
	Inherent   int // channels that remain
}

// Name implements Result.
func (*E11Result) Name() string { return "E11" }

// Render implements Result.
func (r *E11Result) Render() string {
	return "E11 (§7): what hardening can and cannot close\n" + r.Comparison.Render()
}

// E11Mitigations runs the hardening comparison on a mixed workload
// under a full-system compromise (the strongest snapshot).
func E11Mitigations(quick bool) (*E11Result, error) {
	statements := 200
	if quick {
		statements = 60
	}
	workload := func(e *engine.Engine) error {
		s := e.Connect("app")
		if _, err := s.Execute("CREATE TABLE orders (id INT PRIMARY KEY, customer TEXT, total INT)"); err != nil {
			return err
		}
		for i := 0; i < statements; i++ {
			var q string
			switch i % 4 {
			case 0:
				q = fmt.Sprintf("INSERT INTO orders (id, customer, total) VALUES (%d, 'cust%03d', %d)", i, i, 10+i)
			case 1:
				q = fmt.Sprintf("SELECT total FROM orders WHERE id = %d", i-1)
			case 2:
				q = fmt.Sprintf("UPDATE orders SET total = %d WHERE id = %d", 99+i, i-2)
			default:
				q = "SELECT COUNT(*) FROM orders"
			}
			if _, err := s.Execute(q); err != nil {
				return err
			}
		}
		return nil
	}
	cmp, err := mitigate.Compare(engine.Defaults(), true, snapshot.FullCompromise, workload)
	if err != nil {
		return nil, fmt.Errorf("E11: %w", err)
	}
	res := &E11Result{Comparison: cmp, Inherent: len(cmp.Inherent)}
	for _, ch := range cmp.Channels {
		if ch.Closed {
			res.ClosedBy++
		}
	}
	if res.Inherent == 0 {
		return nil, fmt.Errorf("E11: hardening closed everything; the WAL channel must remain")
	}
	return res, nil
}
