package experiments

import (
	"strings"
	"testing"
)

func TestE1Figure1(t *testing.T) {
	res, err := E1Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Logs != true || res.Rows[0].Diagnostics || res.Rows[0].Memory {
		t.Errorf("disk theft row = %+v", res.Rows[0])
	}
	if !res.Rows[3].Memory {
		t.Errorf("full compromise row = %+v", res.Rows[3])
	}
	out := res.Render()
	if !strings.Contains(out, "disk theft") || !strings.Contains(out, "Figure 1") {
		t.Errorf("render:\n%s", out)
	}
}

func TestE2LogRetention(t *testing.T) {
	res, err := E2LogRetention(true)
	if err != nil {
		t.Fatal(err)
	}
	// Paper's estimate: 16 days. Our concrete record format retains
	// roughly 12-13 days in the update-redo log; the claim "weeks of
	// write history on disk" must hold within a factor.
	if res.UpdateRedoDays < 8 || res.UpdateRedoDays > 32 {
		t.Errorf("update redo retention = %.1f days, outside [8, 32]", res.UpdateRedoDays)
	}
	// Undo of an insert stream holds only keys: retention must exceed
	// the redo stream's.
	if res.InsertUndoDays <= res.InsertRedoDays {
		t.Errorf("insert undo (%.1f d) should outlast redo (%.1f d)", res.InsertUndoDays, res.InsertRedoDays)
	}
	if !strings.Contains(res.Render(), "days retained") {
		t.Error("render missing header")
	}
}

func TestE2QuickMatchesFullScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("full log takes a few seconds")
	}
	quick, err := E2LogRetention(true)
	if err != nil {
		t.Fatal(err)
	}
	full, err := E2LogRetention(false)
	if err != nil {
		t.Fatal(err)
	}
	ratio := quick.UpdateRedoDays / full.UpdateRedoDays
	if ratio < 0.98 || ratio > 1.02 {
		t.Errorf("quick scaling off: quick %.2f vs full %.2f days", quick.UpdateRedoDays, full.UpdateRedoDays)
	}
}

func TestE3BinlogCorrelation(t *testing.T) {
	res, err := E3BinlogCorrelation(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.DatedBeyondBinlog == 0 {
		t.Fatal("nothing dated beyond the binlog horizon")
	}
	// One write per second with byte-proportional LSNs: the regression
	// must date purged-era records to within a few seconds.
	if res.MeanAbsErrSec > 5 {
		t.Errorf("mean dating error %.1f s too large", res.MeanAbsErrSec)
	}
	if res.BinlogEvents >= res.Writes {
		t.Error("purge did not shrink the binlog")
	}
}

func TestE4HeapResidue(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 12.5k statements")
	}
	res, err := E4HeapResidue(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.FullTextHits < 3 {
		t.Errorf("full text found %d times, want >= 3 (paper: 3)", res.FullTextHits)
	}
	if res.RandomStringHits < res.FullTextHits {
		t.Errorf("random string hits %d < full text hits %d", res.RandomStringHits, res.FullTextHits)
	}
}

func TestE5LewiWu(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := E5LewiWu(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, row := range res.Rows {
		diff := row.FractionLeaked - row.PaperFraction
		if diff < -0.05 || diff > 0.05 {
			t.Errorf("row %d (%d queries): %.3f vs paper %.2f", i, row.Queries, row.FractionLeaked, row.PaperFraction)
		}
	}
	if !(res.Rows[0].FractionLeaked < res.Rows[1].FractionLeaked && res.Rows[1].FractionLeaked < res.Rows[2].FractionLeaked) {
		t.Error("leakage not monotone in query count")
	}
}

func TestE5BlockSizeAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := E5BlockSizeAblation(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].BlockBits != 1 || res.Rows[0].FractionLeaked == 0 {
		t.Errorf("1-bit row = %+v", res.Rows[0])
	}
	for _, row := range res.Rows[1:] {
		if row.FractionLeaked != 0 {
			t.Errorf("%d-bit blocks determined bits: %+v", row.BlockBits, row)
		}
	}
}

func TestE6CountAttack(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation is slow")
	}
	res, err := E6CountAttack(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 1.0 {
		t.Errorf("accuracy = %.2f; count-unique matches must be exact", res.Accuracy)
	}
	if res.RecoveryRate < 0.3 {
		t.Errorf("recovery rate = %.2f", res.RecoveryRate)
	}
	if res.DocsExposed == 0 {
		t.Error("no document content exposed")
	}
	if res.UniqueCountFrac <= 0 || res.UniqueCountFrac > 1 {
		t.Errorf("unique fraction = %.2f", res.UniqueCountFrac)
	}
}

func TestE7Seabed(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := E7Seabed(true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HistogramExact {
		t.Error("digest histogram is not the exact per-plaintext query histogram")
	}
	if res.WeightedRecovery < 0.8 {
		t.Errorf("weighted recovery = %.2f", res.WeightedRecovery)
	}
	if res.TailRowRecovery < 0.5 {
		t.Errorf("tail row recovery = %.2f", res.TailRowRecovery)
	}
}

func TestE8Arx(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := E8Arx(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesRecovered != res.QueriesIssued {
		t.Errorf("recovered %d of %d queries", res.QueriesRecovered, res.QueriesIssued)
	}
	if !res.TranscriptComplete {
		t.Error("transcript missed repair writes")
	}
	if res.OrderAttackError >= 0.1 {
		t.Errorf("order attack error = %.3f", res.OrderAttackError)
	}
	if res.OrderAttackError > res.FreqBaselineError {
		t.Errorf("order attack (%.3f) worse than frequency baseline (%.3f)",
			res.OrderAttackError, res.FreqBaselineError)
	}
}

func TestE9AtRest(t *testing.T) {
	res, err := E9AtRest()
	if err != nil {
		t.Fatal(err)
	}
	if res.DiskPlaintextHits != 0 {
		t.Error("plaintext on encrypted disk")
	}
	if !res.MemoryGetsKey || res.DecryptedWrites == 0 {
		t.Errorf("memory attack: key=%v writes=%d", res.MemoryGetsKey, res.DecryptedWrites)
	}
}

func TestE10Diagnostics(t *testing.T) {
	res, err := E10Diagnostics(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.CurrentVisible != res.Threads {
		t.Errorf("processlist shows %d of %d victims", res.CurrentVisible, res.Threads)
	}
	if res.HistoryRecovered != res.Threads*res.HistoryPerThread {
		t.Errorf("history recovered %d", res.HistoryRecovered)
	}
	if res.DigestTotalQueries == 0 {
		t.Error("digest histogram empty")
	}
}

func TestE11Mitigations(t *testing.T) {
	res, err := E11Mitigations(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.ClosedBy == 0 {
		t.Error("hardening closed nothing")
	}
	if res.Inherent == 0 {
		t.Error("no inherent channels")
	}
	if !strings.Contains(res.Render(), "inherent") {
		t.Error("render missing inherent summary")
	}
}

func TestE12Scaling(t *testing.T) {
	res, err := E12Scaling(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row.PerSecond <= 0 {
			t.Errorf("level %d: throughput %v", i, row.PerSecond)
		}
		if row.WALFlushes == 0 || row.Writes == 0 {
			t.Errorf("level %d: no write traffic (flushes=%d writes=%d)", i, row.WALFlushes, row.Writes)
		}
	}
	// The acceptance bar: ≥2x statements/sec at 4 goroutines vs 1.
	if got := res.Rows[1].Speedup; got < 2 {
		t.Errorf("speedup at 4 goroutines = %.2fx, want >= 2x", got)
	}
	if len(res.Client) != 2 {
		t.Fatalf("client rows = %d, want 2", len(res.Client))
	}
	for _, row := range res.Client {
		if row.PerSecond <= 0 {
			t.Errorf("client mode %s: throughput %v", row.Mode, row.PerSecond)
		}
	}
	if res.Client[1].BatchSize <= 1 {
		t.Errorf("second client row should be batched, got batch size %d", res.Client[1].BatchSize)
	}
	if !strings.Contains(res.Render(), "goroutines") {
		t.Error("render missing table header")
	}
	if !strings.Contains(res.Render(), "client mode") {
		t.Error("render missing client table")
	}
}

func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	results, err := All(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 17 {
		t.Fatalf("got %d experiments", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if r.Name() == "" || r.Render() == "" {
			t.Errorf("experiment %T renders empty", r)
		}
		if seen[r.Name()] {
			t.Errorf("duplicate experiment name %s", r.Name())
		}
		seen[r.Name()] = true
	}
}

func TestE13CrashResidue(t *testing.T) {
	res, err := E13CrashResidue(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes < 20 {
		t.Errorf("only %d crashes exercised", res.Crashes)
	}
	if res.RecoveredClean != res.Crashes {
		t.Errorf("recovered %d of %d crashes", res.RecoveredClean, res.Crashes)
	}
	if res.SecretHits == 0 {
		t.Error("no crash exposed the uncommitted secret")
	}
	if res.UncommittedWrites == 0 {
		t.Error("no uncommitted writes reconstructed")
	}
	if !strings.Contains(res.Render(), "E13") {
		t.Error("render missing experiment id")
	}
}

func TestE15ParallelTrace(t *testing.T) {
	res, err := E15ParallelTrace(true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ResultsIdentical || !res.BinlogIdentical || !res.GeneralIdentical {
		t.Errorf("semantic artifacts diverged: results=%v binlog=%v general=%v",
			res.ResultsIdentical, res.BinlogIdentical, res.GeneralIdentical)
	}
	if res.FirstDivergence < 0 {
		t.Error("fetch traces never diverged between serial and parallel runs")
	}
	if res.ParallelFetches <= res.SerialFetches {
		t.Errorf("parallel fetches %d not above serial %d (per-partition descents missing?)",
			res.ParallelFetches, res.SerialFetches)
	}
	if !strings.Contains(res.Render(), "E15") {
		t.Error("render missing experiment id")
	}
}

func TestE16VersionResidue(t *testing.T) {
	res, err := E16VersionResidue(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 3 {
		t.Fatalf("arms = %d", len(res.Arms))
	}
	retain, aggr := res.Arms[0], res.Arms[2]
	if retain.SecretsSurvived != res.Secrets {
		t.Errorf("retain arm recovered %d of %d secrets", retain.SecretsSurvived, res.Secrets)
	}
	if retain.DeletedSurvived != res.Deleted {
		t.Errorf("retain arm recovered %d of %d deleted rows", retain.DeletedSurvived, res.Deleted)
	}
	if retain.WALHasSecret || !retain.WALHadSecret {
		t.Errorf("WAL contrast broken: pre=%v post=%v", retain.WALHadSecret, retain.WALHasSecret)
	}
	if aggr.SurvivedVersions != 0 {
		t.Errorf("aggressive sweep left %d versions", aggr.SurvivedVersions)
	}
	if aggr.PurgedVersions == 0 {
		t.Error("aggressive arm reclaimed nothing")
	}
	if !strings.Contains(res.Render(), "E16") {
		t.Error("render missing experiment id")
	}
}

func TestE17SnapshotDiff(t *testing.T) {
	res, err := E17SnapshotDiff(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 2 {
		t.Fatalf("arms = %d", len(res.Arms))
	}
	det, fresh := res.Arms[0], res.Arms[1]
	// Deterministic page encryption leaks history to a snapshot-only
	// adversary: the overwrite localizes to few pages, the revert is
	// detectable by page similarity, and the idle interval is
	// byte-identical.
	if !det.RevertDetected || det.RevertSimilarity <= 0.95 {
		t.Errorf("det arm: revert not detected (similarity %.4f)", det.RevertSimilarity)
	}
	if !det.IdleIdentical {
		t.Error("det arm: idle checkpoint not byte-identical")
	}
	if det.OverwriteChanged == 0 || det.OverwriteChanged*2 > det.CkptPages {
		t.Errorf("det arm: overwrite changed %d of %d pages", det.OverwriteChanged, det.CkptPages)
	}
	// Fresh IVs kill the page-diff channel outright.
	if fresh.RevertDetected || fresh.RevertSimilarity > 0.1 {
		t.Errorf("fresh arm: page-diff channel survived (similarity %.4f)", fresh.RevertSimilarity)
	}
	if fresh.IdleIdentical {
		t.Error("fresh arm: idle checkpoint identical — pages not re-randomized")
	}
	// The size/timing channel is mode-independent: identical deltas,
	// same correct growth ranking, in both arms.
	if !det.GrowthRanked || !fresh.GrowthRanked {
		t.Errorf("growth ranking failed: det=%v fresh=%v", det.GrowthRanked, fresh.GrowthRanked)
	}
	if det.OrdersDelta != fresh.OrdersDelta || det.AuditDelta != fresh.AuditDelta {
		t.Errorf("size channel differs across modes: %d/%d vs %d/%d",
			det.OrdersDelta, det.AuditDelta, fresh.OrdersDelta, fresh.AuditDelta)
	}
	if det.TmpResidue || fresh.TmpResidue {
		t.Error("*.tmp residue visible in a snapshot")
	}
	if !strings.Contains(res.Render(), "E17") {
		t.Error("render missing experiment id")
	}
}

func TestE14RetryResidue(t *testing.T) {
	res, err := E14RetryResidue(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == 0 {
		t.Error("no reply-write fault fired")
	}
	if res.DigestMatches != res.Runs {
		t.Errorf("exactly-once violated: %d/%d digests matched", res.DigestMatches, res.Runs)
	}
	if res.ReplayRuns == 0 {
		t.Error("no run left duplicate general-log records")
	}
	if res.SecretRuns == 0 {
		t.Error("secret never found in the dedup cache")
	}
	if !res.OrphanRetained {
		t.Error("abandoned session was not retained")
	}
	if !strings.Contains(res.Render(), "E14") {
		t.Error("render missing experiment id")
	}
}
