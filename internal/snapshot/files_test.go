package snapshot

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"snapdb/internal/crypto/prim"
	"snapdb/internal/failpoint"
	"snapdb/internal/vfs"
)

func TestWriteReadDirRoundTrip(t *testing.T) {
	e := loadedEngine(t)
	snap := Capture(e, DiskTheft)
	dir := t.TempDir()
	if err := snap.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	// The directory looks like a data directory.
	for _, name := range []string{FileTablespace, FileRedo, FileUndo, FileBinlog, FileCatalog} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Disk.RedoLog, snap.Disk.RedoLog) {
		t.Error("redo log changed in round trip")
	}
	if !bytes.Equal(got.Disk.Binlog, snap.Disk.Binlog) {
		t.Error("binlog changed in round trip")
	}
	if !bytes.Equal(got.Disk.Tablespace, snap.Disk.Tablespace) {
		t.Error("tablespace changed in round trip")
	}
	if len(got.Disk.Catalog) != len(snap.Disk.Catalog) {
		t.Errorf("catalog entries = %d, want %d", len(got.Disk.Catalog), len(snap.Disk.Catalog))
	}
	for id, schema := range snap.Disk.Catalog {
		gs, ok := got.Disk.Catalog[id]
		if !ok || gs.Name != schema.Name || len(gs.Columns) != len(schema.Columns) {
			t.Errorf("catalog[%d] = %+v, want %+v", id, gs, schema)
		}
	}
}

func TestWriteDirWithoutDiskState(t *testing.T) {
	s := &Snapshot{Attack: VMSnapshotLeak}
	if err := s.WriteDir(t.TempDir()); err == nil {
		t.Error("nil disk state accepted")
	}
}

func TestReadDirMissingRequiredFiles(t *testing.T) {
	if _, err := ReadDir(t.TempDir()); err == nil {
		t.Error("empty directory accepted")
	}
}

func TestReadDirToleratesMissingOptionalFiles(t *testing.T) {
	e := loadedEngine(t)
	snap := Capture(e, DiskTheft)
	dir := t.TempDir()
	if err := snap.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	for _, optional := range []string{FileGeneralLog, FileSlowLog, FileBufferPool, FileCatalog, FileBinlog} {
		if err := os.Remove(filepath.Join(dir, optional)); err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("missing optional files not tolerated: %v", err)
	}
	if len(got.Disk.RedoLog) == 0 {
		t.Error("required files lost")
	}
}

func TestReadDirRejectsCorruptCatalog(t *testing.T) {
	e := loadedEngine(t)
	dir := t.TempDir()
	if err := Capture(e, DiskTheft).WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, FileCatalog), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir); err == nil {
		t.Error("corrupt catalog accepted")
	}
}

// TestWriteDirFSCrashAtomic crashes the file layer mid-way through a
// second WriteDirFS and checks every file holds either its old or its
// new content — never a torn hybrid.
func TestWriteDirFSCrashAtomic(t *testing.T) {
	e := loadedEngine(t)
	snapV1 := Capture(e, DiskTheft)
	mem := vfs.NewMemFS()
	if err := snapV1.WriteDirFS(mem); err != nil {
		t.Fatal(err)
	}

	s := e.Connect("app")
	if _, err := s.Execute("INSERT INTO accounts (id, owner, balance) VALUES (3, 'carol', 42)"); err != nil {
		t.Fatal(err)
	}
	snapV2 := Capture(e, DiskTheft)
	if bytes.Equal(snapV1.Disk.RedoLog, snapV2.Disk.RedoLog) {
		t.Fatal("second snapshot did not change the redo log")
	}

	// Crash while the second write is replacing the redo log file.
	reg := failpoint.New(7)
	reg.Arm("write:"+FileRedo+".tmp", failpoint.KindCrash, 1)
	ffs := vfs.NewFaultFS(mem, reg)
	if err := snapV2.WriteDirFS(ffs); err == nil {
		t.Fatal("crashed write reported success")
	}
	mem.Crash()

	for _, tc := range []struct {
		name     string
		old, new []byte
	}{
		{FileRedo, snapV1.Disk.RedoLog, snapV2.Disk.RedoLog},
		{FileBinlog, snapV1.Disk.Binlog, snapV2.Disk.Binlog},
		{FileTablespace, snapV1.Disk.Tablespace, snapV2.Disk.Tablespace},
	} {
		got, err := mem.ReadFile(tc.name)
		if err != nil {
			t.Fatalf("reading %s after crash: %v", tc.name, err)
		}
		if !bytes.Equal(got, tc.old) && !bytes.Equal(got, tc.new) {
			t.Errorf("%s is neither the old nor the new version after crash", tc.name)
		}
	}
}

// TestEncryptedSnapshotDirRoundTrip writes a snapshot directory through
// a CryptFS and reads it back two ways: the key-holder (ReadDirFS over
// the same CryptFS) recovers the full snapshot, while the inner FS —
// the ciphertext-only analyst's view — holds the same file names and
// sizes but none of the plaintext. Exactly the split E17 exploits.
func TestEncryptedSnapshotDirRoundTrip(t *testing.T) {
	e := loadedEngine(t)
	snap := Capture(e, DiskTheft)
	mem := vfs.NewMemFS()
	cfs, err := vfs.NewCryptFS(mem, prim.TestKey("snapdir"), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteDirFS(cfs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDirFS(cfs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Disk.Tablespace, snap.Disk.Tablespace) ||
		!bytes.Equal(got.Disk.Binlog, snap.Disk.Binlog) {
		t.Error("key-holder read back different bytes")
	}
	// The analyst's view: same names and sizes, no plaintext.
	raw, err := mem.ReadFile(FileBinlog)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != len(snap.Disk.Binlog) {
		t.Errorf("ciphertext binlog %d bytes, plaintext %d — size leaks anyway, but must match", len(raw), len(snap.Disk.Binlog))
	}
	if len(snap.Disk.Binlog) > 0 && bytes.Contains(raw, []byte("INSERT")) {
		t.Error("statement text visible in encrypted snapshot dir")
	}
	if _, err := ReadDirFS(mem); err == nil {
		t.Error("ciphertext-only ReadDirFS succeeded — snapshot readable without the key")
	}
}
