package snapshot

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteReadDirRoundTrip(t *testing.T) {
	e := loadedEngine(t)
	snap := Capture(e, DiskTheft)
	dir := t.TempDir()
	if err := snap.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	// The directory looks like a data directory.
	for _, name := range []string{FileTablespace, FileRedo, FileUndo, FileBinlog, FileCatalog} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Disk.RedoLog, snap.Disk.RedoLog) {
		t.Error("redo log changed in round trip")
	}
	if !bytes.Equal(got.Disk.Binlog, snap.Disk.Binlog) {
		t.Error("binlog changed in round trip")
	}
	if !bytes.Equal(got.Disk.Tablespace, snap.Disk.Tablespace) {
		t.Error("tablespace changed in round trip")
	}
	if len(got.Disk.Catalog) != len(snap.Disk.Catalog) {
		t.Errorf("catalog entries = %d, want %d", len(got.Disk.Catalog), len(snap.Disk.Catalog))
	}
	for id, schema := range snap.Disk.Catalog {
		gs, ok := got.Disk.Catalog[id]
		if !ok || gs.Name != schema.Name || len(gs.Columns) != len(schema.Columns) {
			t.Errorf("catalog[%d] = %+v, want %+v", id, gs, schema)
		}
	}
}

func TestWriteDirWithoutDiskState(t *testing.T) {
	s := &Snapshot{Attack: VMSnapshotLeak}
	if err := s.WriteDir(t.TempDir()); err == nil {
		t.Error("nil disk state accepted")
	}
}

func TestReadDirMissingRequiredFiles(t *testing.T) {
	if _, err := ReadDir(t.TempDir()); err == nil {
		t.Error("empty directory accepted")
	}
}

func TestReadDirToleratesMissingOptionalFiles(t *testing.T) {
	e := loadedEngine(t)
	snap := Capture(e, DiskTheft)
	dir := t.TempDir()
	if err := snap.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	for _, optional := range []string{FileGeneralLog, FileSlowLog, FileBufferPool, FileCatalog, FileBinlog} {
		if err := os.Remove(filepath.Join(dir, optional)); err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("missing optional files not tolerated: %v", err)
	}
	if len(got.Disk.RedoLog) == 0 {
		t.Error("required files lost")
	}
}

func TestReadDirRejectsCorruptCatalog(t *testing.T) {
	e := loadedEngine(t)
	dir := t.TempDir()
	if err := Capture(e, DiskTheft).WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, FileCatalog), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir); err == nil {
		t.Error("corrupt catalog accepted")
	}
}
