package snapshot

import (
	"bytes"
	"strings"
	"testing"

	"snapdb/internal/engine"
)

func loadedEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	e.Clock = func() int64 { return 1_700_000_000 }
	s := e.Connect("app")
	for _, q := range []string{
		"CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance INT)",
		"INSERT INTO accounts (id, owner, balance) VALUES (1, 'alice', 100)",
		"INSERT INTO accounts (id, owner, balance) VALUES (2, 'bob', 250)",
		"UPDATE accounts SET balance = 175 WHERE id = 2",
		"SELECT owner FROM accounts WHERE id = 1",
	} {
		if _, err := s.Execute(q); err != nil {
			t.Fatalf("Execute(%q): %v", q, err)
		}
	}
	return e
}

func TestFigure1Matrix(t *testing.T) {
	want := map[AttackType]Components{
		DiskTheft:      {Logs: true},
		SQLInjection:   {Logs: true, Diagnostics: true},
		VMSnapshotLeak: {Logs: true, Diagnostics: true, Memory: true},
		FullCompromise: {Logs: true, Diagnostics: true, Memory: true},
	}
	for _, a := range AllAttacks {
		if got := a.Reveals(); got != want[a] {
			t.Errorf("%v reveals %+v, want %+v", a, got, want[a])
		}
	}
}

func TestCaptureDiskTheft(t *testing.T) {
	e := loadedEngine(t)
	s := Capture(e, DiskTheft)
	if s.Disk == nil {
		t.Fatal("disk theft yielded no disk state")
	}
	if s.Diagnostics != nil || s.Memory != nil {
		t.Error("disk theft yielded volatile state")
	}
	if len(s.Disk.RedoLog) == 0 || len(s.Disk.UndoLog) == 0 {
		t.Error("WAL images empty")
	}
	if !bytes.Contains(s.Disk.Binlog, []byte("alice")) {
		t.Error("binlog image missing insert literal")
	}
	if len(s.Disk.Tablespace) == 0 {
		t.Error("tablespace image empty")
	}
}

func TestCaptureSQLInjection(t *testing.T) {
	e := loadedEngine(t)
	s := Capture(e, SQLInjection)
	if s.Disk == nil || s.Diagnostics == nil {
		t.Fatal("SQLi must yield logs and diagnostics")
	}
	if s.Memory != nil {
		t.Error("SQLi yielded memory state")
	}
	var sawSelect bool
	for _, ev := range s.Diagnostics.History {
		if strings.Contains(ev.Statement, "SELECT owner FROM accounts") {
			sawSelect = true
		}
	}
	if !sawSelect {
		t.Error("diagnostics missing the past SELECT")
	}
	if s.Diagnostics.HistorySize != 10 {
		t.Errorf("history size = %d", s.Diagnostics.HistorySize)
	}
}

func TestCaptureFullCompromise(t *testing.T) {
	e := loadedEngine(t)
	s := Capture(e, FullCompromise)
	if s.Disk == nil || s.Diagnostics == nil || s.Memory == nil {
		t.Fatal("full compromise must yield everything")
	}
	if !bytes.Contains(s.Memory.HeapImage, []byte("SELECT owner FROM accounts WHERE id = 1")) {
		t.Error("heap image missing past query text")
	}
	if len(s.Memory.QueryCache) == 0 {
		t.Error("query cache empty in memory state")
	}
	if len(s.Memory.BufferLRU) == 0 || len(s.Memory.HotPages) == 0 {
		t.Error("buffer pool state missing")
	}
	if s.Memory.EngineLSN == 0 {
		t.Error("engine LSN missing")
	}
}

func TestAttackStrings(t *testing.T) {
	for _, a := range AllAttacks {
		if strings.HasPrefix(a.String(), "AttackType(") {
			t.Errorf("missing name for %d", int(a))
		}
	}
	if !strings.HasPrefix(AttackType(99).String(), "AttackType(") {
		t.Error("unknown attack type should render numerically")
	}
}

func TestSnapshotIsStatic(t *testing.T) {
	// A snapshot must be an independent copy: later engine activity
	// must not alter it.
	e := loadedEngine(t)
	s1 := Capture(e, FullCompromise)
	binlogLen := len(s1.Disk.Binlog)
	sess := e.Connect("later")
	if _, err := sess.Execute("INSERT INTO accounts (id, owner, balance) VALUES (3, 'carol', 1)"); err != nil {
		t.Fatal(err)
	}
	if len(s1.Disk.Binlog) != binlogLen {
		t.Error("snapshot binlog changed after capture")
	}
}
