package snapshot

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"snapdb/internal/engine"
	"snapdb/internal/forensics"
	"snapdb/internal/vfs"
)

// Disk-snapshot file names, mirroring a MySQL data directory: the
// tablespace, the transaction logs, the binlog, the query logs, the
// buffer-pool dump, and the schema files (MySQL's .frm files — table
// structure lives on disk in the clear, which is why forensic
// reconstruction never lacks column names).
const (
	FileTablespace = "tablespace.ibd"
	FileRedo       = "ib_logfile_redo"
	FileUndo       = "ib_logfile_undo"
	FileBinlog     = "binlog.000001"
	FileGeneralLog = "general.log"
	FileSlowLog    = "slow.log"
	FileBufferPool = "ib_buffer_pool"
	FileCatalog    = "schema.frm.json"
)

// CatalogOf extracts the forensic catalog (WAL table id → schema) from
// an engine, the information a real attacker reads out of the schema
// files on the stolen disk.
func CatalogOf(e *engine.Engine) forensics.Catalog {
	cat := make(forensics.Catalog)
	for _, t := range e.Tables() {
		cols := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			cols[i] = c.Name
		}
		cat[t.ID] = forensics.TableSchema{Name: t.Name, Columns: cols}
	}
	return cat
}

// WriteDir materializes the snapshot's persistent state as files in
// dir, creating it if needed — the literal contents of the stolen
// disk. Volatile state (diagnostics, memory) is deliberately not
// written: a disk holds only persistent artifacts.
func (s *Snapshot) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	fs, err := vfs.NewOSFS(dir)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return s.WriteDirFS(fs)
}

// WriteDirFS writes the snapshot's persistent state into fs. Each file
// lands crash-atomically (temp file, fsync, rename, directory fsync),
// so a crash mid-write leaves either the old file or the new one —
// never a torn hybrid. Files are written in sorted-name order for
// deterministic fault-injection replay.
func (s *Snapshot) WriteDirFS(fs vfs.FS) error {
	if s.Disk == nil {
		return fmt.Errorf("snapshot: %v reveals no disk state to write", s.Attack)
	}
	catJSON, err := json.MarshalIndent(s.Disk.Catalog, "", "  ")
	if err != nil {
		return fmt.Errorf("snapshot: encoding catalog: %w", err)
	}
	files := map[string][]byte{
		FileTablespace: s.Disk.Tablespace,
		FileRedo:       s.Disk.RedoLog,
		FileUndo:       s.Disk.UndoLog,
		FileBinlog:     s.Disk.Binlog,
		FileGeneralLog: []byte(s.Disk.GeneralLog),
		FileSlowLog:    []byte(s.Disk.SlowLog),
		FileBufferPool: s.Disk.BufferPoolDump,
		FileCatalog:    catJSON,
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := vfs.WriteFileAtomic(fs, name, files[name]); err != nil {
			return fmt.Errorf("snapshot: writing %s: %w", name, err)
		}
	}
	return nil
}

// ReadDir loads a disk snapshot previously written with WriteDir (or
// assembled by hand from stolen files). Missing optional files
// (query logs, buffer pool dump, catalog) are tolerated; the
// tablespace and logs must exist.
func ReadDir(dir string) (*Snapshot, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	fs, err := vfs.NewOSFS(dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return ReadDirFS(fs)
}

// ReadDirFS is ReadDir over any vfs.FS — in particular a vfs.CryptFS,
// which is how a key-holding operator restores an encrypted snapshot
// directory, and how E17 distinguishes the key-holder's view from the
// ciphertext-only analyst's (who reads the same files off the inner
// FS directly).
func ReadDirFS(fs vfs.FS) (*Snapshot, error) {
	read := func(name string, required bool) ([]byte, error) {
		b, err := fs.ReadFile(name)
		if err != nil {
			if os.IsNotExist(err) && !required {
				return nil, nil
			}
			return nil, fmt.Errorf("snapshot: reading %s: %w", name, err)
		}
		return b, nil
	}
	disk := &DiskState{}
	var err error
	if disk.Tablespace, err = read(FileTablespace, true); err != nil {
		return nil, err
	}
	if disk.RedoLog, err = read(FileRedo, true); err != nil {
		return nil, err
	}
	if disk.UndoLog, err = read(FileUndo, true); err != nil {
		return nil, err
	}
	if disk.Binlog, err = read(FileBinlog, false); err != nil {
		return nil, err
	}
	gen, err := read(FileGeneralLog, false)
	if err != nil {
		return nil, err
	}
	disk.GeneralLog = string(gen)
	slow, err := read(FileSlowLog, false)
	if err != nil {
		return nil, err
	}
	disk.SlowLog = string(slow)
	if disk.BufferPoolDump, err = read(FileBufferPool, false); err != nil {
		return nil, err
	}
	if catJSON, err := read(FileCatalog, false); err != nil {
		return nil, err
	} else if len(catJSON) > 0 {
		if err := json.Unmarshal(catJSON, &disk.Catalog); err != nil {
			return nil, fmt.Errorf("snapshot: parsing catalog: %w", err)
		}
	}
	return &Snapshot{Attack: DiskTheft, Disk: disk}, nil
}
