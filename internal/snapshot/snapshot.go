// Package snapshot implements the paper's Figure 1: the projection
// from "what kind of compromise happened" to "which DBMS artifacts the
// attacker now holds".
//
// A snapshot is a single static observation — the paper's whole point
// is that even this "weak" attacker obtains three classes of
// DBMS-specific data:
//
//   - Logs (persistent): WALs, binlog, query logs, buffer-pool dump —
//     §3 of the paper;
//   - Diagnostic tables (SQL-reachable): processlist and the
//     performance_schema statement tables — §4;
//   - In-memory data structures (volatile): the process heap, query
//     cache, buffer-pool LRU and access counters — §5.
//
// The four concrete attacks reveal different subsets, per Figure 1:
//
//	attack                  logs   diagnostics   memory
//	disk theft               ✓          –           –
//	SQL injection             ✓          ✓           –
//	VM snapshot leak          ✓          ✓           ✓
//	full-system compromise    ✓          ✓           ✓
package snapshot

import (
	"fmt"

	"snapdb/internal/bufpool"
	"snapdb/internal/dblog"
	"snapdb/internal/engine"
	"snapdb/internal/forensics"
	"snapdb/internal/infoschema"
	"snapdb/internal/perfschema"
	"snapdb/internal/querycache"
	"snapdb/internal/storage"
)

// AttackType is one of the paper's concrete snapshot attacks.
type AttackType int

// The concrete attacks of Figure 1.
const (
	DiskTheft AttackType = iota
	SQLInjection
	VMSnapshotLeak
	FullCompromise
)

func (a AttackType) String() string {
	switch a {
	case DiskTheft:
		return "disk theft"
	case SQLInjection:
		return "SQL injection"
	case VMSnapshotLeak:
		return "VM snapshot leak"
	case FullCompromise:
		return "full-system compromise"
	default:
		return fmt.Sprintf("AttackType(%d)", int(a))
	}
}

// Components flags which artifact classes an attack reveals.
type Components struct {
	Logs        bool // persistent: WAL, binlog, query logs, bufpool dump, data files
	Diagnostics bool // SQL-reachable: processlist, performance_schema
	Memory      bool // volatile: heap, query cache, buffer-pool state
}

// Reveals returns the Figure 1 row for this attack.
func (a AttackType) Reveals() Components {
	switch a {
	case DiskTheft:
		return Components{Logs: true}
	case SQLInjection:
		return Components{Logs: true, Diagnostics: true}
	case VMSnapshotLeak, FullCompromise:
		return Components{Logs: true, Diagnostics: true, Memory: true}
	default:
		return Components{}
	}
}

// AllAttacks lists the four attacks in Figure 1 order.
var AllAttacks = []AttackType{DiskTheft, SQLInjection, VMSnapshotLeak, FullCompromise}

// DiskState is the persistent state: the literal file images an
// attacker copies off the disk.
type DiskState struct {
	Tablespace     []byte // data files (possibly at-rest encrypted)
	RedoLog        []byte
	UndoLog        []byte
	Binlog         []byte
	GeneralLog     string
	SlowLog        string
	BufferPoolDump []byte // last periodic/shutdown dump, nil if never written
	// Catalog is the schema metadata that lives on disk in the clear
	// (MySQL's .frm files): table structure is never encrypted payload.
	Catalog forensics.Catalog
}

// DiagnosticState is what SQL access to the diagnostic tables returns.
type DiagnosticState struct {
	Processlist   []infoschema.Process
	Current       []perfschema.StatementEvent
	History       []perfschema.StatementEvent
	DigestSummary []perfschema.DigestRow
	HistorySize   int
}

// MemoryState is the volatile process state a whole-system snapshot
// captures.
type MemoryState struct {
	HeapImage  []byte
	QueryCache []querycache.Entry
	BufferLRU  []storage.PageID
	HotPages   []bufpool.PageAccess
	EngineLSN  uint64
}

// Snapshot is one static observation of a compromised DBMS.
type Snapshot struct {
	Attack      AttackType
	Disk        *DiskState       // nil unless Reveals().Logs
	Diagnostics *DiagnosticState // nil unless Reveals().Diagnostics
	Memory      *MemoryState     // nil unless Reveals().Memory
}

// Capture takes a snapshot of the engine under the given attack model.
func Capture(e *engine.Engine, attack AttackType) *Snapshot {
	s := &Snapshot{Attack: attack}
	rev := attack.Reveals()
	if rev.Logs {
		s.Disk = &DiskState{
			Tablespace:     e.Tablespace().Serialize(),
			RedoLog:        e.WAL().Redo.Serialize(),
			UndoLog:        e.WAL().Undo.Serialize(),
			Binlog:         e.Binlog().Serialize(),
			GeneralLog:     dblog.Render(e.GeneralLog().Entries()),
			SlowLog:        dblog.Render(e.SlowLog().Entries()),
			BufferPoolDump: e.LastBufferPoolDump(),
			Catalog:        CatalogOf(e),
		}
	}
	if rev.Diagnostics {
		s.Diagnostics = &DiagnosticState{
			Processlist:   e.Processlist().Snapshot(),
			Current:       e.PerfSchema().Current(),
			History:       e.PerfSchema().History(),
			DigestSummary: e.PerfSchema().DigestSummary(),
			HistorySize:   e.PerfSchema().HistorySize(),
		}
	}
	if rev.Memory {
		s.Memory = &MemoryState{
			HeapImage:  e.Arena().Dump(),
			QueryCache: e.QueryCache().Entries(),
			BufferLRU:  e.BufferPool().LRUOrder(),
			HotPages:   e.BufferPool().HotPages(),
			EngineLSN:  e.WAL().CurrentLSN(),
		}
	}
	return s
}
