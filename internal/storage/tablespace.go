package storage

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Tablespace is the page store backing one engine instance, the analog
// of InnoDB's ibdata/.ibd files. It lives in memory but serializes to a
// single byte image so disk snapshots carry the literal file content.
type Tablespace struct {
	mu    sync.RWMutex
	pages []*Page
	free  []PageID
}

// NewTablespace creates a tablespace containing only the header page.
func NewTablespace() *Tablespace {
	ts := &Tablespace{}
	ts.pages = append(ts.pages, NewPage(0, PageHeader))
	return ts
}

// Allocate returns a fresh (or recycled) page of the given type.
func (ts *Tablespace) Allocate(t PageType) *Page {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if n := len(ts.free); n > 0 {
		id := ts.free[n-1]
		ts.free = ts.free[:n-1]
		p := ts.pages[id]
		p.Format(id, t)
		return p
	}
	id := PageID(len(ts.pages))
	p := NewPage(id, t)
	ts.pages = append(ts.pages, p)
	return p
}

// Release returns a page to the freelist. Its bytes are kept intact
// until reallocation — freed-page residue is part of what a disk
// snapshot reveals.
func (ts *Tablespace) Release(id PageID) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if int(id) <= 0 || int(id) >= len(ts.pages) {
		return fmt.Errorf("storage: release of invalid page %d", id)
	}
	ts.pages[id].SetType(PageFree)
	ts.free = append(ts.free, id)
	return nil
}

// Get returns the page with the given id.
func (ts *Tablespace) Get(id PageID) (*Page, error) {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	if int(id) >= len(ts.pages) {
		return nil, fmt.Errorf("storage: page %d out of range (%d pages)", id, len(ts.pages))
	}
	return ts.pages[id], nil
}

// NumPages returns the number of allocated pages including the header.
func (ts *Tablespace) NumPages() int {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	return len(ts.pages)
}

// SerializedSize returns the size in bytes of Serialize's output.
func (ts *Tablespace) SerializedSize() int {
	return 8 + ts.NumPages()*PageSize
}

// Serialize renders the whole tablespace as one file image:
// u64 page count followed by raw pages in id order.
func (ts *Tablespace) Serialize() []byte {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	out := make([]byte, 8, 8+len(ts.pages)*PageSize)
	binary.BigEndian.PutUint64(out, uint64(len(ts.pages)))
	for _, p := range ts.pages {
		out = append(out, p.buf[:]...)
	}
	return out
}

// LoadTablespace reconstructs a tablespace from a Serialize image.
func LoadTablespace(img []byte) (*Tablespace, error) {
	if len(img) < 8 {
		return nil, fmt.Errorf("storage: tablespace image too short (%d bytes)", len(img))
	}
	n := binary.BigEndian.Uint64(img)
	want := 8 + int(n)*PageSize
	if len(img) != want {
		return nil, fmt.Errorf("storage: tablespace image is %d bytes, want %d for %d pages", len(img), want, n)
	}
	ts := &Tablespace{pages: make([]*Page, 0, n)}
	for i := 0; i < int(n); i++ {
		p, err := LoadPage(img[8+i*PageSize : 8+(i+1)*PageSize])
		if err != nil {
			return nil, err
		}
		ts.pages = append(ts.pages, p)
		if p.Type() == PageFree && i > 0 {
			ts.free = append(ts.free, PageID(i))
		}
	}
	if len(ts.pages) == 0 {
		ts.pages = append(ts.pages, NewPage(0, PageHeader))
	}
	return ts, nil
}
