package storage

import (
	"bytes"
	"testing"
	"testing/quick"

	"snapdb/internal/sqlparse"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{},
		{sqlparse.IntValue(42)},
		{sqlparse.StrValue("hello")},
		{sqlparse.IntValue(-7), sqlparse.StrValue("mixed"), sqlparse.IntValue(1 << 40)},
		{sqlparse.StrValue("")},
	}
	for _, r := range recs {
		enc := EncodeRecord(r)
		dec, n, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("DecodeRecord(%v): %v", r, err)
		}
		if n != len(enc) {
			t.Errorf("consumed %d of %d bytes", n, len(enc))
		}
		if !dec.Equal(r) {
			t.Errorf("round trip: got %v want %v", dec, r)
		}
	}
}

func TestDecodeRecordTruncated(t *testing.T) {
	enc := EncodeRecord(Record{sqlparse.StrValue("hello world")})
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeRecord(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRecordBadTag(t *testing.T) {
	enc := EncodeRecord(Record{sqlparse.IntValue(1)})
	enc[2] = 0x99
	if _, _, err := DecodeRecord(enc); err == nil {
		t.Error("bad tag accepted")
	}
}

func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(i int64, s string) bool {
		r := Record{sqlparse.IntValue(i), sqlparse.StrValue(s)}
		dec, _, err := DecodeRecord(EncodeRecord(r))
		return err == nil && dec.Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageInsertAndRead(t *testing.T) {
	p := NewPage(1, PageBTreeLeaf)
	rec := EncodeRecord(Record{sqlparse.IntValue(1), sqlparse.StrValue("alpha")})
	slot, err := p.InsertBytes(rec)
	if err != nil {
		t.Fatal(err)
	}
	got := p.SlotBytes(slot)
	if !bytes.Equal(got, rec) {
		t.Error("slot bytes differ from inserted record")
	}
	if p.ID() != 1 || p.Type() != PageBTreeLeaf {
		t.Errorf("header: id=%d type=%v", p.ID(), p.Type())
	}
}

func TestPageFillsUp(t *testing.T) {
	p := NewPage(1, PageBTreeLeaf)
	rec := EncodeRecord(Record{sqlparse.StrValue(string(make([]byte, 100)))})
	inserted := 0
	for {
		if _, err := p.InsertBytes(rec); err != nil {
			if err != ErrPageFull {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		inserted++
	}
	if inserted == 0 {
		t.Fatal("no records fit in an empty page")
	}
	// All inserted records are readable.
	for i := 0; i < inserted; i++ {
		if p.SlotBytes(i) == nil {
			t.Errorf("slot %d lost", i)
		}
	}
}

func TestPageDeleteLeavesResidue(t *testing.T) {
	p := NewPage(1, PageBTreeLeaf)
	marker := "FORENSIC-MARKER-STRING"
	rec := EncodeRecord(Record{sqlparse.StrValue(marker)})
	slot, err := p.InsertBytes(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.DeleteSlot(slot); err != nil {
		t.Fatal(err)
	}
	if p.SlotBytes(slot) != nil {
		t.Error("deleted slot still readable through the slot API")
	}
	// The raw page image must still contain the record bytes: this is
	// the disk-residue property the paper's §3 attacks rely on.
	if !bytes.Contains(p.Bytes(), []byte(marker)) {
		t.Error("deleted record bytes were scrubbed; expected residue")
	}
	p.Compact()
	if bytes.Contains(p.Bytes(), []byte(marker)) {
		t.Error("compaction left deleted-record residue")
	}
}

func TestPageUpdateInPlaceAndRelocate(t *testing.T) {
	p := NewPage(1, PageBTreeLeaf)
	slot, err := p.InsertBytes(EncodeRecord(Record{sqlparse.StrValue("long original value")}))
	if err != nil {
		t.Fatal(err)
	}
	short := EncodeRecord(Record{sqlparse.StrValue("tiny")})
	if err := p.UpdateSlot(slot, short); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.SlotBytes(slot), short) {
		t.Error("in-place update not visible")
	}
	long := EncodeRecord(Record{sqlparse.StrValue("a considerably longer replacement value")})
	if err := p.UpdateSlot(slot, long); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.SlotBytes(slot), long) {
		t.Error("relocating update not visible")
	}
}

func TestPageUpdateErrors(t *testing.T) {
	p := NewPage(1, PageBTreeLeaf)
	if err := p.UpdateSlot(0, []byte{1}); err == nil {
		t.Error("update of missing slot accepted")
	}
	slot, _ := p.InsertBytes(EncodeRecord(Record{sqlparse.IntValue(1)}))
	_ = p.DeleteSlot(slot)
	if err := p.UpdateSlot(slot, []byte{1}); err == nil {
		t.Error("update of deleted slot accepted")
	}
}

func TestPageLSN(t *testing.T) {
	p := NewPage(3, PageBTreeLeaf)
	p.SetLSN(0xDEADBEEF01)
	img := p.CloneBytes()
	q, err := LoadPage(img)
	if err != nil {
		t.Fatal(err)
	}
	if q.LSN() != 0xDEADBEEF01 {
		t.Errorf("LSN = %#x", q.LSN())
	}
}

func TestPageSiblingLink(t *testing.T) {
	p := NewPage(1, PageBTreeLeaf)
	if p.Next() != InvalidPage {
		t.Errorf("fresh page next = %d", p.Next())
	}
	p.SetNext(42)
	if p.Next() != 42 {
		t.Errorf("next = %d", p.Next())
	}
}

func TestLoadPageBadSize(t *testing.T) {
	if _, err := LoadPage(make([]byte, 100)); err == nil {
		t.Error("short page image accepted")
	}
}

func TestTablespaceAllocateGetRelease(t *testing.T) {
	ts := NewTablespace()
	p1 := ts.Allocate(PageBTreeLeaf)
	p2 := ts.Allocate(PageBTreeInternal)
	if p1.ID() == p2.ID() {
		t.Error("duplicate page ids")
	}
	got, err := ts.Get(p1.ID())
	if err != nil || got.ID() != p1.ID() {
		t.Fatalf("Get: %v", err)
	}
	if err := ts.Release(p1.ID()); err != nil {
		t.Fatal(err)
	}
	p3 := ts.Allocate(PageBTreeLeaf)
	if p3.ID() != p1.ID() {
		t.Errorf("freelist not recycled: got %d want %d", p3.ID(), p1.ID())
	}
}

func TestTablespaceReleaseInvalid(t *testing.T) {
	ts := NewTablespace()
	if err := ts.Release(0); err == nil {
		t.Error("releasing header page accepted")
	}
	if err := ts.Release(99); err == nil {
		t.Error("releasing unallocated page accepted")
	}
}

func TestTablespaceGetOutOfRange(t *testing.T) {
	ts := NewTablespace()
	if _, err := ts.Get(99); err == nil {
		t.Error("out-of-range Get accepted")
	}
}

func TestTablespaceSerializeRoundTrip(t *testing.T) {
	ts := NewTablespace()
	leaf := ts.Allocate(PageBTreeLeaf)
	if _, err := leaf.InsertBytes(EncodeRecord(Record{sqlparse.StrValue("persisted")})); err != nil {
		t.Fatal(err)
	}
	img := ts.Serialize()
	if len(img) != ts.SerializedSize() {
		t.Errorf("SerializedSize = %d, image = %d", ts.SerializedSize(), len(img))
	}
	ts2, err := LoadTablespace(img)
	if err != nil {
		t.Fatal(err)
	}
	if ts2.NumPages() != ts.NumPages() {
		t.Errorf("page count %d != %d", ts2.NumPages(), ts.NumPages())
	}
	p, err := ts2.Get(leaf.ID())
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := DecodeRecord(p.SlotBytes(0))
	if err != nil {
		t.Fatal(err)
	}
	if rec[0].Str != "persisted" {
		t.Errorf("record = %v", rec)
	}
}

func TestLoadTablespaceRejectsBadImages(t *testing.T) {
	if _, err := LoadTablespace(nil); err == nil {
		t.Error("nil image accepted")
	}
	if _, err := LoadTablespace(make([]byte, 8+PageSize/2)); err == nil {
		t.Error("misaligned image accepted")
	}
}

func TestLoadTablespaceRestoresFreelist(t *testing.T) {
	ts := NewTablespace()
	a := ts.Allocate(PageBTreeLeaf)
	_ = ts.Allocate(PageBTreeLeaf)
	if err := ts.Release(a.ID()); err != nil {
		t.Fatal(err)
	}
	ts2, err := LoadTablespace(ts.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	p := ts2.Allocate(PageBTreeLeaf)
	if p.ID() != a.ID() {
		t.Errorf("restored freelist not used: got page %d want %d", p.ID(), a.ID())
	}
}

func BenchmarkPageInsert(b *testing.B) {
	rec := EncodeRecord(Record{sqlparse.IntValue(7), sqlparse.StrValue("benchmark row")})
	b.ReportAllocs()
	p := NewPage(1, PageBTreeLeaf)
	for i := 0; i < b.N; i++ {
		if _, err := p.InsertBytes(rec); err == ErrPageFull {
			p.Format(1, PageBTreeLeaf)
		}
	}
}

func BenchmarkRecordEncode(b *testing.B) {
	r := Record{sqlparse.IntValue(7), sqlparse.StrValue("benchmark row value"), sqlparse.IntValue(12345)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeRecord(r)
	}
}
