package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Frame is the checksummed on-disk envelope for every log-structured
// file snapdb persists: WAL records, binlog events, the buffer-pool
// dump, and checkpoint sections. Layout:
//
//	u32 payload length | u32 CRC32-C of payload | payload
//
// The checksum lets a reader distinguish a torn tail (the file ends
// mid-frame: the write never completed) from corruption (the frame is
// whole but its bytes are wrong). Both stop the scan; neither may
// panic.

// FrameHeaderSize is the per-frame overhead in bytes.
const FrameHeaderSize = 8

// MaxFramePayload caps a single frame's payload. Anything larger in a
// length header is treated as corruption, bounding allocation when
// parsing hostile or damaged files.
const MaxFramePayload = 1 << 26

// ErrFrameTruncated reports a frame cut short by the end of the buffer:
// the tail of a file whose last write was torn.
var ErrFrameTruncated = errors.New("storage: truncated frame")

// ErrFrameCorrupt reports a structurally complete frame whose checksum
// or length header is invalid.
var ErrFrameCorrupt = errors.New("storage: corrupt frame")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends payload to dst wrapped in a frame and returns the
// extended slice.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [FrameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ReadFrame parses one frame from the front of b, returning the payload
// and the total bytes consumed (header + payload). A short buffer
// returns ErrFrameTruncated; a bad length or checksum returns
// ErrFrameCorrupt. The payload aliases b.
func ReadFrame(b []byte) (payload []byte, n int, err error) {
	if len(b) < FrameHeaderSize {
		return nil, 0, ErrFrameTruncated
	}
	plen := binary.BigEndian.Uint32(b[0:4])
	if plen > MaxFramePayload {
		return nil, 0, fmt.Errorf("%w: payload length %d exceeds cap", ErrFrameCorrupt, plen)
	}
	total := FrameHeaderSize + int(plen)
	if len(b) < total {
		return nil, 0, ErrFrameTruncated
	}
	payload = b[FrameHeaderSize:total]
	if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(b[4:8]) {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrFrameCorrupt)
	}
	return payload, total, nil
}
