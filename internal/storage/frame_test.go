package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)}
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	for i, want := range payloads {
		got, n, err := ReadFrame(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload %q != %q", i, got, want)
		}
		if n != FrameHeaderSize+len(want) {
			t.Fatalf("frame %d: consumed %d", i, n)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestFrameTruncated(t *testing.T) {
	full := AppendFrame(nil, []byte("payload"))
	for cut := 0; cut < len(full); cut++ {
		_, _, err := ReadFrame(full[:cut])
		if !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("cut at %d: err = %v, want truncated", cut, err)
		}
	}
}

func TestFrameCorrupt(t *testing.T) {
	full := AppendFrame(nil, []byte("payload"))
	// Flip one bit in every byte position; header-length flips may read
	// as truncation (length grew) — payload and checksum flips must be
	// corruption.
	for i := 4; i < len(full); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x01
		_, _, err := ReadFrame(mut)
		if !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("flip at %d: err = %v, want corrupt", i, err)
		}
	}
}

func TestFrameInsaneLength(t *testing.T) {
	var b [FrameHeaderSize]byte
	binary.BigEndian.PutUint32(b[0:4], MaxFramePayload+1)
	_, _, err := ReadFrame(b[:])
	if !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("err = %v, want corrupt", err)
	}
}
