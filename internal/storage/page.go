package storage

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the fixed page size. Smaller than InnoDB's 16 KiB to keep
// simulated workloads fast, but large enough that B+tree fanout and
// buffer-pool behaviour are realistic.
const PageSize = 4096

// PageID identifies a page within a tablespace. Page 0 is the
// tablespace header and never holds records.
type PageID uint32

// InvalidPage is the nil page reference.
const InvalidPage PageID = 0xFFFFFFFF

// PageType tags what a page stores.
type PageType uint8

// Page types.
const (
	PageFree PageType = iota
	PageBTreeLeaf
	PageBTreeInternal
	PageHeader
)

func (t PageType) String() string {
	switch t {
	case PageFree:
		return "free"
	case PageBTreeLeaf:
		return "leaf"
	case PageBTreeInternal:
		return "internal"
	case PageHeader:
		return "header"
	default:
		return fmt.Sprintf("PageType(%d)", uint8(t))
	}
}

// Page header layout (bytes):
//
//	 0..3   PageID
//	 4      PageType
//	 5..6   slot count
//	 7..8   free-space offset (start of unallocated area)
//	 9..16  page LSN (LSN of last modification, for recovery ordering)
//	17..20  next-page pointer (leaf sibling link, or freelist next)
//
// Slot directory grows down from the end of the page: each slot is a
// u16 offset + u16 length of a record within the page; length 0 marks a
// deleted slot.
const (
	pageHeaderSize = 21
	slotSize       = 4
)

// Page is one fixed-size page with typed accessors over its raw bytes.
// The raw bytes are the authoritative state: snapshots copy them
// directly, and forensics re-parses them.
type Page struct {
	buf [PageSize]byte
}

// NewPage initializes a page in place.
func NewPage(id PageID, t PageType) *Page {
	p := &Page{}
	p.Format(id, t)
	return p
}

// Format resets the page to empty with the given identity.
func (p *Page) Format(id PageID, t PageType) {
	for i := range p.buf {
		p.buf[i] = 0
	}
	binary.BigEndian.PutUint32(p.buf[0:], uint32(id))
	p.buf[4] = byte(t)
	p.setSlotCount(0)
	p.setFreeOffset(pageHeaderSize)
	p.SetNext(InvalidPage)
}

// ID returns the page id stored in the header.
func (p *Page) ID() PageID { return PageID(binary.BigEndian.Uint32(p.buf[0:])) }

// Type returns the page type.
func (p *Page) Type() PageType { return PageType(p.buf[4]) }

// SetType changes the page type tag.
func (p *Page) SetType(t PageType) { p.buf[4] = byte(t) }

// SlotCount returns the number of slots, including deleted ones.
func (p *Page) SlotCount() int { return int(binary.BigEndian.Uint16(p.buf[5:])) }

func (p *Page) setSlotCount(n int) { binary.BigEndian.PutUint16(p.buf[5:], uint16(n)) }

func (p *Page) freeOffset() int { return int(binary.BigEndian.Uint16(p.buf[7:])) }

func (p *Page) setFreeOffset(off int) { binary.BigEndian.PutUint16(p.buf[7:], uint16(off)) }

// LSN returns the page LSN (last-modification log sequence number).
func (p *Page) LSN() uint64 { return binary.BigEndian.Uint64(p.buf[9:]) }

// SetLSN stamps the page with the LSN of its latest mutation.
func (p *Page) SetLSN(lsn uint64) { binary.BigEndian.PutUint64(p.buf[9:], lsn) }

// Next returns the sibling/freelist link.
func (p *Page) Next() PageID { return PageID(binary.BigEndian.Uint32(p.buf[17:])) }

// SetNext sets the sibling/freelist link.
func (p *Page) SetNext(id PageID) { binary.BigEndian.PutUint32(p.buf[17:], uint32(id)) }

func (p *Page) slotPos(i int) int { return PageSize - (i+1)*slotSize }

func (p *Page) slot(i int) (off, length int) {
	pos := p.slotPos(i)
	return int(binary.BigEndian.Uint16(p.buf[pos:])), int(binary.BigEndian.Uint16(p.buf[pos+2:]))
}

func (p *Page) setSlot(i, off, length int) {
	pos := p.slotPos(i)
	binary.BigEndian.PutUint16(p.buf[pos:], uint16(off))
	binary.BigEndian.PutUint16(p.buf[pos+2:], uint16(length))
}

// FreeSpace returns the bytes available for one more insert (accounting
// for its slot entry).
func (p *Page) FreeSpace() int {
	free := p.slotPos(p.SlotCount()) - p.freeOffset()
	if free < slotSize {
		return 0
	}
	return free - slotSize
}

// ErrPageFull is returned when an insert does not fit.
var ErrPageFull = fmt.Errorf("storage: page full")

// InsertBytes appends raw record bytes to the page and returns the slot
// index.
func (p *Page) InsertBytes(rec []byte) (int, error) {
	if len(rec) > p.FreeSpace() {
		return 0, ErrPageFull
	}
	off := p.freeOffset()
	copy(p.buf[off:], rec)
	slot := p.SlotCount()
	p.setSlot(slot, off, len(rec))
	p.setSlotCount(slot + 1)
	p.setFreeOffset(off + len(rec))
	return slot, nil
}

// SlotBytes returns the raw bytes of slot i, or nil if the slot is
// deleted or out of range.
func (p *Page) SlotBytes(i int) []byte {
	if i < 0 || i >= p.SlotCount() {
		return nil
	}
	off, length := p.slot(i)
	if length == 0 {
		return nil
	}
	return p.buf[off : off+length]
}

// DeleteSlot marks slot i deleted. The record bytes stay in the page
// body until compaction — exactly the residue a disk forensic relies on.
func (p *Page) DeleteSlot(i int) error {
	if i < 0 || i >= p.SlotCount() {
		return fmt.Errorf("storage: slot %d out of range (count %d)", i, p.SlotCount())
	}
	off, _ := p.slot(i)
	p.setSlot(i, off, 0)
	return nil
}

// UpdateSlot replaces the record in slot i. If the new bytes fit in the
// old space they are written in place; otherwise the record is appended
// and the slot repointed, leaving the stale bytes behind (again, residue
// by design — this mirrors real slotted-page engines).
func (p *Page) UpdateSlot(i int, rec []byte) error {
	if i < 0 || i >= p.SlotCount() {
		return fmt.Errorf("storage: slot %d out of range (count %d)", i, p.SlotCount())
	}
	off, length := p.slot(i)
	if length == 0 {
		return fmt.Errorf("storage: slot %d is deleted", i)
	}
	if len(rec) <= length {
		copy(p.buf[off:], rec)
		p.setSlot(i, off, len(rec))
		return nil
	}
	if len(rec) > p.FreeSpace() {
		return ErrPageFull
	}
	newOff := p.freeOffset()
	copy(p.buf[newOff:], rec)
	p.setSlot(i, newOff, len(rec))
	p.setFreeOffset(newOff + len(rec))
	return nil
}

// Compact rewrites live records contiguously, discarding deleted-record
// residue. The engine runs this only when a page overflows, matching the
// lazy reclamation of production engines.
func (p *Page) Compact() {
	type live struct {
		slot int
		data []byte
	}
	var recs []live
	for i := 0; i < p.SlotCount(); i++ {
		if b := p.SlotBytes(i); b != nil {
			recs = append(recs, live{i, append([]byte(nil), b...)})
		}
	}
	off := pageHeaderSize
	// Zero the body so compaction really destroys residue.
	for i := pageHeaderSize; i < p.slotPos(p.SlotCount()-1); i++ {
		p.buf[i] = 0
	}
	for _, r := range recs {
		copy(p.buf[off:], r.data)
		p.setSlot(r.slot, off, len(r.data))
		off += len(r.data)
	}
	p.setFreeOffset(off)
}

// Bytes returns the raw page image. Mutating the result mutates the page.
func (p *Page) Bytes() []byte { return p.buf[:] }

// CloneBytes returns a copy of the raw page image.
func (p *Page) CloneBytes() []byte {
	out := make([]byte, PageSize)
	copy(out, p.buf[:])
	return out
}

// LoadPage reconstructs a Page from a raw image.
func LoadPage(img []byte) (*Page, error) {
	if len(img) != PageSize {
		return nil, fmt.Errorf("storage: page image is %d bytes, want %d", len(img), PageSize)
	}
	p := &Page{}
	copy(p.buf[:], img)
	return p, nil
}
