// Package storage implements the on-disk format of the snapdb engine:
// fixed-size slotted pages, record encoding, and the tablespace file
// that holds them. The format is deliberately byte-addressable and
// self-describing so that the forensics package can reconstruct records
// from raw page and WAL bytes, the way InnoDB forensics tools do.
package storage

import (
	"encoding/binary"
	"fmt"

	"snapdb/internal/sqlparse"
)

// Record is one table row: the values in schema column order.
type Record []sqlparse.Value

// fieldTag distinguishes value kinds in the encoding.
const (
	tagInt  byte = 0x01
	tagText byte = 0x02
)

// EncodeRecord serializes a record. Layout:
//
//	u16 fieldCount, then per field: tag byte, then
//	  int:  8-byte big-endian two's complement
//	  text: u32 length + bytes
//
// The encoding is length-prefixed so a forensic scan can re-parse
// records found at arbitrary offsets in log or page bytes.
func EncodeRecord(r Record) []byte {
	size := 2
	for _, v := range r {
		if v.IsInt {
			size += 1 + 8
		} else {
			size += 1 + 4 + len(v.Str)
		}
	}
	out := make([]byte, 0, size)
	out = binary.BigEndian.AppendUint16(out, uint16(len(r)))
	for _, v := range r {
		if v.IsInt {
			out = append(out, tagInt)
			out = binary.BigEndian.AppendUint64(out, uint64(v.Int))
		} else {
			out = append(out, tagText)
			out = binary.BigEndian.AppendUint32(out, uint32(len(v.Str)))
			out = append(out, v.Str...)
		}
	}
	return out
}

// DecodeRecord parses a record produced by EncodeRecord and returns the
// record plus the number of bytes consumed.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < 2 {
		return nil, 0, fmt.Errorf("storage: record truncated (len %d)", len(b))
	}
	n := int(binary.BigEndian.Uint16(b))
	pos := 2
	rec := make(Record, 0, n)
	for i := 0; i < n; i++ {
		if pos >= len(b) {
			return nil, 0, fmt.Errorf("storage: record field %d truncated", i)
		}
		tag := b[pos]
		pos++
		switch tag {
		case tagInt:
			if pos+8 > len(b) {
				return nil, 0, fmt.Errorf("storage: int field %d truncated", i)
			}
			rec = append(rec, sqlparse.IntValue(int64(binary.BigEndian.Uint64(b[pos:]))))
			pos += 8
		case tagText:
			if pos+4 > len(b) {
				return nil, 0, fmt.Errorf("storage: text length of field %d truncated", i)
			}
			l := int(binary.BigEndian.Uint32(b[pos:]))
			pos += 4
			if pos+l > len(b) {
				return nil, 0, fmt.Errorf("storage: text field %d truncated (want %d bytes)", i, l)
			}
			rec = append(rec, sqlparse.StrValue(string(b[pos:pos+l])))
			pos += l
		default:
			return nil, 0, fmt.Errorf("storage: unknown field tag 0x%02x in field %d", tag, i)
		}
	}
	return rec, pos, nil
}

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	out := make(Record, len(r))
	copy(out, r)
	return out
}

// Equal reports whether two records hold the same values.
func (r Record) Equal(o Record) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}
