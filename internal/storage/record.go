// Package storage implements the on-disk format of the snapdb engine:
// fixed-size slotted pages, record encoding, and the tablespace file
// that holds them. The format is deliberately byte-addressable and
// self-describing so that the forensics package can reconstruct records
// from raw page and WAL bytes, the way InnoDB forensics tools do.
package storage

import (
	"encoding/binary"
	"fmt"

	"snapdb/internal/sqlparse"
)

// Record is one table row: the values in schema column order.
type Record []sqlparse.Value

// fieldTag distinguishes value kinds in the encoding.
const (
	tagInt  byte = 0x01
	tagText byte = 0x02
)

// RecordSize returns the encoded size of r without encoding it. The
// WAL sizes every log record (LSNs are byte offsets) before deciding
// whether to encode at all, so this must not allocate.
func RecordSize(r Record) int {
	size := 2
	for _, v := range r {
		if v.IsInt {
			size += 1 + 8
		} else {
			size += 1 + 4 + len(v.Str)
		}
	}
	return size
}

// EncodeRecord serializes a record. Layout:
//
//	u16 fieldCount, then per field: tag byte, then
//	  int:  8-byte big-endian two's complement
//	  text: u32 length + bytes
//
// The encoding is length-prefixed so a forensic scan can re-parse
// records found at arbitrary offsets in log or page bytes.
func EncodeRecord(r Record) []byte {
	return AppendRecord(make([]byte, 0, RecordSize(r)), r)
}

// AppendRecord appends r's encoding to dst and returns the extended
// slice — the allocation-free form of EncodeRecord for callers that
// batch many records into one (pooled) buffer.
func AppendRecord(dst []byte, r Record) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r)))
	for _, v := range r {
		if v.IsInt {
			dst = append(dst, tagInt)
			dst = binary.BigEndian.AppendUint64(dst, uint64(v.Int))
		} else {
			dst = append(dst, tagText)
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(v.Str)))
			dst = append(dst, v.Str...)
		}
	}
	return dst
}

// DecodeRecord parses a record produced by EncodeRecord and returns the
// record plus the number of bytes consumed.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < 2 {
		return nil, 0, fmt.Errorf("storage: record truncated (len %d)", len(b))
	}
	n := int(binary.BigEndian.Uint16(b))
	pos := 2
	rec := make(Record, 0, n)
	for i := 0; i < n; i++ {
		if pos >= len(b) {
			return nil, 0, fmt.Errorf("storage: record field %d truncated", i)
		}
		tag := b[pos]
		pos++
		switch tag {
		case tagInt:
			if pos+8 > len(b) {
				return nil, 0, fmt.Errorf("storage: int field %d truncated", i)
			}
			rec = append(rec, sqlparse.IntValue(int64(binary.BigEndian.Uint64(b[pos:]))))
			pos += 8
		case tagText:
			if pos+4 > len(b) {
				return nil, 0, fmt.Errorf("storage: text length of field %d truncated", i)
			}
			l := int(binary.BigEndian.Uint32(b[pos:]))
			pos += 4
			if pos+l > len(b) {
				return nil, 0, fmt.Errorf("storage: text field %d truncated (want %d bytes)", i, l)
			}
			rec = append(rec, sqlparse.StrValue(string(b[pos:pos+l])))
			pos += l
		default:
			return nil, 0, fmt.Errorf("storage: unknown field tag 0x%02x in field %d", tag, i)
		}
	}
	return rec, pos, nil
}

// DecodeKey decodes only the first field of an encoded record — the
// clustered-index key — without materializing the rest. The B+ tree
// read path key-filters every slot in a leaf before paying for a full
// DecodeRecord, so for int keys this must not allocate.
func DecodeKey(b []byte) (sqlparse.Value, error) {
	if len(b) < 2 {
		return sqlparse.Value{}, fmt.Errorf("storage: record truncated (len %d)", len(b))
	}
	if binary.BigEndian.Uint16(b) == 0 {
		return sqlparse.Value{}, fmt.Errorf("storage: record has no fields")
	}
	if len(b) < 3 {
		return sqlparse.Value{}, fmt.Errorf("storage: record field 0 truncated")
	}
	pos := 3
	switch b[2] {
	case tagInt:
		if pos+8 > len(b) {
			return sqlparse.Value{}, fmt.Errorf("storage: int field 0 truncated")
		}
		return sqlparse.IntValue(int64(binary.BigEndian.Uint64(b[pos:]))), nil
	case tagText:
		if pos+4 > len(b) {
			return sqlparse.Value{}, fmt.Errorf("storage: text length of field 0 truncated")
		}
		l := int(binary.BigEndian.Uint32(b[pos:]))
		pos += 4
		if pos+l > len(b) {
			return sqlparse.Value{}, fmt.Errorf("storage: text field 0 truncated (want %d bytes)", l)
		}
		return sqlparse.StrValue(string(b[pos : pos+l])), nil
	default:
		return sqlparse.Value{}, fmt.Errorf("storage: unknown field tag 0x%02x in field 0", b[2])
	}
}

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	out := make(Record, len(r))
	copy(out, r)
	return out
}

// Equal reports whether two records hold the same values.
func (r Record) Equal(o Record) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}
