// Package netfault implements seeded, deterministic fault injection
// for the network layer: net.Conn and net.Listener wrappers that
// consult a failpoint registry before every read, write, and accept —
// the wire analog of internal/vfs.FaultFS.
//
// Point names are "netread:<label>", "netwrite:<label>", and
// "accept:<label>", so a harness can target one direction of one
// server's traffic ("netwrite:srv=partial@7") or everything ("*").
// The supported kinds are the network members of failpoint.Kind:
//
//   - reset: close the connection and fail the operation (a TCP RST);
//   - partial: deliver a seeded prefix of a write, then reset;
//   - latency: delay the operation a seeded duration, then perform it;
//   - blackhole: a read hangs silently for the configured hold, then
//     resets (the dropped-route failure mode);
//   - err: fail the operation without closing (a transient EIO-like
//     error), mostly useful on accept.
//
// Determinism mirrors the storage harness: all randomness (partial
// lengths, latency durations) comes from the registry's seeded
// generator, and rule hit counts give a reproducible fault schedule
// for a serial workload. What stays nondeterministic is goroutine
// interleaving across connections — the network-torture harness
// therefore asserts invariants (exactly-once application, digest
// equality) rather than exact traces.
package netfault

import (
	"errors"
	"net"
	"time"

	"snapdb/internal/failpoint"
)

// ErrInjectedReset is the error surfaced by operations failed via
// reset, partial, or blackhole faults. The underlying connection is
// closed first, so the peer observes a real connection teardown.
var ErrInjectedReset = errors.New("netfault: injected connection reset")

// Config parameterizes the wrappers.
type Config struct {
	// Reg is the failpoint registry driving injection. Required.
	Reg *failpoint.Registry
	// Label is the point-name suffix ("netread:<label>"); it defaults
	// to "conn" so a single-server harness can arm "netwrite:conn".
	Label string
	// LatencyMax caps one injected latency sleep; the seeded duration
	// is uniform in (0, LatencyMax]. Default 2ms.
	LatencyMax time.Duration
	// Hold is how long a blackholed read stays silent before the
	// connection resets. Default 25ms.
	Hold time.Duration
}

func (c Config) normalized() Config {
	if c.Label == "" {
		c.Label = "conn"
	}
	if c.LatencyMax <= 0 {
		c.LatencyMax = 2 * time.Millisecond
	}
	if c.Hold <= 0 {
		c.Hold = 25 * time.Millisecond
	}
	return c
}

// Listener wraps a net.Listener: accepted connections are wrapped in
// fault-injecting Conns, and the accept path itself can fault.
type Listener struct {
	ln  net.Listener
	cfg Config
}

// WrapListener wraps ln with fault injection driven by cfg.Reg.
func WrapListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{ln: ln, cfg: cfg.normalized()}
}

// Accept implements net.Listener. An armed accept fault applies to the
// next accepted connection: reset closes it immediately after the
// handshake (the client sees its first operation fail), latency delays
// the accept, err fails the Accept call without a connection.
func (l *Listener) Accept() (net.Conn, error) {
	kind, fired := l.cfg.Reg.Eval("accept:" + l.cfg.Label)
	if fired && kind == failpoint.KindErr {
		return nil, failpoint.ErrInjected
	}
	if fired && kind == failpoint.KindLatency {
		time.Sleep(l.cfg.seededLatency())
	}
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	if fired && (kind == failpoint.KindReset || kind == failpoint.KindPartial || kind == failpoint.KindBlackhole) {
		_ = c.Close()
	}
	return WrapConn(c, l.cfg), nil
}

// Close implements net.Listener.
func (l *Listener) Close() error { return l.ln.Close() }

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Conn wraps a net.Conn with read/write fault injection.
type Conn struct {
	net.Conn
	cfg Config
}

// WrapConn wraps c with fault injection driven by cfg.Reg.
func WrapConn(c net.Conn, cfg Config) *Conn {
	return &Conn{Conn: c, cfg: cfg.normalized()}
}

// seededLatency draws one latency duration from the registry.
func (c Config) seededLatency() time.Duration {
	return time.Duration(c.Reg.Intn(int(c.LatencyMax))) + 1
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	kind, fired := c.cfg.Reg.Eval("netread:" + c.cfg.Label)
	if fired {
		switch kind {
		case failpoint.KindReset, failpoint.KindPartial:
			_ = c.Conn.Close()
			return 0, ErrInjectedReset
		case failpoint.KindBlackhole:
			// The route silently drops packets: nothing arrives for the
			// hold, then the connection is torn down. Peers blocked on
			// their own reads of this conn see the teardown too.
			time.Sleep(c.cfg.Hold)
			_ = c.Conn.Close()
			return 0, ErrInjectedReset
		case failpoint.KindErr:
			return 0, failpoint.ErrInjected
		case failpoint.KindLatency:
			time.Sleep(c.cfg.seededLatency())
		}
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	kind, fired := c.cfg.Reg.Eval("netwrite:" + c.cfg.Label)
	if fired {
		switch kind {
		case failpoint.KindReset, failpoint.KindBlackhole:
			_ = c.Conn.Close()
			return 0, ErrInjectedReset
		case failpoint.KindPartial:
			n := 0
			if len(p) > 0 {
				n = c.cfg.Reg.Intn(len(p))
			}
			if n > 0 {
				if _, err := c.Conn.Write(p[:n]); err != nil {
					_ = c.Conn.Close()
					return 0, err
				}
			}
			_ = c.Conn.Close()
			return n, ErrInjectedReset
		case failpoint.KindErr:
			return 0, failpoint.ErrInjected
		case failpoint.KindLatency:
			time.Sleep(c.cfg.seededLatency())
		}
	}
	return c.Conn.Write(p)
}
