package netfault

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"snapdb/internal/failpoint"
)

// pipe returns a wrapped client end and the raw server end of an
// in-memory connection.
func pipe(t *testing.T, reg *failpoint.Registry) (*Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
	return WrapConn(a, Config{Reg: reg, Label: "t"}), b
}

func TestPassthroughWhenUnarmed(t *testing.T) {
	reg := failpoint.New(1)
	c, peer := pipe(t, reg)
	go func() {
		buf := make([]byte, 5)
		if _, err := io.ReadFull(peer, buf); err == nil {
			_, _ = peer.Write(buf)
		}
	}()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != "hello" {
		t.Fatalf("echoed %q", buf)
	}
}

func TestResetOnWrite(t *testing.T) {
	reg := failpoint.New(1)
	reg.Arm("netwrite:t", failpoint.KindReset, 1)
	c, peer := pipe(t, reg)
	if _, err := c.Write([]byte("doomed")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want injected reset, got %v", err)
	}
	// The peer observes the teardown.
	_ = peer.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := peer.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after reset")
	}
}

func TestPartialWriteDeliversPrefix(t *testing.T) {
	reg := failpoint.New(7)
	reg.Arm("netwrite:t", failpoint.KindPartial, 1)
	c, peer := pipe(t, reg)
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 64)
		n, _ := peer.Read(buf) // the prefix, then the close
		got <- buf[:n]
	}()
	payload := []byte("0123456789abcdef0123456789abcdef")
	n, err := c.Write(payload)
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want injected reset, got %v", err)
	}
	if n >= len(payload) {
		t.Fatalf("partial write delivered everything (n=%d)", n)
	}
	select {
	case prefix := <-got:
		if string(prefix) != string(payload[:len(prefix)]) {
			t.Fatalf("peer saw %q, not a prefix of %q", prefix, payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer never observed the prefix")
	}
}

func TestBlackholedReadHoldsThenResets(t *testing.T) {
	reg := failpoint.New(1)
	reg.Arm("netread:t", failpoint.KindBlackhole, 1)
	c, _ := pipe(t, reg)
	c.cfg.Hold = 30 * time.Millisecond
	start := time.Now()
	_, err := c.Read(make([]byte, 1))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want injected reset, got %v", err)
	}
	if held := time.Since(start); held < 25*time.Millisecond {
		t.Fatalf("blackhole held only %v", held)
	}
}

func TestLatencyDelaysButDelivers(t *testing.T) {
	reg := failpoint.New(3)
	reg.Arm("netwrite:t", failpoint.KindLatency, 0) // every write
	c, peer := pipe(t, reg)
	c.cfg.LatencyMax = 5 * time.Millisecond
	go func() {
		buf := make([]byte, 2)
		if _, err := io.ReadFull(peer, buf); err == nil {
			_, _ = peer.Write(buf)
		}
	}()
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatalf("latency write failed: %v", err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read after latency: %v", err)
	}
}

// TestListenerResetOnAccept arms a reset on the accept path and checks
// the accepted connection is dead on arrival while the listener
// survives to accept the next one.
func TestListenerResetOnAccept(t *testing.T) {
	reg := failpoint.New(1)
	reg.Arm("accept:t", failpoint.KindReset, 1)
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := WrapListener(raw, Config{Reg: reg, Label: "t"})
	defer ln.Close()

	accepted := make(chan net.Conn, 2)
	go func() {
		for i := 0; i < 2; i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()

	for i := 0; i < 2; i++ {
		cli, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		srv := <-accepted
		_ = srv.SetReadDeadline(time.Now().Add(time.Second))
		_, _ = cli.Write([]byte("x\n"))
		_, rerr := srv.Read(make([]byte, 1))
		if i == 0 && rerr == nil {
			t.Fatal("first accepted conn should be dead on arrival")
		}
		if i == 1 && rerr != nil {
			t.Fatalf("second accepted conn broken: %v", rerr)
		}
	}
}

func TestArmSpecParsesNetKinds(t *testing.T) {
	reg := failpoint.New(1)
	spec := "netread:srv=reset@3,netwrite:srv=partial@5,netread:*=latency,accept:srv=blackhole@2"
	if err := reg.ArmSpec(spec); err != nil {
		t.Fatalf("ArmSpec(%q): %v", spec, err)
	}
}
