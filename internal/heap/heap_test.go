package heap

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAllocRead(t *testing.T) {
	a := NewArena()
	p := a.AllocString("hello heap")
	got, err := a.Read(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello heap" {
		t.Errorf("Read = %q", got)
	}
}

func TestFreeLeavesResidue(t *testing.T) {
	a := NewArena()
	secret := "SELECT * FROM t WHERE ssn = '123-45-6789'"
	p := a.AllocString(secret)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(a.Dump(), []byte(secret)) {
		t.Error("freed bytes were scrubbed; the arena must keep residue")
	}
}

func TestReuseOverwritesOnlyPrefix(t *testing.T) {
	a := NewArena()
	p := a.AllocString("AAAAAAAAAAAAAAAAAAAA") // 20 bytes, class 32
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	a.AllocString("BBBBBBBBBBBBBBBBB") // 17 bytes: same class, reused
	dump := a.Dump()
	if !bytes.Contains(dump, []byte("BBBBBBBBBBBBBBBBB")) {
		t.Error("new allocation not visible")
	}
	if !bytes.Contains(dump, []byte("AAA")) { // trailing As survive past 17 bytes
		t.Error("tail residue of reused block destroyed")
	}
	_, _, reuses := a.Stats()
	if reuses != 1 {
		t.Errorf("reuses = %d", reuses)
	}
}

func TestSizeClassesIsolateReuse(t *testing.T) {
	a := NewArena()
	small := a.AllocString("xy") // class 16
	if err := a.Free(small); err != nil {
		t.Fatal(err)
	}
	p := a.AllocString("this needs a bigger size class than xy") // class 48
	got, _ := a.Read(p)
	if !bytes.HasPrefix(got, []byte("this needs")) {
		t.Errorf("Read = %q", got)
	}
	// The small freed block must be intact: different class.
	if !bytes.Contains(a.Dump(), []byte("xy")) {
		t.Error("free block of another size class was clobbered")
	}
	if _, _, reuses := a.Stats(); reuses != 0 {
		t.Error("cross-class reuse happened")
	}
}

func TestDoubleFreeAndBadPointers(t *testing.T) {
	a := NewArena()
	p := a.AllocString("x")
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err == nil {
		t.Error("double free accepted")
	}
	if err := a.Free(Ptr(99)); err == nil {
		t.Error("invalid free accepted")
	}
	if _, err := a.Read(Ptr(-1)); err == nil {
		t.Error("invalid read accepted")
	}
}

func TestDumpIsACopy(t *testing.T) {
	a := NewArena()
	a.AllocString("original")
	d := a.Dump()
	for i := range d {
		d[i] = 0
	}
	if !bytes.Contains(a.Dump(), []byte("original")) {
		t.Error("mutating a dump mutated the arena")
	}
}

func TestSizeGrowth(t *testing.T) {
	a := NewArena()
	if a.Size() != 0 {
		t.Errorf("fresh arena size = %d", a.Size())
	}
	a.AllocString("0123456789") // class 16
	if a.Size() != 16 {
		t.Errorf("size = %d, want 16 (class-rounded)", a.Size())
	}
	p := a.AllocString("abc")
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	a.AllocString("ab") // same class: reuse, size must not grow
	if a.Size() != 32 {
		t.Errorf("size after reuse = %d, want 32", a.Size())
	}
}

func TestLIFOReuse(t *testing.T) {
	a := NewArena()
	early := a.AllocString("EARLY-FREED-QUERY-TEXT")
	late := a.AllocString("LATE-FREED-QUERY-TEXTX")
	if err := a.Free(early); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(late); err != nil {
		t.Fatal(err)
	}
	// Same-size alloc must reuse the most recently freed block (late),
	// leaving the early block's residue intact.
	a.AllocString("REPLACEMENT-TEXT-HERE!")
	dump := a.Dump()
	if !bytes.Contains(dump, []byte("EARLY-FREED-QUERY-TEXT")) {
		t.Error("early-freed block was reused before the recently freed one (free list must be LIFO)")
	}
	if bytes.Contains(dump, []byte("LATE-FREED-QUERY-TEXTX")) {
		t.Error("most recently freed block was not reused")
	}
}

func TestSteadyStateChurnPreservesFirstQuery(t *testing.T) {
	// Model of the paper's §5 experiment: one early query, then heavy
	// churn of same-sized queries. The first query's text must survive.
	a := NewArena()
	marker := "SELECT xq7RkP2v FROM t WHERE a = 1"
	p := a.AllocString(marker)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		// Churn queries land in a different size class than the marker,
		// as in the paper's experiment (its marked query carried a long
		// random string).
		q := a.AllocString("SELECT name, age FROM customers WHERE state = 'AZ'")
		if err := a.Free(q); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Contains(a.Dump(), []byte(marker)) {
		t.Error("first query's residue destroyed by steady-state churn")
	}
}

func TestQuickAllocReadRoundTrip(t *testing.T) {
	a := NewArena()
	f := func(data []byte) bool {
		p := a.Alloc(data)
		got, err := a.Read(p)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickResidueSurvivesFree(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		a := NewArena()
		p := a.Alloc(data)
		if err := a.Free(p); err != nil {
			return false
		}
		return bytes.Contains(a.Dump(), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	a := NewArena()
	data := []byte("SELECT * FROM customers WHERE state = 'IN'")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := a.Alloc(data)
		if err := a.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}
