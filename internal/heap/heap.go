// Package heap simulates the DBMS process heap. Its single important
// property is the one §5 of the paper demonstrates in MySQL: memory is
// never securely deleted. Free marks a block reusable but does not zero
// it, and a reused block is only overwritten up to the new allocation's
// length, so fragments of freed query strings persist indefinitely and
// show up in a memory dump.
//
// The engine routes every allocation that carries query text through an
// Arena so that a MemorySnapshot's heap image faithfully reproduces the
// paper's experiment.
package heap

import (
	"fmt"
	"sync"
)

// Ptr identifies an allocation within an arena.
type Ptr int

// block is the allocator's metadata for one block.
type block struct {
	off  int
	size int // class-rounded capacity
	used int // bytes of the current (or last) occupant
	free bool
}

// classSize rounds a request up to its size class. 16-byte classes
// mirror the exact-size-class bins of production allocators (glibc
// tcache): a freed block is only reused for requests in the same class.
func classSize(n int) int {
	const granule = 16
	if n == 0 {
		return granule
	}
	return (n + granule - 1) / granule * granule
}

// Arena is a growable heap slab with per-size-class LIFO free lists and
// no secure deletion. The discipline mirrors production allocators
// (glibc tcache/fastbins): the most recently freed block of the right
// class is reused first, so steady-state churn recycles its own recent
// blocks while early-freed blocks of other classes sink and survive —
// which is why the paper could find the text of its very first query in
// MySQL's heap after 102,000 later queries.
type Arena struct {
	mu     sync.Mutex
	slab   []byte
	blocks []block
	bins   map[int][]int // size class -> block indices, most recently freed last

	// SecureDelete zeroizes blocks on Free — the mitigation the paper's
	// §5 observes MySQL lacks. Off by default, like every real DBMS.
	SecureDelete bool

	allocs, frees, reuses uint64
}

// NewArena creates an empty arena.
func NewArena() *Arena { return &Arena{bins: make(map[int][]int)} }

// zeroPad supplies the class-rounding tail bytes; padding is always
// under one granule, so a static array avoids a make per allocation.
var zeroPad [16]byte

// Alloc stores data in the heap and returns its pointer. A block is
// reused only from the request's own size class (newest-first); a
// reused block is only overwritten up to len(data), so tail bytes keep
// their previous contents.
func (a *Arena) Alloc(data []byte) Ptr {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.allocs++
	cls := classSize(len(data))
	if bin := a.bins[cls]; len(bin) > 0 {
		bi := bin[len(bin)-1]
		a.bins[cls] = bin[:len(bin)-1]
		b := &a.blocks[bi]
		copy(a.slab[b.off:], data)
		b.free = false
		b.used = len(data)
		a.reuses++
		// The block keeps its class-sized capacity; the gap past
		// len(data) still holds residue from the prior occupant.
		return Ptr(bi)
	}
	off := len(a.slab)
	a.slab = append(a.slab, data...)
	a.slab = append(a.slab, zeroPad[:cls-len(data)]...)
	a.blocks = append(a.blocks, block{off: off, size: cls, used: len(data)})
	return Ptr(len(a.blocks) - 1)
}

// AllocString stores a string. It mirrors Alloc's discipline exactly
// (same slab bytes, same block bookkeeping) but copies straight from
// the string, avoiding the []byte(s) temporary — AllocString runs
// several times per statement, so that conversion was one of the
// larger per-statement allocation costs.
func (a *Arena) AllocString(s string) Ptr {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.allocs++
	cls := classSize(len(s))
	if bin := a.bins[cls]; len(bin) > 0 {
		bi := bin[len(bin)-1]
		a.bins[cls] = bin[:len(bin)-1]
		b := &a.blocks[bi]
		copy(a.slab[b.off:], s)
		b.free = false
		b.used = len(s)
		a.reuses++
		return Ptr(bi)
	}
	off := len(a.slab)
	a.slab = append(a.slab, s...)
	a.slab = append(a.slab, zeroPad[:cls-len(s)]...)
	a.blocks = append(a.blocks, block{off: off, size: cls, used: len(s)})
	return Ptr(len(a.blocks) - 1)
}

// Free marks the block reusable. The bytes remain in the slab unless
// SecureDelete is set.
func (a *Arena) Free(p Ptr) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if int(p) < 0 || int(p) >= len(a.blocks) {
		return fmt.Errorf("heap: free of invalid pointer %d", p)
	}
	if a.blocks[p].free {
		return fmt.Errorf("heap: double free of pointer %d", p)
	}
	if a.SecureDelete {
		b := a.blocks[p]
		for i := b.off; i < b.off+b.size; i++ {
			a.slab[i] = 0
		}
	}
	a.blocks[p].free = true
	cls := a.blocks[p].size
	a.bins[cls] = append(a.bins[cls], int(p))
	a.frees++
	return nil
}

// Read returns a copy of the block's current bytes (whatever occupies
// that region now — callers that freed the block may see other data).
func (a *Arena) Read(p Ptr) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if int(p) < 0 || int(p) >= len(a.blocks) {
		return nil, fmt.Errorf("heap: read of invalid pointer %d", p)
	}
	b := a.blocks[p]
	out := make([]byte, b.used)
	copy(out, a.slab[b.off:b.off+b.used])
	return out, nil
}

// Dump returns a copy of the entire slab — the process-memory image a
// whole-system snapshot captures.
func (a *Arena) Dump() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]byte, len(a.slab))
	copy(out, a.slab)
	return out
}

// Size returns the slab size in bytes.
func (a *Arena) Size() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.slab)
}

// Stats reports allocation counters.
func (a *Arena) Stats() (allocs, frees, reuses uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.allocs, a.frees, a.reuses
}
