// Package perfschema implements the engine's performance_schema
// analog: per-thread current and recent statements plus per-digest
// summary statistics. §4 of the paper shows that these tables, which
// exist to help administrators tune workloads, hand a SQL-injection
// attacker (and a fortiori a memory-snapshot attacker) the text of
// currently executing queries, the last N queries of every thread, and
// a histogram of query *types* since the last restart — the histogram
// that breaks Seabed's SPLASHE.
package perfschema

import (
	"sort"
	"sync"
	"time"

	"snapdb/internal/sqlparse"
)

// DefaultHistoryPerThread matches performance_schema's default
// events_statements_history size of 10 rows per thread.
const DefaultHistoryPerThread = 10

// StatementEvent is one row of events_statements_current or
// events_statements_history.
type StatementEvent struct {
	Thread       int
	Timestamp    int64 // UNIX seconds at statement start
	Statement    string
	Digest       string
	DigestText   string
	RowsExamined int
	RowsReturned int
	Duration     time.Duration
	Done         bool
}

// DigestRow is one row of events_statements_summary_by_digest.
type DigestRow struct {
	Digest          string
	DigestText      string
	Count           uint64
	SumRowsExamined uint64
	SumRowsReturned uint64
	FirstSeen       int64
	LastSeen        int64
}

// Schema is the performance_schema state for one engine instance.
type Schema struct {
	mu          sync.Mutex
	historySize int
	current     map[int]*StatementEvent
	history     map[int][]StatementEvent // per thread, oldest first, capped
	stages      map[int][][]StageEvent   // per thread, one group per statement, oldest first, capped
	digests     map[string]*DigestRow
}

// New creates a schema with the given per-thread history size (0 means
// DefaultHistoryPerThread).
func New(historySize int) *Schema {
	if historySize <= 0 {
		historySize = DefaultHistoryPerThread
	}
	return &Schema{
		historySize: historySize,
		current:     make(map[int]*StatementEvent),
		history:     make(map[int][]StatementEvent),
		stages:      make(map[int][][]StageEvent),
		digests:     make(map[string]*DigestRow),
	}
}

// BeginStatement records that thread is now executing stmt.
func (s *Schema) BeginStatement(thread int, stmt string, ts int64) {
	text := sqlparse.Digest(stmt)
	s.BeginStatementWithDigest(thread, stmt, sqlparse.HashDigestText(text), text, ts)
}

// BeginStatementWithDigest is BeginStatement with the digest hash and
// canonical text precomputed — the engine's plan cache supplies them so
// a cache hit does not re-tokenize the statement. The recorded rows are
// byte-identical to BeginStatement's: digest must equal
// HashDigestText(digestText) and digestText must equal Digest(stmt).
func (s *Schema) BeginStatementWithDigest(thread int, stmt, digest, digestText string, ts int64) {
	ev := &StatementEvent{
		Thread:     thread,
		Timestamp:  ts,
		Statement:  stmt,
		Digest:     digest,
		DigestText: digestText,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.current[thread] = ev
}

// EndStatement finalizes the thread's current statement with its
// execution statistics, moving it into the history ring and the digest
// summary.
func (s *Schema) EndStatement(thread, rowsExamined, rowsReturned int, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ev, ok := s.current[thread]
	if !ok {
		return
	}
	ev.RowsExamined = rowsExamined
	ev.RowsReturned = rowsReturned
	ev.Duration = d
	ev.Done = true

	h := append(s.history[thread], *ev)
	if len(h) > s.historySize {
		h = h[len(h)-s.historySize:]
	}
	s.history[thread] = h

	row, ok := s.digests[ev.Digest]
	if !ok {
		row = &DigestRow{Digest: ev.Digest, DigestText: ev.DigestText, FirstSeen: ev.Timestamp}
		s.digests[ev.Digest] = row
	}
	row.Count++
	row.SumRowsExamined += uint64(rowsExamined)
	row.SumRowsReturned += uint64(rowsReturned)
	row.LastSeen = ev.Timestamp
}

// Current returns events_statements_current: the statement each thread
// is executing (or last executed, like the real table).
func (s *Schema) Current() []StatementEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StatementEvent, 0, len(s.current))
	for _, ev := range s.current {
		out = append(out, *ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Thread < out[j].Thread })
	return out
}

// History returns events_statements_history: the most recent statements
// of every thread (up to historySize each), oldest first per thread.
func (s *Schema) History() []StatementEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []StatementEvent
	threads := make([]int, 0, len(s.history))
	for th := range s.history {
		threads = append(threads, th)
	}
	sort.Ints(threads)
	for _, th := range threads {
		out = append(out, s.history[th]...)
	}
	return out
}

// DigestSummary returns events_statements_summary_by_digest rows,
// ordered by descending count (ties by digest text). This is the
// per-query-type histogram accumulated since the last restart.
func (s *Schema) DigestSummary() []DigestRow {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DigestRow, 0, len(s.digests))
	for _, row := range s.digests {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].DigestText < out[j].DigestText
	})
	return out
}

// Reset clears all statistics, as a server restart does.
func (s *Schema) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.current = make(map[int]*StatementEvent)
	s.history = make(map[int][]StatementEvent)
	s.stages = make(map[int][][]StageEvent)
	s.digests = make(map[string]*DigestRow)
}

// HistorySize returns the configured per-thread history depth.
func (s *Schema) HistorySize() int { return s.historySize }
