package perfschema

import (
	"fmt"
	"testing"
)

func stageGroup(op string, n int) []StageEvent {
	evs := make([]StageEvent, n)
	for i := range evs {
		evs[i] = StageEvent{Seq: i, Depth: i, Operator: fmt.Sprintf("%s-%d", op, i)}
	}
	return evs
}

func TestAddStagesStampsAndOrders(t *testing.T) {
	s := New(10)
	s.AddStages(7, 111, "d1", stageGroup("scan", 2))
	s.AddStages(7, 222, "d2", stageGroup("filter", 3))
	s.AddStages(3, 333, "d3", stageGroup("agg", 1))

	hist := s.StagesHistory()
	if len(hist) != 6 {
		t.Fatalf("history has %d events, want 6", len(hist))
	}
	// Threads ascending, then statement groups oldest-first, then seq.
	wantThreads := []int{3, 7, 7, 7, 7, 7}
	wantTs := []int64{333, 111, 111, 222, 222, 222}
	for i, ev := range hist {
		if ev.Thread != wantThreads[i] || ev.Timestamp != wantTs[i] {
			t.Errorf("event %d: thread=%d ts=%d, want thread=%d ts=%d",
				i, ev.Thread, ev.Timestamp, wantThreads[i], wantTs[i])
		}
	}
	if hist[0].Digest != "d3" || hist[1].Digest != "d1" || hist[3].Digest != "d2" {
		t.Errorf("digest stamping wrong: %+v", hist)
	}
	wantSeq := []int{0, 0, 1, 0, 1, 2} // seq restarts per statement group
	for i, ev := range hist {
		if ev.Seq != wantSeq[i] {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, wantSeq[i])
		}
	}
}

func TestAddStagesRingTrim(t *testing.T) {
	s := New(3) // historySize = 3 statement groups per thread
	for i := 0; i < 5; i++ {
		s.AddStages(1, int64(i), fmt.Sprintf("d%d", i), stageGroup("op", 1))
	}
	hist := s.StagesHistory()
	if len(hist) != 3 {
		t.Fatalf("history has %d events, want 3 (trimmed to ring size)", len(hist))
	}
	for i, wantTs := range []int64{2, 3, 4} {
		if hist[i].Timestamp != wantTs {
			t.Errorf("event %d ts = %d, want %d (oldest groups evicted)", i, hist[i].Timestamp, wantTs)
		}
	}
}

func TestAddStagesEmptyGroupIgnored(t *testing.T) {
	s := New(4)
	s.AddStages(1, 1, "d", nil)
	if n := len(s.StagesHistory()); n != 0 {
		t.Errorf("empty group produced %d events", n)
	}
}

func TestResetClearsStages(t *testing.T) {
	s := New(4)
	s.AddStages(1, 1, "d", stageGroup("op", 2))
	s.Reset()
	if n := len(s.StagesHistory()); n != 0 {
		t.Errorf("Reset left %d stage events", n)
	}
}
