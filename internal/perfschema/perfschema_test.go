package perfschema

import (
	"fmt"
	"testing"
	"time"
)

func TestCurrentStatement(t *testing.T) {
	s := New(0)
	s.BeginStatement(1, "SELECT * FROM t WHERE a = 1", 100)
	cur := s.Current()
	if len(cur) != 1 || cur[0].Statement != "SELECT * FROM t WHERE a = 1" || cur[0].Done {
		t.Fatalf("current = %+v", cur)
	}
	s.EndStatement(1, 10, 2, time.Millisecond)
	cur = s.Current()
	if !cur[0].Done || cur[0].RowsExamined != 10 || cur[0].RowsReturned != 2 {
		t.Errorf("finished current = %+v", cur[0])
	}
}

func TestHistoryCapPerThread(t *testing.T) {
	s := New(0)
	if s.HistorySize() != DefaultHistoryPerThread {
		t.Fatalf("history size = %d", s.HistorySize())
	}
	for i := 0; i < 25; i++ {
		s.BeginStatement(1, fmt.Sprintf("SELECT %d FROM t", i), int64(i))
		s.EndStatement(1, 1, 1, 0)
	}
	h := s.History()
	if len(h) != DefaultHistoryPerThread {
		t.Fatalf("history holds %d, want %d", len(h), DefaultHistoryPerThread)
	}
	// Oldest retained entry is statement 15.
	if h[0].Timestamp != 15 || h[len(h)-1].Timestamp != 24 {
		t.Errorf("history range = [%d, %d]", h[0].Timestamp, h[len(h)-1].Timestamp)
	}
}

func TestHistoryMultipleThreads(t *testing.T) {
	s := New(3)
	for th := 1; th <= 2; th++ {
		for i := 0; i < 2; i++ {
			s.BeginStatement(th, fmt.Sprintf("SELECT %d", i), int64(i))
			s.EndStatement(th, 0, 0, 0)
		}
	}
	h := s.History()
	if len(h) != 4 {
		t.Fatalf("history = %d entries", len(h))
	}
	if h[0].Thread != 1 || h[2].Thread != 2 {
		t.Errorf("thread ordering wrong: %+v", h)
	}
}

func TestDigestSummaryGroupsByCanonicalForm(t *testing.T) {
	s := New(0)
	// Two queries that differ only in literals: one digest row, count 2.
	for _, state := range []string{"IN", "AZ"} {
		q := "SELECT * FROM CUSTOMERS WHERE STATE='" + state + "'"
		s.BeginStatement(1, q, 10)
		s.EndStatement(1, 100, 5, 0)
	}
	// A structurally different query: its own row.
	s.BeginStatement(1, "SELECT * FROM CUSTOMERS WHERE AGE >= 25", 11)
	s.EndStatement(1, 100, 7, 0)

	rows := s.DigestSummary()
	if len(rows) != 2 {
		t.Fatalf("digest rows = %d, want 2", len(rows))
	}
	if rows[0].Count != 2 {
		t.Errorf("top digest count = %d", rows[0].Count)
	}
	if rows[0].SumRowsReturned != 10 {
		t.Errorf("sum rows returned = %d", rows[0].SumRowsReturned)
	}
	if rows[0].FirstSeen != 10 || rows[0].LastSeen != 10 {
		t.Errorf("seen range = [%d, %d]", rows[0].FirstSeen, rows[0].LastSeen)
	}
}

func TestDigestTextHidesLiterals(t *testing.T) {
	s := New(0)
	s.BeginStatement(1, "SELECT * FROM t WHERE ssn = '078-05-1120'", 1)
	s.EndStatement(1, 1, 1, 0)
	rows := s.DigestSummary()
	if len(rows) != 1 {
		t.Fatal("no digest row")
	}
	for _, bad := range []string{"078-05-1120"} {
		if contains(rows[0].DigestText, bad) {
			t.Errorf("digest text leaks literal: %s", rows[0].DigestText)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestEndWithoutBeginIsNoop(t *testing.T) {
	s := New(0)
	s.EndStatement(9, 1, 1, 0)
	if len(s.History()) != 0 || len(s.DigestSummary()) != 0 {
		t.Error("EndStatement without Begin recorded something")
	}
}

func TestResetClearsEverything(t *testing.T) {
	s := New(0)
	s.BeginStatement(1, "SELECT 1 FROM t", 1)
	s.EndStatement(1, 1, 1, 0)
	s.Reset()
	if len(s.Current()) != 0 || len(s.History()) != 0 || len(s.DigestSummary()) != 0 {
		t.Error("Reset did not clear state")
	}
}

func BenchmarkStatementLifecycle(b *testing.B) {
	s := New(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.BeginStatement(1, "SELECT * FROM t WHERE a = 1", int64(i))
		s.EndStatement(1, 10, 1, time.Microsecond)
	}
}
