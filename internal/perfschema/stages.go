package perfschema

import "sort"

// StageEvent is one row of events_stages_history: the runtime counters
// of a single plan operator from one executed statement. Where the
// statement tables leak what ran, the stage table leaks how it ran —
// which access path the planner chose and how many rows and buffer-pool
// pages each operator touched, a per-statement profile of the B+ tree
// regions the query visited.
type StageEvent struct {
	Thread    int
	Timestamp int64  // UNIX seconds at statement start
	Digest    string // statement digest hash, joining back to the statement tables
	Seq       int    // operator position, 0 = plan root
	Depth     int    // depth in the operator tree (chain: equals Seq)
	Operator  string // operator description as EXPLAIN renders it

	RowsExamined int
	RowsReturned int
	PoolFetches  uint64
}

// AddStages records the operator profile of one completed statement for
// thread: evs arrive in plan order (root first) with Seq/Depth and the
// counters filled in; Thread, Timestamp, and Digest are stamped here.
// The per-thread ring keeps the stage groups of the last historySize
// statements, mirroring events_statements_history.
func (s *Schema) AddStages(thread int, ts int64, digest string, evs []StageEvent) {
	if len(evs) == 0 {
		return
	}
	group := make([]StageEvent, len(evs))
	for i, ev := range evs {
		ev.Thread = thread
		ev.Timestamp = ts
		ev.Digest = digest
		group[i] = ev
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := append(s.stages[thread], group)
	if len(h) > s.historySize {
		h = h[len(h)-s.historySize:]
	}
	s.stages[thread] = h
}

// StagesHistory returns events_stages_history: the operator profiles of
// every thread's recent statements, threads in ascending id order, each
// thread's statements oldest first, each statement's operators in plan
// order.
func (s *Schema) StagesHistory() []StageEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	threads := make([]int, 0, len(s.stages))
	for th := range s.stages {
		threads = append(threads, th)
	}
	sort.Ints(threads)
	var out []StageEvent
	for _, th := range threads {
		for _, group := range s.stages[th] {
			out = append(out, group...)
		}
	}
	return out
}
