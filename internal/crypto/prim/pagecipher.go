package prim

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
)

// PageCipher is the tweaked, length-preserving page encryption beneath
// vfs.CryptFS: each fixed-size page of a file is XORed with an AES-CTR
// keystream whose IV (the "tweak") binds the file name and page number,
// the construction the SQLite adiantum/xts VFSes use at the same seam.
//
// Because ciphertext byte i depends only on plaintext byte i, the
// cipher commutes with everything the crash-consistency machinery
// cares about: torn writes tear the same byte ranges, a flipped
// ciphertext bit flips exactly one plaintext bit (surfacing as a CRC
// frame failure downstream, never as silently different data), and
// file sizes, offsets and EOF behavior are identical to the plaintext
// file. The price of determinism is the leakage E17 demonstrates: with
// a fixed tweak, equal plaintext pages at equal positions produce
// equal ciphertext across snapshots, and rewriting a page in place
// XOR-relates the two ciphertexts. The fresh-IV mode (a caller-stored
// random tweak per page write) trades the in-place properties away to
// close the equality channel.
type PageCipher struct {
	block cipher.Block // AES-256 under the derived "page" key
	twKey Key          // PRF key for deterministic tweak derivation
}

// TweakSize is the size in bytes of a page tweak (the AES-CTR IV).
const TweakSize = aes.BlockSize

// NewPageCipher derives the page-encryption subkeys from k.
func NewPageCipher(k Key) (*PageCipher, error) {
	encKey := Derive(k, "page-enc")
	block, err := aes.NewCipher(encKey[:])
	if err != nil {
		return nil, fmt.Errorf("prim: page cipher init: %w", err)
	}
	return &PageCipher{block: block, twKey: Derive(k, "page-tweak")}, nil
}

// Tweak derives the deterministic tweak for page number page of the
// file named name: PRF(twKey, name || page). Binding the name keeps
// equal pages of different files unrelated; binding the page number is
// what makes the scheme XTS-style rather than a single reused stream.
func (c *PageCipher) Tweak(name string, page uint64) [TweakSize]byte {
	msg := make([]byte, 0, len(name)+8)
	msg = append(msg, name...)
	msg = binary.BigEndian.AppendUint64(msg, page)
	full := PRF(c.twKey, msg)
	var tw [TweakSize]byte
	copy(tw[:], full[:TweakSize])
	return tw
}

// XORKeyStreamAt XORs data in place with the keystream of the page
// whose tweak is tw, starting at byte offset off within the page.
// Encryption and decryption are the same operation. off+len(data) may
// not exceed the page size the caller segments by; the keystream is
// defined for any offset, so the caller's page size is not a parameter
// here.
func (c *PageCipher) XORKeyStreamAt(tw [TweakSize]byte, off int, data []byte) {
	if len(data) == 0 {
		return
	}
	// CTR keystream block j is AES(tw + j); seek to block off/16 by
	// adding to the big-endian counter, then discard the intra-block
	// prefix.
	var ctr [aes.BlockSize]byte
	copy(ctr[:], tw[:])
	addCounter(&ctr, uint64(off/aes.BlockSize))
	skip := off % aes.BlockSize
	var ks [aes.BlockSize]byte
	for len(data) > 0 {
		c.block.Encrypt(ks[:], ctr[:])
		n := aes.BlockSize - skip
		if n > len(data) {
			n = len(data)
		}
		for i := 0; i < n; i++ {
			data[i] ^= ks[skip+i]
		}
		data = data[n:]
		skip = 0
		addCounter(&ctr, 1)
	}
}

// addCounter adds n to the big-endian 128-bit counter in place.
func addCounter(ctr *[aes.BlockSize]byte, n uint64) {
	for i := aes.BlockSize - 1; i >= 0 && n > 0; i-- {
		n += uint64(ctr[i])
		ctr[i] = byte(n)
		n >>= 8
	}
}
