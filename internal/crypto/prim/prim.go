// Package prim provides the symmetric primitives shared by every
// encryption scheme in snapdb: a PRF, randomized and deterministic
// AES-CTR encryption, and labeled key derivation.
//
// All schemes in internal/crypto build on these so that their leakage is
// attributable to the scheme design, never to an ad-hoc primitive.
package prim

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// KeySize is the size in bytes of all symmetric keys used by snapdb.
const KeySize = 32

// Key is a symmetric root or derived key.
type Key [KeySize]byte

// NewRandomKey samples a fresh key from crypto/rand.
func NewRandomKey() (Key, error) {
	var k Key
	if _, err := rand.Read(k[:]); err != nil {
		return Key{}, fmt.Errorf("prim: sampling key: %w", err)
	}
	return k, nil
}

// KeyFromBytes builds a key from exactly KeySize bytes.
func KeyFromBytes(b []byte) (Key, error) {
	var k Key
	if len(b) != KeySize {
		return k, fmt.Errorf("prim: key must be %d bytes, got %d", KeySize, len(b))
	}
	copy(k[:], b)
	return k, nil
}

// TestKey derives a deterministic key from a seed string. It exists so
// tests and simulations are reproducible; production callers should use
// NewRandomKey.
func TestKey(seed string) Key {
	var k Key
	sum := sha256.Sum256([]byte("snapdb-test-key:" + seed))
	copy(k[:], sum[:])
	return k
}

// Derive derives a subkey bound to a label, e.g. Derive(k, "det:ssn").
// Distinct labels yield independent keys under the PRF assumption on
// HMAC-SHA256.
func Derive(k Key, label string) Key {
	mac := hmac.New(sha256.New, k[:])
	mac.Write([]byte("derive:"))
	mac.Write([]byte(label))
	var out Key
	copy(out[:], mac.Sum(nil))
	return out
}

// PRF evaluates HMAC-SHA256 as a PRF on msg.
func PRF(k Key, msg []byte) [32]byte {
	mac := hmac.New(sha256.New, k[:])
	mac.Write(msg)
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// PRFString is PRF on the bytes of s.
func PRFString(k Key, s string) [32]byte { return PRF(k, []byte(s)) }

// PRFUint64 evaluates the PRF on the big-endian encoding of v and
// truncates the output to a uint64. It is the building block for ASHE
// pads and ORE node labels.
func PRFUint64(k Key, v uint64) uint64 {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	out := PRF(k, buf[:])
	return binary.BigEndian.Uint64(out[:8])
}

// ivSize is the AES-CTR IV size.
const ivSize = aes.BlockSize

// Encrypt performs randomized AES-256-CTR encryption with an
// HMAC-SHA256 tag (encrypt-then-MAC). Output layout: iv || ct || tag.
func Encrypt(k Key, plaintext []byte) ([]byte, error) {
	iv := make([]byte, ivSize)
	if _, err := rand.Read(iv); err != nil {
		return nil, fmt.Errorf("prim: sampling IV: %w", err)
	}
	return encryptWithIV(k, iv, plaintext)
}

// EncryptDeterministic performs SIV-style deterministic encryption: the
// IV is a PRF of the plaintext under a derived key, so equal plaintexts
// produce equal ciphertexts. This is the primitive beneath package det.
func EncryptDeterministic(k Key, plaintext []byte) ([]byte, error) {
	ivKey := Derive(k, "siv")
	full := PRF(ivKey, plaintext)
	return encryptWithIV(k, full[:ivSize], plaintext)
}

func encryptWithIV(k Key, iv, plaintext []byte) ([]byte, error) {
	encKey := Derive(k, "enc")
	macKey := Derive(k, "mac")
	block, err := aes.NewCipher(encKey[:])
	if err != nil {
		return nil, fmt.Errorf("prim: cipher init: %w", err)
	}
	out := make([]byte, ivSize+len(plaintext)+32)
	copy(out, iv)
	cipher.NewCTR(block, iv).XORKeyStream(out[ivSize:ivSize+len(plaintext)], plaintext)
	mac := hmac.New(sha256.New, macKey[:])
	mac.Write(out[:ivSize+len(plaintext)])
	copy(out[ivSize+len(plaintext):], mac.Sum(nil))
	return out, nil
}

// ErrAuth is returned when a ciphertext fails authentication.
var ErrAuth = errors.New("prim: ciphertext authentication failed")

// Decrypt reverses Encrypt/EncryptDeterministic, verifying the tag.
func Decrypt(k Key, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < ivSize+32 {
		return nil, fmt.Errorf("prim: ciphertext too short (%d bytes)", len(ciphertext))
	}
	encKey := Derive(k, "enc")
	macKey := Derive(k, "mac")
	body := ciphertext[:len(ciphertext)-32]
	tag := ciphertext[len(ciphertext)-32:]
	mac := hmac.New(sha256.New, macKey[:])
	mac.Write(body)
	if !hmac.Equal(tag, mac.Sum(nil)) {
		return nil, ErrAuth
	}
	block, err := aes.NewCipher(encKey[:])
	if err != nil {
		return nil, fmt.Errorf("prim: cipher init: %w", err)
	}
	pt := make([]byte, len(body)-ivSize)
	cipher.NewCTR(block, body[:ivSize]).XORKeyStream(pt, body[ivSize:])
	return pt, nil
}

// CiphertextOverhead is the fixed expansion of Encrypt: IV plus tag.
const CiphertextOverhead = ivSize + 32
