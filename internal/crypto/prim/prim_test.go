package prim

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	k := TestKey("roundtrip")
	for _, msg := range [][]byte{nil, {}, []byte("a"), []byte("hello world"), bytes.Repeat([]byte{0xAB}, 4096)} {
		ct, err := Encrypt(k, msg)
		if err != nil {
			t.Fatalf("Encrypt(%d bytes): %v", len(msg), err)
		}
		pt, err := Decrypt(k, ct)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if !bytes.Equal(pt, msg) {
			t.Errorf("round trip mismatch: got %q want %q", pt, msg)
		}
	}
}

func TestEncryptIsRandomized(t *testing.T) {
	k := TestKey("rand")
	msg := []byte("same plaintext")
	a, err := Encrypt(k, msg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encrypt(k, msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("two randomized encryptions of the same plaintext are identical")
	}
}

func TestEncryptDeterministicIsDeterministic(t *testing.T) {
	k := TestKey("det")
	msg := []byte("same plaintext")
	a, err := EncryptDeterministic(k, msg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncryptDeterministic(k, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("deterministic encryption produced differing ciphertexts")
	}
	other, err := EncryptDeterministic(k, []byte("other plaintext!"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, other) {
		t.Error("distinct plaintexts produced identical deterministic ciphertexts")
	}
	pt, err := Decrypt(k, a)
	if err != nil {
		t.Fatalf("Decrypt deterministic: %v", err)
	}
	if !bytes.Equal(pt, msg) {
		t.Errorf("deterministic round trip mismatch: got %q", pt)
	}
}

func TestDecryptRejectsTamper(t *testing.T) {
	k := TestKey("tamper")
	ct, err := Encrypt(k, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, ivSize, len(ct) - 1} {
		bad := append([]byte(nil), ct...)
		bad[idx] ^= 0x01
		if _, err := Decrypt(k, bad); err == nil {
			t.Errorf("tampered byte %d accepted", idx)
		}
	}
}

func TestDecryptRejectsWrongKey(t *testing.T) {
	ct, err := Encrypt(TestKey("k1"), []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(TestKey("k2"), ct); err == nil {
		t.Error("wrong key accepted")
	}
}

func TestDecryptRejectsShortCiphertext(t *testing.T) {
	if _, err := Decrypt(TestKey("k"), make([]byte, ivSize+31)); err == nil {
		t.Error("short ciphertext accepted")
	}
}

func TestDeriveDistinctLabels(t *testing.T) {
	k := TestKey("derive")
	a := Derive(k, "label-a")
	b := Derive(k, "label-b")
	if a == b {
		t.Error("distinct labels derived equal keys")
	}
	if a == k || b == k {
		t.Error("derived key equals parent key")
	}
	if Derive(k, "label-a") != a {
		t.Error("Derive is not deterministic")
	}
}

func TestKeyFromBytes(t *testing.T) {
	if _, err := KeyFromBytes(make([]byte, 16)); err == nil {
		t.Error("16-byte key accepted")
	}
	raw := bytes.Repeat([]byte{7}, KeySize)
	k, err := KeyFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k[:], raw) {
		t.Error("key bytes not preserved")
	}
}

func TestPRFUint64Distinct(t *testing.T) {
	k := TestKey("prf64")
	seen := make(map[uint64]uint64)
	for v := uint64(0); v < 1000; v++ {
		out := PRFUint64(k, v)
		if prev, dup := seen[out]; dup {
			t.Fatalf("PRFUint64 collision between inputs %d and %d", prev, v)
		}
		seen[out] = v
	}
}

func TestQuickRoundTrip(t *testing.T) {
	k := TestKey("quick")
	f := func(msg []byte) bool {
		ct, err := Encrypt(k, msg)
		if err != nil {
			return false
		}
		pt, err := Decrypt(k, ct)
		return err == nil && bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCiphertextLength(t *testing.T) {
	k := TestKey("quicklen")
	f := func(msg []byte) bool {
		ct, err := Encrypt(k, msg)
		return err == nil && len(ct) == len(msg)+CiphertextOverhead
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncrypt1K(b *testing.B) {
	k := TestKey("bench")
	msg := bytes.Repeat([]byte{0x42}, 1024)
	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encrypt(k, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPRF(b *testing.B) {
	k := TestKey("benchprf")
	msg := []byte("SELECT * FROM customers WHERE state='IN'")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PRF(k, msg)
	}
}
