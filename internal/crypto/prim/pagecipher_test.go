package prim

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"testing"
)

func TestPageCipherRoundTrip(t *testing.T) {
	pc, err := NewPageCipher(TestKey("pages"))
	if err != nil {
		t.Fatal(err)
	}
	tw := pc.Tweak("ib_logfile_redo", 3)
	plain := []byte("the quick brown fox jumps over the lazy dog, twice over")
	ct := append([]byte(nil), plain...)
	pc.XORKeyStreamAt(tw, 0, ct)
	if bytes.Equal(ct, plain) {
		t.Fatal("ciphertext equals plaintext")
	}
	pc.XORKeyStreamAt(tw, 0, ct)
	if !bytes.Equal(ct, plain) {
		t.Fatalf("round trip broken: %q", ct)
	}
}

// TestPageCipherSeek pins the property CryptFS depends on: XORing a
// sub-range at offset off must equal XORing the whole page and taking
// the same sub-range, for offsets that straddle AES block boundaries.
func TestPageCipherSeek(t *testing.T) {
	pc, _ := NewPageCipher(TestKey("pages"))
	tw := pc.Tweak("f", 9)
	page := make([]byte, 256)
	for i := range page {
		page[i] = byte(i)
	}
	whole := append([]byte(nil), page...)
	pc.XORKeyStreamAt(tw, 0, whole)
	for _, off := range []int{0, 1, 15, 16, 17, 31, 100, 255} {
		for _, n := range []int{1, 3, 16, 33} {
			if off+n > len(page) {
				continue
			}
			part := append([]byte(nil), page[off:off+n]...)
			pc.XORKeyStreamAt(tw, off, part)
			if !bytes.Equal(part, whole[off:off+n]) {
				t.Fatalf("off=%d n=%d: seeked stream diverges from full stream", off, n)
			}
		}
	}
}

// TestPageCipherCTRAgreement checks the hand-rolled counter against the
// standard library's CTR mode over a multi-block page.
func TestPageCipherCTRAgreement(t *testing.T) {
	pc, _ := NewPageCipher(TestKey("pages"))
	tw := pc.Tweak("f", 1)
	plain := bytes.Repeat([]byte("abcdefgh"), 64) // 512 bytes
	got := append([]byte(nil), plain...)
	pc.XORKeyStreamAt(tw, 0, got)

	encKey := Derive(TestKey("pages"), "page-enc")
	block, _ := aes.NewCipher(encKey[:])
	want := make([]byte, len(plain))
	cipher.NewCTR(block, tw[:]).XORKeyStream(want, plain)
	if !bytes.Equal(got, want) {
		t.Fatal("page keystream disagrees with crypto/cipher CTR")
	}
}

func TestPageCipherTweakBinding(t *testing.T) {
	pc, _ := NewPageCipher(TestKey("pages"))
	plain := make([]byte, 64)
	enc := func(name string, page uint64) []byte {
		out := append([]byte(nil), plain...)
		pc.XORKeyStreamAt(pc.Tweak(name, page), 0, out)
		return out
	}
	base := enc("binlog.000001", 0)
	if !bytes.Equal(base, enc("binlog.000001", 0)) {
		t.Fatal("deterministic encryption is not deterministic")
	}
	if bytes.Equal(base, enc("binlog.000001", 1)) {
		t.Fatal("page number does not separate keystreams")
	}
	if bytes.Equal(base, enc("ib_logfile_redo", 0)) {
		t.Fatal("file name does not separate keystreams")
	}
	pc2, _ := NewPageCipher(TestKey("other"))
	other := append([]byte(nil), plain...)
	pc2.XORKeyStreamAt(pc2.Tweak("binlog.000001", 0), 0, other)
	if bytes.Equal(base, other) {
		t.Fatal("key does not separate keystreams")
	}
}

func TestPageCipherCounterCarry(t *testing.T) {
	var ctr [16]byte
	for i := range ctr {
		ctr[i] = 0xFF
	}
	addCounter(&ctr, 1) // wraps to zero
	for i, b := range ctr {
		if b != 0 {
			t.Fatalf("byte %d = %#x after wrap", i, b)
		}
	}
	addCounter(&ctr, 1<<40)
	if ctr[15] != 0 || ctr[10] != 1 {
		t.Fatalf("carry landed wrong: %x", ctr)
	}
}
