// Package splashe implements Seabed's SPLASHE column splitting, which
// tries to defeat frequency analysis on filter columns.
//
// Basic SPLASHE gives every plaintext value in the column's domain a
// dedicated ASHE-encrypted 0/1 column: a row with value v stores
// Enc(1) in v's column and Enc(0) in the others, so
// "COUNT(*) WHERE a = v" rewrites to "SUM(ashe(col_v))" and the stored
// data is semantically secure.
//
// Enhanced SPLASHE saves space by giving dedicated columns only to the
// top-k frequent values; the long tail shares one deterministic-
// encryption column padded with dummies. §6 of the paper shows both
// variants still leak: the digest table counts queries per rewritten
// column (basic), and the DET tail column is directly frequency-
// analyzable (enhanced).
package splashe

import (
	"fmt"
	"sort"

	"snapdb/internal/crypto/ashe"
	"snapdb/internal/crypto/det"
	"snapdb/internal/crypto/prim"
	"snapdb/internal/sqlparse"
)

// Plan describes how one plaintext column is split.
type Plan struct {
	Column    string
	Dedicated []string // plaintext values with dedicated ASHE columns
	colOf     map[string]int
	HasTail   bool // enhanced SPLASHE: a shared DET column for the rest
}

// NewPlan builds a basic-SPLASHE plan covering the whole domain.
func NewPlan(column string, domain []string) *Plan {
	p := &Plan{Column: column, Dedicated: append([]string(nil), domain...)}
	sort.Strings(p.Dedicated)
	p.index()
	return p
}

// NewEnhancedPlan builds an enhanced plan: values in frequent get
// dedicated columns; everything else shares the DET tail column.
func NewEnhancedPlan(column string, frequent []string) *Plan {
	p := NewPlan(column, frequent)
	p.HasTail = true
	return p
}

func (p *Plan) index() {
	p.colOf = make(map[string]int, len(p.Dedicated))
	for i, v := range p.Dedicated {
		p.colOf[v] = i
	}
}

// NumColumns returns the number of ciphertext columns the plan creates
// (dedicated ASHE columns plus the tail, if any).
func (p *Plan) NumColumns() int {
	n := len(p.Dedicated)
	if p.HasTail {
		n++
	}
	return n
}

// ColumnName returns the schema name of dedicated column i (the paper's
// "c3"-style names).
func (p *Plan) ColumnName(i int) string { return fmt.Sprintf("%s_c%d", p.Column, i) }

// TailColumnName returns the shared DET column's name.
func (p *Plan) TailColumnName() string { return p.Column + "_tail" }

// ColumnFor resolves a plaintext value to its dedicated column index,
// or (-1, false) if the value routes to the tail (or is unknown under
// basic SPLASHE).
func (p *Plan) ColumnFor(value string) (int, bool) {
	i, ok := p.colOf[value]
	return i, ok
}

// Encryptor encrypts rows under a plan.
type Encryptor struct {
	plan *Plan
	cols []*ashe.Scheme
	tail *det.Scheme
}

// NewEncryptor derives per-column keys from the root key.
func NewEncryptor(root prim.Key, plan *Plan) *Encryptor {
	e := &Encryptor{plan: plan}
	for i := range plan.Dedicated {
		e.cols = append(e.cols, ashe.New(prim.Derive(root, "splashe:"+plan.ColumnName(i))))
	}
	if plan.HasTail {
		e.tail = det.New(prim.Derive(root, "splashe-tail:"+plan.Column))
	}
	return e
}

// EncryptedRow is one row's ciphertexts for the split column.
type EncryptedRow struct {
	Dedicated []uint64 // one ASHE ciphertext per dedicated column
	Tail      string   // DET ciphertext ("" when the value had a column)
}

// EncryptRow encrypts value for the row with the given id (ids start
// at 1, contiguous per table, as ASHE requires).
func (e *Encryptor) EncryptRow(id uint64, value string) (EncryptedRow, error) {
	row := EncryptedRow{Dedicated: make([]uint64, len(e.cols))}
	idx, dedicated := e.plan.ColumnFor(value)
	if !dedicated && !e.plan.HasTail {
		return row, fmt.Errorf("splashe: value %q outside the planned domain", value)
	}
	for i, col := range e.cols {
		bit := uint64(0)
		if dedicated && i == idx {
			bit = 1
		}
		ct, err := col.Encrypt(id, bit)
		if err != nil {
			return row, err
		}
		row.Dedicated[i] = ct
	}
	if e.plan.HasTail {
		v := value
		if dedicated {
			// Pad the tail with a dummy so dedicated-value rows are
			// indistinguishable in the tail column.
			v = "\x00dummy"
		}
		ct, err := e.tail.EncryptValue(sqlparse.StrValue(v))
		if err != nil {
			return row, err
		}
		row.Tail = ct
	}
	return row, nil
}

// CountQueryRewrite rewrites "COUNT(*) WHERE column = value" into the
// dedicated-column aggregation the server evaluates, returning the
// ciphertext column name. Queries for tail values return ok = false
// (they are answered through the DET tail column instead).
func (e *Encryptor) CountQueryRewrite(value string) (column string, ok bool) {
	idx, dedicated := e.plan.ColumnFor(value)
	if !dedicated {
		return "", false
	}
	return e.plan.ColumnName(idx), true
}

// TailTokenFor returns the DET ciphertext used as the equality literal
// for a tail value (enhanced SPLASHE only).
func (e *Encryptor) TailTokenFor(value string) (string, error) {
	if e.tail == nil {
		return "", fmt.Errorf("splashe: plan has no tail column")
	}
	return e.tail.EncryptValue(sqlparse.StrValue(value))
}

// DecryptCount strips the ASHE boundary pads from a server-computed sum
// over dedicated column i for contiguous row ids [a, b].
func (e *Encryptor) DecryptCount(i int, sum uint64, a, b uint64) (uint64, error) {
	if i < 0 || i >= len(e.cols) {
		return 0, fmt.Errorf("splashe: column %d out of range", i)
	}
	return e.cols[i].AggregateDecrypt(sum, a, b)
}
