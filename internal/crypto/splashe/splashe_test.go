package splashe

import (
	"testing"

	"snapdb/internal/crypto/prim"
)

func TestBasicPlanCountQuery(t *testing.T) {
	plan := NewPlan("age", []string{"10", "20", "30"})
	enc := NewEncryptor(prim.TestKey("spl"), plan)

	if plan.NumColumns() != 3 {
		t.Fatalf("columns = %d", plan.NumColumns())
	}
	// Encrypt 50 rows: value "20" appears for even ids.
	sums := make([]uint64, 3)
	for id := uint64(1); id <= 50; id++ {
		v := "10"
		if id%2 == 0 {
			v = "20"
		}
		row, err := enc.EncryptRow(id, v)
		if err != nil {
			t.Fatal(err)
		}
		if row.Tail != "" {
			t.Error("basic plan produced a tail ciphertext")
		}
		for i, ct := range row.Dedicated {
			sums[i] += ct
		}
	}
	col, ok := enc.CountQueryRewrite("20")
	if !ok {
		t.Fatal("rewrite failed for in-domain value")
	}
	idx, _ := plan.ColumnFor("20")
	if col != plan.ColumnName(idx) {
		t.Errorf("rewrite column = %q", col)
	}
	count, err := enc.DecryptCount(idx, sums[idx], 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if count != 25 {
		t.Errorf("COUNT(a=20) = %d, want 25", count)
	}
	// And the "30" column counts zero.
	idx30, _ := plan.ColumnFor("30")
	c30, _ := enc.DecryptCount(idx30, sums[idx30], 1, 50)
	if c30 != 0 {
		t.Errorf("COUNT(a=30) = %d, want 0", c30)
	}
}

func TestBasicPlanRejectsOutOfDomain(t *testing.T) {
	plan := NewPlan("a", []string{"x"})
	enc := NewEncryptor(prim.TestKey("spl"), plan)
	if _, err := enc.EncryptRow(1, "unknown"); err == nil {
		t.Error("out-of-domain value accepted without a tail")
	}
	if _, ok := enc.CountQueryRewrite("unknown"); ok {
		t.Error("rewrite claimed a column for an unknown value")
	}
	if _, err := enc.TailTokenFor("x"); err == nil {
		t.Error("TailTokenFor succeeded on a plan without a tail")
	}
}

func TestEnhancedPlanTail(t *testing.T) {
	plan := NewEnhancedPlan("city", []string{"nyc", "la"})
	enc := NewEncryptor(prim.TestKey("spl"), plan)
	if plan.NumColumns() != 3 { // 2 dedicated + tail
		t.Fatalf("columns = %d", plan.NumColumns())
	}

	freq, err := enc.EncryptRow(1, "nyc")
	if err != nil {
		t.Fatal(err)
	}
	rare, err := enc.EncryptRow(2, "boise")
	if err != nil {
		t.Fatal(err)
	}
	if freq.Tail == "" || rare.Tail == "" {
		t.Fatal("enhanced rows must always carry a tail ciphertext")
	}

	// Tail equality works for rare values via DET tokens...
	tok, err := enc.TailTokenFor("boise")
	if err != nil {
		t.Fatal(err)
	}
	if rare.Tail != tok {
		t.Error("tail DET ciphertext does not match its token")
	}
	// ...and frequent values hide behind the dummy pad.
	if freq.Tail == tok {
		t.Error("frequent value's tail matches a rare token")
	}
	nycTok, err := enc.TailTokenFor("nyc")
	if err != nil {
		t.Fatal(err)
	}
	if freq.Tail == nycTok {
		t.Error("dedicated value leaked into the tail column")
	}
}

func TestEnhancedTailIsDeterministic(t *testing.T) {
	// This determinism is exactly what the paper's frequency analysis
	// against enhanced SPLASHE exploits.
	plan := NewEnhancedPlan("city", []string{"nyc"})
	enc := NewEncryptor(prim.TestKey("spl"), plan)
	a, _ := enc.EncryptRow(1, "boise")
	b, _ := enc.EncryptRow(2, "boise")
	if a.Tail != b.Tail {
		t.Error("tail DET column not deterministic across rows")
	}
}

func TestColumnNamesStable(t *testing.T) {
	plan := NewPlan("a", []string{"z", "y", "x"})
	// Domain is sorted, so names are stable regardless of input order.
	if plan.ColumnName(0) != "a_c0" || plan.TailColumnName() != "a_tail" {
		t.Errorf("names: %q %q", plan.ColumnName(0), plan.TailColumnName())
	}
	idx, ok := plan.ColumnFor("x")
	if !ok || idx != 0 {
		t.Errorf("ColumnFor(x) = %d, %v", idx, ok)
	}
}

func TestDecryptCountRange(t *testing.T) {
	plan := NewPlan("a", []string{"v"})
	enc := NewEncryptor(prim.TestKey("spl"), plan)
	if _, err := enc.DecryptCount(5, 0, 1, 10); err == nil {
		t.Error("out-of-range column accepted")
	}
}
