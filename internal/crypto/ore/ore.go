// Package ore implements a Lewi-Wu style order-revealing encryption
// scheme [Lewi & Wu, CCS'16] over n-bit integers with a configurable
// block size.
//
// The scheme is asymmetric:
//
//   - the *left* ciphertext (the query token the client sends for the
//     endpoints of a range query) carries, per block, a PRF tag and a
//     mask key bound to the plaintext prefix up to that block;
//   - the *right* ciphertext (what the database stores) carries, per
//     block, a table mapping every candidate block value (keyed by its
//     prefix-bound PRF tag) to a masked three-way comparison result.
//
// Compare pairs them: walking blocks most-significant first, each
// lookup decodes cmp(x_i, y_i) as long as the two prefixes agree; the
// first non-equal block decides the order. By design Compare therefore
// reveals the index of the first differing block — the leakage §6 of
// the paper turns into plaintext bits once query tokens are recovered
// from a snapshot. With block size d, a comparison leaks the first
// differing d-bit block; the paper's simulation uses d = 1.
package ore

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"snapdb/internal/crypto/prim"
)

// PlainBits is the plaintext width in bits.
const PlainBits = 32

// Scheme is an ORE instance: one key, one block size.
type Scheme struct {
	keyTag  prim.Key // PRF key for prefix tags
	keyMask prim.Key // PRF key for comparison masks
	d       int      // block size in bits
	nBlocks int
}

// New creates a scheme with the given block size in bits (1, 2, 4, 8 or
// 16; PlainBits must be divisible by it).
func New(key prim.Key, blockBits int) (*Scheme, error) {
	switch blockBits {
	case 1, 2, 4, 8, 16:
	default:
		return nil, fmt.Errorf("ore: unsupported block size %d bits", blockBits)
	}
	return &Scheme{
		keyTag:  prim.Derive(key, "ore-tag"),
		keyMask: prim.Derive(key, "ore-mask"),
		d:       blockBits,
		nBlocks: PlainBits / blockBits,
	}, nil
}

// BlockBits returns the configured block size.
func (s *Scheme) BlockBits() int { return s.d }

// NumBlocks returns the number of blocks per plaintext.
func (s *Scheme) NumBlocks() int { return s.nBlocks }

// block extracts block i (0 = most significant) of x.
func (s *Scheme) block(x uint32, i int) uint32 {
	shift := PlainBits - (i+1)*s.d
	return (x >> shift) & ((1 << s.d) - 1)
}

// prefix returns the top i blocks of x (0 for i = 0).
func (s *Scheme) prefix(x uint32, i int) uint32 {
	if i == 0 {
		return 0
	}
	shift := PlainBits - i*s.d
	return x >> shift
}

// tag computes the prefix-bound PRF tag for (block index, prefix,
// candidate block value).
func (s *Scheme) tag(i int, prefix, v uint32) [16]byte {
	var buf [12]byte
	binary.BigEndian.PutUint32(buf[0:], uint32(i))
	binary.BigEndian.PutUint32(buf[4:], prefix)
	binary.BigEndian.PutUint32(buf[8:], v)
	full := prim.PRF(s.keyTag, buf[:])
	var out [16]byte
	copy(out[:], full[:16])
	return out
}

// maskKey derives the per-(index, prefix, value) mask key.
func (s *Scheme) maskKey(i int, prefix, v uint32) [32]byte {
	var buf [12]byte
	binary.BigEndian.PutUint32(buf[0:], uint32(i))
	binary.BigEndian.PutUint32(buf[4:], prefix)
	binary.BigEndian.PutUint32(buf[8:], v)
	return prim.PRF(s.keyMask, buf[:])
}

// mask produces the one-byte pad for a comparison entry.
func mask(key [32]byte, nonce []byte) byte {
	h := hmac.New(sha256.New, key[:])
	h.Write(nonce)
	return h.Sum(nil)[0]
}

// LeftBlock is one block of a left ciphertext (query token).
type LeftBlock struct {
	Tag     [16]byte
	MaskKey [32]byte
}

// Left is a query token: the left ciphertext of the queried value.
type Left struct {
	Blocks []LeftBlock
}

// Right is a stored ciphertext: per block, masked comparison entries
// keyed by candidate tag.
type Right struct {
	Nonce  []byte
	Tables []map[[16]byte]byte
}

// EncryptLeft produces the query token for x.
func (s *Scheme) EncryptLeft(x uint32) *Left {
	out := &Left{Blocks: make([]LeftBlock, s.nBlocks)}
	for i := 0; i < s.nBlocks; i++ {
		p := s.prefix(x, i)
		v := s.block(x, i)
		out.Blocks[i] = LeftBlock{Tag: s.tag(i, p, v), MaskKey: s.maskKey(i, p, v)}
	}
	return out
}

// cmpEncode encodes a three-way comparison as a byte.
func cmpEncode(c int) byte {
	switch {
	case c < 0:
		return 0
	case c == 0:
		return 1
	default:
		return 2
	}
}

// EncryptRight produces the stored ciphertext for y using the given
// nonce (which must be unique per ciphertext; 16 random bytes).
func (s *Scheme) EncryptRight(y uint32, nonce []byte) *Right {
	out := &Right{Nonce: append([]byte(nil), nonce...), Tables: make([]map[[16]byte]byte, s.nBlocks)}
	vals := uint32(1) << s.d
	for i := 0; i < s.nBlocks; i++ {
		p := s.prefix(y, i)
		yi := s.block(y, i)
		table := make(map[[16]byte]byte, vals)
		for v := uint32(0); v < vals; v++ {
			var c int
			switch {
			case v < yi:
				c = -1
			case v > yi:
				c = 1
			}
			entry := cmpEncode(c) ^ mask(s.maskKey(i, p, v), nonce)
			table[s.tag(i, p, v)] = entry
		}
		out.Tables[i] = table
	}
	return out
}

// Compare applies a token to a stored ciphertext. It returns the order
// of the token's plaintext x relative to the ciphertext's plaintext y
// (-1, 0, +1) and the index of the first differing block (NumBlocks if
// the plaintexts are equal). The second return value IS the scheme's
// leakage.
func (s *Scheme) Compare(l *Left, r *Right) (order, firstDiffBlock int, err error) {
	if len(l.Blocks) != s.nBlocks || len(r.Tables) != s.nBlocks {
		return 0, 0, fmt.Errorf("ore: ciphertext block count mismatch")
	}
	for i := 0; i < s.nBlocks; i++ {
		entry, ok := r.Tables[i][l.Blocks[i].Tag]
		if !ok {
			// Prefixes diverged before this block without a decision —
			// impossible for well-formed ciphertexts under one key.
			return 0, 0, fmt.Errorf("ore: tag lookup failed at block %d (mismatched keys?)", i)
		}
		c := entry ^ mask(l.Blocks[i].MaskKey, r.Nonce)
		switch c {
		case 0: // x_i < y_i
			return -1, i, nil
		case 2: // x_i > y_i
			return 1, i, nil
		case 1: // equal, continue
		default:
			return 0, 0, fmt.Errorf("ore: corrupt comparison entry %d at block %d", c, i)
		}
	}
	return 0, s.nBlocks, nil
}

// FirstDiffBlock computes analytically what Compare leaks: the index of
// the first d-bit block where x and y differ (NumBlocks when equal).
// attacks/bitleak uses this fast path for large simulations; its
// equivalence to Compare is enforced by property tests.
func (s *Scheme) FirstDiffBlock(x, y uint32) int {
	for i := 0; i < s.nBlocks; i++ {
		if s.block(x, i) != s.block(y, i) {
			return i
		}
	}
	return s.nBlocks
}
