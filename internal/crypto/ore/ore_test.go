package ore

import (
	"crypto/rand"
	"math/bits"
	mrand "math/rand"
	"testing"
	"testing/quick"

	"snapdb/internal/crypto/prim"
)

func nonce(t testing.TB) []byte {
	t.Helper()
	n := make([]byte, 16)
	if _, err := rand.Read(n); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewRejectsBadBlockSize(t *testing.T) {
	for _, d := range []int{0, 3, 5, 7, 32, -1} {
		if _, err := New(prim.TestKey("k"), d); err == nil {
			t.Errorf("block size %d accepted", d)
		}
	}
}

func TestCompareCorrectness(t *testing.T) {
	for _, d := range []int{1, 2, 4, 8} {
		s, err := New(prim.TestKey("ore"), d)
		if err != nil {
			t.Fatal(err)
		}
		cases := []struct{ x, y uint32 }{
			{0, 0}, {0, 1}, {1, 0}, {7, 7},
			{100, 200}, {1 << 31, 1<<31 - 1}, {0xFFFFFFFF, 0xFFFFFFFF},
			{0xFFFFFFFF, 0}, {12345, 12345},
		}
		for _, c := range cases {
			l := s.EncryptLeft(c.x)
			r := s.EncryptRight(c.y, nonce(t))
			order, _, err := s.Compare(l, r)
			if err != nil {
				t.Fatalf("d=%d Compare(%d, %d): %v", d, c.x, c.y, err)
			}
			want := 0
			if c.x < c.y {
				want = -1
			} else if c.x > c.y {
				want = 1
			}
			if order != want {
				t.Errorf("d=%d Compare(%d, %d) = %d, want %d", d, c.x, c.y, order, want)
			}
		}
	}
}

func TestCompareLeaksFirstDiffBlock(t *testing.T) {
	s, err := New(prim.TestKey("ore"), 1)
	if err != nil {
		t.Fatal(err)
	}
	// x and y agree on the top 10 bits, differ at bit 10 (0-indexed).
	x := uint32(0b1010_1010_10_1_000000000000000000000)
	y := uint32(0b1010_1010_10_0_000000000000000000000)
	l := s.EncryptLeft(x)
	r := s.EncryptRight(y, nonce(t))
	order, diff, err := s.Compare(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if order != 1 {
		t.Errorf("order = %d", order)
	}
	if diff != 10 {
		t.Errorf("first diff block = %d, want 10", diff)
	}
}

func TestEqualValuesLeakNumBlocks(t *testing.T) {
	s, _ := New(prim.TestKey("ore"), 4)
	l := s.EncryptLeft(99)
	r := s.EncryptRight(99, nonce(t))
	order, diff, err := s.Compare(l, r)
	if err != nil || order != 0 {
		t.Fatalf("order=%d err=%v", order, err)
	}
	if diff != s.NumBlocks() {
		t.Errorf("diff = %d, want %d", diff, s.NumBlocks())
	}
}

func TestCompareMatchesAnalyticLeakage(t *testing.T) {
	s, _ := New(prim.TestKey("ore"), 1)
	rng := mrand.New(mrand.NewSource(42))
	for i := 0; i < 100; i++ {
		x, y := rng.Uint32(), rng.Uint32()
		l := s.EncryptLeft(x)
		r := s.EncryptRight(y, nonce(t))
		_, diff, err := s.Compare(l, r)
		if err != nil {
			t.Fatal(err)
		}
		if want := s.FirstDiffBlock(x, y); diff != want {
			t.Fatalf("Compare leak %d != analytic %d for (%#x, %#x)", diff, want, x, y)
		}
	}
}

func TestFirstDiffBlockBitBlocks(t *testing.T) {
	s, _ := New(prim.TestKey("ore"), 1)
	f := func(x, y uint32) bool {
		got := s.FirstDiffBlock(x, y)
		if x == y {
			return got == 32
		}
		// For 1-bit blocks, first diff = number of leading common bits.
		want := bits.LeadingZeros32(x ^ y)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMismatchedKeysFail(t *testing.T) {
	s1, _ := New(prim.TestKey("a"), 1)
	s2, _ := New(prim.TestKey("b"), 1)
	l := s1.EncryptLeft(5)
	r := s2.EncryptRight(5, nonce(t))
	if _, _, err := s1.Compare(l, r); err == nil {
		t.Error("cross-key comparison succeeded")
	}
}

func TestMismatchedBlockCountFails(t *testing.T) {
	s1, _ := New(prim.TestKey("a"), 1)
	s8, _ := New(prim.TestKey("a"), 8)
	l := s1.EncryptLeft(5)
	r := s8.EncryptRight(5, nonce(t))
	if _, _, err := s8.Compare(l, r); err == nil {
		t.Error("mismatched block structure accepted")
	}
}

func TestRightCiphertextHidesValueWithoutToken(t *testing.T) {
	// Two right ciphertexts of the same value with different nonces must
	// differ (the scheme is not deterministic, unlike the one attacked
	// in the Grubbs et al. S&P'17 paper).
	s, _ := New(prim.TestKey("ore"), 1)
	r1 := s.EncryptRight(7, nonce(t))
	r2 := s.EncryptRight(7, nonce(t))
	same := true
	for i := range r1.Tables {
		for tag, v := range r1.Tables[i] {
			if v2, ok := r2.Tables[i][tag]; !ok || v2 != v {
				same = false
			}
		}
	}
	if same {
		t.Error("right ciphertexts of equal plaintexts are identical across nonces")
	}
}

func TestQuickCompareOrder(t *testing.T) {
	s, _ := New(prim.TestKey("quick"), 4)
	n := nonce(t)
	f := func(x, y uint32) bool {
		l := s.EncryptLeft(x)
		r := s.EncryptRight(y, n)
		order, _, err := s.Compare(l, r)
		if err != nil {
			return false
		}
		switch {
		case x < y:
			return order == -1
		case x > y:
			return order == 1
		default:
			return order == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncryptRightBlock1(b *testing.B) {
	s, _ := New(prim.TestKey("bench"), 1)
	n := make([]byte, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.EncryptRight(uint32(i), n)
	}
}

func BenchmarkCompare(b *testing.B) {
	s, _ := New(prim.TestKey("bench"), 1)
	n := make([]byte, 16)
	l := s.EncryptLeft(123456)
	r := s.EncryptRight(654321, n)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Compare(l, r); err != nil {
			b.Fatal(err)
		}
	}
}
