// Package ashe implements Seabed's additively symmetric homomorphic
// encryption (ASHE). A value m with row id i encrypts to
//
//	ct_i = m + F_k(i) - F_k(i-1)   (mod 2^64)
//
// so the sum of ciphertexts over a contiguous id range [a, b]
// telescopes to  sum(m) + F_k(b) - F_k(a-1): the server can aggregate
// blind, and the client strips the two boundary pads. ASHE is the
// "ashe()" summation the paper quotes from Seabed's Table 2.
package ashe

import (
	"fmt"

	"snapdb/internal/crypto/prim"
)

// Scheme is an ASHE instance bound to one key (one per column).
type Scheme struct {
	key prim.Key
}

// New creates a scheme.
func New(key prim.Key) *Scheme { return &Scheme{key: key} }

// pad evaluates F_k(i). F_k(-1-ish boundary) uses id 0; callers use ids
// starting at 1.
func (s *Scheme) pad(id uint64) uint64 { return prim.PRFUint64(s.key, id) }

// Encrypt encrypts value m for row id (ids must start at 1 and be
// unique per column).
func (s *Scheme) Encrypt(id uint64, m uint64) (uint64, error) {
	if id == 0 {
		return 0, fmt.Errorf("ashe: row ids start at 1")
	}
	return m + s.pad(id) - s.pad(id-1), nil
}

// Decrypt recovers a single row's value.
func (s *Scheme) Decrypt(id uint64, ct uint64) (uint64, error) {
	if id == 0 {
		return 0, fmt.Errorf("ashe: row ids start at 1")
	}
	return ct - s.pad(id) + s.pad(id-1), nil
}

// AggregateDecrypt recovers sum(m_a..m_b) from the server-computed sum
// of ciphertexts over the contiguous id range [a, b].
func (s *Scheme) AggregateDecrypt(sum uint64, a, b uint64) (uint64, error) {
	if a == 0 || b < a {
		return 0, fmt.Errorf("ashe: invalid id range [%d, %d]", a, b)
	}
	return sum - s.pad(b) + s.pad(a-1), nil
}

// Sum adds ciphertexts the way the server does (mod 2^64 wraparound is
// the scheme's group operation).
func Sum(cts []uint64) uint64 {
	var out uint64
	for _, c := range cts {
		out += c
	}
	return out
}
