package ashe

import (
	"testing"
	"testing/quick"

	"snapdb/internal/crypto/prim"
)

func TestRoundTrip(t *testing.T) {
	s := New(prim.TestKey("ashe"))
	for id := uint64(1); id <= 100; id++ {
		m := id * 7
		ct, err := s.Encrypt(id, m)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := s.Decrypt(id, ct)
		if err != nil {
			t.Fatal(err)
		}
		if pt != m {
			t.Fatalf("id %d: got %d want %d", id, pt, m)
		}
	}
}

func TestIDZeroRejected(t *testing.T) {
	s := New(prim.TestKey("ashe"))
	if _, err := s.Encrypt(0, 1); err == nil {
		t.Error("id 0 accepted by Encrypt")
	}
	if _, err := s.Decrypt(0, 1); err == nil {
		t.Error("id 0 accepted by Decrypt")
	}
}

func TestAggregateTelescopes(t *testing.T) {
	s := New(prim.TestKey("ashe"))
	var cts []uint64
	var want uint64
	for id := uint64(1); id <= 50; id++ {
		m := id % 2 // 0/1 column as SPLASHE uses it
		want += m
		ct, err := s.Encrypt(id, m)
		if err != nil {
			t.Fatal(err)
		}
		cts = append(cts, ct)
	}
	got, err := s.AggregateDecrypt(Sum(cts), 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("aggregate = %d, want %d", got, want)
	}
}

func TestAggregateSubrange(t *testing.T) {
	s := New(prim.TestKey("ashe"))
	cts := make(map[uint64]uint64)
	for id := uint64(1); id <= 100; id++ {
		ct, _ := s.Encrypt(id, id)
		cts[id] = ct
	}
	var sum uint64
	for id := uint64(10); id <= 20; id++ {
		sum += cts[id]
	}
	got, err := s.AggregateDecrypt(sum, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64((10 + 20) * 11 / 2)
	if got != want {
		t.Errorf("subrange aggregate = %d, want %d", got, want)
	}
}

func TestAggregateInvalidRange(t *testing.T) {
	s := New(prim.TestKey("ashe"))
	if _, err := s.AggregateDecrypt(0, 0, 5); err == nil {
		t.Error("range starting at 0 accepted")
	}
	if _, err := s.AggregateDecrypt(0, 5, 4); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestCiphertextHidesValue(t *testing.T) {
	// Equal plaintexts at different ids must produce unrelated
	// ciphertexts (ASHE's defence against frequency analysis on the
	// stored data).
	s := New(prim.TestKey("ashe"))
	a, _ := s.Encrypt(1, 42)
	b, _ := s.Encrypt(2, 42)
	if a == b {
		t.Error("equal values at different rows encrypt identically")
	}
}

func TestQuickRoundTripAndWraparound(t *testing.T) {
	s := New(prim.TestKey("quick"))
	f := func(id uint64, m uint64) bool {
		if id == 0 {
			id = 1
		}
		ct, err := s.Encrypt(id, m)
		if err != nil {
			return false
		}
		pt, err := s.Decrypt(id, ct)
		return err == nil && pt == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	s := New(prim.TestKey("bench"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Encrypt(uint64(i+1), 1); err != nil {
			b.Fatal(err)
		}
	}
}
