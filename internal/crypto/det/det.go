// Package det implements deterministic encryption (DET) over SQL
// values, the onion layer CryptDB uses for equality predicates and
// Seabed uses for join columns. Equal plaintexts produce equal
// ciphertexts, which is what makes server-side equality work — and what
// makes the ciphertext column vulnerable to frequency analysis (§6).
//
// Ciphertexts are hex strings so they embed directly in rewritten SQL.
package det

import (
	"encoding/hex"
	"fmt"

	"snapdb/internal/crypto/prim"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// Scheme is a DET instance bound to one key (callers derive one key per
// column).
type Scheme struct {
	key prim.Key
}

// New creates a scheme from a column key.
func New(key prim.Key) *Scheme { return &Scheme{key: key} }

// EncryptValue deterministically encrypts a SQL value.
func (s *Scheme) EncryptValue(v sqlparse.Value) (string, error) {
	enc := storage.EncodeRecord(storage.Record{v})
	ct, err := prim.EncryptDeterministic(s.key, enc)
	if err != nil {
		return "", fmt.Errorf("det: %w", err)
	}
	return hex.EncodeToString(ct), nil
}

// DecryptValue reverses EncryptValue.
func (s *Scheme) DecryptValue(ct string) (sqlparse.Value, error) {
	raw, err := hex.DecodeString(ct)
	if err != nil {
		return sqlparse.Value{}, fmt.Errorf("det: ciphertext is not hex: %w", err)
	}
	pt, err := prim.Decrypt(s.key, raw)
	if err != nil {
		return sqlparse.Value{}, fmt.Errorf("det: %w", err)
	}
	rec, _, err := storage.DecodeRecord(pt)
	if err != nil || len(rec) != 1 {
		return sqlparse.Value{}, fmt.Errorf("det: malformed plaintext")
	}
	return rec[0], nil
}
