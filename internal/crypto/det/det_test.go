package det

import (
	"testing"
	"testing/quick"

	"snapdb/internal/crypto/prim"
	"snapdb/internal/sqlparse"
)

func TestRoundTrip(t *testing.T) {
	s := New(prim.TestKey("det"))
	for _, v := range []sqlparse.Value{
		sqlparse.IntValue(0), sqlparse.IntValue(-9), sqlparse.IntValue(1 << 40),
		sqlparse.StrValue(""), sqlparse.StrValue("alice"), sqlparse.StrValue("O'Brien"),
	} {
		ct, err := s.EncryptValue(v)
		if err != nil {
			t.Fatalf("Encrypt(%v): %v", v, err)
		}
		pt, err := s.DecryptValue(ct)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if !pt.Equal(v) {
			t.Errorf("round trip: got %v want %v", pt, v)
		}
	}
}

func TestDeterminism(t *testing.T) {
	s := New(prim.TestKey("det"))
	a, _ := s.EncryptValue(sqlparse.StrValue("same"))
	b, _ := s.EncryptValue(sqlparse.StrValue("same"))
	if a != b {
		t.Error("equal plaintexts encrypted differently")
	}
	c, _ := s.EncryptValue(sqlparse.StrValue("other"))
	if a == c {
		t.Error("distinct plaintexts encrypted equally")
	}
}

func TestIntAndStringDomainsSeparate(t *testing.T) {
	s := New(prim.TestKey("det"))
	a, _ := s.EncryptValue(sqlparse.IntValue(5))
	b, _ := s.EncryptValue(sqlparse.StrValue("5"))
	if a == b {
		t.Error("IntValue(5) and StrValue(\"5\") collide")
	}
}

func TestKeysIndependent(t *testing.T) {
	a, _ := New(prim.TestKey("k1")).EncryptValue(sqlparse.StrValue("v"))
	b, _ := New(prim.TestKey("k2")).EncryptValue(sqlparse.StrValue("v"))
	if a == b {
		t.Error("different keys produced equal ciphertexts")
	}
}

func TestDecryptRejectsGarbage(t *testing.T) {
	s := New(prim.TestKey("det"))
	if _, err := s.DecryptValue("not hex!"); err == nil {
		t.Error("non-hex accepted")
	}
	if _, err := s.DecryptValue("deadbeef"); err == nil {
		t.Error("short ciphertext accepted")
	}
	ct, _ := s.EncryptValue(sqlparse.StrValue("v"))
	other := New(prim.TestKey("other"))
	if _, err := other.DecryptValue(ct); err == nil {
		t.Error("wrong-key decrypt accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	s := New(prim.TestKey("quick"))
	f := func(n int64, str string, isInt bool) bool {
		var v sqlparse.Value
		if isInt {
			v = sqlparse.IntValue(n)
		} else {
			v = sqlparse.StrValue(str)
		}
		ct, err := s.EncryptValue(v)
		if err != nil {
			return false
		}
		pt, err := s.DecryptValue(ct)
		return err == nil && pt.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	s := New(prim.TestKey("bench"))
	v := sqlparse.StrValue("benchmark value")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.EncryptValue(v); err != nil {
			b.Fatal(err)
		}
	}
}
