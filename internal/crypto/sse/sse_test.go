package sse

import (
	"testing"

	"snapdb/internal/crypto/prim"
)

func TestTokenDeterministic(t *testing.T) {
	s := New(prim.TestKey("sse"))
	if s.TokenFor("medical") != s.TokenFor("medical") {
		t.Error("token not deterministic")
	}
	if s.TokenFor("medical") == s.TokenFor("legal") {
		t.Error("distinct keywords share a token")
	}
}

func TestMatches(t *testing.T) {
	s := New(prim.TestKey("sse"))
	ct, err := s.EncryptKeyword("confidential")
	if err != nil {
		t.Fatal(err)
	}
	if !Matches(s.TokenFor("confidential"), ct) {
		t.Error("matching token rejected")
	}
	if Matches(s.TokenFor("public"), ct) {
		t.Error("non-matching token accepted")
	}
}

func TestCiphertextsRandomized(t *testing.T) {
	s := New(prim.TestKey("sse"))
	a, _ := s.EncryptKeyword("w")
	b, _ := s.EncryptKeyword("w")
	if a.Salt == b.Salt {
		t.Error("salts repeat")
	}
	if a.MAC == b.MAC {
		t.Error("ciphertexts of the same keyword are identical (must be randomized)")
	}
}

func TestIndexSearch(t *testing.T) {
	s := New(prim.TestKey("sse"))
	ix := NewIndex()
	docs := map[int][]string{
		1: {"alpha", "beta"},
		2: {"beta", "gamma"},
		3: {"gamma"},
	}
	for id, kws := range docs {
		if err := ix.AddDocument(s, id, kws); err != nil {
			t.Fatal(err)
		}
	}
	if ix.NumDocuments() != 3 {
		t.Fatalf("docs = %d", ix.NumDocuments())
	}
	got := ix.Search(s.TokenFor("beta"))
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Search(beta) = %v", got)
	}
	if got := ix.Search(s.TokenFor("delta")); len(got) != 0 {
		t.Errorf("Search(delta) = %v", got)
	}
}

func TestSearchWithStolenTokenNeedsNoKey(t *testing.T) {
	// The attack surface: a token recovered from a snapshot works
	// without the scheme or its key.
	s := New(prim.TestKey("sse"))
	ix := NewIndex()
	if err := ix.AddDocument(s, 7, []string{"secret-term"}); err != nil {
		t.Fatal(err)
	}
	stolen := s.TokenFor("secret-term") // found in heap/logs
	got := ix.Search(stolen)            // no *Scheme needed
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("stolen token search = %v", got)
	}
}

func TestDuplicateKeywordInDocument(t *testing.T) {
	s := New(prim.TestKey("sse"))
	ix := NewIndex()
	if err := ix.AddDocument(s, 1, []string{"w", "w"}); err != nil {
		t.Fatal(err)
	}
	got := ix.Search(s.TokenFor("w"))
	if len(got) != 1 {
		t.Errorf("duplicate keyword produced %v", got)
	}
}

func BenchmarkSearch1000Docs(b *testing.B) {
	s := New(prim.TestKey("bench"))
	ix := NewIndex()
	for i := 0; i < 1000; i++ {
		kw := "common"
		if i%10 == 0 {
			kw = "rare"
		}
		if err := ix.AddDocument(s, i, []string{kw}); err != nil {
			b.Fatal(err)
		}
	}
	tok := s.TokenFor("rare")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Search(tok)
	}
}
