// Package sse implements a searchable symmetric encryption scheme in
// the style of Song-Wagner-Perrig (the construction underlying CryptDB
// and Mylar's search): the client derives a deterministic token from a
// keyword, and the server tests each document's searchable ciphertexts
// against the token.
//
// Semantic security holds only while the adversary has no tokens: as §6
// of the paper explains, a single token recovered from a snapshot lets
// the attacker re-run the search and learn which documents match. The
// result *count* then feeds the count attack (attacks/leakabuse).
package sse

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"sort"

	"snapdb/internal/crypto/prim"
)

// Token is the search trapdoor for one keyword.
type Token [32]byte

// Scheme is an SSE instance bound to one key.
type Scheme struct {
	key prim.Key
}

// New creates a scheme.
func New(key prim.Key) *Scheme { return &Scheme{key: key} }

// TokenFor derives the search token for a keyword. Deterministic: the
// same keyword always yields the same token, which is what makes tokens
// found in logs/heap reusable by an attacker.
func (s *Scheme) TokenFor(keyword string) Token {
	return Token(prim.PRFString(s.key, keyword))
}

// SearchableCiphertext is the per-(document, keyword) value stored by
// the server: salt || HMAC(token, salt).
type SearchableCiphertext struct {
	Salt [16]byte
	MAC  [32]byte
}

// EncryptKeyword produces the searchable ciphertext binding keyword to
// a document.
func (s *Scheme) EncryptKeyword(keyword string) (SearchableCiphertext, error) {
	var ct SearchableCiphertext
	if _, err := rand.Read(ct.Salt[:]); err != nil {
		return ct, fmt.Errorf("sse: sampling salt: %w", err)
	}
	tok := s.TokenFor(keyword)
	ct.MAC = bind(tok, ct.Salt)
	return ct, nil
}

func bind(tok Token, salt [16]byte) [32]byte {
	h := hmac.New(sha256.New, tok[:])
	h.Write(salt[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Matches tests a searchable ciphertext against a token. Anyone holding
// the token — client or snapshot attacker — can run this.
func Matches(tok Token, ct SearchableCiphertext) bool {
	want := bind(tok, ct.Salt)
	return hmac.Equal(want[:], ct.MAC[:])
}

// Index is the server-side searchable index: per document, the
// searchable ciphertexts of its keywords.
type Index struct {
	docs map[int][]SearchableCiphertext
}

// NewIndex creates an empty index.
func NewIndex() *Index { return &Index{docs: make(map[int][]SearchableCiphertext)} }

// AddDocument indexes a document's keywords.
func (ix *Index) AddDocument(s *Scheme, docID int, keywords []string) error {
	cts := make([]SearchableCiphertext, 0, len(keywords))
	for _, w := range keywords {
		ct, err := s.EncryptKeyword(w)
		if err != nil {
			return err
		}
		cts = append(cts, ct)
	}
	ix.docs[docID] = append(ix.docs[docID], cts...)
	return nil
}

// NumDocuments returns the number of indexed documents.
func (ix *Index) NumDocuments() int { return len(ix.docs) }

// Search returns the ids of documents containing the token's keyword,
// in ascending order. This is exactly the computation a snapshot
// attacker replays with a recovered token.
func (ix *Index) Search(tok Token) []int {
	var out []int
	for id, cts := range ix.docs {
		for _, ct := range cts {
			if Matches(tok, ct) {
				out = append(out, id)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}
