package ope

import (
	"math/rand"
	"testing"
	"testing/quick"

	"snapdb/internal/crypto/prim"
)

func TestOrderPreserved(t *testing.T) {
	s := New(prim.TestKey("ope"))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		x, y := rng.Uint32(), rng.Uint32()
		cx, cy := s.Encrypt(x), s.Encrypt(y)
		switch {
		case x < y && cx >= cy:
			t.Fatalf("order violated: Enc(%d)=%d >= Enc(%d)=%d", x, cx, y, cy)
		case x > y && cx <= cy:
			t.Fatalf("order violated: Enc(%d)=%d <= Enc(%d)=%d", x, cx, y, cy)
		case x == y && cx != cy:
			t.Fatalf("determinism violated at %d", x)
		}
	}
}

func TestBoundaries(t *testing.T) {
	s := New(prim.TestKey("ope"))
	lo := s.Encrypt(0)
	hi := s.Encrypt(1<<32 - 1)
	if lo >= hi {
		t.Errorf("Enc(0)=%d >= Enc(max)=%d", lo, hi)
	}
	if hi >= 1<<63 {
		t.Errorf("ciphertext %d exceeds the 63-bit range", hi)
	}
}

func TestAdjacentValuesDistinct(t *testing.T) {
	s := New(prim.TestKey("ope"))
	for _, x := range []uint32{0, 1, 1000, 1 << 20, 1<<32 - 2} {
		if s.Encrypt(x) >= s.Encrypt(x+1) {
			t.Errorf("Enc(%d) >= Enc(%d)", x, x+1)
		}
	}
}

func TestDecryptRoundTrip(t *testing.T) {
	s := New(prim.TestKey("ope"))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		x := rng.Uint32()
		pt, err := s.Decrypt(s.Encrypt(x))
		if err != nil {
			t.Fatalf("Decrypt(Enc(%d)): %v", x, err)
		}
		if pt != x {
			t.Fatalf("round trip: got %d want %d", pt, x)
		}
	}
}

func TestDecryptRejectsNonCiphertext(t *testing.T) {
	s := New(prim.TestKey("ope"))
	c := s.Encrypt(12345)
	// A value strictly between two ciphertexts is invalid with high
	// probability; try a few offsets until one is not a valid ct.
	rejected := false
	for off := uint64(1); off < 64; off++ {
		if _, err := s.Decrypt(c + off); err != nil {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Error("no nearby non-ciphertext was rejected; Decrypt is not validating")
	}
}

func TestKeysProduceDifferentMappings(t *testing.T) {
	a := New(prim.TestKey("ka"))
	b := New(prim.TestKey("kb"))
	same := 0
	for x := uint32(0); x < 64; x++ {
		if a.Encrypt(x) == b.Encrypt(x) {
			same++
		}
	}
	if same > 4 {
		t.Errorf("%d/64 ciphertexts identical across keys", same)
	}
}

func TestQuickMonotone(t *testing.T) {
	s := New(prim.TestKey("quick"))
	f := func(x, y uint32) bool {
		cx, cy := s.Encrypt(x), s.Encrypt(y)
		switch {
		case x < y:
			return cx < cy
		case x > y:
			return cx > cy
		default:
			return cx == cy
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	s := New(prim.TestKey("bench"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Encrypt(uint32(i))
	}
}
