// Package ope implements order-preserving encryption over the 32-bit
// unsigned integer domain: x < y implies Enc(x) < Enc(y), so the DBMS
// can evaluate range predicates on ciphertexts directly. This is the
// OPE onion layer of CryptDB.
//
// The construction is a keyed lazy-sampled binary search (in the style
// of Boldyreva et al.): the ciphertext range [0, 2^63) is recursively
// split around pseudorandom pivots derived from the key and the domain
// interval, so the mapping is deterministic, strictly monotone, and
// stateless. OPE ciphertexts leak order (and approximate magnitude) by
// construction — the "always leaks" class of PRE the paper discusses.
package ope

import (
	"encoding/binary"
	"fmt"

	"snapdb/internal/crypto/prim"
)

// DomainBits is the plaintext domain size in bits.
const DomainBits = 32

// rangeBits is the ciphertext range size in bits.
const rangeBits = 63

// Scheme is an OPE instance bound to one key.
type Scheme struct {
	key prim.Key
}

// New creates a scheme from a column key.
func New(key prim.Key) *Scheme { return &Scheme{key: key} }

// pivot returns a pseudorandom split of the ciphertext range [rlo, rhi]
// for the domain interval [dlo, dhi] cut at dmid: the left subrange
// [rlo, pivot] covers plaintexts [dlo, dmid] and the right subrange
// (pivot, rhi] covers (dmid, dhi]. The pivot is constrained so each
// side keeps at least one ciphertext per remaining plaintext, which
// makes the full mapping injective and strictly monotone.
func (s *Scheme) pivot(dlo, dmid, dhi, rlo, rhi uint64) uint64 {
	leftDomain := dmid - dlo + 1
	rightDomain := dhi - dmid
	min := rlo + leftDomain - 1
	max := rhi - rightDomain
	if max <= min {
		return min
	}
	var buf [32]byte
	binary.BigEndian.PutUint64(buf[0:], dlo)
	binary.BigEndian.PutUint64(buf[8:], dhi)
	binary.BigEndian.PutUint64(buf[16:], rlo)
	binary.BigEndian.PutUint64(buf[24:], rhi)
	r := prim.PRF(s.key, buf[:])
	return min + binary.BigEndian.Uint64(r[:8])%(max-min+1)
}

// Encrypt maps a 32-bit plaintext to its 63-bit ciphertext.
func (s *Scheme) Encrypt(x uint32) uint64 {
	dlo, dhi := uint64(0), uint64(1)<<DomainBits-1
	rlo, rhi := uint64(0), uint64(1)<<rangeBits-1
	v := uint64(x)
	for dlo < dhi {
		dmid := dlo + (dhi-dlo)/2
		rmid := s.pivot(dlo, dmid, dhi, rlo, rhi)
		if v <= dmid {
			dhi = dmid
			rhi = rmid
		} else {
			dlo = dmid + 1
			rlo = rmid + 1
		}
	}
	return rlo
}

// Decrypt recovers the plaintext from a ciphertext produced by Encrypt.
func (s *Scheme) Decrypt(c uint64) (uint32, error) {
	dlo, dhi := uint64(0), uint64(1)<<DomainBits-1
	rlo, rhi := uint64(0), uint64(1)<<rangeBits-1
	for dlo < dhi {
		dmid := dlo + (dhi-dlo)/2
		rmid := s.pivot(dlo, dmid, dhi, rlo, rhi)
		if c <= rmid {
			dhi = dmid
			rhi = rmid
		} else {
			dlo = dmid + 1
			rlo = rmid + 1
		}
	}
	if s.Encrypt(uint32(dlo)) != c {
		return 0, fmt.Errorf("ope: %d is not a valid ciphertext", c)
	}
	return uint32(dlo), nil
}
