// Package failpoint implements seeded, deterministic fault injection
// for the persistence layer. Test harnesses (and the server, via the
// SNAPDB_FAILPOINTS environment variable) arm named failpoints with a
// fault kind and a hit count; the fault-injecting file layer
// (internal/vfs.FaultFS) evaluates a failpoint before every file
// operation and applies whatever fault fires.
//
// Determinism is the point: the crash-torture harness replays the same
// workload against the same seed and kill-point and must reach the same
// byte state every time. All randomness (torn-write lengths, bit-flip
// positions) comes from the registry's seeded generator.
package failpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
)

// Kind is the kind of fault a rule injects.
type Kind int

// Fault kinds.
const (
	// KindErr fails the operation with ErrInjected without performing it.
	KindErr Kind = iota + 1
	// KindTorn applies a seeded prefix of a write, then fails it —
	// the partial flush a power cut leaves behind.
	KindTorn
	// KindDropSync makes a sync report success without syncing: the
	// lying-fsync failure mode. Data is silently lost at the next crash.
	KindDropSync
	// KindBitFlip corrupts one seeded bit of a write and reports
	// success: silent media corruption, caught only by checksums.
	KindBitFlip
	// KindCrash kills the process at this operation: the triggering
	// write (if any) is torn, and every subsequent operation fails
	// with ErrCrashed.
	KindCrash
	// Network fault kinds, consumed by internal/netfault's Conn and
	// Listener wrappers (the file layer never injects them). They mirror
	// the storage kinds: Reset is the network's KindErr, Partial its
	// KindTorn.

	// KindReset closes the connection and fails the operation: the
	// mid-statement TCP RST a dying peer or middlebox produces.
	KindReset
	// KindPartial delivers a seeded prefix of a write, then resets —
	// the half-flushed reply a crash leaves on the wire.
	KindPartial
	// KindLatency delays the operation a seeded duration, then performs
	// it normally: congestion and scheduling jitter.
	KindLatency
	// KindBlackhole makes a read hang (no bytes, no error) for the
	// configured hold, then resets: the silently dropped route.
	KindBlackhole
)

func (k Kind) String() string {
	switch k {
	case KindErr:
		return "err"
	case KindTorn:
		return "torn"
	case KindDropSync:
		return "dropsync"
	case KindBitFlip:
		return "bitflip"
	case KindCrash:
		return "crash"
	case KindReset:
		return "reset"
	case KindPartial:
		return "partial"
	case KindLatency:
		return "latency"
	case KindBlackhole:
		return "blackhole"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// kindFromName parses a Kind name as used in failpoint specs.
func kindFromName(s string) (Kind, error) {
	for k := KindErr; k <= KindBlackhole; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("failpoint: unknown fault kind %q", s)
}

// ErrInjected is the error surfaced by operations failed via KindErr or
// KindTorn.
var ErrInjected = errors.New("failpoint: injected I/O error")

// ErrCrashed is returned by every operation after a KindCrash fired:
// the simulated process is dead.
var ErrCrashed = errors.New("failpoint: crashed")

// Rule arms one failpoint.
type Rule struct {
	// Point selects which operations the rule matches: an exact
	// point name ("write:ib_logfile_redo"), a prefix ending in '*'
	// ("write:*"), or "*" for every operation.
	Point string
	// Kind is the fault to inject.
	Kind Kind
	// OnHit fires the rule exactly once, on the OnHit-th matching
	// operation (1-based). Zero fires on every matching operation.
	OnHit uint64

	hits  uint64
	fired bool
}

func (r *Rule) matches(point string) bool {
	if r.Point == "*" {
		return true
	}
	if p, ok := strings.CutSuffix(r.Point, "*"); ok {
		return strings.HasPrefix(point, p)
	}
	return r.Point == point
}

// Registry is a set of armed failpoints plus the seeded randomness the
// injected faults consume. The zero registry is not usable; call New.
type Registry struct {
	mu      sync.Mutex
	rng     *rand.Rand
	rules   []*Rule
	total   uint64
	byPoint map[string]uint64
	crashed bool
}

// New creates a registry whose fault randomness derives from seed.
func New(seed int64) *Registry {
	return &Registry{rng: rand.New(rand.NewSource(seed)), byPoint: make(map[string]uint64)}
}

// Arm adds a rule. Rules are evaluated in arming order; the first
// match fires.
func (r *Registry) Arm(point string, kind Kind, onHit uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rules = append(r.rules, &Rule{Point: point, Kind: kind, OnHit: onHit})
}

// ArmSpec arms rules from a comma-separated spec string, the format of
// the SNAPDB_FAILPOINTS environment variable:
//
//	point=kind[@hit][,point=kind[@hit]...]
//
// e.g. "write:ib_logfile_redo=crash@17,sync:*=dropsync@3". Omitting
// @hit fires on every matching operation.
func (r *Registry) ArmSpec(spec string) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		point, rest, ok := strings.Cut(part, "=")
		if !ok || point == "" {
			return fmt.Errorf("failpoint: bad spec %q (want point=kind[@hit])", part)
		}
		kindName, hitStr, hasHit := strings.Cut(rest, "@")
		kind, err := kindFromName(kindName)
		if err != nil {
			return err
		}
		var onHit uint64
		if hasHit {
			onHit, err = strconv.ParseUint(hitStr, 10, 64)
			if err != nil || onHit == 0 {
				return fmt.Errorf("failpoint: bad hit count in %q", part)
			}
		}
		r.Arm(point, kind, onHit)
	}
	return nil
}

// Eval records one operation at the named point and reports the fault
// to inject, if any. After a KindCrash fires, every call reports
// KindCrash.
func (r *Registry) Eval(point string) (Kind, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	r.byPoint[point]++
	if r.crashed {
		return KindCrash, true
	}
	for _, rule := range r.rules {
		if rule.fired || !rule.matches(point) {
			continue
		}
		rule.hits++
		if rule.OnHit != 0 {
			if rule.hits != rule.OnHit {
				continue
			}
			rule.fired = true
		}
		if rule.Kind == KindCrash {
			r.crashed = true
		}
		return rule.Kind, true
	}
	return 0, false
}

// Crashed reports whether a KindCrash fault has fired.
func (r *Registry) Crashed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.crashed
}

// TotalHits returns how many operations have been evaluated — the dry
// run of the torture harness uses it to enumerate kill-points.
func (r *Registry) TotalHits() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// PointHits returns how many operations have been evaluated at exactly
// the named point. The network-torture dry runs use it to enumerate a
// single point's fault schedule (e.g. every "netwrite:srv" operation)
// without counting the other points' traffic.
func (r *Registry) PointHits(point string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byPoint[point]
}

// Intn returns a seeded pseudo-random int in [0, n), for torn-write
// lengths and bit-flip positions.
func (r *Registry) Intn(n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 {
		return 0
	}
	return r.rng.Intn(n)
}
