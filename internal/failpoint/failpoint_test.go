package failpoint

import (
	"testing"
)

func TestArmOnHitFiresOnce(t *testing.T) {
	r := New(1)
	r.Arm("write:redo", KindErr, 3)
	for i := 1; i <= 5; i++ {
		kind, fired := r.Eval("write:redo")
		if i == 3 {
			if !fired || kind != KindErr {
				t.Fatalf("hit %d: kind=%v fired=%v, want err fire", i, kind, fired)
			}
		} else if fired {
			t.Fatalf("hit %d: unexpected fire %v", i, kind)
		}
	}
}

func TestEveryHit(t *testing.T) {
	r := New(1)
	r.Arm("sync:*", KindDropSync, 0)
	for i := 0; i < 3; i++ {
		if kind, fired := r.Eval("sync:binlog.000001"); !fired || kind != KindDropSync {
			t.Fatalf("eval %d: kind=%v fired=%v", i, kind, fired)
		}
	}
	if _, fired := r.Eval("write:binlog.000001"); fired {
		t.Fatal("write matched a sync rule")
	}
}

func TestCrashIsSticky(t *testing.T) {
	r := New(1)
	r.Arm("*", KindCrash, 2)
	if _, fired := r.Eval("write:a"); fired {
		t.Fatal("fired on first hit")
	}
	if kind, fired := r.Eval("sync:b"); !fired || kind != KindCrash {
		t.Fatal("crash did not fire on second hit")
	}
	if !r.Crashed() {
		t.Fatal("Crashed() false after crash")
	}
	if kind, fired := r.Eval("anything"); !fired || kind != KindCrash {
		t.Fatalf("post-crash op not crashed: %v %v", kind, fired)
	}
}

func TestWildcardAndPrefix(t *testing.T) {
	r := New(1)
	r.Arm("write:ib_*", KindBitFlip, 0)
	if _, fired := r.Eval("write:binlog.000001"); fired {
		t.Fatal("prefix rule matched wrong name")
	}
	if kind, fired := r.Eval("write:ib_logfile_redo"); !fired || kind != KindBitFlip {
		t.Fatalf("prefix rule missed: %v %v", kind, fired)
	}
}

func TestArmSpec(t *testing.T) {
	r := New(1)
	if err := r.ArmSpec("write:redo=crash@17, sync:*=dropsync"); err != nil {
		t.Fatal(err)
	}
	if len(r.rules) != 2 {
		t.Fatalf("rules = %d", len(r.rules))
	}
	if r.rules[0].Kind != KindCrash || r.rules[0].OnHit != 17 {
		t.Fatalf("rule 0 = %+v", r.rules[0])
	}
	if r.rules[1].Kind != KindDropSync || r.rules[1].OnHit != 0 {
		t.Fatalf("rule 1 = %+v", r.rules[1])
	}
	for _, bad := range []string{"novalue", "p=unknown", "p=crash@0", "p=crash@x"} {
		if err := New(1).ArmSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestDeterministicRandomness(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 10; i++ {
		if x, y := a.Intn(1000), b.Intn(1000); x != y {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, x, y)
		}
	}
}

func TestTotalHitsCountsEverything(t *testing.T) {
	r := New(1)
	r.Eval("a")
	r.Eval("b")
	r.Eval("a")
	if got := r.TotalHits(); got != 3 {
		t.Fatalf("TotalHits = %d", got)
	}
}
