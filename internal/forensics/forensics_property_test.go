package forensics

import (
	"strings"
	"testing"
	"testing/quick"

	"snapdb/internal/binlog"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
	"snapdb/internal/wal"
)

// TestQuickInsertReconstructionRoundTrip: any insert logged to the WAL
// reconstructs to SQL that parses back to the same row.
func TestQuickInsertReconstructionRoundTrip(t *testing.T) {
	cat := Catalog{1: {Name: "t", Columns: []string{"id", "a", "b"}}}
	f := func(key int64, a string, b int64) bool {
		if strings.ContainsRune(a, 0) {
			return true // NUL not representable in SQL text
		}
		m, err := wal.NewManager(1<<20, 1<<20)
		if err != nil {
			return false
		}
		row := storage.Record{sqlparse.IntValue(key), sqlparse.StrValue(a), sqlparse.IntValue(b)}
		m.LogInsert(1, row)
		writes, err := ReconstructWrites(m.Redo.Serialize(), m.Undo.Serialize(), cat)
		if err != nil || len(writes) != 1 {
			return false
		}
		stmt, err := sqlparse.Parse(writes[0].SQL)
		if err != nil {
			return false
		}
		ins, ok := stmt.(*sqlparse.Insert)
		if !ok || len(ins.Rows) != 1 {
			return false
		}
		got := storage.Record(ins.Rows[0])
		return got.Equal(row)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickCorrelationRecoversLinearClock: for any positive slope and
// intercept, fitting events sampled from that line recovers it.
func TestQuickCorrelationRecoversLinearClock(t *testing.T) {
	f := func(rateRaw uint8, baseRaw uint16) bool {
		rate := int(rateRaw)%200 + 1 // bytes of WAL per second
		base := int64(baseRaw) + 1_000_000
		var evs []binlog.Event
		for i := 0; i < 50; i++ {
			evs = append(evs, binlog.Event{Timestamp: base + int64(i), LSN: uint64(100_000 + rate*i)})
		}
		c, err := CorrelateBinlog(evs)
		if err != nil {
			return false
		}
		// Interpolate and extrapolate.
		for _, probe := range []int{-20, 0, 25, 80} {
			lsn := uint64(100_000 + rate*probe)
			want := base + int64(probe)
			got := c.Date(lsn)
			if got < want-1 || got > want+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestTornWALFuzz injects corruption at every byte of a small WAL image
// and checks reconstruction never panics and never fabricates rows
// whose payload parses but differs wildly in count.
func TestTornWALFuzz(t *testing.T) {
	m, err := wal.NewManager(1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		m.LogInsert(1, storage.Record{sqlparse.IntValue(i), sqlparse.StrValue("payload")})
	}
	img := m.Redo.Serialize()
	cat := Catalog{1: {Name: "t", Columns: []string{"id", "v"}}}
	for cut := 0; cut <= len(img); cut++ {
		writes, err := ReconstructWrites(img[:cut], nil, cat)
		if err == nil && len(writes) > 5 {
			t.Fatalf("cut %d fabricated %d writes", cut, len(writes))
		}
	}
	for flip := 0; flip < len(img); flip += 7 {
		bad := append([]byte(nil), img...)
		bad[flip] ^= 0xFF
		// Must not panic; errors and partial results are both fine.
		_, _ = ReconstructWrites(bad, nil, cat)
	}
}
