package forensics

import (
	"fmt"

	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// LeafRange is the key span of one B+tree leaf page, recovered from the
// stolen tablespace.
type LeafRange struct {
	Page     storage.PageID
	Min, Max sqlparse.Value
	Records  int
}

// LeafRanges scans a tablespace image and returns the key range of
// every live B+tree leaf page. Together with a buffer-pool dump this
// realizes §3's claim that the dump "reveals the paths through the
// B+ tree that MySQL took" for recent SELECTs: the most recently used
// leaf pages are exactly the key ranges the last queries touched.
//
// For an encrypted database the keys are ciphertexts — but under OPE
// (CryptDB primary keys) their order is plaintext order, so the ranges
// remain meaningful to the attacker.
func LeafRanges(tablespaceImg []byte) (map[storage.PageID]LeafRange, error) {
	ts, err := storage.LoadTablespace(tablespaceImg)
	if err != nil {
		return nil, fmt.Errorf("forensics: %w", err)
	}
	out := make(map[storage.PageID]LeafRange)
	for id := storage.PageID(0); int(id) < ts.NumPages(); id++ {
		p, err := ts.Get(id)
		if err != nil {
			return nil, err
		}
		if p.Type() != storage.PageBTreeLeaf {
			continue
		}
		lr := LeafRange{Page: id}
		for slot := 0; slot < p.SlotCount(); slot++ {
			b := p.SlotBytes(slot)
			if b == nil {
				continue
			}
			rec, _, err := storage.DecodeRecord(b)
			if err != nil || len(rec) == 0 {
				continue // deleted-slot residue may be unparseable; skip
			}
			key := rec[0]
			if lr.Records == 0 {
				lr.Min, lr.Max = key, key
			} else {
				if key.Compare(lr.Min) < 0 {
					lr.Min = key
				}
				if key.Compare(lr.Max) > 0 {
					lr.Max = key
				}
			}
			lr.Records++
		}
		if lr.Records > 0 {
			out[id] = lr
		}
	}
	return out, nil
}

// RecentAccessRanges joins a buffer-pool dump's LRU order with the
// recovered leaf ranges: the key spans of the most recently used leaf
// pages, most recent first, up to limit entries. Non-leaf pages
// (internal nodes, header) are skipped — they are on every path.
func RecentAccessRanges(lru []storage.PageID, leaves map[storage.PageID]LeafRange, limit int) []LeafRange {
	if limit <= 0 {
		limit = len(lru)
	}
	var out []LeafRange
	for _, id := range lru {
		if lr, ok := leaves[id]; ok {
			out = append(out, lr)
			if len(out) >= limit {
				break
			}
		}
	}
	return out
}
