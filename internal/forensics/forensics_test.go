package forensics

import (
	"fmt"
	"strings"
	"testing"

	"snapdb/internal/binlog"
	"snapdb/internal/engine"
	"snapdb/internal/sqlparse"
	"snapdb/internal/wal"
)

func catalogOf(e *engine.Engine) Catalog {
	cat := make(Catalog)
	for _, t := range e.Tables() {
		cols := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			cols[i] = c.Name
		}
		cat[t.ID] = TableSchema{Name: t.Name, Columns: cols}
	}
	return cat
}

func TestReconstructWritesFromEngineWAL(t *testing.T) {
	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	s := e.Connect("app")
	stmts := []string{
		"CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT)",
		"INSERT INTO accounts (id, owner) VALUES (1, 'alice')",
		"UPDATE accounts SET owner = 'mallory' WHERE id = 1",
		"DELETE FROM accounts WHERE id = 1",
	}
	for _, q := range stmts {
		if _, err := s.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	writes, err := ReconstructWrites(e.WAL().Redo.Serialize(), e.WAL().Undo.Serialize(), catalogOf(e))
	if err != nil {
		t.Fatal(err)
	}
	if len(writes) != 3 {
		t.Fatalf("reconstructed %d writes, want 3", len(writes))
	}
	if writes[0].SQL != "INSERT INTO accounts (id, owner) VALUES (1, 'alice')" {
		t.Errorf("insert = %q", writes[0].SQL)
	}
	if !strings.Contains(writes[1].SQL, "SET owner = 'mallory' WHERE id = 1") {
		t.Errorf("update = %q", writes[1].SQL)
	}
	if !strings.Contains(writes[1].SQL, "old value: 'alice'") {
		t.Errorf("update lost old value: %q", writes[1].SQL)
	}
	if !strings.HasPrefix(writes[2].SQL, "DELETE FROM accounts WHERE id = 1") {
		t.Errorf("delete = %q", writes[2].SQL)
	}
	// The undo log gives up the deleted row's full content.
	if !strings.Contains(writes[2].SQL, "deleted row: (1, 'mallory')") {
		t.Errorf("deleted row content not recovered: %q", writes[2].SQL)
	}
	// Reconstructed statements must be valid SQL (strip comments).
	for _, w := range writes {
		sql := w.SQL
		if i := strings.Index(sql, " /*"); i >= 0 {
			sql = sql[:i]
		}
		if _, err := sqlparse.Parse(sql); err != nil {
			t.Errorf("reconstructed SQL does not parse: %q: %v", sql, err)
		}
	}
}

func TestReconstructWithoutUndo(t *testing.T) {
	m, err := wal.NewManager(1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	m.LogUpdate(1,
		[]sqlparse.Value{sqlparse.IntValue(7)}, 1,
		[]sqlparse.Value{sqlparse.StrValue("old")},
		[]sqlparse.Value{sqlparse.StrValue("new")})
	writes, err := ReconstructWrites(m.Redo.Serialize(), nil, Catalog{1: {Name: "t", Columns: []string{"id", "v"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(writes) != 1 || strings.Contains(writes[0].SQL, "old value") {
		t.Errorf("writes = %+v", writes)
	}
	if !strings.Contains(writes[0].SQL, "SET v = 'new'") {
		t.Errorf("update = %q", writes[0].SQL)
	}
}

func TestReconstructUnknownTable(t *testing.T) {
	m, _ := wal.NewManager(1<<20, 1<<20)
	m.LogInsert(42, []sqlparse.Value{sqlparse.IntValue(1), sqlparse.StrValue("x")})
	writes, err := ReconstructWrites(m.Redo.Serialize(), nil, Catalog{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(writes[0].SQL, "table_42") || !strings.Contains(writes[0].SQL, "col0") {
		t.Errorf("fallback naming wrong: %q", writes[0].SQL)
	}
}

func TestCorrelationLinearFit(t *testing.T) {
	// Steady workload: 40 bytes of WAL per second.
	var events []binlog.Event
	for i := 0; i < 100; i++ {
		events = append(events, binlog.Event{
			Timestamp: 1_000_000 + int64(i),
			LSN:       uint64(100_000 + 40*i),
			Statement: "INSERT ...",
		})
	}
	c, err := CorrelateBinlog(events)
	if err != nil {
		t.Fatal(err)
	}
	if c.Samples() != 100 {
		t.Errorf("samples = %d", c.Samples())
	}
	// Extrapolate backwards past the binlog horizon.
	got := c.Date(100_000 - 40*50)
	want := int64(1_000_000 - 50)
	if got < want-1 || got > want+1 {
		t.Errorf("extrapolated ts = %d, want ~%d", got, want)
	}
}

func TestCorrelationErrors(t *testing.T) {
	if _, err := CorrelateBinlog(nil); err == nil {
		t.Error("empty binlog accepted")
	}
	one := []binlog.Event{{Timestamp: 1, LSN: 10}}
	if _, err := CorrelateBinlog(one); err == nil {
		t.Error("single event accepted")
	}
	same := []binlog.Event{{Timestamp: 1, LSN: 10}, {Timestamp: 2, LSN: 10}}
	if _, err := CorrelateBinlog(same); err == nil {
		t.Error("degenerate LSNs accepted")
	}
}

func TestDateWrites(t *testing.T) {
	c := &Correlation{Slope: 1, Intercept: 100}
	writes := []ReconstructedWrite{{LSN: 5}, {LSN: 50}}
	DateWrites(writes, c)
	if writes[0].Timestamp != 105 || writes[1].Timestamp != 150 {
		t.Errorf("dated writes = %+v", writes)
	}
}

func TestCountOccurrences(t *testing.T) {
	img := []byte("xxSELECTxx..SELECTxxSELECT")
	if n := CountOccurrences(img, "SELECT"); n != 3 {
		t.Errorf("count = %d", n)
	}
	if n := CountOccurrences(img, "absent"); n != 0 {
		t.Errorf("absent count = %d", n)
	}
	if n := CountOccurrences(img, ""); n != 0 {
		t.Errorf("empty needle count = %d", n)
	}
	if n := CountOccurrences([]byte("aaaa"), "aa"); n != 2 {
		t.Errorf("overlap handling: %d", n)
	}
}

func TestExtractStrings(t *testing.T) {
	img := append([]byte{0, 1, 2}, []byte("hello world")...)
	img = append(img, 0, 0)
	img = append(img, []byte("ab")...) // too short
	img = append(img, 0)
	img = append(img, []byte("trailing run")...)
	got := ExtractStrings(img, 4)
	if len(got) != 2 || got[0] != "hello world" || got[1] != "trailing run" {
		t.Errorf("strings = %q", got)
	}
}

func TestExtractQueriesFromHeapImage(t *testing.T) {
	var img []byte
	img = append(img, 0xFF)
	img = append(img, []byte("SELECT name FROM t WHERE id = 5")...)
	img = append(img, 0x00)
	img = append(img, []byte("not a query at all")...)
	img = append(img, 0x00)
	// A query with trailing residue from a reused block.
	img = append(img, []byte("INSERT INTO t (id) VALUES (9) GARBAGE RESIDUE")...)
	img = append(img, 0x00)
	got := ExtractQueries(img)
	if len(got) != 2 {
		t.Fatalf("queries = %q", got)
	}
	if got[0] != "SELECT name FROM t WHERE id = 5" {
		t.Errorf("q0 = %q", got[0])
	}
	if got[1] != "INSERT INTO t (id) VALUES (9)" {
		t.Errorf("q1 = %q (residue not trimmed)", got[1])
	}
}

func TestQueryHistogram(t *testing.T) {
	qs := []string{
		"SELECT * FROM t WHERE a = 1",
		"SELECT * FROM t WHERE a = 2",
		"SELECT * FROM t WHERE b = 1",
	}
	h := QueryHistogram(qs)
	if len(h) != 2 {
		t.Fatalf("histogram = %v", h)
	}
	if h[sqlparse.Digest("SELECT * FROM t WHERE a = 99")] != 2 {
		t.Errorf("digest grouping wrong: %v", h)
	}
}

func TestRetentionWindow(t *testing.T) {
	var recs []wal.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, wal.Record{LSN: uint64(100 + i*40)})
	}
	c := &Correlation{Slope: 1.0 / 40.0, Intercept: 0}
	oldest, newest, err := RetentionWindow(recs, c)
	if err != nil {
		t.Fatal(err)
	}
	if newest <= oldest {
		t.Errorf("window [%d, %d]", oldest, newest)
	}
	if _, _, err := RetentionWindow(nil, c); err == nil {
		t.Error("empty log accepted")
	}
}

func TestAnalyzeBufferPoolDumpRanks(t *testing.T) {
	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	s := e.Connect("app")
	if _, err := s.Execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := s.Execute(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'x')", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Execute("SELECT v FROM t WHERE id = 42"); err != nil {
		t.Fatal(err)
	}
	order := e.BufferPool().LRUOrder()
	visits := AnalyzeBufferPoolDump(order)
	if len(visits) != len(order) {
		t.Fatalf("visits = %d, order = %d", len(visits), len(order))
	}
	if visits[0].Rank != 0 || visits[0].Page != order[0] {
		t.Errorf("rank 0 = %+v", visits[0])
	}
	// The most recent pages must be the traversal path of the last
	// SELECT (leaf last touched).
	tbl, _ := e.Table("t")
	path, err := tbl.Tree.TraversalPath(sqlparse.IntValue(42))
	if err != nil {
		t.Fatal(err)
	}
	if visits[0].Page != path[len(path)-1] {
		t.Errorf("most recent page %d is not the SELECT's leaf %d", visits[0].Page, path[len(path)-1])
	}
}
