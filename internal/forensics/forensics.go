// Package forensics implements the analysis half of the paper: given
// the raw artifacts in a snapshot, reconstruct past queries.
//
//   - Write reconstruction (§3): parse the redo/undo WAL images and
//     rebuild the INSERT/UPDATE/DELETE statements they record, in the
//     style of the InnoDB forensics literature the paper cites
//     (Frühwirt et al.).
//   - Timing (§3): read statement text and timestamps out of the
//     binlog, fit the LSN↔timestamp correlation, and date WAL records
//     that have already aged out of the binlog horizon.
//   - Read-query recovery (§3, §5): extract query strings from the
//     query logs, the buffer-pool dump (access paths), and the process
//     heap image (strings-style scanning).
package forensics

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"snapdb/internal/binlog"
	"snapdb/internal/dblog"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
	"snapdb/internal/wal"
)

// TableSchema is the catalog information reconstruction needs: the
// forensic analyst reads it from the stolen data files (our snapshots
// carry the tablespace, and table schemas are public structure, not
// encrypted payload).
type TableSchema struct {
	Name    string
	Columns []string
}

// Catalog maps WAL table ids to schemas.
type Catalog map[uint8]TableSchema

// ReconstructedWrite is one write statement rebuilt from the WAL.
type ReconstructedWrite struct {
	LSN       uint64
	Txn       uint64 // owning transaction (0 = pre-transaction records)
	Op        wal.Op
	Table     string
	SQL       string
	Timestamp int64 // 0 if undated; filled by Correlation.Date
}

// ReconstructWrites parses a redo-log image and rebuilds one SQL
// statement per record. Undo images refine UPDATE reconstruction with
// the old value (returned in the SQL comment), exactly the trick the
// InnoDB forensics papers use.
func ReconstructWrites(redoImg, undoImg []byte, cat Catalog) ([]ReconstructedWrite, error) {
	redo, err := wal.ParseLog(redoImg)
	if err != nil {
		return nil, fmt.Errorf("forensics: redo: %w", err)
	}
	undoByLSN := make(map[uint64]wal.Record)
	if len(undoImg) > 0 {
		undo, err := wal.ParseLog(undoImg)
		if err != nil {
			return nil, fmt.Errorf("forensics: undo: %w", err)
		}
		for _, r := range undo {
			undoByLSN[r.LSN] = r
		}
	}
	out := make([]ReconstructedWrite, 0, len(redo))
	for _, r := range redo {
		if r.Op.IsMarker() {
			// Commit/abort markers carry no row data. (They do tell an
			// analyst which transactions finished — the Txn field on the
			// reconstructed writes carries that.)
			continue
		}
		schema, ok := cat[r.Table]
		if !ok {
			schema = TableSchema{Name: fmt.Sprintf("table_%d", r.Table)}
		}
		w := ReconstructedWrite{LSN: r.LSN, Txn: r.Txn, Op: r.Op, Table: schema.Name}
		switch r.Op {
		case wal.OpInsert:
			w.SQL = insertSQL(schema, r.Image)
		case wal.OpUpdate:
			w.SQL = updateSQL(schema, r, undoByLSN[r.LSN])
		case wal.OpDelete:
			w.SQL = deleteSQL(schema, r.Image, undoByLSN[r.LSN])
		}
		out = append(out, w)
	}
	return out, nil
}

func colName(s TableSchema, i int) string {
	if i < len(s.Columns) {
		return s.Columns[i]
	}
	return fmt.Sprintf("col%d", i)
}

func insertSQL(s TableSchema, row storage.Record) string {
	cols := make([]string, len(row))
	vals := make([]string, len(row))
	for i, v := range row {
		cols[i] = colName(s, i)
		vals[i] = v.SQL()
	}
	return fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)",
		s.Name, strings.Join(cols, ", "), strings.Join(vals, ", "))
}

func updateSQL(s TableSchema, redo, undo wal.Record) string {
	if len(redo.Image) < 2 {
		return fmt.Sprintf("UPDATE %s /* corrupt record */", s.Name)
	}
	key, newVal := redo.Image[0], redo.Image[1]
	sql := fmt.Sprintf("UPDATE %s SET %s = %s WHERE %s = %s",
		s.Name, colName(s, int(redo.Column)), newVal.SQL(), colName(s, 0), key.SQL())
	if len(undo.Image) >= 2 {
		sql += fmt.Sprintf(" /* old value: %s */", undo.Image[1].SQL())
	}
	return sql
}

func deleteSQL(s TableSchema, img storage.Record, undo wal.Record) string {
	if len(img) == 0 {
		return fmt.Sprintf("DELETE FROM %s /* corrupt record */", s.Name)
	}
	sql := fmt.Sprintf("DELETE FROM %s WHERE %s = %s", s.Name, colName(s, 0), img[0].SQL())
	// The undo log must hold the full deleted row (rollback needs it),
	// so the attacker recovers the *content* of deleted data too.
	if len(undo.Image) > 1 {
		vals := make([]string, len(undo.Image))
		for i, v := range undo.Image {
			vals[i] = v.SQL()
		}
		sql += fmt.Sprintf(" /* deleted row: (%s) */", strings.Join(vals, ", "))
	}
	return sql
}

// Correlation is the fitted linear LSN↔timestamp relationship the
// paper describes: the binlog stores (timestamp, LSN) pairs, and the
// rate of change of LSNs over time lets the attacker date undo/redo
// records that are no longer covered by the binlog.
type Correlation struct {
	// ts ≈ slope·lsn + intercept
	Slope     float64
	Intercept float64
	n         int
}

// CorrelateBinlog fits the correlation from binlog events. It needs at
// least two events with distinct LSNs.
func CorrelateBinlog(events []binlog.Event) (*Correlation, error) {
	var xs, ys []float64
	for _, ev := range events {
		xs = append(xs, float64(ev.LSN))
		ys = append(ys, float64(ev.Timestamp))
	}
	if len(xs) < 2 {
		return nil, fmt.Errorf("forensics: need at least 2 binlog events, got %d", len(xs))
	}
	var sumX, sumY, sumXX, sumXY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
		sumXX += xs[i] * xs[i]
		sumXY += xs[i] * ys[i]
	}
	n := float64(len(xs))
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return nil, fmt.Errorf("forensics: all binlog events share one LSN; correlation undefined")
	}
	slope := (n*sumXY - sumX*sumY) / den
	return &Correlation{
		Slope:     slope,
		Intercept: (sumY - slope*sumX) / n,
		n:         len(xs),
	}, nil
}

// Date estimates the UNIX timestamp of an LSN.
func (c *Correlation) Date(lsn uint64) int64 {
	return int64(c.Slope*float64(lsn) + c.Intercept)
}

// Samples returns how many binlog events the fit used.
func (c *Correlation) Samples() int { return c.n }

// DateWrites fills in Timestamp on reconstructed writes using the
// correlation.
func DateWrites(writes []ReconstructedWrite, c *Correlation) {
	for i := range writes {
		writes[i].Timestamp = c.Date(writes[i].LSN)
	}
}

// CorrelatableEvents parses a binlog disk image into events — the
// mysqlbinlog step of the analysis.
func CorrelatableEvents(img []byte) ([]binlog.Event, error) {
	return binlog.Parse(img)
}

// ParseQueryLog parses a general/slow query log image.
func ParseQueryLog(text string) ([]dblog.Entry, error) {
	return dblog.Parse(text)
}

// CountOccurrences counts non-overlapping occurrences of needle in a
// memory image — the measurement of the paper's §5 experiment.
func CountOccurrences(img []byte, needle string) int {
	if len(needle) == 0 {
		return 0
	}
	count, pos := 0, 0
	for {
		i := bytes.Index(img[pos:], []byte(needle))
		if i < 0 {
			return count
		}
		count++
		pos += i + len(needle)
	}
}

// ExtractStrings pulls printable ASCII runs of at least minLen bytes
// out of a memory image, like strings(1). Heap scanning for query text
// starts here.
func ExtractStrings(img []byte, minLen int) []string {
	if minLen <= 0 {
		minLen = 4
	}
	var out []string
	start := -1
	for i, b := range img {
		printable := b >= 0x20 && b < 0x7F
		if printable && start < 0 {
			start = i
		}
		if !printable && start >= 0 {
			if i-start >= minLen {
				out = append(out, string(img[start:i]))
			}
			start = -1
		}
	}
	if start >= 0 && len(img)-start >= minLen {
		out = append(out, string(img[start:]))
	}
	return out
}

// ExtractQueries returns the SQL statements found in a memory image:
// printable strings that parse as SQL. Duplicates are preserved (the
// count per statement is itself leakage).
func ExtractQueries(img []byte) []string {
	var out []string
	for _, s := range ExtractStrings(img, 8) {
		// A freed buffer may hold a query followed by residue; try
		// progressively shorter prefixes at statement keywords.
		if q, ok := parseablePrefix(s); ok {
			out = append(out, q)
		}
	}
	return out
}

func parseablePrefix(s string) (string, bool) {
	upper := strings.ToUpper(s)
	starts := []string{"SELECT ", "INSERT ", "UPDATE ", "DELETE ", "CREATE "}
	idx := -1
	for _, st := range starts {
		if i := strings.Index(upper, st); i >= 0 && (idx < 0 || i < idx) {
			idx = i
		}
	}
	if idx < 0 {
		return "", false
	}
	s = s[idx:]
	if _, err := sqlparse.Parse(s); err == nil {
		return s, true
	}
	// Trim trailing residue word by word.
	for i := len(s); i > 0; {
		i = strings.LastIndexByte(s[:i], ' ')
		if i <= 0 {
			return "", false
		}
		if _, err := sqlparse.Parse(s[:i]); err == nil {
			return s[:i], true
		}
	}
	return "", false
}

// QueryHistogram aggregates extracted queries by digest, giving the
// attacker's view of the query distribution (the input to frequency
// analysis).
func QueryHistogram(queries []string) map[string]int {
	out := make(map[string]int)
	for _, q := range queries {
		out[sqlparse.Digest(q)]++
	}
	return out
}

// PageVisit summarises a buffer-pool dump entry against known index
// structure.
type PageVisit struct {
	Page storage.PageID
	Rank int // 0 = most recently used
}

// AnalyzeBufferPoolDump interprets a dump file's LRU list: the pages a
// SELECT touched most recently appear first, so consecutive prefixes
// are the B+ tree paths of the latest queries.
func AnalyzeBufferPoolDump(ids []storage.PageID) []PageVisit {
	out := make([]PageVisit, len(ids))
	for i, id := range ids {
		out[i] = PageVisit{Page: id, Rank: i}
	}
	return out
}

// RetentionWindow computes, from a parsed WAL, how much wall-clock
// history the circular log retains: the timespan between its oldest
// and newest records as dated by the correlation. This is the paper's
// "16 days of inserts" measurement (E2).
func RetentionWindow(records []wal.Record, c *Correlation) (oldest, newest int64, err error) {
	if len(records) == 0 {
		return 0, 0, fmt.Errorf("forensics: empty log")
	}
	lsns := make([]uint64, len(records))
	for i, r := range records {
		lsns[i] = r.LSN
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	return c.Date(lsns[0]), c.Date(lsns[len(lsns)-1]), nil
}
