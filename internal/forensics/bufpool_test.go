package forensics_test

import (
	"fmt"
	"testing"

	"snapdb/internal/bufpool"
	"snapdb/internal/engine"
	"snapdb/internal/forensics"
	"snapdb/internal/snapshot"
	"snapdb/internal/sqlparse"
)

// bufpoolVictim loads a table large enough to need many leaves, runs a
// point SELECT for probe, and returns the disk snapshot.
func bufpoolVictim(t *testing.T, probe int64) *snapshot.Snapshot {
	t.Helper()
	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	s := e.Connect("app")
	if _, err := s.Execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := s.Execute(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'row-%04d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Execute(fmt.Sprintf("SELECT v FROM t WHERE id = %d", probe)); err != nil {
		t.Fatal(err)
	}
	e.Shutdown() // writes the buffer-pool dump, as MySQL does
	return snapshot.Capture(e, snapshot.DiskTheft)
}

func TestLeafRangesCoverAllKeys(t *testing.T) {
	snap := bufpoolVictim(t, 42)
	leaves, err := forensics.LeafRanges(snap.Disk.Tablespace)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) < 10 {
		t.Fatalf("only %d leaves for 2000 rows", len(leaves))
	}
	// Every key 0..1999 must fall inside exactly one primary-leaf range.
	// (Ranges of distinct leaves of one tree never overlap.)
	for _, probe := range []int64{0, 1, 999, 1999} {
		v := sqlparse.IntValue(probe)
		covering := 0
		for _, lr := range leaves {
			if lr.Min.IsInt && v.Compare(lr.Min) >= 0 && v.Compare(lr.Max) <= 0 {
				covering++
			}
		}
		if covering != 1 {
			t.Errorf("key %d covered by %d leaf ranges, want 1", probe, covering)
		}
	}
}

func TestRecentAccessRangesRevealQueriedKey(t *testing.T) {
	const probe = 1234
	snap := bufpoolVictim(t, probe)
	leaves, err := forensics.LeafRanges(snap.Disk.Tablespace)
	if err != nil {
		t.Fatal(err)
	}
	lru, err := bufpool.ParseDump(snap.Disk.BufferPoolDump)
	if err != nil {
		t.Fatal(err)
	}
	recent := forensics.RecentAccessRanges(lru, leaves, 1)
	if len(recent) != 1 {
		t.Fatalf("recent = %d entries", len(recent))
	}
	// §3's claim, concretely: the most recently used leaf is the one
	// holding the key the last SELECT probed.
	v := sqlparse.IntValue(probe)
	if v.Compare(recent[0].Min) < 0 || v.Compare(recent[0].Max) > 0 {
		t.Errorf("hottest leaf spans [%v, %v]; the probed key %d is outside it",
			recent[0].Min, recent[0].Max, probe)
	}
	// The span must be narrow relative to the 2000-key domain: the
	// attacker learns the query target to within one leaf.
	span := recent[0].Max.Int - recent[0].Min.Int
	if span > 400 {
		t.Errorf("leaf span %d too wide to be revealing", span)
	}
}

func TestRecentAccessRangesLimit(t *testing.T) {
	snap := bufpoolVictim(t, 7)
	leaves, err := forensics.LeafRanges(snap.Disk.Tablespace)
	if err != nil {
		t.Fatal(err)
	}
	lru, err := bufpool.ParseDump(snap.Disk.BufferPoolDump)
	if err != nil {
		t.Fatal(err)
	}
	all := forensics.RecentAccessRanges(lru, leaves, 0)
	if len(all) == 0 {
		t.Fatal("no leaves in LRU")
	}
	two := forensics.RecentAccessRanges(lru, leaves, 2)
	if len(two) != 2 {
		t.Errorf("limit 2 returned %d", len(two))
	}
}

func TestLeafRangesRejectsGarbage(t *testing.T) {
	if _, err := forensics.LeafRanges([]byte{1, 2, 3}); err == nil {
		t.Error("garbage tablespace accepted")
	}
}
