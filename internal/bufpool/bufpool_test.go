package bufpool

import (
	"testing"

	"snapdb/internal/storage"
)

func newPool(t testing.TB, capacity, pages int) (*Pool, []storage.PageID) {
	t.Helper()
	ts := storage.NewTablespace()
	ids := make([]storage.PageID, pages)
	for i := range ids {
		ids[i] = ts.Allocate(storage.PageBTreeLeaf).ID()
	}
	p, err := New(ts, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return p, ids
}

func TestNewRejectsBadCapacity(t *testing.T) {
	ts := storage.NewTablespace()
	if _, err := New(ts, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(ts, -1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestFetchCachesAndCounts(t *testing.T) {
	p, ids := newPool(t, 4, 2)
	if _, err := p.Fetch(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fetch(ids[0]); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := p.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	if !p.Contains(ids[0]) || p.Contains(ids[1]) {
		t.Error("Contains wrong")
	}
}

func TestFetchUnknownPage(t *testing.T) {
	p, _ := newPool(t, 4, 1)
	if _, err := p.Fetch(999); err == nil {
		t.Error("unknown page accepted")
	}
}

func TestLRUEviction(t *testing.T) {
	p, ids := newPool(t, 2, 3)
	for _, id := range ids {
		if _, err := p.Fetch(id); err != nil {
			t.Fatal(err)
		}
	}
	if p.Contains(ids[0]) {
		t.Error("oldest page not evicted")
	}
	if !p.Contains(ids[1]) || !p.Contains(ids[2]) {
		t.Error("recent pages evicted")
	}
	if _, _, ev := p.Stats(); ev != 1 {
		t.Errorf("evictions = %d", ev)
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d", p.Len())
	}
}

func TestLRUOrderMostRecentFirst(t *testing.T) {
	p, ids := newPool(t, 4, 3)
	for _, id := range ids {
		_, _ = p.Fetch(id)
	}
	_, _ = p.Fetch(ids[0]) // touch 0 again
	order := p.LRUOrder()
	want := []storage.PageID{ids[0], ids[2], ids[1]}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("LRU order = %v, want %v", order, want)
		}
	}
}

func TestHotPagesOrdering(t *testing.T) {
	p, ids := newPool(t, 4, 3)
	for i := 0; i < 5; i++ {
		_, _ = p.Fetch(ids[1])
	}
	for i := 0; i < 2; i++ {
		_, _ = p.Fetch(ids[2])
	}
	_, _ = p.Fetch(ids[0])
	hot := p.HotPages()
	if len(hot) != 3 {
		t.Fatalf("hot len = %d", len(hot))
	}
	if hot[0].ID != ids[1] || hot[0].Count != 5 {
		t.Errorf("hottest = %+v", hot[0])
	}
	if hot[1].ID != ids[2] || hot[2].ID != ids[0] {
		t.Errorf("order = %+v", hot)
	}
}

func TestAccessCountsSurviveEviction(t *testing.T) {
	p, ids := newPool(t, 1, 2)
	_, _ = p.Fetch(ids[0])
	_, _ = p.Fetch(ids[1]) // evicts ids[0]
	hot := p.HotPages()
	found := false
	for _, h := range hot {
		if h.ID == ids[0] && h.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Error("evicted page's access count lost")
	}
}

func TestDumpRoundTrip(t *testing.T) {
	p, ids := newPool(t, 4, 3)
	for _, id := range ids {
		_, _ = p.Fetch(id)
	}
	img := p.DumpFile()
	got, err := ParseDump(img)
	if err != nil {
		t.Fatal(err)
	}
	want := p.LRUOrder()
	if len(got) != len(want) {
		t.Fatalf("parsed %d ids, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("dump[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestParseDumpRejectsGarbage(t *testing.T) {
	if _, err := ParseDump(nil); err == nil {
		t.Error("nil dump accepted")
	}
	if _, err := ParseDump([]byte{1, 2, 3, 4, 5, 6, 7, 8}); err == nil {
		t.Error("bad magic accepted")
	}
	p, ids := newPool(t, 4, 2)
	_, _ = p.Fetch(ids[0])
	img := p.DumpFile()
	if _, err := ParseDump(img[:len(img)-1]); err == nil {
		t.Error("truncated dump accepted")
	}
}

func TestDumpEmptyPool(t *testing.T) {
	p, _ := newPool(t, 4, 1)
	got, err := ParseDump(p.DumpFile())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty pool dump has %d entries", len(got))
	}
}

func BenchmarkFetchHit(b *testing.B) {
	ts := storage.NewTablespace()
	id := ts.Allocate(storage.PageBTreeLeaf).ID()
	p, err := New(ts, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Fetch(id); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFetchCountAndTrace(t *testing.T) {
	p, ids := newPool(t, 4, 3)
	var trace []storage.PageID
	p.SetTraceFunc(func(id storage.PageID) { trace = append(trace, id) })

	seq := []storage.PageID{ids[0], ids[1], ids[0], ids[2]}
	for _, id := range seq {
		if _, err := p.Fetch(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.FetchCount(); got != uint64(len(seq)) {
		t.Errorf("FetchCount = %d, want %d", got, len(seq))
	}
	if len(trace) != len(seq) {
		t.Fatalf("trace recorded %d fetches, want %d", len(trace), len(seq))
	}
	for i, id := range seq {
		if trace[i] != id {
			t.Errorf("trace[%d] = %d, want %d", i, trace[i], id)
		}
	}

	p.SetTraceFunc(nil)
	if _, err := p.Fetch(ids[0]); err != nil {
		t.Fatal(err)
	}
	if len(trace) != len(seq) {
		t.Error("trace still recording after SetTraceFunc(nil)")
	}
	if got := p.FetchCount(); got != uint64(len(seq))+1 {
		t.Errorf("FetchCount = %d, want %d", got, len(seq)+1)
	}
}
