// Package bufpool implements the engine's buffer pool: an LRU cache of
// tablespace pages with per-page access counters.
//
// Two behaviours matter to the paper:
//
//  1. Like InnoDB, the pool periodically (and at shutdown) dumps the
//     page ids currently cached, in LRU order, to a file in the data
//     directory so a restarted server can warm up quickly. §3 of the
//     paper observes that this file reveals the B+tree paths recent
//     SELECTs walked. DumpFile/ParseDump implement that file.
//
//  2. Like InnoDB's adaptive hash index and Postgres's clock-sweep
//     counters, the pool keeps per-page access counts in memory.
//     A memory snapshot therefore reveals which index regions were hot
//     (§5). HotPages exposes the counters the way a forensic tool
//     would read them out of a core dump.
package bufpool

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"snapdb/internal/storage"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Pool is an LRU buffer pool over a tablespace. Reads of pool state
// (Contains, Len, Stats, LRUOrder, HotPages, DumpFile) take the lock
// shared so concurrent sessions and the forensic capture paths don't
// contend; only Fetch — which reorders the LRU and bumps counters —
// takes it exclusively.
type Pool struct {
	mu       sync.RWMutex
	ts       *storage.Tablespace
	capacity int

	lru     *list.List // front = most recently used; values are storage.PageID
	present map[storage.PageID]*list.Element
	access  map[storage.PageID]uint64 // lifetime access counts (survive eviction)

	hits, misses, evictions uint64

	trace func(storage.PageID) // optional per-fetch observer; see SetTraceFunc
}

// New creates a pool of the given page capacity over ts.
func New(ts *storage.Tablespace, capacity int) (*Pool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("bufpool: capacity must be positive, got %d", capacity)
	}
	return &Pool{
		ts:       ts,
		capacity: capacity,
		lru:      list.New(),
		present:  make(map[storage.PageID]*list.Element),
		access:   make(map[storage.PageID]uint64),
	}, nil
}

// Fetch returns the page with the given id, recording the access in the
// LRU order and the access counters.
func (p *Pool) Fetch(id storage.PageID) (*storage.Page, error) {
	page, err := p.ts.Get(id)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.trace != nil {
		p.trace(id)
	}
	p.access[id]++
	if el, ok := p.present[id]; ok {
		p.lru.MoveToFront(el)
		p.hits++
		return page, nil
	}
	p.misses++
	p.present[id] = p.lru.PushFront(id)
	if p.lru.Len() > p.capacity {
		back := p.lru.Back()
		p.lru.Remove(back)
		delete(p.present, back.Value.(storage.PageID))
		p.evictions++
	}
	return page, nil
}

// SetTraceFunc installs (or, with nil, removes) an observer invoked
// with every fetched page id, in fetch order, under the pool lock. The
// executor equivalence tests use it to prove two implementations touch
// the same pages in the same sequence; fn must not call back into the
// pool.
func (p *Pool) SetTraceFunc(fn func(storage.PageID)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.trace = fn
}

// FetchCount returns the total number of fetches served (hits plus
// misses). Operators sample it around their traversals to attribute
// pool activity per plan node.
func (p *Pool) FetchCount() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.hits + p.misses
}

// Contains reports whether the page is currently cached.
func (p *Pool) Contains(id storage.PageID) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.present[id]
	return ok
}

// Len returns the number of cached pages.
func (p *Pool) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.lru.Len()
}

// Stats reports cumulative hit/miss/eviction counts.
func (p *Pool) Stats() (hits, misses, evictions uint64) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.hits, p.misses, p.evictions
}

// LRUOrder returns the cached page ids, most recently used first. This
// is the in-memory state a whole-system snapshot captures.
func (p *Pool) LRUOrder() []storage.PageID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]storage.PageID, 0, p.lru.Len())
	for el := p.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(storage.PageID))
	}
	return out
}

// PageAccess holds one page's lifetime access count.
type PageAccess struct {
	ID    storage.PageID
	Count uint64
}

// HotPages returns all pages ever accessed, ordered by descending access
// count (ties by id). This models what the adaptive-hash-index metadata
// reveals to a memory-snapshot attacker.
func (p *Pool) HotPages() []PageAccess {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]PageAccess, 0, len(p.access))
	for id, n := range p.access {
		out = append(out, PageAccess{ID: id, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// dumpMagic identifies a buffer pool dump file.
const dumpMagic = 0x53504442 // "SPDB"

// DumpFile serializes the current LRU page-id list (most recent first),
// the analog of MySQL's ib_buffer_pool file written at shutdown and
// periodically during normal operation. It deliberately contains only
// page ids, exactly like the real file — yet that is enough to leak
// SELECT access paths.
func (p *Pool) DumpFile() []byte {
	ids := p.LRUOrder()
	out := make([]byte, 0, 12+4*len(ids))
	out = binary.BigEndian.AppendUint32(out, dumpMagic)
	out = binary.BigEndian.AppendUint32(out, uint32(len(ids)))
	for _, id := range ids {
		out = binary.BigEndian.AppendUint32(out, uint32(id))
	}
	// CRC32-C over everything above, so a recovery can tell a damaged
	// dump from a valid one instead of warming the pool with garbage.
	return binary.BigEndian.AppendUint32(out, crc32.Checksum(out, castagnoli))
}

// ParseDump parses a DumpFile image back into the LRU-ordered id list.
// It is used by the forensics package on disk snapshots.
func ParseDump(img []byte) ([]storage.PageID, error) {
	if len(img) < 8 {
		return nil, fmt.Errorf("bufpool: dump too short (%d bytes)", len(img))
	}
	if binary.BigEndian.Uint32(img) != dumpMagic {
		return nil, fmt.Errorf("bufpool: bad dump magic %#x", binary.BigEndian.Uint32(img))
	}
	n := int(binary.BigEndian.Uint32(img[4:]))
	if len(img) != 12+4*n {
		return nil, fmt.Errorf("bufpool: dump is %d bytes, want %d for %d entries", len(img), 12+4*n, n)
	}
	body, sum := img[:len(img)-4], binary.BigEndian.Uint32(img[len(img)-4:])
	if got := crc32.Checksum(body, castagnoli); got != sum {
		return nil, fmt.Errorf("bufpool: dump checksum mismatch (%#x != %#x)", got, sum)
	}
	ids := make([]storage.PageID, n)
	for i := 0; i < n; i++ {
		ids[i] = storage.PageID(binary.BigEndian.Uint32(img[8+4*i:]))
	}
	return ids, nil
}
