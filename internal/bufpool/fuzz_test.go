package bufpool

import (
	"testing"
)

// FuzzParseDump asserts the dump parser never panics on arbitrary
// bytes and that corruption is always reported as an error, never as a
// silently wrong page list.
func FuzzParseDump(f *testing.F) {
	p, ids := newPool(f, 4, 3)
	for _, id := range ids {
		_, _ = p.Fetch(id)
	}
	img := p.DumpFile()
	f.Add(img)
	f.Add(img[:len(img)-1])
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ParseDump(data)
		if err != nil && got != nil {
			t.Fatal("error with non-nil result")
		}
	})
}

// FuzzDumpRoundTripBitflip flips one byte of a valid dump and asserts
// the checksum catches it (or, for the length byte, the size check).
func FuzzDumpRoundTripBitflip(f *testing.F) {
	p, ids := newPool(f, 8, 5)
	for _, id := range ids {
		_, _ = p.Fetch(id)
	}
	img := p.DumpFile()
	f.Add(0, uint8(1))
	f.Add(len(img)-1, uint8(0x80))
	f.Fuzz(func(t *testing.T, pos int, mask uint8) {
		if pos < 0 || pos >= len(img) || mask == 0 {
			return
		}
		bad := append([]byte(nil), img...)
		bad[pos] ^= mask
		if _, err := ParseDump(bad); err == nil {
			t.Fatalf("bit flip at %d (mask %#x) went undetected", pos, mask)
		}
	})
}
