package wal

import (
	"testing"
)

// FuzzDecodeRecord asserts DecodeRecord never panics and never reads
// past the buffer, whatever bytes arrive — the property recovery
// depends on when the tail of a crashed server's log is garbage.
func FuzzDecodeRecord(f *testing.F) {
	r := Record{LSN: 9, Txn: 3, Op: OpUpdate, Table: 2, Column: 1, Image: row(7, "seed")}
	f.Add(r.Encode())
	f.Add([]byte{})
	f.Add(make([]byte, headerSize))
	f.Add(make([]byte, headerSize-1))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// A successfully decoded record re-encodes to the consumed bytes.
		enc := rec.Encode()
		if len(enc) != n {
			t.Fatalf("re-encode length %d != consumed %d", len(enc), n)
		}
	})
}

// FuzzParseLog asserts the report-producing parser never panics and
// that its truncation offset always bounds the valid prefix.
func FuzzParseLog(f *testing.F) {
	l, _ := NewLog("fuzz", 1<<16)
	l.Append(Record{LSN: 1, Op: OpInsert, Table: 1, Column: WholeRow, Image: row(1, "a")})
	l.Append(Record{LSN: 2, Op: OpCommit, Column: WholeRow})
	img := l.Serialize()
	f.Add(img)
	f.Add(img[:len(img)-2])
	f.Add([]byte{0, 0, 0, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, rep := ParseLogReport(data)
		if rep.Truncated() {
			if rep.TruncatedAt < 0 || rep.TruncatedAt > len(data) {
				t.Fatalf("TruncatedAt %d outside image of %d bytes", rep.TruncatedAt, len(data))
			}
			if rep.Reason == "" {
				t.Fatal("truncated without a reason")
			}
		}
		if len(recs) != rep.Frames {
			t.Fatalf("records %d != frames %d", len(recs), rep.Frames)
		}
	})
}
