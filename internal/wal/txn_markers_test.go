package wal

import (
	"errors"
	"strings"
	"testing"
)

func TestMarkersRoundTrip(t *testing.T) {
	m, err := NewManager(1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	tx := m.BeginTxn()
	if tx == 0 {
		t.Fatal("BeginTxn returned the reserved txn id 0")
	}
	if tx2 := m.BeginTxn(); tx2 <= tx {
		t.Errorf("txn ids not increasing: %d then %d", tx, tx2)
	}
	if _, _, err := m.TxInsert(tx, 1, row(1, "a")); err != nil {
		t.Fatal(err)
	}
	if err := m.LogCommit(tx); err != nil {
		t.Fatal(err)
	}
	recs := m.Redo.Records()
	if len(recs) != 2 {
		t.Fatalf("redo records = %d, want 2", len(recs))
	}
	if recs[0].Txn != tx || recs[1].Txn != tx {
		t.Errorf("txn ids on records: %d, %d, want %d", recs[0].Txn, recs[1].Txn, tx)
	}
	if recs[1].Op != OpCommit || !recs[1].Op.IsMarker() {
		t.Errorf("commit marker op = %v", recs[1].Op)
	}
	if recs[0].Op.IsMarker() {
		t.Errorf("data record classified as marker")
	}
	if len(recs[1].Image) != 0 {
		t.Errorf("marker carries an image: %v", recs[1].Image)
	}

	// Markers survive serialization.
	parsed, rep := ParseLogReport(m.Redo.Serialize())
	if rep.Truncated() {
		t.Fatalf("clean log reported truncated: %+v", rep)
	}
	if len(parsed) != 2 || parsed[1].Op != OpCommit || parsed[1].Txn != tx {
		t.Errorf("marker did not round-trip: %+v", parsed)
	}
}

func TestAbortMarker(t *testing.T) {
	m, err := NewManager(1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	tx := m.BeginTxn()
	if err := m.LogAbort(tx); err != nil {
		t.Fatal(err)
	}
	recs := m.Redo.Records()
	if len(recs) != 1 || recs[0].Op != OpAbort || recs[0].Txn != tx {
		t.Fatalf("abort marker = %+v", recs)
	}
}

func TestSetRecovered(t *testing.T) {
	m, err := NewManager(1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	m.SetRecovered(5000, 17)
	if got := m.CurrentLSN(); got != 5000 {
		t.Errorf("CurrentLSN after SetRecovered = %d, want 5000", got)
	}
	if tx := m.BeginTxn(); tx != 18 {
		t.Errorf("BeginTxn after SetRecovered = %d, want 18", tx)
	}
	lsn, _, err := m.LogInsert(1, row(1, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn <= 5000 {
		t.Errorf("post-recovery LSN %d did not advance past floor", lsn)
	}
}

func TestSinkErrorPropagates(t *testing.T) {
	m, err := NewManager(1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	m.Sink = func(redo, undo []Record) error { return boom }
	if _, _, err := m.LogInsert(1, row(1, "x")); !errors.Is(err, boom) {
		t.Fatalf("LogInsert error = %v, want sink error", err)
	}
	// A failed flush must not make the record visible in memory.
	if n := m.Redo.Len(); n != 0 {
		t.Errorf("failed sink left %d redo records in memory", n)
	}
	if n := m.Undo.Len(); n != 0 {
		t.Errorf("failed sink left %d undo records in memory", n)
	}
	// Clearing the failure makes commits flow again.
	m.Sink = nil
	if _, _, err := m.LogInsert(1, row(2, "y")); err != nil {
		t.Fatal(err)
	}
	if n := m.Redo.Len(); n != 1 {
		t.Errorf("redo records after recovery = %d, want 1", n)
	}
}

func TestSinkSeesRecordsBeforeMemory(t *testing.T) {
	m, err := NewManager(1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var sunkRedo, sunkUndo int
	m.Sink = func(redo, undo []Record) error {
		sunkRedo += len(redo)
		sunkUndo += len(undo)
		// Memory append happens after the sink returns.
		if m.Redo.Len() >= sunkRedo {
			t.Errorf("redo memory append preceded the sink")
		}
		return nil
	}
	tx := m.BeginTxn()
	if _, _, err := m.TxUpdate(tx, 1, row(1, "k")[:1], 1, row(1, "old")[1:], row(1, "new")[1:]); err != nil {
		t.Fatal(err)
	}
	if err := m.LogCommit(tx); err != nil {
		t.Fatal(err)
	}
	if sunkRedo != 2 {
		t.Errorf("sink saw %d redo records, want 2", sunkRedo)
	}
	if sunkUndo != 1 {
		t.Errorf("sink saw %d undo records, want 1 (markers are redo-only)", sunkUndo)
	}
}

func TestParseLogReportCorruptMiddle(t *testing.T) {
	l, err := NewLog("redo", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Append(Record{LSN: uint64(i + 1), Op: OpInsert, Table: 1, Column: WholeRow, Image: row(int64(i), "v")})
	}
	img := l.Serialize()

	// Flip a payload byte inside the third frame: the scan must stop
	// there with a checksum complaint and keep the two-frame prefix.
	frame := len(img) / 5
	bad := append([]byte(nil), img...)
	bad[2*frame+10] ^= 0x01
	recs, rep := ParseLogReport(bad)
	if len(recs) != 2 {
		t.Fatalf("valid prefix = %d records, want 2", len(recs))
	}
	if !rep.Truncated() || rep.TruncatedAt != 2*frame {
		t.Errorf("TruncatedAt = %d, want %d", rep.TruncatedAt, 2*frame)
	}
	if !strings.Contains(rep.Reason, "checksum") {
		t.Errorf("Reason = %q, want checksum mismatch", rep.Reason)
	}

	// A torn tail is distinguished from corruption.
	recs, rep = ParseLogReport(img[:len(img)-3])
	if len(recs) != 4 || rep.Reason != "torn frame" {
		t.Errorf("torn tail: %d records, reason %q", len(recs), rep.Reason)
	}

	// ParseLog tolerates a torn tail when a prefix survives...
	if _, err := ParseLog(img[:len(img)-3]); err != nil {
		t.Errorf("ParseLog rejected torn tail with valid prefix: %v", err)
	}
	// ...but errors when nothing parses at all.
	if _, err := ParseLog(img[:3]); err == nil {
		t.Error("ParseLog accepted an image with no parseable record")
	}
}
