// Package wal implements the engine's transaction logging: a circular
// redo log and a circular undo log, both recording byte-level changes
// to individual records, stamped with a global log sequence number
// (LSN). This mirrors InnoDB's multi-version concurrency control
// machinery, and — as §3 of the paper demonstrates — it is also a
// transcript of every recent write that a disk-snapshot attacker can
// replay with standard forensic techniques.
//
// Both logs are circular: when a log exceeds its capacity, the oldest
// records fall off. The retention window therefore depends on write
// volume and record size, which experiment E2 measures (the paper's
// "50 MB stores 16 days of 20-byte writes at 1 write/s" estimate).
package wal

import (
	"encoding/binary"
	"fmt"
	"sync"

	"snapdb/internal/storage"
)

// Op is the kind of change a log record describes.
type Op uint8

// Log record operations.
const (
	OpInsert Op = iota + 1
	OpUpdate
	OpDelete
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "INSERT"
	case OpUpdate:
		return "UPDATE"
	case OpDelete:
		return "DELETE"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// WholeRow marks a record image that covers the entire row rather than
// a single column.
const WholeRow = 0xFF

// Record is one log record. For the redo log, Image holds the new
// data; for the undo log, the old data:
//
//	insert:  redo Image = full new row;         undo Image = key only
//	update:  redo Image = {key, new col value}; undo Image = {key, old col value}
//	delete:  redo Image = key only;             undo Image = full old row
type Record struct {
	LSN    uint64
	Op     Op
	Table  uint8
	Column uint8 // column index for updates, WholeRow otherwise
	Image  storage.Record
}

// headerSize is the encoded record header: lsn(8) op(1) table(1)
// column(1) payloadLen(2).
const headerSize = 13

// Encode serializes the record.
func (r Record) Encode() []byte {
	payload := storage.EncodeRecord(r.Image)
	out := make([]byte, 0, headerSize+len(payload))
	out = binary.BigEndian.AppendUint64(out, r.LSN)
	out = append(out, byte(r.Op), r.Table, r.Column)
	out = binary.BigEndian.AppendUint16(out, uint16(len(payload)))
	out = append(out, payload...)
	return out
}

// DecodeRecord parses one record from b, returning it and the bytes
// consumed.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < headerSize {
		return Record{}, 0, fmt.Errorf("wal: record header truncated (%d bytes)", len(b))
	}
	r := Record{
		LSN:    binary.BigEndian.Uint64(b),
		Op:     Op(b[8]),
		Table:  b[9],
		Column: b[10],
	}
	if r.Op < OpInsert || r.Op > OpDelete {
		return Record{}, 0, fmt.Errorf("wal: unknown op %d", b[8])
	}
	plen := int(binary.BigEndian.Uint16(b[11:]))
	if len(b) < headerSize+plen {
		return Record{}, 0, fmt.Errorf("wal: record payload truncated (want %d bytes)", plen)
	}
	img, _, err := storage.DecodeRecord(b[headerSize : headerSize+plen])
	if err != nil {
		return Record{}, 0, fmt.Errorf("wal: payload: %w", err)
	}
	r.Image = img
	return r, headerSize + plen, nil
}

// Log is one circular log (redo or undo).
type Log struct {
	mu       sync.Mutex
	name     string
	capacity int // bytes

	records []Record
	sizes   []int
	bytes   int
	evicted uint64 // count of records that have fallen off the front
}

// DefaultCapacity is the default log size, matching the paper's "50 Mb"
// figure for MySQL's default redo/undo configuration.
const DefaultCapacity = 50 << 20

// NewLog creates a circular log holding at most capacity bytes of
// encoded records.
func NewLog(name string, capacity int) (*Log, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("wal: capacity must be positive, got %d", capacity)
	}
	return &Log{name: name, capacity: capacity}, nil
}

// Append adds a record, evicting the oldest records if the log would
// exceed its capacity.
func (l *Log) Append(r Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.appendLocked(r)
}

// AppendBatch adds records in order under one lock acquisition — the
// flush half of the manager's group commit.
func (l *Log) AppendBatch(recs []Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range recs {
		l.appendLocked(r)
	}
}

func (l *Log) appendLocked(r Record) {
	enc := headerSize + len(storage.EncodeRecord(r.Image))
	l.records = append(l.records, r)
	l.sizes = append(l.sizes, enc)
	l.bytes += enc
	for l.bytes > l.capacity && len(l.records) > 1 {
		l.bytes -= l.sizes[0]
		l.records = l.records[1:]
		l.sizes = l.sizes[1:]
		l.evicted++
	}
}

// Records returns the retained records, oldest first.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// Len returns the retained record count.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Bytes returns the retained encoded size.
func (l *Log) Bytes() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Evicted returns how many records have been overwritten by the
// circular wraparound.
func (l *Log) Evicted() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evicted
}

// OldestLSN returns the LSN of the oldest retained record, or 0 if the
// log is empty.
func (l *Log) OldestLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.records) == 0 {
		return 0
	}
	return l.records[0].LSN
}

// Serialize renders the retained log as one byte image — the "file on
// disk" that a disk snapshot captures.
func (l *Log) Serialize() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]byte, 0, l.bytes)
	for _, r := range l.records {
		out = append(out, r.Encode()...)
	}
	return out
}

// ParseLog parses a Serialize image back into records. It is resilient
// to a truncated tail (the torn final record of a crashed server): it
// returns everything parseable.
func ParseLog(img []byte) ([]Record, error) {
	var out []Record
	pos := 0
	for pos < len(img) {
		r, n, err := DecodeRecord(img[pos:])
		if err != nil {
			if len(out) > 0 {
				return out, nil // torn tail
			}
			return nil, err
		}
		out = append(out, r)
		pos += n
	}
	return out, nil
}

// Manager owns the global LSN counter and the redo and undo logs, and
// provides the typed logging entry points the engine calls.
//
// Concurrent writers commit through a group-commit pipeline: each change
// gets its LSN assigned and is queued under one short critical section
// (so queue order equals LSN order), and a single leader drains the
// queue into the redo/undo logs in one batched flush while followers
// wait. This coalesces concurrent appends into few lock acquisitions
// and — the property the forensic correlation attacks (E3, E8) depend
// on — keeps both logs strictly LSN-ordered no matter how statements
// interleave.
type Manager struct {
	mu       sync.Mutex // guards lsn and the group-commit queue
	flushed  *sync.Cond // broadcast after each batch flush
	lsn      uint64
	pendRedo []Record
	pendUndo []Record
	flushing bool   // a leader is draining the queue
	enqTotal uint64 // changes ever enqueued (ticket counter)
	flTotal  uint64 // changes whose batch has been flushed
	flushes  uint64 // batch flushes performed (group-commit stat)

	Redo *Log
	Undo *Log
}

// NewManager creates a manager with the given per-log capacities.
func NewManager(redoCapacity, undoCapacity int) (*Manager, error) {
	redo, err := NewLog("redo", redoCapacity)
	if err != nil {
		return nil, err
	}
	undo, err := NewLog("undo", undoCapacity)
	if err != nil {
		return nil, err
	}
	m := &Manager{Redo: redo, Undo: undo}
	m.flushed = sync.NewCond(&m.mu)
	return m, nil
}

// commit runs one change through the group-commit pipeline: assign the
// LSN and enqueue under the lock, then either lead a batched flush or
// wait for the current leader to flush this change. It returns only
// after the change is visible in both logs.
func (m *Manager) commit(redo, undo Record, size int) (uint64, Record) {
	m.mu.Lock()
	m.lsn += uint64(size)
	lsn := m.lsn
	redo.LSN, undo.LSN = lsn, lsn
	m.pendRedo = append(m.pendRedo, redo)
	m.pendUndo = append(m.pendUndo, undo)
	m.enqTotal++
	ticket := m.enqTotal
	if m.flushing {
		// Follower: a leader is already flushing; it will pick this
		// change up in its next batch.
		for m.flTotal < ticket {
			m.flushed.Wait()
		}
		m.mu.Unlock()
		return lsn, undo
	}
	// Leader: drain the queue, including anything followers enqueue
	// while we flush outside the lock.
	m.flushing = true
	for len(m.pendRedo) > 0 {
		redoBatch, undoBatch := m.pendRedo, m.pendUndo
		m.pendRedo, m.pendUndo = nil, nil
		m.mu.Unlock()
		m.Redo.AppendBatch(redoBatch)
		m.Undo.AppendBatch(undoBatch)
		m.mu.Lock()
		m.flTotal += uint64(len(redoBatch))
		m.flushes++
		m.flushed.Broadcast()
	}
	m.flushing = false
	m.mu.Unlock()
	return lsn, undo
}

// GroupCommitStats reports how many changes have been committed and in
// how many batch flushes; committed/flushes is the mean group size.
func (m *Manager) GroupCommitStats() (committed, flushes uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flTotal, m.flushes
}

// NextLSN advances and returns the global LSN. The increment is the
// encoded size of the change being logged, matching InnoDB's
// byte-offset LSNs (which is what makes the paper's LSN↔timestamp
// correlation linear in write volume).
func (m *Manager) NextLSN(size int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lsn += uint64(size)
	return m.lsn
}

// CurrentLSN returns the current LSN without advancing it.
func (m *Manager) CurrentLSN() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lsn
}

// LogInsert records a row insertion in both logs, returning the LSN
// and the undo record (which transactions buffer for rollback).
func (m *Manager) LogInsert(table uint8, row storage.Record) (uint64, Record) {
	key := storage.Record{row[0]}
	return m.commit(
		Record{Op: OpInsert, Table: table, Column: WholeRow, Image: row.Clone()},
		Record{Op: OpInsert, Table: table, Column: WholeRow, Image: key},
		headerSize+len(storage.EncodeRecord(row)))
}

// LogUpdate records a single-column update: old and new values go to
// undo and redo respectively.
func (m *Manager) LogUpdate(table uint8, key storage.Record, column uint8, oldVal, newVal storage.Record) (uint64, Record) {
	redoImg := append(key.Clone(), newVal...)
	undoImg := append(key.Clone(), oldVal...)
	return m.commit(
		Record{Op: OpUpdate, Table: table, Column: column, Image: redoImg},
		Record{Op: OpUpdate, Table: table, Column: column, Image: undoImg},
		headerSize+len(storage.EncodeRecord(redoImg)))
}

// LogDelete records a row deletion; the undo log keeps the full old row
// so the transaction can be rolled back.
func (m *Manager) LogDelete(table uint8, oldRow storage.Record) (uint64, Record) {
	key := storage.Record{oldRow[0]}
	return m.commit(
		Record{Op: OpDelete, Table: table, Column: WholeRow, Image: key},
		Record{Op: OpDelete, Table: table, Column: WholeRow, Image: oldRow.Clone()},
		headerSize+len(storage.EncodeRecord(oldRow)))
}
