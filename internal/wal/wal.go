// Package wal implements the engine's transaction logging: a circular
// redo log and a circular undo log, both recording byte-level changes
// to individual records, stamped with a global log sequence number
// (LSN) and the id of the transaction that made them. This mirrors
// InnoDB's multi-version concurrency control machinery, and — as §3 of
// the paper demonstrates — it is also a transcript of every recent
// write that a disk-snapshot attacker can replay with standard forensic
// techniques.
//
// Both logs are circular: when a log exceeds its capacity, the oldest
// records fall off. The retention window therefore depends on write
// volume and record size, which experiment E2 measures (the paper's
// "50 MB stores 16 days of 20-byte writes at 1 write/s" estimate).
//
// On disk (Serialize) every record travels inside a CRC32-C frame
// (storage.AppendFrame), so a reader can tell a torn tail from silent
// corruption and stop the scan at the first bad frame instead of
// misparsing garbage.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"snapdb/internal/storage"
)

// Op is the kind of change a log record describes.
type Op uint8

// Log record operations. OpCommit and OpAbort are transaction markers:
// redo-only records with an empty image whose Txn field says which
// transaction finished. Recovery replays only transactions that reached
// an OpCommit marker.
const (
	OpInsert Op = iota + 1
	OpUpdate
	OpDelete
	OpCommit
	OpAbort
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "INSERT"
	case OpUpdate:
		return "UPDATE"
	case OpDelete:
		return "DELETE"
	case OpCommit:
		return "COMMIT"
	case OpAbort:
		return "ABORT"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// IsMarker reports whether the op is a transaction marker rather than a
// data change.
func (o Op) IsMarker() bool { return o == OpCommit || o == OpAbort }

// WholeRow marks a record image that covers the entire row rather than
// a single column.
const WholeRow = 0xFF

// Record is one log record. For the redo log, Image holds the new
// data; for the undo log, the old data:
//
//	insert:  redo Image = full new row;         undo Image = key only
//	update:  redo Image = {key, new col value}; undo Image = {key, old col value}
//	delete:  redo Image = key only;             undo Image = full old row
//	commit/abort: empty Image, Txn identifies the finished transaction
type Record struct {
	LSN    uint64
	Txn    uint64 // owning transaction; 0 = pre-transaction (legacy) records
	Op     Op
	Table  uint8
	Column uint8 // column index for updates, WholeRow otherwise
	Image  storage.Record
}

// headerSize is the encoded record header: lsn(8) txn(8) op(1) table(1)
// column(1) payloadLen(2).
const headerSize = 21

// EncodedSize returns the encoded size of the record without encoding
// it. LSNs are byte offsets, so every logged change is sized on the
// hot path; this keeps that sizing allocation-free.
func (r Record) EncodedSize() int {
	return headerSize + storage.RecordSize(r.Image)
}

// Encode serializes the record.
func (r Record) Encode() []byte {
	return r.AppendEncode(make([]byte, 0, r.EncodedSize()))
}

// AppendEncode appends the record's encoding to dst and returns the
// extended slice, so batch serializers can reuse one buffer.
func (r Record) AppendEncode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, r.LSN)
	dst = binary.BigEndian.AppendUint64(dst, r.Txn)
	dst = append(dst, byte(r.Op), r.Table, r.Column)
	dst = binary.BigEndian.AppendUint16(dst, uint16(storage.RecordSize(r.Image)))
	dst = storage.AppendRecord(dst, r.Image)
	return dst
}

// DecodeRecord parses one record from b, returning it and the bytes
// consumed. It never panics on malformed input.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < headerSize {
		return Record{}, 0, fmt.Errorf("wal: record header truncated (%d bytes)", len(b))
	}
	r := Record{
		LSN:    binary.BigEndian.Uint64(b),
		Txn:    binary.BigEndian.Uint64(b[8:]),
		Op:     Op(b[16]),
		Table:  b[17],
		Column: b[18],
	}
	if r.Op < OpInsert || r.Op > OpAbort {
		return Record{}, 0, fmt.Errorf("wal: unknown op %d", b[16])
	}
	plen := int(binary.BigEndian.Uint16(b[19:]))
	if len(b) < headerSize+plen {
		return Record{}, 0, fmt.Errorf("wal: record payload truncated (want %d bytes)", plen)
	}
	img, n, err := storage.DecodeRecord(b[headerSize : headerSize+plen])
	if err != nil {
		return Record{}, 0, fmt.Errorf("wal: payload: %w", err)
	}
	if n != plen {
		return Record{}, 0, fmt.Errorf("wal: payload has %d trailing bytes", plen-n)
	}
	r.Image = img
	return r, headerSize + plen, nil
}

// Log is one circular log (redo or undo).
type Log struct {
	mu       sync.Mutex
	name     string
	capacity int // bytes

	records []Record
	sizes   []int
	bytes   int
	evicted uint64 // count of records that have fallen off the front
}

// DefaultCapacity is the default log size, matching the paper's "50 Mb"
// figure for MySQL's default redo/undo configuration.
const DefaultCapacity = 50 << 20

// NewLog creates a circular log holding at most capacity bytes of
// encoded records.
func NewLog(name string, capacity int) (*Log, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("wal: capacity must be positive, got %d", capacity)
	}
	return &Log{name: name, capacity: capacity}, nil
}

// Append adds a record, evicting the oldest records if the log would
// exceed its capacity.
func (l *Log) Append(r Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.appendLocked(r)
}

// AppendBatch adds records in order under one lock acquisition — the
// flush half of the manager's group commit.
func (l *Log) AppendBatch(recs []Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range recs {
		l.appendLocked(r)
	}
}

func (l *Log) appendLocked(r Record) {
	enc := r.EncodedSize()
	l.records = append(l.records, r)
	l.sizes = append(l.sizes, enc)
	l.bytes += enc
	for l.bytes > l.capacity && len(l.records) > 1 {
		l.bytes -= l.sizes[0]
		l.records = l.records[1:]
		l.sizes = l.sizes[1:]
		l.evicted++
	}
}

// Reset discards all retained records (after a checkpoint has made them
// redundant). The eviction counter is preserved.
func (l *Log) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.records, l.sizes, l.bytes = nil, nil, 0
}

// Records returns the retained records, oldest first.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// Len returns the retained record count.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Bytes returns the retained encoded size.
func (l *Log) Bytes() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Evicted returns how many records have been overwritten by the
// circular wraparound.
func (l *Log) Evicted() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evicted
}

// OldestLSN returns the LSN of the oldest retained record, or 0 if the
// log is empty.
func (l *Log) OldestLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.records) == 0 {
		return 0
	}
	return l.records[0].LSN
}

// Serialize renders the retained log as one byte image — the "file on
// disk" that a disk snapshot captures. Each record is wrapped in a
// CRC32-C frame.
func (l *Log) Serialize() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]byte, 0, l.bytes+storage.FrameHeaderSize*len(l.records))
	var scratch []byte
	for _, r := range l.records {
		scratch = r.AppendEncode(scratch[:0])
		out = storage.AppendFrame(out, scratch)
	}
	return out
}

// ParseReport describes how a log image parse ended.
type ParseReport struct {
	// Frames is the number of valid frames parsed.
	Frames int
	// TruncatedAt is the byte offset of the first bad frame, or -1 if
	// the image parsed cleanly to the end. Bytes before TruncatedAt are
	// the valid prefix a recovery can keep.
	TruncatedAt int
	// Reason says why the scan stopped: "torn frame" for a tail cut
	// short mid-frame, a checksum/length description for corruption, or
	// "bad record: ..." when the frame was intact but its payload was
	// not a record.
	Reason string
}

// Truncated reports whether the parse stopped before the end of the
// image.
func (p ParseReport) Truncated() bool { return p.TruncatedAt >= 0 }

// ParseLogReport parses a Serialize image back into records, stopping
// at the first torn or corrupt frame. It returns the records of the
// valid prefix and a report saying where and why the scan stopped. It
// never panics on malformed input.
func ParseLogReport(img []byte) ([]Record, ParseReport) {
	var out []Record
	rep := ParseReport{TruncatedAt: -1}
	pos := 0
	for pos < len(img) {
		payload, n, err := storage.ReadFrame(img[pos:])
		if err != nil {
			rep.TruncatedAt = pos
			if errors.Is(err, storage.ErrFrameTruncated) {
				rep.Reason = "torn frame"
			} else {
				rep.Reason = err.Error()
			}
			return out, rep
		}
		r, rn, derr := DecodeRecord(payload)
		if derr != nil || rn != len(payload) {
			rep.TruncatedAt = pos
			if derr == nil {
				derr = fmt.Errorf("%d trailing bytes in frame", len(payload)-rn)
			}
			rep.Reason = "bad record: " + derr.Error()
			return out, rep
		}
		out = append(out, r)
		rep.Frames++
		pos += n
	}
	return out, rep
}

// ParseLog parses a Serialize image back into records. It is resilient
// to a truncated tail (the torn final record of a crashed server): it
// returns everything parseable, and errors only when a non-empty image
// yields nothing at all.
func ParseLog(img []byte) ([]Record, error) {
	recs, rep := ParseLogReport(img)
	if len(recs) == 0 && rep.Truncated() {
		return nil, fmt.Errorf("wal: unparseable log image at offset %d: %s", rep.TruncatedAt, rep.Reason)
	}
	return recs, nil
}

// pendEntry is one queued change in the group-commit pipeline.
type pendEntry struct {
	redo    Record
	undo    Record
	hasUndo bool
	ticket  uint64
}

// Manager owns the global LSN counter and the redo and undo logs, and
// provides the typed logging entry points the engine calls.
//
// Concurrent writers commit through a group-commit pipeline: each change
// gets its LSN assigned and is queued under one short critical section
// (so queue order equals LSN order), and a single leader drains the
// queue into the redo/undo logs in one batched flush while followers
// wait. This coalesces concurrent appends into few lock acquisitions
// and — the property the forensic correlation attacks (E3, E8) depend
// on — keeps both logs strictly LSN-ordered no matter how statements
// interleave.
//
// If a Sink is attached, the leader hands each batch to it before the
// batch becomes visible in the in-memory logs; a sink failure is
// reported to every writer whose change rode in that batch. This is the
// durability hook: the persistence layer syncs the batch to disk inside
// the sink, so a statement only returns success once its log records
// are on stable storage.
type Manager struct {
	mu       sync.Mutex // guards lsn, txnSeq and the group-commit queue
	flushed  *sync.Cond // broadcast after each batch flush
	lsn      uint64
	txnSeq   uint64
	pend     []pendEntry
	errs     map[uint64]error // per-ticket flush errors, read once by the waiter
	flushing bool             // a leader is draining the queue
	enqTotal uint64           // changes ever enqueued (ticket counter)
	flTotal  uint64           // changes whose batch has been flushed
	flushes  uint64           // batch flushes performed (group-commit stat)

	// Sink, if set, receives each flushed batch (redo records, and the
	// undo records for entries that have them) before the batch is
	// appended to the in-memory logs. Set it before concurrent use.
	Sink func(redo, undo []Record) error

	Redo *Log
	Undo *Log
}

// NewManager creates a manager with the given per-log capacities.
func NewManager(redoCapacity, undoCapacity int) (*Manager, error) {
	redo, err := NewLog("redo", redoCapacity)
	if err != nil {
		return nil, err
	}
	undo, err := NewLog("undo", undoCapacity)
	if err != nil {
		return nil, err
	}
	m := &Manager{Redo: redo, Undo: undo, errs: make(map[uint64]error)}
	m.flushed = sync.NewCond(&m.mu)
	return m, nil
}

// BeginTxn allocates a transaction id. Every data change and its
// closing OpCommit/OpAbort marker carry this id so recovery can sort
// winners from losers.
func (m *Manager) BeginTxn() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.txnSeq++
	return m.txnSeq
}

// TxnSeq returns the last allocated transaction id.
func (m *Manager) TxnSeq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.txnSeq
}

// SetRecovered primes the LSN counter and transaction id counter after
// recovery, so new activity continues past everything already logged.
func (m *Manager) SetRecovered(lsn, txnSeq uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if lsn > m.lsn {
		m.lsn = lsn
	}
	if txnSeq > m.txnSeq {
		m.txnSeq = txnSeq
	}
}

// commit runs one change through the group-commit pipeline: assign the
// LSN and enqueue under the lock, then either lead a batched flush or
// wait for the current leader to flush this change. It returns only
// after the change is durable (if a Sink is attached) and visible in
// the in-memory logs, or after its batch's flush failed.
func (m *Manager) commit(redo Record, undo *Record, size int) (uint64, Record, error) {
	m.mu.Lock()
	m.lsn += uint64(size)
	lsn := m.lsn
	redo.LSN = lsn
	e := pendEntry{redo: redo}
	if undo != nil {
		undo.LSN = lsn
		e.undo, e.hasUndo = *undo, true
	}
	m.enqTotal++
	e.ticket = m.enqTotal
	ticket := e.ticket
	m.pend = append(m.pend, e)
	if m.flushing {
		// Follower: a leader is already flushing; it will pick this
		// change up in its next batch.
		for m.flTotal < ticket {
			m.flushed.Wait()
		}
		err := m.errs[ticket]
		delete(m.errs, ticket)
		m.mu.Unlock()
		return lsn, e.undo, err
	}
	// Leader: drain the queue, including anything followers enqueue
	// while we flush outside the lock.
	m.flushing = true
	sink := m.Sink
	for len(m.pend) > 0 {
		batch := m.pend
		m.pend = nil
		m.mu.Unlock()
		redoBatch := make([]Record, 0, len(batch))
		undoBatch := make([]Record, 0, len(batch))
		for _, be := range batch {
			redoBatch = append(redoBatch, be.redo)
			if be.hasUndo {
				undoBatch = append(undoBatch, be.undo)
			}
		}
		var serr error
		if sink != nil {
			serr = sink(redoBatch, undoBatch)
		}
		if serr == nil {
			m.Redo.AppendBatch(redoBatch)
			m.Undo.AppendBatch(undoBatch)
		}
		m.mu.Lock()
		m.flTotal += uint64(len(batch))
		m.flushes++
		if serr != nil {
			for _, be := range batch {
				m.errs[be.ticket] = serr
			}
		}
		m.flushed.Broadcast()
	}
	m.flushing = false
	err := m.errs[ticket]
	delete(m.errs, ticket)
	m.mu.Unlock()
	return lsn, e.undo, err
}

// GroupCommitStats reports how many changes have been committed and in
// how many batch flushes; committed/flushes is the mean group size.
func (m *Manager) GroupCommitStats() (committed, flushes uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flTotal, m.flushes
}

// NextLSN advances and returns the global LSN. The increment is the
// encoded size of the change being logged, matching InnoDB's
// byte-offset LSNs (which is what makes the paper's LSN↔timestamp
// correlation linear in write volume).
func (m *Manager) NextLSN(size int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lsn += uint64(size)
	return m.lsn
}

// CurrentLSN returns the current LSN without advancing it.
func (m *Manager) CurrentLSN() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lsn
}

// TxInsert records a row insertion by txn in both logs, returning the
// LSN and the undo record (which transactions buffer for rollback).
func (m *Manager) TxInsert(txn uint64, table uint8, row storage.Record) (uint64, Record, error) {
	key := storage.Record{row[0]}
	return m.commit(
		Record{Txn: txn, Op: OpInsert, Table: table, Column: WholeRow, Image: row.Clone()},
		&Record{Txn: txn, Op: OpInsert, Table: table, Column: WholeRow, Image: key},
		headerSize+storage.RecordSize(row))
}

// TxUpdate records a single-column update by txn: old and new values go
// to undo and redo respectively.
func (m *Manager) TxUpdate(txn uint64, table uint8, key storage.Record, column uint8, oldVal, newVal storage.Record) (uint64, Record, error) {
	redoImg := append(key.Clone(), newVal...)
	undoImg := append(key.Clone(), oldVal...)
	return m.commit(
		Record{Txn: txn, Op: OpUpdate, Table: table, Column: column, Image: redoImg},
		&Record{Txn: txn, Op: OpUpdate, Table: table, Column: column, Image: undoImg},
		headerSize+storage.RecordSize(redoImg))
}

// TxDelete records a row deletion by txn; the undo log keeps the full
// old row so the transaction can be rolled back.
func (m *Manager) TxDelete(txn uint64, table uint8, oldRow storage.Record) (uint64, Record, error) {
	key := storage.Record{oldRow[0]}
	return m.commit(
		Record{Txn: txn, Op: OpDelete, Table: table, Column: WholeRow, Image: key},
		&Record{Txn: txn, Op: OpDelete, Table: table, Column: WholeRow, Image: oldRow.Clone()},
		headerSize+storage.RecordSize(oldRow))
}

// LogCommit appends txn's commit marker to the redo log. Recovery
// replays a transaction's changes only if this marker made it to disk —
// it is the durability point of the transaction.
func (m *Manager) LogCommit(txn uint64) error {
	_, _, err := m.commit(
		Record{Txn: txn, Op: OpCommit, Column: WholeRow},
		nil, headerSize+storage.RecordSize(nil))
	return err
}

// LogAbort appends txn's abort marker to the redo log, recording that
// the transaction's changes were rolled back on purpose.
func (m *Manager) LogAbort(txn uint64) error {
	_, _, err := m.commit(
		Record{Txn: txn, Op: OpAbort, Column: WholeRow},
		nil, headerSize+storage.RecordSize(nil))
	return err
}

// LogInsert records a row insertion outside any transaction (txn 0,
// treated as committed by recovery).
func (m *Manager) LogInsert(table uint8, row storage.Record) (uint64, Record, error) {
	return m.TxInsert(0, table, row)
}

// LogUpdate records a single-column update outside any transaction.
func (m *Manager) LogUpdate(table uint8, key storage.Record, column uint8, oldVal, newVal storage.Record) (uint64, Record, error) {
	return m.TxUpdate(0, table, key, column, oldVal, newVal)
}

// LogDelete records a row deletion outside any transaction.
func (m *Manager) LogDelete(table uint8, oldRow storage.Record) (uint64, Record, error) {
	return m.TxDelete(0, table, oldRow)
}
