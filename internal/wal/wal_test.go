package wal

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

func row(k int64, payload string) storage.Record {
	return storage.Record{sqlparse.IntValue(k), sqlparse.StrValue(payload)}
}

func TestRecordEncodeDecode(t *testing.T) {
	recs := []Record{
		{LSN: 1, Op: OpInsert, Table: 3, Column: WholeRow, Image: row(7, "hello")},
		{LSN: 99999, Op: OpUpdate, Table: 0, Column: 2, Image: storage.Record{sqlparse.IntValue(1), sqlparse.StrValue("new")}},
		{LSN: 5, Op: OpDelete, Table: 255, Column: WholeRow, Image: storage.Record{sqlparse.IntValue(42)}},
	}
	for _, r := range recs {
		enc := r.Encode()
		dec, n, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("DecodeRecord: %v", err)
		}
		if n != len(enc) {
			t.Errorf("consumed %d of %d", n, len(enc))
		}
		if dec.LSN != r.LSN || dec.Op != r.Op || dec.Table != r.Table || dec.Column != r.Column {
			t.Errorf("header mismatch: %+v vs %+v", dec, r)
		}
		if !dec.Image.Equal(r.Image) {
			t.Errorf("image mismatch: %v vs %v", dec.Image, r.Image)
		}
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	if _, _, err := DecodeRecord(nil); err == nil {
		t.Error("nil accepted")
	}
	r := Record{LSN: 1, Op: OpInsert, Table: 1, Column: WholeRow, Image: row(1, "x")}
	enc := r.Encode()
	if _, _, err := DecodeRecord(enc[:headerSize+1]); err == nil {
		t.Error("truncated payload accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[16] = 0x77 // bogus op
	if _, _, err := DecodeRecord(bad); err == nil {
		t.Error("bad op accepted")
	}
}

func TestNewLogRejectsBadCapacity(t *testing.T) {
	if _, err := NewLog("x", 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestCircularEviction(t *testing.T) {
	l, err := NewLog("redo", 1024)
	if err != nil {
		t.Fatal(err)
	}
	r := Record{Op: OpInsert, Table: 1, Column: WholeRow, Image: row(0, strings.Repeat("p", 100))}
	encSize := headerSize + len(storage.EncodeRecord(r.Image))
	n := 1024/encSize + 10
	for i := 0; i < n; i++ {
		r.LSN = uint64(i + 1)
		l.Append(r)
	}
	if l.Bytes() > 1024 {
		t.Errorf("log holds %d bytes, capacity 1024", l.Bytes())
	}
	if l.Evicted() == 0 {
		t.Error("no evictions despite overflow")
	}
	recs := l.Records()
	if recs[len(recs)-1].LSN != uint64(n) {
		t.Errorf("newest record LSN = %d, want %d", recs[len(recs)-1].LSN, n)
	}
	if l.OldestLSN() != recs[0].LSN {
		t.Errorf("OldestLSN = %d, records[0] = %d", l.OldestLSN(), recs[0].LSN)
	}
	// Oldest retained LSN should be recent, not 1.
	if recs[0].LSN == 1 {
		t.Error("oldest record survived wraparound")
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	l, _ := NewLog("redo", 1<<20)
	for i := 0; i < 50; i++ {
		l.Append(Record{LSN: uint64(i + 1), Op: OpInsert, Table: 2, Column: WholeRow, Image: row(int64(i), "payload")})
	}
	img := l.Serialize()
	recs, err := ParseLog(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 50 {
		t.Fatalf("parsed %d records", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Errorf("record %d LSN = %d", i, r.LSN)
		}
	}
}

func TestParseLogTornTail(t *testing.T) {
	l, _ := NewLog("redo", 1<<20)
	for i := 0; i < 3; i++ {
		l.Append(Record{LSN: uint64(i + 1), Op: OpInsert, Table: 1, Column: WholeRow, Image: row(int64(i), "x")})
	}
	img := l.Serialize()
	recs, err := ParseLog(img[:len(img)-4])
	if err != nil {
		t.Fatalf("torn tail: %v", err)
	}
	if len(recs) != 2 {
		t.Errorf("parsed %d records from torn log, want 2", len(recs))
	}
	if _, err := ParseLog([]byte{1, 2, 3}); err == nil {
		t.Error("pure garbage accepted")
	}
}

func TestParseLogEmpty(t *testing.T) {
	recs, err := ParseLog(nil)
	if err != nil || len(recs) != 0 {
		t.Errorf("empty log: recs=%d err=%v", len(recs), err)
	}
}

func TestManagerLSNMonotonic(t *testing.T) {
	m, err := NewManager(1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 100; i++ {
		lsn, _, _ := m.LogInsert(1, row(int64(i), "abc"))
		if lsn <= last {
			t.Fatalf("LSN not increasing: %d after %d", lsn, last)
		}
		last = lsn
	}
	if m.CurrentLSN() != last {
		t.Errorf("CurrentLSN = %d, last = %d", m.CurrentLSN(), last)
	}
}

func TestManagerInsertImages(t *testing.T) {
	m, _ := NewManager(1<<20, 1<<20)
	m.LogInsert(1, row(7, "secret-data"))
	redo := m.Redo.Records()
	undo := m.Undo.Records()
	if len(redo) != 1 || len(undo) != 1 {
		t.Fatalf("redo=%d undo=%d", len(redo), len(undo))
	}
	if len(redo[0].Image) != 2 || redo[0].Image[1].Str != "secret-data" {
		t.Errorf("redo image = %v, want full row", redo[0].Image)
	}
	if len(undo[0].Image) != 1 || undo[0].Image[0].Int != 7 {
		t.Errorf("undo image = %v, want key only", undo[0].Image)
	}
}

func TestManagerUpdateImages(t *testing.T) {
	m, _ := NewManager(1<<20, 1<<20)
	key := storage.Record{sqlparse.IntValue(7)}
	m.LogUpdate(1, key, 2,
		storage.Record{sqlparse.StrValue("old-value")},
		storage.Record{sqlparse.StrValue("new-value")})
	redo := m.Redo.Records()[0]
	undo := m.Undo.Records()[0]
	if redo.Column != 2 || undo.Column != 2 {
		t.Errorf("columns: redo=%d undo=%d", redo.Column, undo.Column)
	}
	if redo.Image[1].Str != "new-value" {
		t.Errorf("redo new value = %v", redo.Image)
	}
	if undo.Image[1].Str != "old-value" {
		t.Errorf("undo old value = %v", undo.Image)
	}
	if redo.LSN != undo.LSN {
		t.Error("redo and undo LSNs differ for one change")
	}
}

func TestManagerDeleteImages(t *testing.T) {
	m, _ := NewManager(1<<20, 1<<20)
	m.LogDelete(1, row(9, "the-deleted-row"))
	redo := m.Redo.Records()[0]
	undo := m.Undo.Records()[0]
	if len(redo.Image) != 1 {
		t.Errorf("redo delete image = %v, want key only", redo.Image)
	}
	if len(undo.Image) != 2 || undo.Image[1].Str != "the-deleted-row" {
		t.Errorf("undo delete image = %v, want full old row", undo.Image)
	}
}

func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(lsn uint64, key int64, payload string) bool {
		r := Record{LSN: lsn, Op: OpUpdate, Table: 1, Column: 1,
			Image: storage.Record{sqlparse.IntValue(key), sqlparse.StrValue(payload)}}
		enc := r.Encode()
		if len(storage.EncodeRecord(r.Image)) > 0xFFFF {
			return true // payload length field saturates; skip
		}
		dec, _, err := DecodeRecord(enc)
		return err == nil && dec.LSN == lsn && dec.Image.Equal(r.Image)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkLogInsert(b *testing.B) {
	m, err := NewManager(DefaultCapacity, DefaultCapacity)
	if err != nil {
		b.Fatal(err)
	}
	r := row(1, strings.Repeat("f", 20))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.LogInsert(1, r)
	}
}

func TestGroupCommitConcurrentOrder(t *testing.T) {
	m, err := NewManager(1<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.LogInsert(1, row(int64(w*perWorker+i), "payload"))
			}
		}(w)
	}
	wg.Wait()

	// Every append is durable (flushed) by the time LogInsert returns,
	// and the log is in strictly increasing LSN order even though the
	// appends raced: LSN assignment and queue order share one critical
	// section, and the leader drains FIFO.
	recs := m.Redo.Records()
	if len(recs) != workers*perWorker {
		t.Fatalf("redo records = %d, want %d", len(recs), workers*perWorker)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN <= recs[i-1].LSN {
			t.Fatalf("LSN order violated at %d: %d after %d", i, recs[i].LSN, recs[i-1].LSN)
		}
	}
	undo := m.Undo.Records()
	for i := 1; i < len(undo); i++ {
		if undo[i].LSN <= undo[i-1].LSN {
			t.Fatalf("undo LSN order violated at %d: %d after %d", i, undo[i].LSN, undo[i-1].LSN)
		}
	}
	committed, flushes := m.GroupCommitStats()
	if committed != workers*perWorker {
		t.Errorf("committed = %d, want %d", committed, workers*perWorker)
	}
	if flushes == 0 || flushes > committed {
		t.Errorf("flushes = %d, committed = %d", flushes, committed)
	}
}
