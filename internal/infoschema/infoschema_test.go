package infoschema

import "testing"

func TestRegisterSetClear(t *testing.T) {
	p := New()
	p.Register(1, "app")
	p.Register(2, "analytics")
	p.SetQuery(2, "SELECT * FROM salaries", 500)

	rows := p.Snapshot()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].ID != 1 || rows[0].State != "idle" {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if rows[1].Statement != "SELECT * FROM salaries" || rows[1].State != "executing" || rows[1].Started != 500 {
		t.Errorf("row 1 = %+v", rows[1])
	}

	p.ClearQuery(2)
	rows = p.Snapshot()
	if rows[1].State != "idle" {
		t.Error("ClearQuery did not idle the connection")
	}
	// Paper-relevant: the last statement stays visible after completion.
	if rows[1].Statement != "SELECT * FROM salaries" {
		t.Error("last statement scrubbed from processlist")
	}
}

func TestUnregister(t *testing.T) {
	p := New()
	p.Register(1, "u")
	p.Unregister(1)
	if len(p.Snapshot()) != 0 {
		t.Error("unregistered connection still listed")
	}
}

func TestSetQueryUnknownConnection(t *testing.T) {
	p := New()
	p.SetQuery(9, "SELECT 1", 1) // must not panic
	p.ClearQuery(9)
	if len(p.Snapshot()) != 0 {
		t.Error("phantom connection appeared")
	}
}
