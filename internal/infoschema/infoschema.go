// Package infoschema implements the engine's information_schema
// analog, most importantly the processlist table: the timestamped list
// of all currently executing queries across connections. §4 of the
// paper notes that a single injected SELECT on this table reveals the
// live queries of every other user.
package infoschema

import (
	"sort"
	"sync"
)

// Process is one row of the processlist.
type Process struct {
	ID        int // connection id
	User      string
	State     string // "executing" or "idle"
	Started   int64  // UNIX seconds the current query started
	Statement string // current query text, empty when idle
}

// Processlist tracks live connections.
type Processlist struct {
	mu    sync.Mutex
	procs map[int]*Process

	// Scrub clears the statement text when a query finishes instead of
	// leaving it visible until replaced (MySQL leaves it; scrubbing is
	// a hardening measure).
	Scrub bool
}

// New creates an empty processlist.
func New() *Processlist {
	return &Processlist{procs: make(map[int]*Process)}
}

// Register adds a connection.
func (p *Processlist) Register(id int, user string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.procs[id] = &Process{ID: id, User: user, State: "idle"}
}

// Unregister removes a connection.
func (p *Processlist) Unregister(id int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.procs, id)
}

// SetQuery marks the connection as executing stmt.
func (p *Processlist) SetQuery(id int, stmt string, ts int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if proc, ok := p.procs[id]; ok {
		proc.State = "executing"
		proc.Statement = stmt
		proc.Started = ts
	}
}

// ClearQuery marks the connection idle. Like MySQL's processlist, the
// last statement remains visible in the Info column until replaced —
// we keep it in Statement with State "idle" — unless Scrub is set.
func (p *Processlist) ClearQuery(id int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if proc, ok := p.procs[id]; ok {
		proc.State = "idle"
		if p.Scrub {
			proc.Statement = ""
			proc.Started = 0
		}
	}
}

// Snapshot returns all rows ordered by connection id.
func (p *Processlist) Snapshot() []Process {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Process, 0, len(p.procs))
	for _, proc := range p.procs {
		out = append(out, *proc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
