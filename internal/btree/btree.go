// Package btree implements the clustered B+ tree index used by the
// snapdb engine, one tree per table, keyed by primary key.
//
// Node contents live in storage pages fetched through the buffer pool,
// so every traversal updates the pool's LRU order and access counters —
// the in-memory state that §5 of the paper shows a snapshot attacker
// reads back out. Inserts append into slotted pages and deletes only
// mark slots, so page images retain dead-record residue like production
// engines do.
package btree

import (
	"fmt"
	"sort"

	"snapdb/internal/bufpool"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// Tree is a B+ tree whose leaf entries are full records with the key in
// column 0.
type Tree struct {
	pool *bufpool.Pool
	ts   *storage.Tablespace
	root storage.PageID
}

// New creates an empty tree with a single leaf root.
func New(ts *storage.Tablespace, pool *bufpool.Pool) *Tree {
	leaf := ts.Allocate(storage.PageBTreeLeaf)
	return &Tree{pool: pool, ts: ts, root: leaf.ID()}
}

// Open attaches to an existing tree rooted at root.
func Open(ts *storage.Tablespace, pool *bufpool.Pool, root storage.PageID) *Tree {
	return &Tree{pool: pool, ts: ts, root: root}
}

// Root returns the current root page id (it changes when the root
// splits), for catalog persistence.
func (t *Tree) Root() storage.PageID { return t.root }

// entry is one decoded node entry. In a leaf, rec is the full record
// (rec[0] is the key). In an internal node, rec is {separatorKey,
// childPageID}.
type entry struct {
	key  sqlparse.Value
	rec  storage.Record
	slot int
}

func decodeEntries(p *storage.Page) ([]entry, error) {
	var out []entry
	for i := 0; i < p.SlotCount(); i++ {
		b := p.SlotBytes(i)
		if b == nil {
			continue
		}
		rec, _, err := storage.DecodeRecord(b)
		if err != nil {
			return nil, fmt.Errorf("btree: page %d slot %d: %w", p.ID(), i, err)
		}
		if len(rec) == 0 {
			return nil, fmt.Errorf("btree: page %d slot %d: empty record", p.ID(), i)
		}
		out = append(out, entry{key: rec[0], rec: rec, slot: i})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].key.Compare(out[j].key) < 0 })
	return out, nil
}

// childFor returns the child page that covers key: the last entry whose
// separator is <= key, or the first entry if key precedes all
// separators.
func childFor(entries []entry, key sqlparse.Value) (storage.PageID, error) {
	if len(entries) == 0 {
		return storage.InvalidPage, fmt.Errorf("btree: internal node with no children")
	}
	idx := 0
	for i, e := range entries {
		if e.key.Compare(key) <= 0 {
			idx = i
		} else {
			break
		}
	}
	child := entries[idx].rec[1]
	if !child.IsInt {
		return storage.InvalidPage, fmt.Errorf("btree: corrupt child pointer")
	}
	return storage.PageID(child.Int), nil
}

// findLeaf walks from the root to the leaf covering key, returning the
// leaf and the page-id path walked (root first).
func (t *Tree) findLeaf(key sqlparse.Value) (*storage.Page, []storage.PageID, error) {
	var path []storage.PageID
	id := t.root
	for {
		p, err := t.pool.Fetch(id)
		if err != nil {
			return nil, nil, err
		}
		path = append(path, id)
		if p.Type() == storage.PageBTreeLeaf {
			return p, path, nil
		}
		entries, err := decodeEntries(p)
		if err != nil {
			return nil, nil, err
		}
		id, err = childFor(entries, key)
		if err != nil {
			return nil, nil, err
		}
	}
}

// TraversalPath returns the page ids a lookup of key touches, root
// first. The leakage analysis uses it to interpret buffer-pool dumps.
func (t *Tree) TraversalPath(key sqlparse.Value) ([]storage.PageID, error) {
	_, path, err := t.findLeaf(key)
	return path, err
}

// ErrDuplicateKey is returned by Insert when the key already exists.
var ErrDuplicateKey = fmt.Errorf("btree: duplicate key")

// Insert adds a record; rec[0] is the key.
func (t *Tree) Insert(rec storage.Record) error {
	if len(rec) == 0 {
		return fmt.Errorf("btree: inserting empty record")
	}
	split, err := t.insertInto(t.root, rec)
	if err != nil {
		return err
	}
	if split != nil {
		// Root split: build a new internal root over old root and the
		// new sibling.
		oldRootFirst, err := t.firstKeyOf(t.root)
		if err != nil {
			return err
		}
		newRoot := t.ts.Allocate(storage.PageBTreeInternal)
		left := storage.EncodeRecord(storage.Record{oldRootFirst, sqlparse.IntValue(int64(t.root))})
		right := storage.EncodeRecord(storage.Record{split.key, sqlparse.IntValue(int64(split.page))})
		if _, err := newRoot.InsertBytes(left); err != nil {
			return err
		}
		if _, err := newRoot.InsertBytes(right); err != nil {
			return err
		}
		t.root = newRoot.ID()
	}
	return nil
}

func (t *Tree) firstKeyOf(id storage.PageID) (sqlparse.Value, error) {
	p, err := t.ts.Get(id)
	if err != nil {
		return sqlparse.Value{}, err
	}
	entries, err := decodeEntries(p)
	if err != nil {
		return sqlparse.Value{}, err
	}
	if len(entries) == 0 {
		return sqlparse.Value{}, fmt.Errorf("btree: page %d is empty", id)
	}
	return entries[0].key, nil
}

// splitResult describes an upward-propagating split.
type splitResult struct {
	key  sqlparse.Value // first key of the new right sibling
	page storage.PageID
}

func (t *Tree) insertInto(id storage.PageID, rec storage.Record) (*splitResult, error) {
	p, err := t.pool.Fetch(id)
	if err != nil {
		return nil, err
	}
	if p.Type() == storage.PageBTreeLeaf {
		return t.insertLeaf(p, rec)
	}
	entries, err := decodeEntries(p)
	if err != nil {
		return nil, err
	}
	child, err := childFor(entries, rec[0])
	if err != nil {
		return nil, err
	}
	split, err := t.insertInto(child, rec)
	if err != nil || split == nil {
		return nil, err
	}
	sep := storage.Record{split.key, sqlparse.IntValue(int64(split.page))}
	return t.insertNodeEntry(p, sep)
}

func (t *Tree) insertLeaf(p *storage.Page, rec storage.Record) (*splitResult, error) {
	entries, err := decodeEntries(p)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.key.Equal(rec[0]) {
			return nil, fmt.Errorf("%w: %s", ErrDuplicateKey, rec[0])
		}
	}
	return t.insertNodeEntry(p, rec)
}

// insertNodeEntry appends rec into node p, splitting if necessary.
func (t *Tree) insertNodeEntry(p *storage.Page, rec storage.Record) (*splitResult, error) {
	enc := storage.EncodeRecord(rec)
	if len(enc) > storage.PageSize/2 {
		return nil, fmt.Errorf("btree: record of %d bytes exceeds half a page", len(enc))
	}
	if _, err := p.InsertBytes(enc); err == nil {
		return nil, nil
	}
	// Reclaim deleted-slot space before splitting.
	p.Compact()
	if _, err := p.InsertBytes(enc); err == nil {
		return nil, nil
	}
	return t.split(p, rec)
}

// split divides node p around its median, moving the upper half (plus
// rec wherever it belongs) into a fresh sibling.
func (t *Tree) split(p *storage.Page, rec storage.Record) (*splitResult, error) {
	entries, err := decodeEntries(p)
	if err != nil {
		return nil, err
	}
	all := make([]storage.Record, 0, len(entries)+1)
	for _, e := range entries {
		all = append(all, e.rec)
	}
	all = append(all, rec)
	sort.SliceStable(all, func(i, j int) bool { return all[i][0].Compare(all[j][0]) < 0 })
	mid := len(all) / 2

	sibling := t.ts.Allocate(p.Type())
	if p.Type() == storage.PageBTreeLeaf {
		sibling.SetNext(p.Next())
		p.SetNext(sibling.ID())
	}
	oldNext := p.Next()
	p.Format(p.ID(), p.Type())
	if p.Type() == storage.PageBTreeLeaf {
		p.SetNext(oldNext)
	}
	for i, r := range all {
		target := p
		if i >= mid {
			target = sibling
		}
		if _, err := target.InsertBytes(storage.EncodeRecord(r)); err != nil {
			return nil, fmt.Errorf("btree: split re-insert failed: %w", err)
		}
	}
	return &splitResult{key: all[mid][0], page: sibling.ID()}, nil
}

// Search returns the record with the given key.
func (t *Tree) Search(key sqlparse.Value) (storage.Record, bool, error) {
	leaf, _, err := t.findLeaf(key)
	if err != nil {
		return nil, false, err
	}
	entries, err := decodeEntries(leaf)
	if err != nil {
		return nil, false, err
	}
	for _, e := range entries {
		if e.key.Equal(key) {
			return e.rec.Clone(), true, nil
		}
	}
	return nil, false, nil
}

// Delete removes the record with the given key, reporting whether it
// existed. The slot is only marked deleted; bytes remain in the page.
func (t *Tree) Delete(key sqlparse.Value) (bool, error) {
	leaf, _, err := t.findLeaf(key)
	if err != nil {
		return false, err
	}
	entries, err := decodeEntries(leaf)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if e.key.Equal(key) {
			return true, leaf.DeleteSlot(e.slot)
		}
	}
	return false, nil
}

// Update replaces the record stored under key (rec[0] must equal key).
func (t *Tree) Update(key sqlparse.Value, rec storage.Record) (bool, error) {
	if len(rec) == 0 || !rec[0].Equal(key) {
		return false, fmt.Errorf("btree: update record key mismatch")
	}
	leaf, _, err := t.findLeaf(key)
	if err != nil {
		return false, err
	}
	entries, err := decodeEntries(leaf)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.key.Equal(key) {
			continue
		}
		enc := storage.EncodeRecord(rec)
		if err := leaf.UpdateSlot(e.slot, enc); err == storage.ErrPageFull {
			// Delete + re-insert through the normal split path.
			if err := leaf.DeleteSlot(e.slot); err != nil {
				return false, err
			}
			return true, t.Insert(rec)
		} else if err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// Scan calls fn for every record in key order. fn returns false to stop.
func (t *Tree) Scan(fn func(storage.Record) bool) error {
	leaf, err := t.leftmostLeaf()
	if err != nil {
		return err
	}
	return t.scanLeaves(leaf, fn)
}

// Range calls fn for records with lo <= key <= hi in key order.
func (t *Tree) Range(lo, hi sqlparse.Value, fn func(storage.Record) bool) error {
	leaf, _, err := t.findLeaf(lo)
	if err != nil {
		return err
	}
	stop := func(r storage.Record) bool { return r[0].Compare(hi) > 0 }
	return t.scanLeaves(leaf, func(r storage.Record) bool {
		if r[0].Compare(lo) < 0 {
			return true
		}
		if stop(r) {
			return false
		}
		return fn(r)
	})
}

func (t *Tree) leftmostLeaf() (*storage.Page, error) {
	id := t.root
	for {
		p, err := t.pool.Fetch(id)
		if err != nil {
			return nil, err
		}
		if p.Type() == storage.PageBTreeLeaf {
			return p, nil
		}
		entries, err := decodeEntries(p)
		if err != nil {
			return nil, err
		}
		if len(entries) == 0 {
			return nil, fmt.Errorf("btree: empty internal node %d", id)
		}
		id = storage.PageID(entries[0].rec[1].Int)
	}
}

func (t *Tree) scanLeaves(leaf *storage.Page, fn func(storage.Record) bool) error {
	for {
		entries, err := decodeEntries(leaf)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !fn(e.rec.Clone()) {
				return nil
			}
		}
		next := leaf.Next()
		if next == storage.InvalidPage {
			return nil
		}
		leaf, err = t.pool.Fetch(next)
		if err != nil {
			return err
		}
	}
}

// Len counts the records in the tree (full scan).
func (t *Tree) Len() (int, error) {
	n := 0
	err := t.Scan(func(storage.Record) bool { n++; return true })
	return n, err
}

// Height returns the number of levels from root to leaf.
func (t *Tree) Height() (int, error) {
	h := 1
	id := t.root
	for {
		p, err := t.ts.Get(id)
		if err != nil {
			return 0, err
		}
		if p.Type() == storage.PageBTreeLeaf {
			return h, nil
		}
		entries, err := decodeEntries(p)
		if err != nil {
			return 0, err
		}
		if len(entries) == 0 {
			return 0, fmt.Errorf("btree: empty internal node %d", id)
		}
		id = storage.PageID(entries[0].rec[1].Int)
		h++
	}
}
