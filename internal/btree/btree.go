// Package btree implements the clustered B+ tree index used by the
// snapdb engine, one tree per table, keyed by primary key.
//
// Node contents live in storage pages fetched through the buffer pool,
// so every traversal updates the pool's LRU order and access counters —
// the in-memory state that §5 of the paper shows a snapshot attacker
// reads back out. Inserts append into slotted pages and deletes only
// mark slots, so page images retain dead-record residue like production
// engines do.
package btree

import (
	"fmt"
	"sort"

	"snapdb/internal/bufpool"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// Tree is a B+ tree whose leaf entries are full records with the key in
// column 0.
type Tree struct {
	pool *bufpool.Pool
	ts   *storage.Tablespace
	root storage.PageID
}

// New creates an empty tree with a single leaf root.
func New(ts *storage.Tablespace, pool *bufpool.Pool) *Tree {
	leaf := ts.Allocate(storage.PageBTreeLeaf)
	return &Tree{pool: pool, ts: ts, root: leaf.ID()}
}

// Open attaches to an existing tree rooted at root.
func Open(ts *storage.Tablespace, pool *bufpool.Pool, root storage.PageID) *Tree {
	return &Tree{pool: pool, ts: ts, root: root}
}

// Root returns the current root page id (it changes when the root
// splits), for catalog persistence.
func (t *Tree) Root() storage.PageID { return t.root }

// entry is one decoded node entry. In a leaf, rec is the full record
// (rec[0] is the key). In an internal node, rec is {separatorKey,
// childPageID}.
type entry struct {
	key  sqlparse.Value
	rec  storage.Record
	slot int
}

func decodeEntries(p *storage.Page) ([]entry, error) {
	var out []entry
	for i := 0; i < p.SlotCount(); i++ {
		b := p.SlotBytes(i)
		if b == nil {
			continue
		}
		rec, _, err := storage.DecodeRecord(b)
		if err != nil {
			return nil, fmt.Errorf("btree: page %d slot %d: %w", p.ID(), i, err)
		}
		if len(rec) == 0 {
			return nil, fmt.Errorf("btree: page %d slot %d: empty record", p.ID(), i)
		}
		out = append(out, entry{key: rec[0], rec: rec, slot: i})
	}
	if !entriesSorted(out) {
		sort.SliceStable(out, func(i, j int) bool { return out[i].key.Compare(out[j].key) < 0 })
	}
	return out, nil
}

// entriesSorted reports whether entries are already in key order. Slots
// are appended in insert order, which for monotonic keys (and for any
// page rebuilt by a split) is already sorted — checking first keeps the
// steady state free of sort.SliceStable's reflective swapper
// allocation.
func entriesSorted(es []entry) bool {
	for i := 1; i < len(es); i++ {
		if es[i].key.Compare(es[i-1].key) < 0 {
			return false
		}
	}
	return true
}

// keyRef is a key-only view of a live slot: enough to sort, filter,
// and decide which slots deserve a full DecodeRecord.
type keyRef struct {
	key  sqlparse.Value
	slot int
}

// decodeKeys collects the keys of p's live slots into dst (reused
// across leaves by scans), sorted by key. Unlike decodeEntries it does
// not materialize records, so slots a range filter will discard cost
// nothing beyond the key decode.
func decodeKeys(p *storage.Page, dst []keyRef) ([]keyRef, error) {
	dst = dst[:0]
	for i := 0; i < p.SlotCount(); i++ {
		b := p.SlotBytes(i)
		if b == nil {
			continue
		}
		k, err := storage.DecodeKey(b)
		if err != nil {
			return nil, fmt.Errorf("btree: page %d slot %d: %w", p.ID(), i, err)
		}
		dst = append(dst, keyRef{key: k, slot: i})
	}
	sorted := true
	for i := 1; i < len(dst); i++ {
		if dst[i].key.Compare(dst[i-1].key) < 0 {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.SliceStable(dst, func(i, j int) bool { return dst[i].key.Compare(dst[j].key) < 0 })
	}
	return dst, nil
}

// findSlot locates the live slot holding key in leaf p, decoding keys
// only.
func findSlot(p *storage.Page, key sqlparse.Value) (int, bool, error) {
	for i := 0; i < p.SlotCount(); i++ {
		b := p.SlotBytes(i)
		if b == nil {
			continue
		}
		k, err := storage.DecodeKey(b)
		if err != nil {
			return 0, false, fmt.Errorf("btree: page %d slot %d: %w", p.ID(), i, err)
		}
		if k.Equal(key) {
			return i, true, nil
		}
	}
	return 0, false, nil
}

// decodeSlot fully decodes the record in slot i of p.
func decodeSlot(p *storage.Page, i int) (storage.Record, error) {
	rec, _, err := storage.DecodeRecord(p.SlotBytes(i))
	if err != nil {
		return nil, fmt.Errorf("btree: page %d slot %d: %w", p.ID(), i, err)
	}
	if len(rec) == 0 {
		return nil, fmt.Errorf("btree: page %d slot %d: empty record", p.ID(), i)
	}
	return rec, nil
}

// childFor returns the child page that covers key: the last entry whose
// separator is <= key, or the first entry if key precedes all
// separators.
func childFor(entries []entry, key sqlparse.Value) (storage.PageID, error) {
	if len(entries) == 0 {
		return storage.InvalidPage, fmt.Errorf("btree: internal node with no children")
	}
	idx := 0
	for i, e := range entries {
		if e.key.Compare(key) <= 0 {
			idx = i
		} else {
			break
		}
	}
	child := entries[idx].rec[1]
	if !child.IsInt {
		return storage.InvalidPage, fmt.Errorf("btree: corrupt child pointer")
	}
	return storage.PageID(child.Int), nil
}

// findLeaf walks from the root to the leaf covering key, returning the
// leaf and the page-id path walked (root first).
func (t *Tree) findLeaf(key sqlparse.Value) (*storage.Page, []storage.PageID, error) {
	var path []storage.PageID
	id := t.root
	for {
		p, err := t.pool.Fetch(id)
		if err != nil {
			return nil, nil, err
		}
		path = append(path, id)
		if p.Type() == storage.PageBTreeLeaf {
			return p, path, nil
		}
		entries, err := decodeEntries(p)
		if err != nil {
			return nil, nil, err
		}
		id, err = childFor(entries, key)
		if err != nil {
			return nil, nil, err
		}
	}
}

// TraversalPath returns the page ids a lookup of key touches, root
// first. The leakage analysis uses it to interpret buffer-pool dumps.
func (t *Tree) TraversalPath(key sqlparse.Value) ([]storage.PageID, error) {
	_, path, err := t.findLeaf(key)
	return path, err
}

// ErrDuplicateKey is returned by Insert when the key already exists.
var ErrDuplicateKey = fmt.Errorf("btree: duplicate key")

// Insert adds a record; rec[0] is the key.
func (t *Tree) Insert(rec storage.Record) error {
	if len(rec) == 0 {
		return fmt.Errorf("btree: inserting empty record")
	}
	split, err := t.insertInto(t.root, rec)
	if err != nil {
		return err
	}
	if split != nil {
		// Root split: build a new internal root over old root and the
		// new sibling.
		oldRootFirst, err := t.firstKeyOf(t.root)
		if err != nil {
			return err
		}
		newRoot := t.ts.Allocate(storage.PageBTreeInternal)
		left := storage.EncodeRecord(storage.Record{oldRootFirst, sqlparse.IntValue(int64(t.root))})
		right := storage.EncodeRecord(storage.Record{split.key, sqlparse.IntValue(int64(split.page))})
		if _, err := newRoot.InsertBytes(left); err != nil {
			return err
		}
		if _, err := newRoot.InsertBytes(right); err != nil {
			return err
		}
		t.root = newRoot.ID()
	}
	return nil
}

func (t *Tree) firstKeyOf(id storage.PageID) (sqlparse.Value, error) {
	p, err := t.ts.Get(id)
	if err != nil {
		return sqlparse.Value{}, err
	}
	entries, err := decodeEntries(p)
	if err != nil {
		return sqlparse.Value{}, err
	}
	if len(entries) == 0 {
		return sqlparse.Value{}, fmt.Errorf("btree: page %d is empty", id)
	}
	return entries[0].key, nil
}

// splitResult describes an upward-propagating split.
type splitResult struct {
	key  sqlparse.Value // first key of the new right sibling
	page storage.PageID
}

func (t *Tree) insertInto(id storage.PageID, rec storage.Record) (*splitResult, error) {
	p, err := t.pool.Fetch(id)
	if err != nil {
		return nil, err
	}
	if p.Type() == storage.PageBTreeLeaf {
		return t.insertLeaf(p, rec)
	}
	entries, err := decodeEntries(p)
	if err != nil {
		return nil, err
	}
	child, err := childFor(entries, rec[0])
	if err != nil {
		return nil, err
	}
	split, err := t.insertInto(child, rec)
	if err != nil || split == nil {
		return nil, err
	}
	sep := storage.Record{split.key, sqlparse.IntValue(int64(split.page))}
	return t.insertNodeEntry(p, sep)
}

func (t *Tree) insertLeaf(p *storage.Page, rec storage.Record) (*splitResult, error) {
	_, dup, err := findSlot(p, rec[0])
	if err != nil {
		return nil, err
	}
	if dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateKey, rec[0])
	}
	return t.insertNodeEntry(p, rec)
}

// insertNodeEntry appends rec into node p, splitting if necessary.
func (t *Tree) insertNodeEntry(p *storage.Page, rec storage.Record) (*splitResult, error) {
	enc := storage.EncodeRecord(rec)
	if len(enc) > storage.PageSize/2 {
		return nil, fmt.Errorf("btree: record of %d bytes exceeds half a page", len(enc))
	}
	if _, err := p.InsertBytes(enc); err == nil {
		return nil, nil
	}
	// Reclaim deleted-slot space before splitting.
	p.Compact()
	if _, err := p.InsertBytes(enc); err == nil {
		return nil, nil
	}
	return t.split(p, rec)
}

// split divides node p around its median, moving the upper half (plus
// rec wherever it belongs) into a fresh sibling.
func (t *Tree) split(p *storage.Page, rec storage.Record) (*splitResult, error) {
	entries, err := decodeEntries(p)
	if err != nil {
		return nil, err
	}
	all := make([]storage.Record, 0, len(entries)+1)
	for _, e := range entries {
		all = append(all, e.rec)
	}
	all = append(all, rec)
	sort.SliceStable(all, func(i, j int) bool { return all[i][0].Compare(all[j][0]) < 0 })
	mid := len(all) / 2

	sibling := t.ts.Allocate(p.Type())
	if p.Type() == storage.PageBTreeLeaf {
		sibling.SetNext(p.Next())
		p.SetNext(sibling.ID())
	}
	oldNext := p.Next()
	p.Format(p.ID(), p.Type())
	if p.Type() == storage.PageBTreeLeaf {
		p.SetNext(oldNext)
	}
	for i, r := range all {
		target := p
		if i >= mid {
			target = sibling
		}
		if _, err := target.InsertBytes(storage.EncodeRecord(r)); err != nil {
			return nil, fmt.Errorf("btree: split re-insert failed: %w", err)
		}
	}
	return &splitResult{key: all[mid][0], page: sibling.ID()}, nil
}

// Search returns the record with the given key. Only the matching
// slot is fully decoded; every other slot costs a key decode.
func (t *Tree) Search(key sqlparse.Value) (storage.Record, bool, error) {
	leaf, _, err := t.findLeaf(key)
	if err != nil {
		return nil, false, err
	}
	slot, found, err := findSlot(leaf, key)
	if err != nil || !found {
		return nil, false, err
	}
	rec, err := decodeSlot(leaf, slot)
	if err != nil {
		return nil, false, err
	}
	return rec, true, nil
}

// Delete removes the record with the given key, reporting whether it
// existed. The slot is only marked deleted; bytes remain in the page.
func (t *Tree) Delete(key sqlparse.Value) (bool, error) {
	leaf, _, err := t.findLeaf(key)
	if err != nil {
		return false, err
	}
	slot, found, err := findSlot(leaf, key)
	if err != nil || !found {
		return false, err
	}
	return true, leaf.DeleteSlot(slot)
}

// Update replaces the record stored under key (rec[0] must equal key).
func (t *Tree) Update(key sqlparse.Value, rec storage.Record) (bool, error) {
	if len(rec) == 0 || !rec[0].Equal(key) {
		return false, fmt.Errorf("btree: update record key mismatch")
	}
	leaf, _, err := t.findLeaf(key)
	if err != nil {
		return false, err
	}
	slot, found, err := findSlot(leaf, key)
	if err != nil || !found {
		return false, err
	}
	enc := storage.EncodeRecord(rec)
	if err := leaf.UpdateSlot(slot, enc); err == storage.ErrPageFull {
		// Delete + re-insert through the normal split path.
		if err := leaf.DeleteSlot(slot); err != nil {
			return false, err
		}
		return true, t.Insert(rec)
	} else if err != nil {
		return false, err
	}
	return true, nil
}

// Scan calls fn for every record in key order. fn returns false to stop.
func (t *Tree) Scan(fn func(storage.Record) bool) error {
	leaf, err := t.leftmostLeaf()
	if err != nil {
		return err
	}
	return t.scanLeaves(leaf, fn)
}

// Range calls fn for records with lo <= key <= hi in key order. Only
// records inside the bounds are fully decoded: every slot's key is
// checked first, so a point lookup in a many-record leaf materializes
// one record, not the whole page. The leaves visited — the buffer-pool
// traffic a snapshot attacker reads back out — are exactly the ones
// the full-decode path touched.
func (t *Tree) Range(lo, hi sqlparse.Value, fn func(storage.Record) bool) error {
	leaf, _, err := t.findLeaf(lo)
	if err != nil {
		return err
	}
	if lo.Equal(hi) {
		return t.point(leaf, lo, fn)
	}
	var keys []keyRef
	for {
		keys, err = decodeKeys(leaf, keys)
		if err != nil {
			return err
		}
		for _, k := range keys {
			if k.key.Compare(lo) < 0 {
				continue
			}
			if k.key.Compare(hi) > 0 {
				return nil
			}
			rec, err := decodeSlot(leaf, k.slot)
			if err != nil {
				return err
			}
			if !fn(rec) {
				return nil
			}
		}
		next := leaf.Next()
		if next == storage.InvalidPage {
			return nil
		}
		leaf, err = t.pool.Fetch(next)
		if err != nil {
			return err
		}
	}
}

// point is Range for lo == hi: keys are unique, so at most one slot
// matches and no sort is needed to deliver it "in order". The walk
// fetches exactly the leaves the general path would — it only stops at
// a leaf boundary once the current leaf holds a key beyond the target,
// the same condition that ends a sorted scan.
func (t *Tree) point(leaf *storage.Page, key sqlparse.Value, fn func(storage.Record) bool) error {
	for {
		matched := -1
		beyond := false
		for i := 0; i < leaf.SlotCount(); i++ {
			b := leaf.SlotBytes(i)
			if b == nil {
				continue
			}
			k, err := storage.DecodeKey(b)
			if err != nil {
				return fmt.Errorf("btree: page %d slot %d: %w", leaf.ID(), i, err)
			}
			if k.Equal(key) {
				matched = i
			} else if k.Compare(key) > 0 {
				beyond = true
			}
		}
		if matched >= 0 {
			rec, err := decodeSlot(leaf, matched)
			if err != nil {
				return err
			}
			if !fn(rec) {
				return nil
			}
		}
		if beyond {
			return nil
		}
		next := leaf.Next()
		if next == storage.InvalidPage {
			return nil
		}
		var err error
		leaf, err = t.pool.Fetch(next)
		if err != nil {
			return err
		}
	}
}

func (t *Tree) leftmostLeaf() (*storage.Page, error) {
	id := t.root
	for {
		p, err := t.pool.Fetch(id)
		if err != nil {
			return nil, err
		}
		if p.Type() == storage.PageBTreeLeaf {
			return p, nil
		}
		entries, err := decodeEntries(p)
		if err != nil {
			return nil, err
		}
		if len(entries) == 0 {
			return nil, fmt.Errorf("btree: empty internal node %d", id)
		}
		id = storage.PageID(entries[0].rec[1].Int)
	}
}

func (t *Tree) scanLeaves(leaf *storage.Page, fn func(storage.Record) bool) error {
	for {
		entries, err := decodeEntries(leaf)
		if err != nil {
			return err
		}
		// No Clone: DecodeRecord returned fresh memory and the entries
		// slice is not retained past this loop.
		for _, e := range entries {
			if !fn(e.rec) {
				return nil
			}
		}
		next := leaf.Next()
		if next == storage.InvalidPage {
			return nil
		}
		leaf, err = t.pool.Fetch(next)
		if err != nil {
			return err
		}
	}
}

// Len counts the records in the tree (full scan).
func (t *Tree) Len() (int, error) {
	n := 0
	err := t.Scan(func(storage.Record) bool { n++; return true })
	return n, err
}

// Height returns the number of levels from root to leaf.
func (t *Tree) Height() (int, error) {
	h := 1
	id := t.root
	for {
		p, err := t.ts.Get(id)
		if err != nil {
			return 0, err
		}
		if p.Type() == storage.PageBTreeLeaf {
			return h, nil
		}
		entries, err := decodeEntries(p)
		if err != nil {
			return 0, err
		}
		if len(entries) == 0 {
			return 0, fmt.Errorf("btree: empty internal node %d", id)
		}
		id = storage.PageID(entries[0].rec[1].Int)
		h++
	}
}
