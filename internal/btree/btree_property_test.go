package btree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// TestQuickInsertSearchDelete drives random operation sequences against
// both the tree and a model map, checking they agree at every step.
func TestQuickInsertSearchDelete(t *testing.T) {
	f := func(seed int64) bool {
		tr, _, _ := newTree(t)
		rng := rand.New(rand.NewSource(seed))
		model := make(map[int64]string)
		for op := 0; op < 400; op++ {
			k := int64(rng.Intn(120))
			switch rng.Intn(3) {
			case 0: // insert
				payload := string(rune('a' + rng.Intn(26)))
				err := tr.Insert(intRec(k, payload))
				if _, exists := model[k]; exists {
					if err == nil {
						return false // duplicate accepted
					}
				} else {
					if err != nil {
						return false
					}
					model[k] = payload
				}
			case 1: // delete
				found, err := tr.Delete(sqlparse.IntValue(k))
				if err != nil {
					return false
				}
				_, exists := model[k]
				if found != exists {
					return false
				}
				delete(model, k)
			case 2: // search
				rec, found, err := tr.Search(sqlparse.IntValue(k))
				if err != nil {
					return false
				}
				want, exists := model[k]
				if found != exists {
					return false
				}
				if found && rec[1].Str != want {
					return false
				}
			}
		}
		// Final full-scan agreement.
		n := 0
		err := tr.Scan(func(r storage.Record) bool {
			want, ok := model[r[0].Int]
			if !ok || r[1].Str != want {
				return false
			}
			n++
			return true
		})
		return err == nil && n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQuickRangeMatchesModel checks Range against a filtered model.
func TestQuickRangeMatchesModel(t *testing.T) {
	f := func(seed int64, loRaw, hiRaw uint8) bool {
		tr, _, _ := newTree(t)
		rng := rand.New(rand.NewSource(seed))
		model := make(map[int64]bool)
		for i := 0; i < 200; i++ {
			k := int64(rng.Intn(255))
			if model[k] {
				continue
			}
			if err := tr.Insert(intRec(k, "x")); err != nil {
				return false
			}
			model[k] = true
		}
		lo, hi := int64(loRaw), int64(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		want := 0
		for k := range model {
			if k >= lo && k <= hi {
				want++
			}
		}
		got := 0
		err := tr.Range(sqlparse.IntValue(lo), sqlparse.IntValue(hi), func(r storage.Record) bool {
			if r[0].Int < lo || r[0].Int > hi {
				return false
			}
			got++
			return true
		})
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
