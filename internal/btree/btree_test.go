package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"snapdb/internal/bufpool"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

func newTree(t testing.TB) (*Tree, *bufpool.Pool, *storage.Tablespace) {
	t.Helper()
	ts := storage.NewTablespace()
	pool, err := bufpool.New(ts, 64)
	if err != nil {
		t.Fatal(err)
	}
	return New(ts, pool), pool, ts
}

func intRec(k int64, payload string) storage.Record {
	return storage.Record{sqlparse.IntValue(k), sqlparse.StrValue(payload)}
}

func TestInsertSearch(t *testing.T) {
	tr, _, _ := newTree(t)
	if err := tr.Insert(intRec(5, "five")); err != nil {
		t.Fatal(err)
	}
	rec, ok, err := tr.Search(sqlparse.IntValue(5))
	if err != nil || !ok {
		t.Fatalf("Search: ok=%v err=%v", ok, err)
	}
	if rec[1].Str != "five" {
		t.Errorf("payload = %q", rec[1].Str)
	}
	if _, ok, _ := tr.Search(sqlparse.IntValue(6)); ok {
		t.Error("found missing key")
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	tr, _, _ := newTree(t)
	if err := tr.Insert(intRec(1, "a")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(intRec(1, "b")); err == nil {
		t.Error("duplicate key accepted")
	}
}

func TestInsertEmptyRecordRejected(t *testing.T) {
	tr, _, _ := newTree(t)
	if err := tr.Insert(storage.Record{}); err == nil {
		t.Error("empty record accepted")
	}
}

func TestManyInsertsSplitAndStaySorted(t *testing.T) {
	tr, _, _ := newTree(t)
	const n = 2000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, k := range perm {
		if err := tr.Insert(intRec(int64(k), fmt.Sprintf("payload-%d", k))); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Errorf("height = %d; expected the tree to have split", h)
	}
	var keys []int64
	if err := tr.Scan(func(r storage.Record) bool {
		keys = append(keys, r[0].Int)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != n {
		t.Fatalf("scan returned %d records, want %d", len(keys), n)
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Error("scan not in key order")
	}
	// Every key is findable after splits.
	for _, k := range []int64{0, 1, n / 2, n - 1} {
		if _, ok, err := tr.Search(sqlparse.IntValue(k)); err != nil || !ok {
			t.Errorf("Search(%d) after splits: ok=%v err=%v", k, ok, err)
		}
	}
}

func TestStringKeys(t *testing.T) {
	tr, _, _ := newTree(t)
	words := []string{"mango", "apple", "cherry", "banana", "elderberry", "date"}
	for _, w := range words {
		if err := tr.Insert(storage.Record{sqlparse.StrValue(w), sqlparse.IntValue(int64(len(w)))}); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	if err := tr.Scan(func(r storage.Record) bool { got = append(got, r[0].Str); return true }); err != nil {
		t.Fatal(err)
	}
	want := append([]string(nil), words...)
	sort.Strings(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order %v, want %v", got, want)
		}
	}
}

func TestDelete(t *testing.T) {
	tr, _, _ := newTree(t)
	for k := int64(0); k < 100; k++ {
		if err := tr.Insert(intRec(k, "x")); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := tr.Delete(sqlparse.IntValue(50))
	if err != nil || !ok {
		t.Fatalf("Delete: ok=%v err=%v", ok, err)
	}
	if _, found, _ := tr.Search(sqlparse.IntValue(50)); found {
		t.Error("deleted key still found")
	}
	if ok, _ := tr.Delete(sqlparse.IntValue(50)); ok {
		t.Error("double delete reported success")
	}
	n, err := tr.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 99 {
		t.Errorf("Len = %d, want 99", n)
	}
}

func TestUpdate(t *testing.T) {
	tr, _, _ := newTree(t)
	if err := tr.Insert(intRec(7, "before")); err != nil {
		t.Fatal(err)
	}
	ok, err := tr.Update(sqlparse.IntValue(7), intRec(7, "after"))
	if err != nil || !ok {
		t.Fatalf("Update: ok=%v err=%v", ok, err)
	}
	rec, _, _ := tr.Search(sqlparse.IntValue(7))
	if rec[1].Str != "after" {
		t.Errorf("payload = %q", rec[1].Str)
	}
	if ok, _ := tr.Update(sqlparse.IntValue(8), intRec(8, "x")); ok {
		t.Error("update of missing key reported success")
	}
	if _, err := tr.Update(sqlparse.IntValue(7), intRec(9, "bad")); err == nil {
		t.Error("key-mismatched update accepted")
	}
}

func TestUpdateGrowingRecordAcrossPages(t *testing.T) {
	tr, _, _ := newTree(t)
	// Fill a leaf nearly full, then grow one record beyond page space so
	// Update must take the delete+reinsert path.
	big := make([]byte, 300)
	for i := range big {
		big[i] = 'x'
	}
	for k := int64(0); k < 12; k++ {
		if err := tr.Insert(intRec(k, string(big))); err != nil {
			t.Fatal(err)
		}
	}
	huge := make([]byte, 1500)
	for i := range huge {
		huge[i] = 'y'
	}
	ok, err := tr.Update(sqlparse.IntValue(3), intRec(3, string(huge)))
	if err != nil || !ok {
		t.Fatalf("growing update: ok=%v err=%v", ok, err)
	}
	rec, found, err := tr.Search(sqlparse.IntValue(3))
	if err != nil || !found {
		t.Fatalf("Search after growing update: %v", err)
	}
	if len(rec[1].Str) != 1500 {
		t.Errorf("payload length = %d", len(rec[1].Str))
	}
}

func TestRange(t *testing.T) {
	tr, _, _ := newTree(t)
	for k := int64(0); k < 500; k++ {
		if err := tr.Insert(intRec(k, "x")); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	err := tr.Range(sqlparse.IntValue(100), sqlparse.IntValue(110), func(r storage.Record) bool {
		got = append(got, r[0].Int)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 11 || got[0] != 100 || got[10] != 110 {
		t.Errorf("range = %v", got)
	}
}

func TestRangeEmptyAndSingle(t *testing.T) {
	tr, _, _ := newTree(t)
	if err := tr.Range(sqlparse.IntValue(0), sqlparse.IntValue(10), func(storage.Record) bool { return true }); err != nil {
		t.Fatalf("range on empty tree: %v", err)
	}
	if err := tr.Insert(intRec(5, "only")); err != nil {
		t.Fatal(err)
	}
	count := 0
	_ = tr.Range(sqlparse.IntValue(5), sqlparse.IntValue(5), func(storage.Record) bool { count++; return true })
	if count != 1 {
		t.Errorf("point range hit %d records", count)
	}
	count = 0
	_ = tr.Range(sqlparse.IntValue(6), sqlparse.IntValue(9), func(storage.Record) bool { count++; return true })
	if count != 0 {
		t.Errorf("empty range hit %d records", count)
	}
}

func TestTraversalPathTouchesBufferPool(t *testing.T) {
	tr, pool, _ := newTree(t)
	for k := int64(0); k < 2000; k++ {
		if err := tr.Insert(intRec(k, "x")); err != nil {
			t.Fatal(err)
		}
	}
	path, err := tr.TraversalPath(sqlparse.IntValue(1234))
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 2 {
		t.Fatalf("path too short: %v", path)
	}
	if path[0] != tr.Root() {
		t.Errorf("path does not start at root")
	}
	// The traversal must be visible in the LRU: the leaf is the most
	// recently used page.
	order := pool.LRUOrder()
	if order[0] != path[len(path)-1] {
		t.Errorf("most recent LRU page = %d, want traversed leaf %d", order[0], path[len(path)-1])
	}
}

func TestOpenExistingTree(t *testing.T) {
	tr, pool, ts := newTree(t)
	for k := int64(0); k < 300; k++ {
		if err := tr.Insert(intRec(k, "x")); err != nil {
			t.Fatal(err)
		}
	}
	reopened := Open(ts, pool, tr.Root())
	rec, ok, err := reopened.Search(sqlparse.IntValue(250))
	if err != nil || !ok {
		t.Fatalf("reopened search: ok=%v err=%v", ok, err)
	}
	if rec[0].Int != 250 {
		t.Errorf("key = %d", rec[0].Int)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	tr, _, _ := newTree(t)
	huge := make([]byte, storage.PageSize)
	if err := tr.Insert(intRec(1, string(huge))); err == nil {
		t.Error("oversize record accepted")
	}
}

func TestLenAndHeightEmptyTree(t *testing.T) {
	tr, _, _ := newTree(t)
	n, err := tr.Len()
	if err != nil || n != 0 {
		t.Errorf("Len = %d err=%v", n, err)
	}
	h, err := tr.Height()
	if err != nil || h != 1 {
		t.Errorf("Height = %d err=%v", h, err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr, _, _ := newTree(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(intRec(int64(i), "benchmark payload")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	tr, _, _ := newTree(b)
	const n = 10000
	for i := 0; i < n; i++ {
		if err := tr.Insert(intRec(int64(i), "benchmark payload")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok, err := tr.Search(sqlparse.IntValue(int64(i % n))); err != nil || !ok {
			b.Fatal("search failed")
		}
	}
}
