package bitleak

import (
	"math"
	"testing"
)

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := Simulate(Config{DBSize: 10, NumQueries: 0, Trials: 1}); err == nil {
		t.Error("zero queries accepted")
	}
}

// TestPaperNumbersReducedScale runs the paper's experiment at reduced
// trial count; the full 1,000-trial run lives in the benchmark harness.
// With DB=10,000 and uniform everything, the expected leakage is a
// concentrated statistic, so 20 trials suffice to check the shape.
func TestPaperNumbersReducedScale(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cases := []struct {
		queries  int
		wantFrac float64
		slack    float64
	}{
		{5, 0.12, 0.04},
		{25, 0.19, 0.04},
		{50, 0.25, 0.04},
	}
	for _, c := range cases {
		res, err := Simulate(Config{DBSize: 10000, NumQueries: c.queries, Trials: 20, BlockBits: 1, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.FractionLeaked-c.wantFrac) > c.slack {
			t.Errorf("%d queries: leaked %.3f, paper %.2f (slack %.2f)", c.queries, res.FractionLeaked, c.wantFrac, c.slack)
		}
		if res.BitsPerValue < 1 || res.BitsPerValue > 32 {
			t.Errorf("bits per value = %.2f", res.BitsPerValue)
		}
	}
}

func TestMonotoneInQueries(t *testing.T) {
	prev := 0.0
	for _, q := range []int{2, 10, 40} {
		res, err := Simulate(Config{DBSize: 1000, NumQueries: q, Trials: 10, BlockBits: 1, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if res.FractionLeaked <= prev {
			t.Errorf("leakage not increasing: %d queries -> %.4f (prev %.4f)", q, res.FractionLeaked, prev)
		}
		prev = res.FractionLeaked
	}
}

func TestRealOREMatchesAnalytic(t *testing.T) {
	// Small config, both paths, same seed: leakage must be identical
	// because FirstDiffBlock and Compare agree.
	cfgA := Config{DBSize: 50, NumQueries: 3, Trials: 2, BlockBits: 1, Seed: 5}
	cfgB := cfgA
	cfgB.UseRealORE = true
	a, err := Simulate(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.FractionLeaked-b.FractionLeaked) > 1e-12 {
		t.Errorf("analytic %.6f != real ORE %.6f", a.FractionLeaked, b.FractionLeaked)
	}
}

func TestLargerBlocksDetermineNoBits(t *testing.T) {
	// With multi-bit blocks the first differing block reveals order but
	// not bit values, so nothing becomes absolutely determined — the
	// ablation the paper's choice of 1-bit blocks is about.
	res, err := Simulate(Config{DBSize: 500, NumQueries: 10, Trials: 3, BlockBits: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.FractionLeaked != 0 {
		t.Errorf("4-bit blocks determined %.4f of bits; want 0", res.FractionLeaked)
	}
	if res.FractionTouched == 0 {
		t.Error("constraint coverage should still be positive")
	}
}

func TestTouchedAtLeastLeaked(t *testing.T) {
	res, err := Simulate(Config{DBSize: 500, NumQueries: 5, Trials: 3, BlockBits: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.FractionTouched < res.FractionLeaked {
		t.Errorf("touched %.4f < leaked %.4f", res.FractionTouched, res.FractionLeaked)
	}
}

func BenchmarkSimulateTrial(b *testing.B) {
	cfg := Config{DBSize: 10000, NumQueries: 5, Trials: 1, BlockBits: 1, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
