// Package bitleak implements the paper's §6 Lewi-Wu simulation: given
// query tokens recovered from a snapshot, how many plaintext bits of
// the database do their comparison results determine?
//
// Every (token q, ciphertext x) comparison leaks the index i of the
// first differing block plus the order of x_i vs q_i. With block size
// 1 the leakage per comparison is:
//
//   - bits 0..i-1 of x equal bits 0..i-1 of q   (relative knowledge)
//   - bit i of x and bit i of q are both determined absolutely
//     (they differ, and the order says which is the 1)
//
// The attacker propagates this through a union-find over (entity, bit)
// nodes: a database bit counts as recovered once its equivalence class
// contains an absolutely-determined bit. The paper reports the average
// fraction of the database's bits recovered this way: ≈12% for 5
// uniform range queries over 10,000 uniform 32-bit values, ≈19% for
// 25, ≈25% for 50, averaged over 1,000 trials.
//
// The simulation uses ore.Scheme.FirstDiffBlock, the analytic form of
// what ore.Scheme.Compare leaks; their equivalence is enforced by
// property tests in the ore package (and spot-checked here through the
// real Compare path when cfg.UseRealORE is set).
package bitleak

import (
	"crypto/rand"
	"fmt"
	mrand "math/rand"

	"snapdb/internal/crypto/ore"
	"snapdb/internal/crypto/prim"
	"snapdb/internal/workload"
)

// Config parameterizes one simulation.
type Config struct {
	DBSize     int   // database values (paper: 10000)
	NumQueries int   // range queries; each contributes 2 endpoint tokens (paper: 5/25/50)
	Trials     int   // paper: 1000
	BlockBits  int   // ORE block size (paper: 1)
	Seed       int64 // workload seed
	UseRealORE bool  // run comparisons through ore.Compare (slow; small configs only)
}

// Result aggregates a simulation.
type Result struct {
	Config            Config
	FractionLeaked    float64 // mean fraction of DB bits absolutely determined
	BitsPerValue      float64 // mean determined bits per 32-bit value
	FractionTouched   float64 // mean fraction of DB bits with any constraint (ablation metric)
	TotalBitsPerTrial int
}

// dsu is a union-find with a per-root "contains an absolutely known
// bit" flag.
type dsu struct {
	parent []int32
	rank   []int8
	known  []bool
}

func newDSU(n int) *dsu {
	d := &dsu{parent: make([]int32, n), rank: make([]int8, n), known: make([]bool, n)}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

func (d *dsu) reset() {
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.rank[i] = 0
		d.known[i] = false
	}
}

func (d *dsu) find(x int32) int32 {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

func (d *dsu) union(a, b int32) {
	ra, rb := d.find(a), d.find(b)
	if ra == rb {
		return
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	d.known[ra] = d.known[ra] || d.known[rb]
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
}

func (d *dsu) markKnown(x int32) { d.known[d.find(x)] = true }

// Simulate runs the experiment and returns aggregate leakage.
func Simulate(cfg Config) (Result, error) {
	if cfg.DBSize <= 0 || cfg.NumQueries <= 0 || cfg.Trials <= 0 {
		return Result{}, fmt.Errorf("bitleak: dimensions must be positive: %+v", cfg)
	}
	if cfg.BlockBits <= 0 {
		cfg.BlockBits = 1
	}
	scheme, err := ore.New(prim.TestKey("bitleak"), cfg.BlockBits)
	if err != nil {
		return Result{}, err
	}
	nb := scheme.NumBlocks()
	d := cfg.BlockBits
	numEndpoints := 2 * cfg.NumQueries
	entities := cfg.DBSize + numEndpoints
	nodes := entities * nb
	uf := newDSU(nodes)
	totalBits := cfg.DBSize * ore.PlainBits

	node := func(entity, block int) int32 { return int32(entity*nb + block) }

	var sumLeaked, sumTouched float64
	rng := mrand.New(mrand.NewSource(cfg.Seed))
	touched := make([]bool, nodes)

	for trial := 0; trial < cfg.Trials; trial++ {
		db := workload.UniformInts(cfg.DBSize, rng.Int63())
		queries := workload.UniformRangeQueries(cfg.NumQueries, rng.Int63())
		endpoints := make([]uint32, 0, numEndpoints)
		for _, q := range queries {
			endpoints = append(endpoints, q.Lo, q.Hi)
		}

		uf.reset()
		for i := range touched {
			touched[i] = false
		}

		for qi, q := range endpoints {
			qEnt := cfg.DBSize + qi
			var rights []*ore.Right
			var token *ore.Left
			if cfg.UseRealORE {
				token = scheme.EncryptLeft(q)
				rights = make([]*ore.Right, len(db))
				nonce := make([]byte, 16)
				for i, x := range db {
					if _, err := rand.Read(nonce); err != nil {
						return Result{}, err
					}
					rights[i] = scheme.EncryptRight(x, nonce)
				}
			}
			for xi, x := range db {
				var diff int
				if cfg.UseRealORE {
					_, diffGot, err := scheme.Compare(token, rights[xi])
					if err != nil {
						return Result{}, err
					}
					diff = diffGot
				} else {
					diff = scheme.FirstDiffBlock(q, x)
				}
				// Prefix blocks are pairwise equal.
				for b := 0; b < diff; b++ {
					uf.union(node(xi, b), node(qEnt, b))
					touched[node(xi, b)] = true
				}
				if diff < nb {
					touched[node(xi, diff)] = true
					if d == 1 {
						// One-bit blocks: the differing bit is fully
						// determined on both sides.
						uf.markKnown(node(xi, diff))
						uf.markKnown(node(qEnt, diff))
					}
				}
			}
		}

		leaked, touchedBits := 0, 0
		for xi := 0; xi < cfg.DBSize; xi++ {
			for b := 0; b < nb; b++ {
				n := node(xi, b)
				if uf.known[uf.find(n)] {
					leaked += d
				}
				if touched[n] {
					touchedBits += d
				}
			}
		}
		sumLeaked += float64(leaked) / float64(totalBits)
		sumTouched += float64(touchedBits) / float64(totalBits)
	}

	frac := sumLeaked / float64(cfg.Trials)
	return Result{
		Config:            cfg,
		FractionLeaked:    frac,
		BitsPerValue:      frac * ore.PlainBits,
		FractionTouched:   sumTouched / float64(cfg.Trials),
		TotalBitsPerTrial: totalBits,
	}, nil
}
