package rank

import (
	"math/rand"
	"testing"

	"snapdb/internal/crypto/prim"
	"snapdb/internal/edb/arxx"
	"snapdb/internal/engine"
)

// arxWithWorkload builds an Arx index over n distinct values and runs q
// uniform range queries, returning the index, the engine, and ground
// truth node->rank.
func arxWithWorkload(t testing.TB, n, q int, seed int64) (*arxx.Index, *engine.Engine, map[int]int) {
	t.Helper()
	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := arxx.New(e, prim.TestKey("rank"), "arx_idx")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	vals := rng.Perm(n) // distinct values 0..n-1, value == rank
	for _, v := range vals {
		if err := ix.Insert(uint32(v)); err != nil {
			t.Fatal(err)
		}
	}
	truth := make(map[int]int, n)
	for id := 1; id <= n; id++ {
		v, ok := ix.NodeValue(id)
		if !ok {
			t.Fatalf("node %d missing", id)
		}
		truth[id] = int(v)
	}
	for i := 0; i < q; i++ {
		lo, hi := UniformRanges(rng, n)
		if _, err := ix.RangeQuery(uint32(lo), uint32(hi)); err != nil {
			t.Fatal(err)
		}
	}
	return ix, e, truth
}

func arxTableID(t testing.TB, e *engine.Engine) uint8 {
	t.Helper()
	tbl, ok := e.Table("arx_idx")
	if !ok {
		t.Fatal("arx table missing")
	}
	return tbl.ID
}

func TestFromWALReconstructsTranscript(t *testing.T) {
	ix, e, _ := arxWithWorkload(t, 50, 20, 1)
	tr, err := FromWAL(e.WAL().Redo.Records(), arxTableID(t, e))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Queries) != 20 {
		t.Errorf("reconstructed %d queries, want 20", len(tr.Queries))
	}
	var totalVisits int
	for _, v := range tr.Visits {
		totalVisits += v
	}
	if uint64(totalVisits) != ix.Repairs() {
		t.Errorf("transcript visits %d != index repairs %d", totalVisits, ix.Repairs())
	}
	// Every query burst starts at the root (the same node id).
	root := tr.Queries[0][0]
	for qi, q := range tr.Queries {
		if q[0] != root {
			t.Errorf("query %d starts at node %d, want root %d", qi, q[0], root)
		}
	}
}

func TestFromWALEmptyAndForeignTables(t *testing.T) {
	tr, err := FromWAL(nil, 1)
	if err != nil || len(tr.Queries) != 0 || len(tr.Visits) != 0 {
		t.Errorf("empty WAL: %+v, err %v", tr, err)
	}
	_, e, _ := arxWithWorkload(t, 10, 2, 2)
	tr, err = FromWAL(e.WAL().Redo.Records(), 99) // wrong table
	if err != nil || len(tr.Visits) != 0 {
		t.Errorf("foreign table: %+v, err %v", tr, err)
	}
}

func TestExpectedVisitsShape(t *testing.T) {
	exp, err := ExpectedVisits(51, 100, 30, UniformRanges, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp) != 51 {
		t.Fatalf("len = %d", len(exp))
	}
	// Under uniform ranges, mid ranks are visited more than extremes.
	mid, edge := exp[25], (exp[0]+exp[50])/2
	if mid <= edge {
		t.Errorf("mid rank %.1f not hotter than edges %.1f", mid, edge)
	}
	if _, err := ExpectedVisits(0, 1, 1, UniformRanges, 1); err == nil {
		t.Error("zero size accepted")
	}
}

func TestRecoverRanksValidation(t *testing.T) {
	if _, err := RecoverRanks(nil, nil); err == nil {
		t.Error("empty visits accepted")
	}
	if _, err := RecoverRanks(map[int]int{1: 5}, []float64{1, 2}); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestOrderRecoveryNearPerfect(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	const n, q = 60, 400
	_, e, truth := arxWithWorkload(t, n, q, 4)
	tr, err := FromWAL(e.WAL().Redo.Records(), arxTableID(t, e))
	if err != nil {
		t.Fatal(err)
	}
	order, err := RecoverOrder(tr)
	if err != nil {
		t.Fatal(err)
	}
	score, err := ScoreRankRecovery(RanksFromOrder(order), truth, n)
	if err != nil {
		t.Fatal(err)
	}
	// Random assignment scores ~1/3 mean normalized error; the order
	// attack should be close to exact with 400 queries over 60 nodes.
	if score >= 0.05 {
		t.Errorf("normalized rank error = %.3f, want < 0.05 (random ~0.33)", score)
	}
}

func TestFrequencyBaselineWeakerThanOrderAttack(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	const n, q = 40, 300
	_, e, truth := arxWithWorkload(t, n, q, 8)
	tr, err := FromWAL(e.WAL().Redo.Records(), arxTableID(t, e))
	if err != nil {
		t.Fatal(err)
	}
	exp, err := ExpectedVisits(n, q, 40, UniformRanges, 9)
	if err != nil {
		t.Fatal(err)
	}
	freqRec, err := RecoverRanks(tr.Visits, exp)
	if err != nil {
		t.Fatal(err)
	}
	freqScore, err := ScoreRankRecovery(freqRec, truth, n)
	if err != nil {
		t.Fatal(err)
	}
	order, err := RecoverOrder(tr)
	if err != nil {
		t.Fatal(err)
	}
	orderScore, err := ScoreRankRecovery(RanksFromOrder(order), truth, n)
	if err != nil {
		t.Fatal(err)
	}
	if orderScore > freqScore {
		t.Errorf("order attack (%.3f) worse than frequency baseline (%.3f)", orderScore, freqScore)
	}
}

func TestRecoverOrderEmptyTranscript(t *testing.T) {
	if _, err := RecoverOrder(&Transcript{Visits: map[int]int{}}); err == nil {
		t.Error("empty transcript accepted")
	}
}

func TestScoreRankRecovery(t *testing.T) {
	rec := map[int]int{1: 0, 2: 5}
	truth := map[int]int{1: 0, 2: 9}
	got, err := ScoreRankRecovery(rec, truth, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.2 { // mean |err| = 2, / 10
		t.Errorf("score = %g", got)
	}
	if _, err := ScoreRankRecovery(map[int]int{}, truth, 10); err == nil {
		t.Error("empty recovery accepted")
	}
	if _, err := ScoreRankRecovery(map[int]int{7: 1}, truth, 10); err == nil {
		t.Error("missing truth accepted")
	}
}

func TestVisitMatchesArxTraversal(t *testing.T) {
	// The attacker's treap simulation must follow the same traversal
	// rule as arxx.RangeQuery: compare total visit counts on an
	// identical value set and query set processed both ways.
	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := arxx.New(e, prim.TestKey("sim"), "arx_idx")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint32{3, 1, 4, 1, 5, 9, 2, 6} {
		if err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ix.RangeQuery(2, 5); err != nil {
		t.Fatal(err)
	}
	tr, err := FromWAL(e.WAL().Redo.Records(), arxTableID(t, e))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Queries) != 1 {
		t.Fatalf("queries = %d", len(tr.Queries))
	}
	// All in-range values plus boundary path nodes are visited; at
	// minimum the result-set size is a lower bound.
	if len(tr.Queries[0]) < 5 { // values 2,3,4,4(dup 1s excluded),5 ... result size is 5 here
		t.Errorf("visited %d nodes, expected at least the 5 in-range values", len(tr.Queries[0]))
	}
}
