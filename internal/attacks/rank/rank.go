// Package rank implements the Arx transcript attack sketched in §6 of
// the paper: the transaction logs of the DBMS hosting an Arx range
// index contain one repair UPDATE per node a range query consumed, so
// a disk snapshot yields (1) the full sequence of range queries, (2)
// per-node visit frequencies, and (3) rank information about query
// endpoints. Combined with an auxiliary model of the query
// distribution, minimum-cost matching of observed visit counts against
// expected per-rank visit counts recovers which node holds which rank —
// and, with a known value multiset, the values themselves.
package rank

import (
	"fmt"
	"math/rand"
	"sort"

	"snapdb/internal/attacks/matching"
	"snapdb/internal/wal"
)

// Transcript is what the attacker reconstructs from the WAL.
type Transcript struct {
	// Queries holds, per range query, the node ids consumed (in
	// traversal order). Queries are delimited by the repair bursts in
	// the log: consecutive updates with no intervening operations on
	// other tables belong to one traversal, and a traversal always
	// starts at the root — the one node id that begins every burst.
	Queries [][]int
	// Visits counts repairs per node id.
	Visits map[int]int
}

// FromWAL reconstructs the transcript from redo records of the index's
// table. Root is identified as the node id that starts every query;
// bursts are split at each occurrence of the root.
func FromWAL(records []wal.Record, table uint8) (*Transcript, error) {
	var updates []int
	for _, r := range records {
		if r.Table != table || r.Op != wal.OpUpdate {
			continue
		}
		if len(r.Image) == 0 || !r.Image[0].IsInt {
			return nil, fmt.Errorf("rank: malformed repair record at LSN %d", r.LSN)
		}
		updates = append(updates, int(r.Image[0].Int))
	}
	t := &Transcript{Visits: make(map[int]int)}
	if len(updates) == 0 {
		return t, nil
	}
	root := updates[0]
	var cur []int
	for _, nid := range updates {
		t.Visits[nid]++
		if nid == root && len(cur) > 0 {
			t.Queries = append(t.Queries, cur)
			cur = nil
		}
		cur = append(cur, nid)
	}
	t.Queries = append(t.Queries, cur)
	return t, nil
}

// QueryModel samples range queries over ranks [0, n): the attacker's
// auxiliary knowledge of the query distribution.
type QueryModel func(rng *rand.Rand, n int) (lo, hi int)

// UniformRanges is the uniform query model.
func UniformRanges(rng *rand.Rand, n int) (int, int) {
	a, b := rng.Intn(n), rng.Intn(n)
	if a > b {
		a, b = b, a
	}
	return a, b
}

// ExpectedVisits estimates, by Monte-Carlo over random treaps, the
// expected number of visits per value rank when queries follow the
// model. The attacker can compute this without any secret: treap
// priorities are random, and the query model is auxiliary knowledge.
func ExpectedVisits(n, queriesPerTrial, trials int, model QueryModel, seed int64) ([]float64, error) {
	if n <= 0 || queriesPerTrial <= 0 || trials <= 0 {
		return nil, fmt.Errorf("rank: dimensions must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	total := make([]float64, n)
	for trial := 0; trial < trials; trial++ {
		tr := buildTreap(n, rng)
		for q := 0; q < queriesPerTrial; q++ {
			lo, hi := model(rng, n)
			visit(tr, lo, hi, func(rankID int) { total[rankID]++ })
		}
	}
	for i := range total {
		total[i] /= float64(trials)
	}
	return total, nil
}

// tnode is a simulated treap node over ranks.
type tnode struct {
	rank        int
	prio        uint64
	left, right *tnode
}

func buildTreap(n int, rng *rand.Rand) *tnode {
	var root *tnode
	ranks := rng.Perm(n)
	for _, r := range ranks {
		root = tinsert(root, &tnode{rank: r, prio: rng.Uint64()})
	}
	return root
}

func tinsert(root, n *tnode) *tnode {
	if root == nil {
		return n
	}
	if n.rank < root.rank {
		root.left = tinsert(root.left, n)
		if root.left.prio > root.prio {
			l := root.left
			root.left = l.right
			l.right = root
			return l
		}
	} else {
		root.right = tinsert(root.right, n)
		if root.right.prio > root.prio {
			r := root.right
			root.right = r.left
			r.left = root
			return r
		}
	}
	return root
}

// visit walks the treap exactly the way arxx.RangeQuery does.
func visit(n *tnode, lo, hi int, fn func(int)) {
	if n == nil {
		return
	}
	fn(n.rank)
	if lo < n.rank {
		visit(n.left, lo, hi, fn)
	}
	if hi >= n.rank {
		visit(n.right, lo, hi, fn)
	}
}

// RecoverRanks matches observed per-node visit counts to expected
// per-rank visit counts via minimum-cost assignment. The result maps
// node id → estimated rank. len(expected) must equal the node count.
func RecoverRanks(visits map[int]int, expected []float64) (map[int]int, error) {
	n := len(visits)
	if n == 0 {
		return nil, fmt.Errorf("rank: no observed visits")
	}
	if len(expected) != n {
		return nil, fmt.Errorf("rank: %d observed nodes vs %d expected ranks", n, len(expected))
	}
	ids := make([]int, 0, n)
	for id := range visits {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	cost := make([][]float64, n)
	for i, id := range ids {
		cost[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			d := float64(visits[id]) - expected[j]
			cost[i][j] = d * d
		}
	}
	assign, err := matching.Hungarian(cost)
	if err != nil {
		return nil, err
	}
	out := make(map[int]int, n)
	for i, id := range ids {
		out[id] = assign[i]
	}
	return out, nil
}

// RecoverOrder infers the value order of the index nodes from the
// traversal sequences alone — the strong form of the transcript attack.
// It rests on two structural facts about the preorder range-query walk:
//
//  1. For two visited nodes where neither is the other's ancestor,
//     visit order equals value order (the BST property), identically in
//     every query that visits both.
//  2. a is an ancestor of b exactly when every query that visits b
//     also visits a — detectable from visit-set containment once
//     enough queries have run.
//
// Non-ancestor pairs therefore yield a large consistent partial order;
// Borda scoring plus local repair sorts the nodes by value. The return
// value lists node ids in ascending estimated value order.
func RecoverOrder(tr *Transcript) ([]int, error) {
	if len(tr.Visits) == 0 {
		return nil, fmt.Errorf("rank: empty transcript")
	}
	ids := make([]int, 0, len(tr.Visits))
	for id := range tr.Visits {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	idx := make(map[int]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	n := len(ids)
	covis := make([][]int, n)
	before := make([][]int, n) // before[a][b]: queries where a precedes b
	for i := range covis {
		covis[i] = make([]int, n)
		before[i] = make([]int, n)
	}
	pos := make(map[int]int, n)
	for _, q := range tr.Queries {
		for k := range pos {
			delete(pos, k)
		}
		for p, id := range q {
			pos[id] = p
		}
		for a, pa := range pos {
			ia := idx[a]
			for b, pb := range pos {
				if a == b {
					continue
				}
				ib := idx[b]
				covis[ia][ib]++
				if pa < pb {
					before[ia][ib]++
				}
			}
		}
	}
	// Classify pairs: ancestry (visit-set containment) vs order pairs.
	// For a true ancestor a of b, every query visiting b visits a, so
	// covis(a,b) == visits(b) exactly; the converse can have false
	// positives, which only makes the relation sparser, never wrong.
	visits := func(i int) int { return tr.Visits[ids[i]] }
	anc := make([][]bool, n) // anc[a][b]: a is (possibly) an ancestor of b
	less := make([][]int8, n)
	for i := range less {
		less[i] = make([]int8, n)
		anc[i] = make([]bool, n)
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			c := covis[a][b]
			if c > 0 && c == visits(b) && visits(a) > visits(b) {
				anc[a][b] = true
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			c := covis[a][b]
			// Skip when ancestry is possible in either direction —
			// including the equal-visit-set case (e.g. the root and a
			// spine child visited by every query), where preorder
			// position reflects depth, not value.
			if c == 0 || c == visits(a) || c == visits(b) {
				continue
			}
			switch {
			case before[a][b] == c:
				less[a][b], less[b][a] = 1, -1
			case before[b][a] == c:
				less[a][b], less[b][a] = -1, 1
			}
		}
	}
	// Place ancestors: a node's immediate children split its
	// descendants into the left and right subtrees, and which child is
	// left follows from the children's own (non-ancestor) order
	// relation. Everything in the left subtree is < a, everything in
	// the right subtree is > a.
	for a := 0; a < n; a++ {
		var children []int
		for b := 0; b < n; b++ {
			if !anc[a][b] {
				continue
			}
			immediate := true
			for c := 0; c < n; c++ {
				if c != a && c != b && anc[a][c] && anc[c][b] {
					immediate = false
					break
				}
			}
			if immediate {
				children = append(children, b)
			}
		}
		if len(children) != 2 {
			continue // one-sided or unresolved: no side information
		}
		cl, cr := children[0], children[1]
		switch {
		case less[cl][cr] == 1:
		case less[cr][cl] == 1:
			cl, cr = cr, cl
		default:
			continue
		}
		setLess := func(x, y int) { less[x][y], less[y][x] = 1, -1 }
		setLess(cl, a)
		setLess(a, cr)
		for d := 0; d < n; d++ {
			if d == cl || d == cr || d == a {
				continue
			}
			if anc[cl][d] {
				setLess(d, a)
			}
			if anc[cr][d] {
				setLess(a, d)
			}
		}
	}
	// Transitive closure so sparse direct relations still order distant
	// pairs.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if less[i][k] != 1 {
				continue
			}
			for j := 0; j < n; j++ {
				if less[k][j] == 1 && less[i][j] == 0 {
					less[i][j], less[j][i] = 1, -1
				}
			}
		}
	}
	// Borda scores from the known relation, then adjacent-swap repair.
	order := make([]int, n)
	score := make([]int, n)
	for a := 0; a < n; a++ {
		order[a] = a
		for b := 0; b < n; b++ {
			if less[b][a] == 1 {
				score[a]++
			}
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return score[order[i]] < score[order[j]] })
	for pass := 0; pass < n; pass++ {
		changed := false
		for i := 0; i+1 < n; i++ {
			if less[order[i+1]][order[i]] == 1 { // order[i+1] < order[i]: violated
				order[i], order[i+1] = order[i+1], order[i]
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	out := make([]int, n)
	for i, o := range order {
		out[i] = ids[o]
	}
	return out, nil
}

// RanksFromOrder converts an order (ascending node ids by value) into a
// node id → rank map.
func RanksFromOrder(order []int) map[int]int {
	out := make(map[int]int, len(order))
	for r, id := range order {
		out[id] = r
	}
	return out
}

// ScoreRankRecovery returns the mean absolute rank error of a recovery
// normalized by n (0 = perfect, ~1/3 = random guessing).
func ScoreRankRecovery(recovered, truth map[int]int, n int) (float64, error) {
	if len(recovered) == 0 || n <= 0 {
		return 0, fmt.Errorf("rank: empty recovery")
	}
	var total float64
	for id, r := range recovered {
		tr, ok := truth[id]
		if !ok {
			return 0, fmt.Errorf("rank: no ground truth for node %d", id)
		}
		d := float64(r - tr)
		if d < 0 {
			d = -d
		}
		total += d
	}
	return total / float64(len(recovered)) / float64(n), nil
}
