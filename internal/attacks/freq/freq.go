// Package freq implements frequency analysis by rank matching: sort
// the observed ciphertext (or query-digest) histogram and the
// attacker's model histogram in decreasing order and match element by
// element. Lacharité and Paterson proved this simple procedure is the
// maximum-likelihood estimator for the encryption function — the §6
// attack against Seabed's SPLASHE query histogram and DET columns.
package freq

import (
	"fmt"
	"sort"
)

// RankMatch matches observed labels to model labels by frequency rank.
// observed maps ciphertext labels (DET ciphertexts, SPLASHE column
// names, query digests) to occurrence counts; model maps plaintext
// candidates to their expected relative frequency (any positive scale).
// When the histograms have different sizes, only the top
// min(len(observed), len(model)) ranks are matched.
func RankMatch(observed map[string]int, model map[string]float64) map[string]string {
	type obsEntry struct {
		label string
		count int
	}
	type modEntry struct {
		label string
		p     float64
	}
	obs := make([]obsEntry, 0, len(observed))
	for l, c := range observed {
		obs = append(obs, obsEntry{l, c})
	}
	sort.Slice(obs, func(i, j int) bool {
		if obs[i].count != obs[j].count {
			return obs[i].count > obs[j].count
		}
		return obs[i].label < obs[j].label
	})
	mod := make([]modEntry, 0, len(model))
	for l, p := range model {
		mod = append(mod, modEntry{l, p})
	}
	sort.Slice(mod, func(i, j int) bool {
		if mod[i].p != mod[j].p {
			return mod[i].p > mod[j].p
		}
		return mod[i].label < mod[j].label
	})
	n := len(obs)
	if len(mod) < n {
		n = len(mod)
	}
	out := make(map[string]string, n)
	for i := 0; i < n; i++ {
		out[obs[i].label] = mod[i].label
	}
	return out
}

// Accuracy scores an assignment against ground truth, weighting each
// matched label equally.
func Accuracy(assignment, truth map[string]string) (float64, error) {
	if len(assignment) == 0 {
		return 0, fmt.Errorf("freq: empty assignment")
	}
	correct := 0
	for ct, pt := range assignment {
		want, ok := truth[ct]
		if !ok {
			return 0, fmt.Errorf("freq: no ground truth for %q", ct)
		}
		if want == pt {
			correct++
		}
	}
	return float64(correct) / float64(len(assignment)), nil
}

// WeightedAccuracy scores an assignment weighting each label by its
// observed count — recovering the frequent values matters more, and
// this is the metric leakage-abuse papers usually report.
func WeightedAccuracy(assignment, truth map[string]string, observed map[string]int) (float64, error) {
	if len(assignment) == 0 {
		return 0, fmt.Errorf("freq: empty assignment")
	}
	var total, correct float64
	for ct, pt := range assignment {
		w := float64(observed[ct])
		total += w
		if truth[ct] == pt {
			correct += w
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("freq: observed histogram has zero mass")
	}
	return correct / total, nil
}
