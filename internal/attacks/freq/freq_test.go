package freq

import (
	"fmt"
	"testing"

	"snapdb/internal/workload"
)

func TestRankMatchExactRanks(t *testing.T) {
	observed := map[string]int{"ct_a": 100, "ct_b": 50, "ct_c": 10}
	model := map[string]float64{"alpha": 0.6, "beta": 0.3, "gamma": 0.1}
	got := RankMatch(observed, model)
	want := map[string]string{"ct_a": "alpha", "ct_b": "beta", "ct_c": "gamma"}
	for ct, pt := range want {
		if got[ct] != pt {
			t.Errorf("RankMatch[%s] = %s, want %s", ct, got[ct], pt)
		}
	}
}

func TestRankMatchSizeMismatch(t *testing.T) {
	observed := map[string]int{"ct_a": 100, "ct_b": 50}
	model := map[string]float64{"alpha": 0.9}
	got := RankMatch(observed, model)
	if len(got) != 1 || got["ct_a"] != "alpha" {
		t.Errorf("got %v", got)
	}
	got = RankMatch(map[string]int{"x": 1}, map[string]float64{"a": 0.5, "b": 0.4})
	if len(got) != 1 || got["x"] != "a" {
		t.Errorf("got %v", got)
	}
}

func TestRankMatchDeterministicTies(t *testing.T) {
	observed := map[string]int{"ct_a": 5, "ct_b": 5}
	model := map[string]float64{"p": 0.5, "q": 0.5}
	a := RankMatch(observed, model)
	b := RankMatch(observed, model)
	for k := range a {
		if a[k] != b[k] {
			t.Fatal("tie-breaking not deterministic")
		}
	}
}

func TestAccuracy(t *testing.T) {
	assign := map[string]string{"c1": "a", "c2": "b"}
	truth := map[string]string{"c1": "a", "c2": "x"}
	acc, err := Accuracy(assign, truth)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0.5 {
		t.Errorf("accuracy = %g", acc)
	}
	if _, err := Accuracy(nil, truth); err == nil {
		t.Error("empty assignment accepted")
	}
	if _, err := Accuracy(map[string]string{"zz": "a"}, truth); err == nil {
		t.Error("missing truth accepted")
	}
}

func TestWeightedAccuracy(t *testing.T) {
	assign := map[string]string{"c1": "a", "c2": "b"}
	truth := map[string]string{"c1": "a", "c2": "x"}
	observed := map[string]int{"c1": 90, "c2": 10}
	acc, err := WeightedAccuracy(assign, truth, observed)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0.9 {
		t.Errorf("weighted accuracy = %g", acc)
	}
	if _, err := WeightedAccuracy(assign, truth, map[string]int{}); err == nil {
		t.Error("zero-mass histogram accepted")
	}
}

// TestZipfQueryStreamRecovery is the core §6 scenario: the attacker
// observes a query histogram whose shape follows a Zipf model it also
// holds as auxiliary knowledge; rank matching recovers the mapping for
// the clearly separated head values.
func TestZipfQueryStreamRecovery(t *testing.T) {
	domain := workload.States
	stream, err := workload.ZipfQueryStream(domain, 50000, 1.4, 9)
	if err != nil {
		t.Fatal(err)
	}
	observed := make(map[string]int)
	truth := make(map[string]string)
	for _, v := range stream {
		ct := "col_" + v // stand-in for the SPLASHE column of v
		observed[ct]++
		truth[ct] = v
	}
	// Attacker's model: the exact Zipf popularity by rank.
	model := make(map[string]float64)
	for i, v := range domain {
		model[v] = 1.0 / float64(i+1)
	}
	assign := RankMatch(observed, model)
	acc, err := WeightedAccuracy(assign, truth, observed)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("weighted accuracy = %.2f, want >= 0.8 for a matched Zipf model", acc)
	}
}

func BenchmarkRankMatch(b *testing.B) {
	observed := make(map[string]int)
	model := make(map[string]float64)
	for i := 0; i < 1000; i++ {
		observed[fmt.Sprintf("ct%d", i)] = 1000 - i
		model[fmt.Sprintf("pt%d", i)] = 1.0 / float64(i+1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RankMatch(observed, model)
	}
}
