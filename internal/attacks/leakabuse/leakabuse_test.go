package leakabuse

import (
	"testing"

	"snapdb/internal/crypto/prim"
	"snapdb/internal/crypto/sse"
	"snapdb/internal/workload"
)

// buildIndex indexes a small corpus and returns the scheme, index, and
// per-word counts.
func buildIndex(t testing.TB, cfg workload.CorpusConfig) (*sse.Scheme, *sse.Index, *workload.Corpus) {
	t.Helper()
	corpus, err := workload.NewCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scheme := sse.New(prim.TestKey("leakabuse"))
	ix := sse.NewIndex()
	for id, doc := range corpus.Docs {
		if err := ix.AddDocument(scheme, id, doc); err != nil {
			t.Fatal(err)
		}
	}
	return scheme, ix, corpus
}

func smallCfg() workload.CorpusConfig {
	return workload.CorpusConfig{NumDocs: 800, VocabSize: 300, WordsPerDoc: 12, ZipfS: 1.2, Seed: 3}
}

func TestObserveCountsMatchCorpus(t *testing.T) {
	scheme, ix, corpus := buildIndex(t, smallCfg())
	words := []string{"kw00001", "kw00007", "kw00042"}
	tokens := make([]sse.Token, len(words))
	for i, w := range words {
		tokens[i] = scheme.TokenFor(w)
	}
	obs := Observe(ix, tokens)
	for i, o := range obs {
		if len(o.Docs) != corpus.Count(words[i]) {
			t.Errorf("token %d: observed %d docs, corpus count %d", i, len(o.Docs), corpus.Count(words[i]))
		}
	}
}

func TestCountAttackRecoversUniqueCounts(t *testing.T) {
	scheme, ix, corpus := buildIndex(t, smallCfg())
	top := corpus.TopWords(60)
	tokens := make([]sse.Token, len(top))
	truth := make(map[int]string, len(top))
	aux := make(map[string]int)
	for _, w := range corpus.Vocabulary {
		if c := corpus.Count(w); c > 0 {
			aux[w] = c
		}
	}
	for i, wc := range top {
		tokens[i] = scheme.TokenFor(wc.Word)
		truth[i] = wc.Word
	}
	obs := Observe(ix, tokens)
	recs := CountAttack(obs, aux)
	score, err := Evaluate(obs, recs, truth)
	if err != nil {
		t.Fatal(err)
	}
	if score.Recovered == 0 {
		t.Fatal("count attack recovered nothing")
	}
	if score.Accuracy() != 1.0 {
		t.Errorf("accuracy = %.2f; count-unique recoveries must be exact", score.Accuracy())
	}
	if score.RecoveryRate() < 0.3 {
		t.Errorf("recovery rate = %.2f; too low for Zipf head words", score.RecoveryRate())
	}
}

func TestCountAttackSkipsAmbiguousCounts(t *testing.T) {
	obs := []Observation{{TokenID: 0, Docs: []int{1, 2}}}
	aux := map[string]int{"a": 2, "b": 2} // ambiguous count
	if recs := CountAttack(obs, aux); len(recs) != 0 {
		t.Errorf("ambiguous count recovered: %+v", recs)
	}
}

func TestCountAttackRevealsDocumentContent(t *testing.T) {
	scheme, ix, corpus := buildIndex(t, smallCfg())
	w := corpus.TopWords(1)[0].Word
	obs := Observe(ix, []sse.Token{scheme.TokenFor(w)})
	aux := map[string]int{w: corpus.Count(w)}
	recs := CountAttack(obs, aux)
	if len(recs) != 1 {
		t.Fatal("top word not recovered")
	}
	// Every matched doc is now known to contain the keyword.
	for _, docID := range recs[0].Docs {
		found := false
		for _, dw := range corpus.Docs[docID] {
			if dw == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("doc %d claimed to contain %q but does not", docID, w)
		}
	}
}

func TestEvaluateMissingTruth(t *testing.T) {
	obs := []Observation{{TokenID: 0, Docs: []int{1}}}
	recs := []Recovery{{TokenID: 0, Keyword: "x"}}
	if _, err := Evaluate(obs, recs, map[int]string{}); err == nil {
		t.Error("missing truth accepted")
	}
}

func TestScoreEdgeCases(t *testing.T) {
	s := Score{}
	if s.Accuracy() != 1 {
		t.Error("empty recovery accuracy should be 1 (no wrong claims)")
	}
	if s.RecoveryRate() != 0 {
		t.Error("empty observation recovery rate should be 0")
	}
}
