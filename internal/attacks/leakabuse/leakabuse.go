// Package leakabuse implements the count attack against searchable
// encryption (Cash, Grubbs, Perry, Ristenpart — CCS'15 style), the
// attack §6 of the paper applies to CryptDB/Mylar once search tokens
// are recovered from a snapshot.
//
// The attacker replays each stolen token against the SSE index and
// observes the set (and hence count) of matching documents. With
// auxiliary knowledge of the plaintext corpus, any keyword whose
// document count is unique identifies itself: the paper cites that 63%
// of the 500 most frequent Enron words have a unique count. Matching a
// token to its keyword also reveals partial content of every matching
// encrypted document.
package leakabuse

import (
	"fmt"
	"runtime"
	"sync"

	"snapdb/internal/crypto/sse"
)

// Observation is what the attacker learns from one stolen token.
type Observation struct {
	TokenID int       // attacker's label for the token
	Token   sse.Token // the stolen trapdoor
	Docs    []int     // documents the replayed search matched
}

// Observe replays stolen tokens against a snapshot of the SSE index.
// Replays are independent, so they run across all CPUs (an attacker
// with a stolen index is not rate-limited).
func Observe(ix *sse.Index, tokens []sse.Token) []Observation {
	out := make([]Observation, len(tokens))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(tokens) {
		workers = len(tokens)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = Observation{TokenID: i, Token: tokens[i], Docs: ix.Search(tokens[i])}
			}
		}()
	}
	for i := range tokens {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// Recovery is the attack's output for one token.
type Recovery struct {
	TokenID int
	Keyword string
	Docs    []int // the encrypted documents now known to contain Keyword
}

// CountAttack matches observations to keywords using auxiliary
// document counts (attacker's corpus knowledge). Only count-unique
// keywords are recovered — exactly the Cash et al. baseline attack.
func CountAttack(obs []Observation, aux map[string]int) []Recovery {
	byCount := make(map[int][]string)
	for w, c := range aux {
		byCount[c] = append(byCount[c], w)
	}
	var out []Recovery
	for _, o := range obs {
		candidates := byCount[len(o.Docs)]
		if len(candidates) == 1 {
			out = append(out, Recovery{TokenID: o.TokenID, Keyword: candidates[0], Docs: o.Docs})
		}
	}
	return out
}

// Score compares recoveries to ground truth (token id → true keyword).
type Score struct {
	Observed  int
	Recovered int
	Correct   int
}

// Accuracy returns Correct/Recovered (1.0 when nothing was recovered,
// since the attack made no wrong claims).
func (s Score) Accuracy() float64 {
	if s.Recovered == 0 {
		return 1
	}
	return float64(s.Correct) / float64(s.Recovered)
}

// RecoveryRate returns Recovered/Observed.
func (s Score) RecoveryRate() float64 {
	if s.Observed == 0 {
		return 0
	}
	return float64(s.Recovered) / float64(s.Observed)
}

// Evaluate scores recoveries against truth.
func Evaluate(obs []Observation, recs []Recovery, truth map[int]string) (Score, error) {
	s := Score{Observed: len(obs), Recovered: len(recs)}
	for _, r := range recs {
		want, ok := truth[r.TokenID]
		if !ok {
			return Score{}, fmt.Errorf("leakabuse: no ground truth for token %d", r.TokenID)
		}
		if r.Keyword == want {
			s.Correct++
		}
	}
	return s, nil
}
