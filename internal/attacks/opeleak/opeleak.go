// Package opeleak quantifies §2's observation that some
// property-revealing encryption "always leaks": an order-preserving
// ciphertext reveals approximate plaintext magnitude to a snapshot
// attacker with no queries at all, because the encryption function is a
// monotone map from the 32-bit domain into the 63-bit range — the
// ciphertext's relative position in the range approximates the
// plaintext's relative position in the domain.
//
// EstimateFromCiphertext is the entire attack; Evaluate measures how
// many leading plaintext bits it recovers on average. This is the
// no-auxiliary-data baseline; with a known plaintext distribution the
// binomial attack (attacks/binomial) does strictly better.
package opeleak

import (
	"fmt"

	"snapdb/internal/attacks/binomial"
	"snapdb/internal/crypto/ope"
)

// rangeBits mirrors the OPE ciphertext range width.
const rangeBits = 63

// EstimateFromCiphertext maps a ciphertext back to a plaintext estimate
// by linear position: pt ≈ ct · 2^DomainBits / 2^rangeBits. No key, no
// queries, no auxiliary data.
func EstimateFromCiphertext(ct uint64) uint32 {
	return uint32(ct >> (rangeBits - ope.DomainBits))
}

// Result summarizes an evaluation.
type Result struct {
	Samples          int
	MeanCorrectBits  float64 // mean leading plaintext bits recovered
	WorstCorrectBits int     // minimum over the sample
}

// Evaluate encrypts the given plaintexts under the scheme and scores
// the ciphertext-only estimator.
func Evaluate(s *ope.Scheme, plaintexts []uint32) (Result, error) {
	if len(plaintexts) == 0 {
		return Result{}, fmt.Errorf("opeleak: no plaintexts")
	}
	total := 0
	worst := 33
	for _, pt := range plaintexts {
		est := EstimateFromCiphertext(s.Encrypt(pt))
		bits := binomial.CorrectHighBits(pt, est)
		total += bits
		if bits < worst {
			worst = bits
		}
	}
	return Result{
		Samples:          len(plaintexts),
		MeanCorrectBits:  float64(total) / float64(len(plaintexts)),
		WorstCorrectBits: worst,
	}, nil
}
