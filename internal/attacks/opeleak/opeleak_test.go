package opeleak

import (
	"testing"

	"snapdb/internal/crypto/ope"
	"snapdb/internal/crypto/prim"
	"snapdb/internal/workload"
)

func TestEstimateRecoversHighBits(t *testing.T) {
	s := ope.New(prim.TestKey("opeleak"))
	res, err := Evaluate(s, workload.UniformInts(2000, 3))
	if err != nil {
		t.Fatal(err)
	}
	// The lazy-sampling OPE keeps ciphertexts near their proportional
	// position, up to the pivot jitter (which is largest at the top
	// levels of the recursion): a few leading bits leak with no key
	// material at all. Measured: ≈2.9 bits mean.
	if res.MeanCorrectBits < 2 {
		t.Errorf("mean correct bits = %.2f; OPE should always leak magnitude", res.MeanCorrectBits)
	}
	if res.MeanCorrectBits > 32 {
		t.Errorf("impossible mean %.2f", res.MeanCorrectBits)
	}
	if res.Samples != 2000 {
		t.Errorf("samples = %d", res.Samples)
	}
}

func TestEstimateIsKeyIndependent(t *testing.T) {
	// The estimator uses no key; different keys shift estimates only
	// within the pivot jitter, so accuracy is stable across keys.
	pts := workload.UniformInts(500, 5)
	a, err := Evaluate(ope.New(prim.TestKey("k1")), pts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(ope.New(prim.TestKey("k2")), pts)
	if err != nil {
		t.Fatal(err)
	}
	if diff := a.MeanCorrectBits - b.MeanCorrectBits; diff > 3 || diff < -3 {
		t.Errorf("accuracy swings with key: %.2f vs %.2f", a.MeanCorrectBits, b.MeanCorrectBits)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	if _, err := Evaluate(ope.New(prim.TestKey("k")), nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestEstimateBoundaries(t *testing.T) {
	if EstimateFromCiphertext(0) != 0 {
		t.Error("zero ciphertext should estimate zero")
	}
	if EstimateFromCiphertext(1<<63-1) < 1<<31 {
		t.Error("max ciphertext should estimate a large plaintext")
	}
}

func BenchmarkEvaluate(b *testing.B) {
	s := ope.New(prim.TestKey("bench"))
	pts := workload.UniformInts(200, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(s, pts); err != nil {
			b.Fatal(err)
		}
	}
}
