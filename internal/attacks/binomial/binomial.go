// Package binomial implements the rank-based ("binomial") attack of
// Grubbs et al. (S&P'17) against order-revealing encryption whose
// ciphertexts can all be pairwise compared — Seabed's deterministic
// ORE, and the component the paper combines with token bit leakage
// against Lewi-Wu.
//
// The attacker sorts the n ciphertexts (the ORE comparisons give the
// total order and equalities for free) and estimates the plaintext at
// rank r as the r-th n-quantile of the auxiliary plaintext
// distribution. For uniform data this recovers roughly log2(n) high
// bits of every value; the package also provides the bipartite-graph
// variant that reconciles the quantile estimates with bit constraints
// via minimum-cost matching.
package binomial

import (
	"fmt"
	"math/bits"
	"sort"

	"snapdb/internal/attacks/matching"
)

// QuantileModel is the attacker's auxiliary model: the inverse CDF of
// the plaintext distribution. p is in (0, 1).
type QuantileModel func(p float64) uint32

// Uniform32 is the inverse CDF of uniform 32-bit integers.
func Uniform32(p float64) uint32 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1<<32 - 1
	}
	return uint32(p * (1 << 32))
}

// RecoverByRank sorts the ciphertext order (given as the observed
// plaintext-rank permutation, which ORE comparisons reveal without the
// key) and estimates each ciphertext's plaintext by quantile. The input
// is the ciphertexts' true plaintexts — used ONLY to derive the order
// that comparisons would reveal; the estimates never touch the values
// directly.
func RecoverByRank(plaintexts []uint32, model QuantileModel) ([]uint32, error) {
	n := len(plaintexts)
	if n == 0 {
		return nil, fmt.Errorf("binomial: no ciphertexts")
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// This sort is exactly what the attacker computes with pairwise ORE
	// comparisons.
	sort.SliceStable(order, func(a, b int) bool { return plaintexts[order[a]] < plaintexts[order[b]] })
	est := make([]uint32, n)
	for rank, idx := range order {
		est[idx] = model((float64(rank) + 0.5) / float64(n))
	}
	return est, nil
}

// CorrectHighBits returns how many leading bits of estimate match the
// truth.
func CorrectHighBits(truth, estimate uint32) int {
	return bits.LeadingZeros32(truth ^ estimate)
}

// MeanCorrectHighBits averages CorrectHighBits over a recovery.
func MeanCorrectHighBits(truth, estimate []uint32) (float64, error) {
	if len(truth) != len(estimate) || len(truth) == 0 {
		return 0, fmt.Errorf("binomial: length mismatch %d vs %d", len(truth), len(estimate))
	}
	total := 0
	for i := range truth {
		total += CorrectHighBits(truth[i], estimate[i])
	}
	return float64(total) / float64(len(truth)), nil
}

// BitConstraint records externally known bits of one ciphertext's
// plaintext (e.g. from Lewi-Wu token leakage): for each set bit in
// Mask, the plaintext bit equals the corresponding bit of Value.
type BitConstraint struct {
	Mask  uint32
	Value uint32
}

// Consistent reports whether candidate satisfies the constraint.
func (c BitConstraint) Consistent(candidate uint32) bool {
	return candidate&c.Mask == c.Value&c.Mask
}

// MatchWithConstraints runs the bipartite-matching variant: each
// ciphertext (with its rank estimate and bit constraints) is matched to
// one of the candidate plaintexts, with infinite cost for
// bit-inconsistent pairs and |estimate − candidate| cost otherwise.
// It returns the assigned candidate per ciphertext.
func MatchWithConstraints(estimates []uint32, constraints []BitConstraint, candidates []uint32) ([]uint32, error) {
	n := len(estimates)
	if n == 0 || len(constraints) != n || len(candidates) != n {
		return nil, fmt.Errorf("binomial: need equal-length estimates/constraints/candidates, got %d/%d/%d",
			len(estimates), len(constraints), len(candidates))
	}
	const inconsistent = 1e18
	cost := make([][]float64, n)
	for i := 0; i < n; i++ {
		cost[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if !constraints[i].Consistent(candidates[j]) {
				cost[i][j] = inconsistent
				continue
			}
			d := float64(estimates[i]) - float64(candidates[j])
			if d < 0 {
				d = -d
			}
			cost[i][j] = d
		}
	}
	assign, err := matching.Hungarian(cost)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	for i, j := range assign {
		out[i] = candidates[j]
	}
	return out, nil
}
