package binomial

import (
	"math"
	"testing"

	"snapdb/internal/workload"
)

func TestRecoverByRankUniform(t *testing.T) {
	pts := workload.UniformInts(4096, 1)
	est, err := RecoverByRank(pts, Uniform32)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := MeanCorrectHighBits(pts, est)
	if err != nil {
		t.Fatal(err)
	}
	// With n = 4096 uniform samples, rank quantiles pin roughly
	// log2(n)/2..log2(n) high bits on average; anything below 6 means
	// the attack is broken, anything above 13 is implausible.
	if mean < 6 || mean > 13 {
		t.Errorf("mean correct high bits = %.2f, want in [6, 13]", mean)
	}
}

func TestRecoverByRankGrowsWithN(t *testing.T) {
	prev := 0.0
	for _, n := range []int{64, 1024, 16384} {
		pts := workload.UniformInts(n, 2)
		est, err := RecoverByRank(pts, Uniform32)
		if err != nil {
			t.Fatal(err)
		}
		mean, err := MeanCorrectHighBits(pts, est)
		if err != nil {
			t.Fatal(err)
		}
		if mean <= prev {
			t.Errorf("n=%d mean bits %.2f did not grow (prev %.2f)", n, mean, prev)
		}
		prev = mean
	}
}

func TestRecoverByRankEmpty(t *testing.T) {
	if _, err := RecoverByRank(nil, Uniform32); err == nil {
		t.Error("empty input accepted")
	}
}

func TestUniform32Bounds(t *testing.T) {
	if Uniform32(0) != 0 || Uniform32(-1) != 0 {
		t.Error("lower bound wrong")
	}
	if Uniform32(1) != 1<<32-1 || Uniform32(2) != 1<<32-1 {
		t.Error("upper bound wrong")
	}
	if Uniform32(0.5) != 1<<31 {
		t.Errorf("median = %d", Uniform32(0.5))
	}
}

func TestCorrectHighBits(t *testing.T) {
	if got := CorrectHighBits(0xFFFFFFFF, 0xFFFFFFFF); got != 32 {
		t.Errorf("exact match = %d bits", got)
	}
	if got := CorrectHighBits(0x80000000, 0x00000000); got != 0 {
		t.Errorf("top-bit mismatch = %d bits", got)
	}
	if got := CorrectHighBits(0xF0000000, 0xF8000000); got != 4 {
		t.Errorf("4-bit prefix = %d bits", got)
	}
}

func TestMeanCorrectHighBitsValidation(t *testing.T) {
	if _, err := MeanCorrectHighBits([]uint32{1}, []uint32{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MeanCorrectHighBits(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestBitConstraintConsistency(t *testing.T) {
	c := BitConstraint{Mask: 0xF0000000, Value: 0xA0000000}
	if !c.Consistent(0xABCDEF01) {
		t.Error("consistent candidate rejected")
	}
	if c.Consistent(0xBBCDEF01) {
		t.Error("inconsistent candidate accepted")
	}
	if !(BitConstraint{}).Consistent(12345) {
		t.Error("empty constraint must accept everything")
	}
}

func TestMatchWithConstraintsExactRecovery(t *testing.T) {
	// Candidates are the true plaintexts; constraints pin the top 8
	// bits of each (as Lewi-Wu token leakage would); estimates are
	// noisy. Matching must recover the truth when top bytes are
	// distinct.
	truth := []uint32{0x10AAAAAA, 0x20BBBBBB, 0x30CCCCCC, 0x40DDDDDD}
	constraints := make([]BitConstraint, len(truth))
	estimates := make([]uint32, len(truth))
	for i, v := range truth {
		constraints[i] = BitConstraint{Mask: 0xFF000000, Value: v}
		estimates[i] = v + 0x00123456 // noisy estimate, same top byte
	}
	// Shuffled candidate order.
	candidates := []uint32{truth[2], truth[0], truth[3], truth[1]}
	got, err := MatchWithConstraints(estimates, constraints, candidates)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if got[i] != truth[i] {
			t.Errorf("ciphertext %d assigned %#x, want %#x", i, got[i], truth[i])
		}
	}
}

func TestMatchWithConstraintsValidation(t *testing.T) {
	if _, err := MatchWithConstraints(nil, nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := MatchWithConstraints([]uint32{1}, []BitConstraint{{}}, []uint32{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMatchBeatsQuantileAloneUnderConstraints(t *testing.T) {
	pts := workload.UniformInts(64, 7)
	est, err := RecoverByRank(pts, Uniform32)
	if err != nil {
		t.Fatal(err)
	}
	quantileOnly, _ := MeanCorrectHighBits(pts, est)
	constraints := make([]BitConstraint, len(pts))
	for i, v := range pts {
		constraints[i] = BitConstraint{Mask: 0xFFFF0000, Value: v} // 16 known bits
	}
	matched, err := MatchWithConstraints(est, constraints, append([]uint32(nil), pts...))
	if err != nil {
		t.Fatal(err)
	}
	withConstraints, _ := MeanCorrectHighBits(pts, matched)
	if withConstraints <= quantileOnly {
		t.Errorf("constraints did not help: %.2f <= %.2f", withConstraints, quantileOnly)
	}
	if math.IsNaN(withConstraints) {
		t.Fatal("NaN score")
	}
}
