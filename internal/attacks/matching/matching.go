// Package matching implements minimum-cost bipartite matching (the
// Hungarian algorithm). Section 6 of the paper uses weighted bipartite
// matching twice: in the Grubbs et al. attack on Seabed's ORE (edges
// between ciphertexts and plaintexts weighted by frequency fit) and in
// the conjectured Arx index-recovery attack (nodes matched to ranks by
// visit-frequency fit).
package matching

import (
	"fmt"
	"math"
)

// Hungarian solves the n×n assignment problem: cost[i][j] is the cost
// of assigning row i to column j; the result maps each row to its
// column in a minimum-total-cost perfect matching.
//
// This is the O(n³) Jonker-style potentials formulation.
func Hungarian(cost [][]float64) ([]int, error) {
	n := len(cost)
	if n == 0 {
		return nil, fmt.Errorf("matching: empty cost matrix")
	}
	for i, row := range cost {
		if len(row) != n {
			return nil, fmt.Errorf("matching: row %d has %d columns, want %d", i, len(row), n)
		}
		for j, c := range row {
			if math.IsNaN(c) {
				return nil, fmt.Errorf("matching: cost[%d][%d] is NaN", i, j)
			}
		}
	}
	// 1-indexed internals, as in the classic formulation.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j
	way := make([]int, n+1)
	const inf = math.MaxFloat64

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	out := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			out[p[j]-1] = j - 1
		}
	}
	return out, nil
}

// TotalCost sums the cost of an assignment.
func TotalCost(cost [][]float64, assign []int) float64 {
	var total float64
	for i, j := range assign {
		total += cost[i][j]
	}
	return total
}
