package matching

import (
	"math"
	"math/rand"
	"testing"
)

func TestHungarianTrivial(t *testing.T) {
	cost := [][]float64{{1}}
	assign, err := Hungarian(cost)
	if err != nil || len(assign) != 1 || assign[0] != 0 {
		t.Fatalf("assign = %v, err = %v", assign, err)
	}
}

func TestHungarianKnownOptimum(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: row0->col1 (1), row1->col0 (2), row2->col2 (2) = 5.
	if got := TotalCost(cost, assign); got != 5 {
		t.Errorf("total cost = %g, want 5 (assign %v)", got, assign)
	}
}

func TestHungarianIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(30)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 100
			}
		}
		assign, err := Hungarian(cost)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, n)
		for _, j := range assign {
			if j < 0 || j >= n || seen[j] {
				t.Fatalf("not a permutation: %v", assign)
			}
			seen[j] = true
		}
	}
}

func TestHungarianBeatsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		n := 20
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = rng.Float64()
			}
		}
		assign, err := Hungarian(cost)
		if err != nil {
			t.Fatal(err)
		}
		// Greedy row-by-row baseline.
		used := make([]bool, n)
		var greedy float64
		for i := 0; i < n; i++ {
			best, bestJ := math.MaxFloat64, -1
			for j := 0; j < n; j++ {
				if !used[j] && cost[i][j] < best {
					best, bestJ = cost[i][j], j
				}
			}
			used[bestJ] = true
			greedy += best
		}
		if TotalCost(cost, assign) > greedy+1e-9 {
			t.Errorf("Hungarian (%.4f) worse than greedy (%.4f)", TotalCost(cost, assign), greedy)
		}
	}
}

func TestHungarianIdentityOnDiagonal(t *testing.T) {
	n := 8
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i == j {
				cost[i][j] = 0
			} else {
				cost[i][j] = 10
			}
		}
	}
	assign, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range assign {
		if i != j {
			t.Fatalf("diagonal optimum missed: %v", assign)
		}
	}
}

func TestHungarianErrors(t *testing.T) {
	if _, err := Hungarian(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := Hungarian([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := Hungarian([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN cost accepted")
	}
}

func BenchmarkHungarian100(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 100
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = rng.Float64()
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Hungarian(cost); err != nil {
			b.Fatal(err)
		}
	}
}
