// Package vfs is the file layer under every snapdb persistence path:
// WAL segments, the binlog, the buffer-pool dump, checkpoints, and
// snapshot directories all go through an FS. Three implementations:
//
//   - OSFS: the real filesystem, rooted at a directory.
//   - MemFS: an in-memory filesystem that models the volatile/durable
//     split of a page cache — unsynced writes are lost at Crash(),
//     namespace operations (create/rename/remove) become durable only
//     at SyncDir(). The crash-torture harness runs on it.
//   - FaultFS: a wrapper injecting failpoint-driven faults (write
//     errors, torn writes, dropped fsyncs, bit flips, kill-points)
//     into any inner FS.
//
// The interface is deliberately narrow: positional reads and writes,
// per-file sync, directory sync, rename. That is exactly the contract
// crash-consistent storage needs — and exactly where real systems get
// it wrong, which is what the fault injection demonstrates.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// File is one open file.
type File interface {
	io.Closer
	// WriteAt writes len(p) bytes at offset off, extending the file
	// (zero-filled) if off is past the end.
	WriteAt(p []byte, off int64) (int, error)
	// ReadAt reads into p from offset off; it returns io.EOF when
	// fewer than len(p) bytes are available.
	ReadAt(p []byte, off int64) (int, error)
	// Size returns the current file size.
	Size() (int64, error)
	// Sync makes the file's current content durable.
	Sync() error
	// Truncate resizes the file.
	Truncate(size int64) error
}

// ErrBadName reports a file name that is not a plain flat name: empty,
// a dot entry, or containing a path separator. The FS namespace is
// deliberately flat; before this check, OSFS silently collapsed any
// separator-bearing name to its base (filepath.Base), so two distinct
// logical names like "a/log" and "b/log" could alias one on-disk file.
// All implementations now reject such names up front with this error.
var ErrBadName = errors.New("vfs: name must be a flat file name without separators")

// CheckName validates name against the flat-namespace contract shared
// by every FS implementation.
func CheckName(name string) error {
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, `/\`) || strings.ContainsRune(name, os.PathSeparator) {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	return nil
}

// FS is a flat filesystem rooted at one directory.
type FS interface {
	// Create creates (or truncates) a file.
	Create(name string) (File, error)
	// Open opens an existing file for reading and writing.
	Open(name string) (File, error)
	// ReadFile returns the full content of a file. Missing files
	// return an error satisfying os.IsNotExist / errors.Is(ErrNotExist).
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname's file. The
	// rename is durable only after SyncDir.
	Rename(oldname, newname string) error
	// Remove deletes a file. Durable only after SyncDir.
	Remove(name string) error
	// SyncDir makes the directory's namespace (creates, renames,
	// removals) durable.
	SyncDir() error
}

// WriteFileAtomic writes data under name crash-atomically: write to a
// temp file, sync it, rename it over name, sync the directory. After a
// crash the file holds either the old content or the new, never a mix.
//
// A failure between Create and Rename removes the temp file
// (best-effort): a stale *.tmp is not just clutter, it is a forensic
// surface — the full intended content of the next checkpoint or
// snapshot file, sitting beside the real one under a name no reader
// ever validates (E17 notes the at-rest-encryption variant of this
// residue). A crash can of course still strand one; crash recovery
// paths tolerate and overwrite it on the next write.
func WriteFileAtomic(fs FS, name string, data []byte) error {
	tmp := name + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("vfs: create %s: %w", tmp, err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return fmt.Errorf("vfs: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return fmt.Errorf("vfs: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		_ = fs.Remove(tmp)
		return fmt.Errorf("vfs: close %s: %w", tmp, err)
	}
	if err := fs.Rename(tmp, name); err != nil {
		_ = fs.Remove(tmp)
		return fmt.Errorf("vfs: rename %s -> %s: %w", tmp, name, err)
	}
	if err := fs.SyncDir(); err != nil {
		return fmt.Errorf("vfs: syncdir for %s: %w", name, err)
	}
	return nil
}

// OSFS is the real filesystem rooted at Dir.
type OSFS struct {
	dir string
}

// NewOSFS creates an OSFS rooted at dir, creating the directory if
// needed.
func NewOSFS(dir string) (*OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vfs: mkdir %s: %w", dir, err)
	}
	return &OSFS{dir: dir}, nil
}

// Dir returns the root directory.
func (fs *OSFS) Dir() string { return fs.dir }

// path maps a validated flat name into the root directory. Callers
// must CheckName first: the old filepath.Base mapping here silently
// flattened "a/log" and "b/log" onto one file.
func (fs *OSFS) path(name string) string { return filepath.Join(fs.dir, name) }

// Create implements FS.
func (fs *OSFS) Create(name string) (File, error) {
	if err := CheckName(name); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(fs.path(name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return (*osFile)(f), nil
}

// Open implements FS.
func (fs *OSFS) Open(name string) (File, error) {
	if err := CheckName(name); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(fs.path(name), os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return (*osFile)(f), nil
}

// ReadFile implements FS.
func (fs *OSFS) ReadFile(name string) ([]byte, error) {
	if err := CheckName(name); err != nil {
		return nil, err
	}
	return os.ReadFile(fs.path(name))
}

// Rename implements FS.
func (fs *OSFS) Rename(oldname, newname string) error {
	if err := CheckName(oldname); err != nil {
		return err
	}
	if err := CheckName(newname); err != nil {
		return err
	}
	return os.Rename(fs.path(oldname), fs.path(newname))
}

// Remove implements FS.
func (fs *OSFS) Remove(name string) error {
	if err := CheckName(name); err != nil {
		return err
	}
	return os.Remove(fs.path(name))
}

// SyncDir implements FS: fsync on the directory makes renames durable.
func (fs *OSFS) SyncDir() error {
	d, err := os.Open(fs.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

type osFile os.File

func (f *osFile) WriteAt(p []byte, off int64) (int, error) { return (*os.File)(f).WriteAt(p, off) }
func (f *osFile) ReadAt(p []byte, off int64) (int, error)  { return (*os.File)(f).ReadAt(p, off) }
func (f *osFile) Sync() error                              { return (*os.File)(f).Sync() }
func (f *osFile) Truncate(size int64) error                { return (*os.File)(f).Truncate(size) }
func (f *osFile) Close() error                             { return (*os.File)(f).Close() }

func (f *osFile) Size() (int64, error) {
	st, err := (*os.File)(f).Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
