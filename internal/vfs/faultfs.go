package vfs

import (
	"snapdb/internal/failpoint"
)

// FaultFS wraps an FS and consults a failpoint registry before every
// mutating operation. Point names are "<op>:<file>" for file ops
// (write, sync, truncate, create, open, rename, remove) and "syncdir"
// for directory sync, so a harness can target one persistence path
// ("write:ib_logfile_redo") or everything ("*").
//
// Reads are never faulted: the harness injects faults while the engine
// runs, then recovers through a clean FS, the same way a real crash
// separates the dying process from the rebooted one.
type FaultFS struct {
	inner FS
	reg   *failpoint.Registry
}

// NewFaultFS wraps inner with fault injection driven by reg.
func NewFaultFS(inner FS, reg *failpoint.Registry) *FaultFS {
	return &FaultFS{inner: inner, reg: reg}
}

// Registry returns the driving registry.
func (fs *FaultFS) Registry() *failpoint.Registry { return fs.reg }

// Inner returns the wrapped FS (the torture harness recovers through
// it, bypassing injection).
func (fs *FaultFS) Inner() FS { return fs.inner }

// check evaluates a non-write failpoint: only Err and Crash apply.
func (fs *FaultFS) check(point string) error {
	kind, fired := fs.reg.Eval(point)
	if !fired {
		return nil
	}
	switch kind {
	case failpoint.KindCrash:
		return failpoint.ErrCrashed
	case failpoint.KindErr:
		return failpoint.ErrInjected
	}
	return nil
}

// Create implements FS. Bad names are rejected before failpoint
// evaluation, so they never consume a scheduled fault hit.
func (fs *FaultFS) Create(name string) (File, error) {
	if err := CheckName(name); err != nil {
		return nil, err
	}
	if err := fs.check("create:" + name); err != nil {
		return nil, err
	}
	f, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, fs: fs, name: name}, nil
}

// Open implements FS.
func (fs *FaultFS) Open(name string) (File, error) {
	if err := CheckName(name); err != nil {
		return nil, err
	}
	if err := fs.check("open:" + name); err != nil {
		return nil, err
	}
	f, err := fs.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, fs: fs, name: name}, nil
}

// ReadFile implements FS. Reads are not faulted.
func (fs *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := CheckName(name); err != nil {
		return nil, err
	}
	if fs.reg.Crashed() {
		return nil, failpoint.ErrCrashed
	}
	return fs.inner.ReadFile(name)
}

// Rename implements FS.
func (fs *FaultFS) Rename(oldname, newname string) error {
	if err := CheckName(oldname); err != nil {
		return err
	}
	if err := CheckName(newname); err != nil {
		return err
	}
	if err := fs.check("rename:" + oldname); err != nil {
		return err
	}
	return fs.inner.Rename(oldname, newname)
}

// Remove implements FS.
func (fs *FaultFS) Remove(name string) error {
	if err := CheckName(name); err != nil {
		return err
	}
	if err := fs.check("remove:" + name); err != nil {
		return err
	}
	return fs.inner.Remove(name)
}

// SyncDir implements FS.
func (fs *FaultFS) SyncDir() error {
	kind, fired := fs.reg.Eval("syncdir")
	if fired {
		switch kind {
		case failpoint.KindCrash:
			return failpoint.ErrCrashed
		case failpoint.KindErr:
			return failpoint.ErrInjected
		case failpoint.KindDropSync:
			return nil // lie: report success without syncing
		}
	}
	return fs.inner.SyncDir()
}

type faultFile struct {
	f    File
	fs   *FaultFS
	name string
}

// WriteAt implements File, injecting write faults: Err drops the write,
// Torn applies a seeded prefix then fails, BitFlip corrupts one seeded
// bit silently, Crash tears the write and kills everything after it.
func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	kind, fired := f.fs.reg.Eval("write:" + f.name)
	if !fired {
		return f.f.WriteAt(p, off)
	}
	switch kind {
	case failpoint.KindErr:
		return 0, failpoint.ErrInjected
	case failpoint.KindTorn, failpoint.KindCrash:
		n := 0
		if len(p) > 0 {
			n = f.fs.reg.Intn(len(p))
		}
		if n > 0 {
			if _, err := f.f.WriteAt(p[:n], off); err != nil {
				return 0, err
			}
		}
		if kind == failpoint.KindCrash {
			return n, failpoint.ErrCrashed
		}
		return n, failpoint.ErrInjected
	case failpoint.KindBitFlip:
		if len(p) == 0 {
			return f.f.WriteAt(p, off)
		}
		corrupt := make([]byte, len(p))
		copy(corrupt, p)
		bit := f.fs.reg.Intn(len(p) * 8)
		corrupt[bit/8] ^= 1 << (bit % 8)
		return f.f.WriteAt(corrupt, off)
	default:
		return f.f.WriteAt(p, off)
	}
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if f.fs.reg.Crashed() {
		return 0, failpoint.ErrCrashed
	}
	return f.f.ReadAt(p, off)
}

func (f *faultFile) Size() (int64, error) {
	if f.fs.reg.Crashed() {
		return 0, failpoint.ErrCrashed
	}
	return f.f.Size()
}

// Sync implements File: DropSync reports success without syncing.
func (f *faultFile) Sync() error {
	kind, fired := f.fs.reg.Eval("sync:" + f.name)
	if fired {
		switch kind {
		case failpoint.KindCrash:
			return failpoint.ErrCrashed
		case failpoint.KindErr:
			return failpoint.ErrInjected
		case failpoint.KindDropSync:
			return nil
		}
	}
	return f.f.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if err := f.fs.check("truncate:" + f.name); err != nil {
		return err
	}
	return f.f.Truncate(size)
}

func (f *faultFile) Close() error { return f.f.Close() }
