package vfs

import (
	"errors"
	"io"
	"os"
	"testing"

	"snapdb/internal/crypto/prim"
	"snapdb/internal/failpoint"
)

// allFS enumerates every FS implementation under one constructor each,
// so contract tests run over the whole matrix — including both CryptFS
// modes stacked over MemFS, which must be indistinguishable from plain
// at this layer.
func allFS(t *testing.T) map[string]FS {
	t.Helper()
	mustCrypt := func(det bool) FS {
		cfs, err := NewCryptFS(NewMemFS(), prim.TestKey("conformance"), det)
		if err != nil {
			t.Fatal(err)
		}
		return cfs
	}
	osfs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]FS{
		"memfs":     NewMemFS(),
		"osfs":      osfs,
		"faultfs":   NewFaultFS(NewMemFS(), failpoint.New(1)),
		"cryptdet":  mustCrypt(true),
		"cryptrand": mustCrypt(false),
	}
}

// TestFSRejectsSeparatorNames is the regression test for the OSFS name
// flattening bug: path(name) used filepath.Base, so "a/log" and "b/log"
// silently aliased one on-disk file ("log"). Every implementation must
// now reject separator-bearing and dot names with ErrBadName, on every
// namespace operation.
func TestFSRejectsSeparatorNames(t *testing.T) {
	bad := []string{"", ".", "..", "a/log", "b/log", `a\log`, "../escape", "nested/../log"}
	for fsName, fs := range allFS(t) {
		// A valid file to direct Rename at.
		f, err := fs.Create("log")
		if err != nil {
			t.Fatalf("%s: create valid: %v", fsName, err)
		}
		f.Close()
		for _, name := range bad {
			if _, err := fs.Create(name); !errors.Is(err, ErrBadName) {
				t.Errorf("%s: Create(%q) err = %v, want ErrBadName", fsName, name, err)
			}
			if _, err := fs.Open(name); !errors.Is(err, ErrBadName) {
				t.Errorf("%s: Open(%q) err = %v, want ErrBadName", fsName, name, err)
			}
			if _, err := fs.ReadFile(name); !errors.Is(err, ErrBadName) {
				t.Errorf("%s: ReadFile(%q) err = %v, want ErrBadName", fsName, name, err)
			}
			if err := fs.Rename(name, "log2"); !errors.Is(err, ErrBadName) {
				t.Errorf("%s: Rename(%q, ...) err = %v, want ErrBadName", fsName, name, err)
			}
			if err := fs.Rename("log", name); !errors.Is(err, ErrBadName) {
				t.Errorf("%s: Rename(..., %q) err = %v, want ErrBadName", fsName, name, err)
			}
			if err := fs.Remove(name); !errors.Is(err, ErrBadName) {
				t.Errorf("%s: Remove(%q) err = %v, want ErrBadName", fsName, name, err)
			}
		}
	}
}

// TestOSFSSeparatorNamesDoNotAlias pins the concrete disaster the old
// code allowed: two distinct logical names collapsing onto one file.
func TestOSFSSeparatorNamesDoNotAlias(t *testing.T) {
	fs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("a/log"); err == nil {
		// Old behavior: this created "<dir>/log". A second create of
		// "b/log" would then truncate the first file's content.
		t.Fatal("Create(\"a/log\") succeeded; separator names must be rejected")
	}
	// And nothing may have leaked onto disk under the flattened name.
	if _, err := fs.ReadFile("log"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("flattened file exists: err=%v", err)
	}
}

// TestFSReadAtShortRead is the shared ReadAt contract test: reading
// across EOF from a non-page-aligned offset returns the available bytes
// AND io.EOF in the same call; reading at/after EOF returns (0, EOF);
// a closed handle returns os.ErrClosed. CryptFS must inherit all of it
// unchanged — the keystream is positional, so decryption cannot round
// offsets or lengths to page boundaries.
func TestFSReadAtShortRead(t *testing.T) {
	// 3 pages minus a tail, so EOF is non-page-aligned too.
	content := make([]byte, 3*CryptPageSize-37)
	for i := range content {
		content[i] = byte(i * 7)
	}
	for fsName, fs := range allFS(t) {
		f, err := fs.Create("data")
		if err != nil {
			t.Fatalf("%s: %v", fsName, err)
		}
		if _, err := f.WriteAt(content, 0); err != nil {
			t.Fatalf("%s: write: %v", fsName, err)
		}
		size, err := f.Size()
		if err != nil || size != int64(len(content)) {
			t.Fatalf("%s: size = %d, %v; want %d", fsName, size, err, len(content))
		}

		// Interior read at a deliberately unaligned offset.
		buf := make([]byte, 100)
		off := int64(CryptPageSize + 13)
		n, err := f.ReadAt(buf, off)
		if n != 100 || err != nil {
			t.Fatalf("%s: interior ReadAt = (%d, %v), want (100, nil)", fsName, n, err)
		}
		for i := range buf {
			if buf[i] != content[off+int64(i)] {
				t.Fatalf("%s: interior read wrong at byte %d", fsName, i)
			}
		}

		// Read straddling EOF: short count plus io.EOF together.
		off = size - 10
		n, err = f.ReadAt(buf, off)
		if n != 10 || err != io.EOF {
			t.Fatalf("%s: straddling ReadAt = (%d, %v), want (10, io.EOF)", fsName, n, err)
		}
		for i := 0; i < n; i++ {
			if buf[i] != content[off+int64(i)] {
				t.Fatalf("%s: straddling read wrong at byte %d", fsName, i)
			}
		}

		// At and past EOF.
		if n, err = f.ReadAt(buf, size); n != 0 || err != io.EOF {
			t.Fatalf("%s: ReadAt(EOF) = (%d, %v), want (0, io.EOF)", fsName, n, err)
		}
		if n, err = f.ReadAt(buf, size+12345); n != 0 || err != io.EOF {
			t.Fatalf("%s: ReadAt(past EOF) = (%d, %v), want (0, io.EOF)", fsName, n, err)
		}

		// Zero-length read succeeds anywhere below EOF.
		if n, err = f.ReadAt(nil, 5); n != 0 || err != nil {
			t.Fatalf("%s: zero-length ReadAt = (%d, %v), want (0, nil)", fsName, n, err)
		}

		if err := f.Close(); err != nil {
			t.Fatalf("%s: close: %v", fsName, err)
		}
		if _, err := f.ReadAt(buf, 0); !errors.Is(err, os.ErrClosed) {
			t.Fatalf("%s: ReadAt after Close err = %v, want os.ErrClosed", fsName, err)
		}
	}
}

// TestWriteFileAtomicNoTmpResidue is the regression test for the tmp
// leak: a WriteFileAtomic failure used to strand "<name>.tmp" — the
// full intended new content under an unvalidated name. Every pre-rename
// failure must now leave no tmp entry in the namespace.
func TestWriteFileAtomicNoTmpResidue(t *testing.T) {
	for _, point := range []string{"write:cfg.tmp", "sync:cfg.tmp", "rename:cfg.tmp"} {
		mem := NewMemFS()
		reg := failpoint.New(1)
		fs := NewFaultFS(mem, reg)
		if err := WriteFileAtomic(fs, "cfg", []byte("v1")); err != nil {
			t.Fatalf("%s: seed write: %v", point, err)
		}
		reg.Arm(point, failpoint.KindErr, 1)
		if err := WriteFileAtomic(fs, "cfg", []byte("v2-much-longer-content")); err == nil {
			t.Fatalf("%s: injected failure did not surface", point)
		}
		for _, name := range mem.Names() {
			if name == "cfg.tmp" {
				t.Fatalf("%s: cfg.tmp stranded in namespace", point)
			}
		}
		got, err := fs.ReadFile("cfg")
		if err != nil || string(got) != "v1" {
			t.Fatalf("%s: cfg = %q, %v; want old content intact", point, got, err)
		}
	}
}
