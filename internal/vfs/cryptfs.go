package vfs

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"snapdb/internal/crypto/prim"
)

// CryptPageSize is the encryption granularity: every file an engine
// persists through a CryptFS is ciphered in fixed 4 KiB pages, matching
// storage.PageSize so one tablespace page maps onto one cipher page
// (the alignment E17's page-diff analyst exploits).
const CryptPageSize = 4096

// CryptFS wraps an inner FS with page-level encryption at rest, the
// seam the SQLite adiantum/xts VFSes occupy. Two modes:
//
//   - Deterministic (XTS-style): page p of file f is XORed with a
//     keystream derived from (key, f, p). Length- and position-
//     preserving, so every crash-consistency property of the inner FS
//     transfers byte-for-byte: torn writes tear the same plaintext
//     ranges, dropped fsyncs lose the same bytes, a flipped ciphertext
//     bit flips exactly one plaintext bit (caught downstream by the CRC
//     framing), and sizes/offsets/EOF are identical to plaintext. The
//     cost is determinism itself: equal plaintext pages at equal
//     positions encrypt equally across snapshots — the channel E17
//     breaks — and rewriting a page in place under the same tweak
//     XOR-relates old and new ciphertext.
//
//   - Fresh-IV (the mitigation ablation): every page write draws a new
//     random tweak, stored in a plaintext "<name>.iv" sidecar (16 bytes
//     per page). Ciphertext pages become unlinkable across writes,
//     killing the page-diff channel — but a page rewrite is now a full
//     read-modify-write under a new tweak, so a torn page write can
//     damage previously synced bytes of the same page (real engines pay
//     a double-write buffer here; see DESIGN.md), and the sidecar's
//     per-page write pattern is itself a small new metadata surface.
//
// Neither mode hides file names, file sizes, write positions, or
// timing; E17 shows that is already enough for past-query inference.
type CryptFS struct {
	inner FS
	pc    *prim.PageCipher
	det   bool

	mu     sync.Mutex
	tweaks map[string]*tweakTable // fresh mode: per-file page tweaks
}

// tweakTable caches a fresh-IV file's page tweaks alongside its open
// sidecar handle.
type tweakTable struct {
	ivs     [][prim.TweakSize]byte
	set     []bool // ivs[i] valid
	sidecar File   // open "<name>.iv" handle, lazily created
}

// sidecarSuffix names the fresh-IV tweak file beside its data file.
const sidecarSuffix = ".iv"

// NewCryptFS wraps inner with page encryption under key. deterministic
// selects the XTS-style mode; false selects the fresh-IV mode.
func NewCryptFS(inner FS, key prim.Key, deterministic bool) (*CryptFS, error) {
	pc, err := prim.NewPageCipher(key)
	if err != nil {
		return nil, err
	}
	return &CryptFS{inner: inner, pc: pc, det: deterministic, tweaks: make(map[string]*tweakTable)}, nil
}

// Inner returns the wrapped FS — the raw-ciphertext view a disk thief
// or snapshot analyst reads.
func (fs *CryptFS) Inner() FS { return fs.inner }

// Deterministic reports the mode.
func (fs *CryptFS) Deterministic() bool { return fs.det }

// canonical is the tweak-derivation name: the ".tmp" suffix that
// WriteFileAtomic appends is stripped, so the temp file is encrypted
// under its final name's tweaks and the atomic rename needs no
// re-encryption (and cannot tear one).
func canonical(name string) string { return strings.TrimSuffix(name, ".tmp") }

// ErrCryptRename reports a rename that would change a file's tweak
// domain. Deterministic tweaks bind the canonical file name, so only
// renames within one canonical name (the WriteFileAtomic "<name>.tmp"
// -> "<name>" pattern) are decryptable afterwards; anything else would
// silently produce garbage on the next read, which this error refuses
// up front.
var ErrCryptRename = errors.New("vfs: cryptfs rename across tweak domains")

// Create implements FS.
func (fs *CryptFS) Create(name string) (File, error) {
	if err := CheckName(name); err != nil {
		return nil, err
	}
	f, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	if !fs.det {
		// A created (truncated) file starts with no valid pages: reset
		// the tweak table and sidecar.
		fs.mu.Lock()
		if tt := fs.tweaks[name]; tt != nil && tt.sidecar != nil {
			_ = tt.sidecar.Close()
		}
		delete(fs.tweaks, name)
		fs.mu.Unlock()
		if sc, err := fs.inner.Create(name + sidecarSuffix); err == nil {
			_ = sc.Close()
		}
	}
	return &cryptFile{fs: fs, f: f, name: name}, nil
}

// Open implements FS.
func (fs *CryptFS) Open(name string) (File, error) {
	if err := CheckName(name); err != nil {
		return nil, err
	}
	f, err := fs.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &cryptFile{fs: fs, f: f, name: name}, nil
}

// ReadFile implements FS, returning the decrypted content.
func (fs *CryptFS) ReadFile(name string) ([]byte, error) {
	if err := CheckName(name); err != nil {
		return nil, err
	}
	b, err := fs.inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if err := fs.xorRange(name, 0, b); err != nil {
		return nil, err
	}
	return b, nil
}

// Rename implements FS. The fresh-IV sidecar travels with its file.
func (fs *CryptFS) Rename(oldname, newname string) error {
	if err := CheckName(oldname); err != nil {
		return err
	}
	if err := CheckName(newname); err != nil {
		return err
	}
	if fs.det && canonical(oldname) != canonical(newname) {
		return fmt.Errorf("%w: %q -> %q", ErrCryptRename, oldname, newname)
	}
	if err := fs.inner.Rename(oldname, newname); err != nil {
		return err
	}
	if !fs.det {
		// Sidecar rename is best-effort after the data rename: a crash
		// between the two is the fresh-IV mode's documented atomicity
		// hole (DESIGN.md), not silently hidden here.
		_ = fs.inner.Rename(oldname+sidecarSuffix, newname+sidecarSuffix)
		fs.mu.Lock()
		if tt, ok := fs.tweaks[oldname]; ok {
			if tt.sidecar != nil {
				_ = tt.sidecar.Close()
				tt.sidecar = nil // reopened lazily under the new name
			}
			delete(fs.tweaks, oldname)
			fs.tweaks[newname] = tt
		} else {
			delete(fs.tweaks, newname)
		}
		fs.mu.Unlock()
	}
	return nil
}

// Remove implements FS.
func (fs *CryptFS) Remove(name string) error {
	if err := CheckName(name); err != nil {
		return err
	}
	if err := fs.inner.Remove(name); err != nil {
		return err
	}
	if !fs.det {
		_ = fs.inner.Remove(name + sidecarSuffix)
		fs.mu.Lock()
		if tt := fs.tweaks[name]; tt != nil && tt.sidecar != nil {
			_ = tt.sidecar.Close()
		}
		delete(fs.tweaks, name)
		fs.mu.Unlock()
	}
	return nil
}

// SyncDir implements FS.
func (fs *CryptFS) SyncDir() error { return fs.inner.SyncDir() }

// xorRange applies the per-page keystream to data, which lives at byte
// offset off of file name. Deterministic mode derives every tweak;
// fresh mode looks tweaks up, leaving bytes of pages with no recorded
// tweak untouched (raw ciphertext): such bytes can only be damage —
// e.g. a crash that landed data without its sidecar entry — and
// passing them through unmasked lets the CRC framing above report the
// corruption instead of hiding it behind a synthetic decrypt.
func (fs *CryptFS) xorRange(name string, off int64, data []byte) error {
	cname := canonical(name)
	var tt *tweakTable
	if !fs.det {
		var err error
		if tt, err = fs.loadTweaks(name); err != nil {
			return err
		}
	}
	for len(data) > 0 {
		page := uint64(off) / CryptPageSize
		in := int(uint64(off) % CryptPageSize)
		n := CryptPageSize - in
		if n > len(data) {
			n = len(data)
		}
		if fs.det {
			fs.pc.XORKeyStreamAt(fs.pc.Tweak(cname, page), in, data[:n])
		} else if int(page) < len(tt.set) && tt.set[page] {
			fs.pc.XORKeyStreamAt(tt.ivs[page], in, data[:n])
		}
		data = data[n:]
		off += int64(n)
	}
	return nil
}

// loadTweaks returns the (cached) tweak table for name, reading the
// sidecar file on first access.
func (fs *CryptFS) loadTweaks(name string) (*tweakTable, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if tt, ok := fs.tweaks[name]; ok {
		return tt, nil
	}
	tt := &tweakTable{}
	b, err := fs.inner.ReadFile(name + sidecarSuffix)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("vfs: cryptfs sidecar %s: %w", name, err)
	}
	for o := 0; o+prim.TweakSize <= len(b); o += prim.TweakSize {
		var tw [prim.TweakSize]byte
		copy(tw[:], b[o:])
		tt.ivs = append(tt.ivs, tw)
		tt.set = append(tt.set, tw != [prim.TweakSize]byte{})
	}
	fs.tweaks[name] = tt
	return tt, nil
}

// setTweak records a freshly drawn tweak for page pg of name, in memory
// and in the sidecar file.
func (fs *CryptFS) setTweak(name string, tt *tweakTable, pg uint64) ([prim.TweakSize]byte, error) {
	var tw [prim.TweakSize]byte
	if _, err := rand.Read(tw[:]); err != nil {
		return tw, fmt.Errorf("vfs: cryptfs tweak: %w", err)
	}
	fs.mu.Lock()
	for uint64(len(tt.ivs)) <= pg {
		tt.ivs = append(tt.ivs, [prim.TweakSize]byte{})
		tt.set = append(tt.set, false)
	}
	tt.ivs[pg] = tw
	tt.set[pg] = true
	if tt.sidecar == nil {
		sc, err := fs.inner.Open(name + sidecarSuffix)
		if errors.Is(err, os.ErrNotExist) {
			sc, err = fs.inner.Create(name + sidecarSuffix)
		}
		if err != nil {
			fs.mu.Unlock()
			return tw, fmt.Errorf("vfs: cryptfs sidecar %s: %w", name, err)
		}
		tt.sidecar = sc
	}
	sc := tt.sidecar
	fs.mu.Unlock()
	if _, err := sc.WriteAt(tw[:], int64(pg)*prim.TweakSize); err != nil {
		return tw, fmt.Errorf("vfs: cryptfs sidecar %s: %w", name, err)
	}
	return tw, nil
}

// cryptFile is one open handle on an encrypted file.
type cryptFile struct {
	fs   *CryptFS
	f    File
	name string
}

// ReadAt implements File: read ciphertext, XOR in place. Short-read
// and EOF semantics are the inner file's own.
func (c *cryptFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := c.f.ReadAt(p, off)
	if n > 0 {
		if xerr := c.fs.xorRange(c.name, off, p[:n]); xerr != nil && err == nil {
			err = xerr
		}
	}
	return n, err
}

// WriteAt implements File. Deterministic mode is a pure positional
// XOR — one inner write of the same length at the same offset, so
// fault injection below sees the identical operation stream as
// plaintext. Fresh-IV mode re-encrypts every touched page under a new
// random tweak, which turns sub-page writes into read-modify-write.
// Both modes keep the zero-fill extension contract: a write past EOF
// first encrypts the zero gap explicitly, so the gap later reads back
// as zeros, not as keystream.
func (c *cryptFile) WriteAt(p []byte, off int64) (int, error) {
	size, err := c.f.Size()
	if err != nil {
		return 0, err
	}
	if off > size {
		if err := c.writeSpan(make([]byte, off-size), size, size); err != nil {
			return 0, err
		}
		size = off
	}
	if err := c.writeSpan(p, off, size); err != nil {
		return 0, err
	}
	return len(p), nil
}

// writeSpan encrypts and writes p at off; size is the current file
// size (>= off, the caller has closed any gap).
func (c *cryptFile) writeSpan(p []byte, off, size int64) error {
	if len(p) == 0 {
		// Preserve the inner file's handling of empty writes (e.g. a
		// closed handle must still error).
		_, err := c.f.WriteAt(p, off)
		return err
	}
	if c.fs.det {
		ct := make([]byte, len(p))
		copy(ct, p)
		if err := c.fs.xorRange(c.name, off, ct); err != nil {
			return err
		}
		_, err := c.f.WriteAt(ct, off)
		return err
	}
	tt, err := c.fs.loadTweaks(c.name)
	if err != nil {
		return err
	}
	end := off + int64(len(p))
	for pos := off; pos < end; {
		pg := uint64(pos) / CryptPageSize
		pageStart := int64(pg) * CryptPageSize
		pageEnd := pageStart + CryptPageSize
		segEnd := end
		if segEnd > pageEnd {
			segEnd = pageEnd
		}
		// Assemble the page's new plaintext: existing extent (decrypted
		// under the old tweak) patched with this write's segment.
		oldEnd := size
		if oldEnd > pageEnd {
			oldEnd = pageEnd
		}
		newEnd := segEnd
		if oldEnd > newEnd {
			newEnd = oldEnd
		}
		buf := make([]byte, newEnd-pageStart)
		if oldEnd > pageStart {
			m, rerr := c.f.ReadAt(buf[:oldEnd-pageStart], pageStart)
			if rerr != nil && rerr != io.EOF {
				return rerr
			}
			c.fs.mu.Lock()
			has := int(pg) < len(tt.set) && tt.set[pg]
			tw := [prim.TweakSize]byte{}
			if has {
				tw = tt.ivs[pg]
			}
			c.fs.mu.Unlock()
			if has {
				c.fs.pc.XORKeyStreamAt(tw, 0, buf[:m])
			}
		}
		copy(buf[pos-pageStart:], p[pos-off:segEnd-off])
		tw, terr := c.fs.setTweak(c.name, tt, pg)
		if terr != nil {
			return terr
		}
		c.fs.pc.XORKeyStreamAt(tw, 0, buf)
		if _, werr := c.f.WriteAt(buf, pageStart); werr != nil {
			return werr
		}
		if newEnd > size {
			size = newEnd
		}
		pos = segEnd
	}
	return nil
}

func (c *cryptFile) Size() (int64, error) { return c.f.Size() }

// Sync implements File; fresh mode also syncs the sidecar, whose
// tweaks the just-synced pages need to decrypt.
func (c *cryptFile) Sync() error {
	if err := c.f.Sync(); err != nil {
		return err
	}
	if !c.fs.det {
		c.fs.mu.Lock()
		var sc File
		if tt := c.fs.tweaks[c.name]; tt != nil {
			sc = tt.sidecar
		}
		c.fs.mu.Unlock()
		if sc != nil {
			return sc.Sync()
		}
	}
	return nil
}

// Truncate implements File. Shrinking needs no re-encryption in either
// mode (the keystream is positional); growth goes through the explicit
// zero-encryption path so extended bytes read back as zeros.
func (c *cryptFile) Truncate(size int64) error {
	cur, err := c.f.Size()
	if err != nil {
		return err
	}
	if size <= cur {
		return c.f.Truncate(size)
	}
	return c.writeSpan(make([]byte, size-cur), cur, cur)
}

func (c *cryptFile) Close() error { return c.f.Close() }
