package vfs

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"snapdb/internal/crypto/prim"
	"snapdb/internal/failpoint"
)

func newCrypt(t *testing.T, det bool) (*CryptFS, *MemFS) {
	t.Helper()
	mem := NewMemFS()
	cfs, err := NewCryptFS(mem, prim.TestKey("cryptfs"), det)
	if err != nil {
		t.Fatal(err)
	}
	return cfs, mem
}

func writeFile(t *testing.T, fs FS, name string, data []byte) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCryptFSRoundTrip(t *testing.T) {
	for _, det := range []bool{true, false} {
		cfs, mem := newCrypt(t, det)
		// Multi-page content with a non-aligned tail.
		data := bytes.Repeat([]byte("snapdb-page-content-"), 300) // 6000 bytes
		writeFile(t, cfs, "redo", data)

		got, err := cfs.ReadFile("redo")
		if err != nil {
			t.Fatalf("det=%v: %v", det, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("det=%v: logical read != written data", det)
		}
		// The inner (at-rest) bytes are ciphertext of the same length.
		raw, err := mem.ReadFile("redo")
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) != len(data) {
			t.Fatalf("det=%v: ciphertext length %d != plaintext %d", det, len(raw), len(data))
		}
		if bytes.Contains(raw, []byte("snapdb-page-content-")) {
			t.Fatalf("det=%v: plaintext visible at rest", det)
		}
		// Positional sub-reads through a fresh handle decrypt too.
		f, err := cfs.Open("redo")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		if _, err := f.ReadAt(buf, CryptPageSize-17); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data[CryptPageSize-17:CryptPageSize-17+64]) {
			t.Fatalf("det=%v: positional read wrong across page boundary", det)
		}
		f.Close()
	}
}

// TestCryptFSDeterministicPages pins the leakage property E17 exploits:
// in deterministic mode, writing the same plaintext page at the same
// position of the same file yields the same ciphertext — across
// separate CryptFS instances sharing a key — while fresh-IV mode yields
// different ciphertext on every write, even of identical plaintext.
func TestCryptFSDeterministicPages(t *testing.T) {
	page := bytes.Repeat([]byte{0xA5, 0x5A, 0x01}, CryptPageSize/3+1)[:CryptPageSize]

	cfs1, mem1 := newCrypt(t, true)
	cfs2, mem2 := newCrypt(t, true)
	writeFile(t, cfs1, "ibdata", page)
	writeFile(t, cfs2, "ibdata", page)
	ct1, _ := mem1.ReadFile("ibdata")
	ct2, _ := mem2.ReadFile("ibdata")
	if !bytes.Equal(ct1, ct2) {
		t.Fatal("deterministic mode: same (key, name, page, plaintext) gave different ciphertext")
	}
	// Same plaintext at a different page position must differ.
	writeFile(t, cfs1, "two", append(append([]byte(nil), page...), page...))
	ct, _ := mem1.ReadFile("two")
	if bytes.Equal(ct[:CryptPageSize], ct[CryptPageSize:]) {
		t.Fatal("deterministic mode: page number does not separate ciphertext")
	}

	// Fresh-IV: rewriting the identical plaintext re-randomizes.
	rfs, rmem := newCrypt(t, false)
	writeFile(t, rfs, "ibdata", page)
	before, _ := rmem.ReadFile("ibdata")
	f, err := rfs.Open("ibdata")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(page, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	after, _ := rmem.ReadFile("ibdata")
	if bytes.Equal(before, after) {
		t.Fatal("fresh-IV mode: rewrite of identical plaintext left ciphertext unchanged")
	}
	got, err := rfs.ReadFile("ibdata")
	if err != nil || !bytes.Equal(got, page) {
		t.Fatalf("fresh-IV mode: content lost across re-encryption: %v", err)
	}
}

// TestCryptFSSubPageRewrite exercises read-modify-write in fresh mode
// and pure positional XOR in det mode: overwriting a small interior
// range must leave the rest of the page intact.
func TestCryptFSSubPageRewrite(t *testing.T) {
	for _, det := range []bool{true, false} {
		cfs, _ := newCrypt(t, det)
		data := bytes.Repeat([]byte{0x11}, 2*CryptPageSize+100)
		writeFile(t, cfs, "ts", data)
		f, err := cfs.Open("ts")
		if err != nil {
			t.Fatal(err)
		}
		patch := bytes.Repeat([]byte{0xEE}, 300)
		// Straddles the page 0 / page 1 boundary.
		if _, err := f.WriteAt(patch, CryptPageSize-100); err != nil {
			t.Fatalf("det=%v: %v", det, err)
		}
		f.Close()
		copy(data[CryptPageSize-100:], patch)
		got, err := cfs.ReadFile("ts")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("det=%v: sub-page rewrite corrupted surrounding bytes", det)
		}
	}
}

// TestCryptFSGapReadsZero pins the File contract that a write past EOF
// zero-fills the gap: the gap must decrypt to zeros, not keystream.
func TestCryptFSGapReadsZero(t *testing.T) {
	for _, det := range []bool{true, false} {
		cfs, _ := newCrypt(t, det)
		f, err := cfs.Create("gapped")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte("head"), 0); err != nil {
			t.Fatal(err)
		}
		// Leave a gap spanning a page boundary, then grow via Truncate.
		if _, err := f.WriteAt([]byte("tail"), CryptPageSize+50); err != nil {
			t.Fatal(err)
		}
		if err := f.Truncate(2*CryptPageSize + 10); err != nil {
			t.Fatal(err)
		}
		f.Close()
		got, err := cfs.ReadFile("gapped")
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 2*CryptPageSize+10)
		copy(want, "head")
		copy(want[CryptPageSize+50:], "tail")
		if !bytes.Equal(got, want) {
			t.Fatalf("det=%v: gap or growth bytes are not zeros after decrypt", det)
		}
	}
}

// TestCryptFSAtomicWriteAndRename checks the WriteFileAtomic pattern:
// the ".tmp" file is encrypted under its canonical (final) name's
// tweaks, so the rename needs no re-encryption; arbitrary cross-name
// renames are refused in deterministic mode.
func TestCryptFSAtomicWriteAndRename(t *testing.T) {
	for _, det := range []bool{true, false} {
		cfs, mem := newCrypt(t, det)
		content := bytes.Repeat([]byte("checkpoint-meta "), 400)
		if err := WriteFileAtomic(cfs, "ib_checkpoint", content); err != nil {
			t.Fatalf("det=%v: %v", det, err)
		}
		got, err := cfs.ReadFile("ib_checkpoint")
		if err != nil || !bytes.Equal(got, content) {
			t.Fatalf("det=%v: atomic write round trip failed: %v", det, err)
		}
		if raw, _ := mem.ReadFile("ib_checkpoint"); bytes.Contains(raw, []byte("checkpoint-meta")) {
			t.Fatalf("det=%v: plaintext at rest after atomic write", det)
		}
		if !det {
			// Sidecar must have followed the rename.
			if _, err := mem.ReadFile("ib_checkpoint.iv"); err != nil {
				t.Fatalf("sidecar missing after rename: %v", err)
			}
			if _, err := mem.ReadFile("ib_checkpoint.tmp.iv"); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("tmp sidecar stranded: %v", err)
			}
		}
	}
	// Cross-domain rename: deterministic mode refuses up front.
	cfs, _ := newCrypt(t, true)
	writeFile(t, cfs, "a", []byte("x"))
	if err := cfs.Rename("a", "b"); !errors.Is(err, ErrCryptRename) {
		t.Fatalf("cross-domain rename err = %v, want ErrCryptRename", err)
	}
	// Fresh mode allows it (tweaks are stored, not name-derived).
	rfs, _ := newCrypt(t, false)
	writeFile(t, rfs, "a", []byte("moved content"))
	if err := rfs.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	if got, err := rfs.ReadFile("b"); err != nil || string(got) != "moved content" {
		t.Fatalf("fresh-mode rename lost content: %q, %v", got, err)
	}
}

// TestCryptFSRemoveCleansSidecar checks Remove drops the fresh-IV
// sidecar with its file.
func TestCryptFSRemoveCleansSidecar(t *testing.T) {
	cfs, mem := newCrypt(t, false)
	writeFile(t, cfs, "doomed", []byte("bytes"))
	if _, err := mem.ReadFile("doomed.iv"); err != nil {
		t.Fatalf("sidecar not created: %v", err)
	}
	if err := cfs.Remove("doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.ReadFile("doomed.iv"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("sidecar survived remove: %v", err)
	}
}

// TestCryptFSReopenSharedKey models restart-after-crash: a second
// CryptFS instance (same key, fresh state) over the surviving inner
// bytes must read everything back — in fresh mode via the sidecar file.
func TestCryptFSReopenSharedKey(t *testing.T) {
	for _, det := range []bool{true, false} {
		cfs, mem := newCrypt(t, det)
		data := bytes.Repeat([]byte("durable "), 1024)
		f, err := cfs.Create("wal")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if err := cfs.SyncDir(); err != nil {
			t.Fatal(err)
		}

		mem.Crash()
		reopened, err := NewCryptFS(mem, prim.TestKey("cryptfs"), det)
		if err != nil {
			t.Fatal(err)
		}
		got, err := reopened.ReadFile("wal")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("det=%v: reopen after crash failed: %v", det, err)
		}
		// Wrong key must NOT read back plaintext.
		wrong, err := NewCryptFS(mem, prim.TestKey("not-the-key"), det)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := wrong.ReadFile("wal"); err == nil && bytes.Equal(got, data) {
			t.Fatalf("det=%v: wrong key decrypted the file", det)
		}
	}
}

// TestCryptFSBitFlipMapsOneToOne pins satellite 4's mechanism: a single
// flipped ciphertext bit decrypts to the same single flipped plaintext
// bit (positional keystream), so the CRC framing above detects it —
// never a silently scrambled page. The flip is injected below CryptFS
// via FaultFS, i.e. on the at-rest bytes.
func TestCryptFSBitFlipMapsOneToOne(t *testing.T) {
	mem := NewMemFS()
	reg := failpoint.New(42)
	ffs := NewFaultFS(mem, reg)
	cfs, err := NewCryptFS(ffs, prim.TestKey("cryptfs"), true)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x00}, 4096)
	reg.Arm("write:frame", failpoint.KindBitFlip, 1)
	writeFile(t, cfs, "frame", data)

	got, err := cfs.ReadFile("frame")
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		for b := got[i] ^ data[i]; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("one ciphertext bit flip decrypted to %d plaintext bit flips, want exactly 1", diff)
	}
}

// TestCryptFSTornWriteIsPositional pins the torture-harness-critical
// property of deterministic mode: a torn write through CryptFS leaves
// exactly the plaintext prefix a plain FS would — old acked bytes
// outside the torn range are untouched.
func TestCryptFSTornWriteIsPositional(t *testing.T) {
	mem := NewMemFS()
	reg := failpoint.New(7)
	ffs := NewFaultFS(mem, reg)
	cfs, err := NewCryptFS(ffs, prim.TestKey("cryptfs"), true)
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte{0xAA}, 1000)
	writeFile(t, cfs, "redo", old)

	f, err := cfs.Open("redo")
	if err != nil {
		t.Fatal(err)
	}
	reg.Arm("write:redo", failpoint.KindTorn, 1)
	next := bytes.Repeat([]byte{0xBB}, 1000)
	if _, err := f.WriteAt(next, 0); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("torn write err = %v", err)
	}
	f.Close()

	got, err := cfs.ReadFile("redo")
	if err != nil {
		t.Fatal(err)
	}
	// Some prefix is new, the rest must still be the OLD plaintext —
	// not garbage, which a page-granular RMW cipher would produce.
	n := 0
	for n < len(got) && got[n] == 0xBB {
		n++
	}
	for i := n; i < len(got); i++ {
		if got[i] != 0xAA {
			t.Fatalf("byte %d after torn prefix of %d is %#x, want old 0xAA", i, n, got[i])
		}
	}
}
