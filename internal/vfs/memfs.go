package vfs

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// MemFS is an in-memory filesystem that models what a real disk keeps
// across a power cut:
//
//   - file content written but not Sync'd lives only in the volatile
//     view and is lost at Crash();
//   - Sync captures the file's current content into the durable view;
//   - namespace operations (Create, Rename, Remove) are volatile until
//     SyncDir, matching the need to fsync a directory after renaming —
//     a crash before SyncDir brings the old directory entries back.
//
// Crash() atomically replaces the volatile view with the durable one,
// simulating the post-reboot filesystem the recovery path must handle.
type MemFS struct {
	mu  sync.Mutex
	vol map[string]*memFile // current (volatile) namespace
	dur map[string]*memFile // durable namespace (what a crash preserves)
}

type memFile struct {
	fs      *MemFS
	data    []byte // volatile content
	durData []byte // content at last Sync (nil = never synced)
	name    string // volatile name, "" if unlinked
	durName string // durable directory entry, "" if none
}

// NewMemFS creates an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{vol: make(map[string]*memFile), dur: make(map[string]*memFile)}
}

// Create implements FS. Creating over an existing name truncates it in
// the volatile view; the old content stays durable until Sync.
func (fs *MemFS) Create(name string) (File, error) {
	if err := CheckName(name); err != nil {
		return nil, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.vol[name]; ok {
		f.data = nil
		return &memHandle{f: f}, nil
	}
	f := &memFile{fs: fs, name: name}
	fs.vol[name] = f
	return &memHandle{f: f}, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	if err := CheckName(name); err != nil {
		return nil, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.vol[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return &memHandle{f: f}, nil
}

// ReadFile implements FS.
func (fs *MemFS) ReadFile(name string) ([]byte, error) {
	if err := CheckName(name); err != nil {
		return nil, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.vol[name]
	if !ok {
		return nil, &os.PathError{Op: "read", Path: name, Err: os.ErrNotExist}
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

// Rename implements FS. The volatile namespace changes immediately; the
// durable namespace only at SyncDir.
func (fs *MemFS) Rename(oldname, newname string) error {
	if err := CheckName(oldname); err != nil {
		return err
	}
	if err := CheckName(newname); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.vol[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	if tgt, ok := fs.vol[newname]; ok && tgt != f {
		tgt.name = "" // replaced; durable entry (if any) dies at SyncDir
	}
	delete(fs.vol, oldname)
	f.name = newname
	fs.vol[newname] = f
	return nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	if err := CheckName(name); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.vol[name]
	if !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	f.name = ""
	delete(fs.vol, name)
	return nil
}

// SyncDir implements FS: the volatile namespace becomes the durable
// one. File content durability is separate (per-file Sync).
func (fs *MemFS) SyncDir() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, f := range fs.dur {
		f.durName = ""
	}
	fs.dur = make(map[string]*memFile, len(fs.vol))
	for name, f := range fs.vol {
		f.durName = name
		fs.dur[name] = f
	}
	return nil
}

// Crash simulates a power cut + reboot: the volatile view is discarded
// and rebuilt from the durable one. Files whose directory entry was
// never SyncDir'd vanish; content past the last Sync is lost. Open
// handles keep referencing the pre-crash file objects, which are now
// orphaned — as with a dead process, their writes go nowhere visible.
func (fs *MemFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.vol = make(map[string]*memFile, len(fs.dur))
	newDur := make(map[string]*memFile, len(fs.dur))
	for name, f := range fs.dur {
		data := make([]byte, len(f.durData))
		copy(data, f.durData)
		durData := make([]byte, len(f.durData))
		copy(durData, f.durData)
		nf := &memFile{fs: fs, data: data, durData: durData, name: name, durName: name}
		fs.vol[name] = nf
		newDur[name] = nf
	}
	fs.dur = newDur
}

// Names returns the volatile file names, for tests and tooling.
func (fs *MemFS) Names() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.vol))
	for name := range fs.vol {
		out = append(out, name)
	}
	return out
}

type memHandle struct {
	f      *memFile
	closed bool
}

func (h *memHandle) WriteAt(p []byte, off int64) (int, error) {
	if h.closed {
		return 0, os.ErrClosed
	}
	h.f.fs.mu.Lock()
	defer h.f.fs.mu.Unlock()
	end := off + int64(len(p))
	if int64(len(h.f.data)) < end {
		grown := make([]byte, end)
		copy(grown, h.f.data)
		h.f.data = grown
	}
	copy(h.f.data[off:end], p)
	return len(p), nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	if h.closed {
		return 0, os.ErrClosed
	}
	h.f.fs.mu.Lock()
	defer h.f.fs.mu.Unlock()
	if off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) Size() (int64, error) {
	if h.closed {
		return 0, os.ErrClosed
	}
	h.f.fs.mu.Lock()
	defer h.f.fs.mu.Unlock()
	return int64(len(h.f.data)), nil
}

// Sync makes the file's current content durable under its durable
// directory entry (if it has one; a file created and synced but never
// SyncDir'd is unreachable after a crash, like a real orphaned inode).
func (h *memHandle) Sync() error {
	if h.closed {
		return os.ErrClosed
	}
	h.f.fs.mu.Lock()
	defer h.f.fs.mu.Unlock()
	h.f.durData = make([]byte, len(h.f.data))
	copy(h.f.durData, h.f.data)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	if h.closed {
		return os.ErrClosed
	}
	h.f.fs.mu.Lock()
	defer h.f.fs.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("vfs: negative truncate size %d", size)
	}
	if int64(len(h.f.data)) > size {
		h.f.data = h.f.data[:size]
	} else if int64(len(h.f.data)) < size {
		grown := make([]byte, size)
		copy(grown, h.f.data)
		h.f.data = grown
	}
	return nil
}

func (h *memHandle) Close() error {
	h.closed = true
	return nil
}
