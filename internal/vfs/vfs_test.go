package vfs

import (
	"errors"
	"io"
	"os"
	"testing"

	"snapdb/internal/failpoint"
)

func TestMemFSUnsyncedWritesLostAtCrash(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("durable"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("-volatile"), 7); err != nil {
		t.Fatal(err)
	}

	fs.Crash()

	got, err := fs.ReadFile("log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable" {
		t.Fatalf("post-crash content = %q, want %q", got, "durable")
	}
	// The pre-crash handle is orphaned: its writes must not reach the
	// post-crash namespace.
	if _, err := f.WriteAt([]byte("ghost"), 0); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.ReadFile("log")
	if string(got) != "durable" {
		t.Fatalf("orphaned handle write leaked: %q", got)
	}
}

func TestMemFSFileWithoutSyncDirVanishes(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("orphan")
	f.WriteAt([]byte("x"), 0)
	f.Sync() // content durable, but no directory entry
	fs.Crash()
	if _, err := fs.ReadFile("orphan"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan survived crash: err=%v", err)
	}
}

func TestMemFSRenameDurableOnlyAfterSyncDir(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	f.WriteAt([]byte("one"), 0)
	f.Sync()
	fs.SyncDir()

	if err := fs.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	// Volatile view sees the rename immediately.
	if _, err := fs.ReadFile("b"); err != nil {
		t.Fatal(err)
	}
	fs.Crash() // rename never SyncDir'd: old name comes back
	if _, err := fs.ReadFile("a"); err != nil {
		t.Fatalf("pre-rename name lost: %v", err)
	}
	if _, err := fs.ReadFile("b"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unsynced rename survived crash: err=%v", err)
	}

	if err := fs.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	fs.SyncDir()
	fs.Crash()
	if _, err := fs.ReadFile("b"); err != nil {
		t.Fatalf("synced rename lost: %v", err)
	}
	if _, err := fs.ReadFile("a"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("old name survived synced rename + crash")
	}
}

func TestMemFSRenameReplacesTarget(t *testing.T) {
	fs := NewMemFS()
	fa, _ := fs.Create("a")
	fa.WriteAt([]byte("new"), 0)
	fa.Sync()
	fb, _ := fs.Create("b")
	fb.WriteAt([]byte("old"), 0)
	fb.Sync()
	fs.SyncDir()

	fs.Rename("a", "b")
	fs.SyncDir()
	fs.Crash()
	got, err := fs.ReadFile("b")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("b = %q, want %q", got, "new")
	}
}

func TestMemFSTruncateSurvivesSync(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("t")
	f.WriteAt([]byte("0123456789"), 0)
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	f.Sync()
	fs.SyncDir()
	fs.Crash()
	got, _ := fs.ReadFile("t")
	if string(got) != "0123" {
		t.Fatalf("truncated content = %q", got)
	}
}

func TestMemFSReadAtSemantics(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("r")
	f.WriteAt([]byte("hello"), 0)
	buf := make([]byte, 3)
	if n, err := f.ReadAt(buf, 0); n != 3 || err != nil {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if n, err := f.ReadAt(buf, 4); n != 1 || err != io.EOF {
		t.Fatalf("short ReadAt = %d, %v; want 1, EOF", n, err)
	}
	if _, err := f.ReadAt(buf, 10); err != io.EOF {
		t.Fatalf("past-end ReadAt err = %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("closed ReadAt err = %v", err)
	}
}

func TestWriteFileAtomicOldOrNew(t *testing.T) {
	fs := NewMemFS()
	if err := WriteFileAtomic(fs, "cfg", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	got, err := fs.ReadFile("cfg")
	if err != nil || string(got) != "v1" {
		t.Fatalf("after crash: %q, %v", got, err)
	}

	// A crash mid-replacement must leave v1 intact: tear the temp-file
	// write and confirm the original survives.
	reg := failpoint.New(7)
	reg.Arm("write:cfg.tmp", failpoint.KindCrash, 1)
	ffs := NewFaultFS(fs, reg)
	if err := WriteFileAtomic(ffs, "cfg", []byte("v2-much-longer")); !errors.Is(err, failpoint.ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	fs.Crash()
	got, err = fs.ReadFile("cfg")
	if err != nil || string(got) != "v1" {
		t.Fatalf("old content lost in torn replace: %q, %v", got, err)
	}

	// Clean replacement through the (now-dead) fault layer fails; through
	// a fresh one it succeeds and survives a crash.
	if err := WriteFileAtomic(fs, "cfg", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	got, _ = fs.ReadFile("cfg")
	if string(got) != "v2" {
		t.Fatalf("new content = %q", got)
	}
}

func TestFaultFSErrAndTorn(t *testing.T) {
	reg := failpoint.New(3)
	mem := NewMemFS()
	fs := NewFaultFS(mem, reg)
	reg.Arm("write:w", failpoint.KindErr, 1)
	reg.Arm("write:w", failpoint.KindTorn, 1) // second write torn

	f, err := fs.Create("w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("dropped"), 0); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("err fault: %v", err)
	}
	if sz, _ := f.Size(); sz != 0 {
		t.Fatalf("KindErr wrote %d bytes", sz)
	}
	payload := []byte("0123456789abcdef")
	n, err := f.WriteAt(payload, 0)
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("torn fault: %v", err)
	}
	if n >= len(payload) {
		t.Fatalf("torn write applied fully: n=%d", n)
	}
	sz, _ := f.Size()
	if int(sz) != n {
		t.Fatalf("size %d != torn length %d", sz, n)
	}
	// Third write clean.
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
}

func TestFaultFSDropSyncLosesData(t *testing.T) {
	reg := failpoint.New(3)
	mem := NewMemFS()
	fs := NewFaultFS(mem, reg)
	reg.Arm("sync:w", failpoint.KindDropSync, 0)

	f, _ := fs.Create("w")
	f.WriteAt([]byte("data"), 0)
	if err := f.Sync(); err != nil {
		t.Fatalf("dropped sync must report success, got %v", err)
	}
	fs.SyncDir()
	mem.Crash()
	got, err := fs.ReadFile("w")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("dropped sync still persisted %q", got)
	}
}

func TestFaultFSBitFlipSilent(t *testing.T) {
	reg := failpoint.New(3)
	fs := NewFaultFS(NewMemFS(), reg)
	reg.Arm("write:w", failpoint.KindBitFlip, 1)

	f, _ := fs.Create("w")
	payload := []byte("abcdefgh")
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatalf("bit flip must be silent, got %v", err)
	}
	got := make([]byte, len(payload))
	f.ReadAt(got, 0)
	diff := 0
	for i := range got {
		diff += popcount(got[i] ^ payload[i])
	}
	if diff != 1 {
		t.Fatalf("flipped %d bits, want exactly 1 (%q vs %q)", diff, got, payload)
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestFaultFSCrashIsSticky(t *testing.T) {
	reg := failpoint.New(3)
	fs := NewFaultFS(NewMemFS(), reg)
	reg.Arm("sync:w", failpoint.KindCrash, 1)

	f, _ := fs.Create("w")
	f.WriteAt([]byte("x"), 0)
	if err := f.Sync(); !errors.Is(err, failpoint.ErrCrashed) {
		t.Fatalf("sync err = %v", err)
	}
	if _, err := f.WriteAt([]byte("y"), 0); !errors.Is(err, failpoint.ErrCrashed) {
		t.Fatalf("post-crash write err = %v", err)
	}
	if _, err := fs.Create("other"); !errors.Is(err, failpoint.ErrCrashed) {
		t.Fatalf("post-crash create err = %v", err)
	}
	if _, err := fs.ReadFile("w"); !errors.Is(err, failpoint.ErrCrashed) {
		t.Fatalf("post-crash read err = %v", err)
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	fs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(fs, "f", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("f")
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	f, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if sz, _ := f.Size(); sz != 5 {
		t.Fatalf("Size = %d", sz)
	}
	if err := f.Truncate(2); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.ReadFile("f")
	if string(got) != "he" {
		t.Fatalf("truncated = %q", got)
	}
}
