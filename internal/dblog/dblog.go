// Package dblog implements the engine's text query logs: the general
// query log (every statement, including SELECT — rarely enabled in
// production because of its size) and the slow query log (statements
// whose execution exceeded a threshold — commonly enabled). §3 of the
// paper identifies both as disk-resident sources of past read queries.
package dblog

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Entry is one logged statement.
type Entry struct {
	Timestamp int64         // UNIX seconds
	Session   int           // connection id
	Duration  time.Duration // execution time (slow log only; 0 in general log)
	Statement string
}

// GeneralLog records every statement when enabled. Disabled by default,
// like MySQL's general_log.
type GeneralLog struct {
	mu      sync.Mutex
	Enabled bool
	entries []Entry
}

// NewGeneralLog returns a disabled general log.
func NewGeneralLog() *GeneralLog { return &GeneralLog{} }

// Record logs a statement if the log is enabled.
func (g *GeneralLog) Record(e Entry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.Enabled {
		return
	}
	g.entries = append(g.entries, e)
}

// Entries returns all logged statements.
func (g *GeneralLog) Entries() []Entry {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Entry, len(g.entries))
	copy(out, g.entries)
	return out
}

// SlowLog records statements slower than Threshold. Enabled by default,
// mirroring common production MySQL configuration.
type SlowLog struct {
	mu        sync.Mutex
	Enabled   bool
	Threshold time.Duration
	entries   []Entry
}

// DefaultSlowThreshold mirrors MySQL's long_query_time default scaled to
// the simulator's synthetic clock.
const DefaultSlowThreshold = 100 * time.Millisecond

// NewSlowLog returns an enabled slow log with the default threshold.
func NewSlowLog() *SlowLog {
	return &SlowLog{Enabled: true, Threshold: DefaultSlowThreshold}
}

// Record logs the statement if it exceeded the threshold.
func (s *SlowLog) Record(e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.Enabled || e.Duration < s.Threshold {
		return
	}
	s.entries = append(s.entries, e)
}

// Entries returns all logged slow statements.
func (s *SlowLog) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, len(s.entries))
	copy(out, s.entries)
	return out
}

// Render formats entries the way the on-disk log file looks; Parse
// reverses it. One entry per line:
//
//	<ts>\t<session>\t<micros>\t<statement>
func Render(entries []Entry) string {
	var sb strings.Builder
	for _, e := range entries {
		fmt.Fprintf(&sb, "%d\t%d\t%d\t%s\n", e.Timestamp, e.Session, e.Duration.Microseconds(), e.Statement)
	}
	return sb.String()
}

// Parse decodes a Render image.
func Parse(text string) ([]Entry, error) {
	var out []Entry
	for lineNo, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("dblog: malformed line %d: %q", lineNo+1, line)
		}
		var ts int64
		var sess int
		var micros int64
		if _, err := fmt.Sscanf(parts[0], "%d", &ts); err != nil {
			return nil, fmt.Errorf("dblog: line %d timestamp: %w", lineNo+1, err)
		}
		if _, err := fmt.Sscanf(parts[1], "%d", &sess); err != nil {
			return nil, fmt.Errorf("dblog: line %d session: %w", lineNo+1, err)
		}
		if _, err := fmt.Sscanf(parts[2], "%d", &micros); err != nil {
			return nil, fmt.Errorf("dblog: line %d duration: %w", lineNo+1, err)
		}
		out = append(out, Entry{
			Timestamp: ts,
			Session:   sess,
			Duration:  time.Duration(micros) * time.Microsecond,
			Statement: parts[3],
		})
	}
	return out, nil
}
