package dblog

import (
	"testing"
	"time"
)

func TestGeneralLogDisabledByDefault(t *testing.T) {
	g := NewGeneralLog()
	g.Record(Entry{Timestamp: 1, Statement: "SELECT 1"})
	if len(g.Entries()) != 0 {
		t.Error("disabled general log recorded an entry")
	}
	g.Enabled = true
	g.Record(Entry{Timestamp: 2, Statement: "SELECT 2"})
	if len(g.Entries()) != 1 {
		t.Error("enabled general log did not record")
	}
}

func TestSlowLogThreshold(t *testing.T) {
	s := NewSlowLog()
	s.Record(Entry{Duration: 10 * time.Millisecond, Statement: "fast"})
	s.Record(Entry{Duration: 500 * time.Millisecond, Statement: "slow"})
	entries := s.Entries()
	if len(entries) != 1 || entries[0].Statement != "slow" {
		t.Errorf("entries = %+v", entries)
	}
	s.Enabled = false
	s.Record(Entry{Duration: time.Second, Statement: "ignored"})
	if len(s.Entries()) != 1 {
		t.Error("disabled slow log recorded")
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	entries := []Entry{
		{Timestamp: 1000, Session: 3, Duration: 150 * time.Millisecond, Statement: "SELECT * FROM t WHERE a = 1"},
		{Timestamp: 1001, Session: 4, Duration: 0, Statement: "INSERT INTO t (a) VALUES (2)"},
	}
	got, err := Parse(Render(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d entries", len(got))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], entries[i])
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := Parse("not a log line\n"); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := Parse("abc\t1\t2\tSELECT 1\n"); err == nil {
		t.Error("bad timestamp accepted")
	}
}

func TestParseEmptyAndBlankLines(t *testing.T) {
	got, err := Parse("\n\n")
	if err != nil || len(got) != 0 {
		t.Errorf("blank input: %d entries, err=%v", len(got), err)
	}
}

func TestParsePreservesTabsInStatement(t *testing.T) {
	in := []Entry{{Timestamp: 1, Session: 1, Duration: 0, Statement: "SELECT\t'tabbed'"}}
	got, err := Parse(Render(in))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Statement != "SELECT\t'tabbed'" {
		t.Errorf("statement = %q", got[0].Statement)
	}
}
