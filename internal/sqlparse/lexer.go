// Package sqlparse implements the SQL dialect understood by the snapdb
// engine: CREATE TABLE, INSERT, SELECT, UPDATE, and DELETE with simple
// conjunctive WHERE clauses. It also implements the statement-digest
// canonicalization used by MySQL's performance_schema, which strips
// literal arguments while preserving the select-from-where structure —
// the property §4 of the paper relies on.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokSymbol // punctuation and operators: ( ) , * = < > <= >= != ;
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "ident"
	case TokKeyword:
		return "keyword"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokSymbol:
		return "symbol"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Token is a single lexical token. Text holds the raw text; for TokString
// it is the unquoted content, and for TokKeyword the uppercased word.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	"CREATE": true, "TABLE": true, "PRIMARY": true, "KEY": true,
	"INT": true, "TEXT": true, "COUNT": true, "SUM": true,
	"ORDER": true, "BY": true, "LIMIT": true, "BETWEEN": true,
	"NOT": true, "NULL": true, "ASC": true, "DESC": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true,
	"INDEX": true, "ON": true, "EXPLAIN": true, "ANALYZE": true,
	"DROP": true, "TRANSACTION": true, "READ": true, "ONLY": true,
	"WRITE": true,
}

// Lexer splits SQL text into tokens.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token, or an error on malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'' || c == '"':
		return l.lexString(c)
	case unicode.IsDigit(rune(c)) || (c == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
		return l.lexNumber()
	case isIdentStart(c):
		return l.lexWord()
	}
	// Two-character operators first.
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		switch two {
		case "<=", ">=", "!=", "<>":
			l.pos += 2
			if two == "<>" {
				two = "!="
			}
			return Token{Kind: TokSymbol, Text: two, Pos: start}, nil
		}
	}
	switch c {
	case '(', ')', ',', '*', '=', '<', '>', ';', '.':
		l.pos++
		return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, l.pos)
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *Lexer) lexString(quote byte) (Token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			// Doubled quote is an escaped quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				sb.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("sqlparse: unterminated string starting at offset %d", start)
}

func (l *Lexer) lexNumber() (Token, error) {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.') {
		l.pos++
	}
	return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
}

func (l *Lexer) lexWord() (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		return Token{Kind: TokKeyword, Text: upper, Pos: start}, nil
	}
	return Token{Kind: TokIdent, Text: word, Pos: start}, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// Tokenize lexes the whole input.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
