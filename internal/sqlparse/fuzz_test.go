package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParseExplain exercises the EXPLAIN path of the parser: whatever
// the payload, Parse must not panic, and any statement that parses
// must render SQL text that re-parses to the same rendering (the
// canonical-SQL fixed point the plan cache keys on).
func FuzzParseExplain(f *testing.F) {
	f.Add("EXPLAIN SELECT * FROM t")
	f.Add("EXPLAIN SELECT id, name FROM users WHERE id = 1")
	f.Add("explain select count(*) from t where age >= 10 and age <= 20")
	f.Add("EXPLAIN UPDATE t SET a = 1 WHERE id = 2")
	f.Add("EXPLAIN DELETE FROM t WHERE id = 3")
	f.Add("EXPLAIN SELECT * FROM t ORDER BY a DESC LIMIT 5")
	f.Add("EXPLAIN EXPLAIN SELECT * FROM t")
	f.Add("EXPLAIN INSERT INTO t (a) VALUES (1)")
	f.Add("EXPLAIN BEGIN")
	f.Add("EXPLAIN")
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse("EXPLAIN " + src)
		if err != nil {
			return
		}
		ex, ok := stmt.(*Explain)
		if !ok {
			t.Fatalf("EXPLAIN %q parsed to %T, want *Explain", src, stmt)
		}
		if ex.Stmt == nil {
			t.Fatalf("EXPLAIN %q parsed with nil inner statement", src)
		}
		if _, nested := ex.Stmt.(*Explain); nested {
			t.Fatalf("EXPLAIN %q parsed with nested EXPLAIN", src)
		}
		sql := stmt.SQL()
		if !strings.HasPrefix(sql, "EXPLAIN ") {
			t.Fatalf("rendering of EXPLAIN %q lost the keyword: %q", src, sql)
		}
		again, err := Parse(sql)
		if err != nil {
			t.Fatalf("re-parse of rendered %q failed: %v", sql, err)
		}
		if again.SQL() != sql {
			t.Fatalf("rendering not a fixed point: %q -> %q", sql, again.SQL())
		}
	})
}
