package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParseExplain exercises the EXPLAIN path of the parser: whatever
// the payload, Parse must not panic, and any statement that parses
// must render SQL text that re-parses to the same rendering (the
// canonical-SQL fixed point the plan cache keys on).
func FuzzParseExplain(f *testing.F) {
	f.Add("EXPLAIN SELECT * FROM t")
	f.Add("EXPLAIN SELECT id, name FROM users WHERE id = 1")
	f.Add("explain select count(*) from t where age >= 10 and age <= 20")
	f.Add("EXPLAIN UPDATE t SET a = 1 WHERE id = 2")
	f.Add("EXPLAIN DELETE FROM t WHERE id = 3")
	f.Add("EXPLAIN SELECT * FROM t ORDER BY a DESC LIMIT 5")
	f.Add("EXPLAIN EXPLAIN SELECT * FROM t")
	f.Add("EXPLAIN INSERT INTO t (a) VALUES (1)")
	f.Add("EXPLAIN BEGIN")
	f.Add("EXPLAIN")
	f.Add("EXPLAIN ANALYZE SELECT * FROM t ORDER BY a LIMIT 0")
	f.Add("EXPLAIN ANALYZE SELECT name FROM t WHERE a >= 1 ORDER BY a DESC LIMIT 3")
	f.Add("EXPLAIN ANALYZE UPDATE t SET a = 1 WHERE id = 2")
	f.Add("EXPLAIN ANALYZE DELETE FROM t WHERE id = 3")
	f.Add("EXPLAIN ANALYZE EXPLAIN SELECT * FROM t")
	f.Add("EXPLAIN ANALYZE")
	f.Add("EXPLAIN SELECT COUNT(*) FROM t LIMIT 0")
	f.Add("EXPLAIN SELECT COUNT(*) FROM t ORDER BY a")
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse("EXPLAIN " + src)
		if err != nil {
			return
		}
		ex, ok := stmt.(*Explain)
		if !ok {
			t.Fatalf("EXPLAIN %q parsed to %T, want *Explain", src, stmt)
		}
		if ex.Stmt == nil {
			t.Fatalf("EXPLAIN %q parsed with nil inner statement", src)
		}
		if _, nested := ex.Stmt.(*Explain); nested {
			t.Fatalf("EXPLAIN %q parsed with nested EXPLAIN", src)
		}
		sql := stmt.SQL()
		if !strings.HasPrefix(sql, "EXPLAIN ") {
			t.Fatalf("rendering of EXPLAIN %q lost the keyword: %q", src, sql)
		}
		again, err := Parse(sql)
		if err != nil {
			t.Fatalf("re-parse of rendered %q failed: %v", sql, err)
		}
		if again.SQL() != sql {
			t.Fatalf("rendering not a fixed point: %q -> %q", sql, again.SQL())
		}
	})
}

// FuzzParseSelect exercises the SELECT tail of the grammar — ORDER BY,
// ASC/DESC, and LIMIT — checking the parser's LIMIT invariants: the
// sentinel is exactly -1 for "no LIMIT", a parsed LIMIT is never
// negative, and rendered SQL is a re-parse fixed point (so LIMIT 0 and
// no-LIMIT can never collapse into the same canonical text).
func FuzzParseSelect(f *testing.F) {
	f.Add("SELECT * FROM t")
	f.Add("SELECT * FROM t LIMIT 0")
	f.Add("SELECT * FROM t LIMIT 1")
	f.Add("SELECT a, b FROM t WHERE a >= 1 ORDER BY b LIMIT 10")
	f.Add("SELECT a FROM t ORDER BY a DESC LIMIT 0")
	f.Add("SELECT a FROM t ORDER BY a ASC")
	f.Add("SELECT COUNT(*) FROM t LIMIT 0")
	f.Add("SELECT SUM(v) FROM t ORDER BY v")
	f.Add("SELECT * FROM t ORDER BY a LIMIT -1")
	f.Add("SELECT * FROM t LIMIT 999999999999999999999")
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		sel, ok := stmt.(*Select)
		if !ok {
			return
		}
		if sel.Limit < -1 {
			t.Fatalf("Parse(%q) produced Limit %d < -1", src, sel.Limit)
		}
		if sel.OrderBy != "" {
			for _, e := range sel.Exprs {
				if e.Agg != AggNone {
					t.Fatalf("Parse(%q) accepted ORDER BY over aggregate %s", src, e.SQL())
				}
			}
		}
		sql := stmt.SQL()
		// " LIMIT " with spaces: an identifier may legally contain the
		// substring (e.g. a table named ALIMIT).
		if sel.Limit == -1 && strings.Contains(sql, " LIMIT ") {
			t.Fatalf("no-LIMIT select rendered a LIMIT clause: %q", sql)
		}
		again, err := Parse(sql)
		if err != nil {
			t.Fatalf("re-parse of rendered %q failed: %v", sql, err)
		}
		if again.SQL() != sql {
			t.Fatalf("rendering not a fixed point: %q -> %q", sql, again.SQL())
		}
	})
}
