package sqlparse

import (
	"errors"
	"fmt"
	"strconv"
)

// ErrUnknownFunction reports a function call in a SELECT list that is
// not one of the supported aggregates. It is typed so callers (and the
// parser-rejection tests) can match it with errors.Is.
var ErrUnknownFunction = errors.New("sqlparse: unknown function")

// ErrAggregateOrderBy reports ORDER BY applied to a bare aggregate
// select list. A single-group aggregate yields one row, so an ORDER BY
// there is meaningless; rejecting it is MySQL-compatible enough and far
// better than silently dropping the clause.
var ErrAggregateOrderBy = errors.New("sqlparse: ORDER BY cannot be applied to an aggregate select list")

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks []Token
	pos  int
	src  string
}

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.peek().Kind == TokSymbol && p.peek().Text == ";" {
		p.pos++
	}
	if p.peek().Kind != TokEOF {
		return nil, fmt.Errorf("sqlparse: trailing input at offset %d: %q", p.peek().Pos, p.peek().Text)
	}
	return stmt, nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) expectKeyword(kw string) error {
	t := p.next()
	if t.Kind != TokKeyword || t.Text != kw {
		return fmt.Errorf("sqlparse: expected %s at offset %d, got %q", kw, t.Pos, t.Text)
	}
	return nil
}

func (p *Parser) expectSymbol(sym string) error {
	t := p.next()
	if t.Kind != TokSymbol || t.Text != sym {
		return fmt.Errorf("sqlparse: expected %q at offset %d, got %q", sym, t.Pos, t.Text)
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	t := p.next()
	if t.Kind != TokIdent {
		return "", fmt.Errorf("sqlparse: expected identifier at offset %d, got %q", t.Pos, t.Text)
	}
	return t.Text, nil
}

func (p *Parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, fmt.Errorf("sqlparse: expected statement keyword at offset %d, got %q", t.Pos, t.Text)
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "SET":
		return p.parseSetTxn()
	case "BEGIN":
		p.next()
		return &TxnControl{Op: TxnBegin}, nil
	case "COMMIT":
		p.next()
		return &TxnControl{Op: TxnCommit}, nil
	case "ROLLBACK":
		p.next()
		return &TxnControl{Op: TxnRollback}, nil
	case "EXPLAIN":
		return p.parseExplain()
	case "ANALYZE":
		return p.parseAnalyze()
	default:
		return nil, fmt.Errorf("sqlparse: unsupported statement %q", t.Text)
	}
}

// parseExplain parses EXPLAIN [ANALYZE] <statement>. EXPLAIN does not
// nest.
func (p *Parser) parseExplain() (Statement, error) {
	p.next() // EXPLAIN
	analyze := false
	if t := p.peek(); t.Kind == TokKeyword && t.Text == "ANALYZE" {
		p.next()
		analyze = true
	}
	if t := p.peek(); t.Kind == TokKeyword && t.Text == "EXPLAIN" {
		return nil, fmt.Errorf("sqlparse: EXPLAIN cannot be nested (offset %d)", t.Pos)
	}
	inner, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return &Explain{Stmt: inner, Analyze: analyze}, nil
}

// parseDrop parses DROP TABLE <name>.
func (p *Parser) parseDrop() (Statement, error) {
	p.next() // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	return &DropTable{Table: name}, nil
}

// parseSetTxn parses SET TRANSACTION READ ONLY | READ WRITE (the
// statement-scoped MySQL form: it applies to the next BEGIN).
func (p *Parser) parseSetTxn() (Statement, error) {
	p.next() // SET
	if err := p.expectKeyword("TRANSACTION"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("READ"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.Kind == TokKeyword && t.Text == "ONLY" {
		return &SetTxn{ReadOnly: true}, nil
	}
	if t.Kind == TokKeyword && t.Text == "WRITE" {
		return &SetTxn{}, nil
	}
	return nil, fmt.Errorf("sqlparse: expected ONLY or WRITE at offset %d, got %q", t.Pos, t.Text)
}

// parseAnalyze parses ANALYZE TABLE <name>.
func (p *Parser) parseAnalyze() (Statement, error) {
	p.next() // ANALYZE
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	return &AnalyzeTable{Table: name}, nil
}

func (p *Parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	if p.peek().Kind == TokKeyword && p.peek().Text == "INDEX" {
		return p.parseCreateIndex()
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		colName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		t := p.next()
		if t.Kind != TokKeyword || (t.Text != "INT" && t.Text != "TEXT") {
			return nil, fmt.Errorf("sqlparse: expected column type at offset %d, got %q", t.Pos, t.Text)
		}
		col := ColumnDef{Name: colName}
		if t.Text == "TEXT" {
			col.Type = TypeText
		}
		if p.peek().Kind == TokKeyword && p.peek().Text == "PRIMARY" {
			p.next()
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			col.PrimaryKey = true
		}
		cols = append(cols, col)
		t = p.next()
		if t.Kind == TokSymbol && t.Text == "," {
			continue
		}
		if t.Kind == TokSymbol && t.Text == ")" {
			break
		}
		return nil, fmt.Errorf("sqlparse: expected ',' or ')' at offset %d, got %q", t.Pos, t.Text)
	}
	return &CreateTable{Table: name, Columns: cols}, nil
}

func (p *Parser) parseCreateIndex() (Statement, error) {
	p.next() // INDEX
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: table, Column: col}, nil
}

func (p *Parser) parseSelect() (Statement, error) {
	p.next() // SELECT
	var exprs []SelectExpr
	for {
		e, err := p.parseSelectExpr()
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		if p.peek().Kind == TokSymbol && p.peek().Text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	sel := &Select{Exprs: exprs, Table: table, Limit: -1}
	if p.peek().Kind == TokKeyword && p.peek().Text == "WHERE" {
		p.next()
		w, err := p.parseWhere()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.peek().Kind == TokKeyword && p.peek().Text == "ORDER" {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		sel.OrderBy = col
		if p.peek().Kind == TokKeyword && (p.peek().Text == "DESC" || p.peek().Text == "ASC") {
			sel.Desc = p.next().Text == "DESC"
		}
		for _, e := range exprs {
			if e.Agg != AggNone {
				return nil, fmt.Errorf("%w (ORDER BY %s over %s)", ErrAggregateOrderBy, col, e.SQL())
			}
		}
	}
	if p.peek().Kind == TokKeyword && p.peek().Text == "LIMIT" {
		p.next()
		t := p.next()
		if t.Kind != TokNumber {
			return nil, fmt.Errorf("sqlparse: expected LIMIT count at offset %d", t.Pos)
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sqlparse: bad LIMIT %q", t.Text)
		}
		sel.Limit = n
	}
	return sel, nil
}

// parseTableName accepts ident or ident.ident (schema-qualified, as in
// information_schema.processlist) and returns the joined name.
func (p *Parser) parseTableName() (string, error) {
	name, err := p.expectIdent()
	if err != nil {
		return "", err
	}
	if p.peek().Kind == TokSymbol && p.peek().Text == "." {
		p.next()
		rest, err := p.expectIdent()
		if err != nil {
			return "", err
		}
		name = name + "." + rest
	}
	return name, nil
}

func (p *Parser) parseSelectExpr() (SelectExpr, error) {
	t := p.peek()
	if t.Kind == TokSymbol && t.Text == "*" {
		p.next()
		return SelectExpr{Column: "*"}, nil
	}
	if t.Kind == TokKeyword && (t.Text == "COUNT" || t.Text == "SUM") {
		p.next()
		agg := AggCount
		if t.Text == "SUM" {
			agg = AggSum
		}
		if err := p.expectSymbol("("); err != nil {
			return SelectExpr{}, err
		}
		var col string
		if p.peek().Kind == TokSymbol && p.peek().Text == "*" {
			p.next()
			col = "*"
		} else {
			c, err := p.expectIdent()
			if err != nil {
				return SelectExpr{}, err
			}
			col = c
		}
		if err := p.expectSymbol(")"); err != nil {
			return SelectExpr{}, err
		}
		return SelectExpr{Agg: agg, Column: col}, nil
	}
	col, err := p.expectIdent()
	if err != nil {
		return SelectExpr{}, err
	}
	// An identifier followed by '(' is a function call we don't
	// implement: reject it here with a typed error instead of failing
	// later with a misleading "expected FROM".
	if nt := p.peek(); nt.Kind == TokSymbol && nt.Text == "(" {
		return SelectExpr{}, fmt.Errorf("%w %q at offset %d (supported aggregates: COUNT, SUM)",
			ErrUnknownFunction, col, t.Pos)
	}
	return SelectExpr{Column: col}, nil
}

func (p *Parser) parseWhere() (Where, error) {
	var w Where
	for {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		w = append(w, pred...)
		if p.peek().Kind == TokKeyword && p.peek().Text == "AND" {
			p.next()
			continue
		}
		return w, nil
	}
}

// parsePredicate parses one predicate; BETWEEN expands to two predicates.
func (p *Parser) parsePredicate() (Where, error) {
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokKeyword && p.peek().Text == "BETWEEN" {
		p.next()
		lo, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		return Where{
			{Column: col, Op: OpGe, Arg: lo},
			{Column: col, Op: OpLe, Arg: hi},
		}, nil
	}
	t := p.next()
	if t.Kind != TokSymbol {
		return nil, fmt.Errorf("sqlparse: expected comparison operator at offset %d, got %q", t.Pos, t.Text)
	}
	var op CompareOp
	switch t.Text {
	case "=":
		op = OpEq
	case "!=":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return nil, fmt.Errorf("sqlparse: unknown operator %q at offset %d", t.Text, t.Pos)
	}
	v, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	return Where{{Column: col, Op: op, Arg: v}}, nil
}

func (p *Parser) parseValue() (Value, error) {
	t := p.next()
	switch t.Kind {
	case TokNumber:
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("sqlparse: bad number %q at offset %d", t.Text, t.Pos)
		}
		return IntValue(n), nil
	case TokString:
		return StrValue(t.Text), nil
	default:
		return Value{}, fmt.Errorf("sqlparse: expected literal at offset %d, got %q", t.Pos, t.Text)
	}
}

func (p *Parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ins.Columns = append(ins.Columns, col)
		t := p.next()
		if t.Kind == TokSymbol && t.Text == "," {
			continue
		}
		if t.Kind == TokSymbol && t.Text == ")" {
			break
		}
		return nil, fmt.Errorf("sqlparse: expected ',' or ')' at offset %d", t.Pos)
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Value
		for {
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			t := p.next()
			if t.Kind == TokSymbol && t.Text == "," {
				continue
			}
			if t.Kind == TokSymbol && t.Text == ")" {
				break
			}
			return nil, fmt.Errorf("sqlparse: expected ',' or ')' at offset %d", t.Pos)
		}
		if len(row) != len(ins.Columns) {
			return nil, fmt.Errorf("sqlparse: tuple has %d values for %d columns", len(row), len(ins.Columns))
		}
		ins.Rows = append(ins.Rows, row)
		if p.peek().Kind == TokSymbol && p.peek().Text == "," {
			p.next()
			continue
		}
		return ins, nil
	}
}

func (p *Parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	table, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	upd := &Update{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, Assignment{Column: col, Value: v})
		if p.peek().Kind == TokSymbol && p.peek().Text == "," {
			p.next()
			continue
		}
		break
	}
	if p.peek().Kind == TokKeyword && p.peek().Text == "WHERE" {
		p.next()
		w, err := p.parseWhere()
		if err != nil {
			return nil, err
		}
		upd.Where = w
	}
	return upd, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.peek().Kind == TokKeyword && p.peek().Text == "WHERE" {
		p.next()
		w, err := p.parseWhere()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}
