package sqlparse

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParseCreateTable(t *testing.T) {
	stmt := mustParse(t, "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, age INT)")
	ct, ok := stmt.(*CreateTable)
	if !ok {
		t.Fatalf("got %T, want *CreateTable", stmt)
	}
	if ct.Table != "customers" {
		t.Errorf("table = %q", ct.Table)
	}
	if len(ct.Columns) != 3 {
		t.Fatalf("got %d columns", len(ct.Columns))
	}
	if !ct.Columns[0].PrimaryKey || ct.Columns[0].Type != TypeInt {
		t.Errorf("id column parsed wrong: %+v", ct.Columns[0])
	}
	if ct.Columns[1].Type != TypeText {
		t.Errorf("name column type = %v", ct.Columns[1].Type)
	}
}

func TestParseSelectStar(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM customers WHERE state = 'IN'")
	sel := stmt.(*Select)
	if sel.Table != "customers" || len(sel.Exprs) != 1 || sel.Exprs[0].Column != "*" {
		t.Errorf("unexpected select: %+v", sel)
	}
	if len(sel.Where) != 1 || sel.Where[0].Column != "state" || sel.Where[0].Op != OpEq || sel.Where[0].Arg.Str != "IN" {
		t.Errorf("unexpected where: %+v", sel.Where)
	}
}

func TestParseSelectConjunction(t *testing.T) {
	sel := mustParse(t, "SELECT name, age FROM customers WHERE state = 'IN' AND age >= 25").(*Select)
	if len(sel.Exprs) != 2 {
		t.Fatalf("exprs = %d", len(sel.Exprs))
	}
	if len(sel.Where) != 2 {
		t.Fatalf("where len = %d", len(sel.Where))
	}
	if sel.Where[1].Op != OpGe || sel.Where[1].Arg.Int != 25 {
		t.Errorf("second predicate = %+v", sel.Where[1])
	}
}

func TestParseBetweenExpands(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t WHERE v BETWEEN 10 AND 20").(*Select)
	if len(sel.Where) != 2 {
		t.Fatalf("where len = %d, want 2", len(sel.Where))
	}
	if sel.Where[0].Op != OpGe || sel.Where[0].Arg.Int != 10 {
		t.Errorf("lower bound = %+v", sel.Where[0])
	}
	if sel.Where[1].Op != OpLe || sel.Where[1].Arg.Int != 20 {
		t.Errorf("upper bound = %+v", sel.Where[1])
	}
}

func TestParseAggregates(t *testing.T) {
	sel := mustParse(t, "SELECT COUNT(*) FROM t WHERE a = 10").(*Select)
	if sel.Exprs[0].Agg != AggCount || sel.Exprs[0].Column != "*" {
		t.Errorf("count expr = %+v", sel.Exprs[0])
	}
	sel = mustParse(t, "SELECT SUM(c3) FROM t").(*Select)
	if sel.Exprs[0].Agg != AggSum || sel.Exprs[0].Column != "c3" {
		t.Errorf("sum expr = %+v", sel.Exprs[0])
	}
}

func TestParseOrderLimit(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t ORDER BY v DESC LIMIT 10").(*Select)
	if sel.OrderBy != "v" || !sel.Desc || sel.Limit != 10 {
		t.Errorf("order/limit = %q desc=%v limit=%d", sel.OrderBy, sel.Desc, sel.Limit)
	}
}

func TestParseNoLimitSentinel(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t").(*Select)
	if sel.Limit != -1 {
		t.Errorf("no-LIMIT sentinel = %d, want -1", sel.Limit)
	}
	if strings.Contains(sel.SQL(), "LIMIT") {
		t.Errorf("SQL() renders a LIMIT clause without one: %q", sel.SQL())
	}
}

func TestParseLimitZero(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t LIMIT 0").(*Select)
	if sel.Limit != 0 {
		t.Errorf("LIMIT 0 parsed as %d", sel.Limit)
	}
	want := "SELECT * FROM t LIMIT 0"
	if got := sel.SQL(); got != want {
		t.Errorf("SQL() = %q, want %q", got, want)
	}
}

func TestParseAggregateOrderByRejected(t *testing.T) {
	for _, src := range []string{
		"SELECT COUNT(*) FROM t ORDER BY a",
		"SELECT SUM(v) FROM t WHERE v > 1 ORDER BY v DESC LIMIT 3",
	} {
		_, err := Parse(src)
		if err == nil {
			t.Fatalf("Parse(%q) succeeded, want ErrAggregateOrderBy", src)
		}
		if !errors.Is(err, ErrAggregateOrderBy) {
			t.Errorf("Parse(%q) error %v does not wrap ErrAggregateOrderBy", src, err)
		}
	}
	// LIMIT without ORDER BY over an aggregate stays legal.
	sel := mustParse(t, "SELECT COUNT(*) FROM t LIMIT 0").(*Select)
	if sel.Limit != 0 {
		t.Errorf("aggregate LIMIT 0 parsed as %d", sel.Limit)
	}
}

func TestParseInsertMultiRow(t *testing.T) {
	ins := mustParse(t, "INSERT INTO t (id, name) VALUES (1, 'a'), (2, 'b')").(*Insert)
	if len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Fatalf("rows=%d cols=%d", len(ins.Rows), len(ins.Columns))
	}
	if !ins.Rows[0][0].IsInt || ins.Rows[0][0].Int != 1 || ins.Rows[1][1].Str != "b" {
		t.Errorf("rows = %+v", ins.Rows)
	}
}

func TestParseInsertArityMismatch(t *testing.T) {
	if _, err := Parse("INSERT INTO t (id, name) VALUES (1)"); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestParseUpdate(t *testing.T) {
	upd := mustParse(t, "UPDATE t SET name = 'x', age = 30 WHERE id = 7").(*Update)
	if len(upd.Set) != 2 || upd.Set[0].Column != "name" || upd.Set[1].Value.Int != 30 {
		t.Errorf("set = %+v", upd.Set)
	}
	if len(upd.Where) != 1 || upd.Where[0].Arg.Int != 7 {
		t.Errorf("where = %+v", upd.Where)
	}
}

func TestParseDelete(t *testing.T) {
	del := mustParse(t, "DELETE FROM t WHERE id != 3").(*Delete)
	if del.Table != "t" || del.Where[0].Op != OpNe {
		t.Errorf("delete = %+v", del)
	}
}

func TestParseSchemaQualifiedTable(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM information_schema.processlist").(*Select)
	if sel.Table != "information_schema.processlist" {
		t.Errorf("table = %q", sel.Table)
	}
}

func TestParseStringEscapes(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t WHERE name = 'O''Brien'").(*Select)
	if sel.Where[0].Arg.Str != "O'Brien" {
		t.Errorf("escaped string = %q", sel.Where[0].Arg.Str)
	}
}

func TestParseNegativeNumber(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t WHERE v > -42").(*Select)
	if sel.Where[0].Arg.Int != -42 {
		t.Errorf("negative literal = %+v", sel.Where[0].Arg)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROB x",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a ==",
		"INSERT INTO t VALUES (1)",
		"SELECT * FROM t WHERE name = 'unterminated",
		"SELECT * FROM t extra garbage",
		"CREATE TABLE t (x FLOAT)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestSQLRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT * FROM customers WHERE state = 'IN' AND age >= 25",
		"SELECT COUNT(*) FROM t WHERE a = 10",
		"INSERT INTO t (id, name) VALUES (1, 'a'), (2, 'b')",
		"UPDATE t SET name = 'x' WHERE id = 7",
		"DELETE FROM t WHERE id != 3",
		"CREATE TABLE customers (id INT PRIMARY KEY, name TEXT)",
		"SELECT v FROM t ORDER BY v DESC LIMIT 5",
		"SELECT v FROM t LIMIT 0",
		"EXPLAIN ANALYZE SELECT v FROM t ORDER BY v LIMIT 2",
	}
	for _, src := range srcs {
		stmt := mustParse(t, src)
		again := mustParse(t, stmt.SQL())
		if stmt.SQL() != again.SQL() {
			t.Errorf("SQL round trip not a fixed point:\n first: %s\nsecond: %s", stmt.SQL(), again.SQL())
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntValue(1), IntValue(2), -1},
		{IntValue(2), IntValue(2), 0},
		{IntValue(3), IntValue(2), 1},
		{StrValue("a"), StrValue("b"), -1},
		{StrValue("b"), StrValue("b"), 0},
		{IntValue(9), StrValue("a"), -1}, // ints sort before strings
		{StrValue("a"), IntValue(9), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareOpEval(t *testing.T) {
	ops := []struct {
		op CompareOp
		lt bool // expected when comparison is -1
		eq bool
		gt bool
	}{
		{OpEq, false, true, false},
		{OpNe, true, false, true},
		{OpLt, true, false, false},
		{OpLe, true, true, false},
		{OpGt, false, false, true},
		{OpGe, false, true, true},
	}
	for _, c := range ops {
		if c.op.Eval(-1) != c.lt || c.op.Eval(0) != c.eq || c.op.Eval(1) != c.gt {
			t.Errorf("%v eval wrong: %v %v %v", c.op, c.op.Eval(-1), c.op.Eval(0), c.op.Eval(1))
		}
	}
}

// --- Digest tests: the paper's §4 examples verbatim. ---

func TestDigestPaperExamples(t *testing.T) {
	a := Digest("SELECT * FROM CUSTOMERS WHERE STATE='IN'")
	b := Digest("SELECT * FROM CUSTOMERS WHERE STATE='AZ'")
	if a != b {
		t.Errorf("same-structure queries digested differently:\n%s\n%s", a, b)
	}
	c := Digest("SELECT * FROM CUSTOMERS WHERE AGE >=25")
	d := Digest("SELECT * FROM CUSTOMERS WHERE STATE='IN' AND AGE >=25")
	if a == c {
		t.Error("different attribute digested same as state query")
	}
	if a == d || c == d {
		t.Error("two-constraint WHERE digested same as one-constraint")
	}
}

func TestDigestReplacesAllLiterals(t *testing.T) {
	got := Digest("INSERT INTO t (id, name) VALUES (17, 'secret')")
	if strings.Contains(got, "17") || strings.Contains(got, "secret") {
		t.Errorf("digest leaks literals: %s", got)
	}
	if !strings.Contains(got, "?") {
		t.Errorf("digest has no placeholders: %s", got)
	}
}

func TestDigestCaseInsensitiveKeywords(t *testing.T) {
	if Digest("select * from t where a = 1") != Digest("SELECT * FROM t WHERE a = 2") {
		t.Error("keyword case changed the digest")
	}
}

func TestDigestPreservesIdentifiers(t *testing.T) {
	got := Digest("SELECT c3 FROM table2 WHERE c3 = 5")
	if !strings.Contains(got, "c3") || !strings.Contains(got, "table2") {
		t.Errorf("digest lost identifiers: %s", got)
	}
}

func TestDigestHashStable(t *testing.T) {
	h1 := DigestHash("SELECT * FROM t WHERE a = 1")
	h2 := DigestHash("SELECT * FROM t WHERE a = 999")
	if h1 != h2 {
		t.Error("hash differs for same canonical form")
	}
	if len(h1) != 32 {
		t.Errorf("hash length = %d", len(h1))
	}
}

func TestDigestMalformedInputDoesNotPanic(t *testing.T) {
	got := Digest("SELECT  * FROM t WHERE junk # $ %")
	if got == "" {
		t.Error("digest of malformed input is empty")
	}
}

func TestQuickDigestLiteralIndependence(t *testing.T) {
	f := func(a, b int64) bool {
		qa := Digest("SELECT * FROM t WHERE v = " + IntValue(a).SQL())
		qb := Digest("SELECT * FROM t WHERE v = " + IntValue(b).SQL())
		return qa == qb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringLiteralRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "\x00") {
			return true // NUL not representable in our SQL text
		}
		src := "SELECT * FROM t WHERE name = " + StrValue(s).SQL()
		stmt, err := Parse(src)
		if err != nil {
			return false
		}
		sel, ok := stmt.(*Select)
		return ok && len(sel.Where) == 1 && sel.Where[0].Arg.Str == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkParseSelect(b *testing.B) {
	src := "SELECT name, age FROM customers WHERE state = 'IN' AND age >= 25 ORDER BY age DESC LIMIT 10"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDigest(b *testing.B) {
	src := "SELECT * FROM CUSTOMERS WHERE STATE='IN' AND AGE >= 25"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Digest(src)
	}
}

func TestParseExplain(t *testing.T) {
	stmt := mustParse(t, "EXPLAIN SELECT name FROM customers WHERE age >= 25 ORDER BY age DESC LIMIT 3")
	ex, ok := stmt.(*Explain)
	if !ok {
		t.Fatalf("got %T, want *Explain", stmt)
	}
	sel, ok := ex.Stmt.(*Select)
	if !ok {
		t.Fatalf("inner statement is %T, want *Select", ex.Stmt)
	}
	if sel.Table != "customers" || sel.OrderBy != "age" || !sel.Desc || sel.Limit != 3 {
		t.Errorf("inner select misparsed: %+v", sel)
	}
	want := "EXPLAIN SELECT name FROM customers WHERE age >= 25 ORDER BY age DESC LIMIT 3"
	if got := ex.SQL(); got != want {
		t.Errorf("SQL() = %q, want %q", got, want)
	}
}

func TestParseExplainAnalyze(t *testing.T) {
	stmt := mustParse(t, "EXPLAIN ANALYZE SELECT name FROM customers ORDER BY age LIMIT 4")
	ex, ok := stmt.(*Explain)
	if !ok || !ex.Analyze {
		t.Fatalf("got %T analyze=%v, want *Explain with Analyze", stmt, ok && ex.Analyze)
	}
	want := "EXPLAIN ANALYZE SELECT name FROM customers ORDER BY age LIMIT 4"
	if got := ex.SQL(); got != want {
		t.Errorf("SQL() = %q, want %q", got, want)
	}
	if plain := mustParse(t, "EXPLAIN SELECT * FROM t").(*Explain); plain.Analyze {
		t.Error("plain EXPLAIN parsed with Analyze set")
	}
	if _, ok := mustParse(t, "EXPLAIN ANALYZE UPDATE t SET a = 1").(*Explain); !ok {
		t.Error("EXPLAIN ANALYZE UPDATE did not parse to *Explain")
	}
}

func TestParseExplainUpdateDelete(t *testing.T) {
	if _, ok := mustParse(t, "EXPLAIN UPDATE t SET a = 1 WHERE id = 2").(*Explain); !ok {
		t.Error("EXPLAIN UPDATE did not parse to *Explain")
	}
	if _, ok := mustParse(t, "EXPLAIN DELETE FROM t WHERE id = 2").(*Explain); !ok {
		t.Error("EXPLAIN DELETE did not parse to *Explain")
	}
}

func TestParseExplainErrors(t *testing.T) {
	for _, src := range []string{
		"EXPLAIN",
		"EXPLAIN EXPLAIN SELECT * FROM t",
		"EXPLAIN ANALYZE EXPLAIN SELECT * FROM t",
		"EXPLAIN ANALYZE",
		"EXPLAIN 42",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseUnknownFunctionRejected(t *testing.T) {
	for _, src := range []string{
		"SELECT AVG(age) FROM customers",
		"SELECT min(age) FROM customers",
		"SELECT name, MAX(age) FROM customers",
	} {
		_, err := Parse(src)
		if err == nil {
			t.Fatalf("Parse(%q) succeeded, want ErrUnknownFunction", src)
		}
		if !errors.Is(err, ErrUnknownFunction) {
			t.Errorf("Parse(%q) error %v does not wrap ErrUnknownFunction", src, err)
		}
	}
}
