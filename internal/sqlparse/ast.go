package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface {
	// SQL renders the statement back to canonical SQL text.
	SQL() string
	stmt()
}

// ColumnType is the type of a table column.
type ColumnType int

// Column types supported by the engine.
const (
	TypeInt ColumnType = iota
	TypeText
)

func (t ColumnType) String() string {
	if t == TypeInt {
		return "INT"
	}
	return "TEXT"
}

// ColumnDef is one column in a CREATE TABLE statement.
type ColumnDef struct {
	Name       string
	Type       ColumnType
	PrimaryKey bool
}

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Table   string
	Columns []ColumnDef
}

func (*CreateTable) stmt() {}

// SQL renders the statement.
func (c *CreateTable) SQL() string {
	var parts []string
	for _, col := range c.Columns {
		p := col.Name + " " + col.Type.String()
		if col.PrimaryKey {
			p += " PRIMARY KEY"
		}
		parts = append(parts, p)
	}
	return fmt.Sprintf("CREATE TABLE %s (%s)", c.Table, strings.Join(parts, ", "))
}

// Value is a literal value: int64 or string.
type Value struct {
	IsInt bool
	Int   int64
	Str   string
}

// IntValue builds an integer literal.
func IntValue(v int64) Value { return Value{IsInt: true, Int: v} }

// StrValue builds a string literal.
func StrValue(s string) Value { return Value{Str: s} }

// SQL renders the literal in SQL syntax.
func (v Value) SQL() string {
	if v.IsInt {
		return strconv.FormatInt(v.Int, 10)
	}
	return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
}

// String renders the literal without quoting (for display and record use).
func (v Value) String() string {
	if v.IsInt {
		return strconv.FormatInt(v.Int, 10)
	}
	return v.Str
}

// Compare orders two values: ints numerically, strings lexically; ints
// sort before strings when kinds differ.
func (v Value) Compare(o Value) int {
	switch {
	case v.IsInt && o.IsInt:
		switch {
		case v.Int < o.Int:
			return -1
		case v.Int > o.Int:
			return 1
		}
		return 0
	case !v.IsInt && !o.IsInt:
		return strings.Compare(v.Str, o.Str)
	case v.IsInt:
		return -1
	default:
		return 1
	}
}

// Equal reports value equality.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// CompareOp is a binary comparison operator in a WHERE clause.
type CompareOp int

// Comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CompareOp(%d)", int(op))
	}
}

// Eval applies the operator to the comparison result c = Compare(lhs, rhs).
func (op CompareOp) Eval(c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// Predicate is a single comparison column OP literal.
type Predicate struct {
	Column string
	Op     CompareOp
	Arg    Value
}

// SQL renders the predicate.
func (p Predicate) SQL() string {
	return fmt.Sprintf("%s %s %s", p.Column, p.Op, p.Arg.SQL())
}

// Where is a conjunction of predicates; empty means "all rows".
type Where []Predicate

// SQL renders the clause body (without the WHERE keyword); empty string
// for an empty conjunction.
func (w Where) SQL() string {
	if len(w) == 0 {
		return ""
	}
	parts := make([]string, len(w))
	for i, p := range w {
		parts[i] = p.SQL()
	}
	return strings.Join(parts, " AND ")
}

// AggKind distinguishes plain column selection from aggregates.
type AggKind int

// Aggregate kinds.
const (
	AggNone AggKind = iota
	AggCount
	AggSum
)

// SelectExpr is one item in a SELECT list: a column, *, COUNT(*), or
// SUM(col).
type SelectExpr struct {
	Agg    AggKind
	Column string // "*" for star
}

// SQL renders the expression.
func (e SelectExpr) SQL() string {
	switch e.Agg {
	case AggCount:
		return "COUNT(" + e.Column + ")"
	case AggSum:
		return "SUM(" + e.Column + ")"
	default:
		return e.Column
	}
}

// Select is a SELECT statement.
type Select struct {
	Exprs   []SelectExpr
	Table   string
	Where   Where
	OrderBy string // column name, empty for none
	Desc    bool
	Limit   int // row cap; -1 means no LIMIT clause (LIMIT 0 is a real, empty limit)
}

func (*Select) stmt() {}

// SQL renders the statement.
func (s *Select) SQL() string {
	parts := make([]string, len(s.Exprs))
	for i, e := range s.Exprs {
		parts[i] = e.SQL()
	}
	out := fmt.Sprintf("SELECT %s FROM %s", strings.Join(parts, ", "), s.Table)
	if len(s.Where) > 0 {
		out += " WHERE " + s.Where.SQL()
	}
	if s.OrderBy != "" {
		out += " ORDER BY " + s.OrderBy
		if s.Desc {
			out += " DESC"
		}
	}
	if s.Limit >= 0 {
		out += fmt.Sprintf(" LIMIT %d", s.Limit)
	}
	return out
}

// Insert is an INSERT statement with one or more value tuples.
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Value
}

func (*Insert) stmt() {}

// SQL renders the statement.
func (i *Insert) SQL() string {
	tuples := make([]string, len(i.Rows))
	for r, row := range i.Rows {
		vals := make([]string, len(row))
		for c, v := range row {
			vals[c] = v.SQL()
		}
		tuples[r] = "(" + strings.Join(vals, ", ") + ")"
	}
	return fmt.Sprintf("INSERT INTO %s (%s) VALUES %s",
		i.Table, strings.Join(i.Columns, ", "), strings.Join(tuples, ", "))
}

// Assignment is one column = value pair in an UPDATE.
type Assignment struct {
	Column string
	Value  Value
}

// Update is an UPDATE statement.
type Update struct {
	Table string
	Set   []Assignment
	Where Where
}

func (*Update) stmt() {}

// SQL renders the statement.
func (u *Update) SQL() string {
	sets := make([]string, len(u.Set))
	for i, a := range u.Set {
		sets[i] = fmt.Sprintf("%s = %s", a.Column, a.Value.SQL())
	}
	out := fmt.Sprintf("UPDATE %s SET %s", u.Table, strings.Join(sets, ", "))
	if len(u.Where) > 0 {
		out += " WHERE " + u.Where.SQL()
	}
	return out
}

// CreateIndex is a CREATE INDEX statement over a single column.
type CreateIndex struct {
	Name   string
	Table  string
	Column string
}

func (*CreateIndex) stmt() {}

// SQL renders the statement.
func (c *CreateIndex) SQL() string {
	return fmt.Sprintf("CREATE INDEX %s ON %s (%s)", c.Name, c.Table, c.Column)
}

// AnalyzeTable is an ANALYZE TABLE statement: rebuild the table's
// planner statistics from a full scan.
type AnalyzeTable struct {
	Table string
}

func (*AnalyzeTable) stmt() {}

// SQL renders the statement.
func (a *AnalyzeTable) SQL() string {
	return "ANALYZE TABLE " + a.Table
}

// DropTable is DROP TABLE <name>.
type DropTable struct {
	Table string
}

func (*DropTable) stmt() {}

// SQL renders the statement.
func (d *DropTable) SQL() string {
	return "DROP TABLE " + d.Table
}

// SetTxn is SET TRANSACTION READ ONLY | READ WRITE. It configures the
// access mode of the session's next transaction (the statement-scoped
// MySQL form).
type SetTxn struct {
	ReadOnly bool
}

func (*SetTxn) stmt() {}

// SQL renders the statement.
func (s *SetTxn) SQL() string {
	if s.ReadOnly {
		return "SET TRANSACTION READ ONLY"
	}
	return "SET TRANSACTION READ WRITE"
}

// TxnOp is a transaction-control statement kind.
type TxnOp int

// Transaction-control operations.
const (
	TxnBegin TxnOp = iota
	TxnCommit
	TxnRollback
)

// TxnControl is BEGIN, COMMIT, or ROLLBACK.
type TxnControl struct {
	Op TxnOp
}

func (*TxnControl) stmt() {}

// SQL renders the statement.
func (t *TxnControl) SQL() string {
	switch t.Op {
	case TxnBegin:
		return "BEGIN"
	case TxnCommit:
		return "COMMIT"
	default:
		return "ROLLBACK"
	}
}

// Explain is an EXPLAIN statement: render the execution plan of the
// wrapped statement without running it. With Analyze set (EXPLAIN
// ANALYZE) the wrapped statement IS executed and the plan is annotated
// with the per-operator runtime counters.
type Explain struct {
	Stmt    Statement
	Analyze bool
}

func (*Explain) stmt() {}

// SQL renders the statement.
func (e *Explain) SQL() string {
	if e.Analyze {
		return "EXPLAIN ANALYZE " + e.Stmt.SQL()
	}
	return "EXPLAIN " + e.Stmt.SQL()
}

// Delete is a DELETE statement.
type Delete struct {
	Table string
	Where Where
}

func (*Delete) stmt() {}

// SQL renders the statement.
func (d *Delete) SQL() string {
	out := "DELETE FROM " + d.Table
	if len(d.Where) > 0 {
		out += " WHERE " + d.Where.SQL()
	}
	return out
}
