package sqlparse

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
)

// Digest canonicalizes a SQL statement the way MySQL's
// performance_schema does: every literal argument is replaced by '?',
// keywords are uppercased, identifiers keep their case, and whitespace
// collapses to single spaces. The select-from-where *structure* and the
// attributes it mentions are preserved, so
//
//	SELECT * FROM CUSTOMERS WHERE STATE='IN'
//	SELECT * FROM CUSTOMERS WHERE STATE='AZ'
//
// share one digest, while adding a second constraint (AND AGE >= 25)
// yields a different digest. Section 4 of the paper relies on exactly
// this behaviour: the digest table counts queries per canonical form,
// which for SPLASHE-rewritten queries means per plaintext value.
//
// Input that fails to lex canonicalizes to the raw text with collapsed
// whitespace; the digest table must never reject a statement.
func Digest(src string) string {
	toks, err := Tokenize(src)
	if err != nil {
		return strings.Join(strings.Fields(src), " ")
	}
	var sb strings.Builder
	for i, t := range toks {
		if t.Kind == TokEOF {
			break
		}
		var text string
		switch t.Kind {
		case TokNumber, TokString:
			text = "?"
		case TokKeyword:
			text = t.Text // already uppercased by the lexer
		default:
			text = t.Text
		}
		if sb.Len() > 0 && needSpace(toks[i-1], t) {
			sb.WriteByte(' ')
		}
		sb.WriteString(text)
	}
	return sb.String()
}

// needSpace decides whether a space separates prev and cur in the
// canonical rendering. The goal is stable, readable output: words are
// space-separated; punctuation hugs its operands except that commas get
// a trailing space and binary operators are spaced.
func needSpace(prev, cur Token) bool {
	if prev.Kind == TokSymbol {
		switch prev.Text {
		case "(", ".":
			return false
		case ",":
			return true
		}
		// Operators and ')' get a following space unless the current
		// token is closing punctuation.
	}
	if cur.Kind == TokSymbol {
		switch cur.Text {
		case "(", ")":
			// '(' hugs a preceding aggregate keyword: COUNT(, SUM(.
			if cur.Text == "(" && prev.Kind == TokKeyword && (prev.Text == "COUNT" || prev.Text == "SUM") {
				return false
			}
			if cur.Text == ")" {
				return false
			}
			return true
		case ",", ";", ".":
			return false
		}
	}
	return true
}

// DigestHash returns a short stable hex hash of the canonical form,
// mirroring performance_schema's DIGEST column (the canonical text is
// the DIGEST_TEXT column).
func DigestHash(src string) string {
	return HashDigestText(Digest(src))
}

// HashDigestText hashes an already-canonicalized digest text. Callers
// that cache the canonical form (the engine's plan cache) use this to
// skip re-tokenizing the statement; HashDigestText(Digest(s)) ==
// DigestHash(s) by construction.
func HashDigestText(digestText string) string {
	sum := sha256.Sum256([]byte(digestText))
	return hex.EncodeToString(sum[:16])
}
