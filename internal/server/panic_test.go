package server

import (
	"strings"
	"testing"

	"snapdb/internal/engine"
)

func TestSafeExecutePassthrough(t *testing.T) {
	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	sess := e.Connect("panic-test")
	defer sess.Close()

	res, err := safeExecute(sess, "CREATE TABLE pt (id INT PRIMARY KEY, v TEXT)")
	if err != nil || res == nil {
		t.Fatalf("passthrough: res=%v err=%v", res, err)
	}
	if _, err := safeExecute(sess, "NOT REAL SQL"); err == nil ||
		strings.Contains(err.Error(), "internal error") {
		t.Fatalf("plain error should pass through unrecovered, got %v", err)
	}
}

func TestSafeExecuteRecoversPanic(t *testing.T) {
	// A nil session panics inside Execute with a nil dereference; the
	// handler must get an error line back, not die.
	res, err := safeExecute(nil, "SELECT 1")
	if res != nil {
		t.Error("panicking statement returned a result")
	}
	if err == nil || !strings.Contains(err.Error(), "internal error") {
		t.Errorf("recovered error = %v", err)
	}
}
