package server

import (
	"errors"
	"strings"
	"testing"

	"snapdb/internal/engine"
)

func TestSafeExecutePassthrough(t *testing.T) {
	want := &engine.Result{RowsAffected: 3}
	res, err := safeExecute(func() (*engine.Result, error) { return want, nil })
	if err != nil || res != want {
		t.Fatalf("passthrough: res=%v err=%v", res, err)
	}
	boom := errors.New("plain error")
	if _, err := safeExecute(func() (*engine.Result, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("error passthrough: %v", err)
	}
}

func TestSafeExecuteRecoversPanic(t *testing.T) {
	res, err := safeExecute(func() (*engine.Result, error) { panic("index out of range [12]") })
	if res != nil {
		t.Error("panicking statement returned a result")
	}
	if err == nil || !strings.Contains(err.Error(), "internal error") ||
		!strings.Contains(err.Error(), "index out of range") {
		t.Errorf("recovered error = %v", err)
	}
}
