package server

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"testing"

	"snapdb/internal/engine"
)

func TestSafeExecutePassthrough(t *testing.T) {
	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	sess := e.Connect("panic-test")
	defer sess.Close()

	res, err := safeExecute(sess, "CREATE TABLE pt (id INT PRIMARY KEY, v TEXT)", nil)
	if err != nil || res == nil {
		t.Fatalf("passthrough: res=%v err=%v", res, err)
	}
	if _, err := safeExecute(sess, "NOT REAL SQL", nil); err == nil ||
		strings.Contains(err.Error(), "internal error") {
		t.Fatalf("plain error should pass through unrecovered, got %v", err)
	}
}

func TestSafeExecuteRecoversPanic(t *testing.T) {
	// A nil session panics inside Execute with a nil dereference; the
	// handler must get an error line back, not die — and the error log
	// must capture the panic with its stack, because the client-visible
	// message alone is useless for diagnosing the crash.
	var logBuf strings.Builder
	logf := func(format string, args ...any) { fmt.Fprintf(&logBuf, format, args...) }
	res, err := safeExecute(nil, "SELECT 1", logf)
	if res != nil {
		t.Error("panicking statement returned a result")
	}
	if err == nil || !strings.Contains(err.Error(), "internal error") {
		t.Errorf("recovered error = %v", err)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "panic executing") || !strings.Contains(logged, "goroutine") {
		t.Errorf("error log missing panic stack: %q", logged)
	}
	if !strings.Contains(logged, "SELECT 1") {
		t.Errorf("error log missing offending statement: %q", logged)
	}
}

// TestSessionSurvivesPanicOverWire drives the recovery path end to end
// over a real connection: a statement that panics mid-execution draws
// an ERR reply, the panic and stack land in the server's error log,
// and the same session keeps executing afterwards.
func TestSessionSurvivesPanicOverWire(t *testing.T) {
	const poison = "SELECT 'poisoned'"
	panicHook = func(line string) {
		if line == poison {
			panic("injected test panic")
		}
	}
	defer func() { panicHook = nil }()

	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	var logBuf syncBuffer
	srv := New(e)
	srv.ErrorLog = log.New(&logBuf, "", 0)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	addr := (<-ready).String()
	defer func() {
		_ = srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func(line string) string {
		t.Helper()
		if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
			t.Fatalf("send: %v", err)
		}
		reply, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read reply to %q: %v", line, err)
		}
		return strings.TrimRight(reply, "\n")
	}

	if got := send(poison); !strings.Contains(got, "internal error") {
		t.Fatalf("poisoned statement reply = %q", got)
	}
	if got := send("CREATE TABLE sp (id INT PRIMARY KEY)"); !strings.HasPrefix(got, "OK ") {
		t.Fatalf("session did not survive the panic: %q", got)
	}
	if logged := logBuf.String(); !strings.Contains(logged, "goroutine") || !strings.Contains(logged, poison) {
		t.Errorf("error log missing stack or statement: %q", logged)
	}
}

// syncBuffer is a mutex-guarded strings.Builder: the handler goroutine
// writes the log while the test goroutine reads it.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}
