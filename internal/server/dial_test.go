package server_test

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"snapdb/internal/client"
	"snapdb/internal/engine"
	"snapdb/internal/server"
)

// TestDialContextRidesAcrossServerStart reserves a port, starts the
// server only after a delay, and checks DialContext's backoff loop
// connects once the listener appears — the crashed-and-recovering
// server scenario.
func TestDialContextRidesAcrossServerStart(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}

	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(e)
	done := make(chan error, 1)
	go func() {
		time.Sleep(150 * time.Millisecond) // the recovery window
		ln2, lerr := net.Listen("tcp", addr)
		if lerr != nil {
			done <- lerr
			return
		}
		done <- srv.Serve(ln2)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := client.DialContext(ctx, addr)
	if err != nil {
		t.Fatalf("DialContext did not ride across the restart: %v", err)
	}
	if _, err := c.Execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Error(err)
	}
	if err := srv.Close(); err != nil {
		t.Error(err)
	}
	if err := <-done; err != nil {
		t.Error(err)
	}
}

func TestDialContextHonorsDeadline(t *testing.T) {
	// Reserve-and-close a port so nothing is listening there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.DialContext(ctx, addr)
	if err == nil {
		t.Fatal("dial to dead port succeeded")
	}
	if !strings.Contains(err.Error(), "deadline") && !strings.Contains(err.Error(), "context") {
		t.Errorf("error does not mention the context: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("gave up after %v, deadline was 200ms", elapsed)
	}
}
