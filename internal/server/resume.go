package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"sync"
	"time"

	"snapdb/internal/engine"
)

// Exactly-once retry support: the server half.
//
// A client that opts into the control protocol (see the package
// comment) owns a resumable session identified by an opaque token. It
// stamps every statement with a monotonically increasing sequence
// number; the server executes a statement only when its sequence is
// the next one expected, and keeps a bounded window of rendered
// replies so a retry of an already-executed statement is answered from
// cache instead of executing twice. That turns the client's "resend
// everything unacknowledged" recovery into exactly-once application:
// at-least-once delivery plus server-side deduplication.
//
// The forensic cost is deliberate and measured by experiment E14: the
// dedup window retains full rendered replies (result rows included)
// for statements the client finished long ago, and a replayed arrival
// leaves a duplicate general-log record. Retry machinery is itself a
// recording surface.

const (
	// defaultDedupWindow is how many rendered replies a resumable
	// session retains for replay. A reconnecting client replays at most
	// one in-flight batch, so the window need only exceed the largest
	// batch (ReliableConn chunks at reliableBatchChunk = 64).
	defaultDedupWindow = 128

	// defaultResumeTTL is how long a detached resumable session (its
	// connection dropped, no reconnect yet) is retained before being
	// reaped. Mirrors the idle timeout's job: a client that never comes
	// back must not pin an engine session forever.
	defaultResumeTTL = time.Minute
)

// cachedReply is one statement's retained outcome: the statement text
// (for the general-log replay record) and the fully rendered wire
// reply, ERR or OK framing included.
type cachedReply struct {
	seq   uint64
	stmt  string
	reply []byte
}

// resumeSession is one resumable client session. mu serializes
// statement dispatch, so a stolen session (old connection still
// draining buffered statements while the client reconnects) never runs
// two statements concurrently on the one engine session.
type resumeSession struct {
	token string
	sess  *engine.Session

	mu         sync.Mutex
	lastSeq    uint64
	replies    []cachedReply // ring, oldest first, ≤ window entries
	window     int
	owner      net.Conn
	detachedAt time.Time // zero while attached
}

// dispatch applies the exactly-once rule to one stamped statement.
// exec renders one execution (called only when the statement is new);
// the returned reply is what goes on the wire, replayed true when it
// came from the cache.
func (rs *resumeSession) dispatch(seq uint64, stmt string, exec func(string) []byte) (reply []byte, replayed bool, err error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	switch {
	case seq == rs.lastSeq+1:
		reply = exec(stmt)
		rs.lastSeq = seq
		rs.replies = append(rs.replies, cachedReply{seq: seq, stmt: stmt, reply: reply})
		if len(rs.replies) > rs.window {
			rs.replies = rs.replies[len(rs.replies)-rs.window:]
		}
		return reply, false, nil
	case seq <= rs.lastSeq:
		for _, cr := range rs.replies {
			if cr.seq == seq {
				// The statement arrived again: record the arrival (the
				// general log logs arrivals, not executions — this is
				// E14's duplicate-record channel) and answer from cache.
				rs.sess.NoteReplay(cr.stmt)
				return cr.reply, true, nil
			}
		}
		return nil, false, fmt.Errorf("replay window exceeded for seq %d (oldest retained %d)", seq, rs.lastSeq+1-uint64(len(rs.replies)))
	default:
		return nil, false, fmt.Errorf("sequence gap: got %d, want %d", seq, rs.lastSeq+1)
	}
}

// resumeRegistry tracks resumable sessions by token.
type resumeRegistry struct {
	mu       sync.Mutex
	sessions map[string]*resumeSession
	window   int
	ttl      time.Duration
}

func newResumeRegistry(window int, ttl time.Duration) *resumeRegistry {
	if window <= 0 {
		window = defaultDedupWindow
	}
	if ttl <= 0 {
		ttl = defaultResumeTTL
	}
	return &resumeRegistry{sessions: make(map[string]*resumeSession), window: window, ttl: ttl}
}

// newToken draws an unguessable session token. Resuming requires the
// token, so it must not be predictable from connection order.
func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: token entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// create registers a fresh resumable session owned by conn.
func (rr *resumeRegistry) create(sess *engine.Session, conn net.Conn) *resumeSession {
	rs := &resumeSession{token: newToken(), sess: sess, window: rr.window, owner: conn}
	rr.mu.Lock()
	rr.reapLocked(time.Now())
	rr.sessions[rs.token] = rs
	rr.mu.Unlock()
	return rs
}

// attach resumes the session named by token on conn, stealing
// ownership from (and closing) any previous connection still attached.
// Returns nil if the token is unknown or already reaped.
func (rr *resumeRegistry) attach(token string, conn net.Conn) *resumeSession {
	rr.mu.Lock()
	rr.reapLocked(time.Now())
	rs := rr.sessions[token]
	rr.mu.Unlock()
	if rs == nil {
		return nil
	}
	rs.mu.Lock()
	old := rs.owner
	rs.owner = conn
	rs.detachedAt = time.Time{}
	rs.mu.Unlock()
	if old != nil && old != conn {
		// The old connection is a zombie (the client gave up on it);
		// closing it unblocks its handler, whose detach is then a no-op.
		_ = old.Close()
	}
	return rs
}

// detach records that conn no longer serves rs. The engine session
// stays alive awaiting a resume until the TTL reaps it; a handler that
// lost ownership to a steal detaches nothing.
func (rr *resumeRegistry) detach(rs *resumeSession, conn net.Conn) {
	rs.mu.Lock()
	if rs.owner == conn {
		rs.owner = nil
		rs.detachedAt = time.Now()
	}
	rs.mu.Unlock()
}

// release removes rs entirely (the client said !bye): the engine
// session closes and the cached replies are dropped.
func (rr *resumeRegistry) release(rs *resumeSession) {
	rr.mu.Lock()
	delete(rr.sessions, rs.token)
	rr.mu.Unlock()
	rs.sess.Close()
}

// reapLocked drops sessions detached longer than the TTL. Called under
// rr.mu from create/attach — session churn drives reaping, so an idle
// server needs no timer goroutine.
func (rr *resumeRegistry) reapLocked(now time.Time) {
	for tok, rs := range rr.sessions {
		rs.mu.Lock()
		expired := rs.owner == nil && !rs.detachedAt.IsZero() && now.Sub(rs.detachedAt) > rr.ttl
		rs.mu.Unlock()
		if expired {
			delete(rr.sessions, tok)
			rs.sess.Close()
		}
	}
}

// closeAll releases every resumable session (server shutdown).
func (rr *resumeRegistry) closeAll() {
	rr.mu.Lock()
	sessions := rr.sessions
	rr.sessions = make(map[string]*resumeSession)
	rr.mu.Unlock()
	for _, rs := range sessions {
		rs.sess.Close()
	}
}

// RetainedReplies snapshots every rendered reply currently held in
// dedup windows, across all resumable sessions. This is a forensic
// surface, not an API convenience: E14 scans it to show that result
// rows (secrets included) outlive their statements inside the retry
// machinery.
func (s *Server) RetainedReplies() [][]byte {
	rr := s.resumeReg()
	rr.mu.Lock()
	sessions := make([]*resumeSession, 0, len(rr.sessions))
	for _, rs := range rr.sessions {
		sessions = append(sessions, rs)
	}
	rr.mu.Unlock()
	var out [][]byte
	for _, rs := range sessions {
		rs.mu.Lock()
		for _, cr := range rs.replies {
			out = append(out, append([]byte(nil), cr.reply...))
		}
		rs.mu.Unlock()
	}
	return out
}

// ResumeSessionCount reports how many resumable sessions the server
// currently retains (attached or awaiting resume). Orphans pin engine
// sessions until the TTL fires — E14's session-retention metric.
func (s *Server) ResumeSessionCount() int {
	rr := s.resumeReg()
	rr.mu.Lock()
	defer rr.mu.Unlock()
	return len(rr.sessions)
}
