// Package server exposes a snapdb engine over TCP with a line-oriented
// text protocol, giving the simulation the same shape as a production
// deployment: remote clients, per-connection sessions (visible in the
// processlist), and statement text that arrives through a real network
// receive path before landing in the engine's heap.
//
// Protocol (all lines \n-terminated):
//
//	client → server:  one SQL statement per line
//	server → client:  ERR <message>
//	               |  OK <nrows> <affected> <fromcache>
//	                  [COLS <name>\t<name>...]      when nrows > 0
//	                  <value>\t<value>...           × nrows
//
// Values are typed: "i:<decimal>" for INT, "s:<escaped>" for TEXT,
// with \\, \t, \n escaped inside strings.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"snapdb/internal/engine"
	"snapdb/internal/sqlparse"
)

// DefaultIdleTimeout is how long a connection may sit idle between
// statements before the server closes it. Idle sessions pin engine
// state (processlist entries, session buffers), so they are reaped
// like production servers reap them (cf. MySQL wait_timeout).
const DefaultIdleTimeout = 5 * time.Minute

// Server serves one engine to many TCP clients.
type Server struct {
	eng *engine.Engine

	// IdleTimeout bounds the gap between statements on a connection;
	// a connection idle longer is closed and its session released.
	// Zero means DefaultIdleTimeout; negative disables the timeout.
	IdleTimeout time.Duration

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// New creates a server for the engine.
func New(e *engine.Engine) *Server {
	return &Server{eng: e, conns: make(map[net.Conn]struct{})}
}

// idleTimeout resolves the configured timeout.
func (s *Server) idleTimeout() time.Duration {
	switch {
	case s.IdleTimeout == 0:
		return DefaultIdleTimeout
	case s.IdleTimeout < 0:
		return 0
	}
	return s.IdleTimeout
}

// Serve accepts connections on ln until Close. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		// Register under the lock so Close's wg.Wait can never race a
		// late wg.Add: once closed is set, no new handler starts.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr and serves. The returned channel
// yields the bound address once listening (useful with ":0").
func (s *Server) ListenAndServe(addr string, ready chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen: %w", err)
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	return s.Serve(ln)
}

// Close stops accepting, closes live connections, and waits for
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	sess := s.eng.Connect(conn.RemoteAddr().String())
	defer sess.Close()

	idle := s.idleTimeout()
	r := bufio.NewScanner(conn)
	r.Buffer(make([]byte, 0, 64<<10), 1<<20)
	w := bufio.NewWriter(conn)
	for {
		// Arm the read deadline before each statement: a connection
		// that stays silent past the idle timeout fails its next Read,
		// Scan returns false, and the deferred cleanup releases the
		// session — a clean idle close, never a leaked handler.
		if idle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(idle))
		}
		if !r.Scan() {
			return
		}
		line := strings.TrimRight(r.Text(), "\r")
		if line == "" {
			continue
		}
		res, err := safeExecute(func() (*engine.Result, error) { return sess.Execute(line) })
		if err != nil {
			fmt.Fprintf(w, "ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
		} else {
			writeResult(w, res)
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// safeExecute runs one statement, converting a panic anywhere under
// Execute into a client-visible error: one poisoned statement must
// cost its own session an error line, never the whole server process.
func safeExecute(exec func() (*engine.Result, error)) (res *engine.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("internal error: %v", r)
		}
	}()
	return exec()
}

func writeResult(w *bufio.Writer, res *engine.Result) {
	fromCache := 0
	if res.FromCache {
		fromCache = 1
	}
	fmt.Fprintf(w, "OK %d %d %d\n", len(res.Rows), res.RowsAffected, fromCache)
	if len(res.Rows) == 0 {
		return
	}
	fmt.Fprintf(w, "COLS %s\n", strings.Join(res.Columns, "\t"))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = EncodeValue(v)
		}
		fmt.Fprintf(w, "%s\n", strings.Join(parts, "\t"))
	}
}

// EncodeValue renders a value in the wire format.
func EncodeValue(v sqlparse.Value) string {
	if v.IsInt {
		return fmt.Sprintf("i:%d", v.Int)
	}
	return "s:" + escape(v.Str)
}

// DecodeValue parses a wire-format value.
func DecodeValue(s string) (sqlparse.Value, error) {
	switch {
	case strings.HasPrefix(s, "i:"):
		var n int64
		if _, err := fmt.Sscanf(s[2:], "%d", &n); err != nil {
			return sqlparse.Value{}, fmt.Errorf("server: bad int %q: %w", s, err)
		}
		return sqlparse.IntValue(n), nil
	case strings.HasPrefix(s, "s:"):
		str, err := unescape(s[2:])
		if err != nil {
			return sqlparse.Value{}, err
		}
		return sqlparse.StrValue(str), nil
	default:
		return sqlparse.Value{}, fmt.Errorf("server: bad value tag in %q", s)
	}
}

func escape(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '\t':
			sb.WriteString(`\t`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

func unescape(s string) (string, error) {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			sb.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("server: dangling escape in %q", s)
		}
		switch s[i] {
		case '\\':
			sb.WriteByte('\\')
		case 't':
			sb.WriteByte('\t')
		case 'n':
			sb.WriteByte('\n')
		default:
			return "", fmt.Errorf("server: unknown escape \\%c", s[i])
		}
	}
	return sb.String(), nil
}
