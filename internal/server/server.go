// Package server exposes a snapdb engine over TCP with a line-oriented
// text protocol, giving the simulation the same shape as a production
// deployment: remote clients, per-connection sessions (visible in the
// processlist), and statement text that arrives through a real network
// receive path before landing in the engine's heap.
//
// Protocol (all lines \n-terminated):
//
//	client → server:  one SQL statement per line
//	server → client:  ERR <escaped message>
//	               |  OK <nrows> <affected> <fromcache> <examined>
//	                  [COLS <name>\t<name>...]      when nrows > 0
//	                  <value>\t<value>...           × nrows
//
// <examined> is the statement's rows-examined counter (scan-leaf rows
// or index entries inspected), the same figure perfschema records.
//
// Values are typed: "i:<decimal>" for INT, "s:<escaped>" for TEXT,
// with \\, \t, \n, \r escaped inside strings. ERR payloads use the
// same escaping, so multi-line engine errors survive the wire intact.
//
// The protocol is pipelined: a client may write any number of
// statement lines before reading replies, and replies come back in
// order, one per statement. The server only flushes its write buffer
// when its read buffer is drained, so a batch of N statements is
// answered with close to one TCP flush instead of N.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"snapdb/internal/engine"
	"snapdb/internal/sqlparse"
)

// DefaultIdleTimeout is how long a connection may sit idle between
// statements before the server closes it. Idle sessions pin engine
// state (processlist entries, session buffers), so they are reaped
// like production servers reap them (cf. MySQL wait_timeout).
const DefaultIdleTimeout = 5 * time.Minute

// Server serves one engine to many TCP clients.
type Server struct {
	eng *engine.Engine

	// IdleTimeout bounds the gap between statements on a connection;
	// a connection idle longer is closed and its session released.
	// Zero means DefaultIdleTimeout; negative disables the timeout.
	IdleTimeout time.Duration

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// New creates a server for the engine.
func New(e *engine.Engine) *Server {
	return &Server{eng: e, conns: make(map[net.Conn]struct{})}
}

// idleTimeout resolves the configured timeout.
func (s *Server) idleTimeout() time.Duration {
	switch {
	case s.IdleTimeout == 0:
		return DefaultIdleTimeout
	case s.IdleTimeout < 0:
		return 0
	}
	return s.IdleTimeout
}

// Serve accepts connections on ln until Close. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		// Register under the lock so Close's wg.Wait can never race a
		// late wg.Add: once closed is set, no new handler starts.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr and serves. The returned channel
// yields the bound address once listening (useful with ":0").
func (s *Server) ListenAndServe(addr string, ready chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen: %w", err)
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	return s.Serve(ln)
}

// Close stops accepting, closes live connections, and waits for
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	sess := s.eng.Connect(conn.RemoteAddr().String())
	defer sess.Close()

	idle := s.idleTimeout()
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	var lineBuf []byte
	for {
		// Arm the read deadline before waiting on the network: a
		// connection that stays silent past the idle timeout fails its
		// next Read and the deferred cleanup releases the session — a
		// clean idle close, never a leaked handler. Statements already
		// sitting in the read buffer don't touch the network, so a
		// pipelined batch arms it once, not once per statement.
		if idle > 0 && r.Buffered() == 0 {
			_ = conn.SetReadDeadline(time.Now().Add(idle))
		}
		raw, rerr := readLine(r, &lineBuf)
		line := strings.TrimRight(string(raw), "\r")
		if line != "" {
			res, err := safeExecute(sess, line)
			if err != nil {
				fmt.Fprintf(w, "ERR %s\n", escape(err.Error()))
			} else {
				writeResult(w, res)
			}
		}
		if rerr != nil {
			return
		}
		// Pipelining: hold replies in the write buffer while more
		// statements are already waiting in the read buffer, and flush
		// once the client has nothing else in flight. A batch client
		// writes all N statements before reading any reply, so this
		// never deadlocks — and it turns N per-statement flushes into
		// one. Interactive clients see no change: their read buffer is
		// empty after each statement.
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// maxLineLen bounds one statement line, matching the former
// bufio.Scanner limit.
const maxLineLen = 1 << 20

// readLine reads one \n-terminated line into *buf (reused across
// calls), returning the line without its terminator. On EOF after a
// final unterminated line it returns that line together with the
// error, mirroring bufio.Scanner's handling of missing final newlines;
// the caller processes the line and then closes.
func readLine(r *bufio.Reader, buf *[]byte) ([]byte, error) {
	*buf = (*buf)[:0]
	for {
		frag, err := r.ReadSlice('\n')
		*buf = append(*buf, frag...)
		if len(*buf) > maxLineLen {
			return nil, errors.New("server: statement line too long")
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		line := *buf
		if n := len(line); n > 0 && line[n-1] == '\n' {
			line = line[:n-1]
		}
		return line, err
	}
}

// safeExecute runs one statement, converting a panic anywhere under
// Execute into a client-visible error: one poisoned statement must
// cost its own session an error line, never the whole server process.
func safeExecute(sess *engine.Session, line string) (res *engine.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("internal error: %v", r)
		}
	}()
	return sess.Execute(line)
}

// writeInt writes n in decimal without the fmt machinery — the reply
// header costs four of these per statement. Appending into the
// writer's own buffer keeps the digits off the heap.
func writeInt(w *bufio.Writer, n int64) {
	w.Write(strconv.AppendInt(w.AvailableBuffer(), n, 10))
}

func writeResult(w *bufio.Writer, res *engine.Result) {
	fromCache := int64(0)
	if res.FromCache {
		fromCache = 1
	}
	w.WriteString("OK ")
	writeInt(w, int64(len(res.Rows)))
	w.WriteByte(' ')
	writeInt(w, int64(res.RowsAffected))
	w.WriteByte(' ')
	writeInt(w, fromCache)
	w.WriteByte(' ')
	writeInt(w, int64(res.RowsExamined))
	w.WriteByte('\n')
	if len(res.Rows) == 0 {
		return
	}
	w.WriteString("COLS ")
	w.WriteString(strings.Join(res.Columns, "\t"))
	w.WriteByte('\n')
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				w.WriteByte('\t')
			}
			if v.IsInt {
				w.WriteString("i:")
				writeInt(w, v.Int)
			} else {
				w.WriteString("s:")
				w.WriteString(escape(v.Str))
			}
		}
		w.WriteByte('\n')
	}
}

// EncodeValue renders a value in the wire format.
func EncodeValue(v sqlparse.Value) string {
	if v.IsInt {
		return "i:" + strconv.FormatInt(v.Int, 10)
	}
	return "s:" + escape(v.Str)
}

// DecodeValue parses a wire-format value.
func DecodeValue(s string) (sqlparse.Value, error) {
	switch {
	case strings.HasPrefix(s, "i:"):
		n, err := strconv.ParseInt(s[2:], 10, 64)
		if err != nil {
			return sqlparse.Value{}, fmt.Errorf("server: bad int %q: %w", s, err)
		}
		return sqlparse.IntValue(n), nil
	case strings.HasPrefix(s, "s:"):
		str, err := unescape(s[2:])
		if err != nil {
			return sqlparse.Value{}, err
		}
		return sqlparse.StrValue(str), nil
	default:
		return sqlparse.Value{}, fmt.Errorf("server: bad value tag in %q", s)
	}
}

// Escape renders s in the wire escaping: \\, \t, \n and \r become
// two-byte escapes, so no payload byte can be mistaken for a line or
// field terminator. Used for TEXT values and ERR messages.
func Escape(s string) string { return escape(s) }

// Unescape reverses Escape.
func Unescape(s string) (string, error) { return unescape(s) }

func escape(s string) string {
	if !strings.ContainsAny(s, "\\\t\n\r") {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '\t':
			sb.WriteString(`\t`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		default:
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

func unescape(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			sb.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("server: dangling escape in %q", s)
		}
		switch s[i] {
		case '\\':
			sb.WriteByte('\\')
		case 't':
			sb.WriteByte('\t')
		case 'n':
			sb.WriteByte('\n')
		case 'r':
			sb.WriteByte('\r')
		default:
			return "", fmt.Errorf("server: unknown escape \\%c", s[i])
		}
	}
	return sb.String(), nil
}
