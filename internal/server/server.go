// Package server exposes a snapdb engine over TCP with a line-oriented
// text protocol, giving the simulation the same shape as a production
// deployment: remote clients, per-connection sessions (visible in the
// processlist), and statement text that arrives through a real network
// receive path before landing in the engine's heap.
//
// Protocol (all lines \n-terminated):
//
//	client → server:  one SQL statement per line
//	server → client:  ERR <escaped message>
//	               |  OK <nrows> <affected> <fromcache> <examined>
//	                  [COLS <name>\t<name>...]      when nrows > 0
//	                  <value>\t<value>...           × nrows
//
// <examined> is the statement's rows-examined counter (scan-leaf rows
// or index entries inspected), the same figure perfschema records.
//
// Values are typed: "i:<decimal>" for INT, "s:<escaped>" for TEXT,
// with \\, \t, \n, \r escaped inside strings. ERR payloads use the
// same escaping, so multi-line engine errors survive the wire intact.
//
// The protocol is pipelined: a client may write any number of
// statement lines before reading replies, and replies come back in
// order, one per statement. The server only flushes its write buffer
// when its read buffer is drained, so a batch of N statements is
// answered with close to one TCP flush instead of N.
//
// Control protocol (exactly-once retry, see resume.go): lines starting
// with '!' are control lines, never SQL. A client opts in with
//
//	!hello                → !session <token>
//	!resume <token>       → !ok <lastseq>  |  !err <escaped message>
//	!q <seq> <statement>  → normal OK/ERR reply framing
//	!bye                  → no reply; the session is released
//
// After !hello or !resume the connection owns a resumable session:
// statements stamped !q with consecutive sequence numbers execute
// exactly once even when the client resends them after a reconnect —
// the server answers a repeated sequence number from its dedup cache.
// An oversized statement line draws "ERR statement line too long" and
// the session continues; a saturated server (see MaxConcurrent) draws
// "ERR overloaded: ..." without executing, which stamped clients
// retry.
package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"snapdb/internal/engine"
	"snapdb/internal/sqlparse"
)

// DefaultIdleTimeout is how long a connection may sit idle between
// statements before the server closes it. Idle sessions pin engine
// state (processlist entries, session buffers), so they are reaped
// like production servers reap them (cf. MySQL wait_timeout).
const DefaultIdleTimeout = 5 * time.Minute

// Server serves one engine to many TCP clients.
type Server struct {
	eng *engine.Engine

	// IdleTimeout bounds the gap between statements on a connection;
	// a connection idle longer is closed and its session released.
	// Zero means DefaultIdleTimeout; negative disables the timeout.
	IdleTimeout time.Duration

	// MaxConcurrent caps how many statements may execute at once; a
	// statement arriving past the cap is rejected with a retryable
	// "ERR overloaded" reply instead of queueing (admission control —
	// under overload, shed load at the door rather than let every
	// session's latency grow without bound). Zero means unlimited.
	MaxConcurrent int

	// DedupWindow is how many rendered replies each resumable session
	// retains for exactly-once replay (0 = defaultDedupWindow), and
	// ResumeTTL how long a detached session awaits its client before
	// being reaped (0 = defaultResumeTTL). See resume.go.
	DedupWindow int
	ResumeTTL   time.Duration

	// ErrorLog receives server-side diagnostics (panic stacks from
	// safeExecute). Nil logs via the log package's standard logger.
	ErrorLog *log.Logger

	mu       sync.Mutex
	ln       net.Listener
	closed   bool
	draining bool
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	sem      chan struct{}   // admission slots, built lazily from MaxConcurrent
	resume   *resumeRegistry // resumable sessions, built lazily from the knobs above
}

// New creates a server for the engine.
func New(e *engine.Engine) *Server {
	return &Server{eng: e, conns: make(map[net.Conn]struct{})}
}

// resumeReg returns the resume registry, building it on first use so
// the DedupWindow/ResumeTTL knobs set after New are honored.
func (s *Server) resumeReg() *resumeRegistry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.resume == nil {
		s.resume = newResumeRegistry(s.DedupWindow, s.ResumeTTL)
	}
	return s.resume
}

// admit acquires one statement-execution slot, returning its release
// func — or nil when the server is saturated and the statement must be
// rejected instead of run.
func (s *Server) admit() func() {
	s.mu.Lock()
	if s.sem == nil && s.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, s.MaxConcurrent)
	}
	sem := s.sem
	s.mu.Unlock()
	if sem == nil {
		return func() {}
	}
	select {
	case sem <- struct{}{}:
		return func() { <-sem }
	default:
		return nil
	}
}

// logf writes one diagnostic line to the configured error log.
func (s *Server) logf(format string, args ...any) {
	if s.ErrorLog != nil {
		s.ErrorLog.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// idleTimeout resolves the configured timeout.
func (s *Server) idleTimeout() time.Duration {
	switch {
	case s.IdleTimeout == 0:
		return DefaultIdleTimeout
	case s.IdleTimeout < 0:
		return 0
	}
	return s.IdleTimeout
}

// Serve accepts connections on ln until Close. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		// Register under the lock so Close's wg.Wait can never race a
		// late wg.Add: once closed is set, no new handler starts.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr and serves. The returned channel
// yields the bound address once listening (useful with ":0").
func (s *Server) ListenAndServe(addr string, ready chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen: %w", err)
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	return s.Serve(ln)
}

// Close stops accepting, closes live connections immediately, and
// waits for handlers to finish. In-flight statements finish executing
// (the engine is never interrupted mid-statement) but their replies
// are lost with the connections; clients that need every acked
// statement applied should be stopped first, or the server drained
// with Shutdown instead.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	s.resumeReg().closeAll()
	return err
}

// Shutdown drains the server gracefully: stop accepting, interrupt
// idle-blocked connections, let every in-flight statement and buffered
// pipeline finish and flush its replies, then release the sessions.
// When ctx expires first, the stragglers are closed hard (as in Close)
// and the error reports the incomplete drain.
//
// Drain interacts with pipelining per connection: statements already
// in the read buffer still execute and their replies flush before the
// connection closes, so a client that stopped sending observes a
// clean, fully-answered stream ending in EOF — indistinguishable from
// its own half-close, which is what makes rolling restarts invisible
// to well-behaved clients.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.draining = true
	ln := s.ln
	// A past read deadline fails the next (or current, blocked) network
	// read without disturbing data already buffered: exactly "stop
	// waiting for more work, finish what you have". Taken under the
	// same lock as the handlers' draining check, so no handler can
	// re-arm an idle deadline over it.
	past := time.Unix(1, 0)
	for c := range s.conns {
		_ = c.SetReadDeadline(past)
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.mu.Unlock()
		<-done
		err = errors.Join(err, fmt.Errorf("server: drain incomplete: %w", ctx.Err()))
	}
	s.resumeReg().closeAll()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	sess := s.eng.Connect(conn.RemoteAddr().String())
	var rs *resumeSession // non-nil once the control protocol owns sess
	defer func() {
		if rs != nil {
			// The engine session survives the connection, parked in the
			// registry awaiting a !resume (or the TTL reaper).
			s.resumeReg().detach(rs, conn)
		} else {
			sess.Close()
		}
	}()

	idle := s.idleTimeout()
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	var lineBuf []byte
	var scratch bytes.Buffer
	for {
		// Arm the read deadline before waiting on the network: a
		// connection that stays silent past the idle timeout fails its
		// next Read and the deferred cleanup releases the session — a
		// clean idle close, never a leaked handler. Statements already
		// sitting in the read buffer don't touch the network, so a
		// pipelined batch arms it once, not once per statement. The
		// draining check shares Shutdown's lock, so a drain can never be
		// overwritten by a fresh idle deadline.
		if r.Buffered() == 0 {
			s.mu.Lock()
			draining := s.draining
			if !draining && idle > 0 {
				_ = conn.SetReadDeadline(time.Now().Add(idle))
			}
			s.mu.Unlock()
			if draining {
				_ = w.Flush()
				return
			}
		}
		raw, rerr := readLine(r, &lineBuf)
		if errors.Is(rerr, errLineTooLong) {
			// The oversized line was consumed through its terminator, so
			// the stream is still in sync: report and keep the session.
			// Closing silently (the old behavior) made a fat-fingered
			// quote indistinguishable from a server crash.
			writeErr(w, errLineTooLong.Error())
			if r.Buffered() == 0 {
				if err := w.Flush(); err != nil {
					return
				}
			}
			continue
		}
		line := strings.TrimRight(string(raw), "\r")
		// A final unterminated line executes only on a clean EOF (the
		// client wrote a last statement and half-closed). On any other
		// read error — idle timeout, drain interrupt, injected reset —
		// the bytes may be a prefix of a statement still in flight, and
		// executing half a statement corrupts instead of helps.
		if line != "" && (rerr == nil || errors.Is(rerr, io.EOF)) {
			if line[0] == '!' {
				var done bool
				rs, done = s.dispatchControl(conn, sess, rs, line, w, &scratch)
				if done {
					return
				}
			} else {
				execSess := sess
				if rs != nil {
					execSess = rs.sess
				}
				s.execTo(w, execSess, line)
			}
		}
		if rerr != nil {
			return
		}
		// Pipelining: hold replies in the write buffer while more
		// statements are already waiting in the read buffer, and flush
		// once the client has nothing else in flight. A batch client
		// writes all N statements before reading any reply, so this
		// never deadlocks — and it turns N per-statement flushes into
		// one. Interactive clients see no change: their read buffer is
		// empty after each statement.
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// dispatchControl handles one '!'-prefixed control line (see the
// package comment). It returns the connection's resume session (which
// !hello/!resume establish) and whether the handler should close.
func (s *Server) dispatchControl(conn net.Conn, sess *engine.Session, rs *resumeSession, line string, w *bufio.Writer, scratch *bytes.Buffer) (*resumeSession, bool) {
	cmd, rest, _ := strings.Cut(line, " ")
	switch cmd {
	case "!hello":
		if rs != nil {
			fmt.Fprintf(w, "!err %s\n", escape("session already established"))
			return rs, false
		}
		rs = s.resumeReg().create(sess, conn)
		fmt.Fprintf(w, "!session %s\n", rs.token)
		return rs, false
	case "!resume":
		if rs != nil {
			fmt.Fprintf(w, "!err %s\n", escape("session already established"))
			return rs, false
		}
		got := s.resumeReg().attach(rest, conn)
		if got == nil {
			fmt.Fprintf(w, "!err %s\n", escape("unknown or expired session token"))
			return nil, false
		}
		// The resumed session replaces the handler's own.
		sess.Close()
		fmt.Fprintf(w, "!ok %d\n", got.last())
		return got, false
	case "!q":
		seqStr, stmt, ok := strings.Cut(rest, " ")
		seq, perr := strconv.ParseUint(seqStr, 10, 64)
		if !ok || perr != nil || strings.TrimSpace(stmt) == "" {
			writeErr(w, "malformed !q line")
			return rs, false
		}
		if rs == nil {
			writeErr(w, "no session: send !hello or !resume first")
			return rs, false
		}
		reply, _, derr := rs.dispatch(seq, stmt, func(stmt string) []byte {
			return s.renderExec(rs.sess, stmt, scratch)
		})
		if derr != nil {
			writeErr(w, derr.Error())
			return rs, false
		}
		_, _ = w.Write(reply)
		return rs, false
	case "!bye":
		if rs != nil {
			s.resumeReg().release(rs)
		}
		return rs, true
	default:
		writeErr(w, "unknown control line")
		return rs, false
	}
}

// last reads the session's acked sequence under its lock.
func (rs *resumeSession) last() uint64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.lastSeq
}

// execTo runs one statement under admission control and writes its
// reply — ERR or OK framing — to w.
func (s *Server) execTo(w replyWriter, sess *engine.Session, line string) {
	release := s.admit()
	if release == nil {
		// Rejected at the door: the reply is cheap and typed so stamped
		// clients back off and retry instead of failing the statement.
		writeErr(w, fmt.Sprintf("overloaded: too many concurrent statements (max %d)", s.MaxConcurrent))
		return
	}
	res, err := safeExecute(sess, line, s.logf)
	release()
	if err != nil {
		writeErr(w, err.Error())
	} else {
		writeResult(w, res)
	}
}

// renderExec executes one statement and renders its reply into a fresh
// byte slice — the form the dedup cache retains and replays verbatim,
// so a replayed reply is byte-identical to the original.
func (s *Server) renderExec(sess *engine.Session, line string, scratch *bytes.Buffer) []byte {
	scratch.Reset()
	s.execTo(scratch, sess, line)
	return append([]byte(nil), scratch.Bytes()...)
}

// maxLineLen bounds one statement line, matching the former
// bufio.Scanner limit.
const maxLineLen = 1 << 20

// errLineTooLong reports a statement line over maxLineLen. By the time
// readLine returns it, the oversized line has been consumed through
// its newline, so the handler can reply with an ERR and carry on — the
// reply text is this error's message.
var errLineTooLong = errors.New("statement line too long")

// readLine reads one \n-terminated line into *buf (reused across
// calls), returning the line without its terminator. On EOF after a
// final unterminated line it returns that line together with the
// error, mirroring bufio.Scanner's handling of missing final newlines;
// the caller processes the line and then closes. A line over
// maxLineLen is discarded through its terminator and reported as
// errLineTooLong with the stream still in sync.
func readLine(r *bufio.Reader, buf *[]byte) ([]byte, error) {
	*buf = (*buf)[:0]
	tooLong := false
	for {
		frag, err := r.ReadSlice('\n')
		if !tooLong {
			*buf = append(*buf, frag...)
			if len(*buf) > maxLineLen {
				tooLong = true
				*buf = (*buf)[:0]
			}
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		if tooLong {
			if err != nil {
				// The connection died mid-oversized-line; surface the IO
				// error, there is no session left to warn.
				return nil, err
			}
			return nil, errLineTooLong
		}
		line := *buf
		if n := len(line); n > 0 && line[n-1] == '\n' {
			line = line[:n-1]
		}
		return line, err
	}
}

// safeExecute runs one statement, converting a panic anywhere under
// Execute into a client-visible error: one poisoned statement must
// cost its own session an error line, never the whole server process.
// The panic and its full stack go to logf — the client-visible message
// alone ("internal error: ...") is useless for diagnosing the crash it
// papered over.
func safeExecute(sess *engine.Session, line string, logf func(string, ...any)) (res *engine.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if logf != nil {
				logf("server: panic executing %q: %v\n%s", line, r, debug.Stack())
			}
			res = nil
			err = fmt.Errorf("internal error: %v", r)
		}
	}()
	if panicHook != nil {
		panicHook(line)
	}
	return sess.Execute(line)
}

// panicHook, when non-nil, runs at the top of safeExecute. It exists
// for tests only: the engine does not panic on any parseable input, so
// exercising the recovery path end-to-end over a real connection needs
// an injection point.
var panicHook func(line string)

// replyWriter is what reply rendering needs from its sink: the
// handler's *bufio.Writer on the direct path, a *bytes.Buffer when the
// reply is rendered for the dedup cache. Both provide AvailableBuffer,
// which keeps writeInt allocation-free either way.
type replyWriter interface {
	io.Writer
	WriteString(s string) (int, error)
	WriteByte(b byte) error
	AvailableBuffer() []byte
}

// writeErr writes one ERR reply line.
func writeErr(w replyWriter, msg string) {
	_, _ = w.WriteString("ERR ")
	_, _ = w.WriteString(escape(msg))
	_ = w.WriteByte('\n')
}

// writeInt writes n in decimal without the fmt machinery — the reply
// header costs four of these per statement. Appending into the
// writer's own buffer keeps the digits off the heap.
func writeInt(w replyWriter, n int64) {
	w.Write(strconv.AppendInt(w.AvailableBuffer(), n, 10))
}

func writeResult(w replyWriter, res *engine.Result) {
	fromCache := int64(0)
	if res.FromCache {
		fromCache = 1
	}
	w.WriteString("OK ")
	writeInt(w, int64(len(res.Rows)))
	w.WriteByte(' ')
	writeInt(w, int64(res.RowsAffected))
	w.WriteByte(' ')
	writeInt(w, fromCache)
	w.WriteByte(' ')
	writeInt(w, int64(res.RowsExamined))
	w.WriteByte('\n')
	if len(res.Rows) == 0 {
		return
	}
	w.WriteString("COLS ")
	w.WriteString(strings.Join(res.Columns, "\t"))
	w.WriteByte('\n')
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				w.WriteByte('\t')
			}
			if v.IsInt {
				w.WriteString("i:")
				writeInt(w, v.Int)
			} else {
				w.WriteString("s:")
				w.WriteString(escape(v.Str))
			}
		}
		w.WriteByte('\n')
	}
}

// EncodeValue renders a value in the wire format.
func EncodeValue(v sqlparse.Value) string {
	if v.IsInt {
		return "i:" + strconv.FormatInt(v.Int, 10)
	}
	return "s:" + escape(v.Str)
}

// DecodeValue parses a wire-format value.
func DecodeValue(s string) (sqlparse.Value, error) {
	switch {
	case strings.HasPrefix(s, "i:"):
		n, err := strconv.ParseInt(s[2:], 10, 64)
		if err != nil {
			return sqlparse.Value{}, fmt.Errorf("server: bad int %q: %w", s, err)
		}
		return sqlparse.IntValue(n), nil
	case strings.HasPrefix(s, "s:"):
		str, err := unescape(s[2:])
		if err != nil {
			return sqlparse.Value{}, err
		}
		return sqlparse.StrValue(str), nil
	default:
		return sqlparse.Value{}, fmt.Errorf("server: bad value tag in %q", s)
	}
}

// Escape renders s in the wire escaping: \\, \t, \n and \r become
// two-byte escapes, so no payload byte can be mistaken for a line or
// field terminator. Used for TEXT values and ERR messages.
func Escape(s string) string { return escape(s) }

// Unescape reverses Escape.
func Unescape(s string) (string, error) { return unescape(s) }

func escape(s string) string {
	if !strings.ContainsAny(s, "\\\t\n\r") {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '\t':
			sb.WriteString(`\t`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		default:
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

func unescape(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			sb.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("server: dangling escape in %q", s)
		}
		switch s[i] {
		case '\\':
			sb.WriteByte('\\')
		case 't':
			sb.WriteByte('\t')
		case 'n':
			sb.WriteByte('\n')
		case 'r':
			sb.WriteByte('\r')
		default:
			return "", fmt.Errorf("server: unknown escape \\%c", s[i])
		}
	}
	return sb.String(), nil
}
