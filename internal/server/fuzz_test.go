package server

import (
	"strings"
	"testing"
)

// FuzzUnescape drives the wire escaping both ways: Escape must render
// any string free of line and field terminators and be perfectly
// reversible, and Unescape must handle arbitrary attacker-controlled
// bytes without panicking — it sits directly on the untrusted side of
// every ERR message and TEXT value a client parses.
func FuzzUnescape(f *testing.F) {
	for _, seed := range []string{
		"", "plain", `a\tb`, "tab\there", "nl\nhere", "cr\rhere",
		`\\`, `trailing\`, `\x`, "mixed\t\n\r\\", `i:42`, `s:v`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		esc := Escape(s)
		if strings.ContainsAny(esc, "\t\n\r") {
			t.Fatalf("Escape(%q) = %q still contains a terminator byte", s, esc)
		}
		got, err := Unescape(esc)
		if err != nil {
			t.Fatalf("Unescape(Escape(%q)) failed: %v", s, err)
		}
		if got != s {
			t.Fatalf("round trip lost bytes: %q -> %q -> %q", s, esc, got)
		}
		// Arbitrary input is allowed to be rejected (dangling or unknown
		// escapes) but never to crash; accepted input must re-escape to
		// something that unescapes back to the same string.
		u, err := Unescape(s)
		if err != nil {
			return
		}
		again, err := Unescape(Escape(u))
		if err != nil || again != u {
			t.Fatalf("re-round-trip of %q diverged: %q, %v", u, again, err)
		}
	})
}
