package server_test

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"snapdb/internal/client"
	"snapdb/internal/engine"
	"snapdb/internal/failpoint"
	"snapdb/internal/netfault"
	"snapdb/internal/server"
	"snapdb/internal/storage"
)

// The network-torture harness: run a deterministic workload through a
// ReliableConn while seeded faults (resets, partial writes, latency,
// blackholed reads, dead-on-arrival accepts) savage the server's side
// of every connection, then assert the end state is byte-identical to
// a fault-free run. What the storage crash-torture harness proves for
// fsync-boundary durability, this proves for wire-level exactly-once:
// at-least-once resend plus server-side dedup leaves no statement
// lost, none double-applied, in the original order.
//
// The one artifact allowed to differ is the general log: a replayed
// arrival is logged again (see engine.Session.NoteReplay), so the
// faulted run's log is a superset whose extras are duplicates of
// statements the reference already holds — the retry residue that
// experiment E14 measures as a forensic channel.

// nettortureStmts is the deterministic workload: DDL, inserts, then a
// mixed read/update/delete phase. Everything is keyed so the final
// logical state is independent of timing.
func nettortureStmts() []string {
	stmts := []string{"CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance INT)"}
	for i := 0; i < 40; i++ {
		stmts = append(stmts, fmt.Sprintf(
			"INSERT INTO accounts (id, owner, balance) VALUES (%d, 'owner%d', %d)", i, i, 1000+i))
	}
	for i := 0; i < 30; i++ {
		switch i % 3 {
		case 0:
			stmts = append(stmts, fmt.Sprintf("UPDATE accounts SET balance = %d WHERE id = %d", 2000+i, i))
		case 1:
			stmts = append(stmts, fmt.Sprintf("SELECT owner, balance FROM accounts WHERE id = %d", i))
		case 2:
			stmts = append(stmts, fmt.Sprintf("SELECT COUNT(*) FROM accounts WHERE balance >= %d", 1000+i))
		}
	}
	for i := 35; i < 40; i++ {
		stmts = append(stmts, fmt.Sprintf("DELETE FROM accounts WHERE id = %d", i))
	}
	stmts = append(stmts, "SELECT COUNT(*) FROM accounts")
	return stmts
}

// netfaultSeeds parses SNAPDB_NETFAULT_SEEDS (comma-separated int64s),
// defaulting to one seed for the ordinary test run.
func netfaultSeeds(t testing.TB) []int64 {
	spec := os.Getenv("SNAPDB_NETFAULT_SEEDS")
	if spec == "" {
		return []int64{1}
	}
	var seeds []int64
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("SNAPDB_NETFAULT_SEEDS: %v", err)
		}
		seeds = append(seeds, n)
	}
	return seeds
}

// tortureServer starts a server whose listener is wrapped by netfault
// driven by reg (nil = unwrapped).
func tortureServer(t testing.TB, reg *failpoint.Registry) (string, *engine.Engine, func()) {
	t.Helper()
	cfg := engine.Defaults()
	cfg.EnableGeneralLog = true
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(e)
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var ln net.Listener = raw
	if reg != nil {
		ln = netfault.WrapListener(raw, netfault.Config{Reg: reg, Label: "srv", Hold: 10 * time.Millisecond})
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return raw.Addr().String(), e, func() {
		_ = srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

// runWorkload drives the full workload through rc, part singly and
// part batched, failing the test if any statement's outcome is lost.
func runWorkload(t testing.TB, ctx context.Context, rc *client.ReliableConn, stmts []string) {
	t.Helper()
	split := 10
	for i, stmt := range stmts[:split] {
		if _, err := rc.Execute(ctx, stmt); err != nil {
			t.Fatalf("stmt %d (%q): %v", i, stmt, err)
		}
	}
	res, err := rc.ExecuteBatch(ctx, stmts[split:])
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i, br := range res {
		if br.Err != nil {
			t.Fatalf("batched stmt %d (%q): %v", split+i, stmts[split+i], br.Err)
		}
	}
}

// snapshotArtifacts captures the forensic surfaces the harness diffs.
func snapshotArtifacts(t testing.TB, e *engine.Engine) (digest string, binlog []string, general map[string]int) {
	t.Helper()
	d, err := e.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range e.Binlog().Events() {
		binlog = append(binlog, ev.Statement)
	}
	general = make(map[string]int)
	for _, en := range e.GeneralLog().Entries() {
		general[en.Statement]++
	}
	return d, binlog, general
}

func TestNetworkTortureExactlyOnce(t *testing.T) {
	stmts := nettortureStmts()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Reference: the same workload, same client machinery, no faults.
	refAddr, refEng, refStop := tortureServer(t, nil)
	refRC, err := client.DialReliable(ctx, refAddr, client.RetryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, ctx, refRC, stmts)
	_ = refRC.Close()
	refDigest, refBinlog, refGeneral := snapshotArtifacts(t, refEng)
	refStop()

	// Dry run against a wrapped-but-unarmed listener to count the
	// workload's network operations — the crash-torture idiom: the
	// fault schedule must land inside the ops that actually happen,
	// not at hit counts the exchange never reaches.
	dryReg := failpoint.New(0)
	dryAddr, _, dryStop := tortureServer(t, dryReg)
	dryRC, err := client.DialReliable(ctx, dryAddr, client.RetryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, ctx, dryRC, stmts)
	_ = dryRC.Close()
	totalOps := int(dryReg.TotalHits())
	dryStop()
	if totalOps < 8 {
		t.Fatalf("dry run saw only %d network ops", totalOps)
	}

	for _, seed := range netfaultSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			reg := failpoint.New(seed)
			// A seeded schedule of one-shot faults spread across the
			// dry-run op count, all four kinds, all three points. Every
			// seed tortures a different part of the exchange; faults
			// triggering retries add ops, so later rules keep landing.
			rng := rand.New(rand.NewSource(seed))
			points := []string{"netread:srv", "netwrite:srv", "accept:srv"}
			kinds := []failpoint.Kind{failpoint.KindReset, failpoint.KindPartial, failpoint.KindLatency, failpoint.KindBlackhole}
			for i := 0; i < 12; i++ {
				reg.Arm(points[rng.Intn(len(points))], kinds[rng.Intn(len(kinds))], uint64(rng.Intn(totalOps)+2))
			}

			addr, eng, stop := tortureServer(t, reg)
			defer stop()
			rc, err := client.DialReliable(ctx, addr, client.RetryConfig{
				BackoffFloor: time.Millisecond,
				BackoffCap:   20 * time.Millisecond,
				MaxAttempts:  50,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer rc.Close()
			runWorkload(t, ctx, rc, stmts)

			digest, binlogStmts, general := snapshotArtifacts(t, eng)
			if digest != refDigest {
				t.Errorf("state digest diverged under faults:\n  faulted %s\n  ref     %s", digest, refDigest)
			}
			if strings.Join(binlogStmts, "\x00") != strings.Join(refBinlog, "\x00") {
				t.Errorf("binlog diverged: %d events vs %d reference (mutation applied twice or lost)",
					len(binlogStmts), len(refBinlog))
			}
			// General log: superset of the reference, extras being
			// duplicate arrivals only — the documented retry residue.
			extras := 0
			for stmt, n := range general {
				refN, known := refGeneral[stmt]
				if !known {
					t.Errorf("general log has statement the reference never ran: %q", stmt)
					continue
				}
				if n < refN {
					t.Errorf("general log lost arrivals of %q: %d < %d", stmt, n, refN)
				}
				extras += n - refN
			}
			for stmt := range refGeneral {
				if _, ok := general[stmt]; !ok {
					t.Errorf("general log missing %q", stmt)
				}
			}
			t.Logf("seed %d: %d network ops evaluated, %d duplicate general-log arrivals (retry residue)",
				seed, reg.TotalHits(), extras)
		})
	}
}

// TestReplyLossForcesReplayResidue pins the harness's key channel
// deterministically: a reset on the server's reply write loses an ack
// for a statement that DID execute, so the client's resend is answered
// from the dedup cache — leaving at least one duplicate general-log
// arrival while the state digest stays identical to the fault-free
// run. This is E14's residue channel reduced to its minimal case.
func TestReplyLossForcesReplayResidue(t *testing.T) {
	stmts := nettortureStmts()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	refAddr, refEng, refStop := tortureServer(t, nil)
	refRC, err := client.DialReliable(ctx, refAddr, client.RetryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, ctx, refRC, stmts)
	_ = refRC.Close()
	refDigest, _, refGeneral := snapshotArtifacts(t, refEng)
	refStop()

	reg := failpoint.New(7)
	// Write 1 is the !session handshake ack; writes 2 and 3 carry the
	// first two statements' replies. Resetting write 4 therefore loses
	// the ack of an executed statement.
	reg.Arm("netwrite:srv", failpoint.KindReset, 4)
	addr, eng, stop := tortureServer(t, reg)
	defer stop()
	rc, err := client.DialReliable(ctx, addr, client.RetryConfig{BackoffFloor: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	runWorkload(t, ctx, rc, stmts)

	digest, _, general := snapshotArtifacts(t, eng)
	if digest != refDigest {
		t.Errorf("digest diverged after reply-loss replay: %s vs %s", digest, refDigest)
	}
	extras := 0
	for stmt, n := range general {
		extras += n - refGeneral[stmt]
	}
	if extras < 1 {
		t.Errorf("reply loss left no duplicate general-log arrivals; the retry residue channel is gone")
	}
}

// TestUnarmedNetfaultWrapperIsTransparent pins the harness's own
// no-op: with zero rules armed, the wrapped listener must leave every
// forensic artifact identical to an unwrapped run — including the
// buffer pool's page-fetch trace, the most order-sensitive artifact
// the paper's experiments rely on.
func TestUnarmedNetfaultWrapperIsTransparent(t *testing.T) {
	stmts := nettortureStmts()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	run := func(reg *failpoint.Registry) (string, []storage.PageID) {
		addr, eng, stop := tortureServer(t, reg)
		defer stop()
		var trace []storage.PageID
		eng.BufferPool().SetTraceFunc(func(id storage.PageID) { trace = append(trace, id) })
		rc, err := client.DialReliable(ctx, addr, client.RetryConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		runWorkload(t, ctx, rc, stmts)
		digest, _, _ := snapshotArtifacts(t, eng)
		return digest, trace
	}

	plainDigest, plainTrace := run(nil)
	wrappedDigest, wrappedTrace := run(failpoint.New(99)) // armed with nothing

	if plainDigest != wrappedDigest {
		t.Errorf("digest differs under unarmed wrapper: %s vs %s", wrappedDigest, plainDigest)
	}
	if len(plainTrace) != len(wrappedTrace) {
		t.Fatalf("fetch trace length differs: %d vs %d", len(wrappedTrace), len(plainTrace))
	}
	for i := range plainTrace {
		if plainTrace[i] != wrappedTrace[i] {
			t.Fatalf("fetch trace diverges at %d: %v vs %v", i, wrappedTrace[i], plainTrace[i])
		}
	}
}
