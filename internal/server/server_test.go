package server_test

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"snapdb/internal/client"
	"snapdb/internal/engine"
	"snapdb/internal/server"
	"snapdb/internal/sqlparse"
)

// startServer runs a server on an ephemeral port and returns its
// address, the engine, and a shutdown func.
func startServer(t testing.TB) (string, *engine.Engine, func()) {
	t.Helper()
	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(e)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	addr := (<-ready).String()
	return addr, e, func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

func TestExecuteOverTCP(t *testing.T) {
	addr, _, stop := startServer(t)
	defer stop()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute("INSERT INTO t (id, name) VALUES (1, 'alice'), (2, 'bob')")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Errorf("affected = %d", res.RowsAffected)
	}
	res, err = c.Execute("SELECT id, name FROM t WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 2 || res.Rows[0][1].Str != "bob" {
		t.Errorf("rows = %v", res.Rows)
	}
	if len(res.Columns) != 2 || res.Columns[1] != "name" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	addr, _, stop := startServer(t)
	defer stop()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute("SELECT * FROM missing"); err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Errorf("err = %v", err)
	}
	// The connection survives an error.
	if _, err := c.Execute("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

func TestClientRejectsNewlines(t *testing.T) {
	addr, _, stop := startServer(t)
	defer stop()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute("SELECT 1\nFROM t"); err == nil {
		t.Error("newline statement accepted")
	}
}

func TestSpecialCharactersRoundTrip(t *testing.T) {
	addr, _, stop := startServer(t)
	defer stop()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	val := `tab	and back\slash`
	stmt := fmt.Sprintf("INSERT INTO t (id, v) VALUES (1, %s)", sqlparse.StrValue(val).SQL())
	if _, err := c.Execute(stmt); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute("SELECT v FROM t WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Str != val {
		t.Errorf("round trip = %q, want %q", res.Rows[0][0].Str, val)
	}
}

func TestRemoteQueriesVisibleInProcesslist(t *testing.T) {
	addr, e, stop := startServer(t)
	defer stop()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, p := range e.Processlist().Snapshot() {
		if strings.Contains(p.Statement, "CREATE TABLE t") && strings.Contains(p.User, "127.0.0.1") {
			found = true
		}
	}
	if !found {
		t.Error("remote statement not in processlist with the client address")
	}
}

func TestTransactionsPerConnection(t *testing.T) {
	addr, _, stop := startServer(t)
	defer stop()
	a, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if _, err := a.Execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Execute("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Execute("INSERT INTO t (id, v) VALUES (1, 1)"); err != nil {
		t.Fatal(err)
	}
	// b runs in autocommit while a's txn is open.
	if _, err := b.Execute("INSERT INTO t (id, v) VALUES (2, 2)"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Execute("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	res, err := b.Execute("SELECT id FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 2 {
		t.Errorf("rows after rollback = %v", res.Rows)
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, _, stop := startServer(t)
	defer stop()
	setup, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	const clients, perClient = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				id := w*perClient + i
				if _, err := c.Execute(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", id, id)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	check, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer check.Close()
	res, err := check.Execute("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != clients*perClient {
		t.Errorf("count = %d, want %d", res.Rows[0][0].Int, clients*perClient)
	}
}

func TestQuickValueWireRoundTrip(t *testing.T) {
	f := func(isInt bool, n int64, s string) bool {
		var v sqlparse.Value
		if isInt {
			v = sqlparse.IntValue(n)
		} else {
			v = sqlparse.StrValue(s)
		}
		got, err := server.DecodeValue(server.EncodeValue(v))
		return err == nil && got.Equal(v) && got.IsInt == v.IsInt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeValueErrors(t *testing.T) {
	for _, bad := range []string{"", "x:1", "i:notanumber", `s:trailing\`, `s:\q`} {
		if _, err := server.DecodeValue(bad); err == nil {
			t.Errorf("DecodeValue(%q) accepted", bad)
		}
	}
}

func TestIdleConnectionsAreClosed(t *testing.T) {
	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(e)
	srv.IdleTimeout = 100 * time.Millisecond
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	addr := (<-ready).String()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Activity inside the window keeps the connection alive: each
	// statement re-arms the deadline.
	br := bufio.NewReader(conn)
	if _, err := fmt.Fprintf(conn, "CREATE TABLE idle (id INT PRIMARY KEY)\n"); err != nil {
		t.Fatal(err)
	}
	if line, err := br.ReadString('\n'); err != nil || !strings.HasPrefix(line, "OK") {
		t.Fatalf("create: line=%q err=%v", line, err)
	}
	for i := 0; i < 3; i++ {
		time.Sleep(40 * time.Millisecond)
		if _, err := fmt.Fprintf(conn, "SELECT id FROM idle WHERE id = 0\n"); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if line, err := br.ReadString('\n'); err != nil || !strings.HasPrefix(line, "OK 0") {
			t.Fatalf("statement %d: line=%q err=%v", i, line, err)
		}
	}

	// Then go silent past the timeout: the server must close the
	// connection (our read sees EOF) and release the session.
	if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := br.ReadByte(); err == nil {
		t.Fatal("read after idle timeout returned data, want closed connection")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server did not close the idle connection within 2s")
	}
	// The session is gone from the processlist once the handler exits.
	deadline := time.Now().Add(2 * time.Second)
	for {
		alive := false
		for _, p := range e.Processlist().Snapshot() {
			if strings.Contains(p.User, "127.0.0.1") {
				alive = true
			}
		}
		if !alive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session still in processlist after close")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServeAfterCloseFails(t *testing.T) {
	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(e)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := srv.Serve(ln); err == nil {
		t.Error("Serve after Close succeeded")
	}
}
