package server_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"snapdb/internal/client"
	"snapdb/internal/engine"
	"snapdb/internal/server"
)

// startServerWith runs a customized server on an ephemeral port.
func startServerWith(t testing.TB, mutate func(*server.Server)) (string, *server.Server, *engine.Engine, func()) {
	t.Helper()
	return startServerCfg(t, engine.Defaults(), mutate)
}

// startServerCfg is startServerWith with an explicit engine config.
func startServerCfg(t testing.TB, cfg engine.Config, mutate func(*server.Server)) (string, *server.Server, *engine.Engine, func()) {
	t.Helper()
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(e)
	if mutate != nil {
		mutate(srv)
	}
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	addr := (<-ready).String()
	return addr, srv, e, func() {
		_ = srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

// rawSession opens a raw TCP connection with line-level send/expect
// helpers, for driving the control protocol directly.
type rawSession struct {
	t *testing.T
	c net.Conn
	r *bufio.Reader
}

func dialRaw(t *testing.T, addr string) *rawSession {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return &rawSession{t: t, c: c, r: bufio.NewReader(c)}
}

func (s *rawSession) send(line string) {
	s.t.Helper()
	if _, err := fmt.Fprintf(s.c, "%s\n", line); err != nil {
		s.t.Fatalf("send %q: %v", line, err)
	}
}

func (s *rawSession) line() string {
	s.t.Helper()
	_ = s.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := s.r.ReadString('\n')
	if err != nil {
		s.t.Fatalf("read line: %v", err)
	}
	return strings.TrimRight(line, "\r\n")
}

// expect reads one line and asserts its prefix, returning the rest.
func (s *rawSession) expect(prefix string) string {
	s.t.Helper()
	line := s.line()
	if !strings.HasPrefix(line, prefix) {
		s.t.Fatalf("got %q, want prefix %q", line, prefix)
	}
	return strings.TrimPrefix(line, prefix)
}

func TestControlHelloAndStampedStatements(t *testing.T) {
	addr, _, e, stop := startServerWith(t, nil)
	defer stop()
	s := dialRaw(t, addr)
	s.send("!hello")
	token := s.expect("!session ")
	if token == "" {
		t.Fatal("empty session token")
	}

	s.send("!q 1 CREATE TABLE r (id INT PRIMARY KEY, v INT)")
	s.expect("OK ")
	s.send("!q 2 INSERT INTO r (id, v) VALUES (1, 10)")
	s.expect("OK ")

	// Replay of an executed statement: answered from cache, executed
	// exactly once (still one row).
	s.send("!q 2 INSERT INTO r (id, v) VALUES (1, 10)")
	s.expect("OK ")
	s.send("!q 3 SELECT COUNT(*) FROM r")
	s.expect("OK 1")
	s.expect("COLS ")
	if got := s.line(); got != "i:1" {
		t.Fatalf("replayed INSERT applied twice: COUNT = %q", got)
	}
	_ = e
}

func TestControlReplayReturnsCachedError(t *testing.T) {
	addr, _, _, stop := startServerWith(t, nil)
	defer stop()
	s := dialRaw(t, addr)
	s.send("!hello")
	s.expect("!session ")

	s.send("!q 1 NOT REAL SQL")
	first := s.line()
	if !strings.HasPrefix(first, "ERR ") {
		t.Fatalf("want ERR, got %q", first)
	}
	// The failed statement's ERR is cached too: a retry must observe
	// the same outcome, not a second parse attempt logged as new.
	s.send("!q 1 NOT REAL SQL")
	if second := s.line(); second != first {
		t.Fatalf("replayed ERR differs: %q vs %q", second, first)
	}
}

func TestControlSequenceGapAndWindow(t *testing.T) {
	addr, _, _, stop := startServerWith(t, func(srv *server.Server) { srv.DedupWindow = 2 })
	defer stop()
	s := dialRaw(t, addr)
	s.send("!hello")
	s.expect("!session ")

	s.send("!q 5 SELECT 1")
	if got := s.expect("ERR "); !strings.Contains(got, "sequence gap") {
		t.Fatalf("gap reply = %q", got)
	}

	s.send("!q 1 CREATE TABLE w (id INT PRIMARY KEY)")
	s.expect("OK ")
	s.send("!q 2 INSERT INTO w (id) VALUES (1)")
	s.expect("OK ")
	s.send("!q 3 INSERT INTO w (id) VALUES (2)")
	s.expect("OK ")
	// seq 1 has fallen out of the 2-entry window.
	s.send("!q 1 CREATE TABLE w (id INT PRIMARY KEY)")
	if got := s.expect("ERR "); !strings.Contains(got, "replay window exceeded") {
		t.Fatalf("window reply = %q", got)
	}
}

func TestResumeAcrossReconnect(t *testing.T) {
	addr, srv, _, stop := startServerWith(t, nil)
	defer stop()

	s1 := dialRaw(t, addr)
	s1.send("!hello")
	token := s1.expect("!session ")
	s1.send("!q 1 CREATE TABLE rc (id INT PRIMARY KEY, v TEXT)")
	s1.expect("OK ")
	s1.send("!q 2 INSERT INTO rc (id, v) VALUES (1, 'sekrit')")
	s1.expect("OK ")
	_ = s1.c.Close() // the network "fails"

	s2 := dialRaw(t, addr)
	s2.send("!resume " + token)
	if rest := s2.expect("!ok "); rest == "" {
		t.Fatal("resume ack missing lastseq")
	}
	// Replay the tail the client never saw acked, then continue.
	s2.send("!q 2 INSERT INTO rc (id, v) VALUES (1, 'sekrit')")
	s2.expect("OK ")
	s2.send("!q 3 SELECT COUNT(*) FROM rc")
	s2.expect("OK 1")
	s2.expect("COLS ")
	if got := s2.line(); got != "i:1" {
		t.Fatalf("resumed replay double-applied: COUNT = %q", got)
	}

	if n := srv.ResumeSessionCount(); n != 1 {
		t.Fatalf("resume sessions = %d, want 1", n)
	}
	// The dedup cache retains rendered replies — including result rows
	// — long after the client is done with them (E14's point).
	found := false
	for _, reply := range srv.RetainedReplies() {
		if strings.Contains(string(reply), "OK ") {
			found = true
		}
	}
	if !found {
		t.Fatal("no retained replies in dedup cache")
	}

	s2.send("!resume " + token)
	s2.expect("!err ") // already established on this conn
}

func TestResumeUnknownTokenRejected(t *testing.T) {
	addr, _, _, stop := startServerWith(t, nil)
	defer stop()
	s := dialRaw(t, addr)
	s.send("!resume deadbeef")
	if msg := s.expect("!err "); !strings.Contains(msg, "unknown or expired") {
		t.Fatalf("reject = %q", msg)
	}
	// The connection survives the failed resume for plain use.
	s.send("SELECT 1")
	s.expect("ERR ") // unknown table/parse error, but a reply nonetheless
}

func TestOverloadRejectionIsTypedAndRetryable(t *testing.T) {
	// MaxConcurrent=1 and every statement holds its slot ≥50ms (the
	// simulated device wait): while connection A's statement is in
	// flight, connection B's must be rejected with the retryable
	// overloaded ERR — deterministically, not by racing the scheduler.
	cfg := engine.Defaults()
	cfg.SimulatedIOWait = 50 * time.Millisecond
	addr, _, _, stop := startServerCfg(t, cfg, func(srv *server.Server) { srv.MaxConcurrent = 1 })
	defer stop()

	a, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := a.Execute("CREATE TABLE ol (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}

	inFlight := make(chan error, 1)
	go func() {
		_, err := a.Execute("SELECT COUNT(*) FROM ol")
		inFlight <- err
	}()
	time.Sleep(10 * time.Millisecond) // a's statement is now inside its 50ms wait
	_, err = b.Execute("SELECT COUNT(*) FROM ol")
	if err == nil {
		t.Fatal("second concurrent statement was admitted past MaxConcurrent=1")
	}
	if !client.IsRetryable(err) {
		t.Fatalf("overload rejection not retryable: %v", err)
	}
	if !strings.Contains(err.Error(), "max 1") {
		t.Fatalf("rejection does not name the cap: %v", err)
	}
	if err := <-inFlight; err != nil {
		t.Fatalf("in-flight statement failed: %v", err)
	}
	// The slot is free again: b retries and succeeds.
	if _, err := b.Execute("SELECT COUNT(*) FROM ol"); err != nil {
		t.Fatalf("retry after overload failed: %v", err)
	}
}

func TestLongLineDrawsErrAndKeepsSession(t *testing.T) {
	addr, _, _, stop := startServerWith(t, nil)
	defer stop()
	s := dialRaw(t, addr)

	// An oversized statement line (> 1 MiB): ERR reply, session lives.
	huge := strings.Repeat("x", (1<<20)+100)
	s.send(huge)
	if msg := s.expect("ERR "); !strings.Contains(msg, "statement line too long") {
		t.Fatalf("long-line reply = %q", msg)
	}
	s.send("CREATE TABLE ll (id INT PRIMARY KEY)")
	s.expect("OK ")
	s.send("INSERT INTO ll (id) VALUES (7)")
	s.expect("OK ")
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	addr, srv, _, stop := startServerWith(t, nil)
	defer stop()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute("CREATE TABLE dr (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}

	// Pipeline a burst, then shut down while replies may be in flight:
	// every statement must still be answered before the server closes.
	stmts := make([]string, 0, 50)
	for i := 0; i < 50; i++ {
		stmts = append(stmts, fmt.Sprintf("INSERT INTO dr (id, v) VALUES (%d, %d)", i, i))
	}
	type batchOut struct {
		res []client.BatchResult
		err error
	}
	got := make(chan batchOut, 1)
	go func() {
		res, err := c.ExecuteBatch(stmts)
		got <- batchOut{res, err}
	}()
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	out := <-got
	if out.err != nil {
		t.Fatalf("batch failed across graceful shutdown: %v", out.err)
	}
	for i, br := range out.res {
		if br.Err != nil {
			t.Fatalf("statement %d errored during drain: %v", i, br.Err)
		}
	}

	// New connections are refused after shutdown.
	if _, err := client.Dial(addr); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

func TestShutdownInterruptsIdleConnections(t *testing.T) {
	addr, srv, _, stop := startServerWith(t, nil)
	defer stop()
	s := dialRaw(t, addr)
	s.send("SELECT 1")
	s.expect("ERR ") // no table; just proves the conn is live and idle now

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shutdown waited %v on an idle connection", elapsed)
	}
	// The idle peer observes EOF, not a stall.
	_ = s.c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := s.r.ReadByte(); err == nil {
		t.Fatal("idle conn still open after shutdown")
	}
}

func TestReliableConnRidesAcrossServerFacingClose(t *testing.T) {
	addr, _, _, stop := startServerWith(t, nil)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rc, err := client.DialReliable(ctx, addr, client.RetryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	if _, err := rc.Execute(ctx, "CREATE TABLE rr (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	stmts := make([]string, 0, 100)
	for i := 0; i < 100; i++ {
		stmts = append(stmts, fmt.Sprintf("INSERT INTO rr (id, v) VALUES (%d, %d)", i, i))
	}
	res, err := rc.ExecuteBatch(ctx, stmts)
	if err != nil {
		t.Fatal(err)
	}
	for i, br := range res {
		if br.Err != nil {
			t.Fatalf("stmt %d: %v", i, br.Err)
		}
	}
	out, err := rc.Execute(ctx, "SELECT COUNT(*) FROM rr")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0][0].Int != 100 {
		t.Fatalf("COUNT = %d, want 100", out.Rows[0][0].Int)
	}

	// A statement-level error is a result, not a retry trigger.
	if _, err := rc.Execute(ctx, "INSERT INTO rr (id, v) VALUES (0, 0)"); err == nil {
		t.Fatal("duplicate-key insert succeeded")
	} else if errors.Is(err, client.ErrSessionExpired) {
		t.Fatalf("statement error misclassified: %v", err)
	}
}
