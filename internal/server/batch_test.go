package server_test

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"testing/quick"

	"snapdb/internal/client"
	"snapdb/internal/server"
)

func TestExecuteBatch(t *testing.T) {
	addr, _, stop := startServer(t)
	defer stop()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	results, err := c.ExecuteBatch([]string{
		"CREATE TABLE t (id INT PRIMARY KEY, name TEXT)",
		"INSERT INTO t (id, name) VALUES (1, 'alice'), (2, 'bob')",
		"SELECT id, name FROM t WHERE id = 2",
	})
	if err != nil {
		t.Fatalf("ExecuteBatch: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i, br := range results[:2] {
		if br.Err != nil {
			t.Fatalf("statement %d: %v", i, br.Err)
		}
	}
	if results[1].Result.RowsAffected != 2 {
		t.Errorf("INSERT affected %d rows, want 2", results[1].Result.RowsAffected)
	}
	sel := results[2].Result
	if sel == nil || len(sel.Rows) != 1 {
		t.Fatalf("SELECT result = %+v, want 1 row", sel)
	}
	if got := sel.Rows[0][1].Str; got != "bob" {
		t.Errorf("SELECT name = %q, want %q", got, "bob")
	}
}

// TestExecuteBatchErrorIsolation checks that a failing statement in
// the middle of a batch yields its own error while the statements
// after it still run — the same isolation sequential Execute gives.
func TestExecuteBatchErrorIsolation(t *testing.T) {
	addr, _, stop := startServer(t)
	defer stop()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	results, err := c.ExecuteBatch([]string{
		"CREATE TABLE t (id INT PRIMARY KEY)",
		"SELECT * FROM missing",
		"INSERT INTO t (id) VALUES (7)",
		"SELECT id FROM t",
	})
	if err != nil {
		t.Fatalf("ExecuteBatch: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	var se *client.ServerError
	if !errors.As(results[1].Err, &se) || !strings.Contains(se.Msg, "unknown table") {
		t.Errorf("statement 1 error = %v, want ServerError about unknown table", results[1].Err)
	}
	if results[2].Err != nil || results[3].Err != nil {
		t.Fatalf("statements after the error failed: %v, %v", results[2].Err, results[3].Err)
	}
	if got := len(results[3].Result.Rows); got != 1 {
		t.Errorf("post-error SELECT saw %d rows, want 1", got)
	}
}

func TestExecuteBatchRejectsBadStatements(t *testing.T) {
	addr, _, stop := startServer(t)
	defer stop()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.ExecuteBatch([]string{"SELECT 1\nFROM t"}); err == nil {
		t.Error("statement with newline accepted")
	}
	if _, err := c.ExecuteBatch([]string{"  "}); err == nil {
		t.Error("blank statement accepted (would desync the reply stream)")
	}
	if res, err := c.ExecuteBatch(nil); err != nil || res != nil {
		t.Errorf("empty batch = (%v, %v), want (nil, nil)", res, err)
	}
}

// TestMultiLineErrorRoundTrip checks the client recovers an ERR
// payload with embedded newlines, tabs, and carriage returns
// byte-for-byte, via a scripted server speaking the wire format.
// Before ERR payloads were escaped, the extra lines were flattened to
// spaces (and a payload ending in \r was eaten by line trimming).
func TestMultiLineErrorRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	const msg = "line one\nline two\ttabbed\rreturn ends in cr\r"
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		if _, err := br.ReadString('\n'); err != nil {
			return
		}
		fmt.Fprintf(conn, "ERR %s\n", server.Escape(msg))
	}()

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Execute("SELECT 1")
	var se *client.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("error = %v (%T), want *client.ServerError", err, err)
	}
	if se.Msg != msg {
		t.Errorf("message round trip:\n got %q\nwant %q", se.Msg, msg)
	}
}

// TestServerErrorType checks real server ERR replies surface as
// *client.ServerError and leave the connection usable.
func TestServerErrorType(t *testing.T) {
	addr, _, stop := startServer(t)
	defer stop()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Execute("SELECT * FROM missing")
	var se *client.ServerError
	if !errors.As(err, &se) || !strings.Contains(se.Msg, "unknown table") {
		t.Fatalf("error = %v (%T), want *client.ServerError about unknown table", err, err)
	}
	if _, err := c.Execute("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatalf("connection unusable after ERR: %v", err)
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	cases := []string{
		"", "plain", "tab\there", "line\nbreak", "cr\rhere", "trailing\r",
		"back\\slash", "\\n literal", "mix\t\n\r\\\t", "\r\n", "\\",
	}
	for _, s := range cases {
		got, err := server.Unescape(server.Escape(s))
		if err != nil {
			t.Errorf("Unescape(Escape(%q)): %v", s, err)
			continue
		}
		if got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
		if esc := server.Escape(s); strings.ContainsAny(esc, "\t\n\r") {
			t.Errorf("Escape(%q) = %q still holds wire metacharacters", s, esc)
		}
	}
	if err := quick.Check(func(s string) bool {
		got, err := server.Unescape(server.Escape(s))
		return err == nil && got == s
	}, nil); err != nil {
		t.Error(err)
	}
}
