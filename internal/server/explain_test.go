package server_test

import (
	"strings"
	"testing"

	"snapdb/internal/client"
)

// EXPLAIN end to end over the wire: the rendered operator tree comes
// back as rows, the leaf names its access path, and the OK header's
// rows-examined counter reports what ordinary statements scanned.
func TestExplainOverTCP(t *testing.T) {
	addr, _, stop := startServer(t)
	defer stop()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	setup := []string{
		"CREATE TABLE t (id INT PRIMARY KEY, name TEXT, score INT)",
		"INSERT INTO t (id, name, score) VALUES (1, 'a', 10), (2, 'b', 20), (3, 'c', 30)",
		"CREATE INDEX idx_score ON t (score)",
	}
	for _, q := range setup {
		if _, err := c.Execute(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}

	lines, err := c.Explain("SELECT name FROM t WHERE score = 20")
	if err != nil {
		t.Fatal(err)
	}
	plan := strings.Join(lines, "\n")
	for _, want := range []string{"Key lookup on t via idx_score", "access=index:idx_score"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}

	lines, err = c.Explain("SELECT * FROM t WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 || !strings.Contains(lines[len(lines)-1], "Point scan on t using PRIMARY") {
		t.Errorf("point-scan plan = %v", lines)
	}

	if _, err := c.Explain("SELECT * FROM missing"); err == nil {
		t.Error("EXPLAIN of a missing table did not error")
	}

	// The examined counter rides the OK header: a full scan over three
	// rows reports 3 examined, a point select reports 1.
	res, err := c.Execute("SELECT * FROM t WHERE score > 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsExamined != 3 {
		t.Errorf("full scan examined = %d, want 3", res.RowsExamined)
	}
	res, err = c.Execute("SELECT * FROM t WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsExamined != 1 {
		t.Errorf("point select examined = %d, want 1", res.RowsExamined)
	}
}

// EXPLAIN ANALYZE end to end over the wire: the annotated tree comes
// back with real counters, and a mutation wrapped in it actually
// applies server-side.
func TestExplainAnalyzeOverTCP(t *testing.T) {
	addr, _, stop := startServer(t)
	defer stop()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	setup := []string{
		"CREATE TABLE t (id INT PRIMARY KEY, name TEXT, score INT)",
		"INSERT INTO t (id, name, score) VALUES (1, 'a', 10), (2, 'b', 20), (3, 'c', 30), (4, 'd', 40)",
	}
	for _, q := range setup {
		if _, err := c.Execute(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}

	lines, err := c.ExplainAnalyze("SELECT name FROM t ORDER BY score DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	plan := strings.Join(lines, "\n")
	for _, want := range []string{"Top-N sort: score DESC (limit 2)", "examined=4", "returned=2", "fetches="} {
		if !strings.Contains(plan, want) {
			t.Errorf("analyzed plan missing %q:\n%s", want, plan)
		}
	}

	lines, err = c.ExplainAnalyze("UPDATE t SET score = 99 WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 || !strings.Contains(lines[0], "-> Update: t (affected=1)") {
		t.Errorf("analyzed UPDATE = %v", lines)
	}
	res, err := c.Execute("SELECT score FROM t WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 99 {
		t.Errorf("EXPLAIN ANALYZE UPDATE did not apply over the wire: %v", res.Rows)
	}

	if _, err := c.ExplainAnalyze("SELECT * FROM information_schema.processlist"); err == nil {
		t.Error("EXPLAIN ANALYZE of a system table did not error")
	}
}

// LIMIT semantics over the wire: LIMIT 0 is a real, empty limit; the
// empty result still carries the scan's examined counter.
func TestLimitBoundsOverTCP(t *testing.T) {
	addr, _, stop := startServer(t)
	defer stop()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	setup := []string{
		"CREATE TABLE t (id INT PRIMARY KEY, v INT)",
		"INSERT INTO t (id, v) VALUES (1, 30), (2, 10), (3, 20)",
	}
	for _, q := range setup {
		if _, err := c.Execute(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}

	for _, tc := range []struct {
		query string
		want  int
	}{
		{"SELECT id FROM t ORDER BY v LIMIT 0", 0},
		{"SELECT id FROM t ORDER BY v LIMIT 1", 1},
		{"SELECT id FROM t ORDER BY v LIMIT 99", 3},
		{"SELECT COUNT(*) FROM t LIMIT 0", 0},
	} {
		res, err := c.Execute(tc.query)
		if err != nil {
			t.Fatalf("%s: %v", tc.query, err)
		}
		if len(res.Rows) != tc.want {
			t.Errorf("%s: %d rows, want %d", tc.query, len(res.Rows), tc.want)
		}
		if res.RowsExamined != 3 {
			t.Errorf("%s: examined = %d, want 3 (LIMIT must not change the scan)", tc.query, res.RowsExamined)
		}
	}
	res, err := c.Execute("SELECT id FROM t ORDER BY v LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 2 {
		t.Errorf("top-1 by v = %v, want id 2", res.Rows)
	}
}
