package server_test

import (
	"strings"
	"testing"

	"snapdb/internal/client"
)

// EXPLAIN end to end over the wire: the rendered operator tree comes
// back as rows, the leaf names its access path, and the OK header's
// rows-examined counter reports what ordinary statements scanned.
func TestExplainOverTCP(t *testing.T) {
	addr, _, stop := startServer(t)
	defer stop()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	setup := []string{
		"CREATE TABLE t (id INT PRIMARY KEY, name TEXT, score INT)",
		"INSERT INTO t (id, name, score) VALUES (1, 'a', 10), (2, 'b', 20), (3, 'c', 30)",
		"CREATE INDEX idx_score ON t (score)",
	}
	for _, q := range setup {
		if _, err := c.Execute(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}

	lines, err := c.Explain("SELECT name FROM t WHERE score = 20")
	if err != nil {
		t.Fatal(err)
	}
	plan := strings.Join(lines, "\n")
	for _, want := range []string{"Key lookup on t via idx_score", "access=index:idx_score"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}

	lines, err = c.Explain("SELECT * FROM t WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 || !strings.Contains(lines[len(lines)-1], "Point scan on t using PRIMARY") {
		t.Errorf("point-scan plan = %v", lines)
	}

	if _, err := c.Explain("SELECT * FROM missing"); err == nil {
		t.Error("EXPLAIN of a missing table did not error")
	}

	// The examined counter rides the OK header: a full scan over three
	// rows reports 3 examined, a point select reports 1.
	res, err := c.Execute("SELECT * FROM t WHERE score > 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsExamined != 3 {
		t.Errorf("full scan examined = %d, want 3", res.RowsExamined)
	}
	res, err = c.Execute("SELECT * FROM t WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsExamined != 1 {
		t.Errorf("point select examined = %d, want 1", res.RowsExamined)
	}
}
