package core

import (
	"strings"
	"testing"

	"snapdb/internal/crypto/prim"
	"snapdb/internal/edb/cryptdbx"
	"snapdb/internal/engine"
	"snapdb/internal/snapshot"
	"snapdb/internal/sqlparse"
)

// workloadEngine runs a small mixed workload through the engine.
func workloadEngine(t testing.TB) *engine.Engine {
	t.Helper()
	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	e.Clock = func() int64 { return 1_700_000_000 }
	s := e.Connect("app")
	queries := []string{
		"CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance INT)",
		"INSERT INTO accounts (id, owner, balance) VALUES (1, 'alice', 100)",
		"INSERT INTO accounts (id, owner, balance) VALUES (2, 'bob', 250)",
		"UPDATE accounts SET balance = 175 WHERE id = 2",
		"DELETE FROM accounts WHERE id = 1",
		"SELECT owner FROM accounts WHERE id = 2",
		"SELECT COUNT(*) FROM accounts",
	}
	for _, q := range queries {
		if _, err := s.Execute(q); err != nil {
			t.Fatalf("Execute(%q): %v", q, err)
		}
	}
	return e
}

func TestAnalyzeNil(t *testing.T) {
	if _, err := Analyze(nil, nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}

func TestAnalyzeDiskTheft(t *testing.T) {
	e := workloadEngine(t)
	rep, err := Analyze(snapshot.Capture(e, snapshot.DiskTheft), CatalogOf(e))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PastWrites != 4 { // 2 inserts + 1 update + 1 delete
		t.Errorf("past writes = %d, want 4", rep.PastWrites)
	}
	if !rep.Has("wal") || !rep.Has("binlog") || !rep.Has("lsn-correlation") {
		t.Errorf("missing §3 channels: %+v", rep.Findings)
	}
	if rep.Has("heap") || rep.Has("processlist") {
		t.Error("disk theft must not yield volatile channels")
	}
	wal, _ := rep.Finding("wal")
	joined := strings.Join(wal.Samples, "\n")
	if !strings.Contains(joined, "'alice'") {
		t.Errorf("reconstructed writes lost literals:\n%s", joined)
	}
	if rep.TimedWrites != rep.PastWrites {
		t.Errorf("timed %d of %d writes", rep.TimedWrites, rep.PastWrites)
	}
}

func TestAnalyzeSQLInjection(t *testing.T) {
	e := workloadEngine(t)
	rep, err := Analyze(snapshot.Capture(e, snapshot.SQLInjection), CatalogOf(e))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Has("statement-history") || !rep.Has("digest-table") || !rep.Has("processlist") {
		t.Errorf("missing §4 channels: %+v", rep.Findings)
	}
	hist, _ := rep.Finding("statement-history")
	if !strings.Contains(strings.Join(hist.Samples, "\n"), "SELECT owner FROM accounts") {
		t.Error("history lost the SELECT")
	}
	if rep.DigestRows == 0 {
		t.Error("digest histogram empty")
	}
	if rep.Has("heap") {
		t.Error("SQLi must not yield heap")
	}
}

func TestAnalyzeFullCompromise(t *testing.T) {
	e := workloadEngine(t)
	rep, err := Analyze(snapshot.Capture(e, snapshot.FullCompromise), CatalogOf(e))
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range []string{"wal", "binlog", "digest-table", "heap", "query-cache", "access-counters"} {
		if !rep.Has(ch) {
			t.Errorf("full compromise missing channel %q", ch)
		}
	}
	if rep.HeapQueries == 0 {
		t.Error("no queries scraped from heap")
	}
	if rep.CachedResults == 0 {
		t.Error("query cache empty")
	}
	heap, _ := rep.Finding("heap")
	if !strings.Contains(strings.Join(heap.Samples, "\n"), "SELECT") {
		t.Error("heap samples contain no SELECT")
	}
}

func TestFindingsSortedBySeverity(t *testing.T) {
	e := workloadEngine(t)
	rep, err := Analyze(snapshot.Capture(e, snapshot.FullCompromise), CatalogOf(e))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rep.Findings); i++ {
		if rep.Findings[i].Severity > rep.Findings[i-1].Severity {
			t.Fatal("findings not sorted by severity")
		}
	}
}

func TestTokenRecoveryFromEDBWorkload(t *testing.T) {
	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	proxy := cryptdbx.New(e, prim.TestKey("core-edb"))
	specs := []cryptdbx.ColumnSpec{
		{Name: "id", Type: sqlparse.TypeInt, Mode: cryptdbx.OPE},
		{Name: "body", Type: sqlparse.TypeText, Mode: cryptdbx.SEARCH},
	}
	if err := proxy.CreateTable("mail", specs); err != nil {
		t.Fatal(err)
	}
	if err := proxy.Insert("mail", []sqlparse.Value{sqlparse.IntValue(1), sqlparse.StrValue("merger talks friday")}); err != nil {
		t.Fatal(err)
	}
	if _, err := proxy.Search("mail", "body", "merger"); err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(snapshot.Capture(e, snapshot.VMSnapshotLeak), CatalogOf(e))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TokensFound == 0 {
		t.Fatal("search token not recovered from snapshot")
	}
	f, _ := rep.Finding("search-tokens")
	if f.Severity != SeverityTokenLeak {
		t.Errorf("token severity = %v", f.Severity)
	}
	if len(f.Samples) == 0 || len(f.Samples[0]) != 64 {
		t.Errorf("token sample malformed: %q", f.Samples)
	}
}

func TestGeneralLogChannelWhenEnabled(t *testing.T) {
	cfg := engine.Defaults()
	cfg.EnableGeneralLog = true
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := e.Connect("app")
	if _, err := s.Execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute("SELECT * FROM t"); err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(snapshot.Capture(e, snapshot.DiskTheft), CatalogOf(e))
	if err != nil {
		t.Fatal(err)
	}
	f, ok := rep.Finding("general-log")
	if !ok {
		t.Fatal("general log channel missing")
	}
	if !strings.Contains(strings.Join(f.Samples, "\n"), "SELECT * FROM t") {
		t.Error("general log lost the SELECT")
	}
}

func TestSeverityStrings(t *testing.T) {
	if SeverityInfo.String() != "info" || SeverityTokenLeak.String() != "token-leak" {
		t.Error("severity names wrong")
	}
	if !strings.HasPrefix(Severity(9).String(), "Severity(") {
		t.Error("unknown severity should render numerically")
	}
}

func TestReportFindingLookup(t *testing.T) {
	r := &Report{Findings: []Finding{{Channel: "x", Count: 3}}}
	if f, ok := r.Finding("x"); !ok || f.Count != 3 {
		t.Error("Finding lookup broken")
	}
	if _, ok := r.Finding("missing"); ok {
		t.Error("phantom finding")
	}
}
