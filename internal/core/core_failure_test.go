package core

import (
	"testing"

	"snapdb/internal/snapshot"
)

// corruptedSnapshot builds a full snapshot and then damages one disk
// artifact.
func corruptedSnapshot(t *testing.T, damage func(*snapshot.DiskState)) *snapshot.Snapshot {
	t.Helper()
	e := workloadEngine(t)
	snap := snapshot.Capture(e, snapshot.FullCompromise)
	damage(snap.Disk)
	return snap
}

func TestAnalyzeCorruptWAL(t *testing.T) {
	snap := corruptedSnapshot(t, func(d *snapshot.DiskState) {
		d.RedoLog = []byte{0xDE, 0xAD} // unparseable from byte 0
	})
	if _, err := Analyze(snap, nil); err == nil {
		t.Error("fully corrupt WAL accepted")
	}
}

func TestAnalyzeTornWALTailTolerated(t *testing.T) {
	snap := corruptedSnapshot(t, func(d *snapshot.DiskState) {
		d.RedoLog = d.RedoLog[:len(d.RedoLog)-3] // torn final record
	})
	rep, err := Analyze(snap, nil)
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if rep.PastWrites == 0 {
		t.Error("no writes recovered from torn log")
	}
}

func TestAnalyzeCorruptBinlog(t *testing.T) {
	snap := corruptedSnapshot(t, func(d *snapshot.DiskState) {
		d.Binlog = d.Binlog[:10] // truncated header
	})
	if _, err := Analyze(snap, nil); err == nil {
		t.Error("corrupt binlog accepted")
	}
}

func TestAnalyzeCorruptBufferPoolDump(t *testing.T) {
	snap := corruptedSnapshot(t, func(d *snapshot.DiskState) {
		d.BufferPoolDump = []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	})
	if _, err := Analyze(snap, nil); err == nil {
		t.Error("corrupt buffer pool dump accepted")
	}
}

func TestAnalyzeCorruptQueryLog(t *testing.T) {
	snap := corruptedSnapshot(t, func(d *snapshot.DiskState) {
		d.SlowLog = "not a log line at all\n"
	})
	if _, err := Analyze(snap, nil); err == nil {
		t.Error("corrupt slow log accepted")
	}
}

func TestAnalyzeEmptyEngineSnapshot(t *testing.T) {
	// A freshly started engine: nothing executed, nothing to find.
	snap := corruptedSnapshot(t, func(d *snapshot.DiskState) {
		d.RedoLog, d.UndoLog, d.Binlog = nil, nil, nil
		d.GeneralLog, d.SlowLog = "", ""
		d.BufferPoolDump = nil
	})
	snap.Diagnostics = nil
	snap.Memory = nil
	rep, err := Analyze(snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PastWrites != 0 || len(rep.Findings) != 0 {
		t.Errorf("findings from empty snapshot: %+v", rep.Findings)
	}
}

func TestAnalyzeNilCatalogUsesDiskSchemaFiles(t *testing.T) {
	// The schema files travel with the stolen disk, so a nil catalog
	// argument still reconstructs with real table and column names.
	e := workloadEngine(t)
	rep, err := Analyze(snapshot.Capture(e, snapshot.DiskTheft), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PastWrites == 0 {
		t.Error("reconstruction recovered nothing")
	}
	f, _ := rep.Finding("wal")
	found := false
	for _, s := range f.Samples {
		if containsAny(s, "accounts", "owner") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected real schema names in %q", f.Samples)
	}
}

func TestAnalyzeMissingSchemaFilesFallsBackToGenericNames(t *testing.T) {
	snap := corruptedSnapshot(t, func(d *snapshot.DiskState) {
		d.Catalog = nil // schema files destroyed/absent
	})
	rep, err := Analyze(snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := rep.Finding("wal")
	found := false
	for _, s := range f.Samples {
		if containsAny(s, "table_", "col0") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected generic names in %q", f.Samples)
	}
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if len(sub) > 0 && len(s) >= len(sub) {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
		}
	}
	return false
}
