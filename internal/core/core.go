// Package core is snapdb's top-level contribution: given a single
// static snapshot of a DBMS (the paper's "snapshot attacker"), it
// inventories everything the snapshot reveals about *past queries* —
// the information the encrypted-database literature assumes a snapshot
// attacker cannot have — and grades its severity.
//
// The analyzer is the programmatic form of the paper's argument:
// "there is no such thing as a snapshot attacker who cannot observe
// past queries", demonstrated channel by channel:
//
//	§3  logs on disk       — WAL write reconstruction, binlog text +
//	                         timestamps, LSN↔time correlation, query
//	                         logs, buffer-pool dump
//	§4  diagnostic tables  — processlist, statement history, digest
//	                         histogram
//	§5  in-memory state    — heap query residue, query cache, search
//	                         tokens, buffer-pool access counters
package core

import (
	"fmt"
	"regexp"
	"sort"

	"snapdb/internal/bufpool"
	"snapdb/internal/engine"
	"snapdb/internal/forensics"
	"snapdb/internal/snapshot"
)

// Severity grades a finding.
type Severity int

// Severity levels.
const (
	// SeverityInfo: structural information (sizes, page ids).
	SeverityInfo Severity = iota
	// SeverityQueryLeak: past query text, timing, or distribution.
	SeverityQueryLeak
	// SeverityTokenLeak: cryptographic material (search tokens) that
	// directly breaks a scheme's security definition.
	SeverityTokenLeak
)

func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityQueryLeak:
		return "query-leak"
	case SeverityTokenLeak:
		return "token-leak"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Finding is one leakage channel's yield.
type Finding struct {
	Channel     string // e.g. "wal", "binlog", "digest-table", "heap"
	PaperRef    string // section of the paper demonstrating the channel
	Severity    Severity
	Description string
	Count       int      // number of recovered artifacts
	Samples     []string // up to maxSamples example artifacts
}

const maxSamples = 5

// Report is the full leakage inventory of one snapshot.
type Report struct {
	Attack   snapshot.AttackType
	Findings []Finding

	// Aggregates the experiments read off directly.
	PastWrites     int // write statements reconstructed from the WAL
	PastReads      int // read statements recovered from any channel
	TokensFound    int // search tokens recovered
	DigestRows     int // query-type histogram rows
	TimedWrites    int // writes with (estimated or exact) timestamps
	HeapQueries    int // distinct query strings scraped from the heap
	CachedResults  int // query cache entries (query + full result set)
	HotPagesListed int // pages with access counters exposed
}

// Has reports whether the report contains a finding on channel.
func (r *Report) Has(channel string) bool {
	for _, f := range r.Findings {
		if f.Channel == channel {
			return true
		}
	}
	return false
}

// Finding returns the finding for a channel.
func (r *Report) Finding(channel string) (Finding, bool) {
	for _, f := range r.Findings {
		if f.Channel == channel {
			return f, true
		}
	}
	return Finding{}, false
}

// CatalogOf extracts the forensic catalog (WAL table id → schema) from
// an engine. A real attacker reads the same information out of the
// stolen disk's schema files; snapshot.Capture records it for exactly
// that reason.
func CatalogOf(e *engine.Engine) forensics.Catalog { return snapshot.CatalogOf(e) }

// tokenPattern matches the hex search tokens embedded in rewritten
// search statements (cryptdbx.Search's UDF form).
var tokenPattern = regexp.MustCompile(`search_match\([A-Za-z0-9_]+, '([0-9a-f]{64})'\)`)

// Analyze inventories a snapshot. cat may be nil when no WAL
// reconstruction is wanted (reconstruction then falls back to generic
// column names).
func Analyze(snap *snapshot.Snapshot, cat forensics.Catalog) (*Report, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	r := &Report{Attack: snap.Attack}
	if cat == nil && snap.Disk != nil {
		// The schema files travel with the stolen disk.
		cat = snap.Disk.Catalog
	}
	if snap.Disk != nil {
		if err := analyzeDisk(r, snap.Disk, cat); err != nil {
			return nil, err
		}
	}
	if snap.Diagnostics != nil {
		analyzeDiagnostics(r, snap.Diagnostics)
	}
	if snap.Memory != nil {
		analyzeMemory(r, snap.Memory)
	}
	sort.SliceStable(r.Findings, func(i, j int) bool {
		return r.Findings[i].Severity > r.Findings[j].Severity
	})
	return r, nil
}

// sampled keeps the most recent artifacts (channels list oldest first).
func sampled(all []string) []string {
	if len(all) > maxSamples {
		all = all[len(all)-maxSamples:]
	}
	out := make([]string, len(all))
	copy(out, all)
	return out
}

func analyzeDisk(r *Report, d *snapshot.DiskState, cat forensics.Catalog) error {
	// §3: reconstruct writes from the WAL.
	writes, err := forensics.ReconstructWrites(d.RedoLog, d.UndoLog, cat)
	if err != nil {
		return fmt.Errorf("core: wal reconstruction: %w", err)
	}
	if len(writes) > 0 {
		var samples []string
		for _, w := range writes {
			samples = append(samples, w.SQL)
		}
		r.PastWrites += len(writes)
		r.Findings = append(r.Findings, Finding{
			Channel:     "wal",
			PaperRef:    "§3 inferring writes",
			Severity:    SeverityQueryLeak,
			Description: "insert/update/delete statements reconstructed from circular undo/redo logs",
			Count:       len(writes),
			Samples:     sampled(samples),
		})
	}

	// §3: binlog holds full statement text with timestamps.
	events, err := forensics.CorrelatableEvents(d.Binlog)
	if err != nil {
		return fmt.Errorf("core: binlog: %w", err)
	}
	if len(events) > 0 {
		var samples []string
		for _, ev := range events {
			samples = append(samples, fmt.Sprintf("[t=%d lsn=%d] %s", ev.Timestamp, ev.LSN, ev.Statement))
		}
		r.Findings = append(r.Findings, Finding{
			Channel:     "binlog",
			PaperRef:    "§3 inferring writes",
			Severity:    SeverityQueryLeak,
			Description: "full text and UNIX timestamp of every write transaction (never purged by default)",
			Count:       len(events),
			Samples:     sampled(samples),
		})
		// LSN↔timestamp correlation dates WAL records beyond the binlog.
		if corr, err := forensics.CorrelateBinlog(events); err == nil {
			forensics.DateWrites(writes, corr)
			r.TimedWrites = len(writes)
			r.Findings = append(r.Findings, Finding{
				Channel:     "lsn-correlation",
				PaperRef:    "§3 inferring writes",
				Severity:    SeverityQueryLeak,
				Description: "LSN↔timestamp regression dates WAL records past the binlog horizon",
				Count:       len(writes),
			})
		}
	}

	// §3: query logs.
	for _, log := range []struct {
		name, text, desc string
	}{
		{"general-log", d.GeneralLog, "every statement including SELECT (general query log)"},
		{"slow-log", d.SlowLog, "statements exceeding the slow threshold (slow query log)"},
	} {
		entries, err := forensics.ParseQueryLog(log.text)
		if err != nil {
			return fmt.Errorf("core: %s: %w", log.name, err)
		}
		if len(entries) == 0 {
			continue
		}
		var samples []string
		reads := 0
		for _, e := range entries {
			samples = append(samples, e.Statement)
			reads++
		}
		r.PastReads += reads
		r.Findings = append(r.Findings, Finding{
			Channel:     log.name,
			PaperRef:    "§3 inferring reads",
			Severity:    SeverityQueryLeak,
			Description: log.desc,
			Count:       len(entries),
			Samples:     sampled(samples),
		})
	}

	// §3: buffer-pool dump reveals recent access paths. Joined with the
	// leaf key ranges recovered from the stolen tablespace, the dump
	// names the key spans the most recent SELECTs touched.
	if len(d.BufferPoolDump) > 0 {
		ids, err := bufpool.ParseDump(d.BufferPoolDump)
		if err != nil {
			return fmt.Errorf("core: bufpool dump: %w", err)
		}
		if len(ids) > 0 {
			finding := Finding{
				Channel:     "bufpool-dump",
				PaperRef:    "§3 inferring reads",
				Severity:    SeverityInfo,
				Description: "LRU-ordered page ids: the B+tree paths recent SELECTs walked",
				Count:       len(ids),
			}
			if leaves, err := forensics.LeafRanges(d.Tablespace); err == nil {
				recent := forensics.RecentAccessRanges(ids, leaves, maxSamples)
				if len(recent) > 0 {
					finding.Severity = SeverityQueryLeak
					finding.Description = "recent SELECTs' key spans, from LRU-ordered page ids joined with leaf key ranges"
					for _, lr := range recent {
						finding.Samples = append(finding.Samples,
							fmt.Sprintf("leaf %d: keys [%s, %s]", lr.Page, lr.Min, lr.Max))
					}
				}
			}
			r.Findings = append(r.Findings, finding)
		}
	}
	return nil
}

func analyzeDiagnostics(r *Report, d *snapshot.DiagnosticState) {
	var procSamples []string
	for _, p := range d.Processlist {
		if p.Statement != "" {
			procSamples = append(procSamples, p.Statement)
		}
	}
	if len(procSamples) > 0 {
		r.PastReads += len(procSamples)
		r.Findings = append(r.Findings, Finding{
			Channel:     "processlist",
			PaperRef:    "§4 diagnostic tables",
			Severity:    SeverityQueryLeak,
			Description: "current/last statement of every connection (information_schema.processlist)",
			Count:       len(procSamples),
			Samples:     sampled(procSamples),
		})
	}
	if len(d.History) > 0 {
		var samples []string
		for _, ev := range d.History {
			samples = append(samples, ev.Statement)
		}
		r.PastReads += len(d.History)
		r.Findings = append(r.Findings, Finding{
			Channel:     "statement-history",
			PaperRef:    "§4 diagnostic tables",
			Severity:    SeverityQueryLeak,
			Description: fmt.Sprintf("last %d statements per thread with rows examined/returned (events_statements_history)", d.HistorySize),
			Count:       len(d.History),
			Samples:     sampled(samples),
		})
	}
	if len(d.DigestSummary) > 0 {
		var samples []string
		for _, row := range d.DigestSummary {
			samples = append(samples, fmt.Sprintf("%dx %s", row.Count, row.DigestText))
		}
		r.DigestRows = len(d.DigestSummary)
		r.Findings = append(r.Findings, Finding{
			Channel:     "digest-table",
			PaperRef:    "§4 diagnostic tables",
			Severity:    SeverityQueryLeak,
			Description: "per-query-type counts since restart (events_statements_summary_by_digest) — the SPLASHE-breaking histogram",
			Count:       len(d.DigestSummary),
			Samples:     sampled(samples),
		})
	}
}

func analyzeMemory(r *Report, m *snapshot.MemoryState) {
	queries := forensics.ExtractQueries(m.HeapImage)
	if len(queries) > 0 {
		r.HeapQueries = len(queries)
		r.PastReads += len(queries)
		r.Findings = append(r.Findings, Finding{
			Channel:     "heap",
			PaperRef:    "§5 in-memory data structures",
			Severity:    SeverityQueryLeak,
			Description: "query strings scraped from process heap (no secure deletion)",
			Count:       len(queries),
			Samples:     sampled(queries),
		})
	}
	// Search tokens: in statement strings anywhere in the heap.
	var tokens []string
	for _, s := range forensics.ExtractStrings(m.HeapImage, 16) {
		for _, match := range tokenPattern.FindAllStringSubmatch(s, -1) {
			tokens = append(tokens, match[1])
		}
	}
	if len(tokens) > 0 {
		r.TokensFound = len(tokens)
		r.Findings = append(r.Findings, Finding{
			Channel:     "search-tokens",
			PaperRef:    "§6 token-based systems",
			Severity:    SeverityTokenLeak,
			Description: "SSE search tokens recovered from statement text; replaying them breaks semantic security",
			Count:       len(tokens),
			Samples:     sampled(tokens),
		})
	}
	if len(m.QueryCache) > 0 {
		var samples []string
		for _, e := range m.QueryCache {
			samples = append(samples, e.Query)
		}
		r.CachedResults = len(m.QueryCache)
		r.PastReads += len(m.QueryCache)
		r.Findings = append(r.Findings, Finding{
			Channel:     "query-cache",
			PaperRef:    "§5 in-memory data structures",
			Severity:    SeverityQueryLeak,
			Description: "SELECT texts with full result sets from the internal query cache",
			Count:       len(m.QueryCache),
			Samples:     sampled(samples),
		})
	}
	if len(m.HotPages) > 0 {
		r.HotPagesListed = len(m.HotPages)
		r.Findings = append(r.Findings, Finding{
			Channel:     "access-counters",
			PaperRef:    "§5 in-memory data structures",
			Severity:    SeverityInfo,
			Description: "per-page access counters (adaptive-hash-index analog) expose hot index regions",
			Count:       len(m.HotPages),
		})
	}
}
