package cryptdbx

import (
	"fmt"
	"strings"
	"testing"

	"snapdb/internal/crypto/prim"
	"snapdb/internal/engine"
	"snapdb/internal/sqlparse"
)

func newProxy(t testing.TB) (*Proxy, *engine.Engine) {
	t.Helper()
	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	return New(e, prim.TestKey("cryptdbx")), e
}

func patientSpecs() []ColumnSpec {
	return []ColumnSpec{
		{Name: "id", Type: sqlparse.TypeInt, Mode: OPE},
		{Name: "name", Type: sqlparse.TypeText, Mode: DET},
		{Name: "age", Type: sqlparse.TypeInt, Mode: OPE},
		{Name: "diagnosis", Type: sqlparse.TypeText, Mode: RND},
		{Name: "notes", Type: sqlparse.TypeText, Mode: SEARCH},
	}
}

func seedPatients(t testing.TB, p *Proxy) {
	t.Helper()
	if err := p.CreateTable("patients", patientSpecs()); err != nil {
		t.Fatal(err)
	}
	rows := [][]sqlparse.Value{
		{sqlparse.IntValue(1), sqlparse.StrValue("alice"), sqlparse.IntValue(34), sqlparse.StrValue("flu"), sqlparse.StrValue("fever cough")},
		{sqlparse.IntValue(2), sqlparse.StrValue("bob"), sqlparse.IntValue(52), sqlparse.StrValue("diabetes"), sqlparse.StrValue("insulin daily")},
		{sqlparse.IntValue(3), sqlparse.StrValue("carol"), sqlparse.IntValue(41), sqlparse.StrValue("hiv"), sqlparse.StrValue("antiretroviral daily")},
	}
	for _, r := range rows {
		if err := p.Insert("patients", r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInsertSelectRoundTrip(t *testing.T) {
	p, _ := newProxy(t)
	seedPatients(t, p)
	rows, err := p.Select("patients", []Pred{{Column: "name", Op: sqlparse.OpEq, Arg: sqlparse.StrValue("bob")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	got := rows[0]
	if got[0].Int != 2 || got[1].Str != "bob" || got[2].Int != 52 || got[3].Str != "diabetes" || got[4].Str != "insulin daily" {
		t.Errorf("row = %v", got)
	}
}

func TestOPERangePredicate(t *testing.T) {
	p, _ := newProxy(t)
	seedPatients(t, p)
	rows, err := p.Select("patients", []Pred{{Column: "age", Op: sqlparse.OpGe, Arg: sqlparse.IntValue(40)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("age >= 40 rows = %d", len(rows))
	}
}

func TestServerNeverSeesPlaintext(t *testing.T) {
	p, e := newProxy(t)
	seedPatients(t, p)
	// The engine's binlog holds every INSERT as sent; no plaintext may
	// appear.
	img := string(e.Binlog().Serialize())
	for _, secret := range []string{"alice", "diabetes", "hiv", "insulin", "fever"} {
		if strings.Contains(img, secret) {
			t.Errorf("binlog contains plaintext %q", secret)
		}
	}
}

func TestRNDPredicateRejected(t *testing.T) {
	p, _ := newProxy(t)
	seedPatients(t, p)
	_, err := p.Select("patients", []Pred{{Column: "diagnosis", Op: sqlparse.OpEq, Arg: sqlparse.StrValue("flu")}})
	if err == nil {
		t.Error("predicate on RND column accepted")
	}
}

func TestDETRangeRejected(t *testing.T) {
	p, _ := newProxy(t)
	seedPatients(t, p)
	_, err := p.Select("patients", []Pred{{Column: "name", Op: sqlparse.OpLt, Arg: sqlparse.StrValue("m")}})
	if err == nil {
		t.Error("range on DET column accepted")
	}
}

func TestSearch(t *testing.T) {
	p, _ := newProxy(t)
	seedPatients(t, p)
	rows, err := p.Search("patients", "notes", "daily")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("search rows = %d", len(rows))
	}
	ids := map[int64]bool{rows[0][0].Int: true, rows[1][0].Int: true}
	if !ids[2] || !ids[3] {
		t.Errorf("matched ids = %v", ids)
	}
}

func TestSearchTokenLeaksIntoStatementArtifacts(t *testing.T) {
	// The §6 channel: the search token transits the engine's statement
	// artifacts even though the engine cannot execute the UDF.
	p, e := newProxy(t)
	seedPatients(t, p)
	if _, err := p.Search("patients", "notes", "insulin"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range e.PerfSchema().History() {
		if strings.Contains(ev.Statement, "search_match(notes,") {
			found = true
		}
	}
	if !found {
		t.Error("token-bearing search statement missing from events_statements_history")
	}
}

func TestSearchErrors(t *testing.T) {
	p, _ := newProxy(t)
	seedPatients(t, p)
	if _, err := p.Search("patients", "name", "x"); err == nil {
		t.Error("search on non-SEARCH column accepted")
	}
	if _, err := p.Search("missing", "notes", "x"); err == nil {
		t.Error("search on missing table accepted")
	}
	if _, err := p.SSEIndex("patients", "name"); err == nil {
		t.Error("SSEIndex on non-SEARCH column accepted")
	}
	if _, err := p.SSEIndex("patients", "notes"); err != nil {
		t.Errorf("SSEIndex: %v", err)
	}
}

func TestCreateTableValidation(t *testing.T) {
	p, _ := newProxy(t)
	if err := p.CreateTable("t", nil); err == nil {
		t.Error("empty schema accepted")
	}
	if err := p.CreateTable("t", []ColumnSpec{{Name: "id", Type: sqlparse.TypeInt, Mode: RND}}); err == nil {
		t.Error("RND primary key accepted")
	}
	if err := p.CreateTable("t", []ColumnSpec{{Name: "id", Type: sqlparse.TypeText, Mode: OPE}}); err == nil {
		t.Error("OPE TEXT column accepted")
	}
	if err := p.CreateTable("t", []ColumnSpec{
		{Name: "id", Type: sqlparse.TypeInt, Mode: OPE},
		{Name: "s", Type: sqlparse.TypeInt, Mode: SEARCH},
	}); err == nil {
		t.Error("SEARCH INT column accepted")
	}
	ok := []ColumnSpec{{Name: "id", Type: sqlparse.TypeInt, Mode: OPE}}
	if err := p.CreateTable("t", ok); err != nil {
		t.Fatal(err)
	}
	if err := p.CreateTable("t", ok); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestInsertValidation(t *testing.T) {
	p, _ := newProxy(t)
	seedPatients(t, p)
	if err := p.Insert("missing", nil); err == nil {
		t.Error("insert into missing table accepted")
	}
	if err := p.Insert("patients", []sqlparse.Value{sqlparse.IntValue(9)}); err == nil {
		t.Error("short row accepted")
	}
	bad := []sqlparse.Value{sqlparse.IntValue(9), sqlparse.IntValue(1), sqlparse.IntValue(1), sqlparse.StrValue("x"), sqlparse.StrValue("y")}
	if err := p.Insert("patients", bad); err == nil {
		t.Error("type-mismatched row accepted")
	}
}

func TestSelectUnknownTableAndColumn(t *testing.T) {
	p, _ := newProxy(t)
	seedPatients(t, p)
	if _, err := p.Select("missing", nil); err == nil {
		t.Error("missing table accepted")
	}
	if _, err := p.Select("patients", []Pred{{Column: "nope", Op: sqlparse.OpEq, Arg: sqlparse.IntValue(1)}}); err == nil {
		t.Error("missing column accepted")
	}
}

func TestSelectAllDecrypts(t *testing.T) {
	p, _ := newProxy(t)
	seedPatients(t, p)
	rows, err := p.Select("patients", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Rows come back in OPE-ciphertext order, which preserves id order.
	for i, r := range rows {
		if r[0].Int != int64(i+1) {
			t.Errorf("row %d id = %d (OPE order broken)", i, r[0].Int)
		}
	}
}

func BenchmarkEncryptedInsert(b *testing.B) {
	e, err := engine.New(engine.Defaults())
	if err != nil {
		b.Fatal(err)
	}
	p := New(e, prim.TestKey("bench"))
	if err := p.CreateTable("t", []ColumnSpec{
		{Name: "id", Type: sqlparse.TypeInt, Mode: OPE},
		{Name: "v", Type: sqlparse.TypeText, Mode: DET},
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		row := []sqlparse.Value{sqlparse.IntValue(int64(i)), sqlparse.StrValue(fmt.Sprintf("v%d", i))}
		if err := p.Insert("t", row); err != nil {
			b.Fatal(err)
		}
	}
}
