// Package cryptdbx implements a CryptDB-style encrypted database proxy
// over the snapdb engine. The client-side proxy holds the keys,
// rewrites queries, and decrypts results; the engine only ever sees
// ciphertexts — plus, inevitably, everything §3–§5 of the paper says a
// DBMS retains about the rewritten queries themselves.
//
// Column encryption modes, as in CryptDB's onions:
//
//   - RND: randomized encryption; no server-side operations.
//   - DET: deterministic encryption; server-side equality.
//   - OPE: order-preserving encryption (INT only); server-side ranges.
//   - SEARCH: searchable encryption (TEXT only); keyword search via a
//     per-column SSE index. The engine has no UDFs, so the proxy both
//     issues the token-bearing search statement (which therefore lands
//     in the processlist, performance_schema, and heap, like CryptDB's
//     UDF call does in MySQL) and evaluates the SSE match.
package cryptdbx

import (
	"encoding/hex"
	"fmt"
	"strings"

	"snapdb/internal/crypto/det"
	"snapdb/internal/crypto/ope"
	"snapdb/internal/crypto/prim"
	"snapdb/internal/crypto/sse"
	"snapdb/internal/engine"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// EncMode is a column's encryption mode.
type EncMode int

// Encryption modes.
const (
	RND EncMode = iota
	DET
	OPE
	SEARCH
)

func (m EncMode) String() string {
	switch m {
	case RND:
		return "RND"
	case DET:
		return "DET"
	case OPE:
		return "OPE"
	case SEARCH:
		return "SEARCH"
	default:
		return fmt.Sprintf("EncMode(%d)", int(m))
	}
}

// ColumnSpec declares one plaintext column and its protection.
type ColumnSpec struct {
	Name string
	Type sqlparse.ColumnType
	Mode EncMode
}

// tableMeta is the proxy's per-table key material and schema.
type tableMeta struct {
	name    string
	specs   []ColumnSpec
	det     []*det.Scheme // per column (nil unless DET)
	ope     []*ope.Scheme // per column (nil unless OPE)
	rndKeys []prim.Key    // per column (zero unless RND)
	sse     []*sse.Scheme // per column (nil unless SEARCH)
	index   []*sse.Index  // per column (nil unless SEARCH)
}

// Proxy is the client-side encrypted-database proxy.
type Proxy struct {
	root   prim.Key
	sess   *engine.Session
	tables map[string]*tableMeta
}

// New creates a proxy speaking to the engine through its own session.
func New(e *engine.Engine, root prim.Key) *Proxy {
	return &Proxy{root: root, sess: e.Connect("cryptdbx"), tables: make(map[string]*tableMeta)}
}

// CreateTable creates the encrypted table. The first column is the
// primary key and must be DET (TEXT) or OPE (INT) so the clustered
// index can order ciphertexts.
func (p *Proxy) CreateTable(name string, specs []ColumnSpec) error {
	if _, dup := p.tables[name]; dup {
		return fmt.Errorf("cryptdbx: table %q already exists", name)
	}
	if len(specs) == 0 {
		return fmt.Errorf("cryptdbx: no columns")
	}
	pk := specs[0]
	if pk.Mode != DET && pk.Mode != OPE {
		return fmt.Errorf("cryptdbx: primary key %q must be DET or OPE, got %v", pk.Name, pk.Mode)
	}
	m := &tableMeta{
		name:    name,
		specs:   append([]ColumnSpec(nil), specs...),
		det:     make([]*det.Scheme, len(specs)),
		ope:     make([]*ope.Scheme, len(specs)),
		rndKeys: make([]prim.Key, len(specs)),
		sse:     make([]*sse.Scheme, len(specs)),
		index:   make([]*sse.Index, len(specs)),
	}
	var defs []string
	for i, c := range specs {
		key := prim.Derive(p.root, fmt.Sprintf("%s:%s:%v", name, c.Name, c.Mode))
		ctype := "TEXT" // most ciphertexts are hex strings
		switch c.Mode {
		case DET:
			m.det[i] = det.New(key)
		case OPE:
			if c.Type != sqlparse.TypeInt {
				return fmt.Errorf("cryptdbx: OPE column %q must be INT", c.Name)
			}
			m.ope[i] = ope.New(key)
			ctype = "INT"
		case RND:
			m.rndKeys[i] = key
		case SEARCH:
			if c.Type != sqlparse.TypeText {
				return fmt.Errorf("cryptdbx: SEARCH column %q must be TEXT", c.Name)
			}
			m.sse[i] = sse.New(key)
			m.index[i] = sse.NewIndex()
		default:
			return fmt.Errorf("cryptdbx: unknown mode %v", c.Mode)
		}
		def := c.Name + " " + ctype
		if i == 0 {
			def += " PRIMARY KEY"
		}
		defs = append(defs, def)
	}
	_, err := p.sess.Execute(fmt.Sprintf("CREATE TABLE %s (%s)", name, strings.Join(defs, ", ")))
	if err != nil {
		return err
	}
	p.tables[name] = m
	return nil
}

// encryptValue produces the stored representation of value for column i.
func (m *tableMeta) encryptValue(i int, v sqlparse.Value, docID int) (sqlparse.Value, error) {
	c := m.specs[i]
	if c.Type == sqlparse.TypeInt && !v.IsInt || c.Type == sqlparse.TypeText && v.IsInt {
		return sqlparse.Value{}, fmt.Errorf("cryptdbx: column %q type mismatch", c.Name)
	}
	switch c.Mode {
	case DET:
		ct, err := m.det[i].EncryptValue(v)
		if err != nil {
			return sqlparse.Value{}, err
		}
		return sqlparse.StrValue(ct), nil
	case OPE:
		return sqlparse.IntValue(int64(m.ope[i].Encrypt(uint32(v.Int)))), nil
	case RND:
		enc, err := prim.Encrypt(m.rndKeys[i], storage.EncodeRecord(storage.Record{v}))
		if err != nil {
			return sqlparse.Value{}, err
		}
		return sqlparse.StrValue(fmt.Sprintf("%x", enc)), nil
	case SEARCH:
		// The stored column keeps an RND encryption of the text; the
		// keywords go into the SSE index.
		enc, err := prim.Encrypt(prim.Derive(m.rndKeys[i], "search-body"), []byte(v.Str))
		if err != nil {
			return sqlparse.Value{}, err
		}
		if err := m.index[i].AddDocument(m.sse[i], docID, strings.Fields(v.Str)); err != nil {
			return sqlparse.Value{}, err
		}
		return sqlparse.StrValue(fmt.Sprintf("%x", enc)), nil
	}
	return sqlparse.Value{}, fmt.Errorf("cryptdbx: unknown mode")
}

func (m *tableMeta) decryptValue(i int, stored sqlparse.Value) (sqlparse.Value, error) {
	c := m.specs[i]
	switch c.Mode {
	case DET:
		return m.det[i].DecryptValue(stored.Str)
	case OPE:
		pt, err := m.ope[i].Decrypt(uint64(stored.Int))
		if err != nil {
			return sqlparse.Value{}, err
		}
		return sqlparse.IntValue(int64(pt)), nil
	case RND:
		raw, err := hex.DecodeString(stored.Str)
		if err != nil {
			return sqlparse.Value{}, fmt.Errorf("cryptdbx: bad RND ciphertext: %w", err)
		}
		pt, err := prim.Decrypt(m.rndKeys[i], raw)
		if err != nil {
			return sqlparse.Value{}, err
		}
		rec, _, err := storage.DecodeRecord(pt)
		if err != nil || len(rec) != 1 {
			return sqlparse.Value{}, fmt.Errorf("cryptdbx: malformed RND plaintext")
		}
		return rec[0], nil
	case SEARCH:
		raw, err := hex.DecodeString(stored.Str)
		if err != nil {
			return sqlparse.Value{}, fmt.Errorf("cryptdbx: bad SEARCH ciphertext: %w", err)
		}
		pt, err := prim.Decrypt(prim.Derive(m.rndKeys[i], "search-body"), raw)
		if err != nil {
			return sqlparse.Value{}, err
		}
		return sqlparse.StrValue(string(pt)), nil
	}
	return sqlparse.Value{}, fmt.Errorf("cryptdbx: unknown mode")
}

// Insert encrypts and stores one row (values in schema order). The
// primary key value doubles as the SSE document id for SEARCH columns,
// so it must be an INT when the table has a SEARCH column.
func (p *Proxy) Insert(table string, row []sqlparse.Value) error {
	m, ok := p.tables[table]
	if !ok {
		return fmt.Errorf("cryptdbx: unknown table %q", table)
	}
	if len(row) != len(m.specs) {
		return fmt.Errorf("cryptdbx: row has %d values for %d columns", len(row), len(m.specs))
	}
	docID := 0
	if row[0].IsInt {
		docID = int(row[0].Int)
	} else {
		for i, c := range m.specs {
			if c.Mode == SEARCH && i > 0 {
				return fmt.Errorf("cryptdbx: SEARCH columns require an INT primary key")
			}
		}
	}
	cols := make([]string, len(m.specs))
	vals := make([]string, len(m.specs))
	for i := range m.specs {
		cols[i] = m.specs[i].Name
		ev, err := m.encryptValue(i, row[i], docID)
		if err != nil {
			return err
		}
		vals[i] = ev.SQL()
	}
	_, err := p.sess.Execute(fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)",
		table, strings.Join(cols, ", "), strings.Join(vals, ", ")))
	return err
}

// Pred is a plaintext predicate the proxy rewrites.
type Pred struct {
	Column string
	Op     sqlparse.CompareOp
	Arg    sqlparse.Value
}

// Select runs a conjunctive query and returns decrypted rows (all
// columns, schema order).
func (p *Proxy) Select(table string, preds []Pred) ([][]sqlparse.Value, error) {
	m, ok := p.tables[table]
	if !ok {
		return nil, fmt.Errorf("cryptdbx: unknown table %q", table)
	}
	where, err := m.rewritePreds(preds)
	if err != nil {
		return nil, err
	}
	q := "SELECT * FROM " + table
	if where != "" {
		q += " WHERE " + where
	}
	res, err := p.sess.Execute(q)
	if err != nil {
		return nil, err
	}
	return m.decryptRows(res.Rows)
}

func (m *tableMeta) rewritePreds(preds []Pred) (string, error) {
	var parts []string
	for _, pr := range preds {
		i := -1
		for ci, c := range m.specs {
			if c.Name == pr.Column {
				i = ci
			}
		}
		if i < 0 {
			return "", fmt.Errorf("cryptdbx: unknown column %q", pr.Column)
		}
		c := m.specs[i]
		switch c.Mode {
		case DET:
			if pr.Op != sqlparse.OpEq && pr.Op != sqlparse.OpNe {
				return "", fmt.Errorf("cryptdbx: DET column %q supports only equality", c.Name)
			}
			ct, err := m.det[i].EncryptValue(pr.Arg)
			if err != nil {
				return "", err
			}
			parts = append(parts, fmt.Sprintf("%s %s %s", c.Name, pr.Op, sqlparse.StrValue(ct).SQL()))
		case OPE:
			if !pr.Arg.IsInt {
				return "", fmt.Errorf("cryptdbx: OPE predicate on %q needs an INT literal", c.Name)
			}
			ct := m.ope[i].Encrypt(uint32(pr.Arg.Int))
			parts = append(parts, fmt.Sprintf("%s %s %d", c.Name, pr.Op, ct))
		default:
			return "", fmt.Errorf("cryptdbx: column %q (%v) supports no server-side predicates", c.Name, c.Mode)
		}
	}
	return strings.Join(parts, " AND "), nil
}

func (m *tableMeta) decryptRows(rows []storage.Record) ([][]sqlparse.Value, error) {
	out := make([][]sqlparse.Value, 0, len(rows))
	for _, r := range rows {
		if len(r) != len(m.specs) {
			return nil, fmt.Errorf("cryptdbx: row width %d != %d", len(r), len(m.specs))
		}
		pt := make([]sqlparse.Value, len(r))
		for i := range r {
			v, err := m.decryptValue(i, r[i])
			if err != nil {
				return nil, err
			}
			pt[i] = v
		}
		out = append(out, pt)
	}
	return out, nil
}

// Search runs a keyword search on a SEARCH column and returns the
// decrypted matching rows. The rewritten statement embedding the hex
// search token is issued through the engine first — mirroring CryptDB's
// UDF call — so the token transits every statement-text artifact; the
// engine cannot parse the UDF syntax, which is fine: the leakage
// happens before parsing.
func (p *Proxy) Search(table, column, keyword string) ([][]sqlparse.Value, error) {
	m, ok := p.tables[table]
	if !ok {
		return nil, fmt.Errorf("cryptdbx: unknown table %q", table)
	}
	i := -1
	for ci, c := range m.specs {
		if c.Name == column {
			i = ci
		}
	}
	if i < 0 || m.specs[i].Mode != SEARCH {
		return nil, fmt.Errorf("cryptdbx: %q is not a SEARCH column", column)
	}
	tok := m.sse[i].TokenFor(keyword)
	// The UDF-style statement CryptDB would send; the token literal is
	// the leakage-bearing artifact.
	udf := fmt.Sprintf("SELECT * FROM %s WHERE search_match(%s, '%x')", table, column, tok[:])
	_, _ = p.sess.Execute(udf) // parse error expected; artifacts recorded regardless

	matches := m.index[i].Search(tok)
	var out [][]sqlparse.Value
	for _, docID := range matches {
		rows, err := p.Select(table, []Pred{{Column: m.specs[0].Name, Op: sqlparse.OpEq, Arg: sqlparse.IntValue(int64(docID))}})
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// SSEIndex exposes the server-side SSE index of a SEARCH column — the
// thing a snapshot attacker holds and replays stolen tokens against.
func (p *Proxy) SSEIndex(table, column string) (*sse.Index, error) {
	m, ok := p.tables[table]
	if !ok {
		return nil, fmt.Errorf("cryptdbx: unknown table %q", table)
	}
	for ci, c := range m.specs {
		if c.Name == column && c.Mode == SEARCH {
			return m.index[ci], nil
		}
	}
	return nil, fmt.Errorf("cryptdbx: %q is not a SEARCH column", column)
}

// Session returns the proxy's engine session (examples use it to show
// the attacker's SQL-injection view).
func (p *Proxy) Session() *engine.Session { return p.sess }
