package seabedx

import (
	"strings"
	"testing"

	"snapdb/internal/crypto/prim"
	"snapdb/internal/engine"
)

func newEngine(t testing.TB) *engine.Engine {
	t.Helper()
	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBasicCountWhere(t *testing.T) {
	e := newEngine(t)
	tbl, err := NewTable(e, prim.TestKey("seabed"), "facts", "state", []string{"CA", "TX", "NY"}, false)
	if err != nil {
		t.Fatal(err)
	}
	data := []string{"CA", "TX", "CA", "NY", "CA", "TX"}
	for _, v := range data {
		if err := tbl.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Rows() != 6 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	for v, want := range map[string]uint64{"CA": 3, "TX": 2, "NY": 1} {
		got, err := tbl.CountWhere(v)
		if err != nil {
			t.Fatalf("CountWhere(%s): %v", v, err)
		}
		if got != want {
			t.Errorf("CountWhere(%s) = %d, want %d", v, got, want)
		}
	}
}

func TestBasicRejectsOutOfDomain(t *testing.T) {
	e := newEngine(t)
	tbl, err := NewTable(e, prim.TestKey("seabed"), "facts", "state", []string{"CA"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert("TX"); err == nil {
		t.Error("out-of-domain insert accepted")
	}
	if err := tbl.Insert("CA"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CountWhere("TX"); err == nil {
		t.Error("out-of-domain count accepted")
	}
}

func TestEnhancedTailCount(t *testing.T) {
	e := newEngine(t)
	tbl, err := NewTable(e, prim.TestKey("seabed"), "facts", "city", []string{"nyc", "la"}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"nyc", "boise", "nyc", "fargo", "boise", "boise"} {
		if err := tbl.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	for v, want := range map[string]uint64{"nyc": 2, "la": 0, "boise": 3, "fargo": 1, "reno": 0} {
		got, err := tbl.CountWhere(v)
		if err != nil {
			t.Fatalf("CountWhere(%s): %v", v, err)
		}
		if got != want {
			t.Errorf("CountWhere(%s) = %d, want %d", v, got, want)
		}
	}
}

func TestCountWhereEmptyTable(t *testing.T) {
	e := newEngine(t)
	tbl, err := NewTable(e, prim.TestKey("seabed"), "facts", "state", []string{"CA"}, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tbl.CountWhere("CA")
	if err != nil || got != 0 {
		t.Errorf("empty count = %d, err = %v", got, err)
	}
}

func TestNoPlaintextReachesEngine(t *testing.T) {
	e := newEngine(t)
	tbl, err := NewTable(e, prim.TestKey("seabed"), "facts", "diagnosis", []string{"flu", "hiv"}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"flu", "hiv", "rare-disease"} {
		if err := tbl.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.CountWhere("hiv"); err != nil {
		t.Fatal(err)
	}
	img := string(e.Binlog().Serialize())
	for _, secret := range []string{"flu", "hiv", "rare-disease"} {
		if strings.Contains(img, "'"+secret+"'") {
			t.Errorf("binlog contains plaintext literal %q", secret)
		}
	}
}

// TestDigestTableCountsQueriesPerPlaintext is the heart of the paper's
// Seabed attack: each dedicated value gets its own canonical query
// form, so the digest table is a per-plaintext query histogram.
func TestDigestTableCountsQueriesPerPlaintext(t *testing.T) {
	e := newEngine(t)
	tbl, err := NewTable(e, prim.TestKey("seabed"), "facts", "state", []string{"CA", "TX"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert("CA"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := tbl.CountWhere("CA"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := tbl.CountWhere("TX"); err != nil {
			t.Fatal(err)
		}
	}
	var caCount, txCount uint64
	for _, row := range e.PerfSchema().DigestSummary() {
		idxCA, _ := tbl.Plan().ColumnFor("CA")
		idxTX, _ := tbl.Plan().ColumnFor("TX")
		if strings.Contains(row.DigestText, "SUM("+tbl.Plan().ColumnName(idxCA)+")") {
			caCount = row.Count
		}
		if strings.Contains(row.DigestText, "SUM("+tbl.Plan().ColumnName(idxTX)+")") {
			txCount = row.Count
		}
	}
	if caCount != 5 || txCount != 2 {
		t.Errorf("digest histogram: CA=%d TX=%d, want 5/2", caCount, txCount)
	}
}

func BenchmarkInsert(b *testing.B) {
	e, err := engine.New(engine.Defaults())
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := NewTable(e, prim.TestKey("bench"), "facts", "state", []string{"CA", "TX", "NY"}, false)
	if err != nil {
		b.Fatal(err)
	}
	vals := []string{"CA", "TX", "NY"}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := tbl.Insert(vals[i%3]); err != nil {
			b.Fatal(err)
		}
	}
}
