// Package seabedx implements a Seabed-style encrypted analytics layer
// over the snapdb engine: one fact table whose filter column is
// SPLASHE-split into per-value ASHE columns (plus, in enhanced mode, a
// padded DET tail column), with count queries rewritten to blind
// aggregations.
//
// The rewriting is precisely what §6 of the paper attacks: a count for
// plaintext value v becomes "SELECT SUM(<v's column>) FROM t", so the
// engine's events_statements_summary_by_digest table — which
// canonicalizes per column name — ends up holding the exact histogram
// of queries per plaintext value.
package seabedx

import (
	"fmt"
	"strings"

	"snapdb/internal/crypto/prim"
	"snapdb/internal/crypto/splashe"
	"snapdb/internal/engine"
	"snapdb/internal/sqlparse"
)

// Table is one SPLASHE-protected fact table.
type Table struct {
	name string
	plan *splashe.Plan
	enc  *splashe.Encryptor
	sess *engine.Session
	rows uint64 // rows inserted; ids are 1..rows (contiguous for ASHE)
}

// NewTable creates the encrypted fact table. With enhanced = false the
// domain must cover every value ever inserted (basic SPLASHE); with
// enhanced = true, domain lists only the frequent values and the rest
// share the padded DET tail column.
func NewTable(e *engine.Engine, root prim.Key, name, column string, domain []string, enhanced bool) (*Table, error) {
	var plan *splashe.Plan
	if enhanced {
		plan = splashe.NewEnhancedPlan(column, domain)
	} else {
		plan = splashe.NewPlan(column, domain)
	}
	t := &Table{
		name: name,
		plan: plan,
		enc:  splashe.NewEncryptor(root, plan),
		sess: e.Connect("seabedx"),
	}
	defs := []string{"rid INT PRIMARY KEY"}
	for i := range plan.Dedicated {
		defs = append(defs, plan.ColumnName(i)+" INT")
	}
	if plan.HasTail {
		defs = append(defs, plan.TailColumnName()+" TEXT")
	}
	q := fmt.Sprintf("CREATE TABLE %s (%s)", name, strings.Join(defs, ", "))
	if _, err := t.sess.Execute(q); err != nil {
		return nil, err
	}
	return t, nil
}

// Insert adds one row with the given filter-column value.
func (t *Table) Insert(value string) error {
	id := t.rows + 1
	enc, err := t.enc.EncryptRow(id, value)
	if err != nil {
		return err
	}
	cols := []string{"rid"}
	vals := []string{fmt.Sprintf("%d", id)}
	for i, ct := range enc.Dedicated {
		cols = append(cols, t.plan.ColumnName(i))
		// ASHE ciphertexts are uint64 group elements; store them as the
		// bijective two's-complement int64 so the engine's wrapping SUM
		// is exactly addition mod 2^64.
		vals = append(vals, fmt.Sprintf("%d", int64(ct)))
	}
	if t.plan.HasTail {
		cols = append(cols, t.plan.TailColumnName())
		vals = append(vals, sqlparse.StrValue(enc.Tail).SQL())
	}
	q := fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)", t.name, strings.Join(cols, ", "), strings.Join(vals, ", "))
	if _, err := t.sess.Execute(q); err != nil {
		return err
	}
	t.rows = id
	return nil
}

// Rows returns the number of inserted rows.
func (t *Table) Rows() uint64 { return t.rows }

// CountWhere answers "SELECT COUNT(*) WHERE column = value" the Seabed
// way. Dedicated values aggregate blindly over their ASHE column; tail
// values (enhanced mode) count DET-equality matches.
func (t *Table) CountWhere(value string) (uint64, error) {
	if t.rows == 0 {
		return 0, nil
	}
	if col, ok := t.enc.CountQueryRewrite(value); ok {
		q := fmt.Sprintf("SELECT SUM(%s) FROM %s", col, t.name)
		res, err := t.sess.Execute(q)
		if err != nil {
			return 0, err
		}
		if len(res.Rows) != 1 {
			return 0, fmt.Errorf("seabedx: aggregation returned %d rows", len(res.Rows))
		}
		idx, _ := t.plan.ColumnFor(value)
		return t.enc.DecryptCount(idx, uint64(res.Rows[0][0].Int), 1, t.rows)
	}
	if !t.plan.HasTail {
		return 0, fmt.Errorf("seabedx: value %q outside the basic-SPLASHE domain", value)
	}
	tok, err := t.enc.TailTokenFor(value)
	if err != nil {
		return 0, err
	}
	q := fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s = %s",
		t.name, t.plan.TailColumnName(), sqlparse.StrValue(tok).SQL())
	res, err := t.sess.Execute(q)
	if err != nil {
		return 0, err
	}
	return uint64(res.Rows[0][0].Int), nil
}

// TailToken returns the DET ciphertext a tail value equality uses
// (enhanced mode only). Experiments use it to build scoring ground
// truth; a real attacker instead observes the ciphertexts directly in
// the stored column.
func (t *Table) TailToken(value string) (string, error) {
	return t.enc.TailTokenFor(value)
}

// Plan exposes the SPLASHE plan (experiments need the column naming).
func (t *Table) Plan() *splashe.Plan { return t.plan }

// Session returns the layer's engine session.
func (t *Table) Session() *engine.Session { return t.sess }
