// Package arxx implements an Arx-style encrypted range index over the
// snapdb engine: a treap whose nodes hold semantically secure
// (randomized) encryptions of the indexed values. Range queries walk
// the treap; each traversed node's comparison "consumes" it (in real
// Arx, the node's garbled circuit can be evaluated once), and the
// client must immediately repair it by writing a fresh encryption over
// the node's row.
//
// At rest the index is semantically secure — Arx's snapshot-security
// claim. But §6 of the paper observes that the repair writes are
// perfectly correlated with the reads: every range query leaves one
// UPDATE per traversed node in the engine's transaction logs, so a
// disk snapshot contains a transcript of every range query — traversal
// paths, per-node visit frequencies, and the rank of each query
// endpoint.
package arxx

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"snapdb/internal/crypto/prim"
	"snapdb/internal/engine"
	"snapdb/internal/sqlparse"
)

// node is the client-side view of one treap node. Arx's client is
// stateless in the real system (structure lives server-side); we keep
// the structure mirrored client-side for traversal while the
// authoritative encrypted payloads live in the engine table.
type node struct {
	id          int
	value       uint32
	priority    uint64
	left, right *node
}

// Index is an Arx-style encrypted range index.
type Index struct {
	name  string
	key   prim.Key
	sess  *engine.Session
	root  *node
	byID  map[int]*node
	nextN int

	repairs uint64 // total repair writes issued
}

// New creates the index's backing table.
func New(e *engine.Engine, root prim.Key, name string) (*Index, error) {
	ix := &Index{
		name: name,
		key:  prim.Derive(root, "arx:"+name),
		sess: e.Connect("arxx"),
		byID: make(map[int]*node),
	}
	q := fmt.Sprintf("CREATE TABLE %s (nid INT PRIMARY KEY, enc TEXT)", name)
	if _, err := ix.sess.Execute(q); err != nil {
		return nil, err
	}
	return ix, nil
}

// encryptValue produces a fresh randomized encryption of v.
func (ix *Index) encryptValue(v uint32) (string, error) {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], v)
	ct, err := prim.Encrypt(ix.key, buf[:])
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(ct), nil
}

// Insert adds a value to the index. Duplicate values are allowed (each
// gets its own node, as in a multiset index).
func (ix *Index) Insert(v uint32) error {
	ix.nextN++
	n := &node{
		id:       ix.nextN,
		value:    v,
		priority: prim.PRFUint64(prim.Derive(ix.key, "prio"), uint64(ix.nextN)),
	}
	ct, err := ix.encryptValue(v)
	if err != nil {
		return err
	}
	q := fmt.Sprintf("INSERT INTO %s (nid, enc) VALUES (%d, %s)", ix.name, n.id, sqlparse.StrValue(ct).SQL())
	if _, err := ix.sess.Execute(q); err != nil {
		return err
	}
	ix.root = treapInsert(ix.root, n)
	ix.byID[n.id] = n
	return nil
}

// treapInsert is a standard treap insertion by (value, priority).
func treapInsert(root, n *node) *node {
	if root == nil {
		return n
	}
	if n.value < root.value {
		root.left = treapInsert(root.left, n)
		if root.left.priority > root.priority {
			root = rotateRight(root)
		}
	} else {
		root.right = treapInsert(root.right, n)
		if root.right.priority > root.priority {
			root = rotateLeft(root)
		}
	}
	return root
}

func rotateRight(y *node) *node {
	x := y.left
	y.left = x.right
	x.right = y
	return x
}

func rotateLeft(x *node) *node {
	y := x.right
	x.right = y.left
	y.left = x
	return y
}

// Len returns the number of indexed values.
func (ix *Index) Len() int { return len(ix.byID) }

// Repairs returns the cumulative number of repair writes.
func (ix *Index) Repairs() uint64 { return ix.repairs }

// consume visits a node during traversal: its garbled comparison is
// spent, so the client repairs it with a fresh encryption, issuing the
// UPDATE that the transaction logs will remember.
func (ix *Index) consume(n *node) error {
	ct, err := ix.encryptValue(n.value)
	if err != nil {
		return err
	}
	q := fmt.Sprintf("UPDATE %s SET enc = %s WHERE nid = %d", ix.name, sqlparse.StrValue(ct).SQL(), n.id)
	if _, err := ix.sess.Execute(q); err != nil {
		return err
	}
	ix.repairs++
	return nil
}

// RangeQuery returns all indexed values in [lo, hi], consuming (and
// repairing) every traversed node.
func (ix *Index) RangeQuery(lo, hi uint32) ([]uint32, error) {
	if lo > hi {
		return nil, fmt.Errorf("arxx: inverted range [%d, %d]", lo, hi)
	}
	var out []uint32
	var walk func(n *node) error
	walk = func(n *node) error {
		if n == nil {
			return nil
		}
		// The comparison at this node consumes it.
		if err := ix.consume(n); err != nil {
			return err
		}
		if lo < n.value {
			if err := walk(n.left); err != nil {
				return err
			}
		}
		if lo <= n.value && n.value <= hi {
			out = append(out, n.value)
		}
		// Equal values insert to the right, so the right subtree must be
		// visited when hi == n.value too.
		if hi >= n.value {
			if err := walk(n.right); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(ix.root); err != nil {
		return nil, err
	}
	return out, nil
}

// Rank returns the number of indexed values strictly less than v —
// the quantity the paper notes leaks from transaction logs.
func (ix *Index) Rank(v uint32) int {
	rank := 0
	n := ix.root
	for n != nil {
		if v <= n.value {
			n = n.left
		} else {
			rank += 1 + size(n.left)
			n = n.right
		}
	}
	return rank
}

func size(n *node) int {
	if n == nil {
		return 0
	}
	return 1 + size(n.left) + size(n.right)
}

// NodeValue resolves a node id to its plaintext value. Only the
// *client* can do this; experiments use it as ground truth when scoring
// attack accuracy.
func (ix *Index) NodeValue(id int) (uint32, bool) {
	n, ok := ix.byID[id]
	if !ok {
		return 0, false
	}
	return n.value, true
}

// Session returns the index's engine session.
func (ix *Index) Session() *engine.Session { return ix.sess }
