package arxx

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"snapdb/internal/crypto/prim"
	"snapdb/internal/engine"
	"snapdb/internal/wal"
)

func newIndex(t testing.TB) (*Index, *engine.Engine) {
	t.Helper()
	e, err := engine.New(engine.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(e, prim.TestKey("arx"), "arx_idx")
	if err != nil {
		t.Fatal(err)
	}
	return ix, e
}

func TestInsertAndRangeQuery(t *testing.T) {
	ix, _ := newIndex(t)
	vals := []uint32{50, 10, 90, 30, 70, 20, 60}
	for _, v := range vals {
		if err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ix.RangeQuery(20, 65)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []uint32{20, 30, 50, 60}
	if len(got) != len(want) {
		t.Fatalf("range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v, want %v", got, want)
		}
	}
}

func TestRangeQueryInverted(t *testing.T) {
	ix, _ := newIndex(t)
	if _, err := ix.RangeQuery(10, 5); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestDuplicateValues(t *testing.T) {
	ix, _ := newIndex(t)
	for _, v := range []uint32{5, 5, 5, 9} {
		if err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ix.RangeQuery(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("duplicate range hit %d, want 3", len(got))
	}
}

func TestRank(t *testing.T) {
	ix, _ := newIndex(t)
	for _, v := range []uint32{10, 20, 30, 40, 50} {
		if err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	cases := map[uint32]int{5: 0, 10: 0, 15: 1, 35: 3, 55: 5}
	for v, want := range cases {
		if got := ix.Rank(v); got != want {
			t.Errorf("Rank(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestLargeIndexCorrectness(t *testing.T) {
	ix, _ := newIndex(t)
	rng := rand.New(rand.NewSource(2))
	var vals []uint32
	for i := 0; i < 300; i++ {
		v := rng.Uint32() % 10000
		vals = append(vals, v)
		if err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	lo, hi := uint32(2000), uint32(7000)
	got, err := ix.RangeQuery(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, v := range vals {
		if v >= lo && v <= hi {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("range size = %d, want %d", len(got), want)
	}
}

// TestRepairWritesLandInWAL is the §6 Arx attack surface: every
// traversed node leaves an UPDATE in the transaction logs.
func TestRepairWritesLandInWAL(t *testing.T) {
	ix, e := newIndex(t)
	for _, v := range []uint32{50, 10, 90, 30, 70} {
		if err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	walBefore := len(e.WAL().Redo.Records())
	repairsBefore := ix.Repairs()
	if _, err := ix.RangeQuery(20, 80); err != nil {
		t.Fatal(err)
	}
	repairs := ix.Repairs() - repairsBefore
	if repairs == 0 {
		t.Fatal("range query consumed no nodes")
	}
	var updates int
	for _, r := range e.WAL().Redo.Records()[walBefore:] {
		if r.Op == wal.OpUpdate {
			updates++
		}
	}
	if uint64(updates) != repairs {
		t.Errorf("WAL shows %d repair updates, index reports %d", updates, repairs)
	}
}

func TestAtRestSemanticSecurity(t *testing.T) {
	// Two inserts of the same value must store different ciphertexts,
	// and no plaintext digits-only literal should be inferable from the
	// stored TEXT column (it is hex of randomized encryption).
	ix, e := newIndex(t)
	if err := ix.Insert(7); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(7); err != nil {
		t.Fatal(err)
	}
	res, err := ix.Session().Execute("SELECT enc FROM arx_idx")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].Str == res.Rows[1][0].Str {
		t.Error("equal values stored identical ciphertexts")
	}
	_ = e
}

func TestNodeValue(t *testing.T) {
	ix, _ := newIndex(t)
	if err := ix.Insert(42); err != nil {
		t.Fatal(err)
	}
	v, ok := ix.NodeValue(1)
	if !ok || v != 42 {
		t.Errorf("NodeValue(1) = %d, %v", v, ok)
	}
	if _, ok := ix.NodeValue(99); ok {
		t.Error("phantom node resolved")
	}
}

func TestTreapBalancedDepth(t *testing.T) {
	ix, _ := newIndex(t)
	for v := uint32(0); v < 1000; v++ { // adversarial sorted insert order
		if err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	depth := maxDepth(ix.root)
	if depth > 40 { // ~2.9 log2(1000) expected for a treap
		t.Errorf("treap depth %d for 1000 sorted inserts; priorities not randomizing", depth)
	}
}

func maxDepth(n *node) int {
	if n == nil {
		return 0
	}
	l, r := maxDepth(n.left), maxDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

func TestRepairStatementsAreOpaque(t *testing.T) {
	ix, e := newIndex(t)
	secret := uint32(31337)
	if err := ix.Insert(secret); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.RangeQuery(0, 1<<31); err != nil {
		t.Fatal(err)
	}
	img := string(e.Binlog().Serialize())
	if strings.Contains(img, "31337") {
		t.Error("plaintext value leaked into repair statement")
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	e, err := engine.New(engine.Defaults())
	if err != nil {
		b.Fatal(err)
	}
	ix, err := New(e, prim.TestKey("bench"), "arx_idx")
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if err := ix.Insert(rng.Uint32() % 100000); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lo := uint32(rng.Intn(90000))
		if _, err := ix.RangeQuery(lo, lo+5000); err != nil {
			b.Fatal(err)
		}
	}
}
