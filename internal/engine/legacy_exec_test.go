package engine

// This file freezes the pre-operator executor — the inline scan loop,
// aggregate, projection, ORDER BY, and LIMIT code execSelect,
// execUpdate, and execDelete contained before the Volcano refactor —
// as a test-only execFn. The differential and leakage-equivalence
// tests run the same workload through legacyExecute and the production
// operator-tree executor and require identical results AND identical
// forensic artifact streams (buffer-pool fetch sequence included).
//
// The copies differ from the historical code only in that they resolve
// WHERE/projection columns inline instead of through the old
// planBindings fields (which the physical-plan template replaced):
// resolution has no forensic side effects and errors at the same
// execution points, so the artifact streams are unaffected.

import (
	"fmt"
	"sort"

	"snapdb/internal/binlog"
	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// legacyExecute dispatches SELECT/UPDATE/DELETE to the frozen legacy
// paths with the same lock scopes the production dispatcher uses, and
// delegates every other statement kind (whose execution did not
// change) to the production executor.
func legacyExecute(e *Engine, s *Session, query string, pl *plan, parseErr error, ts int64) (*Result, error) {
	if parseErr != nil {
		return nil, parseErr
	}
	switch st := pl.stmt.(type) {
	case *sqlparse.Select:
		if isSystemTable(st.Table) {
			return legacyExecSelect(e, s, st, query)
		}
		mu := e.locks.shared(st.Table)
		defer mu.RUnlock()
		e.simulateIO()
		return legacyExecSelect(e, s, st, query)
	case *sqlparse.Update:
		mu := e.locks.exclusive(st.Table)
		defer mu.Unlock()
		e.simulateIO()
		return legacyExecUpdate(e, s, st, query, ts)
	case *sqlparse.Delete:
		mu := e.locks.exclusive(st.Table)
		defer mu.Unlock()
		e.simulateIO()
		return legacyExecDelete(e, s, st, query, ts)
	default:
		return e.execute(s, query, pl, parseErr, ts)
	}
}

func legacyExecSelect(e *Engine, s *Session, st *sqlparse.Select, query string) (*Result, error) {
	if res, ok := e.systemSelect(st); ok {
		return res, nil
	}
	t, err := e.lookupTable(st.Table)
	if err != nil {
		return nil, err
	}
	if cached, ok := e.qcache.Get(query); ok {
		return &Result{Columns: selectColumns(t, st), Rows: cached, FromCache: true}, nil
	}
	rows, examined, path, err := legacyScanWhere(e, t, st.Where)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: selectColumns(t, st), RowsExamined: examined, AccessPath: path}

	// Aggregates. LIMIT caps the single aggregate row (the LIMIT 0 fix
	// applies here too — this frozen copy tracks the current semantics,
	// not the historical ORDER BY/LIMIT-dropping bug, so the differential
	// tests prove executor equivalence rather than re-proving the bug).
	if len(st.Exprs) == 1 && st.Exprs[0].Agg != sqlparse.AggNone {
		val, err := legacyAggregate(t, st.Exprs[0], rows)
		if err != nil {
			return nil, err
		}
		res.Rows = []storage.Record{{val}}
		if st.Limit >= 0 && len(res.Rows) > st.Limit {
			res.Rows = res.Rows[:st.Limit]
		}
		e.qcache.Put(query, t.Name, res.Rows)
		return res, nil
	}

	// Projection.
	proj, err := projection(t, st.Exprs)
	if err != nil {
		return nil, err
	}
	out := make([]storage.Record, 0, len(rows))
	for _, r := range rows {
		pr := make(storage.Record, len(proj))
		for i, idx := range proj {
			pr[i] = r[idx]
		}
		out = append(out, pr)
	}

	if st.OrderBy != "" {
		oidx := t.ColumnIndex(st.OrderBy)
		if oidx < 0 {
			return nil, fmt.Errorf("engine: unknown ORDER BY column %q", st.OrderBy)
		}
		order := make([]int, len(rows))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			c := rows[order[a]][oidx].Compare(rows[order[b]][oidx])
			if st.Desc {
				return c > 0
			}
			return c < 0
		})
		reordered := make([]storage.Record, len(out))
		for i, o := range order {
			reordered[i] = out[o]
		}
		out = reordered
	}
	if st.Limit >= 0 && len(out) > st.Limit {
		out = out[:st.Limit]
	}
	res.Rows = out
	e.qcache.Put(query, t.Name, out)
	return res, nil
}

func legacyScanWhere(e *Engine, t *Table, where sqlparse.Where) ([]storage.Record, int, string, error) {
	colIdx := make([]int, len(where))
	for i, p := range where {
		idx := t.ColumnIndex(p.Column)
		if idx < 0 {
			return nil, 0, "", fmt.Errorf("engine: unknown column %q in WHERE", p.Column)
		}
		colIdx[i] = idx
	}
	match := func(r storage.Record) (bool, error) {
		for i, p := range where {
			if !p.Op.Eval(r[colIdx[i]].Compare(p.Arg)) {
				return false, nil
			}
		}
		return true, nil
	}

	lo, hi, havePK := pkBounds(t, where)
	var rows []storage.Record
	switch {
	case havePK && lo.Equal(hi):
		rows = make([]storage.Record, 0, 1)
	case len(where) == 0:
		if n := t.rows.Load(); n > 0 && n <= 1<<16 {
			rows = make([]storage.Record, 0, n)
		}
	}
	examined := 0
	var scanErr error
	visit := func(r storage.Record) bool {
		examined++
		ok, err := match(r)
		if err != nil {
			scanErr = err
			return false
		}
		if ok {
			rows = append(rows, r)
		}
		return true
	}
	var err error
	path := "full-scan"
	switch {
	case havePK:
		path = "pk-range"
		err = t.Tree.Range(lo, hi, visit)
	default:
		if ix, ilo, ihi, ok := indexBounds(t.Indexes, where); ok {
			candidates, n, ierr := legacyIndexScan(t, ix, ilo, ihi)
			if ierr != nil {
				return nil, 0, "", ierr
			}
			examined = n
			for _, r := range candidates {
				ok, merr := match(r)
				if merr != nil {
					return nil, 0, "", merr
				}
				if ok {
					rows = append(rows, r)
				}
			}
			return rows, examined, "index:" + ix.Name, nil
		}
		err = t.Tree.Scan(visit)
	}
	if err != nil {
		return nil, 0, "", err
	}
	if scanErr != nil {
		return nil, 0, "", scanErr
	}
	return rows, examined, path, nil
}

func legacyIndexScan(t *Table, ix *SecondaryIndex, lo, hi sqlparse.Value) ([]storage.Record, int, error) {
	klo, khi := indexValueBounds(lo, hi)
	var pks []sqlparse.Value
	if err := ix.Tree.Range(klo, khi, func(r storage.Record) bool {
		pks = append(pks, r[1])
		return true
	}); err != nil {
		return nil, 0, err
	}
	rows := make([]storage.Record, 0, len(pks))
	for _, pk := range pks {
		row, found, err := t.Tree.Search(pk)
		if err != nil {
			return nil, 0, err
		}
		if !found {
			return nil, 0, fmt.Errorf("engine: index %q points at missing pk %s", ix.Name, pk)
		}
		rows = append(rows, row)
	}
	return rows, len(pks), nil
}

func legacyAggregate(t *Table, ex sqlparse.SelectExpr, rows []storage.Record) (sqlparse.Value, error) {
	switch ex.Agg {
	case sqlparse.AggCount:
		return sqlparse.IntValue(int64(len(rows))), nil
	case sqlparse.AggSum:
		idx := t.ColumnIndex(ex.Column)
		if idx < 0 {
			return sqlparse.Value{}, fmt.Errorf("engine: unknown column %q in SUM", ex.Column)
		}
		if t.Columns[idx].Type != sqlparse.TypeInt {
			return sqlparse.Value{}, fmt.Errorf("engine: SUM over non-INT column %q", ex.Column)
		}
		var sum int64
		for _, r := range rows {
			sum += r[idx].Int
		}
		return sqlparse.IntValue(sum), nil
	default:
		return sqlparse.Value{}, fmt.Errorf("engine: unsupported aggregate")
	}
}

func legacyExecUpdate(e *Engine, s *Session, st *sqlparse.Update, query string, ts int64) (*Result, error) {
	t, err := e.lookupTable(st.Table)
	if err != nil {
		return nil, err
	}
	rows, examined, _, err := legacyScanWhere(e, t, st.Where)
	if err != nil {
		return nil, err
	}
	type setOpL struct {
		idx int
		val sqlparse.Value
	}
	sets := make([]setOpL, 0, len(st.Set))
	for _, a := range st.Set {
		idx := t.ColumnIndex(a.Column)
		if idx < 0 {
			return nil, fmt.Errorf("engine: unknown column %q in SET", a.Column)
		}
		if idx == t.PKIndex {
			return nil, fmt.Errorf("engine: updating the primary key is not supported")
		}
		if err := checkType(t.Columns[idx], a.Value); err != nil {
			return nil, err
		}
		sets = append(sets, setOpL{idx, a.Value})
	}
	txn, auto := s.stmtTxn(e)
	for _, old := range rows {
		updated := old.Clone()
		for _, op := range sets {
			_, undo, err := e.wal.TxUpdate(txn, t.ID,
				storage.Record{old[t.PKIndex]}, uint8(op.idx),
				storage.Record{old[op.idx]}, storage.Record{op.val})
			if err != nil {
				return nil, fmt.Errorf("engine: wal: %w", err)
			}
			s.noteUndo(undo)
			if err := indexUpdateColumn(t, old[t.PKIndex], op.idx, old[op.idx], op.val); err != nil {
				return nil, err
			}
			updated[op.idx] = op.val
		}
		if _, err := t.Tree.Update(old[t.PKIndex], updated); err != nil {
			return nil, err
		}
	}
	e.qcache.InvalidateTable(t.Name)
	if len(rows) > 0 {
		if err := s.emitBinlog(e, binlog.Event{Timestamp: ts, Statement: query}); err != nil {
			return nil, err
		}
		if auto {
			if err := e.wal.LogCommit(txn); err != nil {
				return nil, fmt.Errorf("engine: wal commit: %w", err)
			}
		}
	}
	return &Result{RowsAffected: len(rows), RowsExamined: examined}, nil
}

func legacyExecDelete(e *Engine, s *Session, st *sqlparse.Delete, query string, ts int64) (*Result, error) {
	t, err := e.lookupTable(st.Table)
	if err != nil {
		return nil, err
	}
	rows, examined, _, err := legacyScanWhere(e, t, st.Where)
	if err != nil {
		return nil, err
	}
	txn, auto := s.stmtTxn(e)
	t.rows.Add(-int64(len(rows)))
	for _, old := range rows {
		if _, err := t.Tree.Delete(old[t.PKIndex]); err != nil {
			return nil, err
		}
		if err := indexDeleteRow(t, old); err != nil {
			return nil, err
		}
		_, undo, err := e.wal.TxDelete(txn, t.ID, old)
		if err != nil {
			return nil, fmt.Errorf("engine: wal: %w", err)
		}
		s.noteUndo(undo)
	}
	e.qcache.InvalidateTable(t.Name)
	if len(rows) > 0 {
		if err := s.emitBinlog(e, binlog.Event{Timestamp: ts, Statement: query}); err != nil {
			return nil, err
		}
		if auto {
			if err := e.wal.LogCommit(txn); err != nil {
				return nil, fmt.Errorf("engine: wal commit: %w", err)
			}
		}
	}
	return &Result{RowsAffected: len(rows), RowsExamined: examined}, nil
}
