package engine

import (
	"fmt"
	"strings"
	"testing"

	"snapdb/internal/vfs"
)

// setupSkewed creates a table whose two indexed columns have wildly
// different selectivity: grp holds only two distinct values while ref
// is unique. The index names are chosen so first-match (alphabetical)
// picks the BAD one — idx_grp sorts before idx_ref — which is exactly
// the situation cost-based selection exists to fix.
func setupSkewed(t testing.TB, s *Session, n int) {
	t.Helper()
	mustExec(t, s, "CREATE TABLE events (id INT PRIMARY KEY, grp INT, ref INT, note TEXT)")
	mustExec(t, s, "CREATE INDEX idx_grp ON events (grp)")
	mustExec(t, s, "CREATE INDEX idx_ref ON events (ref)")
	for i := 0; i < n; i++ {
		mustExec(t, s, fmt.Sprintf(
			"INSERT INTO events (id, grp, ref, note) VALUES (%d, %d, %d, 'n%d')",
			i, i%2, i, i))
	}
}

// TestCostBasedIndexChoice is the acceptance demonstration for the
// cost-based planner: with statistics on record it picks the cheaper
// index where the first-match rule picked the more expensive one, and
// DisableCostBasedPlanner restores the old behavior.
func TestCostBasedIndexChoice(t *testing.T) {
	// The query cache would serve the repeated SELECT from its result
	// store (with no access path to observe); this test is about the
	// planner, so switch it off.
	cfg := Defaults()
	cfg.EnableQueryCache = false
	e, _ := newEngine(t, cfg)
	s := e.Connect("app")
	defer s.Close()
	setupSkewed(t, s, 100)

	const q = "SELECT note FROM events WHERE grp = 1 AND ref = 73"

	// Without statistics both candidates carry the same default
	// estimate, so the tie-break (lowest name) reproduces first-match.
	res := mustExec(t, s, q)
	if res.AccessPath != "index:idx_grp" {
		t.Fatalf("pre-ANALYZE access path = %q, want index:idx_grp (first-match tie)", res.AccessPath)
	}

	mustExec(t, s, "ANALYZE TABLE events")

	// Now idx_ref estimates 100/100 = 1 row vs idx_grp's 100/2 = 50:
	// the planner must switch, and the result must not change.
	res = mustExec(t, s, q)
	if res.AccessPath != "index:idx_ref" {
		t.Fatalf("post-ANALYZE access path = %q, want index:idx_ref", res.AccessPath)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "n73" {
		t.Fatalf("rows = %v, want [n73]", res.Rows)
	}

	// EXPLAIN shows the choice and the estimates behind it.
	lines, expRes := explainLines(t, s, "EXPLAIN "+q)
	if expRes.AccessPath != "index:idx_ref" {
		t.Errorf("EXPLAIN access path = %q, want index:idx_ref", expRes.AccessPath)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "idx_ref") || !strings.Contains(joined, "est_rows=1") {
		t.Errorf("EXPLAIN missing cost annotation:\n%s", joined)
	}

	// EXPLAIN ANALYZE pairs the estimate with the actual count.
	lines, _ = explainLines(t, s, "EXPLAIN ANALYZE "+q)
	joined = strings.Join(lines, "\n")
	if !strings.Contains(joined, "est_rows=1") || !strings.Contains(joined, "actual_rows=1") {
		t.Errorf("EXPLAIN ANALYZE missing est/actual annotation:\n%s", joined)
	}

	// The control arm: cost-based planning off reverts to first-match
	// even with fresh statistics available.
	cfg2 := Defaults()
	cfg2.EnableQueryCache = false
	cfg2.DisableCostBasedPlanner = true
	e2, _ := newEngine(t, cfg2)
	s2 := e2.Connect("app")
	defer s2.Close()
	setupSkewed(t, s2, 100)
	mustExec(t, s2, "ANALYZE TABLE events")
	res = mustExec(t, s2, q)
	if res.AccessPath != "index:idx_grp" {
		t.Fatalf("DisableCostBasedPlanner access path = %q, want index:idx_grp", res.AccessPath)
	}
}

// TestCostBasedFullScanOverIndex: when statistics say an index matches
// most of the table, the extra key-lookup cost makes the full scan
// cheaper and the planner must take it.
func TestCostBasedFullScanOverIndex(t *testing.T) {
	cfg := Defaults()
	cfg.EnableQueryCache = false
	e, _ := newEngine(t, cfg)
	s := e.Connect("app")
	defer s.Close()
	mustExec(t, s, "CREATE TABLE flags (id INT PRIMARY KEY, flag INT)")
	mustExec(t, s, "CREATE INDEX idx_flag ON flags (flag)")
	for i := 0; i < 128; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO flags (id, flag) VALUES (%d, %d)", i, i%2))
	}

	const q = "SELECT * FROM flags WHERE flag = 0"
	// Unanalyzed: the default equality selectivity (10%) keeps the
	// index looking cheap.
	res := mustExec(t, s, q)
	if res.AccessPath != "index:idx_flag" {
		t.Fatalf("pre-ANALYZE access path = %q, want index:idx_flag", res.AccessPath)
	}
	mustExec(t, s, "ANALYZE TABLE flags")
	// Analyzed: 128/2 = 64 estimated matches; 64*(0.9+1.0) = 121.6
	// index cost against 128 sequential rows... still cheaper. Push the
	// skew: delete nothing, re-check with the real decision threshold by
	// using a table where the index estimate covers ~everything.
	res = mustExec(t, s, q)
	if res.AccessPath != "index:idx_flag" {
		t.Fatalf("post-ANALYZE access path = %q, want index:idx_flag (64 est rows is still cheap)", res.AccessPath)
	}

	// One distinct value: the index would resolve every row through a
	// key lookup — strictly worse than reading the table in order.
	mustExec(t, s, "CREATE TABLE ones (id INT PRIMARY KEY, v INT)")
	mustExec(t, s, "CREATE INDEX idx_v ON ones (v)")
	for i := 0; i < 80; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO ones (id, v) VALUES (%d, 7)", i))
	}
	mustExec(t, s, "ANALYZE TABLE ones")
	res = mustExec(t, s, "SELECT * FROM ones WHERE v = 7")
	if res.AccessPath != "full-scan" {
		t.Fatalf("access path = %q, want full-scan (index est 80 rows costs 152 vs 80)", res.AccessPath)
	}
	if len(res.Rows) != 80 {
		t.Fatalf("rows = %d, want 80", len(res.Rows))
	}
}

// TestAnalyzeStatisticsSurfaces checks the ANALYZE result row and the
// information_schema statistics tables.
func TestAnalyzeStatisticsSurfaces(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	defer s.Close()
	setupCustomers(t, s, 40)
	mustExec(t, s, "CREATE INDEX idx_age ON customers (age)")

	// Before ANALYZE the statistics tables are empty.
	res := mustExec(t, s, "SELECT * FROM information_schema.table_statistics")
	if len(res.Rows) != 0 {
		t.Fatalf("table_statistics before ANALYZE = %v, want empty", res.Rows)
	}

	res = mustExec(t, s, "ANALYZE TABLE customers")
	if len(res.Rows) != 1 || !strings.HasPrefix(res.Rows[0][2].Str, "OK rows=40") {
		t.Fatalf("ANALYZE result = %v", res.Rows)
	}

	res = mustExec(t, s, "SELECT * FROM information_schema.table_statistics")
	if len(res.Rows) != 1 {
		t.Fatalf("table_statistics rows = %d, want 1", len(res.Rows))
	}
	row := res.Rows[0]
	if row[0].Str != "customers" || row[2].Int != 40 || row[3].Int != 40 {
		t.Fatalf("table_statistics row = %v", row)
	}

	res = mustExec(t, s, "SELECT * FROM information_schema.index_statistics")
	// Two summarized columns: the pk (id) and the indexed age column,
	// ordered by column index — id first.
	if len(res.Rows) != 2 {
		t.Fatalf("index_statistics rows = %d, want 2", len(res.Rows))
	}
	id, age := res.Rows[0], res.Rows[1]
	if id[1].Str != "id" || id[2].Int != 40 || id[4].Int != 0 || id[5].Int != 39 {
		t.Fatalf("id stats = %v", id)
	}
	// setupCustomers ages: 20+i%50 for i in [0,40) → 20..59, all distinct.
	if age[1].Str != "age" || age[2].Int != 40 || age[4].Int != 20 || age[5].Int != 59 {
		t.Fatalf("age stats = %v", age)
	}

	// DML widens the bounds without re-running ANALYZE.
	mustExec(t, s, "INSERT INTO customers (id, name, state, age) VALUES (500, 'x', 'TX', 99)")
	res = mustExec(t, s, "SELECT * FROM information_schema.index_statistics")
	if res.Rows[0][5].Int != 500 || res.Rows[1][5].Int != 99 {
		t.Fatalf("bounds after insert = %v", res.Rows)
	}

	mustExec(t, s, "UPDATE customers SET age = 7 WHERE id = 500")
	res = mustExec(t, s, "SELECT * FROM information_schema.index_statistics")
	if res.Rows[1][4].Int != 7 {
		t.Fatalf("age min after update = %v, want 7", res.Rows[1])
	}
}

func TestAnalyzeUnknownTable(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	defer s.Close()
	if _, err := s.Execute("ANALYZE TABLE nosuch"); err == nil {
		t.Fatal("ANALYZE of unknown table did not error")
	}
}

// TestStatsDriftBumpsPlanEpoch: once a table's live row count doubles
// past the ANALYZE baseline the plan-cache epoch must move, so cached
// access paths get re-costed.
func TestStatsDriftBumpsPlanEpoch(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	defer s.Close()
	mustExec(t, s, "CREATE TABLE ticks (id INT PRIMARY KEY, v INT)")
	for i := 0; i < 10; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO ticks (id, v) VALUES (%d, %d)", i, i))
	}
	mustExec(t, s, "ANALYZE TABLE ticks")
	epoch := e.CatalogEpoch()

	// Up to 2x the baseline: no drift, no invalidation.
	for i := 10; i < 20; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO ticks (id, v) VALUES (%d, %d)", i, i))
	}
	if got := e.CatalogEpoch(); got != epoch {
		t.Fatalf("epoch moved to %d before drift threshold (baseline 10, live 20)", got)
	}
	// The next insert crosses live > 2*baseline.
	mustExec(t, s, "INSERT INTO ticks (id, v) VALUES (21, 21)")
	if got := e.CatalogEpoch(); got != epoch+1 {
		t.Fatalf("epoch = %d after 2x growth, want %d", got, epoch+1)
	}
	// The baseline reset to the live count: further inserts below the
	// new threshold do not re-bump.
	mustExec(t, s, "INSERT INTO ticks (id, v) VALUES (22, 22)")
	if got := e.CatalogEpoch(); got != epoch+1 {
		t.Fatalf("epoch = %d re-bumped without reaching the new threshold", got)
	}

	// Never-analyzed tables never drift.
	mustExec(t, s, "CREATE TABLE quiet (id INT PRIMARY KEY, v INT)")
	epoch = e.CatalogEpoch()
	for i := 0; i < 30; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO quiet (id, v) VALUES (%d, %d)", i, i))
	}
	if got := e.CatalogEpoch(); got != epoch {
		t.Fatalf("epoch moved to %d on DML against a never-analyzed table", got)
	}
}

// TestStatsSurviveRecovery: an analyzed table must still be analyzed —
// same summaries, same access-path decisions — after a checkpoint,
// crash, and recovery.
func TestStatsSurviveRecovery(t *testing.T) {
	mem := vfs.NewMemFS()
	e := durableEngine(t, mem)
	s := e.Connect("app")
	setupSkewed(t, s, 100)
	mustExec(t, s, "ANALYZE TABLE events")
	wantStats := mustExec(t, s, "SELECT * FROM information_schema.index_statistics")
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	mem.Crash()

	r, _, err := Recover(mem, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	s2 := r.Connect("app")
	defer s2.Close()

	gotStats := mustExec(t, s2, "SELECT * FROM information_schema.index_statistics")
	if fmt.Sprint(wantStats.Rows) != fmt.Sprint(gotStats.Rows) {
		t.Errorf("index_statistics changed across recovery:\nbefore: %v\nafter:  %v",
			wantStats.Rows, gotStats.Rows)
	}
	res := mustExec(t, s2, "SELECT note FROM events WHERE grp = 1 AND ref = 73")
	if res.AccessPath != "index:idx_ref" {
		t.Errorf("post-recovery access path = %q, want index:idx_ref (statistics lost?)", res.AccessPath)
	}
}
