package engine

import (
	"fmt"

	"snapdb/internal/binlog"
)

// ReplayBinlog performs point-in-time recovery: it executes every
// binlog event with Timestamp <= until (or all events when until is 0)
// against this engine, in order. This is the legitimate use of the
// binlog — and the reason it exists on every production server's disk.
// That the same replay rebuilds the entire database for a disk thief is
// the paper's §3 in one function: recovery and attack are the same
// computation.
//
// Replay must run on a fresh engine (no user tables). It returns the
// number of statements applied.
func (e *Engine) ReplayBinlog(events []binlog.Event, until int64) (int, error) {
	if len(e.Tables()) != 0 {
		return 0, fmt.Errorf("engine: binlog replay requires a fresh engine")
	}
	sess := e.Connect("pitr-replay")
	defer sess.Close()
	applied := 0
	for _, ev := range events {
		if until != 0 && ev.Timestamp > until {
			break
		}
		if _, err := sess.Execute(ev.Statement); err != nil {
			return applied, fmt.Errorf("engine: replaying %q: %w", ev.Statement, err)
		}
		applied++
	}
	return applied, nil
}
