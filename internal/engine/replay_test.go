package engine

import (
	"testing"

	"snapdb/internal/binlog"
)

func replayWorkload(t *testing.T) (*Engine, *int64) {
	e, now := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	for i, stmt := range []string{
		"INSERT INTO t (id, v) VALUES (1, 'one')",
		"INSERT INTO t (id, v) VALUES (2, 'two')",
		"UPDATE t SET v = 'TWO' WHERE id = 2",
		"INSERT INTO t (id, v) VALUES (3, 'three')",
		"DELETE FROM t WHERE id = 1",
	} {
		*now = 1_000_000 + int64(i+1)*60
		mustExec(t, s, stmt)
	}
	return e, now
}

func TestReplayBinlogFullRecovery(t *testing.T) {
	src, _ := replayWorkload(t)
	events := src.Binlog().Events()

	dst, _ := newEngine(t, Defaults())
	applied, err := dst.ReplayBinlog(events, 0)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(events) {
		t.Errorf("applied %d of %d", applied, len(events))
	}
	check := dst.Connect("check")
	res := mustExec(t, check, "SELECT id, v FROM t")
	if len(res.Rows) != 2 {
		t.Fatalf("recovered rows = %v", res.Rows)
	}
	if res.Rows[0][0].Int != 2 || res.Rows[0][1].Str != "TWO" || res.Rows[1][0].Int != 3 {
		t.Errorf("recovered state = %v", res.Rows)
	}
}

func TestReplayBinlogPointInTime(t *testing.T) {
	src, _ := replayWorkload(t)
	events := src.Binlog().Events()

	dst, _ := newEngine(t, Defaults())
	// Stop before the DELETE (which ran at 1_000_000 + 5*60).
	if _, err := dst.ReplayBinlog(events, 1_000_000+4*60); err != nil {
		t.Fatal(err)
	}
	check := dst.Connect("check")
	res := mustExec(t, check, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int != 3 { // rows 1, 2, 3 all present pre-delete
		t.Errorf("point-in-time count = %d, want 3", res.Rows[0][0].Int)
	}
	res = mustExec(t, check, "SELECT v FROM t WHERE id = 1")
	if len(res.Rows) != 1 {
		t.Error("pre-delete row missing")
	}
}

func TestReplayRequiresFreshEngine(t *testing.T) {
	e, _ := replayWorkload(t)
	if _, err := e.ReplayBinlog(nil, 0); err == nil {
		t.Error("replay onto a populated engine accepted")
	}
}

func TestReplayStopsOnBadStatement(t *testing.T) {
	dst, _ := newEngine(t, Defaults())
	events := []binlog.Event{
		{Timestamp: 1, Statement: "CREATE TABLE t (id INT PRIMARY KEY)"},
		{Timestamp: 2, Statement: "GARBAGE"},
		{Timestamp: 3, Statement: "INSERT INTO t (id) VALUES (1)"},
	}
	applied, err := dst.ReplayBinlog(events, 0)
	if err == nil {
		t.Fatal("corrupt event accepted")
	}
	if applied != 1 {
		t.Errorf("applied = %d, want 1", applied)
	}
}

// TestAttackerRebuildsDatabaseFromStolenBinlog is the §3 punchline:
// the stolen binlog alone reconstructs the full database plaintext
// (here: the engine's view of it — ciphertexts for an EDB, everything
// for a plain deployment).
func TestAttackerRebuildsDatabaseFromStolenBinlog(t *testing.T) {
	victim, _ := replayWorkload(t)
	stolen := victim.Binlog().Serialize() // bytes from the stolen disk

	events, err := binlog.Parse(stolen)
	if err != nil {
		t.Fatal(err)
	}
	attacker, _ := newEngine(t, Defaults())
	if _, err := attacker.ReplayBinlog(events, 0); err != nil {
		t.Fatal(err)
	}
	vres := mustExec(t, victim.Connect("v"), "SELECT id, v FROM t")
	ares := mustExec(t, attacker.Connect("a"), "SELECT id, v FROM t")
	if len(vres.Rows) != len(ares.Rows) {
		t.Fatalf("attacker sees %d rows, victim has %d", len(ares.Rows), len(vres.Rows))
	}
	for i := range vres.Rows {
		for j := range vres.Rows[i] {
			if !vres.Rows[i][j].Equal(ares.Rows[i][j]) {
				t.Errorf("row %d differs", i)
			}
		}
	}
}
