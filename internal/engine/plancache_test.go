package engine

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"snapdb/internal/storage"
)

func TestPlanCacheHitsOnRepeat(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	defer s.Close()
	setupCustomers(t, s, 10)

	const q = "SELECT name FROM customers WHERE id = 3"
	mustExec(t, s, q)
	h0, m0, _ := e.PlanCacheStats()
	for i := 0; i < 5; i++ {
		res := mustExec(t, s, q)
		if len(res.Rows) != 1 || res.Rows[0][0].Str != "name3" {
			t.Fatalf("iteration %d: rows = %v", i, res.Rows)
		}
	}
	h1, m1, entries := e.PlanCacheStats()
	if h1-h0 != 5 {
		t.Errorf("hits = %d, want 5 (stats %d/%d -> %d/%d)", h1-h0, h0, m0, h1, m1)
	}
	if m1 != m0 {
		t.Errorf("repeat executions missed the cache: misses %d -> %d", m0, m1)
	}
	if entries == 0 {
		t.Error("cache reports no entries")
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	cfg := Defaults()
	cfg.DisablePlanCache = true
	e, _ := newEngine(t, cfg)
	s := e.Connect("app")
	defer s.Close()
	setupCustomers(t, s, 10)

	for i := 0; i < 3; i++ {
		mustExec(t, s, "SELECT name FROM customers WHERE id = 3")
	}
	if h, m, entries := e.PlanCacheStats(); h != 0 || m != 0 || entries != 0 {
		t.Errorf("disabled cache has activity: hits=%d misses=%d entries=%d", h, m, entries)
	}
}

// TestPlanCacheDDLInvalidation checks that DDL bumps the catalog epoch
// and that a statement planned before the DDL is re-planned after it —
// observable through the access path: a SELECT cached as a full scan
// must pick up an index created later.
func TestPlanCacheDDLInvalidation(t *testing.T) {
	cfg := Defaults()
	cfg.EnableQueryCache = false // observe real access paths, not cached results
	e, _ := newEngine(t, cfg)
	s := e.Connect("app")
	defer s.Close()
	setupCustomers(t, s, 50)

	const q = "SELECT name FROM customers WHERE age = 25"
	if res := mustExec(t, s, q); res.AccessPath != "full-scan" {
		t.Fatalf("pre-index access path = %q", res.AccessPath)
	}
	mustExec(t, s, q) // cached now

	epochBefore := e.CatalogEpoch()
	mustExec(t, s, "CREATE INDEX idx_age ON customers (age)")
	if got := e.CatalogEpoch(); got != epochBefore+1 {
		t.Errorf("CREATE INDEX moved epoch %d -> %d, want +1", epochBefore, got)
	}
	if res := mustExec(t, s, q); res.AccessPath != "index:idx_age" {
		t.Errorf("post-index access path = %q, want index:idx_age (stale plan reused?)", res.AccessPath)
	}

	epochBefore = e.CatalogEpoch()
	mustExec(t, s, "CREATE TABLE fresh (id INT PRIMARY KEY)")
	if got := e.CatalogEpoch(); got != epochBefore+1 {
		t.Errorf("CREATE TABLE moved epoch %d -> %d, want +1", epochBefore, got)
	}
}

// TestPlanCacheUnknownTableThenCreate pins the miss-path equivalence:
// a statement that failed to resolve ("unknown table") must succeed
// after the table appears, not replay its cached failure.
func TestPlanCacheUnknownTableThenCreate(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	defer s.Close()

	const q = "SELECT id FROM later"
	if _, err := s.Execute(q); err == nil {
		t.Fatal("SELECT from missing table succeeded")
	}
	mustExec(t, s, "CREATE TABLE later (id INT PRIMARY KEY)")
	mustExec(t, s, "INSERT INTO later (id) VALUES (1)")
	if res := mustExec(t, s, q); len(res.Rows) != 1 {
		t.Errorf("post-create SELECT rows = %v", res.Rows)
	}
}

// TestPlanCacheConcurrentHitInvalidate races cached SELECT traffic
// against DDL-driven invalidation; run under -race this checks the
// epoch/LRU synchronization, and the access-path assertion checks no
// goroutine keeps a plan from before its table's index existed forever.
func TestPlanCacheConcurrentHitInvalidate(t *testing.T) {
	cfg := Defaults()
	cfg.EnableQueryCache = false // observe real access paths, not cached results
	e, _ := newEngine(t, cfg)
	setup := e.Connect("setup")
	setupCustomers(t, setup, 50)
	for i := 0; i < 4; i++ {
		mustExec(t, setup, fmt.Sprintf("CREATE TABLE side%d (id INT PRIMARY KEY, v INT)", i))
	}
	setup.Close()

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := e.Connect(fmt.Sprintf("reader%d", r))
			defer s.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := fmt.Sprintf("SELECT name FROM customers WHERE age = %d", 20+i%50)
				if _, err := s.Execute(q); err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
			}
		}(r)
	}
	ddlDone := make(chan struct{})
	go func() {
		defer close(ddlDone)
		s := e.Connect("ddl")
		defer s.Close()
		for i := 0; i < 4; i++ {
			if _, err := s.Execute(fmt.Sprintf("CREATE INDEX idx_side%d ON side%d (v)", i, i)); err != nil {
				errs <- fmt.Errorf("ddl %d: %w", i, err)
				return
			}
		}
		if _, err := s.Execute("CREATE INDEX idx_cage ON customers (age)"); err != nil {
			errs <- fmt.Errorf("ddl customers: %w", err)
		}
	}()
	<-ddlDone
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// After the dust settles the cached full-scan plan must be gone.
	check := e.Connect("check")
	defer check.Close()
	if res := mustExec(t, check, "SELECT name FROM customers WHERE age = 25"); res.AccessPath != "index:idx_cage" {
		t.Errorf("post-race access path = %q, want index:idx_cage", res.AccessPath)
	}
}

// forensicState captures every statement-visible artifact surface the
// leakage-equivalence property covers.
type forensicState struct {
	general    []string
	binlog     []string
	digests    []string
	history    []string
	current    []string
	stages     []string
	arena      []byte
	statements uint64
}

func captureForensics(e *Engine) forensicState {
	var fs forensicState
	for _, ev := range e.PerfSchema().StagesHistory() {
		fs.stages = append(fs.stages, fmt.Sprintf("%d|%d|%s|%d|%d|%s|%d|%d|%d",
			ev.Thread, ev.Timestamp, ev.Digest, ev.Seq, ev.Depth, ev.Operator,
			ev.RowsExamined, ev.RowsReturned, ev.PoolFetches))
	}
	for _, en := range e.GeneralLog().Entries() {
		fs.general = append(fs.general, fmt.Sprintf("%d|%d|%s", en.Timestamp, en.Session, en.Statement))
	}
	for _, ev := range e.Binlog().Events() {
		fs.binlog = append(fs.binlog, fmt.Sprintf("%d|%d|%s", ev.Timestamp, ev.LSN, ev.Statement))
	}
	for _, row := range e.PerfSchema().DigestSummary() {
		fs.digests = append(fs.digests, fmt.Sprintf("%s|%s|%d|%d|%d|%d|%d",
			row.Digest, row.DigestText, row.Count, row.SumRowsExamined, row.SumRowsReturned,
			row.FirstSeen, row.LastSeen))
	}
	for _, ev := range e.PerfSchema().History() {
		fs.history = append(fs.history, fmt.Sprintf("%d|%d|%s|%s|%s|%d|%d",
			ev.Thread, ev.Timestamp, ev.Statement, ev.Digest, ev.DigestText,
			ev.RowsExamined, ev.RowsReturned))
	}
	for _, ev := range e.PerfSchema().Current() {
		fs.current = append(fs.current, fmt.Sprintf("%d|%d|%s|%s|%s",
			ev.Thread, ev.Timestamp, ev.Statement, ev.Digest, ev.DigestText))
	}
	fs.arena = e.Arena().Dump()
	fs.statements = e.Statements()
	return fs
}

// TestPlanCacheLeakageEquivalence is the tested property the plan
// cache is built around: a cache hit skips parsing, but every forensic
// artifact — general log, binlog, perfschema statement events and
// digest histogram, and the heap arena's byte image — must be
// identical to an engine executing the same workload with the cache
// off. If the cache ever short-circuits an artifact write, the paper's
// experiments would silently under-report leakage.
func TestPlanCacheLeakageEquivalence(t *testing.T) {
	workload := []string{
		"CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance INT)",
		"INSERT INTO accounts (id, owner, balance) VALUES (1, 'alice', 100)",
		"INSERT INTO accounts (id, owner, balance) VALUES (2, 'bob', 250)",
		"SELECT owner FROM accounts WHERE id = 1",
		"SELECT owner FROM accounts WHERE id = 1", // cache hit
		"SELECT owner FROM accounts WHERE id = 2", // same digest, different literal
		"SELECT * FROM missing",                   // resolution error, repeated
		"SELECT * FROM missing",
		"THIS IS NOT SQL", // parse error, repeated
		"THIS IS NOT SQL",
		"UPDATE accounts SET balance = 175 WHERE id = 1",
		"UPDATE accounts SET balance = 175 WHERE id = 1", // hit on DML
		"BEGIN",
		"INSERT INTO accounts (id, owner, balance) VALUES (3, 'carol', 50)",
		"ROLLBACK",
		"CREATE INDEX idx_owner ON accounts (owner)", // DDL: invalidates
		"SELECT id FROM accounts WHERE owner = 'bob'",
		"SELECT id FROM accounts WHERE owner = 'bob'",
		"DELETE FROM accounts WHERE id = 2",
		"SELECT COUNT(*) FROM accounts",
		"ANALYZE TABLE accounts",                      // statistics rebuild: bumps the plan epoch
		"SELECT id FROM accounts WHERE owner = 'bob'", // re-planned against fresh statistics
		"SELECT id FROM accounts WHERE owner = 'bob'", // hit on the re-costed plan
		"ANALYZE TABLE missing",                       // error path, repeated
		"ANALYZE TABLE missing",
		"SELECT owner FROM accounts ORDER BY balance DESC LIMIT 1",
		"SELECT owner FROM accounts ORDER BY balance DESC LIMIT 1", // hit on ORDER BY/LIMIT
		"SELECT SUM(balance) FROM accounts WHERE id >= 1 AND id <= 3",
		"SELECT owner FROM accounts ORDER BY balance LIMIT 0", // LIMIT 0: real, empty limit
		"SELECT owner FROM accounts ORDER BY balance LIMIT 0",
		"SELECT id FROM accounts WHERE owner >= 'a' AND owner <= 'z' ORDER BY owner DESC", // index-order DESC
		"SELECT id FROM accounts WHERE owner >= 'a' AND owner <= 'z' ORDER BY owner DESC",
		"EXPLAIN SELECT id FROM accounts WHERE owner = 'alice'",
		"EXPLAIN SELECT id FROM accounts WHERE owner = 'alice'", // hit on EXPLAIN
		"EXPLAIN ANALYZE SELECT owner FROM accounts ORDER BY balance DESC LIMIT 1",
		"EXPLAIN ANALYZE SELECT owner FROM accounts ORDER BY balance DESC LIMIT 1", // hit on EXPLAIN ANALYZE
	}

	run := func(disable bool) (forensicState, []storage.PageID) {
		cfg := Defaults()
		cfg.DisablePlanCache = disable
		cfg.EnableGeneralLog = true
		e, now := newEngine(t, cfg)
		var trace []storage.PageID
		e.BufferPool().SetTraceFunc(func(id storage.PageID) { trace = append(trace, id) })
		s := e.Connect("victim")
		defer s.Close()
		for _, q := range workload {
			*now++ // deterministic, identical clocks in both runs
			res, err := s.Execute(q)
			_ = res
			_ = err // errors are part of the workload
		}
		return captureForensics(e), trace
	}

	withCache, traceOn := run(false)
	without, traceOff := run(true)

	if !reflect.DeepEqual(traceOn, traceOff) {
		t.Errorf("buffer-pool fetch sequences differ with plan cache on vs off: %d vs %d fetches",
			len(traceOn), len(traceOff))
	}
	for _, cmp := range []struct {
		name string
		a, b []string
	}{
		{"general log", withCache.general, without.general},
		{"binlog", withCache.binlog, without.binlog},
		{"digest summary", withCache.digests, without.digests},
		{"statement history", withCache.history, without.history},
		{"statements current", withCache.current, without.current},
		{"stages history", withCache.stages, without.stages},
	} {
		if !reflect.DeepEqual(cmp.a, cmp.b) {
			t.Errorf("%s differs with plan cache on vs off:\n  on:  %v\n  off: %v", cmp.name, cmp.a, cmp.b)
		}
	}
	if !bytes.Equal(withCache.arena, without.arena) {
		t.Errorf("heap arena images differ: %d vs %d bytes", len(withCache.arena), len(without.arena))
	}
	if withCache.statements != without.statements {
		t.Errorf("statement counters differ: %d vs %d", withCache.statements, without.statements)
	}
}
