package engine

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"snapdb/internal/crypto/prim"
	"snapdb/internal/failpoint"
	"snapdb/internal/vfs"
)

func cryptCfg(det bool) Config {
	cfg := Defaults()
	cfg.EncryptAtRest = true
	cfg.EncryptionKey = prim.TestKey("engine-crypt")
	cfg.DeterministicPages = det
	cfg.EnableGeneralLog = true
	return cfg
}

// TestDifferentialCryptVsPlain proves encryption at rest is observably
// transparent, the property that makes it deployable — and, per the
// paper, the property that bounds what it can protect. Three arms run
// the same workload on separate MemFS instances: plaintext,
// deterministic encryption, fresh-IV encryption. Asserted:
//
//   - per-statement results and errors are identical across arms;
//   - the binlog and general log event streams are identical;
//   - every persisted file, read back through the crypto layer,
//     is byte-identical to the plain arm's raw file — same frames,
//     same LSNs, same lengths (the length preservation is itself the
//     size side channel E17 uses);
//   - the at-rest bytes of both encrypted arms contain none of the
//     workload's plaintext markers, while the plain arm's do.
func TestDifferentialCryptVsPlain(t *testing.T) {
	stmts := append(tortureStmts(),
		"INSERT INTO users (id, name, karma) VALUES (70, 'marker-aa-secret', 7)",
		"SELECT name FROM users WHERE id = 70",
		"SELECT COUNT(*) FROM orders",
	)

	type arm struct {
		outcomes []string
		binlog   []string
		general  []string
		files    map[string][]byte // logical (decrypted) view
		raw      map[string][]byte // at-rest bytes
	}
	run := func(name string, encrypt, det bool) arm {
		mem := vfs.NewMemFS()
		cfg := cryptCfg(det)
		if !encrypt {
			cfg.EncryptAtRest = false
		}
		cfg.FS = mem
		e, now := newEngine(t, cfg)
		var a arm
		s := e.Connect("diff")
		defer s.Close()
		for _, q := range stmts {
			*now++
			res, err := s.Execute(q)
			a.outcomes = append(a.outcomes, renderResult(res, err))
		}
		for _, en := range e.GeneralLog().Entries() {
			a.general = append(a.general, fmt.Sprintf("%d|%d|%s", en.Timestamp, en.Session, en.Statement))
		}
		for _, ev := range e.Binlog().Events() {
			a.binlog = append(a.binlog, fmt.Sprintf("%d|%d|%s", ev.Timestamp, ev.LSN, ev.Statement))
		}
		// Logical view: through the crypto layer (or directly, when
		// plain). A fresh CryptFS instance over the surviving bytes is
		// exactly what a restart uses, so this also proves the reader
		// needs no state beyond the key.
		var logical vfs.FS = mem
		if encrypt {
			cfs, err := vfs.NewCryptFS(mem, cfg.EncryptionKey, det)
			if err != nil {
				t.Fatal(err)
			}
			logical = cfs
		}
		a.files = map[string][]byte{}
		a.raw = map[string][]byte{}
		for _, f := range []string{FileRedo, FileUndo, FileBinlog, FileCheckpoint} {
			if b, err := logical.ReadFile(f); err == nil {
				a.files[f] = b
			}
			if b, err := mem.ReadFile(f); err == nil {
				a.raw[f] = b
			}
		}
		t.Logf("%s: %d statements, %d binlog events, %d files", name, len(stmts), len(a.binlog), len(a.files))
		return a
	}

	plain := run("plain", false, false)
	det := run("det", true, true)
	fresh := run("fresh", true, false)

	for armName, a := range map[string]arm{"det": det, "fresh": fresh} {
		for i := range plain.outcomes {
			if plain.outcomes[i] != a.outcomes[i] {
				t.Fatalf("%s: statement %d %q:\nplain: %s\ncrypt: %s",
					armName, i, stmts[i], plain.outcomes[i], a.outcomes[i])
			}
		}
		if !reflect.DeepEqual(plain.binlog, a.binlog) {
			t.Errorf("%s: binlog event stream differs from plain", armName)
		}
		if !reflect.DeepEqual(plain.general, a.general) {
			t.Errorf("%s: general log differs from plain", armName)
		}
		for f, want := range plain.raw {
			got, ok := a.files[f]
			if !ok {
				t.Errorf("%s: file %s missing from encrypted arm", armName, f)
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: decrypted %s differs from plain bytes (%d vs %d bytes)",
					armName, f, len(got), len(want))
			}
			raw := a.raw[f]
			if len(raw) != len(want) {
				t.Errorf("%s: ciphertext %s is %d bytes, plain is %d — length not preserved",
					armName, f, len(raw), len(want))
			}
			if len(want) > 0 && bytes.Equal(raw, want) {
				t.Errorf("%s: %s at rest equals plaintext", armName, f)
			}
		}
		// No plaintext markers at rest: statement text, table names,
		// row strings. The plain binlog carries all of them.
		for _, marker := range [][]byte{[]byte("marker-aa-secret"), []byte("INSERT INTO"), []byte("users")} {
			if !bytes.Contains(plain.raw[FileBinlog], marker) {
				t.Fatalf("plain binlog lacks marker %q — marker scan is vacuous", marker)
			}
			for f, raw := range a.raw {
				if bytes.Contains(raw, marker) {
					t.Errorf("%s: marker %q visible at rest in %s", armName, marker, f)
				}
			}
		}
	}
}

// TestCrashTortureEncrypted reruns the kill-point torture harness with
// the crypto layer stacked over the fault injector: engine -> CryptFS
// -> FaultFS -> MemFS, so every injected fault lands on ciphertext, as
// disk faults do. Deterministic mode's positional keystream means the
// inner operation sequence is identical to the plaintext run — same
// kill-point schedule, same torn-write semantics — and recovery through
// a fresh CryptFS must land on the same reference digests.
func TestCrashTortureEncrypted(t *testing.T) {
	stmts := tortureStmts()
	refs := refDigests(t, stmts)
	cfg := cryptCfg(true)
	cfg.EnableGeneralLog = false

	// Dry run on plaintext: deterministic encryption must not change
	// the durable-op count, so the plain total IS the encrypted total.
	dryReg := failpoint.New(1)
	if got := runUntilError(vfs.NewFaultFS(vfs.NewMemFS(), dryReg), stmts); got != len(stmts) {
		t.Fatalf("dry run failed at statement %d", got)
	}
	total := int(dryReg.TotalHits())

	encReg := failpoint.New(1)
	if got := runUntilErrorCfg(vfs.NewFaultFS(vfs.NewMemFS(), encReg), cfg, stmts); got != len(stmts) {
		t.Fatalf("encrypted dry run failed at statement %d", got)
	}
	if encTotal := int(encReg.TotalHits()); encTotal != total {
		t.Fatalf("encrypted op count %d != plaintext %d: crypto layer changed the durable op stream", encTotal, total)
	}

	stride := total / 120
	if stride < 1 {
		stride = 1
	}
	points := 0
	for k := 1; k <= total; k += stride {
		mem := vfs.NewMemFS()
		reg := failpoint.New(1)
		reg.Arm("*", failpoint.KindCrash, uint64(k))
		acked := runUntilErrorCfg(vfs.NewFaultFS(mem, reg), cfg, stmts)
		if !reg.Crashed() {
			t.Fatalf("kill-point %d never fired (acked %d)", k, acked)
		}
		mem.Crash()

		r, rep, err := Recover(mem, cfg)
		if err != nil {
			t.Fatalf("kill-point %d: encrypted recovery failed: %v", k, err)
		}
		got := digestOf(t, r)
		next := acked + 1
		if next > len(stmts) {
			next = len(stmts)
		}
		if got != refs[acked] && got != refs[next] {
			t.Fatalf("kill-point %d diverged: acked %d statements, report %+v", k, acked, rep)
		}
		points++
	}
	if points < 100 {
		t.Errorf("only %d kill-points exercised, want >= 100 (total ops %d)", points, total)
	}
	t.Logf("%d encrypted kill-points over %d durable ops, all recovered consistently", points, total)
}

// TestCrashTortureBitFlipsEncrypted is satellite 4's end-to-end check:
// a single bit flipped in the at-rest ciphertext of a redo write must
// surface at recovery as a detected CRC/torn truncation of the decrypted
// frame stream — never as silently wrong plaintext served to queries.
func TestCrashTortureBitFlipsEncrypted(t *testing.T) {
	stmts := tortureStmts()
	cfg := cryptCfg(true)
	cfg.EnableGeneralLog = false
	for _, k := range []uint64{14, 18, 25, 33} {
		mem := vfs.NewMemFS()
		reg := failpoint.New(int64(k))
		reg.Arm("write:"+FileRedo, failpoint.KindBitFlip, k)
		if got := runUntilErrorCfg(vfs.NewFaultFS(mem, reg), cfg, stmts); got != len(stmts) {
			t.Fatalf("bit flip %d: silent corruption turned into an error at statement %d", k, got)
		}
		mem.Crash()

		r, rep, err := Recover(mem, cfg)
		if err != nil {
			t.Fatalf("bit flip %d: encrypted recovery failed: %v", k, err)
		}
		if rep.RedoTruncated == nil {
			t.Fatalf("bit flip %d in ciphertext went undetected after decrypt", k)
		}
		if reason := rep.RedoTruncated.Reason; !strings.Contains(reason, "checksum") &&
			!strings.Contains(reason, "torn") && !strings.Contains(reason, "bad") {
			t.Errorf("bit flip %d: reason %q", k, reason)
		}
		s := r.Connect("app")
		if _, err := s.Execute("SELECT name FROM users WHERE id = 0"); err != nil {
			t.Errorf("bit flip %d: recovered engine cannot serve: %v", k, err)
		}
	}
}

// TestRecoverEncryptedWrongKey pins the failure mode of a key mismatch:
// recovery must refuse cleanly (the checkpoint does not parse), never
// panic or serve garbage.
func TestRecoverEncryptedWrongKey(t *testing.T) {
	mem := vfs.NewMemFS()
	cfg := cryptCfg(true)
	cfg.FS = mem
	e, _ := newEngine(t, cfg)
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 'x')")
	mem.Crash()

	good := cryptCfg(true)
	if _, _, err := Recover(mem, good); err != nil {
		t.Fatalf("right key failed: %v", err)
	}
	bad := cryptCfg(true)
	bad.EncryptionKey = prim.TestKey("not-the-key")
	if _, _, err := Recover(mem, bad); err == nil {
		t.Fatal("wrong key recovered without error")
	}
}
