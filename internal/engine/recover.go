package engine

import (
	"fmt"
	"sort"

	"snapdb/internal/binlog"
	"snapdb/internal/btree"
	"snapdb/internal/bufpool"
	"snapdb/internal/storage"
	"snapdb/internal/vfs"
	"snapdb/internal/wal"
)

// TruncationInfo records where and why a log file's parse stopped
// before its end — the torn tail or corruption that recovery cut off.
type TruncationInfo struct {
	Offset int
	Reason string
}

// RecoveryReport is the structured outcome of Recover: what was found
// on disk, what was cut off, and what was redone and undone. It is the
// operator-facing account of a crash — and, per §3 of the paper, an
// inventory of exactly how much transcript a crashed data directory
// still holds.
type RecoveryReport struct {
	CheckpointFound bool
	CheckpointLSN   uint64
	Tables          int // tables reopened from the checkpoint

	RedoRecords  int // valid records parsed from the redo file
	UndoRecords  int
	BinlogEvents int

	RedoTruncated   *TruncationInfo // non-nil if the redo file had a bad tail
	UndoTruncated   *TruncationInfo
	BinlogTruncated *TruncationInfo

	TxnsCommitted  int // distinct txns with a commit marker
	TxnsAborted    int // distinct txns with an abort marker
	TxnsRolledBack int // loser txns rolled back by recovery
	RecordsApplied int // redo records replayed into the trees
	FramesSkipped  int // records skipped (pre-checkpoint LSN or inapplicable)

	BufferPoolWarmed bool // the on-disk dump passed its checksum
	MaxLSN           uint64
}

func truncOf(truncated bool, at int, reason string) *TruncationInfo {
	if !truncated {
		return nil
	}
	return &TruncationInfo{Offset: at, Reason: reason}
}

// Recover opens a data directory, rebuilding engine state ARIES-style:
// load the last checkpoint, repeat history from the redo log's valid
// prefix, then roll back transactions that never reached a commit or
// abort marker. Torn or corrupt log tails are truncated (and reported),
// never fatal; a corrupt checkpoint is fatal (there is no state to
// rebuild from) but still a clean error, never a panic.
//
// The returned engine is durable on fs and ready to serve. The report
// is non-nil whenever the error is nil, and also on log-parse anomalies
// that were handled; it is returned alongside fatal errors too, with
// whatever was learned before the failure.
func Recover(fs vfs.FS, cfg Config) (*Engine, *RecoveryReport, error) {
	// At-rest encryption wraps here, above everything recovery reads:
	// the checkpoint, WAL parsing, and the reattached persistor all see
	// plaintext, while fs below holds only ciphertext.
	fs, err := wrapEncryption(fs, cfg)
	if err != nil {
		return nil, nil, err
	}
	cfg.FS = nil // the persistor is attached manually, after truncation offsets are known
	e, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	rep := &RecoveryReport{}

	meta, tsImage, found, err := readCheckpoint(fs)
	if err != nil {
		return nil, rep, err
	}
	if found {
		rep.CheckpointFound = true
		rep.CheckpointLSN = meta.LSN
		if err := e.loadCheckpoint(meta, tsImage); err != nil {
			return nil, rep, err
		}
		rep.Tables = len(meta.Tables)
	}

	readAll := func(name string) []byte {
		b, err := fs.ReadFile(name)
		if err != nil {
			return nil // missing file = empty log
		}
		return b
	}

	redoImg := readAll(FileRedo)
	redoRecs, redoRep := wal.ParseLogReport(redoImg)
	rep.RedoRecords = len(redoRecs)
	rep.RedoTruncated = truncOf(redoRep.Truncated(), redoRep.TruncatedAt, redoRep.Reason)
	redoOff := len(redoImg)
	if redoRep.Truncated() {
		redoOff = redoRep.TruncatedAt
	}

	undoImg := readAll(FileUndo)
	undoRecs, undoRep := wal.ParseLogReport(undoImg)
	rep.UndoRecords = len(undoRecs)
	rep.UndoTruncated = truncOf(undoRep.Truncated(), undoRep.TruncatedAt, undoRep.Reason)
	undoOff := len(undoImg)
	if undoRep.Truncated() {
		undoOff = undoRep.TruncatedAt
	}

	blogImg := readAll(FileBinlog)
	blogEvs, blogRep := binlog.ParseWithReport(blogImg)
	rep.BinlogEvents = len(blogEvs)
	rep.BinlogTruncated = truncOf(blogRep.Truncated(), blogRep.TruncatedAt, blogRep.Reason)
	blogOff := len(blogImg)
	if blogRep.Truncated() {
		blogOff = blogRep.TruncatedAt
	}

	// Sort winners from losers. Txn 0 (records logged outside any
	// transaction, e.g. by tooling driving the wal.Manager directly) is
	// treated as committed, matching its pre-transaction semantics.
	committed := make(map[uint64]bool)
	aborted := make(map[uint64]bool)
	seen := make(map[uint64]bool)
	maxLSN := meta.LSN
	maxTxn := meta.Txn
	for _, r := range redoRecs {
		if r.LSN > maxLSN {
			maxLSN = r.LSN
		}
		if r.Txn > maxTxn {
			maxTxn = r.Txn
		}
		switch r.Op {
		case wal.OpCommit:
			committed[r.Txn] = true
		case wal.OpAbort:
			aborted[r.Txn] = true
		default:
			if r.Txn != 0 {
				seen[r.Txn] = true
			}
		}
	}
	rep.TxnsCommitted = len(committed)
	rep.TxnsAborted = len(aborted)
	rep.MaxLSN = maxLSN

	// Repopulate the in-memory circular logs with the valid prefixes, so
	// the forensic surface (snapshots, SHOW-style inspection) carries
	// across the crash exactly as the files do.
	e.wal.Redo.AppendBatch(redoRecs)
	e.wal.Undo.AppendBatch(undoRecs)
	for _, ev := range blogEvs {
		e.binlog.Append(ev)
	}
	if n := len(blogEvs); n > 0 {
		e.binlog.Prime(blogEvs[n-1].Timestamp, blogEvs[n-1].LSN)
	}
	e.wal.SetRecovered(maxLSN, maxTxn)

	// Attach the durability sink at the valid-prefix offsets; this also
	// truncates the torn tails off the files. From here on, compensation
	// records logged below are persisted like any other write.
	if err := e.attachPersist(fs, int64(redoOff), int64(undoOff), int64(blogOff)); err != nil {
		return nil, rep, err
	}

	// Repeat history: replay every post-checkpoint data record in LSN
	// order, winners and losers alike (losers' rollbacks are then redone
	// logically below, exactly as ARIES repeats and compensates). While
	// replaying a loser's records, capture the pre-images needed to undo
	// them: the undo *file* may have lost its own tail in the crash, but
	// replay order makes the pre-images exact.
	synth := make(map[uint64][]wal.Record)
	loserMaxLSN := make(map[uint64]uint64)
	for _, r := range redoRecs {
		if r.Op.IsMarker() {
			// Resolve the transaction in the version store at its marker,
			// mirroring the original commit/rollback-completion points.
			// Pre-checkpoint markers are skipped: those transactions'
			// sequences came with the checkpoint's serialized store.
			if r.Txn != 0 && (!found || r.LSN > meta.LSN) {
				e.commitVersions(r.Txn)
			}
			continue
		}
		if found && r.LSN <= meta.LSN {
			rep.FramesSkipped++
			continue
		}
		loser := r.Txn != 0 && seen[r.Txn] && !committed[r.Txn] && !aborted[r.Txn]
		undoRec, applied, err := e.applyRedo(r)
		if err != nil {
			return nil, rep, fmt.Errorf("engine: redo LSN %d: %w", r.LSN, err)
		}
		if !applied {
			rep.FramesSkipped++
			continue
		}
		rep.RecordsApplied++
		if loser {
			synth[r.Txn] = append(synth[r.Txn], undoRec)
			loserMaxLSN[r.Txn] = r.LSN
		}
	}

	// Undo losers, newest transaction first, logging compensations and
	// an abort marker so a second crash finds only winners and aborted
	// transactions — recovery converges.
	losers := make([]uint64, 0, len(synth))
	for txn := range synth {
		losers = append(losers, txn)
	}
	sort.Slice(losers, func(i, j int) bool { return loserMaxLSN[losers[i]] > loserMaxLSN[losers[j]] })
	for _, txn := range losers {
		if err := e.applyUndo(txn, synth[txn]); err != nil {
			return nil, rep, fmt.Errorf("engine: rolling back txn %d: %w", txn, err)
		}
		if err := e.wal.LogAbort(txn); err != nil {
			return nil, rep, fmt.Errorf("engine: abort marker for txn %d: %w", txn, err)
		}
		// As at a live ROLLBACK: the compensated state becomes the
		// visible latest, the loser's intermediates stay invisible.
		e.commitVersions(txn)
		rep.TxnsRolledBack++
	}

	// Warm the buffer pool from the dump if its checksum holds; a
	// damaged dump is simply ignored, never trusted.
	if dump, derr := fs.ReadFile(FileBufferPool); derr == nil {
		if ids, perr := bufpool.ParseDump(dump); perr == nil {
			rep.BufferPoolWarmed = true
			for i := len(ids) - 1; i >= 0; i-- { // least-recent first rebuilds LRU order
				_, _ = e.pool.Fetch(ids[i])
			}
		}
	}
	return e, rep, nil
}

// loadCheckpoint replaces the engine's fresh state with the checkpoint
// image: tablespace, buffer pool, catalog, reopened B+ trees.
func (e *Engine) loadCheckpoint(meta ckptMeta, tsImage []byte) error {
	ts, err := storage.LoadTablespace(tsImage)
	if err != nil {
		return fmt.Errorf("engine: checkpoint tablespace: %w", err)
	}
	pool, err := bufpool.New(ts, e.cfg.BufferPoolPages)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ts = ts
	e.pool = pool
	e.tables = make(map[string]*Table, len(meta.Tables))
	e.tablesByID = make(map[uint8]*Table, len(meta.Tables))
	for _, ct := range meta.Tables {
		t := &Table{
			ID:      ct.ID,
			Name:    ct.Name,
			Columns: ct.Columns,
			PKIndex: ct.PK,
			Tree:    btree.Open(ts, pool, ct.Root),
		}
		for _, ci := range ct.Indexes {
			t.Indexes = append(t.Indexes, &SecondaryIndex{
				Name:   ci.Name,
				Column: ci.Column,
				colIdx: ci.ColIdx,
				Tree:   btree.Open(ts, pool, ci.Root),
			})
		}
		sort.Slice(t.Indexes, func(i, j int) bool { return t.Indexes[i].Name < t.Indexes[j].Name })
		if ct.Stats != nil {
			t.setStats(ct.Stats.Cols, ct.Stats.AnalyzedAt, ct.Stats.Baseline)
		}
		if t.Name == "" || e.tables[t.Name] != nil {
			return fmt.Errorf("engine: checkpoint catalog has duplicate or empty table %q", t.Name)
		}
		if n, err := t.Tree.Len(); err == nil {
			t.rows.Store(int64(n))
		}
		e.tables[t.Name] = t
		e.tablesByID[t.ID] = t
	}
	e.nextTableID = meta.NextTableID
	e.wal.SetRecovered(meta.LSN, meta.Txn)
	if e.versions != nil {
		// The checkpointed version store comes back whole: every
		// not-yet-purged pre-image — deleted rows included — survives
		// the crash (and the WAL truncation the checkpoint performed),
		// which is E16's recovery arm.
		e.versions.loadCkpt(meta.Versions, e.tablesByID)
	}
	return nil
}

// applyRedo replays one data record into the trees and secondary
// indexes. It returns the synthesized undo record (pre-image) for the
// change, and applied=false when the record is a no-op against current
// state (already present / already gone) — tolerated, counted by the
// caller, never fatal.
func (e *Engine) applyRedo(r wal.Record) (undo wal.Record, applied bool, err error) {
	t, ok := e.TableByID(r.Table)
	if !ok {
		return wal.Record{}, false, nil // table unknown to the checkpoint: skip
	}
	switch r.Op {
	case wal.OpInsert:
		if len(r.Image) == 0 {
			return wal.Record{}, false, nil
		}
		key := r.Image[0]
		if _, exists, serr := t.Tree.Search(key); serr != nil {
			return wal.Record{}, false, serr
		} else if exists {
			return wal.Record{}, false, nil
		}
		e.noteVersion(t, key, nil, false, r.Txn)
		if err := t.Tree.Insert(r.Image.Clone()); err != nil {
			return wal.Record{}, false, err
		}
		if err := indexInsertRow(t, r.Image); err != nil {
			return wal.Record{}, false, err
		}
		t.rows.Add(1)
		t.statsNoteInsert(r.Image)
		undo = wal.Record{Txn: r.Txn, Op: wal.OpInsert, Table: r.Table, Column: wal.WholeRow,
			Image: storage.Record{key}}
		return undo, true, nil
	case wal.OpUpdate:
		if len(r.Image) < 2 {
			return wal.Record{}, false, nil
		}
		key, newVal := r.Image[0], r.Image[1]
		cur, foundRow, serr := t.Tree.Search(key)
		if serr != nil {
			return wal.Record{}, false, serr
		}
		if !foundRow {
			return wal.Record{}, false, nil
		}
		col := int(r.Column)
		if col < 0 || col >= len(cur) {
			return wal.Record{}, false, nil
		}
		pre := cur[col]
		e.noteVersion(t, key, cur, false, r.Txn)
		if err := indexUpdateColumn(t, key, col, pre, newVal); err != nil {
			return wal.Record{}, false, err
		}
		updated := cur.Clone()
		updated[col] = newVal
		if _, err := t.Tree.Update(key, updated); err != nil {
			return wal.Record{}, false, err
		}
		t.statsNoteUpdate(col, newVal)
		undo = wal.Record{Txn: r.Txn, Op: wal.OpUpdate, Table: r.Table, Column: r.Column,
			Image: storage.Record{key, pre}}
		return undo, true, nil
	case wal.OpDelete:
		if len(r.Image) == 0 {
			return wal.Record{}, false, nil
		}
		key := r.Image[0]
		row, foundRow, serr := t.Tree.Search(key)
		if serr != nil {
			return wal.Record{}, false, serr
		}
		if !foundRow {
			return wal.Record{}, false, nil
		}
		e.noteVersion(t, key, row, true, r.Txn)
		if _, err := t.Tree.Delete(key); err != nil {
			return wal.Record{}, false, err
		}
		if err := indexDeleteRow(t, row); err != nil {
			return wal.Record{}, false, err
		}
		t.rows.Add(-1)
		undo = wal.Record{Txn: r.Txn, Op: wal.OpDelete, Table: r.Table, Column: wal.WholeRow,
			Image: row.Clone()}
		return undo, true, nil
	default:
		return wal.Record{}, false, nil
	}
}
