package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"snapdb/internal/storage"
)

// StateDigest returns a SHA-256 over the engine's logical state: every
// table's schema, secondary-index definitions, and rows in primary-key
// order. Two engines with the same digest hold byte-identical logical
// databases. The digest deliberately excludes LSNs, buffer-pool state,
// and log contents: a recovered engine legitimately differs in those
// (compensation records, warmed pages) while holding exactly the same
// data — which is the property the crash-torture harness asserts.
func (e *Engine) StateDigest() (string, error) {
	e.locks.lockAll()
	defer e.locks.unlockAll()
	h := sha256.New()
	writeStr := func(s string) {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	e.mu.Lock()
	tables := make([]*Table, 0, len(e.tables))
	for _, t := range e.tables {
		tables = append(tables, t)
	}
	e.mu.Unlock()
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	for _, t := range tables {
		writeStr("table")
		writeStr(t.Name)
		writeStr(fmt.Sprintf("id=%d pk=%d", t.ID, t.PKIndex))
		for _, c := range t.Columns {
			writeStr(fmt.Sprintf("col %s %d %v", c.Name, c.Type, c.PrimaryKey))
		}
		for _, ix := range t.Indexes {
			writeStr(fmt.Sprintf("index %s on %s", ix.Name, ix.Column))
		}
		err := t.Tree.Scan(func(r storage.Record) bool {
			enc := storage.EncodeRecord(r)
			var n [4]byte
			binary.BigEndian.PutUint32(n[:], uint32(len(enc)))
			h.Write(n[:])
			h.Write(enc)
			return true
		})
		if err != nil {
			return "", err
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
