package engine

import (
	"strings"
	"testing"
)

func explainLines(t *testing.T, s *Session, q string) ([]string, *Result) {
	t.Helper()
	res := mustExec(t, s, q)
	if len(res.Columns) != 1 || res.Columns[0] != "EXPLAIN" {
		t.Fatalf("columns = %v, want [EXPLAIN]", res.Columns)
	}
	lines := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		lines = append(lines, r[0].Str)
	}
	return lines, res
}

func TestExplainAccessPaths(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	defer s.Close()
	setupCustomers(t, s, 20)
	mustExec(t, s, "CREATE INDEX idx_age ON customers (age)")

	cases := []struct {
		query    string
		path     string
		contains []string
	}{
		{
			"EXPLAIN SELECT * FROM customers WHERE id = 3",
			"pk-range",
			[]string{"-> Point scan on customers using PRIMARY (id = 3)"},
		},
		{
			"EXPLAIN SELECT name FROM customers WHERE id >= 2 AND id <= 8",
			"pk-range",
			[]string{"-> Project: name", "-> Range scan on customers using PRIMARY"},
		},
		{
			"EXPLAIN SELECT name FROM customers WHERE age = 41",
			"index:idx_age",
			[]string{"-> Key lookup on customers via idx_age", "-> Index range scan on customers using idx_age"},
		},
		{
			"EXPLAIN SELECT * FROM customers WHERE state = 'AZ'",
			"full-scan",
			[]string{"-> Filter: state = 'AZ'", "-> Table scan on customers (access=full-scan)"},
		},
		{
			// LIMIT over ORDER BY on an unindexed-by-access-path column:
			// Sort+Limit folds into one Top-N operator.
			"EXPLAIN SELECT name FROM customers ORDER BY age DESC LIMIT 3",
			"full-scan",
			[]string{"-> Project: name", "-> Top-N sort: age DESC (limit 3)", "-> Table scan on customers"},
		},
		{
			// ORDER BY without LIMIT still gets the full Sort.
			"EXPLAIN SELECT name FROM customers ORDER BY age DESC",
			"full-scan",
			[]string{"-> Project: name", "-> Sort: age DESC", "-> Table scan on customers"},
		},
		{
			// ORDER BY on the primary key of a PK-ordered access path:
			// the scan leaf absorbs the ordering; no sort node at all.
			"EXPLAIN SELECT name FROM customers ORDER BY id DESC LIMIT 3",
			"full-scan",
			[]string{"-> Limit: 3", "-> Project: name", "-> Table scan on customers (access=full-scan, order=id DESC)"},
		},
		{
			// ORDER BY on the secondary index's key column when that
			// index is the access path: the index leaf absorbs it.
			"EXPLAIN SELECT name FROM customers WHERE age >= 30 AND age <= 40 ORDER BY age",
			"index:idx_age",
			[]string{"-> Key lookup on customers via idx_age", "order=age ASC)"},
		},
		{
			"EXPLAIN SELECT COUNT(*) FROM customers WHERE state = 'NY'",
			"full-scan",
			[]string{"-> Aggregate: COUNT(*)", "-> Filter: state = 'NY'"},
		},
		{
			// LIMIT applies to the single aggregate row.
			"EXPLAIN SELECT COUNT(*) FROM customers LIMIT 0",
			"full-scan",
			[]string{"-> Limit: 0", "-> Aggregate: COUNT(*)"},
		},
	}
	for _, tc := range cases {
		lines, res := explainLines(t, s, tc.query)
		if res.AccessPath != tc.path {
			t.Errorf("%s: access path %q, want %q", tc.query, res.AccessPath, tc.path)
		}
		joined := strings.Join(lines, "\n")
		for _, want := range tc.contains {
			found := false
			for _, l := range lines {
				if strings.Contains(l, want) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: plan missing %q:\n%s", tc.query, want, joined)
			}
		}
	}

	// Operator order must read root-first with children indented below.
	lines, _ := explainLines(t, s, "EXPLAIN SELECT name FROM customers ORDER BY age DESC LIMIT 3")
	order := []string{"Project:", "Top-N sort:", "Table scan"}
	depth := -1
	for i, l := range lines {
		if !strings.Contains(l, order[i]) {
			t.Fatalf("line %d = %q, want operator %q", i, l, order[i])
		}
		ind := len(l) - len(strings.TrimLeft(l, " "))
		if ind <= depth {
			t.Errorf("line %d %q not indented deeper than its parent", i, l)
		}
		depth = ind
	}
}

func TestExplainMutationsAndErrors(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	defer s.Close()
	setupCustomers(t, s, 10)

	lines, _ := explainLines(t, s, "EXPLAIN UPDATE customers SET age = 1 WHERE id = 2")
	if len(lines) == 0 || lines[0] != "-> Update: customers" {
		t.Errorf("EXPLAIN UPDATE header = %v", lines)
	}
	lines, _ = explainLines(t, s, "EXPLAIN DELETE FROM customers WHERE age >= 30")
	if len(lines) == 0 || lines[0] != "-> Delete: customers" {
		t.Errorf("EXPLAIN DELETE header = %v", lines)
	}

	for _, tc := range []struct{ query, wantErr string }{
		{"EXPLAIN SELECT * FROM nope", "unknown table"},
		{"EXPLAIN SELECT * FROM customers WHERE nosuch = 1", `unknown column "nosuch" in WHERE`},
		{"EXPLAIN SELECT nosuch FROM customers", `unknown column "nosuch"`},
		{"EXPLAIN SELECT SUM(name) FROM customers", "SUM over non-INT"},
		{"EXPLAIN SELECT * FROM information_schema.processlist", "cannot EXPLAIN system table"},
		{"EXPLAIN INSERT INTO customers (id, name, state, age) VALUES (99, 'x', 'IN', 1)", "EXPLAIN supports SELECT, UPDATE, and DELETE"},
	} {
		_, err := s.Execute(tc.query)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.query, err, tc.wantErr)
		}
	}
}

// EXPLAIN is planning-only: it must never fetch a buffer-pool page,
// never hit or populate the query cache, and never appear in the
// stage-event history (it runs no operators).
func TestExplainFetchesNoPages(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	defer s.Close()
	setupCustomers(t, s, 50)

	before := e.BufferPool().FetchCount()
	mustExec(t, s, "EXPLAIN SELECT * FROM customers WHERE state = 'CA'")
	mustExec(t, s, "EXPLAIN SELECT COUNT(*) FROM customers")
	if after := e.BufferPool().FetchCount(); after != before {
		t.Errorf("EXPLAIN fetched %d pages", after-before)
	}
	if n := len(e.PerfSchema().StagesHistory()); n != 0 {
		t.Errorf("EXPLAIN recorded %d stage events, want 0", n)
	}
	res := mustExec(t, s, "SELECT * FROM customers WHERE state = 'CA'")
	if res.FromCache {
		t.Error("EXPLAIN populated the query cache for the wrapped statement")
	}
}
