package engine

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// newEngine returns an engine with a deterministic, manually advanced
// clock starting at t0.
func newEngine(t testing.TB, cfg Config) (*Engine, *int64) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := int64(1_000_000)
	e.Clock = func() int64 { return now }
	return e, &now
}

func mustExec(t testing.TB, s *Session, q string) *Result {
	t.Helper()
	res, err := s.Execute(q)
	if err != nil {
		t.Fatalf("Execute(%q): %v", q, err)
	}
	return res
}

func setupCustomers(t testing.TB, s *Session, n int) {
	t.Helper()
	mustExec(t, s, "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, state TEXT, age INT)")
	states := []string{"IN", "AZ", "NY", "CA"}
	for i := 0; i < n; i++ {
		q := fmt.Sprintf("INSERT INTO customers (id, name, state, age) VALUES (%d, 'name%d', '%s', %d)",
			i, i, states[i%len(states)], 20+i%50)
		mustExec(t, s, q)
	}
}

func TestCreateInsertSelect(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	defer s.Close()
	setupCustomers(t, s, 20)

	res := mustExec(t, s, "SELECT name, age FROM customers WHERE id = 7")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "name7" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "name" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestSelectStarExpansion(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	setupCustomers(t, s, 3)
	res := mustExec(t, s, "SELECT * FROM customers WHERE id = 1")
	if len(res.Columns) != 4 || res.Columns[3] != "age" {
		t.Errorf("columns = %v", res.Columns)
	}
	if len(res.Rows[0]) != 4 {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestWhereNonKeyColumn(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	setupCustomers(t, s, 40)
	res := mustExec(t, s, "SELECT id FROM customers WHERE state = 'IN'")
	if len(res.Rows) != 10 {
		t.Errorf("IN rows = %d, want 10", len(res.Rows))
	}
	if res.RowsExamined != 40 {
		t.Errorf("examined = %d, want full scan of 40", res.RowsExamined)
	}
}

func TestPKRangeUsesIndex(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	setupCustomers(t, s, 100)
	res := mustExec(t, s, "SELECT id FROM customers WHERE id >= 10 AND id <= 19")
	if len(res.Rows) != 10 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	if res.RowsExamined >= 100 {
		t.Errorf("examined = %d; PK range should not scan the whole table", res.RowsExamined)
	}
}

func TestBetween(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	setupCustomers(t, s, 50)
	res := mustExec(t, s, "SELECT id FROM customers WHERE id BETWEEN 5 AND 8")
	if len(res.Rows) != 4 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestAggregates(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	setupCustomers(t, s, 10)
	res := mustExec(t, s, "SELECT COUNT(*) FROM customers WHERE state = 'IN'")
	if res.Rows[0][0].Int != 3 {
		t.Errorf("count = %d", res.Rows[0][0].Int)
	}
	res = mustExec(t, s, "SELECT SUM(age) FROM customers WHERE id <= 1 AND id >= 0")
	if res.Rows[0][0].Int != 41 { // 20 + 21
		t.Errorf("sum = %d", res.Rows[0][0].Int)
	}
}

func TestOrderByLimit(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	setupCustomers(t, s, 10)
	res := mustExec(t, s, "SELECT id FROM customers ORDER BY id DESC LIMIT 3")
	if len(res.Rows) != 3 || res.Rows[0][0].Int != 9 || res.Rows[2][0].Int != 7 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestOrderByUnselectedColumn(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	for i, v := range []int64{30, 10, 20} {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", i, v))
	}
	// ORDER BY a column that is not in the select list, like MySQL.
	res := mustExec(t, s, "SELECT id FROM t ORDER BY v")
	want := []int64{1, 2, 0} // ids sorted by their v values 10, 20, 30
	for i, w := range want {
		if res.Rows[i][0].Int != w {
			t.Fatalf("rows = %v, want id order %v", res.Rows, want)
		}
	}
}

func TestUpdateAndDelete(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	setupCustomers(t, s, 10)

	res := mustExec(t, s, "UPDATE customers SET age = 99 WHERE id = 3")
	if res.RowsAffected != 1 {
		t.Errorf("affected = %d", res.RowsAffected)
	}
	got := mustExec(t, s, "SELECT age FROM customers WHERE id = 3")
	if got.Rows[0][0].Int != 99 {
		t.Errorf("age = %d", got.Rows[0][0].Int)
	}

	res = mustExec(t, s, "DELETE FROM customers WHERE id = 3")
	if res.RowsAffected != 1 {
		t.Errorf("delete affected = %d", res.RowsAffected)
	}
	got = mustExec(t, s, "SELECT * FROM customers WHERE id = 3")
	if len(got.Rows) != 0 {
		t.Errorf("deleted row still visible: %v", got.Rows)
	}
}

func TestUpdatePrimaryKeyRejected(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	setupCustomers(t, s, 3)
	if _, err := s.Execute("UPDATE customers SET id = 99 WHERE id = 1"); err == nil {
		t.Error("PK update accepted")
	}
}

func TestTypeChecking(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
	if _, err := s.Execute("INSERT INTO t (id, name) VALUES ('str', 'ok')"); err == nil {
		t.Error("string into INT accepted")
	}
	if _, err := s.Execute("INSERT INTO t (id, name) VALUES (1, 2)"); err == nil {
		t.Error("int into TEXT accepted")
	}
	if _, err := s.Execute("UPDATE t SET name = 5 WHERE id = 1"); err == nil {
		t.Error("typed update accepted")
	}
}

func TestSchemaErrors(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	cases := []string{
		"CREATE TABLE t (id INT PRIMARY KEY)",       // duplicate table
		"CREATE TABLE u (a INT, b INT PRIMARY KEY)", // PK not first
		"SELECT * FROM missing",                     // unknown table
		"SELECT nope FROM t",                        // unknown column
		"SELECT * FROM t WHERE nope = 1",            // unknown WHERE column
		"INSERT INTO t (id) VALUES (1)",             // missing column
		"INSERT INTO t (id, id) VALUES (1, 2)",      // duplicate column
		"INSERT INTO t (id, nope) VALUES (1, 2)",    // unknown column
		"UPDATE t SET nope = 1 WHERE id = 1",        // unknown SET column
		"SELECT COUNT(*), v FROM t",                 // aggregate mixed with column
		"SELECT SUM(id) FROM missing",               // aggregate over missing table
		"SELECT id FROM t ORDER BY w",               // order by unknown column
	}
	for _, q := range cases {
		if _, err := s.Execute(q); err == nil {
			t.Errorf("Execute(%q) unexpectedly succeeded", q)
		}
	}
}

func TestDuplicatePKRejected(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 1)")
	if _, err := s.Execute("INSERT INTO t (id, v) VALUES (1, 2)"); err == nil {
		t.Error("duplicate PK accepted")
	}
}

func TestMultiRowInsert(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	res := mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 10), (2, 20), (3, 30)")
	if res.RowsAffected != 3 {
		t.Errorf("affected = %d", res.RowsAffected)
	}
	got := mustExec(t, s, "SELECT COUNT(*) FROM t")
	if got.Rows[0][0].Int != 3 {
		t.Errorf("count = %d", got.Rows[0][0].Int)
	}
}

// --- Artifact wiring: the paper's leakage channels. ---

func TestBinlogRecordsWritesWithTimestamps(t *testing.T) {
	e, now := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	*now = 2_000_000
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 'secret-value')")
	*now = 2_000_500
	mustExec(t, s, "SELECT * FROM t WHERE id = 1") // reads must NOT hit the binlog
	mustExec(t, s, "UPDATE t SET v = 'updated' WHERE id = 1")

	evs := e.Binlog().Events()
	if len(evs) != 3 { // create, insert, update
		t.Fatalf("binlog has %d events: %+v", len(evs), evs)
	}
	if evs[1].Timestamp != 2_000_000 || !strings.Contains(evs[1].Statement, "secret-value") {
		t.Errorf("insert event = %+v", evs[1])
	}
	if evs[2].Timestamp != 2_000_500 {
		t.Errorf("update timestamp = %d", evs[2].Timestamp)
	}
	if evs[2].LSN <= evs[1].LSN {
		t.Error("binlog LSNs not increasing")
	}
	for _, ev := range evs {
		if strings.HasPrefix(ev.Statement, "SELECT") {
			t.Error("SELECT leaked into binlog")
		}
	}
}

func TestBinlogDisabled(t *testing.T) {
	cfg := Defaults()
	cfg.EnableBinlog = false
	e, _ := newEngine(t, cfg)
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 1)")
	if e.Binlog().Len() != 0 {
		t.Error("disabled binlog recorded events")
	}
}

func TestWALRecordsByteLevelChanges(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (7, 'original')")
	mustExec(t, s, "UPDATE t SET v = 'modified' WHERE id = 7")
	mustExec(t, s, "DELETE FROM t WHERE id = 7")

	redo := dataRecords(e.WAL().Redo.Records())
	undo := e.WAL().Undo.Records()
	if len(redo) != 3 || len(undo) != 3 {
		t.Fatalf("redo=%d undo=%d", len(redo), len(undo))
	}
	if redo[0].Image[1].Str != "original" {
		t.Errorf("insert redo image = %v", redo[0].Image)
	}
	if redo[1].Image[1].Str != "modified" || undo[1].Image[1].Str != "original" {
		t.Errorf("update images: redo=%v undo=%v", redo[1].Image, undo[1].Image)
	}
	if undo[2].Image[1].Str != "modified" {
		t.Errorf("delete undo image = %v", undo[2].Image)
	}
}

func TestQueryCacheHitAndInvalidation(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	setupCustomers(t, s, 10)
	q := "SELECT name FROM customers WHERE id = 2"
	first := mustExec(t, s, q)
	if first.FromCache {
		t.Error("first execution hit the cache")
	}
	second := mustExec(t, s, q)
	if !second.FromCache {
		t.Error("second execution missed the cache")
	}
	mustExec(t, s, "UPDATE customers SET age = 1 WHERE id = 9")
	third := mustExec(t, s, q)
	if third.FromCache {
		t.Error("cache not invalidated by table write")
	}
}

func TestQueryTextInHeapResidue(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	marker := "SELECT v FROM t WHERE id = 424242"
	if _, err := s.Execute(marker); err != nil {
		t.Fatal(err)
	}
	dump := e.Arena().Dump()
	if n := bytes.Count(dump, []byte(marker)); n < 3 {
		t.Errorf("query text found %d times in heap, want >= 3 (conn + parse + history buffers)", n)
	}
}

func TestProcesslistVisibleAcrossSessions(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	victim := e.Connect("victim")
	attacker := e.Connect("attacker")
	setupCustomers(t, victim, 5)
	mustExec(t, victim, "SELECT name FROM customers WHERE id = 1")

	res := mustExec(t, attacker, "SELECT * FROM information_schema.processlist")
	var sawVictim bool
	for _, r := range res.Rows {
		if r[1].Str == "victim" && strings.Contains(r[4].Str, "SELECT name FROM customers") {
			sawVictim = true
		}
	}
	if !sawVictim {
		t.Error("attacker could not see victim's last query in processlist")
	}
}

func TestPerfSchemaTablesViaSQL(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	victim := e.Connect("victim")
	attacker := e.Connect("attacker")
	setupCustomers(t, victim, 5)
	for i := 0; i < 3; i++ {
		mustExec(t, victim, fmt.Sprintf("SELECT name FROM customers WHERE id = %d", i))
	}

	hist := mustExec(t, attacker, "SELECT * FROM performance_schema.events_statements_history")
	found := 0
	for _, r := range hist.Rows {
		if strings.Contains(r[2].Str, "SELECT name FROM customers") {
			found++
		}
	}
	if found != 3 {
		t.Errorf("history shows %d victim SELECTs, want 3", found)
	}

	digest := mustExec(t, attacker, "SELECT * FROM performance_schema.events_statements_summary_by_digest")
	var sawDigest bool
	for _, r := range digest.Rows {
		if strings.Contains(r[1].Str, "SELECT name FROM customers WHERE id = ?") && r[2].Int == 3 {
			sawDigest = true
		}
	}
	if !sawDigest {
		t.Errorf("digest summary missing grouped SELECT row: %v", digest.Rows)
	}

	cur := mustExec(t, attacker, "SELECT * FROM performance_schema.events_statements_current")
	if len(cur.Rows) == 0 {
		t.Error("events_statements_current empty")
	}
}

func TestSlowLogCapturesSlowQueries(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	// Fake execution times: every statement appears to take 1 second.
	base := time.Unix(0, 0)
	calls := 0
	e.ExecClock = func() time.Time {
		calls++
		return base.Add(time.Duration(calls) * time.Second)
	}
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	entries := e.SlowLog().Entries()
	if len(entries) == 0 {
		t.Fatal("slow log empty despite slow statements")
	}
	if !strings.Contains(entries[0].Statement, "CREATE TABLE") {
		t.Errorf("slow entry = %+v", entries[0])
	}
}

func TestGeneralLogOffByDefaultOnWhenEnabled(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, s, "SELECT * FROM t")
	if len(e.GeneralLog().Entries()) != 0 {
		t.Error("general log recorded while disabled")
	}

	cfg := Defaults()
	cfg.EnableGeneralLog = true
	e2, _ := newEngine(t, cfg)
	s2 := e2.Connect("app")
	mustExec(t, s2, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, s2, "SELECT * FROM t")
	if len(e2.GeneralLog().Entries()) != 2 {
		t.Errorf("general log entries = %d", len(e2.GeneralLog().Entries()))
	}
}

func TestBufferPoolDumpWrittenPeriodically(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	setupCustomers(t, s, 30)
	if e.LastBufferPoolDump() == nil {
		// 31 statements so far; force past the interval.
		for i := 0; i < DumpInterval; i++ {
			mustExec(t, s, "SELECT * FROM customers WHERE id = 1")
		}
	}
	if e.LastBufferPoolDump() == nil {
		t.Fatal("no periodic buffer pool dump written")
	}
	shutdown := e.Shutdown()
	if len(shutdown) == 0 {
		t.Error("shutdown dump empty")
	}
}

func TestStatementsCounter(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 1)")
	if e.Statements() != 2 {
		t.Errorf("statements = %d", e.Statements())
	}
}

func TestParseErrorStillFreesHeap(t *testing.T) {
	e, _ := newEngine(t, Defaults())
	s := e.Connect("app")
	if _, err := s.Execute("NOT SQL AT ALL"); err == nil {
		t.Fatal("garbage accepted")
	}
	allocs, frees, _ := e.Arena().Stats()
	// One live block per statement remains in the history ring; the
	// per-statement working buffers must all be freed.
	if allocs-frees != 1 {
		t.Errorf("allocs=%d frees=%d after failed statement, want exactly 1 live history block", allocs, frees)
	}
}

func BenchmarkInsertStatement(b *testing.B) {
	e, err := New(Defaults())
	if err != nil {
		b.Fatal(err)
	}
	s := e.Connect("bench")
	if _, err := s.Execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Execute(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'payload')", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPointSelect(b *testing.B) {
	e, err := New(Defaults())
	if err != nil {
		b.Fatal(err)
	}
	s := e.Connect("bench")
	if _, err := s.Execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := s.Execute(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, 'payload')", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Execute(fmt.Sprintf("SELECT v FROM t WHERE id = %d", i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}
