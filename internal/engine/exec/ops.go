package exec

import (
	"fmt"
	"sort"

	"snapdb/internal/sqlparse"
	"snapdb/internal/storage"
)

// Pred is one resolved conjunct of a WHERE clause: schema column index,
// comparison operator, literal argument.
type Pred struct {
	Col int
	Op  sqlparse.CompareOp
	Arg sqlparse.Value
}

// Filter passes through the input rows satisfying every predicate. The
// planner hands it the full predicate set — including the bounds the
// access path below already enforces — matching the legacy scan loop,
// which re-checked every conjunct per visited row.
type Filter struct {
	input Operator
	preds []Pred
	desc  string
	stats Stats
}

// NewFilter builds a filter over input.
func NewFilter(input Operator, preds []Pred, desc string) *Filter {
	f := new(Filter)
	f.Init(input, preds, desc)
	return f
}

// Init resets f in place so callers can embed the operator in a
// larger per-execution allocation instead of heap-allocating each
// node separately.
func (f *Filter) Init(input Operator, preds []Pred, desc string) {
	*f = Filter{input: input, preds: preds, desc: desc}
}

// Open opens the input.
func (f *Filter) Open() error { return f.input.Open() }

// Next returns the next row satisfying all predicates.
func (f *Filter) Next() (storage.Record, bool, error) {
	for {
		r, ok, err := f.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		f.stats.RowsExamined++
		pass := true
		for _, p := range f.preds {
			if !p.Op.Eval(r[p.Col].Compare(p.Arg)) {
				pass = false
				break
			}
		}
		if pass {
			f.stats.RowsReturned++
			return r, true, nil
		}
	}
}

// Close closes the input.
func (f *Filter) Close() error { return f.input.Close() }

func (f *Filter) Describe() string     { return f.desc }
func (f *Filter) Stats() Stats         { return f.stats }
func (f *Filter) Children() []Operator { return []Operator{f.input} }

// Project maps each input row onto the selected schema column indices,
// emitting a fresh record (results may be retained by the query cache,
// so projected rows never alias scan buffers).
type Project struct {
	input Operator
	cols  []int
	desc  string
	stats Stats
}

// NewProject builds a projection onto cols.
func NewProject(input Operator, cols []int, desc string) *Project {
	p := new(Project)
	p.Init(input, cols, desc)
	return p
}

// Init resets p in place (see Filter.Init).
func (p *Project) Init(input Operator, cols []int, desc string) {
	*p = Project{input: input, cols: cols, desc: desc}
}

// Open opens the input.
func (p *Project) Open() error { return p.input.Open() }

// Next projects the next input row.
func (p *Project) Next() (storage.Record, bool, error) {
	r, ok, err := p.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	p.stats.RowsExamined++
	out := make(storage.Record, len(p.cols))
	for i, idx := range p.cols {
		out[i] = r[idx]
	}
	p.stats.RowsReturned++
	return out, true, nil
}

// Close closes the input.
func (p *Project) Close() error { return p.input.Close() }

func (p *Project) Describe() string     { return p.desc }
func (p *Project) Stats() Stats         { return p.stats }
func (p *Project) Children() []Operator { return []Operator{p.input} }

// Sort is a blocking stable sort on one schema column of the full input
// rows. It runs below Project so ORDER BY may name any table column,
// selected or not — the same rule MySQL applies and the legacy
// executor implemented by sorting pre-projection rows.
type Sort struct {
	input Operator
	col   int
	desc  bool
	label string
	rows  []storage.Record
	pos   int
	stats Stats
}

// NewSort builds a sort on schema column col.
func NewSort(input Operator, col int, desc bool, label string) *Sort {
	s := new(Sort)
	s.Init(input, col, desc, label)
	return s
}

// Init resets s in place (see Filter.Init).
func (s *Sort) Init(input Operator, col int, desc bool, label string) {
	*s = Sort{input: input, col: col, desc: desc, label: label}
}

// Open drains and sorts the input.
func (s *Sort) Open() error {
	if err := s.input.Open(); err != nil {
		return err
	}
	for {
		r, ok, err := s.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.stats.RowsExamined++
		s.rows = append(s.rows, r)
	}
	sort.SliceStable(s.rows, func(a, b int) bool {
		c := s.rows[a][s.col].Compare(s.rows[b][s.col])
		if s.desc {
			return c > 0
		}
		return c < 0
	})
	return nil
}

// Next emits the next row in sorted order.
func (s *Sort) Next() (storage.Record, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	s.stats.RowsReturned++
	return r, true, nil
}

// Close releases the sorted buffer and closes the input.
func (s *Sort) Close() error {
	s.rows = nil
	return s.input.Close()
}

func (s *Sort) Describe() string     { return s.label }
func (s *Sort) Stats() Stats         { return s.stats }
func (s *Sort) Children() []Operator { return []Operator{s.input} }

// Aggregate is a blocking single-group aggregate: COUNT(*) / COUNT(col)
// or SUM(col) over the whole input. Unknown kinds fail Open with a
// typed ErrUnsupportedAggregate.
type Aggregate struct {
	input Operator
	kind  sqlparse.AggKind
	col   int // schema column index for SUM; unused for COUNT
	desc  string
	stats Stats
	out   sqlparse.Value
	done  bool
}

// NewAggregate builds the aggregate. For AggSum, col must be a resolved
// INT schema column (the planner validates and reports unknown or
// non-INT columns before the operator runs).
func NewAggregate(input Operator, kind sqlparse.AggKind, col int, desc string) *Aggregate {
	a := new(Aggregate)
	a.Init(input, kind, col, desc)
	return a
}

// Init resets a in place (see Filter.Init).
func (a *Aggregate) Init(input Operator, kind sqlparse.AggKind, col int, desc string) {
	*a = Aggregate{input: input, kind: kind, col: col, desc: desc}
}

// Open drains the input and folds it into the aggregate value.
func (a *Aggregate) Open() error {
	if a.kind != sqlparse.AggCount && a.kind != sqlparse.AggSum {
		return fmt.Errorf("exec: %w (kind %d)", ErrUnsupportedAggregate, int(a.kind))
	}
	if err := a.input.Open(); err != nil {
		return err
	}
	var count, sum int64
	for {
		r, ok, err := a.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		a.stats.RowsExamined++
		count++
		if a.kind == sqlparse.AggSum {
			sum += r[a.col].Int
		}
	}
	if a.kind == sqlparse.AggCount {
		a.out = sqlparse.IntValue(count)
	} else {
		a.out = sqlparse.IntValue(sum)
	}
	return nil
}

// Next emits the single aggregate row.
func (a *Aggregate) Next() (storage.Record, bool, error) {
	if a.done {
		return nil, false, nil
	}
	a.done = true
	a.stats.RowsReturned++
	return storage.Record{a.out}, true, nil
}

// Close closes the input.
func (a *Aggregate) Close() error { return a.input.Close() }

func (a *Aggregate) Describe() string     { return a.desc }
func (a *Aggregate) Stats() Stats         { return a.stats }
func (a *Aggregate) Children() []Operator { return []Operator{a.input} }

// Limit emits at most n input rows. It stops pulling once satisfied;
// the blocking leaves below have already completed their traversal by
// then, so an early stop never changes which pages were fetched — LIMIT
// pushdown into the scan itself is a leakage-profile change deliberately
// left on the roadmap.
type Limit struct {
	input Operator
	n     int
	seen  int
	desc  string
	stats Stats
}

// NewLimit builds a limit of n rows.
func NewLimit(input Operator, n int, desc string) *Limit {
	l := new(Limit)
	l.Init(input, n, desc)
	return l
}

// Init resets l in place (see Filter.Init).
func (l *Limit) Init(input Operator, n int, desc string) {
	*l = Limit{input: input, n: n, desc: desc}
}

// Open opens the input.
func (l *Limit) Open() error { return l.input.Open() }

// Next passes through up to n rows.
func (l *Limit) Next() (storage.Record, bool, error) {
	if l.seen >= l.n {
		return nil, false, nil
	}
	r, ok, err := l.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	l.stats.RowsExamined++
	l.stats.RowsReturned++
	return r, true, nil
}

// Close closes the input.
func (l *Limit) Close() error { return l.input.Close() }

func (l *Limit) Describe() string     { return l.desc }
func (l *Limit) Stats() Stats         { return l.stats }
func (l *Limit) Children() []Operator { return []Operator{l.input} }
